// HTTP fleet example: the distributed deployment mode over a real wire.
//
// It starts the Nazar cloud service as an HTTP server on a loopback
// port (exactly what cmd/nazard does), then drives a small device fleet
// through the resilient device-side transport (what cmd/nazar-device
// does): pull the base model, stream drifted inferences through the
// spooling/retrying transport.Client, trigger analysis, pull BN
// versions, install them, and measure the recovery — all through the
// JSON/HTTP API.
//
// Run with: go run ./examples/httpfleet
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"nazar/internal/cloud"
	"nazar/internal/detect"
	"nazar/internal/device"
	"nazar/internal/driftlog"
	"nazar/internal/httpapi"
	"nazar/internal/imagesim"
	"nazar/internal/metrics"
	"nazar/internal/nn"
	"nazar/internal/tensor"
	"nazar/internal/transport"
	"nazar/internal/weather"
)

func main() {
	// --- Cloud side (nazard) ---
	const classes = 12
	world := imagesim.NewWorld(imagesim.DefaultConfig(classes, 31))
	rng := tensor.NewRand(31, 1)
	base := nn.NewClassifier(nn.ArchResNet50, world.Dim(), classes, rng)
	trainX := tensor.New(classes*50, world.Dim())
	trainY := make([]int, trainX.Rows)
	for i := range trainY {
		trainY[i] = i % classes
		copy(trainX.Row(i), world.Sample(trainY[i], rng))
	}
	fmt.Println("cloud: training base model...")
	nn.Fit(base, trainX, trainY, nn.TrainConfig{Epochs: 25, BatchSize: 32, Rng: rng})

	ccfg := cloud.DefaultConfig()
	ccfg.MinSamplesPerCause = 16
	svc := cloud.NewService(base, ccfg)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: httpapi.NewServer(svc), ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := srv.Serve(ln); err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	defer srv.Close()
	url := "http://" + ln.Addr().String()
	fmt.Printf("cloud: nazard listening on %s\n", url)

	// --- Device side (nazar-device) ---
	// The resilient transport spools entries, batches them over the
	// wire, and retries transient failures; terminal failures surface
	// through OnDrop so lost telemetry is at least visible. Batches ship
	// in the columnar binary framing (the transport falls back to JSON
	// on its own if the server were older and refused it).
	ctx := context.Background()
	client := transport.NewClient(url,
		transport.WithConfig(transport.Config{
			OnDrop: func(e driftlog.Entry, reason string) {
				log.Printf("devices: entry %v dropped (%s)", e.Time, reason)
			},
		}),
		transport.WithBatcher(64, 200*time.Millisecond),
		transport.WithCodec(httpapi.BinaryCodec{}),
	)
	defer func() {
		cctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := client.Close(cctx); err != nil {
			log.Printf("devices: transport close: %v", err)
		}
	}()
	snap, err := client.Base(ctx)
	if err != nil {
		log.Fatal(err)
	}
	devBase := nn.NewClassifier(nn.ArchResNet50, world.Dim(), classes, tensor.NewRand(1, 1))
	if err := snap.ApplyTo(devBase); err != nil {
		log.Fatal(err)
	}
	fmt.Println("devices: pulled base model over HTTP")

	fleet := make([]*device.Device, 4)
	for i := range fleet {
		fleet[i] = device.New(device.Config{
			ID:         fmt.Sprintf("android_fleet_%d", i),
			Location:   "Quebec",
			SampleRate: 0.6,
			Detector:   detect.Threshold{Scorer: detect.MSP{}, T: 0.95},
			Rng:        tensor.NewRand(31+uint64(i), 2),
		}, devBase)
	}

	// Stream two snowy weeks.
	day := weather.Day(20)
	var before metrics.RunningAccuracy
	streamRng := tensor.NewRand(32, 1)
	for i := 0; i < 600; i++ {
		class := i % classes
		x := world.Sample(class, streamRng)
		cond := "clear-day"
		if i%2 == 0 {
			x = world.Corrupt(x, imagesim.Snow, imagesim.DefaultSeverity, streamRng)
			cond = "snow"
		}
		dev := fleet[i%len(fleet)]
		ts := day.Add(time.Duration(i) * time.Minute)
		inf, entry, sample := dev.Infer(ts, x, map[string]string{driftlog.AttrWeather: cond})
		if cond == "snow" {
			before.Observe(inf.Predicted == class)
		}
		if err := client.Report(entry, sample); err != nil {
			log.Fatal(err)
		}
	}
	if err := client.Flush(ctx); err != nil {
		log.Fatal(err)
	}
	st, err := client.Status(ctx)
	if err != nil {
		log.Fatal(err)
	}
	tstats := client.Stats()
	fmt.Printf("devices: streamed %d entries (%d samples uploaded, %d acked, %d retries); snowy accuracy %.1f%%\n",
		st.LogRows, st.Samples, tstats.Acked, tstats.Retries, 100*before.Value())

	// Trigger analysis and pull versions (retried like everything else).
	resp, err := client.Analyze(ctx, httpapi.AnalyzeRequest{Now: day.AddDate(0, 0, 1)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cloud: causes %v, %d versions (rca %dms, adapt %dms)\n",
		resp.Causes, len(resp.VersionIDs), resp.RCAMillis, resp.AdaptMs)

	versions, err := client.Versions(ctx, time.Time{})
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range versions {
		for _, dev := range fleet {
			if err := dev.Pool.Install(v, day.AddDate(0, 0, 1)); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("devices: installed %d versions (pool size %d)\n", len(versions), fleet[0].Pool.Len())

	// Measure the recovery on fresh snowy images.
	var after metrics.RunningAccuracy
	for i := 0; i < 300; i++ {
		class := i % classes
		x := world.Corrupt(world.Sample(class, streamRng), imagesim.Snow, imagesim.DefaultSeverity, streamRng)
		dev := fleet[i%len(fleet)]
		inf, _, _ := dev.Infer(day.AddDate(0, 0, 2), x, map[string]string{driftlog.AttrWeather: "snow"})
		after.Observe(inf.Predicted == class)
	}
	fmt.Printf("snowy accuracy after by-cause adaptation: %.1f%% -> %.1f%%\n",
		100*before.Value(), 100*after.Value())
}
