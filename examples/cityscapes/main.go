// Cityscapes example: the self-driving workload of §5.7 end to end.
//
// It builds the cityscapes-analogue dataset (traffic-object
// classification streamed from vehicles in ten European cities over
// January–April 2020), trains a base model, and runs the full streaming
// evaluation under all three strategies — no-adapt, adapt-all and Nazar —
// printing the per-window and final comparisons of Figure 8.
//
// Run with: go run ./examples/cityscapes
package main

import (
	"fmt"
	"log"

	"nazar/internal/dataset"
	"nazar/internal/nn"
	"nazar/internal/pipeline"
)

func main() {
	ds := dataset.NewCityscapes(dataset.CityscapesConfig{Total: 3000, Devices: 2, Seed: 11})
	fmt.Printf("cityscapes-analogue: %d train / %d val / %d streamed over %d cities\n",
		ds.Train.Len(), ds.Val.Len(), len(ds.Stream), len(ds.Locations))

	fmt.Println("training ResNet34-analogue base model...")
	base := pipeline.TrainBase(ds, nn.ArchResNet34, 20, 11)
	fmt.Printf("clean validation accuracy: %.1f%% (paper: 83.9%% for ResNet34)\n\n",
		100*pipeline.CleanValAccuracy(ds, base))

	const windows = 8
	results := map[pipeline.Strategy]*pipeline.Result{}
	for _, s := range pipeline.Strategies {
		cfg := pipeline.DefaultConfig(s, 11)
		cfg.Windows = windows
		res, err := pipeline.Run(ds, base, cfg)
		if err != nil {
			log.Fatal(err)
		}
		results[s] = res
	}

	fmt.Println("per-window accuracy on all data (Nazar):")
	for i, w := range results[pipeline.Nazar].Windows {
		fmt.Printf("  window %d: all %.1f%%  drifted %.1f%%  versions %d  causes %v\n",
			i, 100*w.AccAll, 100*w.AccDrift, w.VersionCount, w.Causes)
	}

	fmt.Println("\nfinal comparison (mean over last 7 windows):")
	fmt.Printf("  %-10s  %-10s  %-12s\n", "strategy", "all data", "drifted data")
	for _, s := range pipeline.Strategies {
		mAll, _ := results[s].AvgAccLast(windows - 1)
		mDrift, _ := results[s].AvgDriftAccLast(windows - 1)
		fmt.Printf("  %-10s  %8.1f%%  %10.1f%%\n", s, 100*mAll, 100*mDrift)
	}

	nzr, _ := results[pipeline.Nazar].AvgDriftAccLast(windows - 1)
	all, _ := results[pipeline.AdaptAll].AvgDriftAccLast(windows - 1)
	fmt.Printf("\nNazar vs adapt-all on drifted data: %+.1f points (paper: up to +49.5%% relative)\n",
		100*(nzr-all))
}
