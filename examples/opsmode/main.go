// Ops-mode example: Nazar out of autopilot (§3.1).
//
// The ML-ops team receives alerts when drift is diagnosed, inspects the
// root causes, and manually decides which to adapt — here over the same
// HTTP API cmd/nazard serves. The flow is:
//
//  1. devices stream foggy + snowy inferences and report drift entries,
//  2. the operator calls /v1/diagnose and reads the alert feed,
//  3. the operator approves only the fog cause via /v1/adapt,
//  4. the resulting BN version deploys and fog accuracy recovers while
//     snow (unapproved) stays degraded.
//
// Run with: go run ./examples/opsmode
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"nazar/internal/cloud"
	"nazar/internal/driftlog"
	"nazar/internal/httpapi"
	"nazar/internal/imagesim"
	"nazar/internal/nn"
	"nazar/internal/rca"
	"nazar/internal/registry"
	"nazar/internal/tensor"
	"nazar/internal/weather"
)

func main() {
	// Cloud with an alert sink the "ops team" watches.
	const classes = 12
	world := imagesim.NewWorld(imagesim.DefaultConfig(classes, 77))
	rng := tensor.NewRand(77, 1)
	base := nn.NewClassifier(nn.ArchResNet50, world.Dim(), classes, rng)
	trainX := tensor.New(classes*50, world.Dim())
	trainY := make([]int, trainX.Rows)
	for i := range trainY {
		trainY[i] = i % classes
		copy(trainX.Row(i), world.Sample(trainY[i], rng))
	}
	fmt.Println("training base model...")
	nn.Fit(base, trainX, trainY, nn.TrainConfig{Epochs: 25, BatchSize: 32, Rng: rng})

	svc := cloud.NewService(base, cloud.DefaultConfig())
	alerts := &cloud.AlertLog{}
	svc.SetAlerter(alerts)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: httpapi.NewServer(svc), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	defer srv.Close()
	client := httpapi.NewClient("http://" + ln.Addr().String())

	// Devices report a mixed fog + snow period.
	day := weather.Day(15)
	for i := 0; i < 600; i++ {
		class := i % classes
		x := world.Sample(class, rng)
		cond := "clear-day"
		switch i % 3 {
		case 0:
			x = world.Corrupt(x, imagesim.Fog, imagesim.DefaultSeverity, rng)
			cond = "fog"
		case 1:
			x = world.Corrupt(x, imagesim.Snow, imagesim.DefaultSeverity, rng)
			cond = "snow"
		}
		msp := tensor.Max(tensor.Softmax(base.LogitsOne(x)))
		err := client.Ingest(driftlog.Entry{
			Time:  day.Add(time.Duration(i) * time.Minute),
			Drift: msp < 0.95,
			Attrs: map[string]string{
				driftlog.AttrWeather:  cond,
				driftlog.AttrDevice:   fmt.Sprintf("android_%d", i%6),
				driftlog.AttrLocation: "Quebec",
			},
		}, x)
		if err != nil {
			log.Fatal(err)
		}
	}

	// Operator triggers diagnosis only — no adaptation yet.
	causes, err := client.Diagnose(httpapi.AnalyzeRequest{Now: day.AddDate(0, 0, 1)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nalert feed:")
	for _, a := range alerts.Alerts() {
		fmt.Printf("  ALERT %s\n", a.Message)
	}

	// Operator approves only fog.
	var approved []rca.Cause
	for _, c := range causes {
		if c.Matches(map[string]string{driftlog.AttrWeather: "fog"}) {
			approved = append(approved, c)
		}
	}
	fmt.Printf("\noperator approves %d of %d causes (fog only)\n", len(approved), len(causes))
	versions, err := client.Adapt(httpapi.AdaptRequest{Causes: approved, Now: day.AddDate(0, 0, 1)})
	if err != nil {
		log.Fatal(err)
	}

	// Deploy to a device pool and compare fog vs snow after.
	pool := registry.NewPool(base, 0)
	for _, v := range versions {
		if err := pool.Install(v, day.AddDate(0, 0, 1)); err != nil {
			log.Fatal(err)
		}
	}
	eval := func(corr imagesim.Corruption, cond string) float64 {
		correct, total := 0, 0
		evalRng := tensor.NewRand(99, 1)
		for i := 0; i < 240; i++ {
			class := i % classes
			x := world.Corrupt(world.Sample(class, evalRng), corr, imagesim.DefaultSeverity, evalRng)
			net, _ := pool.Select(map[string]string{driftlog.AttrWeather: cond})
			pred, _ := net.PredictOne(x)
			if pred == class {
				correct++
			}
			total++
		}
		return float64(correct) / float64(total)
	}
	fmt.Printf("\nafter the approved adaptation:\n")
	fmt.Printf("  fog accuracy  (approved)    %.1f%%\n", 100*eval(imagesim.Fog, "fog"))
	fmt.Printf("  snow accuracy (not approved) %.1f%%\n", 100*eval(imagesim.Snow, "snow"))
}
