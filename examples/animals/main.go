// Animals example: the species-identification workload of §5.1 with
// class skew.
//
// Seven continental deployments of an animal-identifier app stream
// Poisson-arriving photos whose species mix is Zipf-skewed per location.
// The example runs Nazar and the adapt-all baseline under severity-5
// weather drift with α=1 skew — the harsh corner of Figure 9c — and
// prints the comparison plus Nazar's per-drift breakdown.
//
// Run with: go run ./examples/animals
package main

import (
	"fmt"
	"log"

	"nazar/internal/dataset"
	"nazar/internal/nn"
	"nazar/internal/pipeline"
)

func main() {
	cfg := dataset.DefaultAnimals(23)
	cfg.Classes = 24
	cfg.TrainPerClass = 50
	cfg.ValPerClass = 12
	cfg.DevicesPerLocation = 4
	cfg.Alpha = 1 // Zipf class skew
	ds := dataset.NewAnimals(cfg)
	fmt.Printf("animals-analogue: %d classes, %d locations, %d streamed inferences (α=%.0f skew)\n",
		ds.World.Classes(), len(ds.Locations), len(ds.Stream), cfg.Alpha)

	fmt.Println("training ResNet50-analogue base model...")
	base := pipeline.TrainBase(ds, nn.ArchResNet50, 25, 23)
	fmt.Printf("clean validation accuracy: %.1f%% (paper: 76.1%%)\n\n",
		100*pipeline.CleanValAccuracy(ds, base))

	const windows, severity = 8, 5
	fmt.Printf("running %d-window streams at weather severity %d...\n\n", windows, severity)
	results := map[pipeline.Strategy]*pipeline.Result{}
	for _, s := range []pipeline.Strategy{pipeline.AdaptAll, pipeline.Nazar} {
		pcfg := pipeline.DefaultConfig(s, 23)
		pcfg.Windows = windows
		pcfg.Severity = severity
		res, err := pipeline.Run(ds, base, pcfg)
		if err != nil {
			log.Fatal(err)
		}
		results[s] = res
		mAll, _ := res.AvgAccLast(windows - 1)
		mDrift, _ := res.AvgDriftAccLast(windows - 1)
		fmt.Printf("%-10s  all %.1f%%  drifted %.1f%%\n", s, 100*mAll, 100*mDrift)
	}

	fmt.Println("\nNazar per-drift accuracy:")
	for corr, ra := range results[pipeline.Nazar].PerDrift {
		fmt.Printf("  %-8s %.1f%% (n=%d)\n", corr, 100*ra.Value(), ra.Total)
	}
	fmt.Println("\ncauses discovered per window (Nazar):")
	for i, w := range results[pipeline.Nazar].Windows {
		fmt.Printf("  window %d: %v\n", i, w.Causes)
	}
}
