// Real-weather example: driving the end-to-end workload from historical
// weather records instead of the synthetic generator.
//
// The paper tags images with scraped historical weather (Kaggle daily
// weather, Weather Underground). This example loads records in that CSV
// layout (location,date,condition) via weather.LoadCSV and plugs them
// into the pipeline as its weather source — the exact seam a user with
// the real Kaggle file would use. Here the CSV is embedded and describes
// a brutal January: two weeks of snow in every city, then clear skies.
//
// Run with: go run ./examples/realweather
package main

import (
	_ "embed"
	"fmt"
	"log"
	"strings"
	"time"

	"nazar/internal/dataset"
	"nazar/internal/nn"
	"nazar/internal/pipeline"
	"nazar/internal/weather"
)

// buildCSV synthesizes the embedded "historical" file: snow everywhere
// for days 0–13, clear afterwards (with scattered rain in March).
func buildCSV() string {
	var b strings.Builder
	b.WriteString("location,date,condition\n")
	for _, loc := range weather.CityscapesLocations {
		for d := 0; d < weather.Days(); d++ {
			cond := "clear"
			switch {
			case d < 14:
				cond = "snow"
			case d >= 70 && d < 80:
				cond = "rain"
			}
			fmt.Fprintf(&b, "%s,%s,%s\n", loc, weather.Day(d).Format("2006-01-02"), cond)
		}
	}
	return b.String()
}

func main() {
	records, err := weather.LoadCSV(strings.NewReader(buildCSV()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded historical weather for %d locations\n", len(records.Locations()))

	ds := dataset.NewCityscapes(dataset.CityscapesConfig{Total: 2400, Devices: 2, Seed: 19})
	fmt.Println("training base model...")
	base := pipeline.TrainBase(ds, nn.ArchResNet34, 18, 19)

	for _, s := range []pipeline.Strategy{pipeline.NoAdapt, pipeline.Nazar} {
		cfg := pipeline.DefaultConfig(s, 19)
		cfg.Windows = 8
		cfg.Weather = records // the CSV records replace the generator
		// The all-snow January confounds early analyses (see the note
		// below); retire versions whose causes vanish from later ones.
		cfg.RetireAfter = 2
		start := time.Now()
		res, err := pipeline.Run(ds, base, cfg)
		if err != nil {
			log.Fatal(err)
		}
		mAll, _ := res.AvgAccLast(7)
		mDrift, _ := res.AvgDriftAccLast(7)
		fmt.Printf("%-9s  all %.1f%%  drifted %.1f%%  (%.1fs)\n",
			s, 100*mAll, 100*mDrift, time.Since(start).Seconds())
		if s == pipeline.Nazar {
			fmt.Println("  causes per window:")
			for i, w := range res.Windows {
				fmt.Printf("    w%d: %v\n", i, w.Causes)
			}
		}
	}
	fmt.Println("\nnote: the January snowstorm dominates windows 0-1 and the")
	fmt.Println("March rain windows 5-6; Nazar's causes should track that calendar.")
}
