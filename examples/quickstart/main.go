// Quickstart: the minimal Nazar loop in one file.
//
// It builds a synthetic image world, trains a classifier, streams foggy
// and clean inferences through a device, lets the cloud detect the drift,
// mine its root cause, adapt a BN version for it, and shows the accuracy
// recovered once the device installs the version.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"nazar/internal/cloud"
	"nazar/internal/detect"
	"nazar/internal/device"
	"nazar/internal/driftlog"
	"nazar/internal/imagesim"
	"nazar/internal/nn"
	"nazar/internal/tensor"
	"nazar/internal/weather"
)

func main() {
	// 1. A world and a trained model (stand-ins for ImageNet + ResNet50).
	const classes = 12
	world := imagesim.NewWorld(imagesim.DefaultConfig(classes, 7))
	rng := tensor.NewRand(7, 1)
	model := nn.NewClassifier(nn.ArchResNet50, world.Dim(), classes, rng)

	trainX := tensor.New(classes*50, world.Dim())
	trainY := make([]int, trainX.Rows)
	for i := range trainY {
		trainY[i] = i % classes
		copy(trainX.Row(i), world.Sample(trainY[i], rng))
	}
	fmt.Println("training the base model...")
	nn.Fit(model, trainX, trainY, nn.TrainConfig{Epochs: 25, BatchSize: 32, Rng: rng})

	// 2. A device with the on-device pieces: version pool, MSP detector,
	// input sampling.
	dev := device.New(device.Config{
		ID:         "android_42",
		Location:   "Helsinki",
		SampleRate: 1.0, // upload everything for this tiny demo
		Detector:   detect.Threshold{Scorer: detect.MSP{}, T: 0.95},
		Rng:        tensor.NewRand(8, 1),
	}, model)

	// 3. The cloud service.
	cfg := cloud.DefaultConfig()
	cfg.MinSamplesPerCause = 16
	svc := cloud.NewService(model, cfg)

	// 4. Stream a foggy week and a clear week.
	day := weather.Day(10)
	evalAccuracy := func(label string, corrupted bool) float64 {
		correct, total := 0, 0
		evalRng := tensor.NewRand(99, 1)
		for i := 0; i < 240; i++ {
			class := i % classes
			x := world.Sample(class, evalRng)
			attrs := map[string]string{driftlog.AttrWeather: "clear-day"}
			if corrupted {
				x = world.Corrupt(x, imagesim.Fog, imagesim.DefaultSeverity, evalRng)
				attrs[driftlog.AttrWeather] = "fog"
			}
			inf, _, _ := dev.Infer(day, x, attrs)
			if inf.Predicted == class {
				correct++
			}
			total++
		}
		acc := float64(correct) / float64(total)
		fmt.Printf("  %-28s %.1f%%\n", label, 100*acc)
		return acc
	}

	fmt.Println("\naccuracy before any drift:")
	evalAccuracy("clean images", false)
	before := evalAccuracy("foggy images", true)

	fmt.Println("\nstreaming a foggy week through the device...")
	for i := 0; i < 400; i++ {
		class := i % classes
		cond, x := "clear-day", world.Sample(class, rng)
		if i%2 == 0 {
			cond = "fog"
			x = world.Corrupt(x, imagesim.Fog, imagesim.DefaultSeverity, rng)
		}
		ts := day.Add(time.Duration(i) * time.Minute)
		_, entry, sample := dev.Infer(ts, x, map[string]string{driftlog.AttrWeather: cond})
		svc.Ingest(entry, sample)
	}

	// 5. The cloud analyzes the drift log and adapts by cause.
	res, err := svc.RunWindow(day, day.AddDate(0, 0, 1), day.AddDate(0, 0, 1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nroot causes found: ")
	for _, c := range res.Causes {
		fmt.Printf("%s (risk ratio %.2f)  ", c, c.Metrics.RiskRatio)
	}
	fmt.Printf("\nBN versions produced: %d (analysis %v, adaptation %v)\n",
		len(res.Versions), res.RCADuration.Round(time.Millisecond), res.AdaptDuration.Round(time.Millisecond))

	// 6. Deploy to the device and measure the recovery.
	for _, v := range res.Versions {
		if err := dev.Pool.Install(v, day.AddDate(0, 0, 1)); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("installed %s (%d bytes — vs %d for the full model)\n",
			v.ID, v.SizeBytes(), model.SizeBytes())
	}

	fmt.Println("\naccuracy after by-cause adaptation:")
	evalAccuracy("clean images", false)
	after := evalAccuracy("foggy images", true)
	fmt.Printf("\nfog accuracy recovered: %.1f%% -> %.1f%%\n", 100*before, 100*after)
}
