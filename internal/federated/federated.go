// Package federated implements the paper's primary future-work direction
// (§6): adapting Nazar to federated learning. Instead of uploading
// sampled inputs for cloud-side TENT, each device adapts its batch-norm
// parameters *locally* on its own cause-matching inputs and uploads only
// the resulting BN state; the cloud aggregates the per-device states into
// one BN version per root cause (FedBN-style weighted averaging).
//
// No input ever leaves a device, which also addresses the paper's second
// future-work item (improved user privacy). The rest of Nazar is
// unchanged: detection, the drift log (metadata only), and root-cause
// analysis still run exactly as before — only the adaptation data path
// moves on-device.
package federated

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"nazar/internal/adapt"
	"nazar/internal/nn"
	"nazar/internal/rca"
	"nazar/internal/tensor"
)

// ClientUpdate is one device's locally adapted BN state for one cause.
type ClientUpdate struct {
	DeviceID string
	CauseKey string
	Snapshot *nn.BNSnapshot
	// Samples is the local adaptation sample count (the aggregation
	// weight, as in FedAvg).
	Samples int
}

// LocalAdapt runs self-supervised adaptation on a device's local buffer
// of cause-matching inputs and returns the BN state to upload. The base
// network is not mutated.
func LocalAdapt(base *nn.Network, x *tensor.Matrix, causeKey, deviceID string, cfg adapt.Config) (ClientUpdate, error) {
	if x == nil || x.Rows < 2 {
		return ClientUpdate{}, fmt.Errorf("federated: device %s has too few samples for %s", deviceID, causeKey)
	}
	adapted, err := adapt.Adapt(base, x, cfg)
	if err != nil {
		return ClientUpdate{}, fmt.Errorf("federated: device %s: %w", deviceID, err)
	}
	return ClientUpdate{
		DeviceID: deviceID,
		CauseKey: causeKey,
		Snapshot: nn.CaptureBN(adapted),
		Samples:  x.Rows,
	}, nil
}

// Aggregate combines client updates for one cause into a single BN
// snapshot by sample-weighted averaging of γ, β and the running
// statistics.
func Aggregate(updates []ClientUpdate) (*nn.BNSnapshot, error) {
	if len(updates) == 0 {
		return nil, fmt.Errorf("federated: no updates to aggregate")
	}
	ref := updates[0].Snapshot
	total := 0
	for _, u := range updates {
		if u.Samples <= 0 {
			return nil, fmt.Errorf("federated: device %s reports %d samples", u.DeviceID, u.Samples)
		}
		if len(u.Snapshot.Layers) != len(ref.Layers) {
			return nil, fmt.Errorf("federated: device %s snapshot has %d BN layers, expected %d",
				u.DeviceID, len(u.Snapshot.Layers), len(ref.Layers))
		}
		total += u.Samples
	}
	out := &nn.BNSnapshot{Layers: make([]nn.BNLayerState, len(ref.Layers))}
	for li := range ref.Layers {
		dim := len(ref.Layers[li].Gamma)
		layer := nn.BNLayerState{
			Gamma:   make([]float64, dim),
			Beta:    make([]float64, dim),
			RunMean: make([]float64, dim),
			RunVar:  make([]float64, dim),
		}
		for _, u := range updates {
			ul := u.Snapshot.Layers[li]
			if len(ul.Gamma) != dim {
				return nil, fmt.Errorf("federated: device %s BN layer %d dim %d, expected %d",
					u.DeviceID, li, len(ul.Gamma), dim)
			}
			w := float64(u.Samples) / float64(total)
			for j := 0; j < dim; j++ {
				layer.Gamma[j] += w * ul.Gamma[j]
				layer.Beta[j] += w * ul.Beta[j]
				layer.RunMean[j] += w * ul.RunMean[j]
				layer.RunVar[j] += w * ul.RunVar[j]
			}
		}
		out.Layers[li] = layer
	}
	return out, nil
}

// Coordinator collects client updates and produces one federated BN
// version per cause each round. Safe for concurrent Submit.
type Coordinator struct {
	mu      sync.Mutex
	pending map[string][]ClientUpdate // cause key -> updates
	seq     int
}

// NewCoordinator returns an empty coordinator.
func NewCoordinator() *Coordinator {
	return &Coordinator{pending: map[string][]ClientUpdate{}}
}

// Submit queues one device's update for the next round. A device may
// submit for several causes; a resubmission for the same cause replaces
// its previous update.
func (c *Coordinator) Submit(u ClientUpdate) {
	c.mu.Lock()
	defer c.mu.Unlock()
	list := c.pending[u.CauseKey]
	for i := range list {
		if list[i].DeviceID == u.DeviceID {
			list[i] = u
			return
		}
	}
	c.pending[u.CauseKey] = append(list, u)
}

// Pending returns how many updates are queued for a cause.
func (c *Coordinator) Pending(causeKey string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending[causeKey])
}

// Round aggregates every cause with at least minClients updates into a
// deployable BN version (matching causes by key) and clears the
// aggregated queues. Causes with too few clients stay queued.
func (c *Coordinator) Round(causes []rca.Cause, minClients int, now time.Time) ([]adapt.BNVersion, error) {
	if minClients < 1 {
		minClients = 1
	}
	byKey := map[string]rca.Cause{}
	for _, cause := range causes {
		byKey[cause.Key()] = cause
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	keys := make([]string, 0, len(c.pending))
	for k := range c.pending {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var versions []adapt.BNVersion
	for _, key := range keys {
		updates := c.pending[key]
		cause, known := byKey[key]
		if !known || len(updates) < minClients {
			continue
		}
		snap, err := Aggregate(updates)
		if err != nil {
			return nil, fmt.Errorf("federated: cause %s: %w", key, err)
		}
		c.seq++
		versions = append(versions, adapt.BNVersion{
			ID:        fmt.Sprintf("fed:%s@%d#%d", key, now.Unix(), c.seq),
			Cause:     cause,
			Snapshot:  snap,
			CreatedAt: now,
		})
		delete(c.pending, key)
	}
	return versions, nil
}
