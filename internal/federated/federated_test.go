package federated

import (
	"strings"
	"sync"
	"testing"
	"time"

	"nazar/internal/adapt"
	"nazar/internal/driftlog"
	"nazar/internal/fim"
	"nazar/internal/imagesim"
	"nazar/internal/nn"
	"nazar/internal/rca"
	"nazar/internal/tensor"
)

type rig struct {
	world *imagesim.World
	base  *nn.Network
	valX  *tensor.Matrix
	valY  []int
}

var (
	rigOnce sync.Once
	shared  *rig
)

func getRig(t *testing.T) *rig {
	t.Helper()
	rigOnce.Do(func() {
		const classes = 12
		world := imagesim.NewWorld(imagesim.DefaultConfig(classes, 600))
		rng := tensor.NewRand(600, 1)
		base := nn.NewClassifier(nn.ArchResNet50, world.Dim(), classes, rng)
		n := classes * 50
		x := tensor.New(n, world.Dim())
		y := make([]int, n)
		for i := 0; i < n; i++ {
			y[i] = i % classes
			copy(x.Row(i), world.Sample(y[i], rng))
		}
		nn.Fit(base, x, y, nn.TrainConfig{Epochs: 20, BatchSize: 32, Rng: rng})
		valX := tensor.New(classes*15, world.Dim())
		valY := make([]int, classes*15)
		for i := range valY {
			valY[i] = i % classes
			copy(valX.Row(i), world.Sample(valY[i], rng))
		}
		shared = &rig{world: world, base: base, valX: valX, valY: valY}
	})
	return shared
}

func fogCause() rca.Cause {
	return rca.Cause{Items: fim.NewItemset(driftlog.Cond{Attr: driftlog.AttrWeather, Value: "fog"})}
}

// deviceUpdate adapts locally on one device's fog-corrupted buffer.
func deviceUpdate(t *testing.T, r *rig, devID string, samples int, seed uint64) ClientUpdate {
	t.Helper()
	rng := tensor.NewRand(seed, 1)
	x := tensor.New(samples, r.world.Dim())
	for i := 0; i < samples; i++ {
		c := i % r.world.Classes()
		copy(x.Row(i), r.world.Corrupt(r.world.Sample(c, rng), imagesim.Fog, imagesim.DefaultSeverity, rng))
	}
	u, err := LocalAdapt(r.base, x, fogCause().Key(), devID, adapt.Config{Rng: rng, Epochs: 2, MinSteps: 20})
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestLocalAdaptRejectsTinyBuffers(t *testing.T) {
	r := getRig(t)
	if _, err := LocalAdapt(r.base, nil, "k", "d", adapt.DefaultConfig()); err == nil {
		t.Fatal("nil buffer must error")
	}
	one := tensor.New(1, r.world.Dim())
	if _, err := LocalAdapt(r.base, one, "k", "d", adapt.DefaultConfig()); err == nil {
		t.Fatal("single sample must error")
	}
}

func TestFederatedAggregationRecoversDrift(t *testing.T) {
	// The future-work claim made concrete: aggregating per-device BN
	// adaptations recovers most of what centralized by-cause adaptation
	// achieves — without any image leaving a device.
	r := getRig(t)
	rng := tensor.NewRand(601, 1)

	var updates []ClientUpdate
	for d := 0; d < 5; d++ {
		updates = append(updates, deviceUpdate(t, r, "dev", 64, 700+uint64(d)))
	}
	snap, err := Aggregate(updates)
	if err != nil {
		t.Fatal(err)
	}
	fedModel := r.base.Clone()
	if err := snap.ApplyTo(fedModel); err != nil {
		t.Fatal(err)
	}

	// Test set.
	fogX := tensor.New(r.valX.Rows, r.world.Dim())
	for i := 0; i < fogX.Rows; i++ {
		copy(fogX.Row(i), r.world.Corrupt(r.valX.Row(i), imagesim.Fog, imagesim.DefaultSeverity, rng))
	}
	before := r.base.Accuracy(fogX, r.valY)
	fedAcc := fedModel.Accuracy(fogX, r.valY)
	if fedAcc <= before+0.05 {
		t.Fatalf("federated adaptation should recover fog: %v -> %v", before, fedAcc)
	}

	// Compare against centralized adaptation on the pooled data.
	pool := tensor.New(5*64, r.world.Dim())
	prng := tensor.NewRand(702, 1)
	for i := 0; i < pool.Rows; i++ {
		c := i % r.world.Classes()
		copy(pool.Row(i), r.world.Corrupt(r.world.Sample(c, prng), imagesim.Fog, imagesim.DefaultSeverity, prng))
	}
	central, err := adapt.Adapt(r.base, pool, adapt.Config{Rng: prng, Epochs: 2, MinSteps: 20})
	if err != nil {
		t.Fatal(err)
	}
	centralAcc := central.Accuracy(fogX, r.valY)
	if fedAcc < centralAcc-0.12 {
		t.Fatalf("federated %v too far below centralized %v", fedAcc, centralAcc)
	}
}

func TestAggregateValidation(t *testing.T) {
	r := getRig(t)
	if _, err := Aggregate(nil); err == nil {
		t.Fatal("empty aggregate must error")
	}
	u := deviceUpdate(t, r, "d1", 16, 800)
	bad := u
	bad.Samples = 0
	if _, err := Aggregate([]ClientUpdate{bad}); err == nil {
		t.Fatal("zero-sample update must error")
	}
	other := nn.NewClassifier(nn.ArchResNet18, r.world.Dim(), 3, tensor.NewRand(1, 1))
	mismatch := ClientUpdate{DeviceID: "d2", CauseKey: u.CauseKey, Snapshot: nn.CaptureBN(other), Samples: 4}
	if _, err := Aggregate([]ClientUpdate{u, mismatch}); err == nil {
		t.Fatal("layer-count mismatch must error")
	}
}

func TestAggregateWeighting(t *testing.T) {
	r := getRig(t)
	a := deviceUpdate(t, r, "a", 16, 801)
	b := deviceUpdate(t, r, "b", 16, 802)
	// Heavily weighting one update must pull the average toward it.
	a.Samples = 1000
	b.Samples = 1
	snap, err := Aggregate([]ClientUpdate{a, b})
	if err != nil {
		t.Fatal(err)
	}
	g := snap.Layers[0].Gamma[0]
	ga := a.Snapshot.Layers[0].Gamma[0]
	gb := b.Snapshot.Layers[0].Gamma[0]
	if ga == gb {
		t.Skip("degenerate: identical gammas")
	}
	distA := g - ga
	if distA < 0 {
		distA = -distA
	}
	distB := g - gb
	if distB < 0 {
		distB = -distB
	}
	if distA >= distB {
		t.Fatalf("weighted average should sit near the heavy update: |g-ga|=%v |g-gb|=%v", distA, distB)
	}
}

func TestCoordinatorRound(t *testing.T) {
	r := getRig(t)
	coord := NewCoordinator()
	cause := fogCause()
	now := time.Date(2020, 3, 1, 0, 0, 0, 0, time.UTC)

	coord.Submit(deviceUpdate(t, r, "d1", 16, 900))
	coord.Submit(deviceUpdate(t, r, "d2", 16, 901))
	if coord.Pending(cause.Key()) != 2 {
		t.Fatalf("pending %d", coord.Pending(cause.Key()))
	}

	// Not enough clients yet.
	versions, err := coord.Round([]rca.Cause{cause}, 3, now)
	if err != nil {
		t.Fatal(err)
	}
	if len(versions) != 0 {
		t.Fatal("round should wait for minClients")
	}
	coord.Submit(deviceUpdate(t, r, "d3", 16, 902))
	versions, err = coord.Round([]rca.Cause{cause}, 3, now)
	if err != nil {
		t.Fatal(err)
	}
	if len(versions) != 1 {
		t.Fatalf("got %d versions", len(versions))
	}
	v := versions[0]
	if v.Cause.Key() != cause.Key() || !strings.HasPrefix(v.ID, "fed:") {
		t.Fatalf("version %+v", v)
	}
	// Queue cleared after aggregation.
	if coord.Pending(cause.Key()) != 0 {
		t.Fatal("queue not cleared")
	}
	// The version installs into a model pool like any other.
	if _, err := adapt.Materialize(r.base, v); err != nil {
		t.Fatal(err)
	}
}

func TestCoordinatorResubmitReplaces(t *testing.T) {
	r := getRig(t)
	coord := NewCoordinator()
	coord.Submit(deviceUpdate(t, r, "d1", 16, 903))
	coord.Submit(deviceUpdate(t, r, "d1", 32, 904))
	if coord.Pending(fogCause().Key()) != 1 {
		t.Fatal("resubmission should replace, not append")
	}
}

func TestCoordinatorIgnoresUnknownCauses(t *testing.T) {
	r := getRig(t)
	coord := NewCoordinator()
	u := deviceUpdate(t, r, "d1", 16, 905)
	u.CauseKey = "weather=hail"
	coord.Submit(u)
	versions, err := coord.Round([]rca.Cause{fogCause()}, 1, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if len(versions) != 0 {
		t.Fatal("unknown cause must stay queued")
	}
	if coord.Pending("weather=hail") != 1 {
		t.Fatal("unknown cause should remain pending")
	}
}
