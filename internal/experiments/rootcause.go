package experiments

import (
	"fmt"
	"math"
	"time"

	"nazar/internal/driftlog"
	"nazar/internal/fim"
	"nazar/internal/metrics"
	"nazar/internal/rca"
	"nazar/internal/tensor"
	"nazar/internal/weather"
)

// Table3Result is the worked FIM example of Tables 2–3.
type Table3Result struct {
	Log     *Table
	Mined   *Table
	Final   *Table
	TopKey  string
	NumFIM  int
	NumFull int
}

// Table3Example reproduces the paper's drift-log walkthrough: the
// five-entry log of Table 2, the mined itemsets with their four metrics
// (Table 3), and the final causes after set reduction + counterfactual
// analysis ({snow}).
func Table3Example() (*Table3Result, error) {
	s := driftlog.NewStore()
	base := time.Date(2020, 1, 15, 0, 0, 0, 0, time.UTC)
	rows := []struct {
		clock, device, weather, location string
		drift                            bool
	}{
		{"06:02:01", "android_42", "clear-day", "Helsinki", false},
		{"06:02:23", "android_21", "clear-day", "New York", false},
		{"06:04:55", "android_21", "clear-day", "New York", true},
		{"08:03:32", "android_21", "snow", "New York", true},
		{"11:05:01", "android_42", "snow", "Helsinki", true},
	}
	logTable := &Table{
		ID:     "table2",
		Title:  "Example drift log",
		Header: []string{"Time", "Device ID", "Weather", "Location", "Drift"},
	}
	for _, r := range rows {
		clock, err := time.Parse("15:04:05", r.clock)
		if err != nil {
			return nil, err
		}
		s.Append(driftlog.Entry{
			Time: base.Add(time.Duration(clock.Hour())*time.Hour +
				time.Duration(clock.Minute())*time.Minute +
				time.Duration(clock.Second())*time.Second),
			Drift:    r.drift,
			SampleID: -1,
			Attrs: map[string]string{
				driftlog.AttrDevice:   r.device,
				driftlog.AttrWeather:  r.weather,
				driftlog.AttrLocation: r.location,
			},
		})
		logTable.AddRow(r.clock, r.device, r.weather, r.location, fmt.Sprint(r.drift))
	}

	v := s.All()
	mined, err := fim.Mine(v, nil, fim.DefaultThresholds())
	if err != nil {
		return nil, err
	}
	minedTable := &Table{
		ID:     "table3",
		Title:  "Frequent itemset mining results (passing thresholds)",
		Header: []string{"Rank", "Occ", "Sup", "RR", "Conf", "Attributes"},
	}
	for i, r := range mined {
		rr := fmt.Sprintf("%.2f", r.Metrics.RiskRatio)
		minedTable.AddRow(fmt.Sprint(i), f3(r.Metrics.Occurrence), f3(r.Metrics.Support),
			rr, f3(r.Metrics.Confidence), r.Items.String())
	}

	causes, err := rca.Analyze(v, rca.DefaultConfig(), rca.Full)
	if err != nil {
		return nil, err
	}
	finalTable := &Table{
		ID:     "table3-final",
		Title:  "Final causes after set reduction + counterfactual analysis",
		Header: []string{"Cause", "Risk ratio"},
	}
	for _, c := range causes {
		finalTable.AddRow(c.String(), fmt.Sprintf("%.2f", c.Metrics.RiskRatio))
	}
	res := &Table3Result{
		Log:     logTable,
		Mined:   minedTable,
		Final:   finalTable,
		NumFIM:  len(mined),
		NumFull: len(causes),
	}
	if len(causes) > 0 {
		res.TopKey = causes[0].Key()
	}
	return res, nil
}

// Table5Scenario names one ground-truth drift combination.
type Table5Scenario struct {
	Name   string
	Causes []weather.Condition
}

// table5Scenarios are the paper's 8 scenarios.
func table5Scenarios() []Table5Scenario {
	return []Table5Scenario{
		{"None", nil},
		{"Rain", []weather.Condition{weather.Rain}},
		{"Snow", []weather.Condition{weather.Snow}},
		{"Fog", []weather.Condition{weather.Fog}},
		{"Fog & Snow", []weather.Condition{weather.Fog, weather.Snow}},
		{"Fog & Rain", []weather.Condition{weather.Fog, weather.Rain}},
		{"Snow & Rain", []weather.Condition{weather.Snow, weather.Rain}},
		{"Snow, Rain & Fog", []weather.Condition{weather.Snow, weather.Rain, weather.Fog}},
	}
}

// Table5Result holds the FMS matrix: rows = RCA variants, columns =
// scenarios.
type Table5Result struct {
	FMS   map[rca.Mode]map[string]float64
	Table *Table
}

// buildTable5Log synthesizes the drift log of one scenario: 14 days of
// real weather over the animal locations, drift applied only for the
// scenario's conditions, detector noise matching the system's operating
// point.
func buildTable5Log(scn Table5Scenario, seed uint64, days, devices, perDay int) (*driftlog.Store, []string, []map[string]string) {
	rng := tensor.NewRand(seed, 0x7AB5)
	gen := weather.NewGenerator(seed)
	s := driftlog.NewStore()
	var truth []string
	var attrs []map[string]string
	isCause := map[weather.Condition]bool{}
	for _, c := range scn.Causes {
		isCause[c] = true
	}
	for d := 0; d < days; d++ {
		day := weather.Day(d)
		for _, loc := range weather.AnimalsLocations {
			cond, _ := gen.ConditionAt(loc, day)
			for dev := 0; dev < devices; dev++ {
				devID := fmt.Sprintf("android_%s_%d", loc, dev)
				for k := 0; k < perDay; k++ {
					drifted := isCause[cond]
					label := "clean"
					if drifted {
						label = string(cond)
					}
					// Detector operating point: ~80 % recall on
					// severity-3 drift, ~12 % false positives.
					detected := rng.Float64() < 0.12
					if drifted {
						detected = rng.Float64() < 0.80
					}
					a := map[string]string{
						driftlog.AttrWeather:  string(cond),
						driftlog.AttrLocation: loc,
						driftlog.AttrDevice:   devID,
					}
					s.Append(driftlog.Entry{
						Time:     day.Add(time.Duration(dev*perDay+k) * time.Minute),
						Drift:    detected,
						SampleID: -1,
						Attrs:    a,
					})
					truth = append(truth, label)
					attrs = append(attrs, a)
				}
			}
		}
	}
	return s, truth, attrs
}

// Table5 reproduces the RCA-variant FMS comparison over the 8 scenarios.
func Table5(o Options) (*Table5Result, error) {
	o = o.withDefaults()
	days, devices, perDay := 14, 4, 2
	if o.Quick {
		days, devices, perDay = 14, 2, 1
	}
	res := &Table5Result{FMS: map[rca.Mode]map[string]float64{}}
	modes := []rca.Mode{rca.FIMOnly, rca.FIMSetReduction, rca.Full}
	for _, m := range modes {
		res.FMS[m] = map[string]float64{}
	}
	table := &Table{
		ID:     "table5",
		Title:  "Fowlkes–Mallows score of RCA variants (1 is optimal)",
		Header: []string{"Scenario", "FIM", "FIM+SR", "FIM+SR+CF"},
	}
	// Seed 2 exhibits all three conditions in the window (checked by
	// the weather tests); offset per scenario for variety.
	for _, scn := range table5Scenarios() {
		s, truth, attrs := buildTable5Log(scn, 2, days, devices, perDay)
		v := s.All()
		row := []string{scn.Name}
		for _, mode := range modes {
			causes, err := rca.Analyze(v, rca.DefaultConfig(), mode)
			if err != nil {
				return nil, err
			}
			pred := make([]string, len(truth))
			for i := range truth {
				pred[i] = rca.CauseLabel(causes, rca.AssignCause(causes, attrs[i]))
			}
			fms := metrics.FowlkesMallows(truth, pred)
			res.FMS[mode][scn.Name] = fms
			row = append(row, f3(fms))
		}
		table.AddRow(row...)
	}
	table.Notes = append(table.Notes,
		"paper: the full pipeline is optimal (1.0) in every scenario except snow (0.874)")
	res.Table = table
	return res, nil
}

// Fig9dPoint is one scalability measurement.
type Fig9dPoint struct {
	Rows    int
	Seconds float64
}

// Fig9dResult holds the RCA-runtime scaling measurements plus a linearity
// diagnostic (R² of a least-squares line through the points).
type Fig9dResult struct {
	Points []Fig9dPoint
	R2     float64
	Table  *Table
}

// Fig9d measures root-cause-analysis runtime as a function of drift-log
// size; the paper reports a completely linear relationship.
func Fig9d(o Options) (*Fig9dResult, error) {
	o = o.withDefaults()
	sizes := []int{20000, 40000, 80000, 160000, 320000}
	if o.Quick {
		sizes = []int{5000, 10000, 20000, 40000}
	}
	res := &Fig9dResult{}
	table := &Table{
		ID:     "fig9d",
		Title:  "Root-cause analysis runtime vs drift-log rows",
		Header: []string{"Rows", "Runtime (s)"},
	}
	for _, n := range sizes {
		s := buildScalabilityLog(n, o.Seed)
		v := s.All()
		// Minimum of three runs: scheduling noise only ever inflates a
		// measurement, so the minimum is the cleanest estimate.
		best := math.Inf(1)
		for rep := 0; rep < 3; rep++ {
			start := time.Now()
			if _, err := rca.Analyze(v, rca.DefaultConfig(), rca.Full); err != nil {
				return nil, err
			}
			if secs := time.Since(start).Seconds(); secs < best {
				best = secs
			}
		}
		res.Points = append(res.Points, Fig9dPoint{Rows: n, Seconds: best})
		table.AddRow(fmt.Sprint(n), fmt.Sprintf("%.4f", best))
	}
	res.R2 = linearR2(res.Points)
	table.Notes = append(table.Notes,
		fmt.Sprintf("linear fit R² = %.4f (paper: completely linear)", res.R2))
	res.Table = table
	return res, nil
}

// buildScalabilityLog synthesizes a large mixed drift log.
func buildScalabilityLog(n int, seed uint64) *driftlog.Store {
	rng := tensor.NewRand(seed, 0x5CA1E)
	s := driftlog.NewStore()
	conditions := []string{"clear-day", "rain", "snow", "fog"}
	entries := make([]driftlog.Entry, 0, n)
	base := weather.Start
	for i := 0; i < n; i++ {
		cond := conditions[rng.IntN(len(conditions))]
		drift := rng.Float64() < 0.12
		if cond != "clear-day" {
			drift = rng.Float64() < 0.7
		}
		entries = append(entries, driftlog.Entry{
			Time:     base.Add(time.Duration(i) * time.Second),
			Drift:    drift,
			SampleID: -1,
			Attrs: map[string]string{
				driftlog.AttrWeather:  cond,
				driftlog.AttrLocation: fmt.Sprintf("city_%d", rng.IntN(10)),
				driftlog.AttrDevice:   fmt.Sprintf("dev_%d", rng.IntN(64)),
			},
		})
	}
	s.AppendBatch(entries)
	return s
}

// linearR2 fits seconds = a·rows + b and returns R².
func linearR2(points []Fig9dPoint) float64 {
	n := float64(len(points))
	if n < 2 {
		return 1
	}
	var sx, sy, sxx, sxy, syy float64
	for _, p := range points {
		x, y := float64(p.Rows), p.Seconds
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		syy += y * y
	}
	cov := sxy - sx*sy/n
	varX := sxx - sx*sx/n
	varY := syy - sy*sy/n
	if varX <= 0 || varY <= 0 {
		return 1
	}
	return (cov * cov) / (varX * varY)
}
