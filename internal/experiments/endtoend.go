package experiments

import (
	"fmt"
	"sync"
	"time"

	"nazar/internal/dataset"
	"nazar/internal/imagesim"
	"nazar/internal/nn"
	"nazar/internal/pipeline"
	"nazar/internal/rca"
)

// e2eKey identifies one cached end-to-end run.
type e2eKey struct {
	dataset  string
	arch     nn.Arch
	strategy pipeline.Strategy
	windows  int
	severity int
	alpha    float64
	rcaMode  rca.Mode
	quick    bool
	seed     uint64
}

var (
	e2eMu   sync.Mutex
	e2eMemo = map[e2eKey]*pipeline.Result{}
	dsMemo  = map[string]*dataset.Dataset{}
	netMemo = map[string]*nn.Network{}
)

// e2eDataset builds (or reuses) the workload dataset.
func e2eDataset(name string, alpha float64, quick bool, seed uint64) *dataset.Dataset {
	key := fmt.Sprintf("%s/%v/%v/%d", name, alpha, quick, seed)
	if ds, ok := dsMemo[key]; ok {
		return ds
	}
	var ds *dataset.Dataset
	switch name {
	case "cityscapes":
		total := 4000
		if quick {
			total = 1600
		}
		ds = dataset.NewCityscapes(dataset.CityscapesConfig{Total: total, Devices: 2, Seed: seed})
	case "animals":
		cfg := dataset.DefaultAnimals(seed)
		cfg.Alpha = alpha
		cfg.Classes = 24
		cfg.TrainPerClass = 50
		cfg.ValPerClass = 12
		cfg.DevicesPerLocation = 4
		if quick {
			cfg.Classes = 12
			cfg.TrainPerClass = 30
			cfg.DevicesPerLocation = 2
		}
		ds = dataset.NewAnimals(cfg)
	default:
		panic("experiments: unknown dataset " + name)
	}
	dsMemo[key] = ds
	return ds
}

// e2eBase trains (or reuses) the base model for a dataset+arch.
func e2eBase(ds *dataset.Dataset, arch nn.Arch, quick bool, seed uint64) *nn.Network {
	key := fmt.Sprintf("%s/%d/%s/%v/%d", ds.Name, ds.World.Classes(), arch, quick, seed)
	if net, ok := netMemo[key]; ok {
		return net
	}
	epochs := 25
	if quick {
		epochs = 16
	}
	net := pipeline.TrainBase(ds, arch, epochs, seed)
	netMemo[key] = net
	return net
}

// runE2E executes (or reuses) one end-to-end run.
func runE2E(k e2eKey) (*pipeline.Result, error) {
	e2eMu.Lock()
	defer e2eMu.Unlock()
	if res, ok := e2eMemo[k]; ok {
		return res, nil
	}
	ds := e2eDataset(k.dataset, k.alpha, k.quick, k.seed)
	base := e2eBase(ds, k.arch, k.quick, k.seed)
	cfg := pipeline.DefaultConfig(k.strategy, k.seed)
	cfg.Windows = k.windows
	cfg.Severity = k.severity
	cfg.Cloud.RCAMode = k.rcaMode
	if k.quick {
		cfg.Cloud.AdaptCfg.MinSteps = 15
	}
	res, err := pipeline.Run(ds, base, cfg)
	if err != nil {
		return nil, err
	}
	e2eMemo[k] = res
	return res, nil
}

// e2eWindows picks the paper's window count.
func e2eWindows(o Options) int {
	if o.Quick {
		return 4
	}
	return 8
}

// Fig8Result holds the cityscapes end-to-end comparison: Figures 8a
// (all-data accuracy per architecture), 8b (drifted-data accuracy), 8c
// (BN version counts, FIM-only vs full) and 8d (cumulative traces).
type Fig8Result struct {
	// AccAll[arch][strategy] and AccDrift[arch][strategy] are means
	// over the last windows (±std in the tables).
	AccAll   map[nn.Arch]map[pipeline.Strategy]float64
	AccDrift map[nn.Arch]map[pipeline.Strategy]float64
	// VersionCounts per window: full RCA vs FIM-only (ResNet18, as in
	// the paper).
	VersionsFull, VersionsFIM []int
	// Cumulative traces for ResNet50 (8d).
	CumAll, CumDrift               map[pipeline.Strategy][]float64
	TableA, TableB, TableC, TableD *Table
}

// Fig8 reproduces the cityscapes end-to-end evaluation.
func Fig8(o Options) (*Fig8Result, error) {
	o = o.withDefaults()
	res := &Fig8Result{
		AccAll:   map[nn.Arch]map[pipeline.Strategy]float64{},
		AccDrift: map[nn.Arch]map[pipeline.Strategy]float64{},
		CumAll:   map[pipeline.Strategy][]float64{},
		CumDrift: map[pipeline.Strategy][]float64{},
	}
	windows := e2eWindows(o)
	lastN := windows - 1

	archs := nn.Archs
	if o.Quick {
		archs = []nn.Arch{nn.ArchResNet18, nn.ArchResNet50}
	}
	tableA := &Table{ID: "fig8a", Title: "Cityscapes: average accuracy, all data (last windows)",
		Header: []string{"Model", "No-adapt", "Adapt-all", "Nazar"}}
	tableB := &Table{ID: "fig8b", Title: "Cityscapes: average accuracy, drifted data",
		Header: []string{"Model", "No-adapt", "Adapt-all", "Nazar"}}

	for _, arch := range archs {
		res.AccAll[arch] = map[pipeline.Strategy]float64{}
		res.AccDrift[arch] = map[pipeline.Strategy]float64{}
		rowA := []string{string(arch)}
		rowB := []string{string(arch)}
		for _, s := range pipeline.Strategies {
			r, err := runE2E(e2eKey{dataset: "cityscapes", arch: arch, strategy: s,
				windows: windows, severity: imagesim.DefaultSeverity, rcaMode: rca.Full,
				quick: o.Quick, seed: o.Seed})
			if err != nil {
				return nil, err
			}
			mAll, sdAll := r.AvgAccLast(lastN)
			mDrift, sdDrift := r.AvgDriftAccLast(lastN)
			res.AccAll[arch][s] = mAll
			res.AccDrift[arch][s] = mDrift
			rowA = append(rowA, fmt.Sprintf("%s ±%.1f", pct(mAll), 100*sdAll))
			rowB = append(rowB, fmt.Sprintf("%s ±%.1f", pct(mDrift), 100*sdDrift))
			if arch == nn.ArchResNet50 {
				for _, w := range r.Windows {
					res.CumAll[s] = append(res.CumAll[s], w.CumAccAll)
					res.CumDrift[s] = append(res.CumDrift[s], w.CumAccDrift)
				}
			}
		}
		tableA.AddRow(rowA...)
		tableB.AddRow(rowB...)
	}
	tableA.Notes = append(tableA.Notes, "paper: Nazar +10.1–19.4% over adapt-all, smallest std")
	tableB.Notes = append(tableB.Notes, "paper: up to +49.5% (ResNet18) / +37.6% (ResNet34) over adapt-all")

	// 8c: version counts, ResNet18, full vs FIM-only, no capacity cap.
	full, err := runE2E(e2eKey{dataset: "cityscapes", arch: nn.ArchResNet18, strategy: pipeline.Nazar,
		windows: windows, severity: imagesim.DefaultSeverity, rcaMode: rca.Full, quick: o.Quick, seed: o.Seed})
	if err != nil {
		return nil, err
	}
	fim, err := runE2E(e2eKey{dataset: "cityscapes", arch: nn.ArchResNet18, strategy: pipeline.Nazar,
		windows: windows, severity: imagesim.DefaultSeverity, rcaMode: rca.FIMOnly, quick: o.Quick, seed: o.Seed})
	if err != nil {
		return nil, err
	}
	tableC := &Table{ID: "fig8c", Title: "BN versions stored on device per window (ResNet18)",
		Header: []string{"Window", "Nazar (full RCA)", "FIM only"}}
	for i := range full.Windows {
		res.VersionsFull = append(res.VersionsFull, full.Windows[i].VersionCount)
		res.VersionsFIM = append(res.VersionsFIM, fim.Windows[i].VersionCount)
		tableC.AddRow(fmt.Sprint(i), fmt.Sprint(full.Windows[i].VersionCount),
			fmt.Sprint(fim.Windows[i].VersionCount))
	}
	tableC.Notes = append(tableC.Notes, "paper: Nazar steady at 3; FIM-only much higher")

	tableD := &Table{ID: "fig8d", Title: "Cumulative accuracy over windows (ResNet50)",
		Header: []string{"Window", "Nazar all", "Nazar drift", "Adapt-all all", "Adapt-all drift", "No-adapt all", "No-adapt drift"}}
	for i := 0; i < windows; i++ {
		tableD.AddRow(fmt.Sprint(i),
			pct(res.CumAll[pipeline.Nazar][i]), pct(res.CumDrift[pipeline.Nazar][i]),
			pct(res.CumAll[pipeline.AdaptAll][i]), pct(res.CumDrift[pipeline.AdaptAll][i]),
			pct(res.CumAll[pipeline.NoAdapt][i]), pct(res.CumDrift[pipeline.NoAdapt][i]))
	}
	res.TableA, res.TableB, res.TableC, res.TableD = tableA, tableB, tableC, tableD
	return res, nil
}

// Fig9abResult is the animals severity sweep.
type Fig9abResult struct {
	// Acc[severity][strategy] = (all, drifted).
	AccAll, AccDrift map[int]map[pipeline.Strategy]float64
	Table            *Table
}

// Fig9ab reproduces the animals end-to-end severity comparison (S3, S5).
func Fig9ab(o Options) (*Fig9abResult, error) {
	o = o.withDefaults()
	res := &Fig9abResult{
		AccAll:   map[int]map[pipeline.Strategy]float64{},
		AccDrift: map[int]map[pipeline.Strategy]float64{},
	}
	windows := e2eWindows(o)
	table := &Table{ID: "fig9ab", Title: "Animals: accuracy vs drift severity",
		Header: []string{"Severity", "Strategy", "All data", "Drifted data"}}
	for _, sev := range []int{3, 5} {
		res.AccAll[sev] = map[pipeline.Strategy]float64{}
		res.AccDrift[sev] = map[pipeline.Strategy]float64{}
		for _, s := range pipeline.Strategies {
			r, err := runE2E(e2eKey{dataset: "animals", arch: nn.ArchResNet50, strategy: s,
				windows: windows, severity: sev, rcaMode: rca.Full, quick: o.Quick, seed: o.Seed})
			if err != nil {
				return nil, err
			}
			mAll, _ := r.AvgAccLast(windows - 1)
			mDrift, _ := r.AvgDriftAccLast(windows - 1)
			res.AccAll[sev][s] = mAll
			res.AccDrift[sev][s] = mDrift
			table.AddRow(fmt.Sprintf("S%d", sev), string(s), pct(mAll), pct(mDrift))
		}
	}
	table.Notes = append(table.Notes,
		"paper: all methods degrade at S5 but Nazar stays ahead (+3.8–10.4% over adapt-all)")
	res.Table = table
	return res, nil
}

// Fig9cResult is the class-skew end-to-end experiment.
type Fig9cResult struct {
	// Rows: (severity, windows) -> strategy -> all-data accuracy.
	Acc   map[string]map[pipeline.Strategy]float64
	Table *Table
}

// Fig9c reproduces the α=1 class-skew experiment: at severity 3 with 8
// windows Nazar can trail adapt-all; with 4 windows (more varied data per
// adaptation) or severity 5 it wins again.
func Fig9c(o Options) (*Fig9cResult, error) {
	o = o.withDefaults()
	res := &Fig9cResult{Acc: map[string]map[pipeline.Strategy]float64{}}
	table := &Table{ID: "fig9c", Title: "Animals with class skew α=1: all-data accuracy",
		Header: []string{"Config", "No-adapt", "Adapt-all", "Nazar"}}
	fullW := e2eWindows(o)
	halfW := fullW / 2
	configs := []struct {
		name     string
		severity int
		windows  int
	}{
		{fmt.Sprintf("S3, %d windows", fullW), 3, fullW},
		{fmt.Sprintf("S3, %d windows", halfW), 3, halfW},
		{fmt.Sprintf("S5, %d windows", fullW), 5, fullW},
	}
	for _, c := range configs {
		res.Acc[c.name] = map[pipeline.Strategy]float64{}
		row := []string{c.name}
		for _, s := range pipeline.Strategies {
			r, err := runE2E(e2eKey{dataset: "animals", arch: nn.ArchResNet50, strategy: s,
				windows: c.windows, severity: c.severity, alpha: 1, rcaMode: rca.Full,
				quick: o.Quick, seed: o.Seed})
			if err != nil {
				return nil, err
			}
			mAll, _ := r.AvgAccLast(c.windows - 1)
			res.Acc[c.name][s] = mAll
			row = append(row, pct(mAll))
		}
		table.AddRow(row...)
	}
	table.Notes = append(table.Notes,
		"paper: Nazar trails adapt-all at S3/8w under skew, wins with 4 windows or S5")
	res.Table = table
	return res, nil
}

// RuntimeResult decomposes Nazar's cycle latency (§5.8).
type RuntimeResult struct {
	RCATotal, AdaptTotal time.Duration
	Table                *Table
}

// Runtime measures the analysis-vs-adaptation latency decomposition over
// one end-to-end run.
func Runtime(o Options) (*RuntimeResult, error) {
	o = o.withDefaults()
	r, err := runE2E(e2eKey{dataset: "cityscapes", arch: nn.ArchResNet50, strategy: pipeline.Nazar,
		windows: e2eWindows(o), severity: imagesim.DefaultSeverity, rcaMode: rca.Full,
		quick: o.Quick, seed: o.Seed})
	if err != nil {
		return nil, err
	}
	res := &RuntimeResult{}
	table := &Table{ID: "runtime", Title: "Per-window latency decomposition",
		Header: []string{"Window", "RCA", "Adaptation"}}
	for i, w := range r.Windows {
		res.RCATotal += w.RCADuration
		res.AdaptTotal += w.AdaptDuration
		table.AddRow(fmt.Sprint(i), w.RCADuration.String(), w.AdaptDuration.String())
	}
	table.Notes = append(table.Notes,
		"paper: RCA averages 46 s of a 50-minute cycle; adaptation dominates")
	res.Table = table
	return res, nil
}

// AdaptFreqResult compares 8 vs 4 adaptation windows.
type AdaptFreqResult struct {
	Acc   map[int]map[pipeline.Strategy]float64
	Table *Table
}

// AdaptFreq reproduces the adaptation-frequency check (§5.7): halving the
// number of windows keeps results consistent and can improve accuracy
// slightly (more data per adaptation).
func AdaptFreq(o Options) (*AdaptFreqResult, error) {
	o = o.withDefaults()
	res := &AdaptFreqResult{Acc: map[int]map[pipeline.Strategy]float64{}}
	table := &Table{ID: "adaptfreq", Title: "Cityscapes: Nazar accuracy vs adaptation frequency",
		Header: []string{"Windows", "All data", "Drifted data"}}
	fullW := e2eWindows(o)
	for _, w := range []int{fullW, fullW / 2} {
		r, err := runE2E(e2eKey{dataset: "cityscapes", arch: nn.ArchResNet50, strategy: pipeline.Nazar,
			windows: w, severity: imagesim.DefaultSeverity, rcaMode: rca.Full, quick: o.Quick, seed: o.Seed})
		if err != nil {
			return nil, err
		}
		mAll, _ := r.AvgAccLast(w - 1)
		mDrift, _ := r.AvgDriftAccLast(w - 1)
		res.Acc[w] = map[pipeline.Strategy]float64{pipeline.Nazar: mAll}
		table.AddRow(fmt.Sprint(w), pct(mAll), pct(mDrift))
	}
	table.Notes = append(table.Notes, "paper: 4 windows improved accuracy by 1.2–3.8%")
	res.Table = table
	return res, nil
}
