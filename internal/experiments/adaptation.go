package experiments

import (
	"fmt"
	"sync"

	"nazar/internal/adapt"
	"nazar/internal/detect"
	"nazar/internal/imagesim"
	"nazar/internal/metrics"
	"nazar/internal/nn"
	"nazar/internal/tensor"
)

// cleanKey marks the clean partition in per-cause maps.
const cleanKey = imagesim.Corruption("clean")

// partitions returns the 17 data sources of §5.5: the 16 corruptions plus
// clean.
func partitions() []imagesim.Corruption {
	return append(append([]imagesim.Corruption{}, imagesim.AllCorruptions...), cleanKey)
}

// adaptedSet is the expensive artifact §5.5/§5.6 experiments share: one
// by-cause model per partition plus one adapt-all model, for a given
// objective.
type adaptedSet struct {
	byCause  map[imagesim.Corruption]*nn.Network
	adaptAll *nn.Network
}

var (
	adaptMemoMu sync.Mutex
	adaptMemo   = map[string]*adaptedSet{}
)

// adaptCfg builds the adaptation config for a method.
func adaptCfg(method adapt.Method, r *animalsRig, seed uint64) adapt.Config {
	cfg := adapt.DefaultConfig()
	cfg.Method = method
	cfg.MinSteps = 20
	cfg.Rng = tensor.NewRand(seed, 0xADA9)
	if method == adapt.MEMO {
		cfg.Augment = r.world.Augment
		cfg.Augmentations = 4
		cfg.Epochs = 1
		cfg.MaxBatchesPerEpoch = 6
		cfg.MinSteps = 0
	}
	return cfg
}

// getAdaptedSet builds (or reuses) the 17 by-cause models and the
// adapt-all model for the method at adaptation severity 3, assuming
// perfect root-cause knowledge (as §5.5 does).
func getAdaptedSet(o Options, r *animalsRig, method adapt.Method) (*adaptedSet, error) {
	key := fmt.Sprintf("%s/%d/%v", method, o.Seed, o.Quick)
	adaptMemoMu.Lock()
	defer adaptMemoMu.Unlock()
	if s, ok := adaptMemo[key]; ok {
		return s, nil
	}
	base := r.net(nn.ArchResNet50)
	rng := tensor.NewRand(o.Seed+100, 0x17)
	set := &adaptedSet{byCause: map[imagesim.Corruption]*nn.Network{}}

	poolRows := r.trainX.Rows
	if o.Quick && poolRows > 360 {
		poolRows = 360
	}
	pool := tensor.New(poolRows, r.world.Dim())

	for _, p := range partitions() {
		for i := 0; i < poolRows; i++ {
			src := r.trainX.Row(i)
			if p == cleanKey {
				copy(pool.Row(i), src)
			} else {
				copy(pool.Row(i), r.world.Corrupt(src, p, imagesim.DefaultSeverity, rng))
			}
		}
		cfg := adaptCfg(method, r, o.Seed+uint64(len(p)))
		m, err := adapt.Adapt(base, pool, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: adapt %s: %w", p, err)
		}
		set.byCause[p] = m
	}

	// Adapt-all: one model on an even mixture of all 17 partitions.
	mixed := tensor.New(poolRows, r.world.Dim())
	parts := partitions()
	for i := 0; i < poolRows; i++ {
		p := parts[i%len(parts)]
		src := r.trainX.Row(i)
		if p == cleanKey {
			copy(mixed.Row(i), src)
		} else {
			copy(mixed.Row(i), r.world.Corrupt(src, p, imagesim.DefaultSeverity, rng))
		}
	}
	m, err := adapt.Adapt(base, mixed, adaptCfg(method, r, o.Seed+999))
	if err != nil {
		return nil, fmt.Errorf("experiments: adapt-all: %w", err)
	}
	set.adaptAll = m
	adaptMemo[key] = set
	return set, nil
}

// testPartition builds the held-out test set of one partition. When
// shiftedSeverity is true, each image's severity is drawn from N(3,1),
// rounded and clipped to [0,5] (setting (b) of §5.5).
func testPartition(r *animalsRig, p imagesim.Corruption, shiftedSeverity bool, seed uint64) (*tensor.Matrix, []int) {
	rng := tensor.NewRand(seed, 0x7E57)
	n := r.valX.Rows
	x := tensor.New(n, r.world.Dim())
	labels := append([]int(nil), r.valY...)
	for i := 0; i < n; i++ {
		src := r.valX.Row(i)
		if p == cleanKey {
			copy(x.Row(i), src)
			continue
		}
		sev := imagesim.DefaultSeverity
		if shiftedSeverity {
			s := int(float64(imagesim.DefaultSeverity) + rng.NormFloat64() + 0.5)
			if s < 0 {
				s = 0
			}
			if s > imagesim.MaxSeverity {
				s = imagesim.MaxSeverity
			}
			sev = s
		}
		copy(x.Row(i), r.world.Corrupt(src, p, sev, rng))
	}
	return x, labels
}

// Table4Result compares adaptation strategies × objectives.
type Table4Result struct {
	NoAdapt                      float64
	ByCauseTENT, ByCauseMEMO     float64
	AdaptAllTENT, AdaptAllMEMO   float64
	ByCausePerDrift, AdaptAllPer map[imagesim.Corruption]float64
	Table                        *Table
}

// Table4 reproduces the by-cause vs adapt-all comparison for TENT and
// MEMO with perfect cause knowledge (§3.4 Table 4).
func Table4(o Options) (*Table4Result, error) {
	o = o.withDefaults()
	r := getAnimalsRig(o, nn.ArchResNet50)
	base := r.net(nn.ArchResNet50)
	res := &Table4Result{
		ByCausePerDrift: map[imagesim.Corruption]float64{},
		AdaptAllPer:     map[imagesim.Corruption]float64{},
	}

	evalAvg := func(model func(p imagesim.Corruption) *nn.Network, record map[imagesim.Corruption]float64) float64 {
		var sum float64
		parts := partitions()
		for _, p := range parts {
			x, labels := testPartition(r, p, false, o.Seed+7)
			acc := model(p).Accuracy(x, labels)
			if record != nil {
				record[p] = acc
			}
			sum += acc
		}
		return sum / float64(len(parts))
	}

	res.NoAdapt = evalAvg(func(imagesim.Corruption) *nn.Network { return base }, nil)

	tent, err := getAdaptedSet(o, r, adapt.TENT)
	if err != nil {
		return nil, err
	}
	res.ByCauseTENT = evalAvg(func(p imagesim.Corruption) *nn.Network { return tent.byCause[p] }, res.ByCausePerDrift)
	res.AdaptAllTENT = evalAvg(func(imagesim.Corruption) *nn.Network { return tent.adaptAll }, res.AdaptAllPer)

	memo, err := getAdaptedSet(o, r, adapt.MEMO)
	if err != nil {
		return nil, err
	}
	res.ByCauseMEMO = evalAvg(func(p imagesim.Corruption) *nn.Network { return memo.byCause[p] }, nil)
	res.AdaptAllMEMO = evalAvg(func(imagesim.Corruption) *nn.Network { return memo.adaptAll }, nil)

	table := &Table{
		ID:     "table4",
		Title:  "Average accuracy: by-cause vs adapt-all (17 partitions)",
		Header: []string{"Method", "Average accuracy", "Paper"},
	}
	table.AddRow("No-adapt", pct(res.NoAdapt), "38.7%")
	table.AddRow("By-cause (TENT)", pct(res.ByCauseTENT), "61.5%")
	table.AddRow("By-cause (MEMO)", pct(res.ByCauseMEMO), "42.3%")
	table.AddRow("Adapt-all (TENT)", pct(res.AdaptAllTENT), "42.4%")
	table.AddRow("Adapt-all (MEMO)", pct(res.AdaptAllMEMO), "30.3%")
	res.Table = table
	return res, nil
}

// CrossCauseResult is the §3.4 cross-cause illustration: a fog-adapted
// model evaluated on its own drift, on other drifts, and on clean data.
type CrossCauseResult struct {
	OwnAcc, OtherAcc, CleanAcc, CleanModelCleanAcc float64
	Table                                          *Table
}

// CrossCause reproduces the "model adapted to one cause is poor
// elsewhere" experiment.
func CrossCause(o Options) (*CrossCauseResult, error) {
	o = o.withDefaults()
	r := getAnimalsRig(o, nn.ArchResNet50)
	tent, err := getAdaptedSet(o, r, adapt.TENT)
	if err != nil {
		return nil, err
	}
	fogModel := tent.byCause[imagesim.Fog]
	cleanModel := tent.byCause[cleanKey]

	res := &CrossCauseResult{}
	x, labels := testPartition(r, imagesim.Fog, false, o.Seed+8)
	res.OwnAcc = fogModel.Accuracy(x, labels)
	var others float64
	count := 0
	for _, p := range imagesim.AllCorruptions {
		if p == imagesim.Fog {
			continue
		}
		x, labels := testPartition(r, p, false, o.Seed+8)
		others += fogModel.Accuracy(x, labels)
		count++
	}
	res.OtherAcc = others / float64(count)
	cx, cl := testPartition(r, cleanKey, false, o.Seed+8)
	res.CleanAcc = fogModel.Accuracy(cx, cl)
	res.CleanModelCleanAcc = cleanModel.Accuracy(cx, cl)

	table := &Table{
		ID:     "crosscause",
		Title:  "Fog-adapted model across distributions",
		Header: []string{"Evaluated on", "Accuracy", "Paper"},
	}
	table.AddRow("own drift (fog)", pct(res.OwnAcc), "66.7%")
	table.AddRow("other drifts", pct(res.OtherAcc), "16.4%")
	table.AddRow("clean data", pct(res.CleanAcc), "26.8%")
	table.AddRow("clean model on clean", pct(res.CleanModelCleanAcc), "74.6%")
	res.Table = table
	return res, nil
}

// Fig7Row is one drift type's accuracy under the three strategies.
type Fig7Row struct {
	Drift    imagesim.Corruption
	NoAdapt  float64
	AdaptAll float64
	ByCause  float64
}

// Fig7Result holds per-drift adaptation accuracy, same and shifted
// severity.
type Fig7Result struct {
	Same    []Fig7Row // 7a: test severity = adaptation severity = 3
	Shifted []Fig7Row // 7b: test severity ~ N(3,1)
	Table   *Table
}

// Fig7 reproduces the per-cause adaptation comparison.
func Fig7(o Options) (*Fig7Result, error) {
	o = o.withDefaults()
	r := getAnimalsRig(o, nn.ArchResNet50)
	base := r.net(nn.ArchResNet50)
	tent, err := getAdaptedSet(o, r, adapt.TENT)
	if err != nil {
		return nil, err
	}
	res := &Fig7Result{}
	table := &Table{
		ID:     "fig7",
		Title:  "Accuracy by drift cause: no-adapt / adapt-all / by-cause (TENT)",
		Header: []string{"Severity", "Drift", "No-adapt", "Adapt-all", "By-cause"},
	}
	for _, shifted := range []bool{false, true} {
		label := "same(3)"
		if shifted {
			label = "N(3,1)"
		}
		for _, p := range partitions() {
			x, labels := testPartition(r, p, shifted, o.Seed+9)
			row := Fig7Row{
				Drift:    p,
				NoAdapt:  base.Accuracy(x, labels),
				AdaptAll: tent.adaptAll.Accuracy(x, labels),
				ByCause:  tent.byCause[p].Accuracy(x, labels),
			}
			if shifted {
				res.Shifted = append(res.Shifted, row)
			} else {
				res.Same = append(res.Same, row)
			}
			table.AddRow(label, string(p), pct(row.NoAdapt), pct(row.AdaptAll), pct(row.ByCause))
		}
	}
	res.Table = table
	return res, nil
}

// Average returns the mean of a strategy column over rows.
func Average(rows []Fig7Row, f func(Fig7Row) float64) float64 {
	var vals []float64
	for _, r := range rows {
		vals = append(vals, f(r))
	}
	return metrics.Mean(vals)
}

// Fig6Row is one drift type's detection rate before/after adaptation.
type Fig6Row struct {
	Drift         imagesim.Corruption
	Before, After float64
}

// Fig6Result holds the evolving-detection measurements.
type Fig6Result struct {
	Same    []Fig6Row
	Shifted []Fig6Row
	Table   *Table
}

// Fig6 reproduces the evolving-drift-detection experiment: the detection
// rate of each drift type before adaptation (base model) and after, using
// the matching by-cause adapted model. With matched severity the rate
// drops to the clean level; with shifted severity it stays elevated,
// letting Nazar keep detecting causes it failed to fully adapt to.
func Fig6(o Options) (*Fig6Result, error) {
	o = o.withDefaults()
	r := getAnimalsRig(o, nn.ArchResNet50)
	base := r.net(nn.ArchResNet50)
	tent, err := getAdaptedSet(o, r, adapt.TENT)
	if err != nil {
		return nil, err
	}
	res := &Fig6Result{}
	table := &Table{
		ID:     "fig6",
		Title:  "Detection rate before/after by-cause adaptation (MSP < 0.9)",
		Header: []string{"Severity", "Drift", "Before", "After"},
	}
	rate := func(net *nn.Network, x *tensor.Matrix) float64 {
		return detect.DetectionRate(mspScores(net, x), detect.DefaultMSPThreshold)
	}
	for _, shifted := range []bool{false, true} {
		label := "same(3)"
		if shifted {
			label = "N(3,1)"
		}
		for _, p := range partitions() {
			x, _ := testPartition(r, p, shifted, o.Seed+10)
			row := Fig6Row{
				Drift:  p,
				Before: rate(base, x),
				After:  rate(tent.byCause[p], x),
			}
			if shifted {
				res.Shifted = append(res.Shifted, row)
			} else {
				res.Same = append(res.Same, row)
			}
			table.AddRow(label, string(p), f3(row.Before), f3(row.After))
		}
	}
	table.Notes = append(table.Notes,
		"paper: after matched adaptation the rate falls to the clean level; under shifted severity it stays higher")
	res.Table = table
	return res, nil
}
