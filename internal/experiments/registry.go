package experiments

import (
	"fmt"
	"sort"
)

// Runner executes one experiment and returns its printable tables.
type Runner func(o Options) ([]*Table, error)

// one adapts a single-table experiment to a Runner.
func one[T any](f func(Options) (T, error), tables func(T) []*Table) Runner {
	return func(o Options) ([]*Table, error) {
		res, err := f(o)
		if err != nil {
			return nil, err
		}
		return tables(res), nil
	}
}

// Registry maps experiment IDs (the paper's table/figure numbers) to
// their regenerators.
var Registry = map[string]Runner{
	"table1":       one(Table1, func(r *Table1Result) []*Table { return []*Table{r.Matrix, r.Live} }),
	"fig2":         one(Fig2, func(r *Fig2Result) []*Table { return []*Table{r.Table} }),
	"table1-auroc": one(DetectorAUROC, func(r *DetectorAUROCResult) []*Table { return []*Table{r.Table} }),
	"table3": func(o Options) ([]*Table, error) {
		r, err := Table3Example()
		if err != nil {
			return nil, err
		}
		return []*Table{r.Log, r.Mined, r.Final}, nil
	},
	"table4":     one(Table4, func(r *Table4Result) []*Table { return []*Table{r.Table} }),
	"crosscause": one(CrossCause, func(r *CrossCauseResult) []*Table { return []*Table{r.Table} }),
	"fig5a":      one(Fig5a, func(r *Fig5aResult) []*Table { return []*Table{r.Table} }),
	"fig5b":      one(Fig5b, func(r *Fig5bResult) []*Table { return []*Table{r.Table} }),
	"fig5c":      one(Fig5c, func(r *Fig5cResult) []*Table { return []*Table{r.Table} }),
	"realrain":   one(RealRain, func(r *RealRainResult) []*Table { return []*Table{r.Table} }),
	"table5":     one(Table5, func(r *Table5Result) []*Table { return []*Table{r.Table} }),
	"fig6":       one(Fig6, func(r *Fig6Result) []*Table { return []*Table{r.Table} }),
	"fig7":       one(Fig7, func(r *Fig7Result) []*Table { return []*Table{r.Table} }),
	"fig8": one(Fig8, func(r *Fig8Result) []*Table {
		return []*Table{r.TableA, r.TableB, r.TableC, r.TableD}
	}),
	"fig9ab":    one(Fig9ab, func(r *Fig9abResult) []*Table { return []*Table{r.Table} }),
	"fig9c":     one(Fig9c, func(r *Fig9cResult) []*Table { return []*Table{r.Table} }),
	"fig9d":     one(Fig9d, func(r *Fig9dResult) []*Table { return []*Table{r.Table} }),
	"runtime":   one(Runtime, func(r *RuntimeResult) []*Table { return []*Table{r.Table} }),
	"adaptfreq": one(AdaptFreq, func(r *AdaptFreqResult) []*Table { return []*Table{r.Table} }),
	"ablation-scores": one(AblationScores, func(r *AblationScoresResult) []*Table {
		return []*Table{r.Table}
	}),
	"ablation-ranking": one(AblationRanking, func(r *AblationRankingResult) []*Table {
		return []*Table{r.Table}
	}),
	"ablation-bnonly": one(AblationBNOnly, func(r *AblationBNOnlyResult) []*Table {
		return []*Table{r.Table}
	}),
	"ablation-poolcap": one(AblationPoolCapacity, func(r *AblationPoolCapacityResult) []*Table {
		return []*Table{r.Table}
	}),
	"ablation-threshold": one(AblationThreshold, func(r *AblationThresholdResult) []*Table {
		return []*Table{r.Table}
	}),
	"quantization": one(Quantization, func(r *QuantizationResult) []*Table { return []*Table{r.Table} }),
	"hardware":     one(HardwareFault, func(r *HardwareFaultResult) []*Table { return []*Table{r.Table} }),
	"extensions":   one(Extensions, func(r *ExtensionsResult) []*Table { return []*Table{r.Table} }),
	"federated":    one(FederatedE2E, func(r *FederatedE2EResult) []*Table { return []*Table{r.Table} }),
}

// IDs returns the registered experiment IDs in sorted order.
func IDs() []string {
	ids := make([]string, 0, len(Registry))
	for id := range Registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes one experiment by ID.
func Run(id string, o Options) ([]*Table, error) {
	r, ok := Registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
	}
	return r(o)
}
