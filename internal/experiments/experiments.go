// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) on the synthetic substrate: each experiment is a
// function returning structured results plus a printable table, consumed
// by cmd/nazar-exp and by the repository-root benchmarks.
//
// Expectations are shape-level (who wins, by roughly what factor, where
// crossovers fall); EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"
	"math/rand/v2"
	"strings"
	"sync"

	"nazar/internal/imagesim"
	"nazar/internal/nn"
	"nazar/internal/tensor"
)

// Options scales experiments. The zero value is upgraded to defaults.
type Options struct {
	// Quick shrinks workloads for benchmarks and CI (fewer classes,
	// smaller streams, fewer epochs).
	Quick bool
	// Seed drives all randomness.
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// Table is a printable experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s: %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.Rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = strings.ReplaceAll(c, "|", "\\|")
		}
		b.WriteString("| " + strings.Join(cells, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n> %s\n", n)
	}
	return b.String()
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// pct formats a fraction as a percentage.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// f3 formats a float with three decimals.
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// animalsRig is the trained setup most microbenchmarks share: an
// animals-analogue world, a trained classifier per architecture, and
// clean train/val splits.
type animalsRig struct {
	world  *imagesim.World
	nets   map[nn.Arch]*nn.Network
	trainX *tensor.Matrix
	trainY []int
	valX   *tensor.Matrix
	valY   []int
}

var (
	rigMu   sync.Mutex
	rigMemo = map[string]*animalsRig{}
)

// rigParams derives sizes from options.
func rigParams(o Options) (classes, trainPer, valPer, epochs int) {
	if o.Quick {
		return 12, 40, 12, 18
	}
	return 30, 60, 20, 30
}

// getAnimalsRig builds (or reuses) the shared rig. Only the
// architectures in archs are guaranteed trained.
func getAnimalsRig(o Options, archs ...nn.Arch) *animalsRig {
	o = o.withDefaults()
	if len(archs) == 0 {
		archs = []nn.Arch{nn.ArchResNet50}
	}
	classes, trainPer, valPer, epochs := rigParams(o)
	key := fmt.Sprintf("animals/%d/%v", o.Seed, o.Quick)

	rigMu.Lock()
	defer rigMu.Unlock()
	r, ok := rigMemo[key]
	if !ok {
		world := imagesim.NewWorld(imagesim.DefaultConfig(classes, o.Seed))
		rng := tensor.NewRand(o.Seed, 0x816)
		r = &animalsRig{world: world, nets: map[nn.Arch]*nn.Network{}}
		r.trainX, r.trainY = samplePerClass(world, trainPer, rng)
		r.valX, r.valY = samplePerClass(world, valPer, rng)
		rigMemo[key] = r
	}
	for _, arch := range archs {
		if _, ok := r.nets[arch]; ok {
			continue
		}
		rng := tensor.NewRand(o.Seed^uint64(len(arch)), 0x817)
		net := nn.NewClassifier(arch, r.world.Dim(), r.world.Classes(), rng)
		nn.Fit(net, r.trainX, r.trainY, nn.TrainConfig{Epochs: epochs, BatchSize: 32, Rng: rng})
		r.nets[arch] = net
	}
	return r
}

func (r *animalsRig) net(arch nn.Arch) *nn.Network { return r.nets[arch] }

// samplePerClass draws per examples of every class.
func samplePerClass(world *imagesim.World, per int, rng *rand.Rand) (*tensor.Matrix, []int) {
	n := per * world.Classes()
	x := tensor.New(n, world.Dim())
	labels := make([]int, n)
	i := 0
	for c := 0; c < world.Classes(); c++ {
		for k := 0; k < per; k++ {
			labels[i] = c
			copy(x.Row(i), world.Sample(c, rng))
			i++
		}
	}
	return x, labels
}
