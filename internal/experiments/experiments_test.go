package experiments

import (
	"strings"
	"testing"

	"nazar/internal/imagesim"
	"nazar/internal/nn"
	"nazar/internal/pipeline"
	"nazar/internal/rca"
)

// quick are the options every test shares; memoized rigs/runs make the
// suite far cheaper than the sum of its parts.
var quick = Options{Quick: true, Seed: 42}

func TestTableRendering(t *testing.T) {
	tb := &Table{ID: "x", Title: "demo", Header: []string{"A", "B"}}
	tb.AddRow("1", "2")
	tb.Notes = append(tb.Notes, "a note")
	s := tb.String()
	for _, want := range []string{"demo", "A", "1", "note: a note"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendering missing %q:\n%s", want, s)
		}
	}
}

func TestRegistryRunsAndRejects(t *testing.T) {
	if _, err := Run("nope", quick); err == nil {
		t.Fatal("unknown id must error")
	}
	if len(IDs()) < 20 {
		t.Fatalf("registry too small: %v", IDs())
	}
	tables, err := Run("table3", quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("table3 produced %d tables", len(tables))
	}
}

func TestTable1Shapes(t *testing.T) {
	res, err := Table1(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matrix.Rows) != 4 {
		t.Fatal("matrix must have 4 requirement rows")
	}
	// Every live detector must separate clean from drifted.
	for _, row := range res.Live.Rows {
		if row[3] != "true" {
			t.Fatalf("detector %s does not separate: %v", row[0], row)
		}
	}
}

func TestFig2Shape(t *testing.T) {
	res, err := Fig2(quick)
	if err != nil {
		t.Fatal(err)
	}
	small, large := res.Points[0].F1, res.Points[len(res.Points)-1].F1
	if large <= small {
		t.Fatalf("KS F1 should grow with batch size: %v -> %v", small, large)
	}
	// Paper shape: at large batches the KS test competes with or beats
	// the threshold; at tiny batches it is worse.
	if small >= res.ThresholdF1 {
		t.Fatalf("KS at batch 2 (%v) should trail the threshold (%v)", small, res.ThresholdF1)
	}
	if large < res.ThresholdF1-0.1 {
		t.Fatalf("KS at batch 64 (%v) should be competitive with threshold (%v)", large, res.ThresholdF1)
	}
}

func TestTable3Walkthrough(t *testing.T) {
	res, err := Table3Example()
	if err != nil {
		t.Fatal(err)
	}
	if res.TopKey != "weather=snow" {
		t.Fatalf("top cause %q", res.TopKey)
	}
	if res.NumFull >= res.NumFIM {
		t.Fatalf("pruning failed: fim=%d full=%d", res.NumFIM, res.NumFull)
	}
	if res.NumFull != 1 {
		t.Fatalf("paper walkthrough ends with exactly {snow}; got %d causes", res.NumFull)
	}
}

func TestTable4Ordering(t *testing.T) {
	res, err := Table4(quick)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's headline orderings.
	if !(res.ByCauseTENT > res.AdaptAllTENT) {
		t.Fatalf("by-cause TENT %v must beat adapt-all TENT %v", res.ByCauseTENT, res.AdaptAllTENT)
	}
	if !(res.ByCauseTENT > res.NoAdapt+0.10) {
		t.Fatalf("by-cause TENT %v must clearly beat no-adapt %v", res.ByCauseTENT, res.NoAdapt)
	}
	if !(res.ByCauseMEMO > res.AdaptAllMEMO) {
		t.Fatalf("by-cause MEMO %v must beat adapt-all MEMO %v", res.ByCauseMEMO, res.AdaptAllMEMO)
	}
	if !(res.ByCauseTENT > res.ByCauseMEMO) {
		t.Fatalf("TENT %v must beat MEMO %v (why the paper defaults to TENT)", res.ByCauseTENT, res.ByCauseMEMO)
	}
}

func TestCrossCauseShape(t *testing.T) {
	res, err := CrossCause(quick)
	if err != nil {
		t.Fatal(err)
	}
	if !(res.OwnAcc > res.OtherAcc+0.15) {
		t.Fatalf("fog model on own drift %v must far exceed other drifts %v", res.OwnAcc, res.OtherAcc)
	}
	if !(res.CleanModelCleanAcc > res.CleanAcc) {
		t.Fatalf("clean model on clean %v must beat fog model on clean %v", res.CleanModelCleanAcc, res.CleanAcc)
	}
}

func TestFig5aShape(t *testing.T) {
	res, err := Fig5a(quick)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.F1 < 0.55 || res.Best.F1 > 0.95 {
		t.Fatalf("best F1 %v out of plausible band (paper ~0.73)", res.Best.F1)
	}
	// Rise-then-fall: the first point must not be the best, and F1 must
	// decline after the peak toward threshold 1.0... the last point is
	// below or equal to the best.
	if res.Points[0].F1 >= res.Best.F1 {
		t.Fatal("F1 should rise from low thresholds")
	}
}

func TestFig5bSpread(t *testing.T) {
	res, err := Fig5b(quick)
	if err != nil {
		t.Fatal(err)
	}
	if res.Max-res.Min < 0.25 {
		t.Fatalf("per-class spread %v–%v too narrow (paper: 39.2–98.2%%)", res.Min, res.Max)
	}
}

func TestFig5cMonotonicity(t *testing.T) {
	res, err := Fig5c(quick)
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	if !(last.Accuracy < first.Accuracy-0.05) {
		t.Fatalf("accuracy should fall with skew: %v -> %v", first.Accuracy, last.Accuracy)
	}
	if !(last.DetectionRate > first.DetectionRate+0.03) {
		t.Fatalf("detection rate should rise with skew: %v -> %v", first.DetectionRate, last.DetectionRate)
	}
}

func TestRealRainShape(t *testing.T) {
	res, err := RealRain(quick)
	if err != nil {
		t.Fatal(err)
	}
	if !(res.RainAcc < res.CleanAcc-0.05) {
		t.Fatalf("real rain should cost accuracy: clean %v rain %v", res.CleanAcc, res.RainAcc)
	}
	if res.F1 < 0.4 {
		t.Fatalf("rain detection F1 %v too low to be useful (paper 0.67)", res.F1)
	}
	// Real drift is noisier than the synthetic benchmark.
	synth, err := Fig5a(quick)
	if err != nil {
		t.Fatal(err)
	}
	if res.F1 > synth.Best.F1+0.05 {
		t.Fatalf("real rain F1 %v should not beat synthetic best %v", res.F1, synth.Best.F1)
	}
}

func TestTable5Shape(t *testing.T) {
	res, err := Table5(quick)
	if err != nil {
		t.Fatal(err)
	}
	var fullSum float64
	for _, scn := range table5Scenarios() {
		fim := res.FMS[rca.FIMOnly][scn.Name]
		full := res.FMS[rca.Full][scn.Name]
		if full+1e-9 < fim {
			t.Fatalf("%s: full %v < fim %v", scn.Name, full, fim)
		}
		fullSum += full
	}
	if avg := fullSum / 8; avg < 0.9 {
		t.Fatalf("full-pipeline average FMS %v, want >= 0.9 (paper ~0.98)", avg)
	}
}

func TestFig6Shape(t *testing.T) {
	res, err := Fig6(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Matched adaptation lowers the detection rate on average.
	var before, after float64
	for _, row := range res.Same {
		if row.Drift == cleanKey {
			continue
		}
		before += row.Before
		after += row.After
	}
	if !(after < before) {
		t.Fatalf("matched adaptation should reduce detection: before %v after %v", before, after)
	}
	// Shifted severity keeps the rate higher than matched severity.
	var afterShifted float64
	for _, row := range res.Shifted {
		if row.Drift == cleanKey {
			continue
		}
		afterShifted += row.After
	}
	if !(afterShifted > after) {
		t.Fatalf("shifted severity should stay more detectable: %v vs %v", afterShifted, after)
	}
}

func TestFig7Shape(t *testing.T) {
	res, err := Fig7(quick)
	if err != nil {
		t.Fatal(err)
	}
	for name, rows := range map[string][]Fig7Row{"same": res.Same, "shifted": res.Shifted} {
		by := Average(rows, func(r Fig7Row) float64 { return r.ByCause })
		all := Average(rows, func(r Fig7Row) float64 { return r.AdaptAll })
		non := Average(rows, func(r Fig7Row) float64 { return r.NoAdapt })
		if !(by > all && by > non) {
			t.Fatalf("%s: by-cause %v must beat adapt-all %v and no-adapt %v", name, by, all, non)
		}
	}
	// Robustness under shifted severity: by-cause still leads but with
	// a reduced margin (setting (b) is harder).
	bySame := Average(res.Same, func(r Fig7Row) float64 { return r.ByCause })
	byShifted := Average(res.Shifted, func(r Fig7Row) float64 { return r.ByCause })
	if byShifted > bySame+0.02 {
		t.Fatalf("shifted severity should not be easier: same %v shifted %v", bySame, byShifted)
	}
}

func TestFig8Shapes(t *testing.T) {
	res, err := Fig8(quick)
	if err != nil {
		t.Fatal(err)
	}
	for arch := range res.AccDrift {
		nzr := res.AccDrift[arch][pipeline.Nazar]
		all := res.AccDrift[arch][pipeline.AdaptAll]
		non := res.AccDrift[arch][pipeline.NoAdapt]
		if !(nzr > all && nzr > non) {
			t.Fatalf("%s: Nazar drifted %v must beat adapt-all %v and no-adapt %v", arch, nzr, all, non)
		}
		if res.AccAll[arch][pipeline.Nazar]+0.02 < res.AccAll[arch][pipeline.AdaptAll] {
			t.Fatalf("%s: Nazar all-data accuracy trails adapt-all", arch)
		}
	}
	// 8c: FIM-only stores at least as many versions as full RCA.
	for i := range res.VersionsFull {
		if res.VersionsFIM[i] < res.VersionsFull[i] {
			t.Fatalf("window %d: fim %d < full %d", i, res.VersionsFIM[i], res.VersionsFull[i])
		}
	}
	// 8d: Nazar's cumulative all-data accuracy ends at/above adapt-all's.
	last := len(res.CumAll[pipeline.Nazar]) - 1
	if res.CumAll[pipeline.Nazar][last]+0.02 < res.CumAll[pipeline.AdaptAll][last] {
		t.Fatal("cumulative trace: Nazar should not end below adapt-all")
	}
}

func TestFig9abShapes(t *testing.T) {
	res, err := Fig9ab(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, sev := range []int{3, 5} {
		if !(res.AccDrift[sev][pipeline.Nazar] > res.AccDrift[sev][pipeline.AdaptAll]) {
			t.Fatalf("S%d: Nazar drifted %v must beat adapt-all %v", sev,
				res.AccDrift[sev][pipeline.Nazar], res.AccDrift[sev][pipeline.AdaptAll])
		}
	}
	// Higher severity degrades everyone.
	for _, s := range pipeline.Strategies {
		if res.AccDrift[5][s] > res.AccDrift[3][s]+0.03 {
			t.Fatalf("%s: S5 drifted accuracy should not beat S3", s)
		}
	}
}

func TestFig9cExists(t *testing.T) {
	res, err := Fig9c(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Acc) != 3 {
		t.Fatalf("expected 3 configurations, got %d", len(res.Acc))
	}
	// Under skew Nazar must win in at least one configuration (the
	// paper: with fewer windows or higher severity).
	wins := 0
	for _, accs := range res.Acc {
		if accs[pipeline.Nazar] >= accs[pipeline.AdaptAll] {
			wins++
		}
	}
	if wins == 0 {
		t.Fatal("Nazar never matches adapt-all under skew")
	}
}

func TestFig9dLinear(t *testing.T) {
	res, err := Fig9d(quick)
	if err != nil {
		t.Fatal(err)
	}
	if res.R2 < 0.85 {
		t.Fatalf("RCA runtime not linear in rows: R² = %v", res.R2)
	}
	// Runtime must grow with log size.
	if res.Points[len(res.Points)-1].Seconds <= res.Points[0].Seconds {
		t.Fatal("runtime did not grow with rows")
	}
}

func TestRuntimeDecomposition(t *testing.T) {
	res, err := Runtime(quick)
	if err != nil {
		t.Fatal(err)
	}
	if res.AdaptTotal == 0 {
		t.Fatal("no adaptation time measured")
	}
	if res.RCATotal > res.AdaptTotal {
		t.Fatalf("RCA %v should be cheaper than adaptation %v (paper: 46 s of 50 min)",
			res.RCATotal, res.AdaptTotal)
	}
}

func TestAdaptFreqConsistent(t *testing.T) {
	res, err := AdaptFreq(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Acc) != 2 {
		t.Fatalf("expected 2 window configs, got %d", len(res.Acc))
	}
	// Results stay consistent: both configs land in a sane band.
	for w, accs := range res.Acc {
		if accs[pipeline.Nazar] < 0.5 {
			t.Fatalf("windows=%d accuracy %v implausibly low", w, accs[pipeline.Nazar])
		}
	}
}

func TestAblationScoresNearIdentical(t *testing.T) {
	res, err := AblationScores(quick)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := 1.0, 0.0
	for _, f1 := range res.BestF1 {
		if f1 < lo {
			lo = f1
		}
		if f1 > hi {
			hi = f1
		}
	}
	if hi-lo > 0.25 {
		t.Fatalf("scores should perform similarly (paper: almost identical); spread %v–%v", lo, hi)
	}
	if res.BestF1["msp"] < hi-0.15 {
		t.Fatalf("MSP %v should be competitive with the best (%v)", res.BestF1["msp"], hi)
	}
}

func TestAblationRanking(t *testing.T) {
	res, err := AblationRanking(quick)
	if err != nil {
		t.Fatal(err)
	}
	nazar := res.FMS["risk-ratio (Nazar)"]
	if nazar < 0.8 {
		t.Fatalf("risk-ratio ranking FMS %v too low", nazar)
	}
}

func TestAblationBNOnly(t *testing.T) {
	res, err := AblationBNOnly(quick)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(res.FullBytes) / float64(res.BNBytes)
	if ratio < 10 {
		t.Fatalf("artifact ratio %v, want >= 10 (paper: 217x)", ratio)
	}
	if res.BNAcc < res.FullAcc-0.15 {
		t.Fatalf("BN-only %v should be close to full-model %v", res.BNAcc, res.FullAcc)
	}
}

func TestAblationPoolCapacity(t *testing.T) {
	res, err := AblationPoolCapacity(quick)
	if err != nil {
		t.Fatal(err)
	}
	if res.HitRate[0] != 1 {
		t.Fatalf("unlimited pool hit rate %v, want 1", res.HitRate[0])
	}
	if !(res.HitRate[1] < res.HitRate[3] && res.HitRate[3] <= res.HitRate[6]) {
		t.Fatalf("hit rate should grow with capacity: %v", res.HitRate)
	}
}

func TestRigCaching(t *testing.T) {
	a := getAnimalsRig(quick, nn.ArchResNet50)
	b := getAnimalsRig(quick, nn.ArchResNet50)
	if a != b {
		t.Fatal("rig should be memoized")
	}
	if a.world.Classes() == 0 || a.net(nn.ArchResNet50) == nil {
		t.Fatal("rig incomplete")
	}
	_ = imagesim.DefaultSeverity
}

func TestQuantizationShape(t *testing.T) {
	res, err := Quantization(quick)
	if err != nil {
		t.Fatal(err)
	}
	if res.Acc[8] < res.Acc[64]-0.05 {
		t.Fatalf("8-bit quantization should be nearly lossless: %v vs %v", res.Acc[8], res.Acc[64])
	}
	if res.Acc[2] > res.Acc[4] {
		t.Fatal("2-bit should be worse than 4-bit")
	}
	// The §2 claim: per-class damage exceeds the average damage.
	avgDrop := res.Acc[64] - res.Acc[4]
	if res.WorstClassDrop[4] < avgDrop {
		t.Fatalf("worst-class drop %v should exceed average drop %v", res.WorstClassDrop[4], avgDrop)
	}
	if !(res.Size[4] < res.Size[8] && res.Size[8] < res.Size[64]) {
		t.Fatal("sizes not shrinking")
	}
	// The real int8 execution mode: near-lossless, and smaller than the
	// 8-bit storage estimate because BN folds into the requantization
	// epilogue instead of being stored.
	if res.Int8Acc < res.Acc[64]-0.05 {
		t.Fatalf("fused int8 should be nearly lossless: %v vs %v", res.Int8Acc, res.Acc[64])
	}
	if res.Int8Size > res.Size[8] {
		t.Fatalf("fused int8 size %d exceeds the 8-bit estimate %d", res.Int8Size, res.Size[8])
	}
	if res.Int8Speedup <= 0 {
		t.Fatal("int8 serving speedup not measured")
	}
	if res.Int8WorstDrop < 0 || res.Int8WorstDrop > 1 {
		t.Fatalf("int8 worst-class drop %v out of range", res.Int8WorstDrop)
	}
}

func TestHardwareFaultShape(t *testing.T) {
	res, err := HardwareFault(quick)
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultyDevices == 0 {
		t.Fatal("no faulty devices assigned")
	}
	if res.NoAdaptFaultyAcc >= res.NoAdaptHealthyAcc-0.05 {
		t.Fatalf("defect should cost accuracy: faulty %v vs healthy %v",
			res.NoAdaptFaultyAcc, res.NoAdaptHealthyAcc)
	}
	if res.NazarFaultyAcc <= res.NoAdaptFaultyAcc {
		t.Fatalf("Nazar should recover faulty devices: %v vs %v",
			res.NazarFaultyAcc, res.NoAdaptFaultyAcc)
	}
	if res.NazarHealthyAcc < res.NoAdaptHealthyAcc-0.03 {
		t.Fatalf("Nazar must not harm healthy devices: %v vs %v",
			res.NazarHealthyAcc, res.NoAdaptHealthyAcc)
	}
	if res.DeviceCauses == 0 {
		t.Fatal("RCA never grouped by device ID")
	}
}

func TestExtensionsShape(t *testing.T) {
	res, err := Extensions(quick)
	if err != nil {
		t.Fatal(err)
	}
	if res.Central <= res.NoAdapt+0.05 {
		t.Fatalf("centralized adaptation should recover fog: %v vs %v", res.Central, res.NoAdapt)
	}
	if res.Federated <= res.NoAdapt {
		t.Fatalf("federated adaptation should beat no-adapt: %v vs %v", res.Federated, res.NoAdapt)
	}
	if res.Federated < res.Central-0.15 {
		t.Fatalf("federated %v too far below centralized %v", res.Federated, res.Central)
	}
	// More privacy (smaller epsilon) must not help accuracy.
	if res.DP[1] > res.DP[8]+0.05 {
		t.Fatalf("DP accuracy should degrade as epsilon shrinks: eps1=%v eps8=%v", res.DP[1], res.DP[8])
	}
	// The headline of the extension study: per-sample DP on raw inputs
	// destroys adaptation utility even at generous budgets, while
	// federated BN aggregation achieves privacy (no uploads at all)
	// at nearly centralized accuracy.
	if res.Federated <= res.DP[8] {
		t.Fatalf("federated %v should dominate DP uploads %v", res.Federated, res.DP[8])
	}
}

func TestFederatedE2EShape(t *testing.T) {
	res, err := FederatedE2E(quick)
	if err != nil {
		t.Fatal(err)
	}
	if res.Federated <= res.NoAdapt {
		t.Fatalf("federated %v should beat no-adapt %v", res.Federated, res.NoAdapt)
	}
	if res.Federated > res.Nazar+0.05 {
		t.Fatalf("federated %v should not beat centralized %v (it sees strictly less data)",
			res.Federated, res.Nazar)
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := &Table{ID: "x", Title: "demo", Header: []string{"A", "B"}}
	tb.AddRow("1", "va|ue")
	tb.Notes = append(tb.Notes, "a note")
	md := tb.Markdown()
	for _, want := range []string{"### x: demo", "| A | B |", "| --- | --- |", `va\|ue`, "> a note"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestAblationThresholdShape(t *testing.T) {
	res, err := AblationThreshold(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DriftAcc) != 4 {
		t.Fatalf("expected 4 operating points, got %d", len(res.DriftAcc))
	}
	// The calibrated operating point must not be dominated by the
	// lowest threshold (starved recall).
	if res.DriftAcc[0.95] < res.DriftAcc[0.80]-0.03 {
		t.Fatalf("0.95 (%v) should not trail 0.80 (%v)", res.DriftAcc[0.95], res.DriftAcc[0.80])
	}
}

func TestDetectorAUROCShape(t *testing.T) {
	res, err := DetectorAUROC(quick)
	if err != nil {
		t.Fatal(err)
	}
	for name, a := range res.AUROC {
		if a < 0.55 {
			t.Fatalf("%s AUROC %v barely better than chance", name, a)
		}
	}
	// The free threshold must be competitive with the expensive methods
	// (within 0.15 of the best) — the Table 1 argument.
	best := 0.0
	for _, a := range res.AUROC {
		if a > best {
			best = a
		}
	}
	if res.AUROC["threshold(msp)"] < best-0.15 {
		t.Fatalf("MSP AUROC %v too far below best %v", res.AUROC["threshold(msp)"], best)
	}
}
