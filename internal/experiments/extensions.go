package experiments

import (
	"fmt"

	"nazar/internal/adapt"
	"nazar/internal/federated"
	"nazar/internal/imagesim"
	"nazar/internal/nn"
	"nazar/internal/pipeline"
	"nazar/internal/privacy"
	"nazar/internal/rca"
	"nazar/internal/tensor"
)

// ExtensionsResult evaluates the paper's two future-work directions on
// the fog cause: federated adaptation (no uploads at all) and
// differentially private uploads at several ε budgets, against the
// centralized baseline.
type ExtensionsResult struct {
	NoAdapt, Central float64
	Federated        float64
	// DP[epsilon] is the accuracy with sanitized uploads.
	DP    map[float64]float64
	Table *Table
}

// Extensions runs the federated-vs-central-vs-DP comparison.
func Extensions(o Options) (*ExtensionsResult, error) {
	o = o.withDefaults()
	r := getAnimalsRig(o, nn.ArchResNet50)
	base := r.net(nn.ArchResNet50)
	rng := tensor.NewRand(o.Seed+50, 1)

	const devices, perDevice = 5, 64
	// Each device's local fog buffer; the centralized pool is their
	// union.
	local := make([]*tensor.Matrix, devices)
	pool := tensor.New(devices*perDevice, r.world.Dim())
	for d := 0; d < devices; d++ {
		local[d] = tensor.New(perDevice, r.world.Dim())
		for i := 0; i < perDevice; i++ {
			c := (d*perDevice + i) % r.world.Classes()
			x := r.world.Corrupt(r.world.Sample(c, rng), imagesim.Fog, imagesim.DefaultSeverity, rng)
			copy(local[d].Row(i), x)
			copy(pool.Row(d*perDevice+i), x)
		}
	}
	fogX, labels := testPartition(r, imagesim.Fog, false, o.Seed+51)

	cfg := adapt.Config{Epochs: 2, MinSteps: 20, Rng: tensor.NewRand(o.Seed+52, 1)}
	res := &ExtensionsResult{DP: map[float64]float64{}, NoAdapt: base.Accuracy(fogX, labels)}

	central, err := adapt.Adapt(base, pool, cfg)
	if err != nil {
		return nil, err
	}
	res.Central = central.Accuracy(fogX, labels)

	// Federated: local TENT + weighted BN aggregation.
	var updates []federated.ClientUpdate
	for d := 0; d < devices; d++ {
		u, err := federated.LocalAdapt(base, local[d], "weather=fog", fmt.Sprintf("dev%d", d), cfg)
		if err != nil {
			return nil, err
		}
		updates = append(updates, u)
	}
	snap, err := federated.Aggregate(updates)
	if err != nil {
		return nil, err
	}
	fedModel := base.Clone()
	if err := snap.ApplyTo(fedModel); err != nil {
		return nil, err
	}
	res.Federated = fedModel.Accuracy(fogX, labels)

	// DP uploads: sanitize every pooled sample, adapt centrally.
	// Clip at roughly the typical sample norm so clipping itself is
	// mild and ε controls the noise.
	clip := typicalNorm(pool)
	for _, eps := range []float64{8, 4, 1} {
		san, err := privacy.NewSanitizer(eps, 1e-5, clip)
		if err != nil {
			return nil, err
		}
		noisy := tensor.New(pool.Rows, pool.Cols)
		srng := tensor.NewRand(o.Seed+53, uint64(eps*16))
		for i := 0; i < pool.Rows; i++ {
			copy(noisy.Row(i), san.Sanitize(pool.Row(i), srng))
		}
		m, err := adapt.Adapt(base, noisy, cfg)
		if err != nil {
			return nil, err
		}
		res.DP[eps] = m.Accuracy(fogX, labels)
	}

	table := &Table{
		ID:     "extensions",
		Title:  "Future-work extensions on the fog cause: federated + DP uploads",
		Header: []string{"Variant", "Fog accuracy", "Raw inputs leave device?"},
	}
	table.AddRow("no-adapt", pct(res.NoAdapt), "-")
	table.AddRow("centralized TENT", pct(res.Central), "yes")
	for _, eps := range []float64{8, 4, 1} {
		table.AddRow(fmt.Sprintf("centralized + DP (ε=%g)", eps), pct(res.DP[eps]), "noised only")
	}
	table.AddRow("federated (5 clients)", pct(res.Federated), "no")
	table.Notes = append(table.Notes,
		"§6 future work: per-sample DP on raw uploads destroys adaptation utility even at generous ε,",
		"while federated BN aggregation gets privacy (nothing uploaded) at near-centralized accuracy")
	res.Table = table
	return res, nil
}

// typicalNorm returns the mean row L2 norm of a batch.
func typicalNorm(m *tensor.Matrix) float64 {
	var sum float64
	for i := 0; i < m.Rows; i++ {
		sum += tensor.Norm2(m.Row(i))
	}
	return sum / float64(m.Rows)
}

// FederatedE2EResult compares centralized Nazar against federated Nazar
// end to end on the cityscapes workload.
type FederatedE2EResult struct {
	// Drifted-data accuracy, mean over the last windows.
	NoAdapt, Nazar, Federated float64
	Table                     *Table
}

// FederatedE2E runs the full streaming workload under the federated
// strategy and the two reference strategies.
func FederatedE2E(o Options) (*FederatedE2EResult, error) {
	o = o.withDefaults()
	windows := e2eWindows(o)
	res := &FederatedE2EResult{}
	get := func(s pipeline.Strategy) (float64, error) {
		r, err := runE2E(e2eKey{dataset: "cityscapes", arch: nn.ArchResNet50, strategy: s,
			windows: windows, severity: imagesim.DefaultSeverity, rcaMode: rca.Full,
			quick: o.Quick, seed: o.Seed})
		if err != nil {
			return 0, err
		}
		m, _ := r.AvgDriftAccLast(windows - 1)
		return m, nil
	}
	var err error
	if res.NoAdapt, err = get(pipeline.NoAdapt); err != nil {
		return nil, err
	}
	if res.Nazar, err = get(pipeline.Nazar); err != nil {
		return nil, err
	}
	if res.Federated, err = get(pipeline.FederatedNazar); err != nil {
		return nil, err
	}
	table := &Table{
		ID:     "federated",
		Title:  "Federated Nazar end to end (cityscapes, drifted-data accuracy)",
		Header: []string{"Strategy", "Drifted accuracy", "Samples uploaded"},
	}
	table.AddRow("no-adapt", pct(res.NoAdapt), "none")
	table.AddRow("Nazar (centralized)", pct(res.Nazar), "sampled inputs")
	table.AddRow("Nazar (federated)", pct(res.Federated), "BN states only")
	table.Notes = append(table.Notes,
		"§6 future work: federated adaptation keeps most of Nazar's recovery with zero input uploads")
	res.Table = table
	return res, nil
}
