package experiments

import (
	"fmt"
	"math"
	"time"

	"nazar/internal/nn"
	"nazar/internal/tensor"
)

// QuantizationResult measures compression-induced per-class degradation
// (the §2 motivation: quantization shrinks models but hurts specific
// classes unpredictably — one of the drift sources Nazar is built to
// catch post-deployment).
type QuantizationResult struct {
	// Acc[bits] is overall accuracy at that weight width (64 = float).
	Acc map[int]float64
	// WorstClassDrop[bits] is the largest per-class accuracy drop
	// relative to the float model.
	WorstClassDrop map[int]float64
	// Size[bits] is the serialized model size.
	Size map[int]int
	// Int8Acc / Int8WorstDrop / Int8Size measure the real int8
	// execution mode (per-channel weight scales, BN folded into the
	// requantization epilogue, fused int8 kernels) rather than the
	// fake-quant round-trips of the bit sweep.
	Int8Acc       float64
	Int8WorstDrop float64
	Int8Size      int
	// Int8Speedup is the measured single-core serving speedup of the
	// int8 pass over the float pass on this model (indicative only —
	// BENCH_kernels.json carries the controlled measurement).
	Int8Speedup float64
	Table       *Table
}

// Quantization sweeps weight bit widths and reports overall accuracy,
// the worst per-class drop, and model size.
func Quantization(o Options) (*QuantizationResult, error) {
	o = o.withDefaults()
	r := getAnimalsRig(o, nn.ArchResNet50)
	base := r.net(nn.ArchResNet50)

	res := &QuantizationResult{
		Acc:            map[int]float64{},
		WorstClassDrop: map[int]float64{},
		Size:           map[int]int{},
	}
	table := &Table{
		ID:     "quantization",
		Title:  "Model compression: accuracy and per-class damage vs bit width",
		Header: []string{"Bits", "Size (bytes)", "Accuracy", "Worst class drop"},
	}

	floatAcc, _ := nn.PerClassAccuracy(base, r.valX, r.valY, r.world.Classes())
	res.Acc[64] = base.Accuracy(r.valX, r.valY)
	res.Size[64] = base.SizeBytes()
	table.AddRow("float64", fmt.Sprint(res.Size[64]), pct(res.Acc[64]), "-")

	for _, bits := range []int{8, 6, 4, 3, 2} {
		q, err := nn.Quantize(base, bits)
		if err != nil {
			return nil, err
		}
		res.Acc[bits] = q.Accuracy(r.valX, r.valY)
		res.Size[bits] = nn.QuantizedSizeBytes(base, bits)
		qAcc, present := nn.PerClassAccuracy(q, r.valX, r.valY, r.world.Classes())
		worst := 0.0
		for c := range present {
			if !present[c] {
				continue
			}
			worst = math.Max(worst, floatAcc[c]-qAcc[c])
		}
		res.WorstClassDrop[bits] = worst
		table.AddRow(fmt.Sprint(bits), fmt.Sprint(res.Size[bits]), pct(res.Acc[bits]), pct(worst))
	}

	// The real int8 execution mode: per-channel weights, activation
	// scales calibrated on the training split, serving fully fused
	// (never dequantized).
	calRows := min(128, r.trainX.Rows)
	cal := tensor.New(calRows, r.trainX.Cols)
	copy(cal.Data, r.trainX.Data[:calRows*r.trainX.Cols])
	qn, err := nn.QuantizeInt8(base, cal)
	if err != nil {
		return nil, err
	}
	res.Int8Acc = qn.Accuracy(r.valX, r.valY)
	res.Int8Size = qn.SizeBytes()
	res.Int8WorstDrop = worstClassDrop(floatAcc, qn.Predict(r.valX), r.valY, r.world.Classes())
	res.Int8Speedup = serveSpeedup(base, qn, r.valX)
	table.AddRow("int8 (fused)", fmt.Sprint(res.Int8Size), pct(res.Int8Acc),
		fmt.Sprintf("%s (%.1fx serve)", pct(res.Int8WorstDrop), res.Int8Speedup))

	table.Notes = append(table.Notes,
		"§2 motivation: compression damage concentrates on specific classes and is hard to anticipate",
		"the int8 (fused) row is the deployed execution mode: per-channel scales with BN folded into the requantization epilogue, served without dequantizing")
	res.Table = table
	return res, nil
}

// worstClassDrop computes the largest per-class accuracy drop of preds
// relative to the float per-class accuracies.
func worstClassDrop(floatAcc []float64, preds, labels []int, classes int) float64 {
	correct := make([]int, classes)
	total := make([]int, classes)
	for i, p := range preds {
		total[labels[i]]++
		if p == labels[i] {
			correct[labels[i]]++
		}
	}
	worst := 0.0
	for c := 0; c < classes; c++ {
		if total[c] == 0 {
			continue
		}
		worst = math.Max(worst, floatAcc[c]-float64(correct[c])/float64(total[c]))
	}
	return worst
}

// serveSpeedup times single-core one-input serving (the on-device hot
// path) on both execution modes, best of three passes each.
func serveSpeedup(net *nn.Network, qn *nn.QuantizedNetwork, x *tensor.Matrix) float64 {
	tensor.SetMaxWorkers(1)
	defer tensor.SetMaxWorkers(0)
	rows := min(64, x.Rows)
	timeIt := func(f func([]float64)) time.Duration {
		best := time.Duration(math.MaxInt64)
		for rep := 0; rep < 3; rep++ {
			start := time.Now()
			for i := 0; i < rows; i++ {
				f(x.Row(i))
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	qn.LogitsOne(x.Row(0)) // warm scratch
	net.LogitsOne(x.Row(0))
	intT := timeIt(func(row []float64) { qn.LogitsOne(row) })
	floatT := timeIt(func(row []float64) { net.LogitsOne(row) })
	if intT <= 0 {
		return 0
	}
	return float64(floatT) / float64(intT)
}
