package experiments

import (
	"fmt"
	"math"

	"nazar/internal/nn"
)

// QuantizationResult measures compression-induced per-class degradation
// (the §2 motivation: quantization shrinks models but hurts specific
// classes unpredictably — one of the drift sources Nazar is built to
// catch post-deployment).
type QuantizationResult struct {
	// Acc[bits] is overall accuracy at that weight width (64 = float).
	Acc map[int]float64
	// WorstClassDrop[bits] is the largest per-class accuracy drop
	// relative to the float model.
	WorstClassDrop map[int]float64
	// Size[bits] is the serialized model size.
	Size  map[int]int
	Table *Table
}

// Quantization sweeps weight bit widths and reports overall accuracy,
// the worst per-class drop, and model size.
func Quantization(o Options) (*QuantizationResult, error) {
	o = o.withDefaults()
	r := getAnimalsRig(o, nn.ArchResNet50)
	base := r.net(nn.ArchResNet50)

	res := &QuantizationResult{
		Acc:            map[int]float64{},
		WorstClassDrop: map[int]float64{},
		Size:           map[int]int{},
	}
	table := &Table{
		ID:     "quantization",
		Title:  "Model compression: accuracy and per-class damage vs bit width",
		Header: []string{"Bits", "Size (bytes)", "Accuracy", "Worst class drop"},
	}

	floatAcc, _ := nn.PerClassAccuracy(base, r.valX, r.valY, r.world.Classes())
	res.Acc[64] = base.Accuracy(r.valX, r.valY)
	res.Size[64] = base.SizeBytes()
	table.AddRow("float64", fmt.Sprint(res.Size[64]), pct(res.Acc[64]), "-")

	for _, bits := range []int{8, 6, 4, 3, 2} {
		q, err := nn.Quantize(base, bits)
		if err != nil {
			return nil, err
		}
		res.Acc[bits] = q.Accuracy(r.valX, r.valY)
		res.Size[bits] = nn.QuantizedSizeBytes(base, bits)
		qAcc, present := nn.PerClassAccuracy(q, r.valX, r.valY, r.world.Classes())
		worst := 0.0
		for c := range present {
			if !present[c] {
				continue
			}
			worst = math.Max(worst, floatAcc[c]-qAcc[c])
		}
		res.WorstClassDrop[bits] = worst
		table.AddRow(fmt.Sprint(bits), fmt.Sprint(res.Size[bits]), pct(res.Acc[bits]), pct(worst))
	}
	table.Notes = append(table.Notes,
		"§2 motivation: compression damage concentrates on specific classes and is hard to anticipate")
	res.Table = table
	return res, nil
}
