package experiments

import (
	"fmt"
	"strings"

	"nazar/internal/dataset"
	"nazar/internal/nn"
	"nazar/internal/pipeline"
)

// HardwareFaultResult measures Nazar against the paper's second drift
// source: persistent hardware defects on specific devices (§2, §3.3's
// lens-manufacturer example). The drift log carries no "lens" attribute,
// so — exactly as the paper's limitations discussion predicts — RCA
// falls back to grouping by device ID and still produces working
// by-cause adaptations.
type HardwareFaultResult struct {
	FaultyDevices int
	// DeviceCauses counts discovered causes that name a device ID.
	DeviceCauses int
	// Faulty-device accuracy under Nazar vs no-adapt.
	NazarFaultyAcc, NoAdaptFaultyAcc float64
	// Healthy devices must not be harmed.
	NazarHealthyAcc, NoAdaptHealthyAcc float64
	Table                              *Table
}

// HardwareFault runs the cityscapes workload with a fraction of devices
// carrying a persistent sensor defect and no weather drift applied to
// them beyond the usual calendar.
func HardwareFault(o Options) (*HardwareFaultResult, error) {
	o = o.withDefaults()
	ds := e2eDatasetForFaults(o)
	base := e2eBase(ds, nn.ArchResNet50, o.Quick, o.Seed)

	res := &HardwareFaultResult{}
	runs := map[pipeline.Strategy]*pipeline.Result{}
	for _, s := range []pipeline.Strategy{pipeline.NoAdapt, pipeline.Nazar} {
		cfg := pipeline.DefaultConfig(s, o.Seed)
		cfg.Windows = e2eWindows(o)
		cfg.FaultyDeviceFraction = 0.30
		r, err := pipeline.Run(ds, base, cfg)
		if err != nil {
			return nil, err
		}
		runs[s] = r
	}
	nzr, non := runs[pipeline.Nazar], runs[pipeline.NoAdapt]
	res.FaultyDevices = len(nzr.FaultyDevices)
	res.NazarFaultyAcc = nzr.FaultyAcc.Value()
	res.NoAdaptFaultyAcc = non.FaultyAcc.Value()
	res.NazarHealthyAcc = nzr.HealthyAcc.Value()
	res.NoAdaptHealthyAcc = non.HealthyAcc.Value()
	for _, w := range nzr.Windows {
		for _, c := range w.Causes {
			if strings.Contains(c, "vehicle_") || strings.Contains(c, "android_") {
				res.DeviceCauses++
			}
		}
	}

	table := &Table{
		ID:     "hardware",
		Title:  "Hardware-defect drift: RCA groups by device ID (no lens attribute exists)",
		Header: []string{"Metric", "Value"},
	}
	table.AddRow("faulty devices", fmt.Sprint(res.FaultyDevices))
	table.AddRow("device-ID causes discovered", fmt.Sprint(res.DeviceCauses))
	table.AddRow("faulty-device accuracy (no-adapt)", pct(res.NoAdaptFaultyAcc))
	table.AddRow("faulty-device accuracy (Nazar)", pct(res.NazarFaultyAcc))
	table.AddRow("healthy-device accuracy (no-adapt)", pct(res.NoAdaptHealthyAcc))
	table.AddRow("healthy-device accuracy (Nazar)", pct(res.NazarHealthyAcc))
	table.Notes = append(table.Notes,
		"§3.3 limitation: without a lens attribute, Nazar groups by device/model/location and still adapts")
	res.Table = table
	return res, nil
}

// e2eDatasetForFaults builds a cityscapes variant with more devices so a
// 30% fault rate yields several faulty ones.
func e2eDatasetForFaults(o Options) *dataset.Dataset {
	key := fmt.Sprintf("cityscapes-faults/%v/%d", o.Quick, o.Seed)
	e2eMu.Lock()
	defer e2eMu.Unlock()
	if ds, ok := dsMemo[key]; ok {
		return ds
	}
	total := 4000
	if o.Quick {
		total = 1800
	}
	ds := dataset.NewCityscapes(dataset.CityscapesConfig{Total: total, Devices: 4, Seed: o.Seed})
	dsMemo[key] = ds
	return ds
}
