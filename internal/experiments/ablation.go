package experiments

import (
	"fmt"
	"sort"
	"time"

	"nazar/internal/adapt"
	"nazar/internal/detect"
	"nazar/internal/driftlog"
	"nazar/internal/fim"
	"nazar/internal/imagesim"
	"nazar/internal/metrics"
	"nazar/internal/nn"
	"nazar/internal/pipeline"
	"nazar/internal/rca"
	"nazar/internal/registry"
	"nazar/internal/tensor"
)

// AblationScoresResult compares the confidence scores Nazar could have
// used for its threshold detector.
type AblationScoresResult struct {
	BestF1 map[string]float64
	AUROC  map[string]float64
	Table  *Table
}

// AblationScores sweeps thresholds for MSP, entropy, energy and max-logit
// scores and reports each score's best F1 — the paper found them "almost
// identical", which justified picking the normalized MSP.
func AblationScores(o Options) (*AblationScoresResult, error) {
	o = o.withDefaults()
	r := getAnimalsRig(o, nn.ArchResNet50)
	net := r.net(nn.ArchResNet50)
	perSide := 400
	if o.Quick {
		perSide = 200
	}
	clean, drift, _ := evalSets(r, perSide, imagesim.DefaultSeverity, o.Seed+20)
	cleanLogits := net.Logits(clean).Clone()
	driftLogits := net.Logits(drift).Clone()

	res := &AblationScoresResult{BestF1: map[string]float64{}, AUROC: map[string]float64{}}
	table := &Table{ID: "ablation-scores", Title: "Best F1 and AUROC by confidence score",
		Header: []string{"Score", "Best F1", "At threshold", "AUROC"}}
	for _, s := range []detect.Scorer{detect.MSP{}, detect.NegEntropy{}, detect.Energy{}, detect.MaxLogit{}} {
		cs := detect.ScoreBatch(s, cleanLogits)
		ds := detect.ScoreBatch(s, driftLogits)
		// Sweep thresholds over the observed score range.
		all := append(append([]float64(nil), cs...), ds...)
		sort.Float64s(all)
		var thresholds []float64
		for q := 0.02; q < 1.0; q += 0.02 {
			thresholds = append(thresholds, all[int(q*float64(len(all)-1))])
		}
		best := detect.BestF1(detect.Sweep(cs, ds, thresholds))
		auroc := metrics.AUROC(cs, ds)
		res.BestF1[s.Name()] = best.F1
		res.AUROC[s.Name()] = auroc
		table.AddRow(s.Name(), f3(best.F1), fmt.Sprintf("%.3g", best.Threshold), f3(auroc))
	}
	table.Notes = append(table.Notes, "paper: thresholds on these scores perform almost identically to MSP")
	res.Table = table
	return res, nil
}

// AblationRankingResult compares FIM ranking criteria by resulting FMS.
type AblationRankingResult struct {
	FMS   map[string]float64
	Table *Table
}

// AblationRanking re-ranks the mined itemsets of the three-cause Table 5
// scenario by different criteria before set reduction + counterfactual
// analysis, and scores the resulting clustering. Risk-ratio ranking is
// Nazar's default.
func AblationRanking(o Options) (*AblationRankingResult, error) {
	o = o.withDefaults()
	scn := table5Scenarios()[7] // snow, rain & fog
	days, devices, perDay := 14, 4, 2
	if o.Quick {
		days, devices, perDay = 14, 2, 1
	}
	s, truth, attrs := buildTable5Log(scn, 2, days, devices, perDay)
	v := s.All()

	criteria := []struct {
		name string
		less func(a, b fim.Result) bool
	}{
		{"risk-ratio (Nazar)", nil}, // fim.Rank's native order
		{"support", func(a, b fim.Result) bool { return a.Metrics.Support > b.Metrics.Support }},
		{"confidence", func(a, b fim.Result) bool { return a.Metrics.Confidence > b.Metrics.Confidence }},
		{"occurrence", func(a, b fim.Result) bool { return a.Metrics.Occurrence > b.Metrics.Occurrence }},
	}
	res := &AblationRankingResult{FMS: map[string]float64{}}
	table := &Table{ID: "ablation-ranking", Title: "FMS by FIM ranking criterion (3-cause scenario)",
		Header: []string{"Ranking", "FMS"}}
	for _, c := range criteria {
		mined, err := fim.Mine(v, nil, fim.DefaultThresholds())
		if err != nil {
			return nil, err
		}
		if c.less != nil {
			sort.SliceStable(mined, func(i, j int) bool { return c.less(mined[i], mined[j]) })
		}
		assocs := rca.SetReduction(mined)
		causes, err := rca.Counterfactual(v, assocs, fim.DefaultThresholds())
		if err != nil {
			return nil, err
		}
		pred := make([]string, len(truth))
		for i := range truth {
			pred[i] = rca.CauseLabel(causes, rca.AssignCause(causes, attrs[i]))
		}
		fms := metrics.FowlkesMallows(truth, pred)
		res.FMS[c.name] = fms
		table.AddRow(c.name, f3(fms))
	}
	res.Table = table
	return res, nil
}

// AblationBNOnlyResult compares BN-only vs full-model adaptation.
type AblationBNOnlyResult struct {
	BNAcc, FullAcc     float64
	BNBytes, FullBytes int
	Table              *Table
}

// AblationBNOnly quantifies the §3.4 design choice: adapting only the BN
// layers is nearly as accurate as adapting all parameters while the
// deployable artifact is dramatically smaller.
func AblationBNOnly(o Options) (*AblationBNOnlyResult, error) {
	o = o.withDefaults()
	r := getAnimalsRig(o, nn.ArchResNet50)
	base := r.net(nn.ArchResNet50)
	rng := tensor.NewRand(o.Seed+21, 1)

	pool := r.world.CorruptBatch(r.trainX, imagesim.Fog, imagesim.DefaultSeverity, rng)
	testX, labels := testPartition(r, imagesim.Fog, false, o.Seed+21)

	// BN-only (Nazar).
	bnModel, err := adapt.Adapt(base, pool, adapt.Config{Rng: rng, MinSteps: 20})
	if err != nil {
		return nil, err
	}
	// Full-model: unfreeze everything and run the same TENT loop
	// manually.
	fullModel := base.Clone()
	opt := nn.NewAdam(0.0005)
	bs := 64
	for epoch := 0; epoch < 3; epoch++ {
		for s := 0; s+bs <= pool.Rows; s += bs {
			batch := tensor.New(bs, pool.Cols)
			copy(batch.Data, pool.Data[s*pool.Cols:(s+bs)*pool.Cols])
			fullModel.ZeroGrads()
			logits := fullModel.Forward(batch, nn.Adapt)
			_, dl := nn.Entropy(logits)
			fullModel.Backward(dl)
			opt.Step(fullModel.Params())
		}
	}

	res := &AblationBNOnlyResult{
		BNAcc:     bnModel.Accuracy(testX, labels),
		FullAcc:   fullModel.Accuracy(testX, labels),
		BNBytes:   nn.CaptureBN(bnModel).SizeBytes(),
		FullBytes: fullModel.SizeBytes(),
	}
	table := &Table{ID: "ablation-bnonly", Title: "BN-only vs full-model TENT on fog",
		Header: []string{"Variant", "Fog accuracy", "Artifact size (bytes)"}}
	table.AddRow("no-adapt", pct(base.Accuracy(testX, labels)), "-")
	table.AddRow("BN-only (Nazar)", pct(res.BNAcc), fmt.Sprint(res.BNBytes))
	table.AddRow("full model", pct(res.FullAcc), fmt.Sprint(res.FullBytes))
	table.Notes = append(table.Notes,
		fmt.Sprintf("artifact ratio %.0f× (paper: 217× for ResNet50)", float64(res.FullBytes)/float64(res.BNBytes)))
	res.Table = table
	return res, nil
}

// AblationPoolCapacityResult measures version-selection quality under
// pool-capacity pressure.
type AblationPoolCapacityResult struct {
	// HitRate[capacity] is the fraction of drifted inputs served by a
	// matching adapted version.
	HitRate map[int]float64
	Table   *Table
}

// AblationPoolCapacity installs versions for every corruption type into
// pools of varying capacity and measures how often a drifted input is
// served by its matching version (LRU eviction loses coverage as
// capacity shrinks).
func AblationPoolCapacity(o Options) (*AblationPoolCapacityResult, error) {
	o = o.withDefaults()
	r := getAnimalsRig(o, nn.ArchResNet50)
	base := r.net(nn.ArchResNet50)
	tent, err := getAdaptedSet(o, r, adapt.TENT)
	if err != nil {
		return nil, err
	}
	// Build one version per weather corruption + a handful of others.
	causesOf := func(c imagesim.Corruption) rca.Cause {
		return rca.Cause{Items: fim.NewItemset(driftlog.Cond{Attr: driftlog.AttrWeather, Value: string(c)})}
	}
	corrs := []imagesim.Corruption{imagesim.Rain, imagesim.Snow, imagesim.Fog,
		imagesim.Contrast, imagesim.Brightness, imagesim.DefocusBlur}

	res := &AblationPoolCapacityResult{HitRate: map[int]float64{}}
	table := &Table{ID: "ablation-poolcap", Title: "Version hit rate vs pool capacity",
		Header: []string{"Capacity", "Hit rate"}}
	for _, capacity := range []int{0, 6, 3, 1} {
		pool := registry.NewPool(base, capacity)
		now := time.Date(2020, 2, 1, 0, 0, 0, 0, time.UTC)
		for i, c := range corrs {
			v := adapt.BNVersion{
				ID:        fmt.Sprintf("%s-v", c),
				Cause:     causesOf(c),
				Snapshot:  nn.CaptureBN(tent.byCause[c]),
				CreatedAt: now.Add(time.Duration(i) * time.Hour),
			}
			if err := pool.Install(v, v.CreatedAt); err != nil {
				return nil, err
			}
		}
		hits, total := 0, 0
		for _, c := range corrs {
			_, id := pool.Select(map[string]string{driftlog.AttrWeather: string(c)})
			total++
			if id == fmt.Sprintf("%s-v", c) {
				hits++
			}
		}
		rate := float64(hits) / float64(total)
		res.HitRate[capacity] = rate
		label := fmt.Sprint(capacity)
		if capacity == 0 {
			label = "unlimited"
		}
		table.AddRow(label, f3(rate))
	}
	res.Table = table
	return res, nil
}

// AblationThresholdResult measures the end-to-end sensitivity to the
// on-device detector's operating point.
type AblationThresholdResult struct {
	// DriftAcc[threshold] is Nazar's drifted-data accuracy.
	DriftAcc map[float64]float64
	Table    *Table
}

// AblationThreshold runs the cityscapes workload at several MSP
// thresholds. Too low starves RCA of recall (causes never pass the
// confidence gate); too high floods the log with false positives. The
// substrate's calibrated operating point is 0.95 (see EXPERIMENTS.md).
func AblationThreshold(o Options) (*AblationThresholdResult, error) {
	o = o.withDefaults()
	ds := e2eDataset("cityscapes", 0, o.Quick, o.Seed)
	base := e2eBase(ds, nn.ArchResNet50, o.Quick, o.Seed)
	res := &AblationThresholdResult{DriftAcc: map[float64]float64{}}
	table := &Table{ID: "ablation-threshold",
		Title:  "Nazar drifted-data accuracy vs on-device MSP threshold",
		Header: []string{"Threshold", "Drifted accuracy"}}
	windows := e2eWindows(o)
	for _, th := range []float64{0.80, 0.90, 0.95, 0.99} {
		cfg := pipeline.DefaultConfig(pipeline.Nazar, o.Seed)
		cfg.Windows = windows
		cfg.DetectorThreshold = th
		if o.Quick {
			cfg.Cloud.AdaptCfg.MinSteps = 15
		}
		r, err := pipeline.Run(ds, base, cfg)
		if err != nil {
			return nil, err
		}
		m, _ := r.AvgDriftAccLast(windows - 1)
		res.DriftAcc[th] = m
		table.AddRow(fmt.Sprintf("%.2f", th), pct(m))
	}
	res.Table = table
	return res, nil
}
