package experiments

import (
	"fmt"
	"math"
	"time"

	"nazar/internal/detect"
	"nazar/internal/imagesim"
	"nazar/internal/metrics"
	"nazar/internal/nn"
	"nazar/internal/tensor"
)

// evalSets builds the §5.3 evaluation split: an equal split of clean
// images (negatives) and images drifted with the 16 corruption types at
// the given severity (positives).
func evalSets(r *animalsRig, perSide int, severity int, seed uint64) (clean, drift *tensor.Matrix, labels []int) {
	rng := tensor.NewRand(seed, 0xE7A1)
	clean = tensor.New(perSide, r.world.Dim())
	drift = tensor.New(perSide, r.world.Dim())
	labels = make([]int, perSide)
	for i := 0; i < perSide; i++ {
		c := i % r.world.Classes()
		labels[i] = c
		copy(clean.Row(i), r.world.Sample(c, rng))
		corr := imagesim.AllCorruptions[i%len(imagesim.AllCorruptions)]
		copy(drift.Row(i), r.world.Corrupt(r.world.Sample(c, rng), corr, severity, rng))
	}
	return clean, drift, labels
}

// measureNs times f per call over the rows of x (mean ns).
func measureNs(f func(x []float64), x *tensor.Matrix) float64 {
	n := min(40, x.Rows)
	// Warm up.
	for i := 0; i < 5; i++ {
		f(x.Row(i % x.Rows))
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		f(x.Row(i))
	}
	return float64(time.Since(start).Nanoseconds()) / float64(n)
}

// mspScores runs the model and scores every row with MSP.
func mspScores(net *nn.Network, x *tensor.Matrix) []float64 {
	return detect.ScoreBatch(detect.MSP{}, net.Logits(x))
}

// Table1Result carries the capability matrix plus a live sanity check of
// each implemented detector (mean clean vs drifted score).
type Table1Result struct {
	Matrix *Table
	Live   *Table
}

// Table1 reproduces the detector comparison matrix and instantiates every
// implemented method against the shared rig.
func Table1(o Options) (*Table1Result, error) {
	o = o.withDefaults()
	r := getAnimalsRig(o, nn.ArchResNet50)
	net := r.net(nn.ArchResNet50)

	matrix := &Table{
		ID:     "table1",
		Title:  "Detection method requirements (✗ = has the cost)",
		Header: []string{"Requirement", "Threshold", "KS-test", "OE", "Odin", "MD", "SSL", "CSI", "GOdin"},
	}
	rows := []struct {
		name string
		get  func(detect.Capabilities) bool
	}{
		{"No secondary dataset", func(c detect.Capabilities) bool { return c.NeedsSecondaryDataset }},
		{"No secondary model", func(c detect.Capabilities) bool { return c.NeedsSecondaryModel }},
		{"No backpropagation", func(c detect.Capabilities) bool { return c.NeedsBackprop }},
		{"No batching", func(c detect.Capabilities) bool { return c.NeedsBatching }},
	}
	info := detect.Table1()
	for _, row := range rows {
		cells := []string{row.name}
		for _, m := range info {
			if row.get(m.Caps) {
				cells = append(cells, "✗")
			} else {
				cells = append(cells, "✓")
			}
		}
		matrix.AddRow(cells...)
	}

	// Live check: every implemented detector must score clean above
	// drifted on average; per-inference latency is reported relative to
	// plain inference (the paper rules out GOdin because perturbation
	// "triples the inference time").
	clean, drift, _ := evalSets(r, 160, imagesim.DefaultSeverity, o.Seed+1)
	inferNs := measureNs(func(x []float64) { net.LogitsOne(x) }, clean)
	live := &Table{
		ID:     "table1-live",
		Title:  "Implemented detectors: separation and per-inference cost",
		Header: []string{"Detector", "Clean", "Drifted", "Separates", "Cost vs inference"},
	}
	addLive := func(name string, score func(x []float64) float64, higherIsClean bool) {
		var cm, dm float64
		n := min(60, clean.Rows)
		for i := 0; i < n; i++ {
			cm += score(clean.Row(i)) / float64(n)
			dm += score(drift.Row(i)) / float64(n)
		}
		sep := cm > dm
		if !higherIsClean {
			sep = dm > cm
		}
		cost := measureNs(func(x []float64) { score(x) }, clean)
		live.AddRow(name, f3(cm), f3(dm), fmt.Sprintf("%v", sep),
			fmt.Sprintf("%.1fx", cost/inferNs))
	}
	addLive("threshold(msp)", func(x []float64) float64 { return detect.MSP{}.Score(net.LogitsOne(x)) }, true)
	odin := detect.NewOdin(net, 0)
	addLive("odin", odin.Score, true)
	godin := detect.NewGOdin(net, r.trainX, 0)
	addLive("godin", godin.Score, true)
	md := detect.NewMahalanobis(net, r.trainX, r.trainY, r.world.Classes(), 0)
	addLive("mahalanobis", md.Distance, false)
	knn := detect.NewKNN(net, r.trainX, 10, 0)
	addLive("knn", knn.Distance, false)
	if !o.Quick {
		rng := tensor.NewRand(o.Seed+2, 1)
		outliers := r.world.CorruptBatch(r.trainX, imagesim.JPEG, imagesim.MaxSeverity, rng)
		oe := detect.NewOutlierExposure(net, r.trainX, r.trainY, outliers, 0.9,
			detect.OEConfig{Epochs: 2, Rng: rng})
		addLive("outlier-exposure", oe.Score, true)
		ssl := detect.NewSelfSupervised(r.trainX, 0.5, detect.SSLConfig{Rng: rng})
		addLive("ssl/csi", ssl.Score, true)
	}
	return &Table1Result{Matrix: matrix, Live: live}, nil
}

// DetectorAUROCResult quantifies every implemented detector on the same
// clean/drifted split with AUROC — the threshold-free extension of
// Table 1's qualitative matrix.
type DetectorAUROCResult struct {
	AUROC map[string]float64
	Table *Table
}

// DetectorAUROC scores each detector's confidence (or negated distance)
// on identical clean and drifted sets. The paper's argument is that the
// free threshold method is competitive with methods that are orders of
// magnitude more expensive; the AUROC column makes that quantitative.
func DetectorAUROC(o Options) (*DetectorAUROCResult, error) {
	o = o.withDefaults()
	r := getAnimalsRig(o, nn.ArchResNet50)
	net := r.net(nn.ArchResNet50)
	perSide := 200
	if o.Quick {
		perSide = 120
	}
	clean, drift, _ := evalSets(r, perSide, imagesim.DefaultSeverity, o.Seed+30)

	res := &DetectorAUROCResult{AUROC: map[string]float64{}}
	table := &Table{ID: "table1-auroc",
		Title:  "AUROC of every implemented detector on the same split",
		Header: []string{"Detector", "AUROC"}}
	score := func(name string, f func(x []float64) float64) {
		cs := make([]float64, perSide)
		ds := make([]float64, perSide)
		for i := 0; i < perSide; i++ {
			cs[i] = f(clean.Row(i))
			ds[i] = f(drift.Row(i))
		}
		a := metrics.AUROC(cs, ds)
		res.AUROC[name] = a
		table.AddRow(name, f3(a))
	}
	score("threshold(msp)", func(x []float64) float64 { return (detect.MSP{}).Score(net.LogitsOne(x)) })
	odin := detect.NewOdin(net, 0)
	score("odin", odin.Score)
	godin := detect.NewGOdin(net, r.trainX, 0)
	score("godin", godin.Score)
	md := detect.NewMahalanobis(net, r.trainX, r.trainY, r.world.Classes(), 0)
	score("mahalanobis", func(x []float64) float64 { return -md.Distance(x) })
	knn := detect.NewKNN(net, r.trainX, 10, 0)
	score("knn", func(x []float64) float64 { return -knn.Distance(x) })
	if !o.Quick {
		rng := tensor.NewRand(o.Seed+31, 1)
		outliers := r.world.CorruptBatch(r.trainX, imagesim.JPEG, imagesim.MaxSeverity, rng)
		oe := detect.NewOutlierExposure(net, r.trainX, r.trainY, outliers, 0.9,
			detect.OEConfig{Epochs: 2, Rng: rng})
		score("outlier-exposure", oe.Score)
		ssl := detect.NewSelfSupervised(r.trainX, 0.5, detect.SSLConfig{Rng: rng})
		score("ssl/csi", ssl.Score)
	}
	table.Notes = append(table.Notes,
		"the free MSP threshold is competitive with detectors costing 10x per inference — the paper's Table 1 argument, quantified")
	res.Table = table
	return res, nil
}

// Fig2Point is one batch-size measurement.
type Fig2Point struct {
	BatchSize int
	F1        float64
}

// Fig2Result holds the KS-test-vs-threshold comparison.
type Fig2Result struct {
	Points      []Fig2Point // KS-test at batch sizes > 1
	ThresholdF1 float64     // MSP threshold at batch size 1
	Table       *Table
}

// Fig2 reproduces the F1-vs-batch-size comparison: KS-test on MSP scores
// at batch sizes 2..64 versus the plain MSP threshold (batch size 1,
// threshold 0.9-equivalent).
func Fig2(o Options) (*Fig2Result, error) {
	o = o.withDefaults()
	r := getAnimalsRig(o, nn.ArchResNet50)
	net := r.net(nn.ArchResNet50)
	perSide := 480
	if o.Quick {
		perSide = 240
	}
	clean, drift, _ := evalSets(r, perSide, imagesim.DefaultSeverity, o.Seed+3)
	cleanScores := mspScores(net, clean)
	driftScores := mspScores(net, drift)

	// Calibrate the KS reference on a held-out clean sample.
	ref := cleanScores[:perSide/2]
	cleanEval := cleanScores[perSide/2:]
	driftEval := driftScores[perSide/2:]
	ks, err := detect.NewKSTest(ref, 0.05)
	if err != nil {
		return nil, err
	}

	res := &Fig2Result{}
	thr := detect.EvalScores(cleanEval, driftEval, 0.95)
	res.ThresholdF1 = thr.F1()

	table := &Table{
		ID:     "fig2",
		Title:  "F1 of KS-test by batch size vs MSP threshold (batch=1)",
		Header: []string{"Batch size", "Method", "F1"},
	}
	table.AddRow("1", "threshold", f3(res.ThresholdF1))
	for _, bs := range []int{2, 4, 8, 16, 32, 64} {
		f1 := detect.KSBatchF1(ks, cleanEval, driftEval, bs)
		res.Points = append(res.Points, Fig2Point{BatchSize: bs, F1: f1})
		table.AddRow(fmt.Sprint(bs), "ks-test", f3(f1))
	}
	table.Notes = append(table.Notes,
		"paper: KS-test slightly beats the threshold above batch size 4, is worse below")
	res.Table = table
	return res, nil
}

// Fig5aResult is the threshold sweep.
type Fig5aResult struct {
	Points []detect.SweepPoint
	Best   detect.SweepPoint
	Table  *Table
}

// Fig5a reproduces the F1-vs-MSP-threshold sweep.
func Fig5a(o Options) (*Fig5aResult, error) {
	o = o.withDefaults()
	r := getAnimalsRig(o, nn.ArchResNet50)
	net := r.net(nn.ArchResNet50)
	perSide := 480
	if o.Quick {
		perSide = 240
	}
	clean, drift, _ := evalSets(r, perSide, imagesim.DefaultSeverity, o.Seed+4)
	cleanScores := mspScores(net, clean)
	driftScores := mspScores(net, drift)

	var thresholds []float64
	for i := 0; i < 6; i++ { // 0.30 .. 0.80
		thresholds = append(thresholds, 0.30+0.10*float64(i))
	}
	for i := 0; i < 10; i++ { // 0.90 .. 0.99
		thresholds = append(thresholds, 0.90+0.01*float64(i))
	}
	points := detect.Sweep(cleanScores, driftScores, thresholds)
	best := detect.BestF1(points)

	table := &Table{
		ID:     "fig5a",
		Title:  "F1 score vs MSP threshold",
		Header: []string{"Threshold", "F1", "Precision", "Recall"},
	}
	for _, p := range points {
		table.AddRow(fmt.Sprintf("%.2f", p.Threshold), f3(p.F1), f3(p.Precision), f3(p.Recall))
	}
	table.Notes = append(table.Notes,
		fmt.Sprintf("peak F1 %.3f at threshold %.2f (paper: ~0.73, flat near 0.9)", best.F1, best.Threshold))
	return &Fig5aResult{Points: points, Best: best, Table: table}, nil
}

// Fig5bResult is the per-class accuracy spread.
type Fig5bResult struct {
	PerClass []float64
	Min, Max float64
	Table    *Table
}

// Fig5b reproduces the per-class accuracy variability of the animals
// model.
func Fig5b(o Options) (*Fig5bResult, error) {
	o = o.withDefaults()
	r := getAnimalsRig(o, nn.ArchResNet50)
	net := r.net(nn.ArchResNet50)
	acc, present := nn.PerClassAccuracy(net, r.valX, r.valY, r.world.Classes())
	res := &Fig5bResult{Min: 1, Max: 0}
	table := &Table{
		ID:     "fig5b",
		Title:  "Average accuracy per animal class",
		Header: []string{"Class", "Accuracy", "Class sigma"},
	}
	for c := 0; c < r.world.Classes(); c++ {
		if !present[c] {
			continue
		}
		res.PerClass = append(res.PerClass, acc[c])
		res.Min = math.Min(res.Min, acc[c])
		res.Max = math.Max(res.Max, acc[c])
		table.AddRow(fmt.Sprintf("species_%03d", c), pct(acc[c]), f3(r.world.ClassSigma(c)))
	}
	table.Notes = append(table.Notes,
		fmt.Sprintf("spread %.1f%%–%.1f%% (paper: 39.2%%–98.2%%)", 100*res.Min, 100*res.Max))
	res.Table = table
	return res, nil
}

// Fig5cPoint is one skew measurement.
type Fig5cPoint struct {
	Alpha         float64
	Accuracy      float64
	DetectionRate float64
}

// Fig5cResult is the class-skew sweep.
type Fig5cResult struct {
	Points []Fig5cPoint
	Table  *Table
}

// Fig5c reproduces the class-skew experiment: as the Zipf α grows, the
// sampled class mix concentrates on fewer (often low-accuracy) classes,
// accuracy degrades and the detection rate rises.
func Fig5c(o Options) (*Fig5cResult, error) {
	o = o.withDefaults()
	r := getAnimalsRig(o, nn.ArchResNet50)
	net := r.net(nn.ArchResNet50)
	n := 800
	if o.Quick {
		n = 300
	}
	res := &Fig5cResult{}
	table := &Table{
		ID:     "fig5c",
		Title:  "Accuracy and detection rate vs class skew (Zipf α)",
		Header: []string{"Alpha", "Accuracy", "Detection rate"},
	}
	for _, alpha := range []float64{0, 0.5, 1, 1.5, 2} {
		rng := tensor.NewRand(o.Seed+5, uint64(alpha*8+1))
		// Rank classes by ascending validation accuracy so high skew
		// concentrates on the hardest classes (locations with a high
		// share of low-accuracy species, as in §5.1).
		acc, _ := nn.PerClassAccuracy(net, r.valX, r.valY, r.world.Classes())
		order := make([]int, r.world.Classes())
		for i := range order {
			order[i] = i
		}
		for i := 1; i < len(order); i++ {
			for j := i; j > 0 && acc[order[j]] < acc[order[j-1]]; j-- {
				order[j], order[j-1] = order[j-1], order[j]
			}
		}
		probs := make([]float64, len(order))
		var z float64
		for rank, c := range order {
			w := 1.0
			if alpha > 0 {
				w = math.Pow(float64(rank+1), -alpha)
			}
			probs[c] = w
			z += w
		}
		for i := range probs {
			probs[i] /= z
		}
		var ra metrics.RunningAccuracy
		detected := 0
		for i := 0; i < n; i++ {
			c := sampleDist(probs, rng.Float64())
			x := r.world.Sample(c, rng)
			logits := net.LogitsOne(x)
			pred, _ := tensor.ArgMax(logits)
			ra.Observe(pred == c)
			if (detect.MSP{}).Score(logits) < 0.9 {
				detected++
			}
		}
		p := Fig5cPoint{Alpha: alpha, Accuracy: ra.Value(), DetectionRate: float64(detected) / float64(n)}
		res.Points = append(res.Points, p)
		table.AddRow(fmt.Sprintf("%.1f", alpha), pct(p.Accuracy), f3(p.DetectionRate))
	}
	table.Notes = append(table.Notes,
		"paper: detection rate 0.35→0.72 and accuracy 78.7%→43.8% from α=0 to α=2")
	res.Table = table
	return res, nil
}

// sampleDist draws an index from a discrete distribution given u∈[0,1).
func sampleDist(probs []float64, u float64) int {
	var acc float64
	for i, p := range probs {
		acc += p
		if u < acc {
			return i
		}
	}
	return len(probs) - 1
}

// RealRainResult is the §5.3 real-weather detection check.
type RealRainResult struct {
	CleanAcc, RainAcc     float64
	F1, Precision, Recall float64
	BestThreshold         float64
	// CalibratedF1 is the best F1 after temperature scaling on held-out
	// clean data — the improvement path the paper suggests ("calibrate
	// it to better handle non-drift scenarios").
	CalibratedF1   float64
	CalibratedTemp float64
	Table          *Table
}

// RealRain reproduces the detection-under-real-weather experiment: the
// RID-analogue rain differs from the synthetic rain the system usually
// sees, accuracy drops, and detection is noisier but still useful.
func RealRain(o Options) (*RealRainResult, error) {
	o = o.withDefaults()
	r := getAnimalsRig(o, nn.ArchResNet50)
	net := r.net(nn.ArchResNet50)
	rng := tensor.NewRand(o.Seed+6, 1)
	perSide := 400
	if o.Quick {
		perSide = 200
	}
	clean := tensor.New(perSide, r.world.Dim())
	rain := tensor.New(perSide, r.world.Dim())
	labels := make([]int, perSide)
	for i := 0; i < perSide; i++ {
		c := i % r.world.Classes()
		labels[i] = c
		copy(clean.Row(i), r.world.Sample(c, rng))
		copy(rain.Row(i), r.world.RealRain(r.world.Sample(c, rng), rng))
	}
	res := &RealRainResult{
		CleanAcc: net.Accuracy(clean, labels),
		RainAcc:  net.Accuracy(rain, labels),
	}
	cleanScores := mspScores(net, clean)
	rainScores := mspScores(net, rain)
	conf := detect.EvalScores(cleanScores, rainScores, 0.95)
	res.F1, res.Precision, res.Recall = conf.F1(), conf.Precision(), conf.Recall()
	var thresholds []float64
	for t := 0.5; t <= 0.999; t += 0.025 {
		thresholds = append(thresholds, t)
	}
	best := detect.BestF1(detect.Sweep(cleanScores, rainScores, thresholds))
	res.BestThreshold = best.Threshold

	// Calibrated variant: fit a softmax temperature on held-out clean
	// validation data, rescore, and sweep again.
	temp, err := nn.CalibrateTemperature(net, r.valX, r.valY)
	if err != nil {
		return nil, err
	}
	res.CalibratedTemp = temp
	calScore := func(x *tensor.Matrix) []float64 {
		logits := net.Logits(x)
		out := make([]float64, logits.Rows)
		for i := range out {
			out[i] = nn.TemperatureScaledMSP(logits.Row(i), temp)
		}
		return out
	}
	calClean := calScore(clean)
	calRain := calScore(rain)
	res.CalibratedF1 = detect.BestF1(detect.Sweep(calClean, calRain, thresholds)).F1

	table := &Table{
		ID:     "realrain",
		Title:  "Detection under real rain (RID-analogue)",
		Header: []string{"Metric", "Value"},
	}
	table.AddRow("clean accuracy", pct(res.CleanAcc))
	table.AddRow("real-rain accuracy", pct(res.RainAcc))
	table.AddRow("F1 @ 0.95", f3(res.F1))
	table.AddRow("precision @ 0.95", f3(res.Precision))
	table.AddRow("recall @ 0.95", f3(res.Recall))
	table.AddRow("best threshold", f3(res.BestThreshold))
	table.AddRow("calibrated temperature", f3(res.CalibratedTemp))
	table.AddRow("best F1 after calibration", f3(res.CalibratedF1))
	table.Notes = append(table.Notes,
		"paper: accuracy 85.2%→76.7%, peak F1 0.67 at threshold 0.95 (precision 0.55, recall 0.88)",
		"paper anticipates better detection if the model is calibrated on clean data — the last two rows test that")
	res.Table = table
	return res, nil
}
