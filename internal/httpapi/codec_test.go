package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"nazar/internal/cloud"
	"nazar/internal/driftlog"
	"nazar/internal/nn"
	"nazar/internal/tensor"
)

// newCodecEnv builds a cheap ingest-only environment: an untrained
// model is enough because the codec tests never analyze.
func newCodecEnv(t *testing.T) (*cloud.Service, *httptest.Server) {
	t.Helper()
	base := nn.NewClassifier(nn.ArchResNet18, 8, 2, tensor.NewRand(77, 1))
	svc := cloud.NewService(base, cloud.DefaultConfig())
	srv := httptest.NewServer(NewServer(svc))
	t.Cleanup(srv.Close)
	return svc, srv
}

func codecEntries(n int) ([]driftlog.Entry, [][]float64) {
	r := rand.New(rand.NewSource(42))
	base := time.Date(2026, 2, 1, 0, 0, 0, 0, time.UTC)
	entries := make([]driftlog.Entry, n)
	samples := make([][]float64, n)
	for i := range entries {
		attrs := map[string]string{driftlog.AttrDevice: fmt.Sprintf("dev_%d", i%5)}
		if i%3 != 0 {
			attrs[driftlog.AttrWeather] = []string{"snow", "fog"}[i%2]
		}
		entries[i] = driftlog.Entry{
			Time:     base.Add(time.Duration(i) * time.Minute),
			Drift:    i%2 == 0,
			SampleID: -1,
			Attrs:    attrs,
		}
		if i%4 == 0 {
			samples[i] = []float64{float64(i), r.NormFloat64()}
		}
	}
	return entries, samples
}

// TestBinaryBatchMatchesJSON is the server-state differential: the same
// batch POSTed through the JSON codec and through the binary codec must
// leave two services in identical drift-log and sample states.
func TestBinaryBatchMatchesJSON(t *testing.T) {
	entries, samples := codecEntries(37)

	jsonSvc, jsonSrv := newCodecEnv(t)
	jsonClient := NewClient(jsonSrv.URL)
	jn, err := jsonClient.IngestBatch(entries, samples)
	if err != nil {
		t.Fatalf("json ingest: %v", err)
	}

	binSvc, binSrv := newCodecEnv(t)
	binClient := NewClient(binSrv.URL)
	binClient.Codec = BinaryCodec{}
	bn, err := binClient.IngestBatch(entries, samples)
	if err != nil {
		t.Fatalf("binary ingest: %v", err)
	}

	if jn != len(entries) || bn != len(entries) {
		t.Fatalf("accepted json=%d binary=%d, want %d", jn, bn, len(entries))
	}
	if jl, bl := jsonSvc.Log().Len(), binSvc.Log().Len(); jl != bl {
		t.Fatalf("log rows json=%d binary=%d", jl, bl)
	}
	for i := 0; i < jsonSvc.Log().Len(); i++ {
		je, be := jsonSvc.Log().Entry(i), binSvc.Log().Entry(i)
		if !reflect.DeepEqual(je, be) {
			t.Fatalf("row %d:\n json %+v\n binary %+v", i, je, be)
		}
	}
	if js, bs := jsonSvc.Samples().Len(), binSvc.Samples().Len(); js != bs {
		t.Fatalf("samples json=%d binary=%d", js, bs)
	}
	jc := jsonSvc.Log().All().AttrValueCounts(nil)
	bc := binSvc.Log().All().AttrValueCounts(nil)
	if !reflect.DeepEqual(jc, bc) {
		t.Fatalf("counts diverge:\n json %v\n binary %v", jc, bc)
	}
}

// TestBinarySingleIngest covers /v1/ingest with the binary codec (a
// one-row frame) including a sample upload.
func TestBinarySingleIngest(t *testing.T) {
	svc, srv := newCodecEnv(t)
	c := NewClient(srv.URL)
	c.Codec = BinaryCodec{}
	e := driftlog.Entry{
		Time:     time.Date(2026, 2, 1, 0, 0, 0, 0, time.UTC),
		Drift:    true,
		SampleID: -1,
		Attrs:    map[string]string{driftlog.AttrDevice: "dev_0", driftlog.AttrWeather: "snow"},
	}
	if err := c.Ingest(e, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if svc.Log().Len() != 1 {
		t.Fatalf("log rows %d, want 1", svc.Log().Len())
	}
	got := svc.Log().Entry(0)
	if got.SampleID < 0 {
		t.Fatalf("sample not linked: %+v", got)
	}
	if svc.Samples().Len() != 1 {
		t.Fatalf("samples %d, want 1", svc.Samples().Len())
	}
	got.SampleID = -1
	if !reflect.DeepEqual(got, e) {
		t.Fatalf("stored %+v, want %+v", got, e)
	}
}

// TestGzipIngest covers Content-Encoding: gzip over both codecs.
func TestGzipIngest(t *testing.T) {
	entries, samples := codecEntries(25)
	for _, codec := range []Codec{JSONCodec{}, BinaryCodec{}} {
		svc, srv := newCodecEnv(t)
		c := NewClient(srv.URL)
		c.Codec = codec
		c.Compress = true
		n, err := c.IngestBatch(entries, samples)
		if err != nil {
			t.Fatalf("%s: %v", codec.ContentType(), err)
		}
		if n != len(entries) || svc.Log().Len() != len(entries) {
			t.Fatalf("%s: accepted %d, log %d, want %d", codec.ContentType(), n, svc.Log().Len(), len(entries))
		}
	}
}

// TestCodecNegotiationErrors pins the typed envelope for every
// negotiation failure mode.
func TestCodecNegotiationErrors(t *testing.T) {
	_, srv := newCodecEnv(t)
	post := func(path, contentType, accept, encoding string, body []byte) (int, string) {
		t.Helper()
		req, err := http.NewRequest("POST", srv.URL+path, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		if encoding != "" {
			req.Header.Set("Content-Encoding", encoding)
		}
		resp, err := srv.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var env errorEnvelope
		_ = json.NewDecoder(resp.Body).Decode(&env)
		code := ""
		if env.Error != nil {
			code = env.Error.Code
		}
		return resp.StatusCode, code
	}

	jsonBody := []byte(`{"entries":[{"time":"2026-02-01T00:00:00Z","attrs":{"device":"d0"}}]}`)

	if st, code := post("/v1/ingest/batch", "application/xml", "", "", jsonBody); st != 415 || code != CodeCodecUnsupported {
		t.Fatalf("unknown content type: %d %q, want 415 %q", st, code, CodeCodecUnsupported)
	}
	if st, code := post("/v1/ingest/batch", "application/;;;", "", "", jsonBody); st != 415 || code != CodeCodecUnsupported {
		t.Fatalf("malformed content type: %d %q, want 415 %q", st, code, CodeCodecUnsupported)
	}
	if st, code := post("/v1/ingest/batch", "application/json", "text/html", "", jsonBody); st != 406 || code != CodeCodecUnsupported {
		t.Fatalf("non-JSON accept: %d %q, want 406 %q", st, code, CodeCodecUnsupported)
	}
	if st, code := post("/v1/ingest/batch", "application/json", "", "br", jsonBody); st != 415 || code != CodeCodecUnsupported {
		t.Fatalf("unknown content encoding: %d %q, want 415 %q", st, code, CodeCodecUnsupported)
	}
	if st, code := post("/v1/ingest", "application/xml", "", "", jsonBody); st != 415 || code != CodeCodecUnsupported {
		t.Fatalf("single ingest unknown content type: %d %q, want 415 %q", st, code, CodeCodecUnsupported)
	}
	// Accept that admits JSON via wildcards negotiates fine.
	if st, _ := post("/v1/ingest/batch", "application/json", "application/*, text/plain", "", jsonBody); st != 200 {
		t.Fatalf("wildcard accept refused: %d", st)
	}

	// Binary decode failures are invalid_frame, not invalid_json.
	if st, code := post("/v1/ingest/batch", ContentTypeBinary, "", "", []byte("garbage")); st != 400 || code != CodeInvalidFrame {
		t.Fatalf("binary garbage: %d %q, want 400 %q", st, code, CodeInvalidFrame)
	}
	if st, code := post("/v1/ingest/batch", "application/json", "", "", []byte("garbage")); st != 400 || code != CodeInvalidJSON {
		t.Fatalf("json garbage: %d %q, want 400 %q", st, code, CodeInvalidJSON)
	}
}

// TestBinaryIngestRowLimit pins the single-ingest contract: a binary
// frame on /v1/ingest must carry exactly one row.
func TestBinaryIngestRowLimit(t *testing.T) {
	_, srv := newCodecEnv(t)
	entries, _ := codecEntries(2)
	data, err := (BinaryCodec{}).EncodeBatch(&BatchFrame{Entries: entries})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", srv.URL+"/v1/ingest", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", ContentTypeBinary)
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("two-row single ingest: %d, want 400", resp.StatusCode)
	}
}

func TestContentTypesRegistry(t *testing.T) {
	cts := ContentTypes()
	want := map[string]bool{ContentTypeJSON: true, ContentTypeBinary: true}
	found := 0
	for _, ct := range cts {
		if want[ct] {
			found++
		}
		if _, ok := CodecFor(ct); !ok {
			t.Fatalf("ContentTypes lists %q but CodecFor misses it", ct)
		}
	}
	if found != len(want) {
		t.Fatalf("registry %v missing a built-in codec", cts)
	}
}
