// Codec seam of the v1 ingest API: the media-type-negotiated
// encode/decode surface behind /v1/ingest and /v1/ingest/batch. JSON
// stays the debug default; application/x-nazar-batch (internal/wire)
// opts into the columnar binary framing. Acknowledgements and error
// envelopes are always JSON, which is why negotiation checks the Accept
// header against application/json rather than the request codec.
package httpapi

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"mime"
	"net/http"
	"sort"
	"strings"
	"sync"

	"nazar/internal/driftlog"
	"nazar/internal/wire"
)

// Media types the ingest endpoints negotiate.
const (
	ContentTypeJSON   = "application/json"
	ContentTypeBinary = wire.ContentType
)

// BatchFrame is the codec-independent decoded form of one ingest batch:
// row form (Entries) or columnar form (Columns), plus the optional
// samples. Exactly one of Entries/Columns is set after a decode; an
// encode accepts either (a codec converts as needed).
type BatchFrame struct {
	Entries []driftlog.Entry
	Columns *driftlog.ColumnarBatch
	Samples [][]float64
}

// Rows returns the batch's row count.
func (f *BatchFrame) Rows() int {
	if f.Columns != nil {
		return f.Columns.Rows()
	}
	return len(f.Entries)
}

// entries returns the row form, materializing it from columns if
// needed.
func (f *BatchFrame) entries() []driftlog.Entry {
	if f.Entries != nil || f.Columns == nil {
		return f.Entries
	}
	return f.Columns.Entries()
}

// Codec encodes and decodes ingest batches for one media type. Both
// halves of the wire use it: the server negotiates a codec per request
// via the Content-Type header, and Client/transport.Client encode
// through the same interface.
type Codec interface {
	// ContentType returns the media type the codec is registered under.
	ContentType() string
	// EncodeBatch renders a batch as a request body.
	EncodeBatch(f *BatchFrame) ([]byte, error)
	// DecodeBatch parses a request body. maxEntries, when positive,
	// bounds the accepted row count.
	DecodeBatch(r io.Reader, maxEntries int) (*BatchFrame, error)
}

// JSONCodec is the debug-default codec: the IngestBatchRequest JSON
// body, strictly decoded (unknown fields and trailing data rejected).
type JSONCodec struct{}

// ContentType implements Codec.
func (JSONCodec) ContentType() string { return ContentTypeJSON }

// EncodeBatch implements Codec.
func (JSONCodec) EncodeBatch(f *BatchFrame) ([]byte, error) {
	data, err := json.Marshal(IngestBatchRequest{Entries: f.entries(), Samples: f.Samples})
	if err != nil {
		return nil, fmt.Errorf("httpapi: marshal: %w", err)
	}
	return data, nil
}

// DecodeBatch implements Codec.
func (JSONCodec) DecodeBatch(r io.Reader, maxEntries int) (*BatchFrame, error) {
	var req IngestBatchRequest
	if err := decodeJSON(r, &req); err != nil {
		return nil, err
	}
	return &BatchFrame{Entries: req.Entries, Samples: req.Samples}, nil
}

// BinaryCodec is the columnar binary codec (internal/wire): CRC32C
// framed, dictionary-encoded, appended into the drift log through the
// columnar fast path without a per-row struct round-trip.
type BinaryCodec struct{}

// ContentType implements Codec.
func (BinaryCodec) ContentType() string { return ContentTypeBinary }

// EncodeBatch implements Codec.
func (BinaryCodec) EncodeBatch(f *BatchFrame) ([]byte, error) {
	cols := f.Columns
	if cols == nil {
		cols = driftlog.ColumnsFromEntries(f.Entries)
	}
	return wire.EncodeBatch(&wire.Batch{Columns: *cols, Samples: f.Samples})
}

// DecodeBatch implements Codec.
func (BinaryCodec) DecodeBatch(r io.Reader, maxEntries int) (*BatchFrame, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("httpapi: read frame: %w", err)
	}
	b, err := wire.DecodeBatch(data, maxEntries)
	if err != nil {
		return nil, err
	}
	return &BatchFrame{Columns: &b.Columns, Samples: b.Samples}, nil
}

// Codec registry: media type → codec. JSON and binary register at init;
// RegisterCodec admits additional codecs (it panics on a duplicate
// media type, mirroring the obs registry's duplicate-name contract).
var (
	codecMu sync.RWMutex
	codecs  = map[string]Codec{}
)

// RegisterCodec adds a codec to the media-type registry.
func RegisterCodec(c Codec) {
	codecMu.Lock()
	defer codecMu.Unlock()
	ct := c.ContentType()
	if _, dup := codecs[ct]; dup {
		panic(fmt.Sprintf("httpapi: codec %q already registered", ct))
	}
	codecs[ct] = c
}

func init() {
	RegisterCodec(JSONCodec{})
	RegisterCodec(BinaryCodec{})
}

// CodecFor resolves a media type to its registered codec.
func CodecFor(mediaType string) (Codec, bool) {
	codecMu.RLock()
	defer codecMu.RUnlock()
	c, ok := codecs[mediaType]
	return c, ok
}

// ContentTypes lists the registered media types, sorted.
func ContentTypes() []string {
	codecMu.RLock()
	defer codecMu.RUnlock()
	out := make([]string, 0, len(codecs))
	for ct := range codecs {
		out = append(out, ct)
	}
	sort.Strings(out)
	return out
}

// negotiateCodec resolves the request codec from Content-Type (empty
// means JSON) and verifies the client can accept the JSON
// acknowledgement. Failures are written as typed envelopes: 415 +
// codec_unsupported for an unknown request media type, 406 +
// codec_unsupported for an Accept header that excludes JSON.
func negotiateCodec(w http.ResponseWriter, r *http.Request) (Codec, bool) {
	mediaType := ContentTypeJSON
	if ct := r.Header.Get("Content-Type"); ct != "" {
		mt, _, err := mime.ParseMediaType(ct)
		if err != nil {
			writeError(w, http.StatusUnsupportedMediaType, CodeCodecUnsupported,
				fmt.Sprintf("httpapi: malformed content type %q: %v", ct, err))
			return nil, false
		}
		mediaType = mt
	}
	codec, ok := CodecFor(mediaType)
	if !ok {
		writeError(w, http.StatusUnsupportedMediaType, CodeCodecUnsupported,
			fmt.Sprintf("httpapi: unsupported content type %q (supported: %s)",
				mediaType, strings.Join(ContentTypes(), ", ")))
		return nil, false
	}
	if !acceptsJSON(r.Header.Get("Accept")) {
		writeError(w, http.StatusNotAcceptable, CodeCodecUnsupported,
			"httpapi: acknowledgements are application/json; Accept must allow it")
		return nil, false
	}
	return codec, true
}

// acceptsJSON reports whether the Accept header admits application/json
// responses (an absent header accepts everything).
func acceptsJSON(accept string) bool {
	if accept == "" {
		return true
	}
	for _, part := range strings.Split(accept, ",") {
		mt, _, err := mime.ParseMediaType(strings.TrimSpace(part))
		if err != nil {
			continue
		}
		if mt == "*/*" || mt == "application/*" || mt == ContentTypeJSON {
			return true
		}
	}
	return false
}

// decodeBodyCode maps a codec's decode failure to the envelope code:
// JSON decode failures keep the historical invalid_json; binary (and
// any future codec) failures are invalid_frame.
func decodeBodyCode(c Codec) string {
	if c.ContentType() == ContentTypeJSON {
		return CodeInvalidJSON
	}
	return CodeInvalidFrame
}

// requestBody resolves the request's Content-Encoding: identity bodies
// pass through, gzip bodies are transparently decompressed (bounded by
// maxBytes on the decompressed size), anything else is a 415 +
// codec_unsupported.
func requestBody(w http.ResponseWriter, r *http.Request, maxBytes int64) (io.Reader, bool) {
	switch enc := r.Header.Get("Content-Encoding"); enc {
	case "", "identity":
		return r.Body, true
	case "gzip":
		zr, err := gzip.NewReader(r.Body)
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeInvalidRequest,
				fmt.Sprintf("httpapi: bad gzip body: %v", err))
			return nil, false
		}
		return io.LimitReader(zr, maxBytes+1), true
	default:
		writeError(w, http.StatusUnsupportedMediaType, CodeCodecUnsupported,
			fmt.Sprintf("httpapi: unsupported content encoding %q", enc))
		return nil, false
	}
}
