package httpapi

import (
	"encoding/json"
	"log/slog"
	"net/http"
	"runtime/debug"
	"strings"
	"time"

	"nazar/internal/obs"
)

// Middleware wraps an http.Handler.
type Middleware func(http.Handler) http.Handler

// Chain applies middlewares so that mw[0] is the outermost wrapper:
// Chain(h, A, B) serves A(B(h)).
func Chain(h http.Handler, mw ...Middleware) http.Handler {
	for i := len(mw) - 1; i >= 0; i-- {
		h = mw[i](h)
	}
	return h
}

// statusRecorder captures the status code and response size, and — for
// plain-text 404/405 responses the ServeMux generates itself — rewrites
// them into the JSON error envelope so every error on the API surface
// honors the same contract.
type statusRecorder struct {
	http.ResponseWriter
	status      int
	bytes       int64
	intercepted bool // body suppressed; envelope already written
}

func (w *statusRecorder) WriteHeader(code int) {
	if w.status != 0 {
		return // double WriteHeader (e.g. after a panic mid-response)
	}
	w.status = code
	if (code == http.StatusNotFound || code == http.StatusMethodNotAllowed) &&
		!strings.HasPrefix(w.Header().Get("Content-Type"), "application/json") {
		w.intercepted = true
		apiCode := CodeNotFound
		if code == http.StatusMethodNotAllowed {
			apiCode = CodeMethodNotAllowed
		}
		w.Header().Set("Content-Type", "application/json")
		w.ResponseWriter.WriteHeader(code)
		_ = json.NewEncoder(w.ResponseWriter).Encode(errorEnvelope{
			Error: &APIError{Code: apiCode, Message: http.StatusText(code)},
		})
		return
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusRecorder) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.WriteHeader(http.StatusOK)
	}
	if w.intercepted {
		return len(b), nil // swallow the mux's plain-text body
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// record wraps w unless an inner middleware already did.
func record(w http.ResponseWriter) *statusRecorder {
	if rec, ok := w.(*statusRecorder); ok {
		return rec
	}
	return &statusRecorder{ResponseWriter: w}
}

// Recover converts handler panics into a 500 envelope (when the header
// is not out yet) and logs the stack. The connection is never left
// mid-response without a status.
func Recover(logger *slog.Logger) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			rec := record(w)
			defer func() {
				if v := recover(); v != nil {
					logger.Error("handler panic",
						"method", r.Method, "path", r.URL.Path,
						"panic", v, "stack", string(debug.Stack()))
					if rec.status == 0 {
						writeError(rec, http.StatusInternalServerError, CodeInternal, "internal server error")
					}
				}
			}()
			next.ServeHTTP(rec, r)
		})
	}
}

// Logging emits one structured line per request.
func Logging(logger *slog.Logger) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			rec := record(w)
			start := time.Now()
			// Deferred so the line is emitted even when the handler
			// panics (an outer Recover owns the response).
			defer func() {
				status := rec.status
				if status == 0 {
					status = http.StatusOK
				}
				logger.Info("request",
					"method", r.Method, "path", r.URL.Path,
					"status", status, "bytes", rec.bytes,
					"duration", time.Since(start))
			}()
			next.ServeHTTP(rec, r)
		})
	}
}

// HTTPMetrics is the server's request instrument set.
//
//	nazar_http_requests_total                 all requests
//	nazar_http_responses_total{class=...}     responses by status class
//	nazar_http_in_flight                      requests being served now
//	nazar_http_request_seconds                request latency (histogram)
//	nazar_http_panics_total                   recovered handler panics
type HTTPMetrics struct {
	requests *obs.Counter
	byClass  map[int]*obs.Counter // status/100 → counter
	inFlight *obs.Gauge
	latency  *obs.Histogram
	panics   *obs.Counter
}

// NewHTTPMetrics registers the request instrument set on reg.
func NewHTTPMetrics(reg *obs.Registry) *HTTPMetrics {
	m := &HTTPMetrics{
		requests: reg.Counter("nazar_http_requests_total", "HTTP requests received."),
		byClass:  make(map[int]*obs.Counter, 4),
		inFlight: reg.Gauge("nazar_http_in_flight", "HTTP requests currently being served."),
		latency:  reg.Histogram("nazar_http_request_seconds", "HTTP request latency.", obs.DefBuckets),
		panics:   reg.Counter("nazar_http_panics_total", "Recovered handler panics."),
	}
	for _, class := range []int{2, 3, 4, 5} {
		m.byClass[class] = reg.Counter("nazar_http_responses_total",
			"HTTP responses by status class.", obs.L("class", []string{"2xx", "3xx", "4xx", "5xx"}[class-2]))
	}
	return m
}

// Middleware instruments requests: total/status-class counters, an
// in-flight gauge and a latency histogram. Panics pass through to an
// outer Recover after being counted.
func (m *HTTPMetrics) Middleware() Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			rec := record(w)
			m.requests.Inc()
			m.inFlight.Inc()
			span := m.latency.Start()
			defer func() {
				span.End()
				m.inFlight.Dec()
				status := rec.status
				v := recover()
				if v != nil {
					m.panics.Inc()
					status = http.StatusInternalServerError
				}
				if status == 0 {
					status = http.StatusOK
				}
				if c := m.byClass[status/100]; c != nil {
					c.Inc()
				}
				if v != nil {
					panic(v) // re-raise for the outer Recover
				}
			}()
			next.ServeHTTP(rec, r)
		})
	}
}
