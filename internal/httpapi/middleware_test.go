package httpapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"nazar/internal/cloud"
	"nazar/internal/nn"
	"nazar/internal/obs"
	"nazar/internal/tensor"
)

// TestRecoverPanicEnvelope proves a panicking handler yields the 500
// JSON envelope with code "internal", the panic counter increments, and
// the in-flight gauge returns to zero.
func TestRecoverPanicEnvelope(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewHTTPMetrics(reg)
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	}), Recover(discardLogger()), m.Middleware())

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/panic", nil))

	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	var env errorEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil || env.Error == nil {
		t.Fatalf("body %q is not an error envelope", rec.Body.String())
	}
	if env.Error.Code != CodeInternal {
		t.Fatalf("code %q, want %q", env.Error.Code, CodeInternal)
	}
	if got := m.panics.Value(); got != 1 {
		t.Fatalf("panics counter %d, want 1", got)
	}
	if got := m.inFlight.Value(); got != 0 {
		t.Fatalf("in-flight gauge %d after request, want 0", got)
	}
	if got := m.byClass[5].Value(); got != 1 {
		t.Fatalf("5xx counter %d, want 1", got)
	}
}

// TestRecoverAfterHeadersSent proves a panic after the header is out
// does not attempt a second WriteHeader (the recorder swallows it).
func TestRecoverAfterHeadersSent(t *testing.T) {
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		panic("late boom")
	}), Recover(discardLogger()))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/late", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, want the already-sent 200", rec.Code)
	}
}

// TestInFlightGauge holds a request open and watches the gauge rise to
// one and fall back to zero.
func TestInFlightGauge(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewHTTPMetrics(reg)
	entered := make(chan struct{})
	release := make(chan struct{})
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		w.WriteHeader(http.StatusNoContent)
	}), m.Middleware())

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/slow", nil))
	}()
	<-entered
	if got := m.inFlight.Value(); got != 1 {
		t.Fatalf("in-flight gauge %d mid-request, want 1", got)
	}
	close(release)
	wg.Wait()
	if got := m.inFlight.Value(); got != 0 {
		t.Fatalf("in-flight gauge %d after request, want 0", got)
	}
	if got := m.requests.Value(); got != 1 {
		t.Fatalf("requests counter %d, want 1", got)
	}
	if got := m.latency.Count(); got != 1 {
		t.Fatalf("latency observations %d, want 1", got)
	}
}

// TestStatusRecorderPassthrough checks JSON error responses are not
// rewritten by the 404/405 interception.
func TestStatusRecorderPassthrough(t *testing.T) {
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, CodeNotFound, "custom not found")
	}), Recover(discardLogger()))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	if !strings.Contains(rec.Body.String(), "custom not found") {
		t.Fatalf("handler envelope was rewritten: %q", rec.Body.String())
	}
}

// TestServerMetricsEndpoint drives a request through the full server and
// checks /metrics exposes the request families plus the service gauges
// when server and service share a registry.
func TestServerMetricsEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	base := nn.NewClassifier(nn.ArchResNet18, 8, 2, tensor.NewRand(7, 1))
	svc := cloud.NewService(base, cloud.DefaultConfig(), cloud.WithObserver(reg))
	h := NewServer(svc, WithRegistry(reg), WithLogger(discardLogger()))

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/status", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status request failed: %d", rec.Code)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE nazar_http_requests_total counter",
		`nazar_http_responses_total{class="2xx"} 1`,
		"nazar_http_request_seconds_bucket",
		"nazar_http_in_flight 1", // the /metrics request itself
		"# TYPE nazar_ingest_entries_total counter",
		"nazar_driftlog_rows 0",
		`nazar_samples_shard_rows{shard="0"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q\n%s", want, body)
		}
	}
}
