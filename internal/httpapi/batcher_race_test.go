package httpapi

import (
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"nazar/internal/cloud"
	"nazar/internal/driftlog"
	"nazar/internal/nn"
	"nazar/internal/tensor"
	"nazar/internal/weather"
)

// TestBatcherCloseRaceStress hammers the flush-on-close protocol: many
// goroutines Add while Close runs mid-stream, with a flush interval
// short enough that timed flushes race both. Every entry whose Add
// succeeded must land on the server exactly once — a timed flush in
// flight when Close returns may neither be lost nor double-shipped.
// Run under -race; the WaitGroup handoff in Add/takeLocked is exactly
// what this test is for.
func TestBatcherCloseRaceStress(t *testing.T) {
	base := nn.NewClassifier(nn.ArchResNet18, 8, 2, tensor.NewRand(7, 1))
	svc := cloud.NewService(base, cloud.DefaultConfig())
	srv := httptest.NewServer(NewServer(svc))
	t.Cleanup(srv.Close)
	c := NewClient(srv.URL)

	const (
		rounds     = 4
		goroutines = 8
		perG       = 24
	)
	day := weather.Day(2)
	for round := 0; round < rounds; round++ {
		b := NewBatcher(c, BatcherConfig{
			MaxBatch:      4,
			FlushInterval: time.Millisecond, // timed flushes race Adds and Close
			OnError:       func(err error) { t.Errorf("timed flush failed: %v", err) },
		})
		before := svc.Log().Len()

		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < perG; i++ {
					e := driftlog.Entry{
						Time: day.Add(time.Duration(i) * time.Second),
						Attrs: map[string]string{
							driftlog.AttrDevice: fmt.Sprintf("r%d_g%d_i%d", round, g, i),
						},
					}
					if err := b.Add(e, nil); err != nil {
						t.Errorf("Add: %v", err)
					}
					if i == perG/2 && g == 0 {
						// Close mid-stream from one producer: later Adds
						// (here and on sibling goroutines) ship unbatched.
						if err := b.Close(); err != nil {
							t.Errorf("Close: %v", err)
						}
					}
				}
			}(g)
		}
		wg.Wait()
		// Close is idempotent for delivery purposes: everything already
		// shipped, so a final Close must not produce duplicates.
		if err := b.Close(); err != nil {
			t.Fatalf("final Close: %v", err)
		}

		log := svc.Log()
		got := map[string]int{}
		for i := before; i < log.Len(); i++ {
			got[log.Entry(i).Attrs[driftlog.AttrDevice]]++
		}
		want := goroutines * perG
		if len(got) != want || log.Len()-before != want {
			t.Fatalf("round %d: server has %d entries (%d unique), want %d exactly-once",
				round, log.Len()-before, len(got), want)
		}
		for k, n := range got {
			if n != 1 {
				t.Fatalf("round %d: entry %s delivered %d times, want exactly once", round, k, n)
			}
		}
	}
}
