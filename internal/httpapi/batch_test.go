package httpapi

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"nazar/internal/cloud"
	"nazar/internal/driftlog"
	"nazar/internal/nn"
	"nazar/internal/tensor"
	"nazar/internal/weather"
)

// lightEnv starts a server around an untrained model — enough for
// ingest/validation tests that never run analysis.
func lightEnv(t *testing.T) *Client {
	t.Helper()
	base := nn.NewClassifier(nn.ArchResNet18, 8, 2, tensor.NewRand(7, 1))
	svc := cloud.NewService(base, cloud.DefaultConfig())
	srv := httptest.NewServer(NewServer(svc))
	t.Cleanup(srv.Close)
	return NewClient(srv.URL)
}

func batchEntries(n int, day time.Time) []driftlog.Entry {
	entries := make([]driftlog.Entry, n)
	for i := range entries {
		entries[i] = driftlog.Entry{
			Time:  day.Add(time.Duration(i) * time.Minute),
			Drift: i%2 == 0,
			Attrs: map[string]string{
				driftlog.AttrWeather: "rain",
				driftlog.AttrDevice:  fmt.Sprintf("dev_%d", i%4),
			},
		}
	}
	return entries
}

func TestIngestBatchRoundTrip(t *testing.T) {
	c := lightEnv(t)
	day := weather.Day(3)
	entries := batchEntries(10, day)
	samples := make([][]float64, 10)
	for i := range samples {
		if i%2 == 0 {
			samples[i] = []float64{float64(i), 1, 2, 3, 4, 5, 6, 7}
		}
	}
	n, err := c.IngestBatch(entries, samples)
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("accepted %d of 10", n)
	}
	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.LogRows != 10 || st.Samples != 5 {
		t.Fatalf("status after batch %+v", st)
	}
	// Sample-less batches are accepted too.
	if _, err := c.IngestBatch(batchEntries(3, day), nil); err != nil {
		t.Fatal(err)
	}
	st, _ = c.Status()
	if st.LogRows != 13 || st.Samples != 5 {
		t.Fatalf("status after sample-less batch %+v", st)
	}
}

// TestIngestBatchMatchesSequential checks the batch path records exactly
// what per-entry ingest would: same row order, same sample links.
func TestIngestBatchMatchesSequential(t *testing.T) {
	base := nn.NewClassifier(nn.ArchResNet18, 8, 2, tensor.NewRand(7, 1))
	day := weather.Day(3)
	entries := batchEntries(20, day)
	samples := make([][]float64, 20)
	for i := range samples {
		if i%3 == 0 {
			samples[i] = []float64{float64(i)}
		}
	}

	one := cloud.NewService(base, cloud.DefaultConfig())
	for i := range entries {
		e := entries[i]
		one.Ingest(e, samples[i])
	}
	many := cloud.NewService(base, cloud.DefaultConfig())
	if err := many.IngestBatch(append([]driftlog.Entry(nil), entries...), samples); err != nil {
		t.Fatal(err)
	}

	if a, b := one.Log().Len(), many.Log().Len(); a != b {
		t.Fatalf("row counts diverge: %d vs %d", a, b)
	}
	for i := 0; i < one.Log().Len(); i++ {
		a, b := one.Log().Entry(i), many.Log().Entry(i)
		if a.SampleID != b.SampleID || a.Drift != b.Drift || !a.Time.Equal(b.Time) {
			t.Fatalf("row %d diverges: %+v vs %+v", i, a, b)
		}
	}
}

func TestIngestBatchValidation(t *testing.T) {
	c := lightEnv(t)
	day := weather.Day(3)
	noAttrs := batchEntries(2, day)
	noAttrs[1].Attrs = nil
	cases := []struct {
		name string
		req  IngestBatchRequest
	}{
		{"empty", IngestBatchRequest{}},
		{"sample count mismatch", IngestBatchRequest{
			Entries: batchEntries(2, day),
			Samples: [][]float64{{1}},
		}},
		{"entry without attrs", IngestBatchRequest{Entries: noAttrs}},
		{"oversized batch", IngestBatchRequest{Entries: batchEntries(maxBatchEntries+1, day)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := c.post(context.Background(), "/v1/ingest/batch", tc.req, nil)
			if err == nil {
				t.Fatal("expected rejection")
			}
			if !strings.Contains(err.Error(), "400") {
				t.Fatalf("expected HTTP 400, got %v", err)
			}
		})
	}
}

func TestBatcherSizeFlush(t *testing.T) {
	c := lightEnv(t)
	b := NewBatcher(c, BatcherConfig{MaxBatch: 4, FlushInterval: -1})
	day := weather.Day(3)
	for i, e := range batchEntries(10, day) {
		if err := b.Add(e, []float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// 10 adds at MaxBatch 4: two size-triggered flushes, 2 left buffered.
	if p := b.Pending(); p != 2 {
		t.Fatalf("pending %d, want 2", p)
	}
	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.LogRows != 8 {
		t.Fatalf("server saw %d rows before explicit flush", st.LogRows)
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	st, _ = c.Status()
	if st.LogRows != 10 || st.Samples != 10 {
		t.Fatalf("status after flush %+v", st)
	}
	// Flushing an empty buffer is a no-op.
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestBatcherTimedFlush(t *testing.T) {
	c := lightEnv(t)
	b := NewBatcher(c, BatcherConfig{MaxBatch: 100, FlushInterval: 30 * time.Millisecond})
	defer b.Close()
	day := weather.Day(3)
	for _, e := range batchEntries(3, day) {
		if err := b.Add(e, nil); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := c.Status()
		if err != nil {
			t.Fatal(err)
		}
		if st.LogRows == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed flush never shipped (rows=%d)", st.LogRows)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestBatcherClose(t *testing.T) {
	c := lightEnv(t)
	b := NewBatcher(c, BatcherConfig{MaxBatch: 100, FlushInterval: -1})
	day := weather.Day(3)
	for _, e := range batchEntries(5, day) {
		if err := b.Add(e, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.LogRows != 5 {
		t.Fatalf("close did not flush: %d rows", st.LogRows)
	}
	// Adds after Close ship immediately rather than buffering forever.
	if err := b.Add(batchEntries(1, day)[0], nil); err != nil {
		t.Fatal(err)
	}
	st, _ = c.Status()
	if st.LogRows != 6 {
		t.Fatalf("post-close add lost: %d rows", st.LogRows)
	}
}

func TestBatcherConcurrentAdds(t *testing.T) {
	c := lightEnv(t)
	b := NewBatcher(c, BatcherConfig{MaxBatch: 8, FlushInterval: -1})
	day := weather.Day(3)
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, e := range batchEntries(25, day) {
				if err := b.Add(e, nil); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.LogRows != 200 {
		t.Fatalf("lost entries: %d of 200", st.LogRows)
	}
}
