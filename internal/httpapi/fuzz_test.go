package httpapi

import (
	"bytes"
	"net/http/httptest"
	"sync"
	"testing"

	"nazar/internal/cloud"
	"nazar/internal/nn"
	"nazar/internal/tensor"
)

// fuzzServer builds one shared handler for the fuzz targets: the corpus
// exercises the decode/validation path, so an untrained model and an
// initially empty log are enough and keep iterations fast.
var fuzzServer = sync.OnceValue(func() *Server {
	base := nn.NewClassifier(nn.ArchResNet18, 8, 2, tensor.NewRand(7, 1))
	return NewServer(cloud.NewService(base, cloud.DefaultConfig()))
})

// FuzzIngestBatch throws arbitrary bodies at POST /v1/ingest/batch: the
// handler must never panic and must answer every malformed body with a
// 4xx, never a 5xx or a hang.
func FuzzIngestBatch(f *testing.F) {
	f.Add([]byte(`{"entries":[{"time":"2020-01-15T00:00:00Z","attrs":{"device":"android_42","weather":"snow"},"drift":true,"sample_id":-1}]}`))
	f.Add([]byte(`{"entries":[{"time":"2020-01-15T00:00:00Z","attrs":{}}],"samples":[[0.5,1.5]]}`))
	f.Add([]byte(`{"entries":[]}`))
	f.Add([]byte(`{"entries":[{"attrs":{}}],"samples":[[1],[2]]}`))
	f.Add([]byte(`{"entries":`))
	f.Add([]byte(`{"entries":[{"attrs":{}}]}{"extra":1}`))
	f.Add([]byte(`{"bogus":true}`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest("POST", "/v1/ingest/batch", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		fuzzServer().ServeHTTP(rec, req)
		if rec.Code != 200 && (rec.Code < 400 || rec.Code >= 500) {
			t.Fatalf("status %d for body %q", rec.Code, body)
		}
	})
}

// FuzzAnalyzeRequest throws arbitrary bodies at POST /v1/analyze (the
// log stays empty, so accepted requests analyze an empty window).
func FuzzAnalyzeRequest(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"from":"2020-01-15T00:00:00Z","to":"2020-01-16T00:00:00Z","now":"2020-01-16T00:00:00Z"}`))
	f.Add([]byte(`{"from":"not-a-time"}`))
	f.Add([]byte(`{"window":"1h"}`))
	f.Add([]byte(`{} {}`))
	f.Add([]byte(`[`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest("POST", "/v1/analyze", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		fuzzServer().ServeHTTP(rec, req)
		if rec.Code != 200 && (rec.Code < 400 || rec.Code >= 500) {
			t.Fatalf("status %d for body %q", rec.Code, body)
		}
	})
}
