// Package httpapi exposes the cloud service over a JSON/HTTP wire
// protocol, and provides the matching device-side client — the
// distributed deployment mode of the system (the paper's devices report
// to AWS over an API; here the "cloud" is a nazard process).
//
// Endpoints:
//
//	POST /v1/ingest        — report a drift-log entry (+ optional sample)
//	POST /v1/ingest/batch  — report many entries in one round-trip
//	POST /v1/analyze       — trigger one analysis/adaptation cycle
//	POST /v1/diagnose      — analysis only (manual mode)
//	POST /v1/adapt         — adapt operator-selected causes (manual mode)
//	GET  /v1/versions      — pull BN versions (?since=RFC3339)
//	GET  /v1/deltas        — pull delta-compressed versions
//	GET  /v1/refbn         — pull the pinned delta-reference BN snapshot
//	GET  /v1/base          — pull the full current base model snapshot
//	GET  /v1/status        — service counters
//	GET  /metrics          — Prometheus text exposition (internal/obs)
//	GET  /debug/pprof/     — runtime profiles (net/http/pprof)
//
// Every non-2xx JSON response carries the structured error envelope
// {"error":{"code":"...","message":"..."}} (see errors.go for the code
// vocabulary); the Client surfaces it as *APIError. Handlers honor
// request-context cancellation: an abandoned /v1/analyze aborts the
// in-flight window (mining, pruning and adaptation fan-out included).
package httpapi

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"nazar/internal/adapt"
	"nazar/internal/cloud"
	"nazar/internal/driftlog"
	"nazar/internal/nn"
	"nazar/internal/obs"
	"nazar/internal/rca"
)

// IngestRequest is the body of POST /v1/ingest.
type IngestRequest struct {
	Entry driftlog.Entry `json:"entry"`
	// Sample is the optional uploaded input.
	Sample []float64 `json:"sample,omitempty"`
}

// IngestBatchRequest is the body of POST /v1/ingest/batch: one round-trip
// carrying many reports. Samples, when present, must be the same length
// as Entries (nil rows mean "no sample for this entry").
type IngestBatchRequest struct {
	Entries []driftlog.Entry `json:"entries"`
	Samples [][]float64      `json:"samples,omitempty"`
}

// IngestBatchResponse acknowledges a batch.
type IngestBatchResponse struct {
	Accepted int `json:"accepted"`
}

// AnalyzeRequest is the body of POST /v1/analyze. Zero times mean an
// unbounded window; Now defaults to the server clock.
type AnalyzeRequest struct {
	From time.Time `json:"from,omitempty"`
	To   time.Time `json:"to,omitempty"`
	Now  time.Time `json:"now,omitempty"`
}

// AnalyzeResponse summarizes one cycle.
type AnalyzeResponse struct {
	Causes     []string `json:"causes"`
	VersionIDs []string `json:"version_ids"`
	LogRows    int      `json:"log_rows"`
	RCAMillis  int64    `json:"rca_ms"`
	AdaptMs    int64    `json:"adapt_ms"`
}

// VersionsResponse is the body of GET /v1/versions.
type VersionsResponse struct {
	Versions []adapt.BNVersion `json:"versions"`
}

// DiagnoseResponse is the body of POST /v1/diagnose: the full causes, so
// the operator can inspect them and submit a subset to /v1/adapt.
type DiagnoseResponse struct {
	Causes []rca.Cause `json:"causes"`
}

// AdaptRequest is the body of POST /v1/adapt (manual mode): adapt only
// the given causes over the window.
type AdaptRequest struct {
	Causes []rca.Cause `json:"causes"`
	From   time.Time   `json:"from,omitempty"`
	To     time.Time   `json:"to,omitempty"`
	Now    time.Time   `json:"now,omitempty"`
}

// DeltaVersion is one version in delta-compressed form: the quantized BN
// diff against the pinned reference (GET /v1/refbn), gob-encoded and
// base64-carried in JSON. It is ~4× smaller on the wire than the full
// snapshot.
type DeltaVersion struct {
	ID        string    `json:"id"`
	Cause     rca.Cause `json:"cause"`
	CreatedAt time.Time `json:"created_at"`
	Delta     []byte    `json:"delta"` // gob(adapt.BNDelta), base64 via JSON
}

// DeltasResponse is the body of GET /v1/deltas.
type DeltasResponse struct {
	Versions []DeltaVersion `json:"versions"`
}

// StatusResponse is the body of GET /v1/status.
type StatusResponse struct {
	LogRows  int `json:"log_rows"`
	Samples  int `json:"samples"`
	Versions int `json:"versions"`
}

// statusClientClosedRequest reports a request abandoned by the caller
// (nginx's non-standard but widely understood 499).
const statusClientClosedRequest = 499

// Server adapts a cloud.Service to HTTP. Every request flows through
// the middleware chain (panic recovery → request log → metrics) before
// reaching the mux.
type Server struct {
	svc     *cloud.Service
	mux     *http.ServeMux
	handler http.Handler
	reg     *obs.Registry
	logger  *slog.Logger
	metrics *HTTPMetrics
}

// ServerOption customizes the server.
type ServerOption func(*Server)

// WithRegistry serves /metrics from the given registry instead of a
// private one — pass the same registry to cloud.WithObserver and
// device.NewMetrics to expose the whole pipeline on one endpoint.
func WithRegistry(reg *obs.Registry) ServerOption {
	return func(s *Server) {
		if reg != nil {
			s.reg = reg
		}
	}
}

// WithLogger sets the structured logger for request lines and panic
// reports (defaults to slog.Default).
func WithLogger(logger *slog.Logger) ServerOption {
	return func(s *Server) {
		if logger != nil {
			s.logger = logger
		}
	}
}

// NewServer wraps the service.
func NewServer(svc *cloud.Service, opts ...ServerOption) *Server {
	s := &Server{svc: svc, mux: http.NewServeMux(), logger: slog.Default()}
	for _, opt := range opts {
		opt(s)
	}
	if s.reg == nil {
		s.reg = obs.NewRegistry()
	}
	s.metrics = NewHTTPMetrics(s.reg)

	s.mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	s.mux.HandleFunc("POST /v1/ingest/batch", s.handleIngestBatch)
	s.mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	s.mux.HandleFunc("POST /v1/diagnose", s.handleDiagnose)
	s.mux.HandleFunc("POST /v1/adapt", s.handleAdapt)
	s.mux.HandleFunc("GET /v1/versions", s.handleVersions)
	s.mux.HandleFunc("GET /v1/deltas", s.handleDeltas)
	s.mux.HandleFunc("GET /v1/refbn", s.handleRefBN)
	s.mux.HandleFunc("GET /v1/base", s.handleBase)
	s.mux.HandleFunc("GET /v1/status", s.handleStatus)

	s.mux.Handle("GET /metrics", s.reg.Handler())
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)

	s.handler = Chain(s.mux,
		Recover(s.logger),
		Logging(s.logger),
		s.metrics.Middleware(),
	)
	return s
}

// Registry returns the registry backing /metrics.
func (s *Server) Registry() *obs.Registry { return s.reg }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.handler.ServeHTTP(w, r) }

// maxBodyBytes bounds request bodies (an uploaded sample is a few KB; a
// manual adapt request with many causes stays far below this). Batch
// ingests carry up to maxBatchEntries samples and get a larger cap.
const (
	maxBodyBytes      = 4 << 20
	maxBatchBodyBytes = 64 << 20
	// maxBatchEntries bounds one batch so a single request cannot pin
	// unbounded memory server-side.
	maxBatchEntries = 4096
)

// writeServiceError maps a service-layer failure onto the envelope: a
// cancelled request context becomes 499/canceled, everything else is a
// 500/internal.
func writeServiceError(w http.ResponseWriter, r *http.Request, err error) {
	if r.Context().Err() != nil {
		writeError(w, statusClientClosedRequest, CodeCanceled, err.Error())
		return
	}
	writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	codec, ok := negotiateCodec(w, r)
	if !ok {
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	body, ok := requestBody(w, r, maxBodyBytes)
	if !ok {
		return
	}
	if codec.ContentType() == ContentTypeJSON {
		var req IngestRequest
		if err := decodeJSON(body, &req); err != nil {
			writeError(w, http.StatusBadRequest, CodeInvalidJSON, err.Error())
			return
		}
		if req.Entry.Attrs == nil {
			writeError(w, http.StatusBadRequest, CodeInvalidRequest, "httpapi: entry requires attrs")
			return
		}
		if err := s.svc.IngestContext(r.Context(), req.Entry, req.Sample); err != nil {
			writeServiceError(w, r, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
		return
	}
	// Binary single ingest: a one-row batch frame.
	frame, err := codec.DecodeBatch(body, 1)
	if err != nil {
		writeError(w, http.StatusBadRequest, decodeBodyCode(codec), err.Error())
		return
	}
	if frame.Rows() != 1 {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, "httpapi: ingest requires exactly one entry")
		return
	}
	if err := s.svc.IngestColumnsContext(r.Context(), frame.Columns, frame.Samples); err != nil {
		writeServiceError(w, r, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleIngestBatch(w http.ResponseWriter, r *http.Request) {
	codec, ok := negotiateCodec(w, r)
	if !ok {
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBatchBodyBytes)
	body, ok := requestBody(w, r, maxBatchBodyBytes)
	if !ok {
		return
	}
	frame, err := codec.DecodeBatch(body, maxBatchEntries)
	if err != nil {
		writeError(w, http.StatusBadRequest, decodeBodyCode(codec), err.Error())
		return
	}
	rows := frame.Rows()
	if rows == 0 {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, "httpapi: batch requires at least one entry")
		return
	}
	if rows > maxBatchEntries {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest,
			fmt.Sprintf("httpapi: batch exceeds %d entries", maxBatchEntries))
		return
	}
	if frame.Samples != nil && len(frame.Samples) != rows {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, "httpapi: samples length must match entries")
		return
	}
	for i := range frame.Entries {
		if frame.Entries[i].Attrs == nil {
			writeError(w, http.StatusBadRequest, CodeInvalidRequest,
				fmt.Sprintf("httpapi: entry %d requires attrs", i))
			return
		}
	}
	if frame.Columns != nil {
		err = s.svc.IngestColumnsContext(r.Context(), frame.Columns, frame.Samples)
	} else {
		err = s.svc.IngestBatchContext(r.Context(), frame.Entries, frame.Samples)
	}
	if err != nil {
		if r.Context().Err() != nil {
			writeError(w, statusClientClosedRequest, CodeCanceled, err.Error())
			return
		}
		// A durability failure is the server's problem, not the batch's:
		// it must surface as a 5xx so the transport retries the batch
		// (against a restarted, replayed service) instead of dropping it
		// as poison the way it treats 4xx.
		if errors.Is(err, cloud.ErrDurability) {
			writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
			return
		}
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, err.Error())
		return
	}
	writeJSON(w, IngestBatchResponse{Accepted: rows})
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var req AnalyzeRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidJSON, err.Error())
		return
	}
	now := req.Now
	if now.IsZero() {
		now = time.Now().UTC()
	}
	res, err := s.svc.RunWindowContext(r.Context(), req.From, req.To, now)
	if err != nil {
		writeServiceError(w, r, err)
		return
	}
	resp := AnalyzeResponse{
		LogRows:   res.LogRows,
		RCAMillis: res.RCADuration.Milliseconds(),
		AdaptMs:   res.AdaptDuration.Milliseconds(),
	}
	for _, c := range res.Causes {
		resp.Causes = append(resp.Causes, c.String())
	}
	for _, v := range res.Versions {
		resp.VersionIDs = append(resp.VersionIDs, v.ID)
	}
	writeJSON(w, resp)
}

func (s *Server) handleDiagnose(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var req AnalyzeRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidJSON, err.Error())
		return
	}
	now := req.Now
	if now.IsZero() {
		now = time.Now().UTC()
	}
	causes, err := s.svc.DiagnoseContext(r.Context(), req.From, req.To, now)
	if err != nil {
		writeServiceError(w, r, err)
		return
	}
	writeJSON(w, DiagnoseResponse{Causes: causes})
}

func (s *Server) handleAdapt(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var req AdaptRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidJSON, err.Error())
		return
	}
	if len(req.Causes) == 0 {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, "httpapi: adapt requires at least one cause")
		return
	}
	now := req.Now
	if now.IsZero() {
		now = time.Now().UTC()
	}
	versions, err := s.svc.AdaptCausesContext(r.Context(), req.Causes, req.From, req.To, now)
	if err != nil {
		writeServiceError(w, r, err)
		return
	}
	writeJSON(w, VersionsResponse{Versions: versions})
}

// sinceParam parses the optional ?since=RFC3339 query parameter.
func sinceParam(w http.ResponseWriter, r *http.Request) (time.Time, bool) {
	raw := r.URL.Query().Get("since")
	if raw == "" {
		return time.Time{}, true
	}
	t, err := time.Parse(time.RFC3339, raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, fmt.Sprintf("httpapi: bad since: %v", err))
		return time.Time{}, false
	}
	return t, true
}

func (s *Server) handleVersions(w http.ResponseWriter, r *http.Request) {
	since, ok := sinceParam(w, r)
	if !ok {
		return
	}
	writeJSON(w, VersionsResponse{Versions: s.svc.VersionsSince(since)})
}

func (s *Server) handleDeltas(w http.ResponseWriter, r *http.Request) {
	since, ok := sinceParam(w, r)
	if !ok {
		return
	}
	ref := s.svc.ReferenceBN()
	var resp DeltasResponse
	for _, v := range s.svc.VersionsSince(since) {
		delta, err := adapt.DiffBN(ref, v.Snapshot)
		if err != nil {
			writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
			return
		}
		data, err := delta.Encode()
		if err != nil {
			writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
			return
		}
		resp.Versions = append(resp.Versions, DeltaVersion{
			ID: v.ID, Cause: v.Cause, CreatedAt: v.CreatedAt, Delta: data,
		})
	}
	writeJSON(w, resp)
}

func (s *Server) handleRefBN(w http.ResponseWriter, r *http.Request) {
	data, err := s.svc.ReferenceBN().Encode()
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(data)
}

func (s *Server) handleBase(w http.ResponseWriter, r *http.Request) {
	snap := nn.CaptureNet(s.svc.Base())
	data, err := snap.Encode()
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(data)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, StatusResponse{
		LogRows:  s.svc.Log().Len(),
		Samples:  s.svc.Samples().Len(),
		Versions: len(s.svc.VersionsSince(time.Time{})),
	})
}

func decodeJSON(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("httpapi: decode: %w", err)
	}
	// Exactly one JSON value per body: trailing garbage is an error, not
	// silently ignored.
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return fmt.Errorf("httpapi: decode: trailing data after JSON value")
	}
	return nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
	}
}

// Client is the device-side API client. Every method has a Context
// variant; the plain forms use context.Background(). Non-2xx responses
// surface as *APIError (match with errors.As).
type Client struct {
	BaseURL string
	HTTP    *http.Client
	// Codec selects the ingest wire encoding (nil means JSON). Only
	// /v1/ingest and /v1/ingest/batch negotiate; control-plane calls
	// stay JSON.
	Codec Codec
	// Compress gzips ingest request bodies when true.
	Compress bool
}

// NewClient returns a client for the given server URL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL, HTTP: &http.Client{Timeout: 30 * time.Second}}
}

// ingestCodec returns the effective ingest codec (nil Codec means
// JSON).
func (c *Client) ingestCodec() Codec {
	if c.Codec != nil {
		return c.Codec
	}
	return JSONCodec{}
}

// Ingest reports one entry (+ optional sample).
func (c *Client) Ingest(entry driftlog.Entry, sample []float64) error {
	return c.IngestContext(context.Background(), entry, sample)
}

// IngestContext is Ingest with request cancellation.
func (c *Client) IngestContext(ctx context.Context, entry driftlog.Entry, sample []float64) error {
	codec := c.ingestCodec()
	if codec.ContentType() == ContentTypeJSON {
		data, err := json.Marshal(IngestRequest{Entry: entry, Sample: sample})
		if err != nil {
			return fmt.Errorf("httpapi: marshal: %w", err)
		}
		return c.postRaw(ctx, "/v1/ingest", ContentTypeJSON, data, nil)
	}
	// Non-JSON codecs carry the single ingest as a one-row batch frame.
	var samples [][]float64
	if sample != nil {
		samples = [][]float64{sample}
	}
	data, err := codec.EncodeBatch(&BatchFrame{Entries: []driftlog.Entry{entry}, Samples: samples})
	if err != nil {
		return err
	}
	return c.postRaw(ctx, "/v1/ingest", codec.ContentType(), data, nil)
}

// IngestBatch reports many entries in one round-trip. samples may be nil,
// or the same length as entries with nil rows for sample-less entries.
func (c *Client) IngestBatch(entries []driftlog.Entry, samples [][]float64) (int, error) {
	return c.IngestBatchContext(context.Background(), entries, samples)
}

// IngestBatchContext is IngestBatch with request cancellation. The body
// is rendered by the configured Codec (JSON by default) and gzipped
// when Compress is set; the acknowledgement is always JSON.
func (c *Client) IngestBatchContext(ctx context.Context, entries []driftlog.Entry, samples [][]float64) (int, error) {
	codec := c.ingestCodec()
	data, err := codec.EncodeBatch(&BatchFrame{Entries: entries, Samples: samples})
	if err != nil {
		return 0, err
	}
	var resp IngestBatchResponse
	err = c.postRaw(ctx, "/v1/ingest/batch", codec.ContentType(), data, &resp)
	return resp.Accepted, err
}

// Diagnose runs analysis only (manual mode) and returns the full causes.
func (c *Client) Diagnose(req AnalyzeRequest) ([]rca.Cause, error) {
	return c.DiagnoseContext(context.Background(), req)
}

// DiagnoseContext is Diagnose with request cancellation.
func (c *Client) DiagnoseContext(ctx context.Context, req AnalyzeRequest) ([]rca.Cause, error) {
	var resp DiagnoseResponse
	err := c.post(ctx, "/v1/diagnose", req, &resp)
	return resp.Causes, err
}

// Adapt requests adaptation of the selected causes (manual mode).
func (c *Client) Adapt(req AdaptRequest) ([]adapt.BNVersion, error) {
	return c.AdaptContext(context.Background(), req)
}

// AdaptContext is Adapt with request cancellation: cancelling aborts the
// server-side adaptation fan-out, not just the HTTP wait.
func (c *Client) AdaptContext(ctx context.Context, req AdaptRequest) ([]adapt.BNVersion, error) {
	var resp VersionsResponse
	err := c.post(ctx, "/v1/adapt", req, &resp)
	return resp.Versions, err
}

// Analyze triggers an analysis/adaptation cycle.
func (c *Client) Analyze(req AnalyzeRequest) (AnalyzeResponse, error) {
	return c.AnalyzeContext(context.Background(), req)
}

// AnalyzeContext is Analyze with request cancellation: cancelling aborts
// the in-flight window server-side.
func (c *Client) AnalyzeContext(ctx context.Context, req AnalyzeRequest) (AnalyzeResponse, error) {
	var resp AnalyzeResponse
	err := c.post(ctx, "/v1/analyze", req, &resp)
	return resp, err
}

// Versions pulls versions created at or after since.
func (c *Client) Versions(since time.Time) ([]adapt.BNVersion, error) {
	return c.VersionsContext(context.Background(), since)
}

// VersionsContext is Versions with request cancellation.
func (c *Client) VersionsContext(ctx context.Context, since time.Time) ([]adapt.BNVersion, error) {
	var vr VersionsResponse
	if err := c.getJSON(ctx, "/v1/versions"+sinceQuery(since), &vr); err != nil {
		return nil, err
	}
	return vr.Versions, nil
}

// RefBN downloads the pinned delta-reference BN snapshot.
func (c *Client) RefBN() (*nn.BNSnapshot, error) {
	return c.RefBNContext(context.Background())
}

// RefBNContext is RefBN with request cancellation.
func (c *Client) RefBNContext(ctx context.Context) (*nn.BNSnapshot, error) {
	data, err := c.getRaw(ctx, "/v1/refbn")
	if err != nil {
		return nil, err
	}
	return nn.DecodeBNSnapshot(data)
}

// Deltas pulls delta-compressed versions created at or after since and
// reconstructs them against the reference snapshot (checksum-verified).
func (c *Client) Deltas(since time.Time, ref *nn.BNSnapshot) ([]adapt.BNVersion, error) {
	return c.DeltasContext(context.Background(), since, ref)
}

// DeltasContext is Deltas with request cancellation.
func (c *Client) DeltasContext(ctx context.Context, since time.Time, ref *nn.BNSnapshot) ([]adapt.BNVersion, error) {
	var dr DeltasResponse
	if err := c.getJSON(ctx, "/v1/deltas"+sinceQuery(since), &dr); err != nil {
		return nil, err
	}
	out := make([]adapt.BNVersion, 0, len(dr.Versions))
	for _, dv := range dr.Versions {
		delta, err := adapt.DecodeBNDelta(dv.Delta)
		if err != nil {
			return nil, fmt.Errorf("httpapi: version %s: %w", dv.ID, err)
		}
		snap, err := delta.Apply(ref)
		if err != nil {
			return nil, fmt.Errorf("httpapi: version %s: %w", dv.ID, err)
		}
		out = append(out, adapt.BNVersion{
			ID: dv.ID, Cause: dv.Cause, Snapshot: snap, CreatedAt: dv.CreatedAt,
		})
	}
	return out, nil
}

// Base downloads the current base model snapshot.
func (c *Client) Base() (*nn.NetSnapshot, error) {
	return c.BaseContext(context.Background())
}

// BaseContext is Base with request cancellation.
func (c *Client) BaseContext(ctx context.Context) (*nn.NetSnapshot, error) {
	data, err := c.getRaw(ctx, "/v1/base")
	if err != nil {
		return nil, err
	}
	return nn.DecodeNetSnapshot(data)
}

// Status fetches service counters.
func (c *Client) Status() (StatusResponse, error) {
	return c.StatusContext(context.Background())
}

// StatusContext is Status with request cancellation.
func (c *Client) StatusContext(ctx context.Context) (StatusResponse, error) {
	var sr StatusResponse
	err := c.getJSON(ctx, "/v1/status", &sr)
	return sr, err
}

// sinceQuery renders the optional ?since= parameter.
func sinceQuery(since time.Time) string {
	if since.IsZero() {
		return ""
	}
	return "?since=" + since.UTC().Format(time.RFC3339)
}

func (c *Client) post(ctx context.Context, path string, body, out any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("httpapi: marshal: %w", err)
	}
	return c.postRaw(ctx, path, ContentTypeJSON, data, out)
}

// postRaw posts a pre-encoded body under the given content type,
// gzipping it when the client's Compress flag is set (ingest endpoints
// only reach here; the server decompresses by Content-Encoding).
func (c *Client) postRaw(ctx context.Context, path, contentType string, data []byte, out any) error {
	encoding := ""
	// Only the ingest endpoints negotiate Content-Encoding; compressing
	// a control-plane body would be rejected server-side.
	if c.Compress && strings.HasPrefix(path, "/v1/ingest") {
		var buf bytes.Buffer
		zw := gzip.NewWriter(&buf)
		if _, err := zw.Write(data); err != nil {
			return fmt.Errorf("httpapi: gzip %s: %w", path, err)
		}
		if err := zw.Close(); err != nil {
			return fmt.Errorf("httpapi: gzip %s: %w", path, err)
		}
		data = buf.Bytes()
		encoding = "gzip"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("httpapi: post %s: %w", path, err)
	}
	req.Header.Set("Content-Type", contentType)
	if encoding != "" {
		req.Header.Set("Content-Encoding", encoding)
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return fmt.Errorf("httpapi: post %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return apiError(resp)
	}
	if out != nil {
		return decodeJSON(resp.Body, out)
	}
	return nil
}

// getJSON fetches path and decodes a JSON response into out.
func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	resp, err := c.get(ctx, path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	return decodeJSON(resp.Body, out)
}

// getRaw fetches path and returns the raw (octet-stream) body.
func (c *Client) getRaw(ctx context.Context, path string) ([]byte, error) {
	resp, err := c.get(ctx, path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("httpapi: get %s: %w", path, err)
	}
	return data, nil
}

func (c *Client) get(ctx context.Context, path string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return nil, fmt.Errorf("httpapi: get %s: %w", path, err)
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, fmt.Errorf("httpapi: get %s: %w", path, err)
	}
	return resp, nil
}

// apiError decodes a non-2xx response into an *APIError, carrying the
// Retry-After backpressure hint when the server sent one.
func apiError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	apiErr := decodeAPIError(resp.StatusCode, bytes.TrimSpace(body))
	apiErr.RetryAfter = parseRetryAfter(resp.Header.Get("Retry-After"), time.Now())
	return apiErr
}
