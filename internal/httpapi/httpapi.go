// Package httpapi exposes the cloud service over a JSON/HTTP wire
// protocol, and provides the matching device-side client — the
// distributed deployment mode of the system (the paper's devices report
// to AWS over an API; here the "cloud" is a nazard process).
//
// Endpoints:
//
//	POST /v1/ingest        — report a drift-log entry (+ optional sample)
//	POST /v1/ingest/batch  — report many entries in one round-trip
//	POST /v1/analyze       — trigger one analysis/adaptation cycle
//	GET  /v1/versions      — pull BN versions (?since=RFC3339)
//	GET  /v1/base          — pull the full current base model snapshot
//	GET  /v1/status        — service counters
package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"nazar/internal/adapt"
	"nazar/internal/cloud"
	"nazar/internal/driftlog"
	"nazar/internal/nn"
	"nazar/internal/rca"
)

// IngestRequest is the body of POST /v1/ingest.
type IngestRequest struct {
	Entry driftlog.Entry `json:"entry"`
	// Sample is the optional uploaded input.
	Sample []float64 `json:"sample,omitempty"`
}

// IngestBatchRequest is the body of POST /v1/ingest/batch: one round-trip
// carrying many reports. Samples, when present, must be the same length
// as Entries (nil rows mean "no sample for this entry").
type IngestBatchRequest struct {
	Entries []driftlog.Entry `json:"entries"`
	Samples [][]float64      `json:"samples,omitempty"`
}

// IngestBatchResponse acknowledges a batch.
type IngestBatchResponse struct {
	Accepted int `json:"accepted"`
}

// AnalyzeRequest is the body of POST /v1/analyze. Zero times mean an
// unbounded window; Now defaults to the server clock.
type AnalyzeRequest struct {
	From time.Time `json:"from,omitempty"`
	To   time.Time `json:"to,omitempty"`
	Now  time.Time `json:"now,omitempty"`
}

// AnalyzeResponse summarizes one cycle.
type AnalyzeResponse struct {
	Causes     []string `json:"causes"`
	VersionIDs []string `json:"version_ids"`
	LogRows    int      `json:"log_rows"`
	RCAMillis  int64    `json:"rca_ms"`
	AdaptMs    int64    `json:"adapt_ms"`
}

// VersionsResponse is the body of GET /v1/versions.
type VersionsResponse struct {
	Versions []adapt.BNVersion `json:"versions"`
}

// DiagnoseResponse is the body of POST /v1/diagnose: the full causes, so
// the operator can inspect them and submit a subset to /v1/adapt.
type DiagnoseResponse struct {
	Causes []rca.Cause `json:"causes"`
}

// AdaptRequest is the body of POST /v1/adapt (manual mode): adapt only
// the given causes over the window.
type AdaptRequest struct {
	Causes []rca.Cause `json:"causes"`
	From   time.Time   `json:"from,omitempty"`
	To     time.Time   `json:"to,omitempty"`
	Now    time.Time   `json:"now,omitempty"`
}

// DeltaVersion is one version in delta-compressed form: the quantized BN
// diff against the pinned reference (GET /v1/refbn), gob-encoded and
// base64-carried in JSON. It is ~4× smaller on the wire than the full
// snapshot.
type DeltaVersion struct {
	ID        string    `json:"id"`
	Cause     rca.Cause `json:"cause"`
	CreatedAt time.Time `json:"created_at"`
	Delta     []byte    `json:"delta"` // gob(adapt.BNDelta), base64 via JSON
}

// DeltasResponse is the body of GET /v1/deltas.
type DeltasResponse struct {
	Versions []DeltaVersion `json:"versions"`
}

// StatusResponse is the body of GET /v1/status.
type StatusResponse struct {
	LogRows  int `json:"log_rows"`
	Samples  int `json:"samples"`
	Versions int `json:"versions"`
}

// Server adapts a cloud.Service to HTTP.
type Server struct {
	svc *cloud.Service
	mux *http.ServeMux
}

// NewServer wraps the service.
func NewServer(svc *cloud.Service) *Server {
	s := &Server{svc: svc, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	s.mux.HandleFunc("POST /v1/ingest/batch", s.handleIngestBatch)
	s.mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	s.mux.HandleFunc("POST /v1/diagnose", s.handleDiagnose)
	s.mux.HandleFunc("POST /v1/adapt", s.handleAdapt)
	s.mux.HandleFunc("GET /v1/versions", s.handleVersions)
	s.mux.HandleFunc("GET /v1/deltas", s.handleDeltas)
	s.mux.HandleFunc("GET /v1/refbn", s.handleRefBN)
	s.mux.HandleFunc("GET /v1/base", s.handleBase)
	s.mux.HandleFunc("GET /v1/status", s.handleStatus)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// maxBodyBytes bounds request bodies (an uploaded sample is a few KB; a
// manual adapt request with many causes stays far below this). Batch
// ingests carry up to maxBatchEntries samples and get a larger cap.
const (
	maxBodyBytes      = 4 << 20
	maxBatchBodyBytes = 64 << 20
	// maxBatchEntries bounds one batch so a single request cannot pin
	// unbounded memory server-side.
	maxBatchEntries = 4096
)

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var req IngestRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if req.Entry.Attrs == nil {
		http.Error(w, "httpapi: entry requires attrs", http.StatusBadRequest)
		return
	}
	s.svc.Ingest(req.Entry, req.Sample)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleIngestBatch(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBatchBodyBytes)
	var req IngestBatchRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Entries) == 0 {
		http.Error(w, "httpapi: batch requires at least one entry", http.StatusBadRequest)
		return
	}
	if len(req.Entries) > maxBatchEntries {
		http.Error(w, fmt.Sprintf("httpapi: batch exceeds %d entries", maxBatchEntries), http.StatusBadRequest)
		return
	}
	if req.Samples != nil && len(req.Samples) != len(req.Entries) {
		http.Error(w, "httpapi: samples length must match entries", http.StatusBadRequest)
		return
	}
	for i := range req.Entries {
		if req.Entries[i].Attrs == nil {
			http.Error(w, fmt.Sprintf("httpapi: entry %d requires attrs", i), http.StatusBadRequest)
			return
		}
	}
	if err := s.svc.IngestBatch(req.Entries, req.Samples); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, IngestBatchResponse{Accepted: len(req.Entries)})
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var req AnalyzeRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	now := req.Now
	if now.IsZero() {
		now = time.Now().UTC()
	}
	res, err := s.svc.RunWindow(req.From, req.To, now)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	resp := AnalyzeResponse{
		LogRows:   res.LogRows,
		RCAMillis: res.RCADuration.Milliseconds(),
		AdaptMs:   res.AdaptDuration.Milliseconds(),
	}
	for _, c := range res.Causes {
		resp.Causes = append(resp.Causes, c.String())
	}
	for _, v := range res.Versions {
		resp.VersionIDs = append(resp.VersionIDs, v.ID)
	}
	writeJSON(w, resp)
}

func (s *Server) handleDiagnose(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var req AnalyzeRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	now := req.Now
	if now.IsZero() {
		now = time.Now().UTC()
	}
	causes, err := s.svc.Diagnose(req.From, req.To, now)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, DiagnoseResponse{Causes: causes})
}

func (s *Server) handleAdapt(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var req AdaptRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Causes) == 0 {
		http.Error(w, "httpapi: adapt requires at least one cause", http.StatusBadRequest)
		return
	}
	now := req.Now
	if now.IsZero() {
		now = time.Now().UTC()
	}
	versions, err := s.svc.AdaptCauses(req.Causes, req.From, req.To, now)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, VersionsResponse{Versions: versions})
}

func (s *Server) handleVersions(w http.ResponseWriter, r *http.Request) {
	var since time.Time
	if raw := r.URL.Query().Get("since"); raw != "" {
		t, err := time.Parse(time.RFC3339, raw)
		if err != nil {
			http.Error(w, fmt.Sprintf("httpapi: bad since: %v", err), http.StatusBadRequest)
			return
		}
		since = t
	}
	writeJSON(w, VersionsResponse{Versions: s.svc.VersionsSince(since)})
}

func (s *Server) handleDeltas(w http.ResponseWriter, r *http.Request) {
	var since time.Time
	if raw := r.URL.Query().Get("since"); raw != "" {
		t, err := time.Parse(time.RFC3339, raw)
		if err != nil {
			http.Error(w, fmt.Sprintf("httpapi: bad since: %v", err), http.StatusBadRequest)
			return
		}
		since = t
	}
	ref := s.svc.ReferenceBN()
	var resp DeltasResponse
	for _, v := range s.svc.VersionsSince(since) {
		delta, err := adapt.DiffBN(ref, v.Snapshot)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		data, err := delta.Encode()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		resp.Versions = append(resp.Versions, DeltaVersion{
			ID: v.ID, Cause: v.Cause, CreatedAt: v.CreatedAt, Delta: data,
		})
	}
	writeJSON(w, resp)
}

func (s *Server) handleRefBN(w http.ResponseWriter, r *http.Request) {
	data, err := s.svc.ReferenceBN().Encode()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(data)
}

func (s *Server) handleBase(w http.ResponseWriter, r *http.Request) {
	snap := nn.CaptureNet(s.svc.Base())
	data, err := snap.Encode()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(data)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, StatusResponse{
		LogRows:  s.svc.Log().Len(),
		Samples:  s.svc.Samples().Len(),
		Versions: len(s.svc.VersionsSince(time.Time{})),
	})
}

func decodeJSON(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("httpapi: decode: %w", err)
	}
	// Exactly one JSON value per body: trailing garbage is an error, not
	// silently ignored.
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return fmt.Errorf("httpapi: decode: trailing data after JSON value")
	}
	return nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Client is the device-side API client.
type Client struct {
	BaseURL string
	HTTP    *http.Client
}

// NewClient returns a client for the given server URL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL, HTTP: &http.Client{Timeout: 30 * time.Second}}
}

// Ingest reports one entry (+ optional sample).
func (c *Client) Ingest(entry driftlog.Entry, sample []float64) error {
	return c.post("/v1/ingest", IngestRequest{Entry: entry, Sample: sample}, nil)
}

// IngestBatch reports many entries in one round-trip. samples may be nil,
// or the same length as entries with nil rows for sample-less entries.
func (c *Client) IngestBatch(entries []driftlog.Entry, samples [][]float64) (int, error) {
	var resp IngestBatchResponse
	err := c.post("/v1/ingest/batch", IngestBatchRequest{Entries: entries, Samples: samples}, &resp)
	return resp.Accepted, err
}

// Diagnose runs analysis only (manual mode) and returns the full causes.
func (c *Client) Diagnose(req AnalyzeRequest) ([]rca.Cause, error) {
	var resp DiagnoseResponse
	err := c.post("/v1/diagnose", req, &resp)
	return resp.Causes, err
}

// Adapt requests adaptation of the selected causes (manual mode).
func (c *Client) Adapt(req AdaptRequest) ([]adapt.BNVersion, error) {
	var resp VersionsResponse
	err := c.post("/v1/adapt", req, &resp)
	return resp.Versions, err
}

// Analyze triggers an analysis/adaptation cycle.
func (c *Client) Analyze(req AnalyzeRequest) (AnalyzeResponse, error) {
	var resp AnalyzeResponse
	err := c.post("/v1/analyze", req, &resp)
	return resp, err
}

// Versions pulls versions created at or after since.
func (c *Client) Versions(since time.Time) ([]adapt.BNVersion, error) {
	url := c.BaseURL + "/v1/versions"
	if !since.IsZero() {
		url += "?since=" + since.UTC().Format(time.RFC3339)
	}
	resp, err := c.HTTP.Get(url)
	if err != nil {
		return nil, fmt.Errorf("httpapi: versions: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, httpError("versions", resp)
	}
	var vr VersionsResponse
	if err := decodeJSON(resp.Body, &vr); err != nil {
		return nil, err
	}
	return vr.Versions, nil
}

// RefBN downloads the pinned delta-reference BN snapshot.
func (c *Client) RefBN() (*nn.BNSnapshot, error) {
	resp, err := c.HTTP.Get(c.BaseURL + "/v1/refbn")
	if err != nil {
		return nil, fmt.Errorf("httpapi: refbn: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, httpError("refbn", resp)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("httpapi: refbn body: %w", err)
	}
	return nn.DecodeBNSnapshot(data)
}

// Deltas pulls delta-compressed versions created at or after since and
// reconstructs them against the reference snapshot (checksum-verified).
func (c *Client) Deltas(since time.Time, ref *nn.BNSnapshot) ([]adapt.BNVersion, error) {
	url := c.BaseURL + "/v1/deltas"
	if !since.IsZero() {
		url += "?since=" + since.UTC().Format(time.RFC3339)
	}
	resp, err := c.HTTP.Get(url)
	if err != nil {
		return nil, fmt.Errorf("httpapi: deltas: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, httpError("deltas", resp)
	}
	var dr DeltasResponse
	if err := decodeJSON(resp.Body, &dr); err != nil {
		return nil, err
	}
	out := make([]adapt.BNVersion, 0, len(dr.Versions))
	for _, dv := range dr.Versions {
		delta, err := adapt.DecodeBNDelta(dv.Delta)
		if err != nil {
			return nil, fmt.Errorf("httpapi: version %s: %w", dv.ID, err)
		}
		snap, err := delta.Apply(ref)
		if err != nil {
			return nil, fmt.Errorf("httpapi: version %s: %w", dv.ID, err)
		}
		out = append(out, adapt.BNVersion{
			ID: dv.ID, Cause: dv.Cause, Snapshot: snap, CreatedAt: dv.CreatedAt,
		})
	}
	return out, nil
}

// Base downloads the current base model snapshot.
func (c *Client) Base() (*nn.NetSnapshot, error) {
	resp, err := c.HTTP.Get(c.BaseURL + "/v1/base")
	if err != nil {
		return nil, fmt.Errorf("httpapi: base: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, httpError("base", resp)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("httpapi: base body: %w", err)
	}
	return nn.DecodeNetSnapshot(data)
}

// Status fetches service counters.
func (c *Client) Status() (StatusResponse, error) {
	var sr StatusResponse
	resp, err := c.HTTP.Get(c.BaseURL + "/v1/status")
	if err != nil {
		return sr, fmt.Errorf("httpapi: status: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return sr, httpError("status", resp)
	}
	err = decodeJSON(resp.Body, &sr)
	return sr, err
}

func (c *Client) post(path string, body, out any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("httpapi: marshal: %w", err)
	}
	resp, err := c.HTTP.Post(c.BaseURL+path, "application/json", bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("httpapi: post %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return httpError(path, resp)
	}
	if out != nil {
		return decodeJSON(resp.Body, out)
	}
	return nil
}

func httpError(op string, resp *http.Response) error {
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	return fmt.Errorf("httpapi: %s: HTTP %d: %s", op, resp.StatusCode, bytes.TrimSpace(msg))
}
