package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// Error codes carried in the error envelope. Codes are the stable,
// machine-readable half of the contract: messages may change wording,
// codes may not.
const (
	// CodeInvalidJSON marks a body that failed strict decoding
	// (malformed JSON, unknown fields, trailing data).
	CodeInvalidJSON = "invalid_json"
	// CodeInvalidRequest marks a well-formed body or query that fails
	// domain validation (missing attrs, empty batch, bad since=...).
	CodeInvalidRequest = "invalid_request"
	// CodeNotFound marks an unknown route.
	CodeNotFound = "not_found"
	// CodeMethodNotAllowed marks a known route hit with the wrong verb.
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeCanceled marks a request abandoned by the caller (the handler
	// observed context cancellation mid-flight).
	CodeCanceled = "canceled"
	// CodeInternal marks a server-side failure, including recovered
	// handler panics.
	CodeInternal = "internal"
	// CodeCodecUnsupported marks a failed content negotiation: an
	// unknown Content-Type or Content-Encoding (415) or an Accept
	// header that excludes the JSON acknowledgement (406).
	CodeCodecUnsupported = "codec_unsupported"
	// CodeInvalidFrame marks a body in a negotiated non-JSON codec that
	// failed decoding (torn frame, CRC mismatch, bad dictionary index).
	CodeInvalidFrame = "invalid_frame"
)

// APIError is the typed form of a server error envelope. The client
// returns *APIError for every non-2xx response, so callers can branch
// on the code with errors.As:
//
//	var apiErr *httpapi.APIError
//	if errors.As(err, &apiErr) && apiErr.Code == httpapi.CodeInvalidRequest { ... }
type APIError struct {
	// Status is the HTTP status code of the response.
	Status int `json:"-"`
	// Code is the stable machine-readable error code.
	Code string `json:"code"`
	// Message is the human-readable description.
	Message string `json:"message"`
	// RetryAfter is the parsed Retry-After response header (0 when the
	// server sent none): the server's own backpressure hint, which
	// retrying clients must honor over their local backoff schedule.
	RetryAfter time.Duration `json:"-"`
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("httpapi: HTTP %d [%s]: %s", e.Status, e.Code, e.Message)
}

// errorEnvelope is the wire form of every non-2xx JSON response:
//
//	{"error":{"code":"invalid_request","message":"..."}}
type errorEnvelope struct {
	Error *APIError `json:"error"`
}

// writeError emits the error envelope. It must be the only error path
// in handlers — http.Error would break the JSON contract.
func writeError(w http.ResponseWriter, status int, code, message string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Content-Type-Options", "nosniff")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorEnvelope{Error: &APIError{Code: code, Message: message}})
}

// decodeAPIError reconstructs an *APIError from a non-2xx response
// body. Non-envelope bodies (a proxy's HTML, a truncated response)
// degrade to CodeInternal with the raw body as the message.
func decodeAPIError(status int, body []byte) *APIError {
	var env errorEnvelope
	if err := json.Unmarshal(body, &env); err == nil && env.Error != nil && env.Error.Code != "" {
		env.Error.Status = status
		return env.Error
	}
	msg := string(body)
	if msg == "" {
		msg = http.StatusText(status)
	}
	return &APIError{Status: status, Code: CodeInternal, Message: msg}
}

// parseRetryAfter parses a Retry-After header value: delta-seconds or
// an HTTP-date (resolved against now). Unparseable or past values are
// 0 — "no hint".
func parseRetryAfter(v string, now time.Time) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := t.Sub(now); d > 0 {
			return d
		}
	}
	return 0
}
