package httpapi

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"nazar/internal/adapt"
	"nazar/internal/cloud"
	"nazar/internal/driftlog"
	"nazar/internal/imagesim"
	"nazar/internal/nn"
	"nazar/internal/rca"
	"nazar/internal/tensor"
	"nazar/internal/weather"
)

// newEnv starts an httptest server around a service with a small trained
// model, returning the client and the world.
func newEnv(t *testing.T) (*Client, *imagesim.World, *nn.Network) {
	t.Helper()
	world := imagesim.NewWorld(imagesim.DefaultConfig(8, 1010))
	rng := tensor.NewRand(1010, 1)
	base := nn.NewClassifier(nn.ArchResNet18, world.Dim(), 8, rng)
	n := 320
	x := tensor.New(n, world.Dim())
	y := make([]int, n)
	for i := 0; i < n; i++ {
		y[i] = i % 8
		copy(x.Row(i), world.Sample(y[i], rng))
	}
	nn.Fit(base, x, y, nn.TrainConfig{Epochs: 12, BatchSize: 32, Rng: rng})
	cfg := cloud.DefaultConfig()
	cfg.MinSamplesPerCause = 8
	cfg.AdaptCfg.Epochs = 1
	cfg.AdaptCfg.MinSteps = 5
	svc := cloud.NewService(base, cfg)
	srv := httptest.NewServer(NewServer(svc))
	t.Cleanup(srv.Close)
	return NewClient(srv.URL), world, base
}

func TestStatusEmpty(t *testing.T) {
	c, _, _ := newEnv(t)
	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.LogRows != 0 || st.Samples != 0 || st.Versions != 0 {
		t.Fatalf("status %+v", st)
	}
}

func TestIngestAnalyzePullRoundTrip(t *testing.T) {
	c, world, base := newEnv(t)
	rng := tensor.NewRand(2020, 1)
	day := weather.Day(5)
	// Report fog-drifted and clean inferences.
	for i := 0; i < 200; i++ {
		class := i % 8
		x := world.Sample(class, rng)
		cond := "clear-day"
		if i%2 == 0 {
			x = world.Corrupt(x, imagesim.Fog, imagesim.DefaultSeverity, rng)
			cond = "fog"
		}
		msp := tensor.Max(tensor.Softmax(base.LogitsOne(x)))
		entry := driftlog.Entry{
			Time:  day.Add(time.Duration(i) * time.Minute),
			Drift: msp < 0.95,
			Attrs: map[string]string{
				driftlog.AttrWeather:  cond,
				driftlog.AttrLocation: []string{"A", "B", "C"}[i%3],
				driftlog.AttrDevice:   "dev0",
			},
		}
		if err := c.Ingest(entry, x); err != nil {
			t.Fatal(err)
		}
	}
	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.LogRows != 200 || st.Samples != 200 {
		t.Fatalf("status after ingest %+v", st)
	}

	resp, err := c.Analyze(AnalyzeRequest{Now: day.AddDate(0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if resp.LogRows != 200 {
		t.Fatalf("analyze scanned %d rows", resp.LogRows)
	}
	foundFog := false
	for _, cause := range resp.Causes {
		if strings.Contains(cause, "fog") {
			foundFog = true
		}
	}
	if !foundFog {
		t.Fatalf("fog not found in %v", resp.Causes)
	}
	if len(resp.VersionIDs) == 0 {
		t.Fatal("no versions produced")
	}

	// Pull versions and install on a fresh device pool.
	versions, err := c.Versions(time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if len(versions) != len(resp.VersionIDs) {
		t.Fatalf("pulled %d versions, expected %d", len(versions), len(resp.VersionIDs))
	}
	var fogV *adapt.BNVersion
	for i := range versions {
		if !versions[i].IsClean() {
			fogV = &versions[i]
		}
	}
	if fogV == nil {
		t.Fatal("no adapted version pulled")
	}
	net, err := adapt.Materialize(base, *fogV)
	if err != nil {
		t.Fatal(err)
	}
	// The wire round-trip must preserve adaptation quality.
	testN := 120
	fx := tensor.New(testN, world.Dim())
	labels := make([]int, testN)
	for i := 0; i < testN; i++ {
		labels[i] = i % 8
		copy(fx.Row(i), world.Corrupt(world.Sample(labels[i], rng), imagesim.Fog, imagesim.DefaultSeverity, rng))
	}
	if before, after := base.Accuracy(fx, labels), net.Accuracy(fx, labels); after <= before-0.02 {
		t.Fatalf("pulled version regressed: %v -> %v", before, after)
	}

	// Versions filtered by since: everything is newer than a past time,
	// nothing newer than a future one.
	future, err := c.Versions(day.AddDate(1, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(future) != 0 {
		t.Fatalf("future filter returned %d versions", len(future))
	}
}

func TestBaseDownload(t *testing.T) {
	c, world, base := newEnv(t)
	snap, err := c.Base()
	if err != nil {
		t.Fatal(err)
	}
	fresh := nn.NewClassifier(nn.ArchResNet18, world.Dim(), 8, tensor.NewRand(9, 9))
	if err := snap.ApplyTo(fresh); err != nil {
		t.Fatal(err)
	}
	x := tensor.New(4, world.Dim())
	x.RandNormal(tensor.NewRand(3, 3), 0, 1)
	a, b := base.Logits(x), fresh.Logits(x)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("downloaded base diverges")
		}
	}
}

func TestIngestValidation(t *testing.T) {
	c, _, _ := newEnv(t)
	err := c.Ingest(driftlog.Entry{Time: time.Now()}, nil)
	if err == nil {
		t.Fatal("entry without attrs must be rejected")
	}
	if !strings.Contains(err.Error(), "400") {
		t.Fatalf("expected HTTP 400, got %v", err)
	}
}

func TestBadSinceParam(t *testing.T) {
	c, _, _ := newEnv(t)
	resp, err := c.HTTP.Get(c.BaseURL + "/v1/versions?since=bogus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	c, _, _ := newEnv(t)
	resp, err := c.HTTP.Get(c.BaseURL + "/v1/ingest")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestManualModeOverHTTP(t *testing.T) {
	c, world, base := newEnv(t)
	rng := tensor.NewRand(3030, 1)
	day := weather.Day(8)
	for i := 0; i < 200; i++ {
		class := i % 8
		x := world.Sample(class, rng)
		cond := "clear-day"
		if i%2 == 0 {
			x = world.Corrupt(x, imagesim.Snow, imagesim.DefaultSeverity, rng)
			cond = "snow"
		}
		msp := tensor.Max(tensor.Softmax(base.LogitsOne(x)))
		err := c.Ingest(driftlog.Entry{
			Time:  day.Add(time.Duration(i) * time.Minute),
			Drift: msp < 0.95,
			Attrs: map[string]string{
				driftlog.AttrWeather:  cond,
				driftlog.AttrLocation: []string{"A", "B", "C"}[i%3],
				driftlog.AttrDevice:   "dev0",
			},
		}, x)
		if err != nil {
			t.Fatal(err)
		}
	}
	// 1. Diagnose only: causes returned, nothing deployed.
	causes, err := c.Diagnose(AnalyzeRequest{Now: day.AddDate(0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if len(causes) == 0 {
		t.Fatal("no causes diagnosed")
	}
	vs, err := c.Versions(time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatal("diagnose must not deploy versions")
	}
	// 2. Operator selects the snow cause and adapts it.
	var selected []rca.Cause
	for _, cause := range causes {
		if cause.Matches(map[string]string{driftlog.AttrWeather: "snow"}) {
			selected = append(selected, cause)
		}
	}
	if len(selected) == 0 {
		t.Fatalf("no snow cause among %v", causes)
	}
	versions, err := c.Adapt(AdaptRequest{Causes: selected, Now: day.AddDate(0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if len(versions) != len(selected) {
		t.Fatalf("%d versions for %d causes", len(versions), len(selected))
	}
	// 3. The cause's metrics (possibly infinite risk ratios) survive the
	// JSON round trip and the version materializes.
	if _, err := adapt.Materialize(base, versions[0]); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptRequiresCauses(t *testing.T) {
	c, _, _ := newEnv(t)
	if _, err := c.Adapt(AdaptRequest{}); err == nil {
		t.Fatal("empty cause list must be rejected")
	}
}

func TestOversizedBodyRejected(t *testing.T) {
	c, _, _ := newEnv(t)
	huge := bytes.Repeat([]byte("x"), maxBodyBytes+1024)
	resp, err := c.HTTP.Post(c.BaseURL+"/v1/ingest", "application/json", bytes.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 400 && resp.StatusCode != 413 {
		t.Fatalf("status %d for oversized body", resp.StatusCode)
	}
}

func TestConcurrentIngestOverHTTP(t *testing.T) {
	c, world, _ := newEnv(t)
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	day := weather.Day(3)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := tensor.NewRand(uint64(w), 99)
			for i := 0; i < 25; i++ {
				x := world.Sample(i%8, rng)
				err := c.Ingest(driftlog.Entry{
					Time:  day.Add(time.Duration(i) * time.Minute),
					Drift: i%2 == 0,
					Attrs: map[string]string{
						driftlog.AttrWeather: "rain",
						driftlog.AttrDevice:  fmt.Sprintf("dev_%d", w),
					},
				}, x)
				if err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.LogRows != 200 || st.Samples != 200 {
		t.Fatalf("status %+v after concurrent ingest", st)
	}
}

func TestDeltaPullRoundTrip(t *testing.T) {
	c, world, base := newEnv(t)
	rng := tensor.NewRand(4040, 1)
	day := weather.Day(6)
	for i := 0; i < 200; i++ {
		class := i % 8
		x := world.Sample(class, rng)
		cond := "clear-day"
		if i%2 == 0 {
			x = world.Corrupt(x, imagesim.Fog, imagesim.DefaultSeverity, rng)
			cond = "fog"
		}
		msp := tensor.Max(tensor.Softmax(base.LogitsOne(x)))
		if err := c.Ingest(driftlog.Entry{
			Time:  day.Add(time.Duration(i) * time.Minute),
			Drift: msp < 0.95,
			Attrs: map[string]string{
				driftlog.AttrWeather:  cond,
				driftlog.AttrLocation: []string{"A", "B", "C"}[i%3],
				driftlog.AttrDevice:   "dev0",
			},
		}, x); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Analyze(AnalyzeRequest{Now: day.AddDate(0, 0, 1)}); err != nil {
		t.Fatal(err)
	}

	ref, err := c.RefBN()
	if err != nil {
		t.Fatal(err)
	}
	full, err := c.Versions(time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	compact, err := c.Deltas(time.Time{}, ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(compact) != len(full) {
		t.Fatalf("delta pull returned %d of %d versions", len(compact), len(full))
	}
	// The reconstructed versions must behave like the full ones.
	x := tensor.New(32, world.Dim())
	x.RandNormal(tensor.NewRand(5, 5), 0, 1.5)
	for i := range full {
		a, err := adapt.Materialize(base, full[i])
		if err != nil {
			t.Fatal(err)
		}
		b, err := adapt.Materialize(base, compact[i])
		if err != nil {
			t.Fatal(err)
		}
		la, lb := a.Logits(x), b.Logits(x)
		for j := range la.Data {
			diff := la.Data[j] - lb.Data[j]
			if diff < -0.05 || diff > 0.05 {
				t.Fatalf("version %s logit %d: |%v| too large", full[i].ID, j, diff)
			}
		}
	}
}
