package httpapi

import (
	"encoding/json"
	"errors"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"nazar/internal/cloud"
	"nazar/internal/driftlog"
	"nazar/internal/nn"
	"nazar/internal/tensor"
)

// discardLogger silences request lines in tests.
func discardLogger() *slog.Logger { return slog.New(slog.DiscardHandler) }

// TestHandlerErrorPaths table-tests the failure modes of every endpoint:
// malformed JSON, unknown fields, trailing garbage, wrong method,
// domain validation, and bad query parameters. Every failure must carry
// the structured envelope {"error":{"code":...,"message":...}} with the
// right stable code — including the 404/405 responses the mux itself
// generates.
func TestHandlerErrorPaths(t *testing.T) {
	base := nn.NewClassifier(nn.ArchResNet18, 8, 2, tensor.NewRand(7, 1))
	svc := cloud.NewService(base, cloud.DefaultConfig())
	h := NewServer(svc, WithLogger(discardLogger()))

	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		wantCode   string
		wantSubstr string
	}{
		{"ingest malformed json", "POST", "/v1/ingest", `{"entry":`, 400, CodeInvalidJSON, "decode"},
		{"ingest unknown field", "POST", "/v1/ingest", `{"entry":{"time":"2020-01-01T00:00:00Z","attrs":{}},"bogus":1}`, 400, CodeInvalidJSON, "bogus"},
		{"ingest trailing data", "POST", "/v1/ingest", `{"entry":{"time":"2020-01-01T00:00:00Z","attrs":{}}}{"extra":true}`, 400, CodeInvalidJSON, "trailing"},
		{"ingest missing attrs", "POST", "/v1/ingest", `{"entry":{"time":"2020-01-01T00:00:00Z"}}`, 400, CodeInvalidRequest, "attrs"},
		{"ingest wrong method", "GET", "/v1/ingest", "", 405, CodeMethodNotAllowed, ""},

		{"batch malformed json", "POST", "/v1/ingest/batch", `[{]`, 400, CodeInvalidJSON, "decode"},
		{"batch unknown field", "POST", "/v1/ingest/batch", `{"rows":[]}`, 400, CodeInvalidJSON, "rows"},
		{"batch trailing data", "POST", "/v1/ingest/batch", `{"entries":[{"time":"2020-01-01T00:00:00Z","attrs":{}}]} trailing`, 400, CodeInvalidJSON, "trailing"},
		{"batch empty", "POST", "/v1/ingest/batch", `{"entries":[]}`, 400, CodeInvalidRequest, "at least one"},
		{"batch sample mismatch", "POST", "/v1/ingest/batch", `{"entries":[{"time":"2020-01-01T00:00:00Z","attrs":{}}],"samples":[[1],[2]]}`, 400, CodeInvalidRequest, "match"},
		{"batch entry missing attrs", "POST", "/v1/ingest/batch", `{"entries":[{"time":"2020-01-01T00:00:00Z"}]}`, 400, CodeInvalidRequest, "attrs"},
		{"batch wrong method", "GET", "/v1/ingest/batch", "", 405, CodeMethodNotAllowed, ""},

		{"analyze malformed json", "POST", "/v1/analyze", `{`, 400, CodeInvalidJSON, "decode"},
		{"analyze unknown field", "POST", "/v1/analyze", `{"window":"1h"}`, 400, CodeInvalidJSON, "window"},
		{"analyze trailing data", "POST", "/v1/analyze", `{} {}`, 400, CodeInvalidJSON, "trailing"},
		{"analyze wrong method", "GET", "/v1/analyze", "", 405, CodeMethodNotAllowed, ""},

		{"diagnose malformed json", "POST", "/v1/diagnose", `nope`, 400, CodeInvalidJSON, "decode"},
		{"diagnose unknown field", "POST", "/v1/diagnose", `{"mode":"full"}`, 400, CodeInvalidJSON, "mode"},
		{"diagnose wrong method", "GET", "/v1/diagnose", "", 405, CodeMethodNotAllowed, ""},

		{"adapt malformed json", "POST", "/v1/adapt", `{"causes":}`, 400, CodeInvalidJSON, "decode"},
		{"adapt unknown field", "POST", "/v1/adapt", `{"causes":[],"force":true}`, 400, CodeInvalidJSON, "force"},
		{"adapt no causes", "POST", "/v1/adapt", `{"causes":[]}`, 400, CodeInvalidRequest, "at least one cause"},
		{"adapt wrong method", "GET", "/v1/adapt", "", 405, CodeMethodNotAllowed, ""},

		{"versions bad since", "GET", "/v1/versions?since=yesterday", "", 400, CodeInvalidRequest, "bad since"},
		{"versions wrong method", "POST", "/v1/versions", "", 405, CodeMethodNotAllowed, ""},
		{"deltas bad since", "GET", "/v1/deltas?since=bogus", "", 400, CodeInvalidRequest, "bad since"},
		{"deltas wrong method", "POST", "/v1/deltas", "", 405, CodeMethodNotAllowed, ""},
		{"refbn wrong method", "POST", "/v1/refbn", "", 405, CodeMethodNotAllowed, ""},
		{"base wrong method", "POST", "/v1/base", "", 405, CodeMethodNotAllowed, ""},
		{"status wrong method", "POST", "/v1/status", "", 405, CodeMethodNotAllowed, ""},
		{"metrics wrong method", "POST", "/metrics", "", 405, CodeMethodNotAllowed, ""},
		{"unknown route", "GET", "/v1/nothing", "", 404, CodeNotFound, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var req *http.Request
			if tc.body != "" {
				req = httptest.NewRequest(tc.method, tc.path, strings.NewReader(tc.body))
				req.Header.Set("Content-Type", "application/json")
			} else {
				req = httptest.NewRequest(tc.method, tc.path, nil)
			}
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != tc.wantStatus {
				t.Fatalf("status %d, want %d (body %q)", rec.Code, tc.wantStatus, rec.Body.String())
			}
			if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
				t.Fatalf("Content-Type %q, want application/json (body %q)", ct, rec.Body.String())
			}
			var env errorEnvelope
			if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil || env.Error == nil {
				t.Fatalf("body %q is not an error envelope (err %v)", rec.Body.String(), err)
			}
			if env.Error.Code != tc.wantCode {
				t.Fatalf("code %q, want %q (message %q)", env.Error.Code, tc.wantCode, env.Error.Message)
			}
			if tc.wantSubstr != "" && !strings.Contains(env.Error.Message, tc.wantSubstr) {
				t.Fatalf("message %q missing %q", env.Error.Message, tc.wantSubstr)
			}
		})
	}
}

// TestClientDecodesAPIError proves the client surfaces server failures
// as *APIError reachable through errors.As, with the stable code intact.
func TestClientDecodesAPIError(t *testing.T) {
	base := nn.NewClassifier(nn.ArchResNet18, 8, 2, tensor.NewRand(7, 1))
	svc := cloud.NewService(base, cloud.DefaultConfig())
	srv := httptest.NewServer(NewServer(svc, WithLogger(discardLogger())))
	defer srv.Close()

	c := NewClient(srv.URL)
	_, err := c.Adapt(AdaptRequest{})
	if err == nil {
		t.Fatal("expected rejection")
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("error %v (%T) is not an *APIError", err, err)
	}
	if apiErr.Status != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", apiErr.Status)
	}
	if apiErr.Code != CodeInvalidRequest {
		t.Fatalf("code %q, want %q", apiErr.Code, CodeInvalidRequest)
	}
	if !strings.Contains(apiErr.Message, "at least one cause") {
		t.Fatalf("message %q missing cause hint", apiErr.Message)
	}
}

// TestDecodeAPIErrorFallback covers non-envelope bodies (proxies, raw
// http.Error output) degrading to CodeInternal.
func TestDecodeAPIErrorFallback(t *testing.T) {
	e := decodeAPIError(502, []byte("<html>bad gateway</html>"))
	if e.Code != CodeInternal || e.Status != 502 {
		t.Fatalf("got %+v", e)
	}
	if !strings.Contains(e.Message, "bad gateway") {
		t.Fatalf("message %q lost the body", e.Message)
	}
	e = decodeAPIError(503, nil)
	if e.Message == "" {
		t.Fatal("empty body should fall back to the status text")
	}
}

// TestDecodeJSONStrictness unit-tests the hardened decoder directly.
func TestDecodeJSONStrictness(t *testing.T) {
	type msg struct {
		A int `json:"a"`
	}
	cases := []struct {
		name  string
		input string
		ok    bool
	}{
		{"valid", `{"a":1}`, true},
		{"valid with whitespace", "  {\"a\":1}\n\t ", true},
		{"unknown field", `{"a":1,"b":2}`, false},
		{"trailing value", `{"a":1}{"a":2}`, false},
		{"trailing token", `{"a":1} x`, false},
		{"empty", ``, false},
		{"wrong type", `{"a":"one"}`, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var m msg
			err := decodeJSON(strings.NewReader(tc.input), &m)
			if tc.ok && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

// TestParseRetryAfter pins both header forms the RFC allows —
// delta-seconds and HTTP-date — plus every degenerate input, all of
// which must degrade to 0 ("no hint") rather than a bogus delay.
func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 3, 1, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		name string
		v    string
		want time.Duration
	}{
		{"empty", "", 0},
		{"integer seconds", "7", 7 * time.Second},
		{"zero seconds", "0", 0},
		{"negative seconds", "-3", 0},
		{"large seconds", "86400", 24 * time.Hour},
		{"http date future", now.Add(90 * time.Second).Format(http.TimeFormat), 90 * time.Second},
		{"http date past", now.Add(-time.Minute).Format(http.TimeFormat), 0},
		{"http date now", now.Format(http.TimeFormat), 0},
		{"rfc850 date", now.Add(30 * time.Second).Format("Monday, 02-Jan-06 15:04:05 MST"), 30 * time.Second},
		{"ansi c date", now.Add(45 * time.Second).Format(time.ANSIC), 45 * time.Second},
		{"garbage", "soon", 0},
		{"float seconds", "1.5", 0},
		{"seconds with spaces", " 5 ", 0},
		{"overflow-ish", "999999999999999999999999", 0},
		{"mixed", "5s", 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := parseRetryAfter(tc.v, now); got != tc.want {
				t.Fatalf("parseRetryAfter(%q) = %v, want %v", tc.v, got, tc.want)
			}
		})
	}
}

// TestIngestBatchDurabilityFailureIs500: a WAL failure during batch
// ingest must surface as 500/internal — a transient server-side fault
// the transport will retry — never as a 400, which resilient clients
// treat as a poison batch and drop.
func TestIngestBatchDurabilityFailureIs500(t *testing.T) {
	base := nn.NewClassifier(nn.ArchResNet18, 8, 2, tensor.NewRand(7, 1))
	svc := cloud.NewService(base, cloud.DefaultConfig(),
		cloud.WithWAL(t.TempDir(), driftlog.WALOptions{}))
	if err := svc.WALErr(); err != nil {
		t.Fatalf("wal open: %v", err)
	}
	h := NewServer(svc, WithLogger(discardLogger()))
	svc.WAL().Sever() // the cloud "dies": durability is gone

	body := `{"entries":[{"time":"2026-01-01T00:00:00Z","attrs":{"weather":"snow"}}]}`
	req := httptest.NewRequest("POST", "/v1/ingest/batch", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500 (body %q)", rec.Code, rec.Body.String())
	}
	var env errorEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil || env.Error == nil {
		t.Fatalf("body %q is not an error envelope", rec.Body.String())
	}
	if env.Error.Code != CodeInternal {
		t.Fatalf("code %q, want %q", env.Error.Code, CodeInternal)
	}
	if svc.Log().Len() != 0 {
		t.Fatalf("refused batch landed in the log: %d rows", svc.Log().Len())
	}
}
