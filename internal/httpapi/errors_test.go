package httpapi

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"nazar/internal/cloud"
	"nazar/internal/nn"
	"nazar/internal/tensor"
)

// TestHandlerErrorPaths table-tests the failure modes of every endpoint:
// malformed JSON, unknown fields, trailing garbage, wrong method,
// domain validation, and bad query parameters.
func TestHandlerErrorPaths(t *testing.T) {
	base := nn.NewClassifier(nn.ArchResNet18, 8, 2, tensor.NewRand(7, 1))
	svc := cloud.NewService(base, cloud.DefaultConfig())
	h := NewServer(svc)

	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		wantSubstr string
	}{
		{"ingest malformed json", "POST", "/v1/ingest", `{"entry":`, 400, "decode"},
		{"ingest unknown field", "POST", "/v1/ingest", `{"entry":{"time":"2020-01-01T00:00:00Z","attrs":{}},"bogus":1}`, 400, "bogus"},
		{"ingest trailing data", "POST", "/v1/ingest", `{"entry":{"time":"2020-01-01T00:00:00Z","attrs":{}}}{"extra":true}`, 400, "trailing"},
		{"ingest missing attrs", "POST", "/v1/ingest", `{"entry":{"time":"2020-01-01T00:00:00Z"}}`, 400, "attrs"},
		{"ingest wrong method", "GET", "/v1/ingest", "", 405, ""},

		{"batch malformed json", "POST", "/v1/ingest/batch", `[{]`, 400, "decode"},
		{"batch unknown field", "POST", "/v1/ingest/batch", `{"rows":[]}`, 400, "rows"},
		{"batch trailing data", "POST", "/v1/ingest/batch", `{"entries":[{"time":"2020-01-01T00:00:00Z","attrs":{}}]} trailing`, 400, "trailing"},
		{"batch empty", "POST", "/v1/ingest/batch", `{"entries":[]}`, 400, "at least one"},
		{"batch sample mismatch", "POST", "/v1/ingest/batch", `{"entries":[{"time":"2020-01-01T00:00:00Z","attrs":{}}],"samples":[[1],[2]]}`, 400, "match"},
		{"batch entry missing attrs", "POST", "/v1/ingest/batch", `{"entries":[{"time":"2020-01-01T00:00:00Z"}]}`, 400, "attrs"},
		{"batch wrong method", "GET", "/v1/ingest/batch", "", 405, ""},

		{"analyze malformed json", "POST", "/v1/analyze", `{`, 400, "decode"},
		{"analyze unknown field", "POST", "/v1/analyze", `{"window":"1h"}`, 400, "window"},
		{"analyze trailing data", "POST", "/v1/analyze", `{} {}`, 400, "trailing"},
		{"analyze wrong method", "GET", "/v1/analyze", "", 405, ""},

		{"diagnose malformed json", "POST", "/v1/diagnose", `nope`, 400, "decode"},
		{"diagnose unknown field", "POST", "/v1/diagnose", `{"mode":"full"}`, 400, "mode"},
		{"diagnose wrong method", "GET", "/v1/diagnose", "", 405, ""},

		{"adapt malformed json", "POST", "/v1/adapt", `{"causes":}`, 400, "decode"},
		{"adapt unknown field", "POST", "/v1/adapt", `{"causes":[],"force":true}`, 400, "force"},
		{"adapt no causes", "POST", "/v1/adapt", `{"causes":[]}`, 400, "at least one cause"},
		{"adapt wrong method", "GET", "/v1/adapt", "", 405, ""},

		{"versions bad since", "GET", "/v1/versions?since=yesterday", "", 400, "bad since"},
		{"versions wrong method", "POST", "/v1/versions", "", 405, ""},
		{"deltas bad since", "GET", "/v1/deltas?since=bogus", "", 400, "bad since"},
		{"deltas wrong method", "POST", "/v1/deltas", "", 405, ""},
		{"refbn wrong method", "POST", "/v1/refbn", "", 405, ""},
		{"base wrong method", "POST", "/v1/base", "", 405, ""},
		{"status wrong method", "POST", "/v1/status", "", 405, ""},
		{"unknown route", "GET", "/v1/nothing", "", 404, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var req *http.Request
			if tc.body != "" {
				req = httptest.NewRequest(tc.method, tc.path, strings.NewReader(tc.body))
				req.Header.Set("Content-Type", "application/json")
			} else {
				req = httptest.NewRequest(tc.method, tc.path, nil)
			}
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != tc.wantStatus {
				t.Fatalf("status %d, want %d (body %q)", rec.Code, tc.wantStatus, rec.Body.String())
			}
			if tc.wantSubstr != "" && !strings.Contains(rec.Body.String(), tc.wantSubstr) {
				t.Fatalf("body %q missing %q", rec.Body.String(), tc.wantSubstr)
			}
		})
	}
}

// TestDecodeJSONStrictness unit-tests the hardened decoder directly.
func TestDecodeJSONStrictness(t *testing.T) {
	type msg struct {
		A int `json:"a"`
	}
	cases := []struct {
		name  string
		input string
		ok    bool
	}{
		{"valid", `{"a":1}`, true},
		{"valid with whitespace", "  {\"a\":1}\n\t ", true},
		{"unknown field", `{"a":1,"b":2}`, false},
		{"trailing value", `{"a":1}{"a":2}`, false},
		{"trailing token", `{"a":1} x`, false},
		{"empty", ``, false},
		{"wrong type", `{"a":"one"}`, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var m msg
			err := decodeJSON(strings.NewReader(tc.input), &m)
			if tc.ok && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("expected error")
			}
		})
	}
}
