package httpapi

import (
	"sync"
	"time"

	"nazar/internal/driftlog"
)

// BatcherConfig tunes client-side ingest batching.
type BatcherConfig struct {
	// MaxBatch flushes when this many entries are buffered (default 256,
	// capped at the server's per-batch limit).
	MaxBatch int
	// FlushInterval flushes any buffered entries this long after the
	// first one arrived (default 2s; ≤0 disables timed flushes, leaving
	// only size-triggered and explicit ones).
	FlushInterval time.Duration
	// OnError, if set, receives flush failures; the failed batch is
	// dropped (the drift log is best-effort telemetry, as in the paper).
	OnError func(error)
}

// Batcher accumulates ingest reports client-side and ships them via
// POST /v1/ingest/batch, so a device making many predictions per second
// pays one HTTP round-trip per batch instead of per entry. Safe for
// concurrent use.
type Batcher struct {
	client *Client
	cfg    BatcherConfig

	mu      sync.Mutex
	entries []driftlog.Entry
	samples [][]float64
	// anySample tracks whether the current buffer carries any sample, so
	// all-nil sample batches ship without the samples array.
	anySample bool
	timer     *time.Timer
	closed    bool

	// flushWG tracks in-flight timed flushes so Close can wait for them.
	flushWG sync.WaitGroup
}

// NewBatcher wraps the client with an auto-flushing ingest buffer.
func NewBatcher(client *Client, cfg BatcherConfig) *Batcher {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 256
	}
	if cfg.MaxBatch > maxBatchEntries {
		cfg.MaxBatch = maxBatchEntries
	}
	if cfg.FlushInterval == 0 {
		cfg.FlushInterval = 2 * time.Second
	}
	return &Batcher{client: client, cfg: cfg}
}

// Add buffers one report, flushing if the buffer reached MaxBatch.
func (b *Batcher) Add(entry driftlog.Entry, sample []float64) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return b.ship([]driftlog.Entry{entry}, [][]float64{sample}, sample != nil)
	}
	b.entries = append(b.entries, entry)
	b.samples = append(b.samples, sample)
	if sample != nil {
		b.anySample = true
	}
	if len(b.entries) >= b.cfg.MaxBatch {
		entries, samples, anySample := b.takeLocked()
		b.mu.Unlock()
		return b.ship(entries, samples, anySample)
	}
	if b.timer == nil && b.cfg.FlushInterval > 0 {
		// The WaitGroup must be incremented before the timer is armed
		// (not inside timedFlush): otherwise Close can observe a zero
		// counter between the timer firing and timedFlush starting, and
		// return while a flush is still in flight.
		b.flushWG.Add(1)
		b.timer = time.AfterFunc(b.cfg.FlushInterval, b.timedFlush)
	}
	b.mu.Unlock()
	return nil
}

// Flush synchronously ships any buffered entries.
func (b *Batcher) Flush() error {
	b.mu.Lock()
	entries, samples, anySample := b.takeLocked()
	b.mu.Unlock()
	return b.ship(entries, samples, anySample)
}

// Close flushes remaining entries and stops the flush timer. Subsequent
// Adds ship immediately (unbatched).
func (b *Batcher) Close() error {
	b.mu.Lock()
	b.closed = true
	entries, samples, anySample := b.takeLocked()
	b.mu.Unlock()
	err := b.ship(entries, samples, anySample)
	b.flushWG.Wait()
	return err
}

// Pending returns the number of buffered entries.
func (b *Batcher) Pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.entries)
}

// takeLocked detaches the current buffer (caller holds b.mu) and stops
// the pending timer. When Stop reports the timer had not fired yet,
// timedFlush will never run for it, so its WaitGroup slot is released
// here; when it had already fired, timedFlush owns the slot and will
// release it itself (and find an empty buffer if we won the race).
func (b *Batcher) takeLocked() ([]driftlog.Entry, [][]float64, bool) {
	entries, samples, anySample := b.entries, b.samples, b.anySample
	b.entries, b.samples, b.anySample = nil, nil, false
	if b.timer != nil {
		if b.timer.Stop() {
			b.flushWG.Done()
		}
		b.timer = nil
	}
	return entries, samples, anySample
}

// ship posts a detached buffer (no lock held).
func (b *Batcher) ship(entries []driftlog.Entry, samples [][]float64, anySample bool) error {
	if len(entries) == 0 {
		return nil
	}
	if !anySample {
		samples = nil
	}
	_, err := b.client.IngestBatch(entries, samples)
	return err
}

// timedFlush runs on the timer goroutine; errors go to OnError. Its
// WaitGroup slot was taken when the timer was armed, so a concurrent
// Close blocks until this flush (including the ship) completes.
func (b *Batcher) timedFlush() {
	defer b.flushWG.Done()
	b.mu.Lock()
	entries, samples, anySample := b.takeLocked()
	b.mu.Unlock()
	if err := b.ship(entries, samples, anySample); err != nil && b.cfg.OnError != nil {
		b.cfg.OnError(err)
	}
}
