package driftlog

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"
)

const goldenLogPath = "testdata/golden_v1.driftlog"

// goldenLogEntries is the fixed content of the golden file, written by
// the pre-sharding store implementation. The on-disk format is a
// compatibility contract: internal refactors (sharding, batching) must
// keep both this file readable and freshly written files identical in
// logical content.
func goldenLogEntries() []Entry {
	day := time.Date(2020, 1, 15, 0, 0, 0, 0, time.UTC)
	mk := func(mins int, device, weather, location string, drift bool, sampleID int64) Entry {
		return Entry{
			Time:  day.Add(time.Duration(mins) * time.Minute),
			Drift: drift,
			Attrs: map[string]string{
				AttrDevice:   device,
				AttrWeather:  weather,
				AttrLocation: location,
			},
			SampleID: sampleID,
		}
	}
	return []Entry{
		mk(362, "android_42", "clear-day", "Helsinki", false, -1),
		mk(363, "android_21", "clear-day", "New York", false, -1),
		mk(365, "android_21", "clear-day", "New York", true, 7),
		mk(483, "android_21", "snow", "New York", true, 8),
		mk(665, "android_42", "snow", "Helsinki", true, -1),
	}
}

func sameEntry(a, b Entry) bool {
	if !a.Time.Equal(b.Time) || a.Drift != b.Drift || a.SampleID != b.SampleID {
		return false
	}
	if len(a.Attrs) != len(b.Attrs) {
		return false
	}
	for k, v := range a.Attrs {
		if b.Attrs[k] != v {
			return false
		}
	}
	return true
}

// TestGoldenLogRoundTrip loads the golden file written by the seed
// implementation and checks every row survives; then re-saves and
// re-loads to prove the current writer stays within the v1 format. Set
// UPDATE_GOLDEN=1 to regenerate the fixture (only after a deliberate,
// versioned format change).
func TestGoldenLogRoundTrip(t *testing.T) {
	want := goldenLogEntries()

	if os.Getenv("UPDATE_GOLDEN") != "" {
		s := NewStore()
		for _, e := range want {
			s.Append(e)
		}
		if err := os.MkdirAll(filepath.Dir(goldenLogPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := s.SaveFile(goldenLogPath); err != nil {
			t.Fatal(err)
		}
		t.Log("golden driftlog regenerated")
	}

	raw, err := os.ReadFile(goldenLogPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(raw, []byte(persistHeader+"\n")) {
		t.Fatalf("golden file header changed: %q", raw[:min(len(raw), 32)])
	}

	check := func(s *Store, stage string) {
		t.Helper()
		if s.Len() != len(want) {
			t.Fatalf("%s: %d rows, want %d", stage, s.Len(), len(want))
		}
		for i, w := range want {
			if got := s.Entry(i); !sameEntry(got, w) {
				t.Fatalf("%s: row %d = %+v, want %+v", stage, i, got, w)
			}
		}
	}

	s := NewStore()
	if err := s.LoadFile(goldenLogPath); err != nil {
		t.Fatal(err)
	}
	check(s, "golden load")

	// Re-save with the current writer and re-load: the v1 format must
	// round-trip through the sharded store unchanged.
	var buf bytes.Buffer
	if n, err := s.WriteTo(&buf); err != nil || int(n) != len(want) {
		t.Fatalf("rewrite: n=%d err=%v", n, err)
	}
	s2 := NewStore()
	if _, err := s2.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	check(s2, "rewrite round-trip")

	// The golden rows must stay queryable through the windowed view.
	cr, err := s2.All().Count([]Cond{{Attr: AttrWeather, Value: "snow"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Total != 2 || cr.Drift != 2 {
		t.Fatalf("snow count %+v, want 2/2", cr)
	}
}
