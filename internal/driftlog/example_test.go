package driftlog_test

import (
	"fmt"
	"time"

	"nazar/internal/driftlog"
)

// ExampleView_Count shows the aggregation surface root-cause analysis
// mines: predicate counting with drift totals, exactly the SQL COUNT
// queries the paper runs on Aurora.
func ExampleView_Count() {
	log := driftlog.NewStore()
	day := time.Date(2020, 1, 15, 0, 0, 0, 0, time.UTC)
	add := func(hour int, weather string, drift bool) {
		log.Append(driftlog.Entry{
			Time: day.Add(time.Duration(hour) * time.Hour), Drift: drift, SampleID: -1,
			Attrs: map[string]string{driftlog.AttrWeather: weather, driftlog.AttrDevice: "android_1"},
		})
	}
	add(6, "clear-day", false)
	add(8, "snow", true)
	add(9, "snow", true)
	add(11, "clear-day", false)

	view := log.All()
	snow, _ := view.Count([]driftlog.Cond{{Attr: driftlog.AttrWeather, Value: "snow"}}, nil)
	fmt.Printf("snow entries: %d total, %d drifted\n", snow.Total, snow.Drift)

	// Counterfactual overlay: mark the snow drift as explained and
	// re-count without mutating the log.
	overlay := view.DriftOverlay()
	cleared, _ := view.ClearDrift([]driftlog.Cond{{Attr: driftlog.AttrWeather, Value: "snow"}}, overlay)
	after, _ := view.Count(nil, overlay)
	fmt.Printf("cleared %d flags; remaining drift: %d\n", cleared, after.Drift)
	// Output:
	// snow entries: 2 total, 2 drifted
	// cleared 2 flags; remaining drift: 0
}
