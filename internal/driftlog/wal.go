// Write-ahead log for the drift log: the durability layer the paper
// gets for free from Aurora (PAPER.md §2). Every ingest batch is
// appended to the active segment as one length-prefixed, CRC32C-checked,
// versioned record and fsynced before the append returns, so an
// acknowledged entry survives process death by construction. Segments
// rotate at a size threshold; background compaction folds sealed
// segments (plus the previous snapshot) into a fresh snapshot and
// deletes them, bounding both disk usage and replay time. Replay on
// open rebuilds the rows and, because it goes through the ordinary
// append path, the per-(attribute, value) bitset index too — a replayed
// store is query-identical to the live store it mirrors.
//
// Crash-recovery contract:
//
//   - an Append that returned nil is durable: its record is fully
//     fsynced before the call returns, and replay restores it;
//   - a torn final record (the write the crash interrupted) is detected
//     by length/CRC, truncated, and reported via RecoveryInfo — it
//     never blocks startup;
//   - corruption anywhere else (a sealed segment, a snapshot, a bad
//     header) refuses to open with a typed *CorruptError, never a
//     panic;
//   - compaction is crash-atomic: the new snapshot is written to a
//     temp file, fsynced, renamed, and only then are the folded
//     segments deleted. A crash between those steps leaves either the
//     old state or a snapshot plus already-covered segments, which
//     replay skips (and cleans up) by index.
package driftlog

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// walMagic opens every segment file: 5 magic bytes plus a 3-digit
// format version.
const walMagic = "NZWAL001"

// walRecordVersion is the payload format version inside a record frame
// (bumped independently of the segment header so old segments stay
// readable when the record encoding evolves).
const walRecordVersion = 1

// maxWALRecord bounds a single record frame's payload; larger lengths
// mark corruption (a batch is at most a few thousand entries).
const maxWALRecord = 64 << 20

// walCRC is the Castagnoli table (CRC32C — hardware-accelerated on
// amd64/arm64).
var walCRC = crc32.MakeTable(crc32.Castagnoli)

// Sticky WAL failure modes.
var (
	// ErrWALClosed marks appends after Close.
	ErrWALClosed = errors.New("driftlog: wal closed")
	// ErrWALSevered marks appends after Sever — the chaos harness's
	// simulated kill -9.
	ErrWALSevered = errors.New("driftlog: wal severed")
	// ErrWALReadOnly marks appends on a replay-only WAL.
	ErrWALReadOnly = errors.New("driftlog: wal opened read-only")
)

// CorruptError is the typed replay failure: corruption outside the
// tolerated torn-tail position (a sealed segment, a snapshot, a
// foreign or damaged header). Replay never panics: it either recovers
// a prefix or returns one of these.
type CorruptError struct {
	// Path is the damaged file.
	Path string
	// Offset is the byte offset of the first bad frame (0 for header
	// and snapshot damage).
	Offset int64
	// Reason describes the failed check.
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("driftlog: wal corrupt: %s at offset %d: %s", e.Path, e.Offset, e.Reason)
}

// WALOptions parameterizes OpenWAL.
type WALOptions struct {
	// SegmentBytes is the rotation threshold: the active segment seals
	// once it exceeds this size (default 4 MiB).
	SegmentBytes int64
	// CompactSegments, when positive, triggers background compaction
	// whenever at least this many sealed segments have accumulated.
	// Zero disables automatic compaction (Compact can still be called
	// explicitly).
	CompactSegments int
	// ReadOnly replays without mutating the directory: no tail
	// truncation, no cleanup, no active segment; Append fails with
	// ErrWALReadOnly. For inspectors and replay benchmarks.
	ReadOnly bool

	// fs substitutes the filesystem (crash harness); nil means the OS.
	fs walFS
}

func (o WALOptions) withDefaults() WALOptions {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.fs == nil {
		o.fs = osFS{}
	}
	return o
}

// RecoveryInfo reports what replay found and did.
type RecoveryInfo struct {
	// SnapshotRows is the row count loaded from the snapshot (0 when
	// none existed).
	SnapshotRows int64
	// Segments is the number of segment files replayed; Records and
	// Rows count what they contained.
	Segments int
	Records  int
	Rows     int64
	// TornTail reports that a torn final record was found; TornFile and
	// TornBytes identify the file and how many trailing bytes were
	// dropped (and, unless read-only, truncated away).
	TornTail  bool
	TornFile  string
	TornBytes int64
}

// WALStats is an operational snapshot of the WAL.
type WALStats struct {
	// ActiveSegment is the index of the segment currently appended to;
	// ActiveBytes its size so far.
	ActiveSegment uint64
	ActiveBytes   int64
	// SealedSegments counts rotated segments not yet folded into the
	// snapshot; SnapshotSegment is the highest segment index the
	// snapshot covers (-1 when no snapshot exists).
	SealedSegments  int
	SnapshotSegment int64
	// Appends, AppendedBytes, Rotations and Compactions count work done
	// since open.
	Appends       int64
	AppendedBytes int64
	Rotations     int64
	Compactions   int64
}

// WAL is the drift log's write-ahead log. All methods are safe for
// concurrent use; appends serialize on one mutex (the fsync dominates).
type WAL struct {
	dir  string
	opts WALOptions
	fs   walFS
	rec  RecoveryInfo

	mu      sync.Mutex
	err     error // sticky failure; nil while healthy
	closed  bool
	cur     walFile
	curIdx  uint64
	curSize int64
	sealed  []uint64 // rotated, not yet compacted, ascending
	snap    int64    // highest segment index folded into the snapshot; -1 none
	buf     []byte   // frame scratch

	appends       atomic.Int64
	appendedBytes atomic.Int64
	rotations     atomic.Int64
	compactions   atomic.Int64
	compacting    atomic.Bool
	bg            sync.WaitGroup
	compactErr    atomic.Value // last background compaction error (error)
}

// segName / snapName render the on-disk naming scheme. Segment indexes
// start at 1 and only ever grow; a snapshot's index is the highest
// segment folded into it, which is all replay needs to know to skip
// covered segments.
func segName(idx uint64) string  { return fmt.Sprintf("wal-%016x.seg", idx) }
func snapName(idx uint64) string { return fmt.Sprintf("snapshot-%016x.driftlog", idx) }

func parseWALName(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	hex := name[len(prefix) : len(name)-len(suffix)]
	if len(hex) != 16 {
		return 0, false
	}
	var idx uint64
	if _, err := fmt.Sscanf(hex, "%016x", &idx); err != nil {
		return 0, false
	}
	return idx, true
}

func parseSegName(name string) (uint64, bool)  { return parseWALName(name, "wal-", ".seg") }
func parseSnapName(name string) (uint64, bool) { return parseWALName(name, "snapshot-", ".driftlog") }

// OpenWAL opens (creating if needed) the WAL in dir and replays its
// contents — snapshot first, then every uncovered segment in index
// order — into s, which is normally a fresh store. On success the WAL
// is ready for appends (unless opts.ReadOnly). A torn final record is
// truncated and reported via Recovery(); any other damage returns a
// *CorruptError and s must be discarded (it may hold a partial prefix).
func OpenWAL(dir string, s *Store, opts WALOptions) (*WAL, error) {
	if s == nil {
		return nil, errors.New("driftlog: wal: nil store")
	}
	opts = opts.withDefaults()
	w := &WAL{dir: dir, opts: opts, fs: opts.fs, snap: -1}
	if !opts.ReadOnly {
		if err := w.fs.MkdirAll(dir); err != nil {
			return nil, fmt.Errorf("driftlog: wal: mkdir %s: %w", dir, err)
		}
	}
	names, err := w.fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("driftlog: wal: list %s: %w", dir, err)
	}
	var segs, snaps []uint64
	for _, name := range names {
		if idx, ok := parseSegName(name); ok {
			segs = append(segs, idx)
			continue
		}
		if idx, ok := parseSnapName(name); ok {
			snaps = append(snaps, idx)
			continue
		}
		// Leftover temp files are abandoned compactions: discard.
		if strings.HasSuffix(name, ".tmp") && !opts.ReadOnly {
			_ = w.fs.Remove(filepath.Join(dir, name))
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })

	if len(snaps) > 0 {
		best := snaps[len(snaps)-1]
		rows, err := w.loadSnapshot(s, best)
		if err != nil {
			return nil, err
		}
		w.snap = int64(best)
		w.rec.SnapshotRows = rows
		if !opts.ReadOnly {
			for _, idx := range snaps[:len(snaps)-1] {
				_ = w.fs.Remove(filepath.Join(dir, snapName(idx)))
			}
		}
	}

	maxIdx := uint64(0)
	if w.snap >= 0 {
		maxIdx = uint64(w.snap)
	}
	for i, idx := range segs {
		if int64(idx) <= w.snap {
			// Covered by the snapshot: a compaction died between the
			// snapshot rename and the segment deletes. Finish the job.
			if !opts.ReadOnly {
				_ = w.fs.Remove(filepath.Join(dir, segName(idx)))
			}
			continue
		}
		tail := i == len(segs)-1
		keep, err := w.replaySegment(filepath.Join(dir, segName(idx)), s, tail)
		if err != nil {
			return nil, err
		}
		if keep {
			w.sealed = append(w.sealed, idx)
		}
		if idx > maxIdx {
			maxIdx = idx
		}
	}

	if opts.ReadOnly {
		w.closed = true
		w.err = ErrWALReadOnly
		return w, nil
	}
	w.curIdx = maxIdx + 1
	if err := w.startSegmentLocked(); err != nil {
		return nil, err
	}
	w.maybeCompactLocked()
	return w, nil
}

// Recovery returns what replay found when the WAL was opened.
func (w *WAL) Recovery() RecoveryInfo { return w.rec }

// Dir returns the WAL directory.
func (w *WAL) Dir() string { return w.dir }

// Stats returns the current operational snapshot.
func (w *WAL) Stats() WALStats {
	w.mu.Lock()
	st := WALStats{
		ActiveSegment:   w.curIdx,
		ActiveBytes:     w.curSize,
		SealedSegments:  len(w.sealed),
		SnapshotSegment: w.snap,
	}
	w.mu.Unlock()
	st.Appends = w.appends.Load()
	st.AppendedBytes = w.appendedBytes.Load()
	st.Rotations = w.rotations.Load()
	st.Compactions = w.compactions.Load()
	return st
}

// loadSnapshot reads one snapshot file into s, returning the row count.
// Every failure is a *CorruptError: the snapshot was written atomically,
// so a damaged one is damage, not a torn write.
func (w *WAL) loadSnapshot(s *Store, idx uint64) (int64, error) {
	path := filepath.Join(w.dir, snapName(idx))
	f, err := w.fs.Open(path)
	if err != nil {
		return 0, &CorruptError{Path: path, Reason: fmt.Sprintf("open snapshot: %v", err)}
	}
	defer f.Close()
	n, err := s.ReadFrom(f)
	if err != nil {
		return n, &CorruptError{Path: path, Reason: fmt.Sprintf("snapshot: %v", err)}
	}
	return n, nil
}

// replaySegment applies one segment's records to dst. tail marks the
// final (most recently written) segment, whose last record is allowed
// to be torn: replay stops there, truncates the file (unless
// read-only), and records the fact. Damage in a non-tail segment — or
// a tail segment whose header is present but wrong — is a
// *CorruptError. keep=false means the file was removed entirely (a
// tail file that never got a complete header).
func (w *WAL) replaySegment(path string, dst *Store, tail bool) (keep bool, err error) {
	f, err := w.fs.Open(path)
	if err != nil {
		return false, &CorruptError{Path: path, Reason: fmt.Sprintf("open segment: %v", err)}
	}
	br := bufio.NewReaderSize(f, 64<<10)

	torn := func(off int64, reason string) (bool, error) {
		if !tail {
			f.Close()
			return false, &CorruptError{Path: path, Offset: off, Reason: reason}
		}
		// Tolerated torn tail: drop everything from off on.
		f.Close()
		w.rec.TornTail = true
		w.rec.TornFile = path
		if !w.opts.ReadOnly {
			if off <= int64(len(walMagic)) {
				// Not even a whole header survived — the file carries
				// nothing; remove it.
				if rerr := w.fs.Remove(path); rerr != nil {
					return false, fmt.Errorf("driftlog: wal: drop torn segment %s: %w", path, rerr)
				}
				return false, nil
			}
			if terr := w.fs.Truncate(path, off); terr != nil {
				return false, fmt.Errorf("driftlog: wal: truncate torn tail of %s: %w", path, terr)
			}
		}
		return off > int64(len(walMagic)), nil
	}

	hdr := make([]byte, len(walMagic))
	if _, err := io.ReadFull(br, hdr); err != nil {
		// Shorter than a header: only a torn creation can produce this.
		keep, terr := torn(0, "short header")
		if terr != nil {
			return keep, terr
		}
		w.rec.TornBytes += int64(len(hdr)) // approximation: whole file dropped
		return keep, nil
	}
	if string(hdr) != walMagic {
		f.Close()
		return false, &CorruptError{Path: path, Reason: fmt.Sprintf("bad segment header %q", hdr)}
	}

	off := int64(len(walMagic))
	var fh [8]byte
	var pbuf bytes.Buffer
	w.rec.Segments++
	for {
		if _, err := io.ReadFull(br, fh[:]); err != nil {
			if err == io.EOF {
				break // clean end at a frame boundary
			}
			keep, terr := torn(off, "short frame header")
			if keep || terr != nil {
				return keep, terr
			}
			return keep, terr
		}
		length := binary.LittleEndian.Uint32(fh[0:4])
		want := binary.LittleEndian.Uint32(fh[4:8])
		if length == 0 || length > maxWALRecord {
			return torn(off, fmt.Sprintf("implausible record length %d", length))
		}
		pbuf.Reset()
		if n, err := io.CopyN(&pbuf, br, int64(length)); err != nil || n != int64(length) {
			return torn(off, "short record payload")
		}
		payload := pbuf.Bytes()
		if got := crc32.Checksum(payload, walCRC); got != want {
			return torn(off, fmt.Sprintf("crc mismatch: got %08x want %08x", got, want))
		}
		entries, derr := decodeWALPayload(payload)
		if derr != nil {
			return torn(off, fmt.Sprintf("record decode: %v", derr))
		}
		dst.AppendBatch(entries)
		w.rec.Records++
		w.rec.Rows += int64(len(entries))
		off += 8 + int64(length)
	}
	return true, f.Close()
}

// startSegmentLocked creates the active segment and makes its existence
// durable.
func (w *WAL) startSegmentLocked() error {
	path := filepath.Join(w.dir, segName(w.curIdx))
	f, err := w.fs.Create(path)
	if err != nil {
		return fmt.Errorf("driftlog: wal: create segment: %w", err)
	}
	if _, err := f.Write([]byte(walMagic)); err != nil {
		f.Close()
		return fmt.Errorf("driftlog: wal: segment header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("driftlog: wal: segment header sync: %w", err)
	}
	if err := w.fs.SyncDir(w.dir); err != nil {
		f.Close()
		return fmt.Errorf("driftlog: wal: segment dir sync: %w", err)
	}
	w.cur = f
	w.curSize = int64(len(walMagic))
	return nil
}

// Append writes one record holding the batch and fsyncs it. When
// Append returns nil the batch is durable: a crash at any later point
// leaves it recoverable by replay. A write or sync failure poisons the
// WAL (the segment tail may be torn, so appending after it could hide
// durable records behind garbage); every subsequent Append returns the
// original error.
func (w *WAL) Append(entries []Entry) error {
	if len(entries) == 0 {
		return nil
	}
	return w.appendFrame(func(dst []byte) []byte { return appendWALFrame(dst, entries) })
}

// AppendColumns is Append for a columnar batch: it encodes the exact
// same record format (attributes in sorted name order) directly from
// the columns, so replay and compaction are oblivious to which ingest
// path produced a record. The batch must already be validated.
func (w *WAL) AppendColumns(b *ColumnarBatch) error {
	if b.Rows() == 0 {
		return nil
	}
	return w.appendFrame(func(dst []byte) []byte { return appendWALFrameColumns(dst, b) })
}

// appendFrame writes one encoded record frame and fsyncs it (the shared
// tail of Append and AppendColumns).
func (w *WAL) appendFrame(frame func(dst []byte) []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed || w.err != nil {
		if w.err != nil {
			return w.err
		}
		return ErrWALClosed
	}
	w.buf = frame(w.buf[:0])
	if _, err := w.cur.Write(w.buf); err != nil {
		return w.failLocked(fmt.Errorf("driftlog: wal append: %w", err))
	}
	if err := w.cur.Sync(); err != nil {
		return w.failLocked(fmt.Errorf("driftlog: wal sync: %w", err))
	}
	w.curSize += int64(len(w.buf))
	w.appends.Add(1)
	w.appendedBytes.Add(int64(len(w.buf)))
	if w.curSize >= w.opts.SegmentBytes {
		if err := w.rotateLocked(); err != nil {
			// The record itself is durable; rotation failure only
			// poisons future appends.
			return w.failLocked(err)
		}
		w.maybeCompactLocked()
	}
	return nil
}

// failLocked records a sticky failure and returns it.
func (w *WAL) failLocked(err error) error {
	w.err = err
	if w.cur != nil {
		_ = w.cur.Close()
		w.cur = nil
	}
	return err
}

// Rotate seals the active segment and starts a new one. Exposed for
// tests and operational tooling; the append path rotates automatically
// at SegmentBytes.
func (w *WAL) Rotate() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed || w.err != nil {
		if w.err != nil {
			return w.err
		}
		return ErrWALClosed
	}
	if err := w.rotateLocked(); err != nil {
		return w.failLocked(err)
	}
	w.maybeCompactLocked()
	return nil
}

func (w *WAL) rotateLocked() error {
	if err := w.cur.Sync(); err != nil {
		return fmt.Errorf("driftlog: wal rotate sync: %w", err)
	}
	if err := w.cur.Close(); err != nil {
		return fmt.Errorf("driftlog: wal rotate close: %w", err)
	}
	w.cur = nil
	w.sealed = append(w.sealed, w.curIdx)
	w.curIdx++
	w.rotations.Add(1)
	return w.startSegmentLocked()
}

// maybeCompactLocked kicks off a background compaction when the sealed
// backlog crossed the threshold. Single-flight: a running compaction
// absorbs later triggers.
func (w *WAL) maybeCompactLocked() {
	if w.opts.CompactSegments <= 0 || len(w.sealed) < w.opts.CompactSegments {
		return
	}
	if !w.compacting.CompareAndSwap(false, true) {
		return
	}
	w.bg.Add(1)
	go func() {
		defer w.bg.Done()
		defer w.compacting.Store(false)
		if err := w.Compact(); err != nil {
			w.compactErr.Store(err)
		}
	}()
}

// CompactionErr returns the last background compaction failure, if any
// (explicit Compact calls report their own errors).
func (w *WAL) CompactionErr() error {
	if err, ok := w.compactErr.Load().(error); ok {
		return err
	}
	return nil
}

// Compact folds every currently sealed segment, together with the
// existing snapshot, into a new snapshot, then deletes the folded
// files. The fold replays into a private store, so the WAL's owner is
// never touched; appends and rotations proceed concurrently (segments
// sealed after the fold began are simply left for the next run).
// Crash-atomic: temp write → fsync → rename → dir fsync → deletes.
func (w *WAL) Compact() error {
	w.mu.Lock()
	if w.closed && w.err != nil && !errors.Is(w.err, ErrWALReadOnly) {
		err := w.err
		w.mu.Unlock()
		return err
	}
	sealed := append([]uint64(nil), w.sealed...)
	snap := w.snap
	w.mu.Unlock()
	if len(sealed) == 0 {
		return nil
	}

	// Fold: snapshot + sealed segments replayed into a private store.
	// Sealed files are immutable, so this needs no lock.
	fold := NewStore()
	if snap >= 0 {
		if _, err := w.loadSnapshot(fold, uint64(snap)); err != nil {
			return err
		}
	}
	for _, idx := range sealed {
		if _, err := w.replaySegment(filepath.Join(w.dir, segName(idx)), fold, false); err != nil {
			return err
		}
	}

	if w.severed() {
		return ErrWALSevered
	}
	newIdx := sealed[len(sealed)-1]
	final := filepath.Join(w.dir, snapName(newIdx))
	tmp := final + ".tmp"
	f, err := w.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("driftlog: wal compact: create snapshot: %w", err)
	}
	if _, err := fold.WriteTo(f); err != nil {
		f.Close()
		_ = w.fs.Remove(tmp)
		return fmt.Errorf("driftlog: wal compact: write snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		_ = w.fs.Remove(tmp)
		return fmt.Errorf("driftlog: wal compact: sync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		_ = w.fs.Remove(tmp)
		return fmt.Errorf("driftlog: wal compact: close snapshot: %w", err)
	}
	if w.severed() {
		_ = w.fs.Remove(tmp)
		return ErrWALSevered
	}
	if err := w.fs.Rename(tmp, final); err != nil {
		_ = w.fs.Remove(tmp)
		return fmt.Errorf("driftlog: wal compact: publish snapshot: %w", err)
	}
	if err := w.fs.SyncDir(w.dir); err != nil {
		return fmt.Errorf("driftlog: wal compact: dir sync: %w", err)
	}

	// Commit: the rename is durable, so the folded files are garbage.
	w.mu.Lock()
	w.snap = int64(newIdx)
	w.sealed = w.sealed[len(sealed):]
	w.mu.Unlock()
	for _, idx := range sealed {
		_ = w.fs.Remove(filepath.Join(w.dir, segName(idx)))
	}
	if snap >= 0 {
		_ = w.fs.Remove(filepath.Join(w.dir, snapName(uint64(snap))))
	}
	w.compactions.Add(1)
	return nil
}

// severed reports whether Sever has fired (checked at compaction commit
// points so a simulated kill stops publishing new files).
func (w *WAL) severed() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.closed && errors.Is(w.err, ErrWALSevered)
}

// Close waits for background compaction, makes the active segment
// durable, and shuts the WAL down. Further appends fail with
// ErrWALClosed.
func (w *WAL) Close() error {
	w.bg.Wait()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if w.cur != nil {
		if err := w.cur.Sync(); err != nil {
			_ = w.cur.Close()
			w.cur = nil
			return fmt.Errorf("driftlog: wal close sync: %w", err)
		}
		if err := w.cur.Close(); err != nil {
			w.cur = nil
			return fmt.Errorf("driftlog: wal close: %w", err)
		}
		w.cur = nil
	}
	return nil
}

// Sever abruptly disables the WAL, simulating process death for the
// chaos harness: nothing is flushed or synced, the active segment
// handle is dropped, and every subsequent Append fails with
// ErrWALSevered. Unlike Close it does not wait for a graceful end of
// in-flight work — it only waits for the background compactor to
// observe the kill, so a successor WAL can safely open the directory.
func (w *WAL) Sever() {
	w.mu.Lock()
	if !w.closed {
		w.closed = true
		w.err = ErrWALSevered
		if w.cur != nil {
			_ = w.cur.Close()
			w.cur = nil
		}
	}
	w.mu.Unlock()
	w.bg.Wait()
}

// ---- record encoding -------------------------------------------------

// appendWALFrame appends one framed record ([len][crc][payload]) to
// dst. The payload is a versioned, self-contained encoding of the
// batch: records decode independently, so compaction and replay never
// need decoder state.
func appendWALFrame(dst []byte, entries []Entry) []byte {
	base := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // frame header placeholder
	p := len(dst)
	dst = append(dst, walRecordVersion)
	dst = binary.AppendUvarint(dst, uint64(len(entries)))
	var keys []string
	for i := range entries {
		e := &entries[i]
		dst = binary.AppendVarint(dst, e.Time.UnixNano())
		var flags byte
		if e.Drift {
			flags = 1
		}
		dst = append(dst, flags)
		dst = binary.AppendVarint(dst, e.SampleID)
		keys = keys[:0]
		for k := range e.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		dst = binary.AppendUvarint(dst, uint64(len(keys)))
		for _, k := range keys {
			dst = binary.AppendUvarint(dst, uint64(len(k)))
			dst = append(dst, k...)
			v := e.Attrs[k]
			dst = binary.AppendUvarint(dst, uint64(len(v)))
			dst = append(dst, v...)
		}
	}
	payload := dst[p:]
	binary.LittleEndian.PutUint32(dst[base:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[base+4:], crc32.Checksum(payload, walCRC))
	return dst
}

// appendWALFrameColumns is appendWALFrame fed from a columnar batch:
// byte-identical output for an equivalent entry slice (appendWALFrame
// emits attributes in sorted key order; here the column order is sorted
// once per batch instead of once per row).
func appendWALFrameColumns(dst []byte, b *ColumnarBatch) []byte {
	base := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // frame header placeholder
	p := len(dst)
	dst = append(dst, walRecordVersion)
	rows := b.Rows()
	dst = binary.AppendUvarint(dst, uint64(rows))
	order := make([]int, len(b.Cols))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return b.Cols[order[i]].Name < b.Cols[order[j]].Name })
	for r := 0; r < rows; r++ {
		dst = binary.AppendVarint(dst, b.Times[r])
		var flags byte
		if b.Drift[r] {
			flags = 1
		}
		dst = append(dst, flags)
		dst = binary.AppendVarint(dst, b.SampleIDs[r])
		nattrs := 0
		for _, ci := range order {
			if b.Cols[ci].IDs[r] != 0 {
				nattrs++
			}
		}
		dst = binary.AppendUvarint(dst, uint64(nattrs))
		for _, ci := range order {
			col := &b.Cols[ci]
			id := col.IDs[r]
			if id == 0 {
				continue
			}
			dst = binary.AppendUvarint(dst, uint64(len(col.Name)))
			dst = append(dst, col.Name...)
			v := col.Dict[id]
			dst = binary.AppendUvarint(dst, uint64(len(v)))
			dst = append(dst, v...)
		}
	}
	payload := dst[p:]
	binary.LittleEndian.PutUint32(dst[base:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[base+4:], crc32.Checksum(payload, walCRC))
	return dst
}

// walDecoder walks a record payload with bounds checking.
type walDecoder struct {
	p []byte
}

func (d *walDecoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.p)
	if n <= 0 {
		return 0, errors.New("truncated uvarint")
	}
	d.p = d.p[n:]
	return v, nil
}

func (d *walDecoder) varint() (int64, error) {
	v, n := binary.Varint(d.p)
	if n <= 0 {
		return 0, errors.New("truncated varint")
	}
	d.p = d.p[n:]
	return v, nil
}

func (d *walDecoder) byte() (byte, error) {
	if len(d.p) == 0 {
		return 0, errors.New("truncated byte")
	}
	b := d.p[0]
	d.p = d.p[1:]
	return b, nil
}

func (d *walDecoder) str() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(d.p)) {
		return "", fmt.Errorf("string length %d exceeds remaining %d bytes", n, len(d.p))
	}
	s := string(d.p[:n])
	d.p = d.p[n:]
	return s, nil
}

// decodeWALPayload decodes one CRC-verified record payload. Every
// malformation returns an error (never a panic or an over-allocation):
// claimed counts are checked against the bytes actually present.
func decodeWALPayload(p []byte) ([]Entry, error) {
	d := &walDecoder{p: p}
	ver, err := d.byte()
	if err != nil {
		return nil, err
	}
	if ver != walRecordVersion {
		return nil, fmt.Errorf("unsupported record version %d", ver)
	}
	count, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	// An entry needs at least 4 bytes (time, flags, sample, attr
	// count), so a count beyond len/4+1 is corrupt — and, crucially,
	// never drives the allocation below.
	if count > uint64(len(d.p)/4+1) {
		return nil, fmt.Errorf("entry count %d exceeds payload capacity", count)
	}
	entries := make([]Entry, 0, count)
	for i := uint64(0); i < count; i++ {
		nanos, err := d.varint()
		if err != nil {
			return nil, fmt.Errorf("entry %d: %w", i, err)
		}
		flags, err := d.byte()
		if err != nil {
			return nil, fmt.Errorf("entry %d: %w", i, err)
		}
		if flags > 1 {
			return nil, fmt.Errorf("entry %d: unknown flags %#x", i, flags)
		}
		sample, err := d.varint()
		if err != nil {
			return nil, fmt.Errorf("entry %d: %w", i, err)
		}
		nattrs, err := d.uvarint()
		if err != nil {
			return nil, fmt.Errorf("entry %d: %w", i, err)
		}
		if nattrs > uint64(len(d.p)/2+1) {
			return nil, fmt.Errorf("entry %d: attr count %d exceeds payload capacity", i, nattrs)
		}
		attrs := make(map[string]string, nattrs)
		for a := uint64(0); a < nattrs; a++ {
			k, err := d.str()
			if err != nil {
				return nil, fmt.Errorf("entry %d attr %d: %w", i, a, err)
			}
			v, err := d.str()
			if err != nil {
				return nil, fmt.Errorf("entry %d attr %d: %w", i, a, err)
			}
			attrs[k] = v
		}
		entries = append(entries, Entry{
			Time:     time.Unix(0, nanos).UTC(),
			Drift:    flags&1 != 0,
			SampleID: sample,
			Attrs:    attrs,
		})
	}
	if len(d.p) != 0 {
		return nil, fmt.Errorf("%d trailing bytes after last entry", len(d.p))
	}
	return entries, nil
}
