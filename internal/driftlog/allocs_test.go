package driftlog

import (
	"fmt"
	"testing"
	"time"

	"nazar/internal/tensor"
)

// allocStore builds a moderate log whose every attribute/value the
// steady-state queries below touch.
func allocStore(n int) *Store {
	s := NewStore()
	base := time.Unix(0, 0).UTC()
	var batch []Entry
	for i := 0; i < n; i++ {
		batch = append(batch, Entry{
			Time:     base.Add(time.Duration(i) * time.Millisecond),
			Drift:    i%3 == 0,
			SampleID: -1,
			Attrs: map[string]string{
				AttrWeather:  []string{"clear-day", "rain", "snow"}[i%3],
				AttrLocation: fmt.Sprintf("city_%d", i%8),
				AttrDevice:   fmt.Sprintf("dev_%d", i%16),
			},
		})
	}
	s.AppendBatch(batch)
	return s
}

// TestCountSteadyStateAllocs: the bitset Count path must be allocation-
// free — it runs once per candidate itemset inside apriori, thousands of
// times per window.
func TestCountSteadyStateAllocs(t *testing.T) {
	tensor.SetMaxWorkers(1)
	defer tensor.SetMaxWorkers(0)

	v := allocStore(5000).All()
	conds := []Cond{{AttrWeather, "rain"}, {AttrLocation, "city_3"}}
	if _, err := v.Count(conds, nil); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(50, func() {
		if _, err := v.Count(conds, nil); err != nil {
			t.Fatal(err)
		}
	}); n > 0.5 {
		t.Fatalf("steady-state Count allocates %v per run, want ~0", n)
	}
}

// TestOverlayCycleSteadyStateAllocs: a full counterfactual overlay
// cycle — acquire, clear, count against it, release — must recycle its
// word buffers through the pools after warm-up.
func TestOverlayCycleSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts at random under the race detector")
	}
	tensor.SetMaxWorkers(1)
	defer tensor.SetMaxWorkers(0)

	v := allocStore(5000).All()
	conds := []Cond{{AttrWeather, "snow"}}
	// Warm the overlay and word pools.
	for i := 0; i < 3; i++ {
		ov := v.DriftOverlay()
		if _, err := v.ClearDrift(conds, ov); err != nil {
			t.Fatal(err)
		}
		ov.Release()
	}
	if n := testing.AllocsPerRun(50, func() {
		ov := v.DriftOverlay()
		if _, err := v.ClearDrift(conds, ov); err != nil {
			t.Fatal(err)
		}
		if _, err := v.Count(conds, ov); err != nil {
			t.Fatal(err)
		}
		ov.Release()
	}); n > 0.5 {
		t.Fatalf("steady-state overlay cycle allocates %v per run, want ~0", n)
	}
}

// TestAttrValueCountsIntoSteadyStateAllocs: the reusing group-by must
// not allocate once the destination maps exist.
func TestAttrValueCountsIntoSteadyStateAllocs(t *testing.T) {
	tensor.SetMaxWorkers(1)
	defer tensor.SetMaxWorkers(0)

	v := allocStore(5000).All()
	dst := v.AttrValueCountsInto(nil, nil)
	if n := testing.AllocsPerRun(50, func() {
		dst = v.AttrValueCountsInto(dst, nil)
	}); n > 0.5 {
		t.Fatalf("steady-state AttrValueCountsInto allocates %v per run, want ~0", n)
	}
}
