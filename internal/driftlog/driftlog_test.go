package driftlog

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// paperExample builds the drift log of Table 2.
func paperExample() *Store {
	s := NewStore()
	day := time.Date(2020, 1, 15, 0, 0, 0, 0, time.UTC)
	add := func(hhmmss string, device, weather, location string, drift bool) {
		t, _ := time.Parse("15:04:05", hhmmss)
		s.Append(Entry{
			Time: day.Add(time.Duration(t.Hour())*time.Hour +
				time.Duration(t.Minute())*time.Minute + time.Duration(t.Second())*time.Second),
			Attrs: map[string]string{
				AttrDevice:   device,
				AttrWeather:  weather,
				AttrLocation: location,
			},
			Drift:    drift,
			SampleID: -1,
		})
	}
	add("06:02:01", "android_42", "clear-day", "Helsinki", false)
	add("06:02:23", "android_21", "clear-day", "New York", false)
	add("06:04:55", "android_21", "clear-day", "New York", true) // false positive
	add("08:03:32", "android_21", "snow", "New York", true)
	add("11:05:01", "android_42", "snow", "Helsinki", true)
	return s
}

func TestAppendAndEntry(t *testing.T) {
	s := paperExample()
	if s.Len() != 5 {
		t.Fatalf("len = %d", s.Len())
	}
	e := s.Entry(3)
	if e.Attrs[AttrWeather] != "snow" || e.Attrs[AttrLocation] != "New York" || !e.Drift {
		t.Fatalf("entry 3 = %+v", e)
	}
	if e.SampleID != -1 {
		t.Fatal("sample id not preserved")
	}
}

func TestCountMatchesPaperTable3(t *testing.T) {
	s := paperExample()
	v := s.All()

	// {snow}: 2 rows, both drift (occurrence 0.4, support 2/3,
	// confidence 1 in Table 3).
	cr, err := v.Count([]Cond{{AttrWeather, "snow"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Total != 2 || cr.Drift != 2 {
		t.Fatalf("{snow} = %+v", cr)
	}

	// {New York}: 3 rows, 2 drifted.
	cr, err = v.Count([]Cond{{AttrLocation, "New York"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Total != 3 || cr.Drift != 2 {
		t.Fatalf("{New York} = %+v", cr)
	}

	// {snow, New York}: 1 row, drifted.
	cr, err = v.Count([]Cond{{AttrWeather, "snow"}, {AttrLocation, "New York"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Total != 1 || cr.Drift != 1 {
		t.Fatalf("{snow, New York} = %+v", cr)
	}
}

func TestCountUnknowns(t *testing.T) {
	s := paperExample()
	v := s.All()
	if _, err := v.Count([]Cond{{"nonexistent-attr", "x"}}, nil); err == nil {
		t.Fatal("unknown attribute should error")
	}
	cr, err := v.Count([]Cond{{AttrWeather, "hail"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Total != 0 {
		t.Fatal("unseen value should match nothing")
	}
}

func TestWindowFiltering(t *testing.T) {
	s := paperExample()
	day := time.Date(2020, 1, 15, 0, 0, 0, 0, time.UTC)
	v := s.Window(day.Add(7*time.Hour), day.Add(12*time.Hour))
	if v.Len() != 2 {
		t.Fatalf("window len = %d", v.Len())
	}
	cr, err := v.Count([]Cond{{AttrWeather, "snow"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Total != 2 || cr.Drift != 2 {
		t.Fatalf("windowed {snow} = %+v", cr)
	}
	cr, err = v.Count([]Cond{{AttrWeather, "clear-day"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Total != 0 {
		t.Fatal("clear-day entries are outside the window")
	}
}

func TestViewPinsRowCount(t *testing.T) {
	s := paperExample()
	v := s.All()
	s.Append(Entry{Time: time.Now(), Drift: true,
		Attrs: map[string]string{AttrWeather: "snow"}, SampleID: -1})
	cr, err := v.Count([]Cond{{AttrWeather, "snow"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Total != 2 {
		t.Fatalf("view leaked a concurrent append: %+v", cr)
	}
}

func TestOverlayAndClearDrift(t *testing.T) {
	s := paperExample()
	v := s.All()
	overlay := v.DriftOverlay()
	n, err := v.ClearDrift([]Cond{{AttrWeather, "snow"}}, overlay)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("cleared %d, want 2", n)
	}
	// With the overlay, {New York} keeps only its false-positive drift.
	cr, err := v.Count([]Cond{{AttrLocation, "New York"}}, overlay)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Total != 3 || cr.Drift != 1 {
		t.Fatalf("overlaid {New York} = %+v", cr)
	}
	// Store itself is untouched.
	cr, _ = v.Count([]Cond{{AttrLocation, "New York"}}, nil)
	if cr.Drift != 2 {
		t.Fatal("ClearDrift mutated the store")
	}
	// Clearing again is a no-op.
	n, _ = v.ClearDrift([]Cond{{AttrWeather, "snow"}}, overlay)
	if n != 0 {
		t.Fatalf("second clear removed %d", n)
	}
}

func TestAttrValueCounts(t *testing.T) {
	s := paperExample()
	counts := s.All().AttrValueCounts(nil)
	if got := counts[AttrWeather]["snow"]; got.Total != 2 || got.Drift != 2 {
		t.Fatalf("snow counts %+v", got)
	}
	if got := counts[AttrWeather]["clear-day"]; got.Total != 3 || got.Drift != 1 {
		t.Fatalf("clear-day counts %+v", got)
	}
	if got := counts[AttrDevice]["android_21"]; got.Total != 3 || got.Drift != 2 {
		t.Fatalf("android_21 counts %+v", got)
	}
}

func TestMissingAttributeBackfill(t *testing.T) {
	s := NewStore()
	s.Append(Entry{Time: time.Now(), Attrs: map[string]string{"a": "1"}, SampleID: -1})
	s.Append(Entry{Time: time.Now(), Attrs: map[string]string{"b": "2"}, SampleID: -1})
	e0, e1 := s.Entry(0), s.Entry(1)
	if _, ok := e0.Attrs["b"]; ok {
		t.Fatal("row 0 should not have attr b")
	}
	if _, ok := e1.Attrs["a"]; ok {
		t.Fatal("row 1 should not have attr a")
	}
	// Counting on "a"="1" matches only row 0.
	cr, err := s.All().Count([]Cond{{"a", "1"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Total != 1 {
		t.Fatalf("backfilled count %+v", cr)
	}
}

func TestSampleIDs(t *testing.T) {
	s := NewStore()
	now := time.Now()
	for i := 0; i < 6; i++ {
		sid := int64(-1)
		if i%2 == 0 {
			sid = int64(100 + i)
		}
		s.Append(Entry{Time: now, Drift: true, SampleID: sid,
			Attrs: map[string]string{AttrWeather: "fog"}})
	}
	ids, err := s.All().SampleIDs([]Cond{{AttrWeather, "fog"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 || ids[0] != 100 || ids[2] != 104 {
		t.Fatalf("sample ids %v", ids)
	}
}

func TestConcurrentIngest(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	const workers, per = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Append(Entry{
					Time:     time.Now(),
					Drift:    i%2 == 0,
					SampleID: -1,
					Attrs: map[string]string{
						AttrDevice:  fmt.Sprintf("dev_%d", w),
						AttrWeather: "rain",
					},
				})
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != workers*per {
		t.Fatalf("len = %d", s.Len())
	}
	cr, err := s.All().Count([]Cond{{AttrWeather, "rain"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Total != workers*per || cr.Drift != workers*per/2 {
		t.Fatalf("count %+v", cr)
	}
}

func TestAttributesOrder(t *testing.T) {
	s := paperExample()
	attrs := s.Attributes()
	if len(attrs) != 3 {
		t.Fatalf("attrs %v", attrs)
	}
}

func TestPairCounts(t *testing.T) {
	s := paperExample()
	pairs := s.All().PairCounts(nil, nil)
	// {snow, New York}: 1 row, drifted.
	k := PairKey{AttrA: AttrLocation, ValA: "New York", AttrB: AttrWeather, ValB: "snow"}
	if got := pairs[k]; got.Total != 1 || got.Drift != 1 {
		t.Fatalf("pair %v = %+v", k, got)
	}
	// Canonical ordering: attrs sorted, so the reversed key must not exist.
	rev := PairKey{AttrA: AttrWeather, ValA: "snow", AttrB: AttrLocation, ValB: "New York"}
	if _, ok := pairs[rev]; ok {
		t.Fatal("non-canonical pair key present")
	}
	// Every pair count must agree with a direct Count query.
	v := s.All()
	for pk, cr := range pairs {
		direct, err := v.Count(pk.Conds(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if direct != cr {
			t.Fatalf("pair %v: pair-count %+v != direct %+v", pk, cr, direct)
		}
	}
}

func TestPairCountsExcludeAndOverlay(t *testing.T) {
	s := paperExample()
	v := s.All()
	pairs := v.PairCounts(nil, map[string]bool{AttrDevice: true})
	for pk := range pairs {
		if pk.AttrA == AttrDevice || pk.AttrB == AttrDevice {
			t.Fatalf("excluded attribute in pair %v", pk)
		}
	}
	overlay := v.DriftOverlay()
	if _, err := v.ClearDrift([]Cond{{AttrWeather, "snow"}}, overlay); err != nil {
		t.Fatal(err)
	}
	pairs = v.PairCounts(overlay, nil)
	k := PairKey{AttrA: AttrLocation, ValA: "Helsinki", AttrB: AttrWeather, ValB: "snow"}
	if got := pairs[k]; got.Drift != 0 {
		t.Fatalf("overlay ignored: %+v", got)
	}
}

// Property: for any entry set, Count(nil) totals equal Len and every
// single-condition count is bounded by the total.
func TestQuickCountInvariants(t *testing.T) {
	weathers := []string{"clear-day", "rain", "snow", "fog"}
	f := func(raw []uint8) bool {
		if len(raw) > 60 {
			raw = raw[:60]
		}
		s := NewStore()
		base := time.Date(2020, 2, 1, 0, 0, 0, 0, time.UTC)
		for i, b := range raw {
			s.Append(Entry{
				Time:     base.Add(time.Duration(i) * time.Minute),
				Drift:    b%2 == 0,
				SampleID: -1,
				Attrs: map[string]string{
					AttrWeather: weathers[int(b)%4],
					AttrDevice:  fmt.Sprintf("d%d", int(b/4)%3),
				},
			})
		}
		v := s.All()
		all, err := v.Count(nil, nil)
		if err != nil || all.Total != len(raw) || all.Drift > all.Total {
			return false
		}
		if len(raw) == 0 {
			return true // no columns exist yet; nothing to partition
		}
		var sum int
		for _, w := range weathers {
			cr, err := v.Count([]Cond{{AttrWeather, w}}, nil)
			if err != nil || cr.Total > all.Total || cr.Drift > cr.Total {
				return false
			}
			sum += cr.Total
		}
		return sum == all.Total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
