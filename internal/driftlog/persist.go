package driftlog

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"sort"
	"time"
)

// persistHeader guards against loading foreign files.
const persistHeader = "nazar-driftlog-v1"

// wireEntry is the on-disk representation of one row. The format predates
// sharding and must not change with it: rows are written in canonical
// (ingest-sequence) order, exactly as the unsharded store laid them out.
type wireEntry struct {
	TimeNanos int64
	Drift     bool
	SampleID  int64
	Attrs     map[string]string
}

// WriteTo streams the full log to w (header + gob-encoded rows) in
// canonical row order. Each shard is read-locked only while its rows are
// collected; concurrent appends to other shards proceed.
func (s *Store) WriteTo(w io.Writer) (int64, error) {
	type orderedEntry struct {
		seq int64
		we  wireEntry
	}
	var rows []orderedEntry
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for r := range sh.times {
			we := wireEntry{
				TimeNanos: sh.times[r],
				Drift:     sh.drift[r],
				SampleID:  sh.samples[r],
				Attrs:     map[string]string{},
			}
			for _, name := range sh.order {
				col := sh.cols[name]
				if id := col.ids[r]; id != 0 {
					we.Attrs[name] = col.dict[id]
				}
			}
			rows = append(rows, orderedEntry{seq: sh.seqs[r], we: we})
		}
		sh.mu.RUnlock()
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].seq < rows[b].seq })

	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, persistHeader); err != nil {
		return 0, err
	}
	enc := gob.NewEncoder(bw)
	if err := enc.Encode(len(rows)); err != nil {
		return 0, fmt.Errorf("driftlog: encode count: %w", err)
	}
	for i := range rows {
		if err := enc.Encode(rows[i].we); err != nil {
			return 0, fmt.Errorf("driftlog: encode row %d: %w", i, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return 0, err
	}
	return int64(len(rows)), nil
}

// ReadFrom appends all rows from r (written by WriteTo) to the store.
// Rows are ingested in batches so restoring a large log takes one lock
// acquisition per shard per batch rather than per row.
func (s *Store) ReadFrom(r io.Reader) (int64, error) {
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil {
		return 0, fmt.Errorf("driftlog: read header: %w", err)
	}
	if header != persistHeader+"\n" {
		return 0, fmt.Errorf("driftlog: bad header %q", header)
	}
	dec := gob.NewDecoder(br)
	var n int
	if err := dec.Decode(&n); err != nil {
		return 0, fmt.Errorf("driftlog: decode count: %w", err)
	}
	if n < 0 {
		return 0, fmt.Errorf("driftlog: corrupt file: negative row count %d", n)
	}
	const batchSize = 4096
	batch := make([]Entry, 0, min(n, batchSize))
	loaded := 0
	for i := 0; i < n; i++ {
		var we wireEntry
		if err := dec.Decode(&we); err != nil {
			s.AppendBatch(batch)
			return int64(loaded + len(batch)), fmt.Errorf("driftlog: decode row %d of %d (truncated or corrupt snapshot): %w", i, n, err)
		}
		batch = append(batch, Entry{
			Time:     time.Unix(0, we.TimeNanos).UTC(),
			Drift:    we.Drift,
			SampleID: we.SampleID,
			Attrs:    we.Attrs,
		})
		if len(batch) == batchSize {
			s.AppendBatch(batch)
			loaded += len(batch)
			batch = batch[:0]
		}
	}
	s.AppendBatch(batch)
	return int64(n), nil
}

// Compact drops every row with a timestamp before cutoff, returning how
// many rows were removed. Dictionary encodings are rebuilt per shard, so
// value IDs for vanished attributes do not leak. Outstanding Views keep
// reading their pinned snapshots (memory-safe) but no longer reflect the
// store; create views after compaction.
func (s *Store) Compact(cutoff time.Time) int {
	limit := cutoff.UnixNano()
	removed := 0
	for si := range s.shards {
		sh := &s.shards[si]
		sh.mu.Lock()
		keep := make([]int, 0, len(sh.times))
		for i, t := range sh.times {
			if t >= limit {
				keep = append(keep, i)
			}
		}
		dropped := len(sh.times) - len(keep)
		if dropped == 0 {
			sh.mu.Unlock()
			continue
		}
		removed += dropped
		newSeqs := make([]int64, len(keep))
		newTimes := make([]int64, len(keep))
		newDrift := make([]bool, len(keep))
		newSamples := make([]int64, len(keep))
		newCols := make(map[string]*column, len(sh.cols))
		for _, name := range sh.order {
			newCols[name] = newColumn(0)
		}
		var newDriftBits []uint64
		for ni, oi := range keep {
			newSeqs[ni] = sh.seqs[oi]
			newTimes[ni] = sh.times[oi]
			newDrift[ni] = sh.drift[oi]
			if sh.drift[oi] {
				newDriftBits = setBit(newDriftBits, ni)
			}
			newSamples[ni] = sh.samples[oi]
			for _, name := range sh.order {
				old := sh.cols[name]
				nc := newCols[name]
				if id := old.ids[oi]; id != 0 {
					nid := nc.intern(old.dict[id])
					nc.ids = append(nc.ids, nid)
					nc.bits[nid] = setBit(nc.bits[nid], ni)
				} else {
					nc.ids = append(nc.ids, 0)
				}
			}
		}
		sh.seqs, sh.times, sh.drift, sh.samples = newSeqs, newTimes, newDrift, newSamples
		sh.driftBits = newDriftBits
		sh.cols = newCols
		sh.mu.Unlock()
	}
	// Rebuild the sketch tier wholesale: compaction dropped rows the
	// sketches still count (and rebuilt bitmaps for sketched columns),
	// so replay the survivors under every shard lock — the same
	// consistency protocol as tier-up. Sketched attributes stay sticky.
	if sketched := s.sketchedSet(); removed > 0 && len(sketched) > 0 {
		s.sk.tierMu.Lock()
		for si := range s.shards {
			s.shards[si].mu.Lock()
		}
		s.sk.reset()
		s.replaySketchesLocked(sketched)
		for si := numShards - 1; si >= 0; si-- {
			s.shards[si].mu.Unlock()
		}
		s.sk.tierMu.Unlock()
	}
	if removed > 0 {
		// Row indices shifted: invalidate watermark-keyed caches.
		s.compactions.Add(1)
	}
	s.compacted.Add(int64(removed))
	return removed
}

// Compactions counts Compact calls that removed rows — the generation
// component of any cache keyed on per-shard row watermarks (compaction
// renumbers rows, so watermarks from an earlier generation are void).
func (s *Store) Compactions() int64 {
	return s.compactions.Load()
}

// SaveFile atomically and durably writes the log to path: temp file,
// fsync, rename, directory fsync. Without the fsync before the rename a
// power cut can leave path pointing at a zero-length or partial file —
// the classic rename-without-sync hole.
func (s *Store) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("driftlog: save: %w", err)
	}
	if _, err := s.WriteTo(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("driftlog: save sync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("driftlog: save close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("driftlog: save rename: %w", err)
	}
	return syncDir(dirOf(path))
}

// LoadFile appends all rows stored at path.
func (s *Store) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("driftlog: load: %w", err)
	}
	defer f.Close()
	_, err = s.ReadFrom(f)
	return err
}
