package driftlog

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"time"
)

// persistHeader guards against loading foreign files.
const persistHeader = "nazar-driftlog-v1"

// wireEntry is the on-disk representation of one row.
type wireEntry struct {
	TimeNanos int64
	Drift     bool
	SampleID  int64
	Attrs     map[string]string
}

// WriteTo streams the full log to w (header + gob-encoded rows). It holds
// the read lock for the duration; concurrent appends block until done.
func (s *Store) WriteTo(w io.Writer) (int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, persistHeader); err != nil {
		return 0, err
	}
	enc := gob.NewEncoder(bw)
	n := len(s.times)
	if err := enc.Encode(n); err != nil {
		return 0, fmt.Errorf("driftlog: encode count: %w", err)
	}
	for i := 0; i < n; i++ {
		we := wireEntry{
			TimeNanos: s.times[i],
			Drift:     s.drift[i],
			SampleID:  s.samples[i],
			Attrs:     map[string]string{},
		}
		for _, name := range s.order {
			col := s.cols[name]
			if id := col.ids[i]; id != 0 {
				we.Attrs[name] = col.dict[id]
			}
		}
		if err := enc.Encode(we); err != nil {
			return 0, fmt.Errorf("driftlog: encode row %d: %w", i, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return 0, err
	}
	return int64(n), nil
}

// ReadFrom appends all rows from r (written by WriteTo) to the store.
func (s *Store) ReadFrom(r io.Reader) (int64, error) {
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil {
		return 0, fmt.Errorf("driftlog: read header: %w", err)
	}
	if header != persistHeader+"\n" {
		return 0, fmt.Errorf("driftlog: bad header %q", header)
	}
	dec := gob.NewDecoder(br)
	var n int
	if err := dec.Decode(&n); err != nil {
		return 0, fmt.Errorf("driftlog: decode count: %w", err)
	}
	if n < 0 {
		return 0, fmt.Errorf("driftlog: corrupt file: negative row count %d", n)
	}
	for i := 0; i < n; i++ {
		var we wireEntry
		if err := dec.Decode(&we); err != nil {
			return int64(i), fmt.Errorf("driftlog: decode row %d: %w", i, err)
		}
		s.Append(Entry{
			Time:     time.Unix(0, we.TimeNanos).UTC(),
			Drift:    we.Drift,
			SampleID: we.SampleID,
			Attrs:    we.Attrs,
		})
	}
	return int64(n), nil
}

// Compact drops every row with a timestamp before cutoff, returning how
// many rows were removed. Dictionary encodings are rebuilt, so value IDs
// for vanished attributes do not leak. Outstanding Views become invalid
// (their pinned row counts no longer correspond); create views after
// compaction.
func (s *Store) Compact(cutoff time.Time) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	limit := cutoff.UnixNano()
	keep := make([]int, 0, len(s.times))
	for i, t := range s.times {
		if t >= limit {
			keep = append(keep, i)
		}
	}
	removed := len(s.times) - len(keep)
	if removed == 0 {
		return 0
	}
	newTimes := make([]int64, len(keep))
	newDrift := make([]bool, len(keep))
	newSamples := make([]int64, len(keep))
	newCols := make(map[string]*column, len(s.cols))
	for _, name := range s.order {
		newCols[name] = newColumn(0)
	}
	for ni, oi := range keep {
		newTimes[ni] = s.times[oi]
		newDrift[ni] = s.drift[oi]
		newSamples[ni] = s.samples[oi]
		for _, name := range s.order {
			old := s.cols[name]
			nc := newCols[name]
			if id := old.ids[oi]; id != 0 {
				nc.ids = append(nc.ids, nc.intern(old.dict[id]))
			} else {
				nc.ids = append(nc.ids, 0)
			}
		}
	}
	s.times, s.drift, s.samples = newTimes, newDrift, newSamples
	s.cols = newCols
	return removed
}

// SaveFile atomically writes the log to path (temp file + rename).
func (s *Store) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("driftlog: save: %w", err)
	}
	if _, err := s.WriteTo(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("driftlog: save close: %w", err)
	}
	return os.Rename(tmp, path)
}

// LoadFile appends all rows stored at path.
func (s *Store) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("driftlog: load: %w", err)
	}
	defer f.Close()
	_, err = s.ReadFrom(f)
	return err
}
