package driftlog

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// Sketch-vs-exact counting benchmarks. The exact variant pins the
// bitset index (sketching disabled via an unreachable threshold); the
// sketch variant lets high-cardinality attributes tier up. Each
// benchmark reports index-bytes — the live size of the structure that
// answers the count — so BENCH_sketch.json captures the memory trade
// alongside the latency one.

var sketchBenchStores sync.Map // "rows/card/variant" → *Store

func sketchBenchStore(tb testing.TB, rows, card int, sketch bool) *Store {
	key := fmt.Sprintf("%d/%d/%v", rows, card, sketch)
	if s, ok := sketchBenchStores.Load(key); ok {
		return s.(*Store)
	}
	cfg := SketchConfig{}
	if !sketch {
		cfg.Threshold = 1 << 30
	}
	s := NewStoreWithSketch(cfg)
	r := rand.New(rand.NewSource(42))
	base := time.Unix(0, 0).UTC()
	span := time.Hour
	weathers := [3]string{"clear-day", "rain", "snow"}
	batch := make([]Entry, 0, 1<<14)
	hot := 16
	if hot > card {
		hot = card
	}
	for i := 0; i < rows; i++ {
		w := weathers[r.Intn(3)]
		v := r.Intn(card)
		if r.Float64() < 0.5 {
			v = r.Intn(hot)
		}
		p := 0.02
		if w == "snow" {
			p = 0.5
		}
		if v == 0 {
			p = 0.7
		}
		batch = append(batch, Entry{
			Time:     base.Add(span * time.Duration(i) / time.Duration(rows)),
			Drift:    r.Float64() < p,
			SampleID: -1,
			Attrs: map[string]string{
				AttrWeather:   w,
				"app_version": "v" + fmt.Sprint(v),
			},
		})
		if len(batch) == cap(batch) {
			s.AppendBatch(batch)
			batch = batch[:0]
		}
	}
	s.AppendBatch(batch)
	sketchBenchStores.Store(key, s)
	return s
}

// indexBytes is the resident size of whichever structure answers
// value-membership queries: exact bitset words or sketch bytes.
func indexBytes(s *Store) float64 {
	st := s.Stats()
	return float64(st.IndexWords*8) + float64(st.SketchBytes)
}

var sketchBenchCases = []struct {
	name       string
	rows, card int
	variants   []bool // false = exact, true = sketch
}{
	{"100kx100", 100_000, 100, []bool{false}},
	{"1Mx100", 1_000_000, 100, []bool{false}},
	{"100kx100k", 100_000, 100_000, []bool{false, true}},
	{"1Mx100k", 1_000_000, 100_000, []bool{true}},
}

func variantName(sketch bool) string {
	if sketch {
		return "sketch"
	}
	return "exact"
}

// BenchmarkSketchCount measures one conditioned support count over a
// bucket-aligned 30-minute sub-window (the shape the sliding-window
// miner issues).
func BenchmarkSketchCount(b *testing.B) {
	base := time.Unix(0, 0).UTC()
	for _, c := range sketchBenchCases {
		for _, sketch := range c.variants {
			b.Run(variantName(sketch)+"/"+c.name, func(b *testing.B) {
				s := sketchBenchStore(b, c.rows, c.card, sketch)
				v := s.Window(base.Add(10*time.Minute), base.Add(40*time.Minute))
				conds := []Cond{{Attr: "app_version", Value: "v0"}}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := v.Count(conds, nil); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(indexBytes(s), "index-bytes")
			})
		}
	}
}

// BenchmarkSketchValueCounts measures the per-value group-by that
// seeds mining's level-1 candidates: the exact tier walks every
// distinct value, the sketch tier only its heavy-hitter candidates.
func BenchmarkSketchValueCounts(b *testing.B) {
	for _, c := range sketchBenchCases {
		for _, sketch := range c.variants {
			b.Run(variantName(sketch)+"/"+c.name, func(b *testing.B) {
				s := sketchBenchStore(b, c.rows, c.card, sketch)
				v := s.All()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if got := v.AttrValueCounts(nil); len(got) == 0 {
						b.Fatal("empty group-by")
					}
				}
				b.ReportMetric(indexBytes(s), "index-bytes")
			})
		}
	}
}
