package driftlog

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"nazar/internal/tensor"
)

// sketchTestConfig is the geometry the sketch differential tests run
// with: a threshold low enough that the high-cardinality attribute tiers
// mid-ingest, buckets small enough that the window shapes cut through
// bucket boundaries, and a ring small enough that eviction into the rest
// bucket is exercised.
func sketchTestConfig() SketchConfig {
	return SketchConfig{
		Threshold:        16,
		Width:            4096,
		PairWidth:        8192,
		Depth:            4,
		Bucket:           100 * time.Second,
		MaxBuckets:       4,
		HeavyHitters:     64,
		PairHeavyHitters: 512,
		Seed:             7,
	}
}

// sketchStore builds a log with one high-cardinality attribute
// (app_version: ~vers distinct values, the first ten hot) alongside the
// usual low-cardinality ones, via mixed Append/AppendBatch ingest with
// scattered timestamps and randomly missing attributes.
func sketchStore(r *rand.Rand, n, vers int, cfg SketchConfig) *Store {
	s := NewStoreWithSketch(cfg)
	base := time.Unix(0, 0).UTC()
	var batch []Entry
	for i := 0; i < n; i++ {
		attrs := map[string]string{}
		if r.Float64() < 0.95 {
			attrs[AttrWeather] = fmt.Sprintf("w%d", r.Intn(6))
		}
		if r.Float64() < 0.9 {
			attrs[AttrLocation] = fmt.Sprintf("city_%d", r.Intn(9))
		}
		if r.Float64() < 0.9 {
			v := r.Intn(vers)
			if r.Float64() < 0.6 {
				v = r.Intn(10) // hot set
			}
			attrs["app_version"] = fmt.Sprintf("1.%d", v)
		}
		e := Entry{
			Time:     base.Add(time.Duration(r.Intn(1000)) * time.Second),
			Drift:    r.Float64() < 0.3,
			SampleID: -1,
			Attrs:    attrs,
		}
		if r.Float64() < 0.5 {
			s.Append(e)
		} else {
			batch = append(batch, e)
		}
	}
	s.AppendBatch(batch)
	return s
}

// sketchWindows cuts both along and across the 100s bucket grid (aligned
// windows answer purely from sketches; unaligned ones force edge scans).
func sketchWindows() [][2]time.Time {
	base := time.Unix(0, 0).UTC()
	return [][2]time.Time{
		{{}, {}},
		{base.Add(200 * time.Second), base.Add(700 * time.Second)},
		{base.Add(250 * time.Second), base.Add(707 * time.Second)},
		{base.Add(33 * time.Second), base.Add(41 * time.Second)},
		{base.Add(5000 * time.Second), base.Add(6000 * time.Second)},
	}
}

// assertOneSided checks the sketch contract for one query: never below
// the exact result, above it by at most the analytic bound.
func assertOneSided(t *testing.T, ctx string, got, exact CountResult, bound int) {
	t.Helper()
	if got.Total < exact.Total || got.Drift < exact.Drift {
		t.Fatalf("%s: sketch %+v below exact %+v (must be one-sided)", ctx, got, exact)
	}
	if got.Drift > got.Total {
		t.Fatalf("%s: sketch drift %d > total %d", ctx, got.Drift, got.Total)
	}
	if got.Total-exact.Total > bound {
		t.Fatalf("%s: sketch total %d exceeds exact %d by more than bound %d", ctx, got.Total, exact.Total, bound)
	}
	if got.Drift-exact.Drift > bound {
		t.Fatalf("%s: sketch drift %d exceeds exact %d by more than bound %d", ctx, got.Drift, exact.Drift, bound)
	}
}

// TestSketchTierUp pins the tiering mechanics: the high-cardinality
// attribute tiers (sticky), its bitmaps are freed, the low-cardinality
// attributes stay exact and bit-identical to an all-exact twin store.
func TestSketchTierUp(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	cfg := sketchTestConfig()
	s := sketchStore(r, 3000, 300, cfg)

	if got := s.SketchedAttrs(); len(got) != 1 || got[0] != "app_version" {
		t.Fatalf("SketchedAttrs = %v, want [app_version]", got)
	}
	st := s.Stats()
	if st.SketchAttrs != 1 || st.SketchBuckets == 0 || st.SketchBytes == 0 {
		t.Fatalf("sketch stats not populated: %+v", st)
	}
	if st.SketchEvicted == 0 {
		t.Fatalf("expected bucket evictions with MaxBuckets=%d over 10 buckets of data", cfg.MaxBuckets)
	}

	// Twin store with sketching effectively disabled: identical data,
	// exact everywhere.
	exact := sketchStore(rand.New(rand.NewSource(1)), 3000, 300, SketchConfig{Threshold: 1 << 20})
	if n := len(exact.SketchedAttrs()); n != 0 {
		t.Fatalf("twin store sketched %d attrs", n)
	}
	// The sketched store must hold far fewer index words (app_version's
	// ~300 bitmaps freed).
	if st.IndexWords >= exact.Stats().IndexWords {
		t.Fatalf("sketched store index words %d not below exact twin %d", st.IndexWords, exact.Stats().IndexWords)
	}

	// Exact-tier queries are bit-identical between the stores.
	vs, ve := s.All(), exact.All()
	for _, conds := range diffConds() {
		cs, err1 := vs.Count(conds, nil)
		ce, err2 := ve.Count(conds, nil)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("error divergence %v %v", err1, err2)
		}
		if cs != ce {
			t.Fatalf("exact-tier conds %v: sketched-store %+v exact-store %+v", conds, cs, ce)
		}
		if ap, _ := vs.Approx(conds, nil); ap {
			t.Fatalf("exact-tier conds %v reported approximate", conds)
		}
	}
}

// TestSketchDifferentialBound is the sketch half of the PR's differential
// contract: every sketch-answered aggregate is one-sided against the
// exact row-scan oracle and within the analytic error bound, across
// bucket-aligned and unaligned windows, odd shard fills, and pool widths
// 1 and 8 (results identical across widths).
func TestSketchDifferentialBound(t *testing.T) {
	type key struct {
		seed, wi, ci int
	}
	results := map[key]CountResult{}
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			tensor.SetMaxWorkers(workers)
			defer tensor.SetMaxWorkers(0)
			sizes := []int{65, 500, 3000}
			for seed := 0; seed < 6; seed++ {
				r := rand.New(rand.NewSource(int64(4000 + seed)))
				s := sketchStore(r, sizes[seed%len(sizes)], 200, sketchTestConfig())
				sketchedStore := len(s.SketchedAttrs()) > 0
				for wi, w := range sketchWindows() {
					vb := s.Window(w[0], w[1])
					vo := s.WindowScan(w[0], w[1])
					conds := [][]Cond{
						{{"app_version", "1.3"}},
						{{"app_version", "1.7"}, {AttrWeather, "w1"}},
						{{"app_version", "1.150"}},
						{{"app_version", "no-such-version"}},
						{{"app_version", "1.0"}, {AttrLocation, "city_2"}, {AttrWeather, "w0"}},
					}
					for ci, cs := range conds {
						got, err1 := vb.Count(cs, nil)
						exact, err2 := vo.Count(cs, nil)
						if err1 != nil || err2 != nil {
							t.Fatalf("seed %d window %d conds %d: errs %v %v", seed, wi, ci, err1, err2)
						}
						approx, bound := vb.Approx(cs, nil)
						if approx != sketchedStore {
							t.Fatalf("seed %d window %d conds %d: approx=%v, sketched store=%v", seed, wi, ci, approx, sketchedStore)
						}
						ctx := fmt.Sprintf("seed %d window %d conds %d", seed, wi, ci)
						if !approx {
							if got != exact {
								t.Fatalf("%s: exact-path %+v != oracle %+v", ctx, got, exact)
							}
						} else if len(cs) <= 2 {
							// One or two conditions: a covering sketch
							// exists, so the bound is against the true
							// conjunction.
							assertOneSided(t, ctx, got, exact, bound)
						} else {
							// Wider conjunctions: one-sided, and within the
							// reported bound of the tightest exact pair
							// marginal (no sketch covers the conjunction).
							if got.Total < exact.Total || got.Drift < exact.Drift {
								t.Fatalf("%s: sketch %+v below exact %+v", ctx, got, exact)
							}
							tightest := int(^uint(0) >> 1)
							for i := 0; i < len(cs); i++ {
								for j := i + 1; j < len(cs); j++ {
									pair := []Cond{cs[i], cs[j]}
									pc, err := vo.Count(pair, nil)
									if err != nil {
										t.Fatal(err)
									}
									_, pbound := vb.Approx(pair, nil)
									if pc.Total+pbound < tightest {
										tightest = pc.Total + pbound
									}
								}
							}
							if got.Total > tightest {
								t.Fatalf("%s: sketch total %d exceeds tightest bounded pair marginal %d", ctx, got.Total, tightest)
							}
						}
						k := key{seed, wi, ci}
						if prev, ok := results[k]; ok {
							if prev != got {
								t.Fatalf("%s: result differs across pool widths: %+v vs %+v", ctx, prev, got)
							}
						} else {
							results[k] = got
						}
					}

					// Grouped aggregation: every sketched-attr value reported
					// is one-sided and bounded; every exact value frequent
					// enough for the Space-Saving guarantee is reported.
					gotAV := vb.AttrValueCounts(nil)
					exactAV := vo.AttrValueCountsScan(nil)
					var totalApp int
					for _, cr := range exactAV["app_version"] {
						totalApp += cr.Total
					}
					for val, cr := range gotAV["app_version"] {
						_, bound := vb.Approx([]Cond{{"app_version", val}}, nil)
						assertOneSided(t, fmt.Sprintf("seed %d window %d AttrValueCounts[%s]", seed, wi, val),
							cr, exactAV["app_version"][val], bound)
					}
					if !sketchedStore && !reflect.DeepEqual(gotAV, exactAV) {
						t.Fatalf("seed %d window %d: unsketched store AttrValueCounts diverge", seed, wi)
					}
					if sketchedStore && wi == 0 {
						// Space-Saving's presence guarantee is over the
						// global stream, so check it on the unbounded window
						// only: every value above N/capacity frequency must
						// be a candidate.
						guarantee := totalApp / sketchTestConfig().HeavyHitters
						for val, cr := range exactAV["app_version"] {
							if cr.Total <= guarantee {
								continue
							}
							if _, ok := gotAV["app_version"][val]; !ok {
								t.Fatalf("seed %d window %d: frequent value %s (count %d > %d) missing from sketch AttrValueCounts",
									seed, wi, val, cr.Total, guarantee)
							}
						}
					}
					// Exact-tier attributes must be bit-identical either way.
					for _, attr := range []string{AttrWeather, AttrLocation} {
						if !reflect.DeepEqual(gotAV[attr], exactAV[attr]) {
							t.Fatalf("seed %d window %d: exact-tier AttrValueCounts[%s] diverge", seed, wi, attr)
						}
					}

					// Pair aggregation: reported pairs touching the sketched
					// attribute are one-sided within the pair-ring bound.
					gotPC := vb.PairCounts(nil, nil)
					exactPC := vo.PairCountsScan(nil, nil)
					for k, cr := range gotPC {
						if k.AttrA != "app_version" && k.AttrB != "app_version" {
							if cr != exactPC[k] {
								t.Fatalf("seed %d window %d: exact-tier pair %+v: %+v vs %+v", seed, wi, k, cr, exactPC[k])
							}
							continue
						}
						if !sketchedStore {
							if cr != exactPC[k] {
								t.Fatalf("seed %d window %d: unsketched pair %+v diverges", seed, wi, k)
							}
							continue
						}
						_, _, bound, _ := vb.sk.pairs.estimate(
							pairSketchKey(k.AttrA, k.ValA, k.AttrB, k.ValB), vb.from, vb.to)
						assertOneSided(t, fmt.Sprintf("seed %d window %d pair %+v", seed, wi, k),
							cr, exactPC[k], int(bound))
					}
				}
			}
		})
	}
}

// TestSketchDeltaFallbackExact pins that Since-derived delta views answer
// sketched attributes exactly (scan fallback), so incremental mining's
// additivity holds for the delta term.
func TestSketchDeltaFallbackExact(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	s := sketchStore(r, 2000, 200, sketchTestConfig())
	base := time.Unix(0, 0).UTC()
	v1 := s.Window(time.Time{}, base.Add(600*time.Second))
	prevRows := v1.ShardRows()
	_, to1 := v1.Bounds()
	// Pin the exact prev-window count before growing the log: the new
	// batch contains rows with timestamps inside the prev window, which
	// belong to the delta (appended after the watermark), not to prev.
	c1, _ := s.WindowScan(time.Time{}, base.Add(600*time.Second)).Count([]Cond{{"app_version", "1.3"}}, nil)

	var batch []Entry
	for i := 0; i < 500; i++ {
		batch = append(batch, Entry{
			Time:     base.Add(time.Duration(r.Intn(1000)) * time.Second),
			Drift:    r.Float64() < 0.3,
			SampleID: -1,
			Attrs:    map[string]string{"app_version": fmt.Sprintf("1.%d", r.Intn(200)), AttrWeather: "w0"},
		})
	}
	s.AppendBatch(batch)

	v2 := s.Window(time.Time{}, base.Add(900*time.Second))
	delta, err := v2.Since(prevRows, to1)
	if err != nil {
		t.Fatal(err)
	}
	conds := []Cond{{"app_version", "1.3"}}
	if ap, _ := delta.Approx(conds, nil); ap {
		t.Fatal("delta view reported approximate; deltas must be exact")
	}
	cd, err := delta.Count(conds, nil)
	if err != nil {
		t.Fatal(err)
	}
	cdScan, err := delta.CountScan(conds, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cd != cdScan {
		t.Fatalf("delta sketched-attr count %+v != scan %+v", cd, cdScan)
	}
	// Exact decomposition over the scan oracles sanity-checks the window
	// plumbing under tiering.
	vo2 := s.WindowScan(time.Time{}, base.Add(900*time.Second))
	c2, _ := vo2.Count(conds, nil)
	if c2.Total != c1.Total+cd.Total {
		t.Fatalf("decomposition: full %d != prev %d + delta %d", c2.Total, c1.Total, cd.Total)
	}
}

// TestSketchClearDriftExact pins that counterfactual clearing involving
// sketched attributes is exact, and that a mutated overlay re-routes
// sketched queries to the exact scan.
func TestSketchClearDriftExact(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	s := sketchStore(r, 2500, 200, sketchTestConfig())
	v := s.All()
	ovA := v.DriftOverlay()
	ovB := v.DriftOverlay()
	defer ovA.Release()
	defer ovB.Release()
	conds := []Cond{{"app_version", "1.2"}}
	na, err1 := v.ClearDrift(conds, ovA)
	nb, err2 := v.ClearDriftScan(conds, ovB)
	if err1 != nil || err2 != nil {
		t.Fatalf("errs %v %v", err1, err2)
	}
	if na != nb {
		t.Fatalf("ClearDrift %d != scan %d", na, nb)
	}
	if na > 0 && ovA.Epoch() == 0 {
		t.Fatal("mutating clear left epoch 0")
	}
	// Mutated overlay: sketched queries must be exact (scan fallback).
	if v.sketchEligible(ovA) && na > 0 {
		t.Fatal("mutated overlay still sketch-eligible")
	}
	got, _ := v.Count(conds, ovA)
	want, _ := v.CountScan(conds, ovB)
	if got != want {
		t.Fatalf("post-clear sketched count %+v != scan %+v", got, want)
	}
}

// TestSketchColumnarIngestEquivalence pins that the columnar append path
// feeds sketches identically to the row path: same data, byte-identical
// estimates.
func TestSketchColumnarIngestEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	base := time.Unix(0, 0).UTC()
	var entries []Entry
	for i := 0; i < 2000; i++ {
		entries = append(entries, Entry{
			Time:     base.Add(time.Duration(r.Intn(1000)) * time.Second),
			Drift:    r.Float64() < 0.3,
			SampleID: -1,
			Attrs: map[string]string{
				"app_version": fmt.Sprintf("1.%d", r.Intn(150)),
				AttrWeather:   fmt.Sprintf("w%d", r.Intn(6)),
			},
		})
	}
	cfg := sketchTestConfig()
	rowStore := NewStoreWithSketch(cfg)
	rowStore.AppendBatch(entries)
	colStore := NewStoreWithSketch(cfg)
	if err := colStore.AppendColumns(ColumnsFromEntries(entries)); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rowStore.SketchedAttrs(), colStore.SketchedAttrs()) {
		t.Fatalf("sketched attrs diverge: %v vs %v", rowStore.SketchedAttrs(), colStore.SketchedAttrs())
	}
	vr, vc := rowStore.All(), colStore.All()
	for _, w := range sketchWindows() {
		vr, vc = rowStore.Window(w[0], w[1]), colStore.Window(w[0], w[1])
		for _, val := range []string{"1.0", "1.3", "1.77", "1.149"} {
			conds := []Cond{{"app_version", val}}
			cr, err1 := vr.Count(conds, nil)
			cc, err2 := vc.Count(conds, nil)
			if err1 != nil || err2 != nil {
				t.Fatalf("errs %v %v", err1, err2)
			}
			if cr != cc {
				t.Fatalf("val %s: row-path %+v != columnar-path %+v", val, cr, cc)
			}
		}
	}
}

// TestSketchCompactRebuild pins that compaction rebuilds the sketches
// from the surviving rows: estimates stay one-sided and bounded against
// the post-compaction exact oracle.
func TestSketchCompactRebuild(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	s := sketchStore(r, 3000, 200, sketchTestConfig())
	base := time.Unix(0, 0).UTC()
	if removed := s.Compact(base.Add(500 * time.Second)); removed == 0 {
		t.Fatal("compaction removed nothing")
	}
	if got := s.SketchedAttrs(); len(got) != 1 {
		t.Fatalf("tiering must be sticky across compaction, got %v", got)
	}
	vb := s.All()
	vo := s.WindowScan(time.Time{}, time.Time{})
	for _, val := range []string{"1.0", "1.5", "1.123"} {
		conds := []Cond{{"app_version", val}}
		got, err1 := vb.Count(conds, nil)
		exact, err2 := vo.Count(conds, nil)
		if err1 != nil || err2 != nil {
			t.Fatalf("errs %v %v", err1, err2)
		}
		_, bound := vb.Approx(conds, nil)
		assertOneSided(t, "post-compact "+val, got, exact, bound)
	}
}

// TestSketchPersistRoundTrip pins that a snapshot round trip re-tiers the
// high-cardinality attribute and keeps estimates one-sided and bounded.
func TestSketchPersistRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	s := sketchStore(r, 2000, 200, sketchTestConfig())
	path := t.TempDir() + "/log.snap"
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded := NewStoreWithSketch(sketchTestConfig())
	if err := loaded.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.SketchedAttrs(), loaded.SketchedAttrs()) {
		t.Fatalf("sketched attrs diverge after round trip: %v vs %v", s.SketchedAttrs(), loaded.SketchedAttrs())
	}
	vb := loaded.All()
	vo := loaded.WindowScan(time.Time{}, time.Time{})
	for _, val := range []string{"1.1", "1.42"} {
		conds := []Cond{{"app_version", val}}
		got, _ := vb.Count(conds, nil)
		exact, _ := vo.Count(conds, nil)
		_, bound := vb.Approx(conds, nil)
		assertOneSided(t, "round-trip "+val, got, exact, bound)
	}
}

// FuzzSketchDifferential drives tiny sketch-tiered logs through the
// one-sided-and-bounded contract with fuzzer-chosen shapes.
func FuzzSketchDifferential(f *testing.F) {
	f.Add(int64(1), uint8(70), uint8(0))
	f.Add(int64(42), uint8(130), uint8(2))
	f.Add(int64(7), uint8(255), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, n uint8, windowSel uint8) {
		r := rand.New(rand.NewSource(seed))
		s := sketchStore(r, int(n), 64, sketchTestConfig())
		w := sketchWindows()[int(windowSel)%len(sketchWindows())]
		vb := s.Window(w[0], w[1])
		vo := s.WindowScan(w[0], w[1])
		for _, conds := range [][]Cond{
			{{"app_version", "1.1"}},
			{{"app_version", "1.9"}, {AttrWeather, "w2"}},
			{{AttrWeather, "w0"}},
		} {
			got, err1 := vb.Count(conds, nil)
			exact, err2 := vo.Count(conds, nil)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("error divergence: %v vs %v", err1, err2)
			}
			if err1 != nil {
				continue
			}
			approx, bound := vb.Approx(conds, nil)
			if !approx {
				if got != exact {
					t.Fatalf("conds %v: exact-path %+v != oracle %+v", conds, got, exact)
				}
				continue
			}
			if got.Total < exact.Total || got.Drift < exact.Drift {
				t.Fatalf("conds %v: sketch %+v below exact %+v", conds, got, exact)
			}
			if got.Total-exact.Total > bound || got.Drift-exact.Drift > bound {
				t.Fatalf("conds %v: sketch %+v exceeds exact %+v beyond bound %d", conds, got, exact, bound)
			}
		}
	})
}
