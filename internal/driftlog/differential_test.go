package driftlog

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"nazar/internal/tensor"
)

// randomStore builds a log with deliberately awkward shapes: attributes
// missing at random (so columns backfill and shard fills are odd),
// device cardinality varying per seed (so some shards stay empty),
// mixed Append/AppendBatch ingestion, and timestamps scattered so
// sub-windows cut through every shard's middle.
func randomStore(r *rand.Rand, n int) *Store {
	s := NewStore()
	devs := r.Intn(80) + 1
	base := time.Unix(0, 0).UTC()
	var batch []Entry
	for i := 0; i < n; i++ {
		attrs := map[string]string{}
		if r.Float64() < 0.95 {
			attrs[AttrWeather] = fmt.Sprintf("w%d", r.Intn(6))
		}
		if r.Float64() < 0.9 {
			attrs[AttrLocation] = fmt.Sprintf("city_%d", r.Intn(9))
		}
		if r.Float64() < 0.8 {
			attrs[AttrDevice] = fmt.Sprintf("dev_%d", r.Intn(devs))
		}
		e := Entry{
			Time:     base.Add(time.Duration(r.Intn(1000)) * time.Second),
			Drift:    r.Float64() < 0.3,
			SampleID: -1,
			Attrs:    attrs,
		}
		if r.Float64() < 0.5 {
			s.Append(e)
		} else {
			batch = append(batch, e)
		}
	}
	s.AppendBatch(batch)
	return s
}

// diffWindows are the window shapes each random log is probed with:
// unbounded, a middle slice, an empty slice past the data, and a thin
// slice.
func diffWindows() [][2]time.Time {
	base := time.Unix(0, 0).UTC()
	return [][2]time.Time{
		{{}, {}},
		{base.Add(200 * time.Second), base.Add(700 * time.Second)},
		{base.Add(5000 * time.Second), base.Add(6000 * time.Second)},
		{base.Add(500 * time.Second), base.Add(501 * time.Second)},
	}
}

// diffConds are the predicates each window is probed with, from empty
// to over-constrained to unknown-value.
func diffConds() [][]Cond {
	return [][]Cond{
		nil,
		{{AttrWeather, "w0"}},
		{{AttrWeather, "w1"}, {AttrLocation, "city_3"}},
		{{AttrWeather, "w2"}, {AttrLocation, "city_0"}, {AttrDevice, "dev_0"}},
		{{AttrWeather, "no-such-value"}},
	}
}

// TestBitsetMatchesScanOracle is the differential contract of the PR:
// every bitset-backed aggregate must be result-identical to the
// retained row-scan oracle, on indexed and index-free views, at pool
// widths 1 and 8.
func TestBitsetMatchesScanOracle(t *testing.T) {
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			tensor.SetMaxWorkers(workers)
			defer tensor.SetMaxWorkers(0)
			sizes := []int{0, 1, 63, 64, 65, 500, 3000}
			for seed := int64(0); seed < 12; seed++ {
				r := rand.New(rand.NewSource(seed))
				s := randomStore(r, sizes[int(seed)%len(sizes)])
				for wi, w := range diffWindows() {
					vb := s.Window(w[0], w[1])
					vs := s.WindowScan(w[0], w[1])
					if got, want := vb.Len(), vs.Len(); got != want {
						t.Fatalf("seed %d window %d: Len bitset %d scan %d", seed, wi, got, want)
					}
					for ci, conds := range diffConds() {
						cb, err1 := vb.Count(conds, nil)
						co, err2 := vb.CountScan(conds, nil)
						cs, err3 := vs.Count(conds, nil)
						// Attributes absent from a (possibly empty) log are
						// unknown; all three paths must agree on that too.
						if (err1 == nil) != (err2 == nil) || (err1 == nil) != (err3 == nil) {
							t.Fatalf("seed %d window %d conds %d: error divergence %v %v %v", seed, wi, ci, err1, err2, err3)
						}
						if err1 != nil {
							continue
						}
						if cb != co || cb != cs {
							t.Fatalf("seed %d window %d conds %d: bitset %+v oracle %+v scanview %+v",
								seed, wi, ci, cb, co, cs)
						}
					}
					// Unknown attribute: identical error on every path.
					bad := []Cond{{"no-such-attr", "x"}}
					if _, err := vb.Count(bad, nil); err == nil {
						t.Fatal("bitset Count accepted unknown attribute")
					}
					if _, err := vb.CountScan(bad, nil); err == nil {
						t.Fatal("CountScan accepted unknown attribute")
					}
					if avb, avs := vb.AttrValueCounts(nil), vb.AttrValueCountsScan(nil); !reflect.DeepEqual(avb, avs) {
						t.Fatalf("seed %d window %d: AttrValueCounts diverge\nbitset %v\nscan   %v", seed, wi, avb, avs)
					}
					if pb, ps := vb.PairCounts(nil, nil), vs.PairCounts(nil, nil); !reflect.DeepEqual(pb, ps) {
						t.Fatalf("seed %d window %d: PairCounts diverge", seed, wi)
					}
				}
			}
		})
	}
}

// TestPairCountsHighCardinality forces the bitset PairCounts path over
// its maxPairCross fallback (a value cross product too large to
// enumerate bitmap-by-bitmap) and requires scan-identical output.
func TestPairCountsHighCardinality(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	s := NewStore()
	base := time.Unix(0, 0).UTC()
	var batch []Entry
	for i := 0; i < 4000; i++ {
		batch = append(batch, Entry{
			Time:     base.Add(time.Duration(r.Intn(1000)) * time.Second),
			Drift:    r.Float64() < 0.3,
			SampleID: -1,
			Attrs: map[string]string{
				AttrLocation: fmt.Sprintf("city_%d", r.Intn(40)),
				AttrDevice:   fmt.Sprintf("dev_%d", r.Intn(40)),
				AttrWeather:  fmt.Sprintf("w%d", r.Intn(3)),
			},
		})
	}
	s.AppendBatch(batch)
	if cross := 40 * 40; cross <= maxPairCross {
		t.Fatalf("test needs cross %d > maxPairCross %d", cross, maxPairCross)
	}
	vb, vs := s.All(), s.WindowScan(time.Time{}, time.Time{})
	if pb, ps := vb.PairCounts(nil, nil), vs.PairCounts(nil, nil); !reflect.DeepEqual(pb, ps) {
		t.Fatal("high-cardinality PairCounts diverges from scan")
	}
	ex := map[string]bool{AttrWeather: true}
	if pb, ps := vb.PairCounts(nil, ex), vs.PairCounts(nil, ex); !reflect.DeepEqual(pb, ps) {
		t.Fatal("high-cardinality PairCounts with exclusion diverges from scan")
	}
}

// TestClearDriftMatchesScanOracle runs a clear/count sequence through
// two overlays on the same view — one driven by the bitset paths, one
// by the scan oracles — and requires identical clears, counts, and
// group-bys after every step.
func TestClearDriftMatchesScanOracle(t *testing.T) {
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			tensor.SetMaxWorkers(workers)
			defer tensor.SetMaxWorkers(0)
			for seed := int64(0); seed < 8; seed++ {
				r := rand.New(rand.NewSource(1000 + seed))
				s := randomStore(r, 2500)
				w := diffWindows()[int(seed)%len(diffWindows())]
				v := s.Window(w[0], w[1])
				ovB := v.DriftOverlay()
				ovS := v.DriftOverlay()
				if ovB.Epoch() != 0 || ovS.Epoch() != 0 {
					t.Fatal("fresh overlay epoch not 0")
				}
				for step, conds := range diffConds() {
					nb, err1 := v.ClearDrift(conds, ovB)
					ns, err2 := v.ClearDriftScan(conds, ovS)
					if err1 != nil || err2 != nil {
						t.Fatalf("seed %d step %d: errs %v %v", seed, step, err1, err2)
					}
					if nb != ns {
						t.Fatalf("seed %d step %d: cleared bitset %d scan %d", seed, step, nb, ns)
					}
					for _, probe := range diffConds() {
						cb, err1 := v.Count(probe, ovB)
						co, err2 := v.CountScan(probe, ovS)
						if err1 != nil || err2 != nil {
							t.Fatalf("seed %d step %d: probe errs %v %v", seed, step, err1, err2)
						}
						if cb != co {
							t.Fatalf("seed %d step %d probe %v: bitset %+v scan %+v", seed, step, probe, cb, co)
						}
					}
					ab := v.AttrValueCounts(ovB)
					as := v.AttrValueCountsScan(ovS)
					if !reflect.DeepEqual(ab, as) {
						t.Fatalf("seed %d step %d: overlaid AttrValueCounts diverge", seed, step)
					}
					if !reflect.DeepEqual(v.PairCounts(ovB, nil), v.PairCounts(ovS, nil)) {
						t.Fatalf("seed %d step %d: overlaid PairCounts diverge", seed, step)
					}
					if nb > 0 && ovB.Epoch() == 0 {
						t.Fatalf("seed %d step %d: mutating ClearDrift left epoch 0", seed, step)
					}
				}
				ovB.Release()
				ovS.Release()
			}
		})
	}
}

// TestSinceDeltaDecomposition pins the incremental-mining identity:
// counts over a grown window equal the previous window's counts plus
// counts over its Since-derived delta view, for both new appended rows
// and rows admitted by a later upper bound.
func TestSinceDeltaDecomposition(t *testing.T) {
	base := time.Unix(0, 0).UTC()
	for seed := int64(0); seed < 10; seed++ {
		r := rand.New(rand.NewSource(2000 + seed))
		s := randomStore(r, 1500)
		from := time.Time{}
		to1 := base.Add(600 * time.Second)
		v1 := s.Window(from, to1)
		prevRows := v1.ShardRows()
		_, to1n := v1.Bounds()

		var c1 [16]CountResult
		for i, conds := range diffConds()[:4] {
			cr, err := v1.Count(conds, nil)
			if err != nil {
				t.Fatal(err)
			}
			c1[i] = cr
		}
		len1 := v1.Len()

		// Grow the log and the window's upper bound.
		r2 := rand.New(rand.NewSource(3000 + seed))
		var batch []Entry
		for i := 0; i < 700; i++ {
			batch = append(batch, Entry{
				Time:     base.Add(time.Duration(r2.Intn(1000)) * time.Second),
				Drift:    r2.Float64() < 0.3,
				SampleID: -1,
				Attrs: map[string]string{
					AttrWeather:  fmt.Sprintf("w%d", r2.Intn(6)),
					AttrLocation: fmt.Sprintf("city_%d", r2.Intn(9)),
				},
			})
		}
		s.AppendBatch(batch)

		to2 := base.Add(900 * time.Second)
		v2 := s.Window(from, to2)
		delta, err := v2.Since(prevRows, to1n)
		if err != nil {
			t.Fatal(err)
		}
		for i, conds := range diffConds()[:4] {
			c2, err := v2.Count(conds, nil)
			if err != nil {
				t.Fatal(err)
			}
			cd, err := delta.Count(conds, nil)
			if err != nil {
				t.Fatal(err)
			}
			if c2.Total != c1[i].Total+cd.Total || c2.Drift != c1[i].Drift+cd.Drift {
				t.Fatalf("seed %d conds %d: full %+v != prev %+v + delta %+v", seed, i, c2, c1[i], cd)
			}
			// The delta's scan oracle must agree with its bitset path too.
			cdScan, err := delta.CountScan(conds, nil)
			if err != nil {
				t.Fatal(err)
			}
			if cd != cdScan {
				t.Fatalf("seed %d conds %d: delta bitset %+v scan %+v", seed, i, cd, cdScan)
			}
		}
		if v2.Len() != len1+delta.Len() {
			t.Fatalf("seed %d: Len %d != %d + %d", seed, v2.Len(), len1, delta.Len())
		}

		// An unchanged window decomposes into itself plus an empty delta.
		v3 := s.Window(from, to2)
		empty, err := v3.Since(v2.ShardRows(), to2.UnixNano())
		if err != nil {
			t.Fatal(err)
		}
		if got, err := empty.Count(nil, nil); err != nil || got.Total != 0 {
			t.Fatalf("seed %d: empty delta counted %+v err %v", seed, got, err)
		}
	}
}

// TestSinceValidation covers the watermark error paths.
func TestSinceValidation(t *testing.T) {
	s := randomStore(rand.New(rand.NewSource(7)), 100)
	v := s.All()
	if _, err := v.Since([]int{1, 2}, 0); err == nil {
		t.Fatal("short watermark slice accepted")
	}
	bad := v.ShardRows()
	bad[0] = v.shards[0].rows + 1
	if _, err := v.Since(bad, 0); err == nil {
		t.Fatal("out-of-range watermark accepted")
	}
}

// FuzzCountDifferential drives tiny random logs through the
// bitset-vs-scan contract with fuzzer-chosen shapes.
func FuzzCountDifferential(f *testing.F) {
	f.Add(int64(1), uint8(7), uint8(0))
	f.Add(int64(42), uint8(64), uint8(1))
	f.Add(int64(99), uint8(130), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, n uint8, windowSel uint8) {
		r := rand.New(rand.NewSource(seed))
		s := randomStore(r, int(n))
		w := diffWindows()[int(windowSel)%len(diffWindows())]
		vb := s.Window(w[0], w[1])
		vs := s.WindowScan(w[0], w[1])
		for _, conds := range diffConds() {
			cb, err1 := vb.Count(conds, nil)
			cs, err2 := vs.Count(conds, nil)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("error divergence: %v vs %v", err1, err2)
			}
			if cb != cs {
				t.Fatalf("conds %v: bitset %+v scan %+v", conds, cb, cs)
			}
		}
		ovB := vb.DriftOverlay()
		ovS := vb.DriftOverlay()
		defer ovB.Release()
		defer ovS.Release()
		conds := diffConds()[int(uint64(seed)%4+1)%len(diffConds())]
		nb, err1 := vb.ClearDrift(conds, ovB)
		ns, err2 := vb.ClearDriftScan(conds, ovS)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("clear error divergence: %v vs %v", err1, err2)
		}
		if nb != ns {
			t.Fatalf("cleared %d vs %d", nb, ns)
		}
		cb, _ := vb.Count(nil, ovB)
		cs, _ := vb.CountScan(nil, ovS)
		if cb != cs {
			t.Fatalf("post-clear totals %+v vs %+v", cb, cs)
		}
	})
}
