package driftlog

import (
	"bytes"
	"testing"
)

// FuzzReadFrom ensures the persistence decoder never panics on corrupted
// or truncated files.
func FuzzReadFrom(f *testing.F) {
	// Seed with a real serialized log and mutations of it.
	var buf bytes.Buffer
	if _, err := paperExample().WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("nazar-driftlog-v1\n"))
	f.Add([]byte("bogus-header\n123"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		s := NewStore()
		n, err := s.ReadFrom(bytes.NewReader(data))
		if err != nil {
			return
		}
		if int(n) != s.Len() {
			t.Fatalf("reported %d rows, stored %d", n, s.Len())
		}
		// The restored store must be fully queryable.
		if _, err := s.All().Count(nil, nil); err != nil {
			t.Fatal(err)
		}
	})
}
