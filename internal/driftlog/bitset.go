// Bitset index layer: per-(attribute, value) bitmaps maintained at
// append time in every shard, plus a bitset drift/clear overlay, so
// support counting (Count, ClearDrift, AttrValueCounts) is a word-wise
// AND + popcount instead of a row scan. The row-scan loops are retained
// as differential-test oracles (CountScan, ClearDriftScan,
// AttrValueCountsScan) — the same contract as the blocked-vs-naive
// tensor kernels.
//
// Concurrency model: a bitmap word is immutable once every row it covers
// has been appended, and appends only ever touch the word holding the
// row being written. A View therefore pins, per bitmap, the fully
// populated word prefix by reference (race-free against concurrent
// appends) plus a by-value copy of the one partial word at the pinned
// row boundary, taken under the shard lock (bmSnap.tail).
package driftlog

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
)

// onesCount is math/bits.OnesCount64 (named so driftlog.go needs no
// extra import).
func onesCount(w uint64) int { return bits.OnesCount64(w) }

// setBit grows words to cover bit i (zero-filling) and sets it.
func setBit(words []uint64, i int) []uint64 {
	w := i >> 6
	for len(words) <= w {
		words = append(words, 0)
	}
	words[w] |= 1 << (uint(i) & 63)
	return words
}

// bmSnap is an immutable snapshot of one bitmap at view-creation time:
// the fully populated word prefix (shared with the live bitmap) plus the
// partial word at the pinned row count, copied by value. A bitmap may be
// shorter than the shard when its value stopped appearing — missing
// words are implicitly zero.
type bmSnap struct {
	words []uint64
	tail  uint64 // logical word index fullWords; 0 when rows%64 == 0
}

// snapBitmap pins one live bitmap. fullWords = rows/64, rem = rows%64.
// Must be called under the shard lock.
func snapBitmap(live []uint64, fullWords int, rem uint) bmSnap {
	p := len(live)
	if p > fullWords {
		p = fullWords
	}
	s := bmSnap{words: live[:p]}
	if rem > 0 && len(live) > fullWords {
		s.tail = live[fullWords] & (1<<rem - 1)
	}
	return s
}

// word returns the bitmap word at index w (fullWords is the tail's
// logical position).
func (b bmSnap) word(w, fullWords int) uint64 {
	if w < len(b.words) {
		return b.words[w]
	}
	if w == fullWords {
		return b.tail
	}
	return 0
}

// effLen is the number of words that can be non-zero.
func (b bmSnap) effLen(fullWords int) int {
	if b.tail != 0 {
		return fullWords + 1
	}
	return len(b.words)
}

// overlayEpochSeq issues globally unique overlay epochs; epoch 0 always
// means "identical to the stored drift flags", which is what memoized
// support caches key on.
var overlayEpochSeq atomic.Uint64

// Overlay is the counterfactual drift overlay: a bitset copy of the
// stored drift flags that ClearDrift mutates without touching the log.
// An Overlay must only be used with the View that produced it. The zero
// epoch marks an overlay that still equals the stored flags; every
// mutating ClearDrift assigns a fresh globally unique epoch, which is
// the invalidation signal memoized support caches key on.
//
// Overlays are pooled: call Release when done to recycle the word
// buffers (using an overlay after Release is a caller bug).
type Overlay struct {
	v     *View
	epoch uint64
	// shards[si] is the materialized drift bitset of shard si (fully
	// covering its pinned rows), valid only while live[si] is set; an
	// unmaterialized shard means "unchanged from the stored drift
	// flags", so a fresh overlay allocates nothing. The buffers stay
	// attached across Release/DriftOverlay cycles, which is what makes
	// the steady-state counterfactual loop allocation-free.
	shards [numShards][]uint64
	live   [numShards]bool
}

var overlayPool = sync.Pool{New: func() any { return new(Overlay) }}

// DriftOverlay returns a fresh overlay equal to the stored drift flags.
// Shards materialize lazily on first mutation, so creation is O(1); the
// overlay and its buffers come from a pool (see Release).
func (v *View) DriftOverlay() *Overlay {
	ov := overlayPool.Get().(*Overlay)
	ov.v = v
	ov.epoch = 0
	return ov
}

// Epoch identifies the overlay's mutation state: 0 while identical to
// the stored drift flags, then a globally unique value after every
// mutating ClearDrift.
func (ov *Overlay) Epoch() uint64 { return ov.epoch }

// Release recycles the overlay (word buffers included) back to the
// pool. The overlay must not be used afterwards.
func (ov *Overlay) Release() {
	ov.live = [numShards]bool{}
	ov.v = nil
	ov.epoch = 0
	overlayPool.Put(ov)
}

// words returns shard si's materialized drift words, or nil while the
// shard still equals the stored flags. Nil-receiver safe.
func (ov *Overlay) words(si int) []uint64 {
	if ov == nil || !ov.live[si] {
		return nil
	}
	return ov.shards[si]
}

// materialize builds shard si's mutable word copy from the stored drift
// flags, reusing the buffer kept from earlier overlay cycles.
func (ov *Overlay) materialize(si int) []uint64 {
	if ov.live[si] {
		return ov.shards[si]
	}
	vs := &ov.v.shards[si]
	nw := (vs.rows + 63) >> 6
	w := ov.shards[si]
	if cap(w) < nw {
		w = make([]uint64, nw)
	} else {
		w = w[:nw]
	}
	if vs.indexed {
		copy(w, vs.driftBM.words)
		for i := len(vs.driftBM.words); i < nw; i++ {
			w[i] = 0
		}
		if rem := uint(vs.rows & 63); rem > 0 {
			w[vs.fullWords] = vs.driftBM.tail
		}
	} else {
		for i := range w {
			w[i] = 0
		}
		for i, d := range vs.drift {
			if d {
				w[i>>6] |= 1 << (uint(i) & 63)
			}
		}
	}
	ov.shards[si] = w
	ov.live[si] = true
	return w
}

// driftAt reads one row's (possibly overlaid) drift flag; a nil overlay
// reads the stored flag. This is the row-wise access path of the scan
// oracles and PairCounts.
func (ov *Overlay) driftAt(vs *viewShard, si, row int) bool {
	w := ov.words(si)
	if w == nil {
		return vs.drift[row]
	}
	return w[row>>6]&(1<<(uint(row)&63)) != 0
}

// Get reports the overlaid drift flag of row i in the view's row
// numbering (test/diagnostic helper; scans use driftAt).
func (ov *Overlay) Get(i int) bool {
	for si := range ov.v.shards {
		vs := &ov.v.shards[si]
		if i < vs.offset+vs.rows {
			return ov.driftAt(vs, si, i-vs.offset)
		}
	}
	return false
}

// bump assigns a fresh epoch after a mutating clear.
func (ov *Overlay) bump() { ov.epoch = overlayEpochSeq.Add(1) }

// condBitmaps resolves equality predicates onto one shard's value
// bitmaps. match=false means the predicate can never match in this
// shard. Attribute existence is checked by the caller (checkConds).
// dst is the caller's (stack) buffer for the common small-itemset case.
func (vs *viewShard) condBitmaps(conds []Cond, dst []bmSnap) (bms []bmSnap, match bool) {
	bms = dst[:0]
	for _, c := range conds {
		col, ok := vs.cols[c.Attr]
		if !ok {
			return nil, false // column never appeared in this shard
		}
		id := col.lookup(c.Value)
		if id == 0 {
			return nil, false // value never seen in this shard
		}
		if int(id) >= len(col.bits) {
			return nil, false
		}
		bms = append(bms, col.bits[id])
	}
	return bms, true
}

// andPopcount intersects the condition bitmaps with the shard's window
// bitmap and returns the matching row count plus, of those, the rows
// whose drift flag is set — read from ovWords when non-nil, the stored
// drift bitmap otherwise. Pure word-wise AND + popcount: O(rows/64).
func (vs *viewShard) andPopcount(bms []bmSnap, ovWords []uint64) (total, drift int) {
	fw := vs.fullWords
	n := vs.window.effLen(fw)
	for _, bm := range bms {
		if e := bm.effLen(fw); e < n {
			n = e
		}
	}
	for w := 0; w < n; w++ {
		acc := vs.window.word(w, fw)
		for _, bm := range bms {
			acc &= bm.word(w, fw)
		}
		if acc == 0 {
			continue
		}
		total += bits.OnesCount64(acc)
		var dw uint64
		if ovWords != nil {
			dw = ovWords[w]
		} else {
			dw = vs.driftBM.word(w, fw)
		}
		drift += bits.OnesCount64(acc & dw)
	}
	return total, drift
}

// checkConds validates attribute names against the view's pinned
// registry (the unsharded store's unknown-attribute contract).
func (v *View) checkConds(conds []Cond) error {
	for _, c := range conds {
		if !v.attrs[c.Attr] {
			return fmt.Errorf("driftlog: unknown attribute %q", c.Attr)
		}
	}
	return nil
}

// countBitset is the indexed Count path: word-wise AND + popcount per
// shard, sequential (popcounting a shard is far below the parallel
// fan-out's break-even point).
func (v *View) countBitset(conds []Cond, ov *Overlay) (CountResult, error) {
	if err := v.checkConds(conds); err != nil {
		return CountResult{}, err
	}
	var out CountResult
	var buf [4]bmSnap
	for si := range v.shards {
		vs := &v.shards[si]
		if vs.rows == 0 {
			continue
		}
		bms, match := vs.condBitmaps(conds, buf[:])
		if !match {
			continue
		}
		t, d := vs.andPopcount(bms, ov.words(si))
		out.Total += t
		out.Drift += d
	}
	return out, nil
}

// clearDriftBitset clears the overlaid drift flag of every in-window
// row matching the conditions: overlay &^= (conds AND window), counting
// cleared bits by popcount.
func (v *View) clearDriftBitset(conds []Cond, ov *Overlay) (int, error) {
	if err := v.checkConds(conds); err != nil {
		return 0, err
	}
	cleared := 0
	var buf [4]bmSnap
	for si := range v.shards {
		vs := &v.shards[si]
		if vs.rows == 0 {
			continue
		}
		bms, match := vs.condBitmaps(conds, buf[:])
		if !match {
			continue
		}
		fw := vs.fullWords
		n := vs.window.effLen(fw)
		for _, bm := range bms {
			if e := bm.effLen(fw); e < n {
				n = e
			}
		}
		var ovWords []uint64
		for w := 0; w < n; w++ {
			acc := vs.window.word(w, fw)
			for _, bm := range bms {
				acc &= bm.word(w, fw)
			}
			if acc == 0 {
				continue
			}
			if ovWords == nil {
				ovWords = ov.materialize(si)
			}
			if hit := ovWords[w] & acc; hit != 0 {
				cleared += bits.OnesCount64(hit)
				ovWords[w] &^= hit
			}
		}
	}
	if cleared > 0 {
		ov.bump()
	}
	return cleared, nil
}

// attrValueCountsBitset is the indexed grouped aggregation: one
// AND+popcount per (attribute, value) bitmap instead of a row scan.
func (v *View) attrValueCountsBitset(dst map[string]map[string]CountResult, ov *Overlay) map[string]map[string]CountResult {
	out := resetAttrValueCounts(dst, v)
	for si := range v.shards {
		vs := &v.shards[si]
		if vs.rows == 0 {
			continue
		}
		ovWords := ov.words(si)
		var one [1]bmSnap
		for name, col := range vs.cols {
			byVal := out[name]
			for id := 1; id < len(col.bits); id++ {
				one[0] = col.bits[id]
				t, d := vs.andPopcount(one[:], ovWords)
				if t == 0 {
					continue
				}
				if byVal == nil {
					byVal = map[string]CountResult{}
					out[name] = byVal
				}
				cr := byVal[col.dict[id]]
				cr.Total += t
				cr.Drift += d
				byVal[col.dict[id]] = cr
			}
		}
	}
	return out
}

// resetAttrValueCounts prepares the result map, reusing dst's maps when
// provided (AttrValueCountsInto's steady-state zero-allocation path).
func resetAttrValueCounts(dst map[string]map[string]CountResult, v *View) map[string]map[string]CountResult {
	if dst == nil {
		dst = make(map[string]map[string]CountResult, len(v.attrs))
	}
	for name, byVal := range dst {
		if !v.attrs[name] {
			delete(dst, name)
			continue
		}
		for val := range byVal {
			delete(byVal, val)
		}
	}
	for name := range v.attrs {
		if dst[name] == nil {
			dst[name] = map[string]CountResult{}
		}
	}
	return dst
}

// maxPairCross bounds the value cross product per attribute pair that
// the bitset PairCounts path enumerates. A pair of value bitmaps costs
// ~rows/64 word operations, a row visit costs one map update (~20x a
// word op), so popcounting wins while |Va|·|Vb| stays under a few
// hundred; beyond that the shard falls back to a row scan for that
// attribute pair only.
const maxPairCross = 1024

// pairCountsBitset is the indexed PairCounts path: for each attribute
// pair, AND the window with each value bitmap of the first attribute
// once, then popcount against each value bitmap of the second.
func (v *View) pairCountsBitset(ov *Overlay, exclude map[string]bool) map[PairKey]CountResult {
	out := map[PairKey]CountResult{}
	var tmp []uint64
	for si := range v.shards {
		vs := &v.shards[si]
		if vs.rows == 0 {
			continue
		}
		cols := vs.sortedCols(exclude)
		fw := vs.fullWords
		ovWords := ov.words(si)
		n := vs.window.effLen(fw)
		if cap(tmp) < n {
			tmp = make([]uint64, n)
		}
		for a := 0; a < len(cols); a++ {
			for b := a + 1; b < len(cols); b++ {
				ca, cb := cols[a].c, cols[b].c
				if ca.sketched || cb.sketched {
					// Handled by pairCountsSketchSection (the pair ring
					// or its exact scan fallback).
					continue
				}
				if (len(ca.dict)-1)*(len(cb.dict)-1) > maxPairCross {
					vs.pairScanInto(v, ov, si, cols[a].name, ca, cols[b].name, cb, out)
					continue
				}
				for ida := 1; ida < len(ca.bits); ida++ {
					bmA := ca.bits[ida]
					na := bmA.effLen(fw)
					if na > n {
						na = n
					}
					any := uint64(0)
					for w := 0; w < na; w++ {
						tmp[w] = vs.window.word(w, fw) & bmA.word(w, fw)
						any |= tmp[w]
					}
					if any == 0 {
						continue
					}
					for idb := 1; idb < len(cb.bits); idb++ {
						bmB := cb.bits[idb]
						nb := bmB.effLen(fw)
						if nb > na {
							nb = na
						}
						total, drift := 0, 0
						for w := 0; w < nb; w++ {
							acc := tmp[w] & bmB.word(w, fw)
							if acc == 0 {
								continue
							}
							total += bits.OnesCount64(acc)
							var dw uint64
							if ovWords != nil {
								dw = ovWords[w]
							} else {
								dw = vs.driftBM.word(w, fw)
							}
							drift += bits.OnesCount64(acc & dw)
						}
						if total == 0 {
							continue
						}
						k := PairKey{
							AttrA: cols[a].name, ValA: ca.dict[ida],
							AttrB: cols[b].name, ValB: cb.dict[idb],
						}
						cr := out[k]
						cr.Total += total
						cr.Drift += drift
						out[k] = cr
					}
				}
			}
		}
	}
	return out
}

// pairScanInto is pairCountsBitset's per-attribute-pair row-scan
// fallback for value cross products too large to enumerate.
func (vs *viewShard) pairScanInto(v *View, ov *Overlay, si int, aName string, ca viewCol, bName string, cb viewCol, out map[PairKey]CountResult) {
	for i := 0; i < vs.rows; i++ {
		if !vs.inWindow(v, i) {
			continue
		}
		ida := ca.ids[i]
		if ida == 0 {
			continue
		}
		idb := cb.ids[i]
		if idb == 0 {
			continue
		}
		k := PairKey{AttrA: aName, ValA: ca.dict[ida], AttrB: bName, ValB: cb.dict[idb]}
		cr := out[k]
		cr.Total++
		if ov.driftAt(vs, si, i) {
			cr.Drift++
		}
		out[k] = cr
	}
}
