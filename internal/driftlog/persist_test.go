package driftlog

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestWriteReadRoundTrip(t *testing.T) {
	src := paperExample()
	var buf bytes.Buffer
	n, err := src.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("wrote %d rows", n)
	}
	dst := NewStore()
	m, err := dst.ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m != 5 || dst.Len() != 5 {
		t.Fatalf("read %d rows, len %d", m, dst.Len())
	}
	for i := 0; i < 5; i++ {
		a, b := src.Entry(i), dst.Entry(i)
		if !a.Time.Equal(b.Time) || a.Drift != b.Drift || a.SampleID != b.SampleID {
			t.Fatalf("row %d differs: %+v vs %+v", i, a, b)
		}
		for k, v := range a.Attrs {
			if b.Attrs[k] != v {
				t.Fatalf("row %d attr %s: %q vs %q", i, k, v, b.Attrs[k])
			}
		}
	}
	// Queries must behave identically on the restored store.
	cr, err := dst.All().Count([]Cond{{AttrWeather, "snow"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Total != 2 || cr.Drift != 2 {
		t.Fatalf("restored count %+v", cr)
	}
}

func TestReadRejectsBadHeader(t *testing.T) {
	s := NewStore()
	if _, err := s.ReadFrom(strings.NewReader("not-a-driftlog\n")); err == nil {
		t.Fatal("expected header error")
	}
	if _, err := s.ReadFrom(strings.NewReader("")); err == nil {
		t.Fatal("expected EOF error")
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "drift.log")
	src := paperExample()
	if err := src.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	dst := NewStore()
	if err := dst.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != src.Len() {
		t.Fatalf("restored %d of %d rows", dst.Len(), src.Len())
	}
	// Loading on top of existing data appends.
	if err := dst.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != 2*src.Len() {
		t.Fatalf("append-load gave %d rows", dst.Len())
	}
}

func TestLoadFileMissing(t *testing.T) {
	s := NewStore()
	if err := s.LoadFile(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("expected error")
	}
}

func TestPersistLargeLog(t *testing.T) {
	s := NewStore()
	now := time.Now().UTC().Truncate(time.Microsecond)
	for i := 0; i < 2000; i++ {
		s.Append(Entry{
			Time: now.Add(time.Duration(i) * time.Second), Drift: i%3 == 0, SampleID: int64(i % 7),
			Attrs: map[string]string{AttrWeather: []string{"rain", "snow"}[i%2]},
		})
	}
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	restored := NewStore()
	if _, err := restored.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	a, _ := s.All().Count([]Cond{{AttrWeather, "rain"}}, nil)
	b, _ := restored.All().Count([]Cond{{AttrWeather, "rain"}}, nil)
	if a != b {
		t.Fatalf("counts differ: %+v vs %+v", a, b)
	}
}

func TestCompact(t *testing.T) {
	s := paperExample()
	day := time.Date(2020, 1, 15, 0, 0, 0, 0, time.UTC)
	removed := s.Compact(day.Add(7 * time.Hour))
	if removed != 3 {
		t.Fatalf("removed %d, want 3", removed)
	}
	if s.Len() != 2 {
		t.Fatalf("len %d", s.Len())
	}
	// Remaining rows: the two snow entries; queries still work.
	cr, err := s.All().Count([]Cond{{AttrWeather, "snow"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Total != 2 || cr.Drift != 2 {
		t.Fatalf("post-compaction count %+v", cr)
	}
	// Vanished values no longer match anything.
	cr, err = s.All().Count([]Cond{{AttrWeather, "clear-day"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Total != 0 {
		t.Fatalf("clear-day survived compaction: %+v", cr)
	}
	// Appending after compaction keeps columns aligned.
	s.Append(Entry{Time: day.Add(20 * time.Hour), Drift: false, SampleID: -1,
		Attrs: map[string]string{AttrWeather: "clear-day"}})
	if s.Len() != 3 {
		t.Fatalf("len after append %d", s.Len())
	}
	e := s.Entry(2)
	if e.Attrs[AttrWeather] != "clear-day" {
		t.Fatalf("appended entry %+v", e)
	}
	// No-op compaction.
	if got := s.Compact(time.Date(2019, 1, 1, 0, 0, 0, 0, time.UTC)); got != 0 {
		t.Fatalf("no-op compaction removed %d", got)
	}
}
