package driftlog

import (
	"strconv"
	"testing"
	"time"
)

// TestStoreEach checks the bulk iterator agrees with Entry(i) on order
// and content — Each is the O(n log n) path the chaos audits use.
func TestStoreEach(t *testing.T) {
	s := NewStore()
	const n = 500
	base := time.Unix(0, 0).UTC()
	for i := 0; i < n; i++ {
		s.Append(Entry{
			Time:     base.Add(time.Duration(i) * time.Second),
			Attrs:    map[string]string{"seq": strconv.Itoa(i), AttrDevice: "d"},
			Drift:    i%3 == 0,
			SampleID: -1,
		})
	}
	visited := 0
	s.Each(func(i int, e Entry) {
		if i != visited {
			t.Fatalf("Each index %d, want %d", i, visited)
		}
		want := s.Entry(i)
		if e.Time != want.Time || e.Drift != want.Drift || e.Attrs["seq"] != want.Attrs["seq"] {
			t.Fatalf("Each row %d = %+v, Entry(%d) = %+v", i, e, i, want)
		}
		visited++
	})
	if visited != n {
		t.Fatalf("Each visited %d rows, want %d", visited, n)
	}
}
