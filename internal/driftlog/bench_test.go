package driftlog

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// benchStore100k memoizes the 100k-row benchmark log shared by every
// benchmark in this file (building it dominates -benchtime otherwise).
var benchStore100k = sync.OnceValue(func() *Store {
	s := NewStore()
	base := time.Unix(0, 0).UTC()
	entries := make([]Entry, 0, 100000)
	for i := 0; i < 100000; i++ {
		entries = append(entries, Entry{
			Time:     base.Add(time.Duration(i) * time.Millisecond),
			Drift:    i%3 == 0,
			SampleID: -1,
			Attrs: map[string]string{
				AttrWeather:  []string{"clear-day", "rain", "snow", "fog"}[i%4],
				AttrLocation: fmt.Sprintf("city_%d", i%10),
				AttrDevice:   fmt.Sprintf("dev_%d", i%64),
			},
		})
	}
	s.AppendBatch(entries)
	return s
})

var benchConds = []Cond{{AttrWeather, "rain"}, {AttrLocation, "city_3"}}

// BenchmarkCount pits the popcount path against the retained row-scan
// oracle on the same 100k-row log (the scan/bitset variant pair is what
// cmd/benchjson folds into a speedup).
func BenchmarkCount(b *testing.B) {
	s := benchStore100k()
	b.Run("scan/100k", func(b *testing.B) {
		v := s.WindowScan(time.Time{}, time.Time{})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := v.Count(benchConds, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bitset/100k", func(b *testing.B) {
		v := s.All()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := v.Count(benchConds, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkClearDrift measures one overlay cycle: acquire, clear every
// row matching the conditions, release.
func BenchmarkClearDrift(b *testing.B) {
	s := benchStore100k()
	b.Run("scan/100k", func(b *testing.B) {
		v := s.All()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ov := v.DriftOverlay()
			if _, err := v.ClearDriftScan(benchConds, ov); err != nil {
				b.Fatal(err)
			}
			ov.Release()
		}
	})
	b.Run("bitset/100k", func(b *testing.B) {
		v := s.All()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ov := v.DriftOverlay()
			if _, err := v.ClearDrift(benchConds, ov); err != nil {
				b.Fatal(err)
			}
			ov.Release()
		}
	})
}

// BenchmarkPairCounts measures the level-2 apriori pair aggregation.
func BenchmarkPairCounts(b *testing.B) {
	s := benchStore100k()
	b.Run("scan/100k", func(b *testing.B) {
		v := s.All()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v.PairCountsScan(nil, nil)
		}
	})
	b.Run("bitset/100k", func(b *testing.B) {
		v := s.All()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v.PairCounts(nil, nil)
		}
	})
}

// BenchmarkAttrValueCounts measures the level-1 apriori group-by.
func BenchmarkAttrValueCounts(b *testing.B) {
	s := benchStore100k()
	b.Run("scan/100k", func(b *testing.B) {
		v := s.All()
		var dst map[string]map[string]CountResult
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dst = v.attrValueCountsScanInto(dst, nil)
		}
	})
	b.Run("bitset/100k", func(b *testing.B) {
		v := s.All()
		var dst map[string]map[string]CountResult
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dst = v.AttrValueCountsInto(dst, nil)
		}
	})
}
