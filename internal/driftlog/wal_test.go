package driftlog

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// walBatch fabricates a deterministic ingest batch: n entries starting
// at sequence number seq, with device/weather attributes and a drift
// flag pattern that exercises both bitmap polarities.
func walBatch(seq, n int) []Entry {
	base := time.Date(2026, 1, 2, 3, 0, 0, 0, time.UTC)
	entries := make([]Entry, n)
	for i := range entries {
		k := seq + i
		cond := "clear"
		if k%3 == 0 {
			cond = "snow"
		}
		entries[i] = Entry{
			Time: base.Add(time.Duration(k) * time.Second),
			Attrs: map[string]string{
				AttrDevice:  fmt.Sprintf("dev_%d", k%5),
				AttrWeather: cond,
				"seq":       fmt.Sprintf("%d", k),
			},
			Drift:    k%3 == 0,
			SampleID: int64(k),
		}
	}
	return entries
}

// requireStoresEqual asserts two stores are query-identical: same rows
// in the same canonical order, and the same answers from both the
// bitset-indexed and scan aggregation paths.
func requireStoresEqual(t *testing.T, want, got *Store) {
	t.Helper()
	if want.Len() != got.Len() {
		t.Fatalf("row count: want %d got %d", want.Len(), got.Len())
	}
	for i := 0; i < want.Len(); i++ {
		we, ge := want.Entry(i), got.Entry(i)
		if !we.Time.Equal(ge.Time) || we.Drift != ge.Drift || we.SampleID != ge.SampleID {
			t.Fatalf("row %d: want %+v got %+v", i, we, ge)
		}
		if len(we.Attrs) != len(ge.Attrs) {
			t.Fatalf("row %d attrs: want %v got %v", i, we.Attrs, ge.Attrs)
		}
		for k, v := range we.Attrs {
			if ge.Attrs[k] != v {
				t.Fatalf("row %d attr %q: want %q got %q", i, k, v, ge.Attrs[k])
			}
		}
	}
	wv, gv := want.All(), got.All()
	wav := wv.AttrValueCounts(wv.DriftOverlay())
	gav := gv.AttrValueCounts(gv.DriftOverlay())
	if len(wav) != len(gav) {
		t.Fatalf("AttrValueCounts attrs: want %d got %d", len(wav), len(gav))
	}
	for attr, vals := range wav {
		for val, wc := range vals {
			if gc := gav[attr][val]; gc != wc {
				t.Fatalf("AttrValueCounts[%s][%s]: want %+v got %+v", attr, val, wc, gc)
			}
		}
	}
	// Index equality: the bitset path on the replayed store must agree
	// with the scan path (which ignores the index entirely).
	for _, cond := range []Cond{{AttrWeather, "snow"}, {AttrDevice, "dev_2"}} {
		idx, err := gv.Count([]Cond{cond}, nil)
		if err != nil {
			t.Fatalf("Count(%v): %v", cond, err)
		}
		scan, err := gv.CountScan([]Cond{cond}, nil)
		if err != nil {
			t.Fatalf("CountScan(%v): %v", cond, err)
		}
		if idx != scan {
			t.Fatalf("replayed index disagrees with scan for %v: index %+v scan %+v", cond, idx, scan)
		}
		ref, err := wv.Count([]Cond{cond}, nil)
		if err != nil {
			t.Fatalf("reference Count(%v): %v", cond, err)
		}
		if idx != ref {
			t.Fatalf("Count(%v): want %+v got %+v", cond, ref, idx)
		}
	}
}

func listWALFiles(t *testing.T, dir string) (segs, snaps []string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("readdir: %v", err)
	}
	for _, e := range ents {
		switch {
		case strings.HasSuffix(e.Name(), ".seg"):
			segs = append(segs, e.Name())
		case strings.HasSuffix(e.Name(), ".driftlog"):
			snaps = append(snaps, e.Name())
		}
	}
	sort.Strings(segs)
	sort.Strings(snaps)
	return segs, snaps
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	live := NewStore()
	w, err := OpenWAL(dir, live, WALOptions{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := 0; i < 7; i++ {
		batch := walBatch(i*9, 9)
		if err := w.Append(batch); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		live.AppendBatch(batch)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	replayed := NewStore()
	w2, err := OpenWAL(dir, replayed, WALOptions{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer w2.Close()
	rec := w2.Recovery()
	if rec.TornTail {
		t.Fatalf("unexpected torn tail: %+v", rec)
	}
	if rec.Records != 7 || rec.Rows != 63 {
		t.Fatalf("recovery: want 7 records / 63 rows, got %+v", rec)
	}
	requireStoresEqual(t, live, replayed)
}

func TestWALAppendEmptyAndClosed(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, NewStore(), WALOptions{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := w.Append(nil); err != nil {
		t.Fatalf("empty append: %v", err)
	}
	if st := w.Stats(); st.Appends != 0 {
		t.Fatalf("empty append counted: %+v", st)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	if err := w.Append(walBatch(0, 1)); !errors.Is(err, ErrWALClosed) {
		t.Fatalf("append after close: want ErrWALClosed, got %v", err)
	}
}

func TestWALSever(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, NewStore(), WALOptions{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := w.Append(walBatch(0, 4)); err != nil {
		t.Fatalf("append: %v", err)
	}
	w.Sever()
	w.Sever() // idempotent
	if err := w.Append(walBatch(4, 1)); !errors.Is(err, ErrWALSevered) {
		t.Fatalf("append after sever: want ErrWALSevered, got %v", err)
	}
	// The pre-sever append was acked, so it must replay.
	replayed := NewStore()
	w2, err := OpenWAL(dir, replayed, WALOptions{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer w2.Close()
	if replayed.Len() != 4 {
		t.Fatalf("rows after sever+replay: want 4 got %d", replayed.Len())
	}
}

func TestWALRotation(t *testing.T) {
	dir := t.TempDir()
	live := NewStore()
	// Tiny threshold: every batch crosses it, so every append rotates.
	w, err := OpenWAL(dir, live, WALOptions{SegmentBytes: 64})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := 0; i < 5; i++ {
		batch := walBatch(i*3, 3)
		if err := w.Append(batch); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		live.AppendBatch(batch)
	}
	st := w.Stats()
	if st.Rotations != 5 {
		t.Fatalf("rotations: want 5 got %d", st.Rotations)
	}
	if st.SealedSegments != 5 {
		t.Fatalf("sealed: want 5 got %d", st.SealedSegments)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	segs, _ := listWALFiles(t, dir)
	if len(segs) != 6 { // 5 sealed + 1 empty active
		t.Fatalf("segment files: want 6 got %d (%v)", len(segs), segs)
	}

	replayed := NewStore()
	w2, err := OpenWAL(dir, replayed, WALOptions{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer w2.Close()
	if rec := w2.Recovery(); rec.Segments != 6 || rec.Rows != 15 {
		t.Fatalf("recovery: %+v", rec)
	}
	requireStoresEqual(t, live, replayed)
}

func TestWALExplicitRotateAndCompact(t *testing.T) {
	dir := t.TempDir()
	live := NewStore()
	w, err := OpenWAL(dir, live, WALOptions{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := 0; i < 3; i++ {
		batch := walBatch(i*4, 4)
		if err := w.Append(batch); err != nil {
			t.Fatalf("append: %v", err)
		}
		live.AppendBatch(batch)
		if err := w.Rotate(); err != nil {
			t.Fatalf("rotate: %v", err)
		}
	}
	if err := w.Compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	st := w.Stats()
	if st.SealedSegments != 0 || st.Compactions != 1 {
		t.Fatalf("post-compact stats: %+v", st)
	}
	if st.SnapshotSegment != 3 {
		t.Fatalf("snapshot segment: want 3 got %d", st.SnapshotSegment)
	}
	segs, snaps := listWALFiles(t, dir)
	if len(snaps) != 1 {
		t.Fatalf("snapshots: want 1 got %v", snaps)
	}
	if len(segs) != 1 { // only the active segment survives
		t.Fatalf("segments after compact: want 1 got %v", segs)
	}
	// Appends continue after compaction and land after the snapshot rows.
	tail := walBatch(12, 4)
	if err := w.Append(tail); err != nil {
		t.Fatalf("post-compact append: %v", err)
	}
	live.AppendBatch(tail)
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	replayed := NewStore()
	w2, err := OpenWAL(dir, replayed, WALOptions{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer w2.Close()
	if rec := w2.Recovery(); rec.SnapshotRows != 12 || rec.Rows != 4 {
		t.Fatalf("recovery: %+v", rec)
	}
	requireStoresEqual(t, live, replayed)
	// Idempotent compaction: nothing sealed, nothing to do.
	if err := w2.Compact(); err != nil {
		t.Fatalf("empty compact: %v", err)
	}
}

func TestWALAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	live := NewStore()
	w, err := OpenWAL(dir, live, WALOptions{SegmentBytes: 64, CompactSegments: 3})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := 0; i < 9; i++ {
		batch := walBatch(i*3, 3)
		if err := w.Append(batch); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		live.AppendBatch(batch)
	}
	if err := w.Close(); err != nil { // waits for background compaction
		t.Fatalf("close: %v", err)
	}
	if err := w.CompactionErr(); err != nil {
		t.Fatalf("background compaction: %v", err)
	}
	if st := w.Stats(); st.Compactions == 0 {
		t.Fatalf("auto-compaction never fired: %+v", st)
	}
	replayed := NewStore()
	w2, err := OpenWAL(dir, replayed, WALOptions{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer w2.Close()
	requireStoresEqual(t, live, replayed)
}

func TestWALTornTailRecovery(t *testing.T) {
	cases := []struct {
		name string
		// mutate damages the final segment after a clean close.
		mutate func(t *testing.T, path string)
	}{
		{"garbage appended", func(t *testing.T, path string) {
			f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			// A frame header claiming more payload than exists.
			if _, err := f.Write([]byte{0xFF, 0x00, 0x00, 0x00, 1, 2, 3}); err != nil {
				t.Fatal(err)
			}
			f.Close()
		}},
		{"truncated mid-record", func(t *testing.T, path string) {
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, fi.Size()-5); err != nil {
				t.Fatal(err)
			}
		}},
		{"flipped payload bit", func(t *testing.T, path string) {
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			b[len(b)-1] ^= 0x40
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			w, err := OpenWAL(dir, NewStore(), WALOptions{})
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			good := walBatch(0, 6)
			if err := w.Append(good[:3]); err != nil {
				t.Fatalf("append: %v", err)
			}
			if err := w.Append(good[3:]); err != nil {
				t.Fatalf("append: %v", err)
			}
			if err := w.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			segs, _ := listWALFiles(t, dir)
			last := filepath.Join(dir, segs[len(segs)-1])
			tc.mutate(t, last)
			goodSize := int64(len(walMagic))
			if fi, err := os.Stat(filepath.Join(dir, segs[0])); err == nil {
				goodSize = fi.Size()
			}

			// Damage in the final segment: tolerated, truncated, reported.
			// The second record is only torn in the cases that damage it;
			// assert the recovered prefix is a prefix of the good batch.
			replayed := NewStore()
			w2, err := OpenWAL(dir, replayed, WALOptions{})
			if err != nil {
				t.Fatalf("reopen with torn tail: %v", err)
			}
			rec := w2.Recovery()
			if !rec.TornTail {
				t.Fatalf("torn tail not reported: %+v", rec)
			}
			if replayed.Len() > 6 || replayed.Len() < 3 && tc.name != "flipped payload bit" {
				t.Fatalf("recovered %d rows, want a sane prefix", replayed.Len())
			}
			for i := 0; i < replayed.Len(); i++ {
				if got, want := replayed.Entry(i).Attrs["seq"], good[i].Attrs["seq"]; got != want {
					t.Fatalf("row %d: got seq %s want %s", i, got, want)
				}
			}
			if err := w2.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			_ = goodSize

			// Third open: the tail was truncated (or removed), so recovery
			// is now clean and yields the same rows.
			again := NewStore()
			w3, err := OpenWAL(dir, again, WALOptions{})
			if err != nil {
				t.Fatalf("third open: %v", err)
			}
			defer w3.Close()
			if rec := w3.Recovery(); rec.TornTail {
				t.Fatalf("torn tail reported twice — truncation did not stick: %+v", rec)
			}
			if again.Len() != replayed.Len() {
				t.Fatalf("row count changed across reopen: %d vs %d", again.Len(), replayed.Len())
			}
		})
	}
}

func TestWALCorruptSealedSegmentRefusesOpen(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, NewStore(), WALOptions{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := w.Append(walBatch(0, 4)); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := w.Rotate(); err != nil {
		t.Fatalf("rotate: %v", err)
	}
	if err := w.Append(walBatch(4, 4)); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	segs, _ := listWALFiles(t, dir)
	if len(segs) < 2 {
		t.Fatalf("need ≥2 segments, got %v", segs)
	}
	// Corrupt the FIRST (sealed, non-final) segment: not a torn tail,
	// so replay must refuse with a typed error.
	first := filepath.Join(dir, segs[0])
	b, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xFF
	if err := os.WriteFile(first, b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = OpenWAL(dir, NewStore(), WALOptions{})
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CorruptError, got %v", err)
	}
	if ce.Path != first {
		t.Fatalf("corrupt path: want %s got %s", first, ce.Path)
	}
	if ce.Offset == 0 {
		t.Fatalf("corrupt offset should be past the header: %+v", ce)
	}
}

func TestWALBadMagicRefusesOpen(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, NewStore(), WALOptions{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := w.Append(walBatch(0, 2)); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := w.Rotate(); err != nil {
		t.Fatalf("rotate: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	segs, _ := listWALFiles(t, dir)
	first := filepath.Join(dir, segs[0])
	b, _ := os.ReadFile(first)
	copy(b, "BOGUS!!!")
	if err := os.WriteFile(first, b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = OpenWAL(dir, NewStore(), WALOptions{})
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CorruptError for bad magic, got %v", err)
	}
}

func TestWALCorruptSnapshotRefusesOpen(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, NewStore(), WALOptions{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := w.Append(walBatch(0, 6)); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := w.Rotate(); err != nil {
		t.Fatalf("rotate: %v", err)
	}
	if err := w.Compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	_, snaps := listWALFiles(t, dir)
	if len(snaps) != 1 {
		t.Fatalf("want one snapshot, got %v", snaps)
	}
	path := filepath.Join(dir, snaps[0])
	b, _ := os.ReadFile(path)
	if err := os.WriteFile(path, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = OpenWAL(dir, NewStore(), WALOptions{})
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CorruptError for truncated snapshot, got %v", err)
	}
	if ce.Path != path {
		t.Fatalf("corrupt path: want %s got %s", path, ce.Path)
	}
}

func TestWALReadOnly(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, NewStore(), WALOptions{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := w.Append(walBatch(0, 5)); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	segsBefore, _ := listWALFiles(t, dir)

	s := NewStore()
	ro, err := OpenWAL(dir, s, WALOptions{ReadOnly: true})
	if err != nil {
		t.Fatalf("ro open: %v", err)
	}
	if s.Len() != 5 {
		t.Fatalf("ro replay rows: want 5 got %d", s.Len())
	}
	if err := ro.Append(walBatch(5, 1)); !errors.Is(err, ErrWALReadOnly) {
		t.Fatalf("ro append: want ErrWALReadOnly, got %v", err)
	}
	segsAfter, _ := listWALFiles(t, dir)
	if len(segsAfter) != len(segsBefore) {
		t.Fatalf("read-only open mutated the directory: %v -> %v", segsBefore, segsAfter)
	}
}

func TestWALConcurrentAppend(t *testing.T) {
	dir := t.TempDir()
	live := NewStore()
	w, err := OpenWAL(dir, live, WALOptions{SegmentBytes: 2048})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	const writers, batches, perBatch = 4, 8, 5
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				batch := walBatch(g*1000+b*perBatch, perBatch)
				if err := w.Append(batch); err != nil {
					errs <- err
					return
				}
				live.AppendBatch(batch)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent append: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	replayed := NewStore()
	w2, err := OpenWAL(dir, replayed, WALOptions{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer w2.Close()
	// Concurrent appends interleave, so row order may differ between the
	// live store and the WAL; the aggregate contract still holds.
	if replayed.Len() != live.Len() {
		t.Fatalf("rows: want %d got %d", live.Len(), replayed.Len())
	}
	lv, rv := live.All(), replayed.All()
	lav := lv.AttrValueCounts(lv.DriftOverlay())
	rav := rv.AttrValueCounts(rv.DriftOverlay())
	for attr, vals := range lav {
		for val, lc := range vals {
			if rc := rav[attr][val]; rc != lc {
				t.Fatalf("AttrValueCounts[%s][%s]: want %+v got %+v", attr, val, lc, rc)
			}
		}
	}
}

func TestWALFrameRoundTrip(t *testing.T) {
	entries := walBatch(0, 17)
	frame := appendWALFrame(nil, entries)
	if len(frame) < 8 {
		t.Fatalf("frame too short: %d", len(frame))
	}
	got, err := decodeWALPayload(frame[8:])
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(entries) {
		t.Fatalf("entries: want %d got %d", len(entries), len(got))
	}
	for i := range entries {
		if !got[i].Time.Equal(entries[i].Time) || got[i].Drift != entries[i].Drift ||
			got[i].SampleID != entries[i].SampleID {
			t.Fatalf("entry %d: want %+v got %+v", i, entries[i], got[i])
		}
		for k, v := range entries[i].Attrs {
			if got[i].Attrs[k] != v {
				t.Fatalf("entry %d attr %q: want %q got %q", i, k, v, got[i].Attrs[k])
			}
		}
	}
}

func TestWALDecodeRejectsMalformed(t *testing.T) {
	good := appendWALFrame(nil, walBatch(0, 2))[8:]
	cases := []struct {
		name    string
		payload []byte
	}{
		{"empty", nil},
		{"bad version", append([]byte{99}, good[1:]...)},
		{"truncated", good[:len(good)-3]},
		{"trailing bytes", append(append([]byte{}, good...), 0xAA)},
		{"bomb entry count", []byte{walRecordVersion, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F}},
		{"unknown flags", func() []byte {
			// Rebuild a 1-entry frame and poke the flags byte, which sits
			// right after the time varint (payload layout: version, count,
			// varint time, flags, ...).
			one := appendWALFrame(nil, walBatch(0, 1))[8:]
			i := 2
			for one[i]&0x80 != 0 {
				i++
			}
			i++ // past the varint's final byte
			one[i] = 0x7C
			return one
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := decodeWALPayload(tc.payload); err == nil {
				t.Fatalf("decode accepted malformed payload")
			}
		})
	}
}

func TestWALStats(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, NewStore(), WALOptions{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer w.Close()
	if st := w.Stats(); st.ActiveSegment != 1 || st.SnapshotSegment != -1 {
		t.Fatalf("fresh stats: %+v", st)
	}
	if err := w.Append(walBatch(0, 3)); err != nil {
		t.Fatalf("append: %v", err)
	}
	st := w.Stats()
	if st.Appends != 1 || st.AppendedBytes <= 8 {
		t.Fatalf("append stats: %+v", st)
	}
	if st.ActiveBytes <= int64(len(walMagic)) {
		t.Fatalf("active bytes: %+v", st)
	}
	if w.Dir() != dir {
		t.Fatalf("dir: want %s got %s", dir, w.Dir())
	}
}
