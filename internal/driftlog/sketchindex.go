// Tiered sketch layer: when an attribute's distinct-value count crosses
// SketchConfig.Threshold, its exact per-value bitmaps are dropped and the
// attribute is answered from bounded-memory streaming summaries instead —
// a ring of window-aligned Count-Min sub-sketches (support counting with a
// one-sided analytic error bound) plus a Space-Saving heavy-hitter tracker
// (candidate enumeration for grouped aggregations). Low-cardinality
// attributes keep the exact PR-5 bitset path untouched; tiering is sticky
// (an attribute never tiers back down) and the dictionary-encoded row ids
// are retained even for sketched columns, so the row-scan oracles remain
// exact and serve as both the differential baseline and the fallback for
// views the sketches cannot answer (delta views, mutated overlays,
// WindowScan views).
//
// Bucket ring: each sketched attribute owns sub-sketches keyed by the
// bucket-aligned start of their time span, created lazily (only time
// ranges with data allocate a bucket). When the ring exceeds MaxBuckets
// the oldest bucket folds into a single "rest" bucket covering everything
// before the live ring — eager eviction keeps memory flat while window
// queries over recent data stay bucket-resolved. Windowed estimates sum
// the Count-Min estimates of fully covered buckets and resolve partially
// covered bucket edges by an exact scan of just that time slice.
//
// Concurrency: sketch feeding happens inside the shard lock of the row
// being appended, and tier-up (which replays history into fresh sketches)
// holds all shard locks, so a row is fed exactly once — either by its
// append or by the replay, never both.
package driftlog

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nazar/internal/sketch"
)

// SketchConfig tunes the tiered sketch layer. The zero value selects the
// defaults below; NewStore uses the zero value.
type SketchConfig struct {
	// Threshold is the distinct-value count above which an attribute
	// tiers from exact bitmaps to sketches (default 4096 — high enough
	// that ordinary categorical attributes never tier).
	Threshold int
	// Width / PairWidth are the Count-Min cells per hash row for value
	// and pair sketches (defaults 2048 / 8192; additive error is
	// ~e·N/width over N increments).
	Width     int
	PairWidth int
	// Depth is the Count-Min hash-row count (default 3; failure
	// probability of the additive bound is e^-depth per query).
	Depth int
	// Bucket is the sub-sketch time alignment (default 10m): windows
	// aligned to it are answered purely from sketches, unaligned window
	// edges fall back to an exact scan of the edge slice.
	Bucket time.Duration
	// MaxBuckets bounds the live ring per attribute (default 96); older
	// buckets fold into a single "rest" sketch.
	MaxBuckets int
	// HeavyHitters / PairHeavyHitters size the Space-Saving candidate
	// trackers (defaults 256 / 2048).
	HeavyHitters     int
	PairHeavyHitters int
	// Seed fixes the hash family; the default is a package constant so
	// results are byte-identical across processes and pool widths.
	Seed uint64
}

const defaultSketchSeed = 0x6e617a61722d3130 // "nazar-10"

func (c SketchConfig) withDefaults() SketchConfig {
	if c.Threshold <= 0 {
		c.Threshold = 4096
	}
	if c.Width <= 0 {
		c.Width = 2048
	}
	if c.PairWidth <= 0 {
		c.PairWidth = 8192
	}
	if c.Depth <= 0 {
		c.Depth = 3
	}
	if c.Bucket <= 0 {
		c.Bucket = 10 * time.Minute
	}
	if c.MaxBuckets <= 0 {
		c.MaxBuckets = 96
	}
	if c.HeavyHitters <= 0 {
		c.HeavyHitters = 256
	}
	if c.PairHeavyHitters <= 0 {
		c.PairHeavyHitters = 2048
	}
	if c.Seed == 0 {
		c.Seed = defaultSketchSeed
	}
	return c
}

// span is a half-open time range [from, to) in unix nanos.
type span struct{ from, to int64 }

// sketchBucket is one window-aligned sub-sketch covering [start, end).
type sketchBucket struct {
	start, end int64
	adds       atomic.Uint64 // increments fed (the N of the error bound)
	cm         *sketch.CountMin
}

// attrSketch is the sketch state of one tiered attribute (or the
// store-global pair ring): the live bucket ring sorted by start, the
// folded "rest" bucket covering everything older, and the heavy-hitter
// candidate tracker. mu guards the ring structure; Count-Min adds are
// atomic, so concurrent feeders only share mu in read mode.
type attrSketch struct {
	width, depth int
	seed         uint64
	bucketNanos  int64
	maxBuckets   int

	mu      sync.RWMutex
	buckets []*sketchBucket // sorted by start, pairwise disjoint
	rest    *sketchBucket   // span strictly before buckets[0]; nil until first fold
	evicted int64

	// restLow is the lowest bucket-aligned time ever fed into rest — the
	// effective start of rest's span. rest.start alone is wrong: rest
	// absorbs every add older than rest.end (including rows older than any
	// bucket it was folded from), and out-of-order folds can leave
	// rest.start above mass rest actually holds, which would let a window
	// "fully cover" rest while excluding some of its mass (overcount past
	// the bound) or skip rest while it holds in-window mass (undercount —
	// breaking one-sidedness).
	restLow atomic.Int64

	hh *sketch.SpaceSaving[string]
}

// lowerRestLow lowers the rest span's effective start to aligned.
func (as *attrSketch) lowerRestLow(aligned int64) {
	for {
		cur := as.restLow.Load()
		if aligned >= cur || as.restLow.CompareAndSwap(cur, aligned) {
			return
		}
	}
}

func newAttrSketch(cfg SketchConfig, width, hhCap int) *attrSketch {
	return &attrSketch{
		width:       width,
		depth:       cfg.Depth,
		seed:        cfg.Seed,
		bucketNanos: int64(cfg.Bucket),
		maxBuckets:  cfg.MaxBuckets,
		hh:          sketch.NewSpaceSaving[string](hhCap),
	}
}

// alignDown floors t to the bucket grid (exact for negative times too —
// zero-Time entries carry a negative UnixNano).
func alignDown(t, step int64) int64 {
	r := t % step
	if r < 0 {
		r += step
	}
	return t - r
}

// findLocked resolves the bucket owning aligned under mu (either mode).
func (as *attrSketch) findLocked(aligned int64) *sketchBucket {
	if as.rest != nil && aligned < as.rest.end {
		return as.rest
	}
	i := sort.Search(len(as.buckets), func(i int) bool { return as.buckets[i].start >= aligned })
	if i < len(as.buckets) && as.buckets[i].start == aligned {
		return as.buckets[i]
	}
	return nil
}

// insertLocked creates the bucket for aligned, folding the oldest live
// bucket(s) into rest when the ring is over capacity. Must hold mu in
// write mode. The returned bucket may be rest when the new bucket itself
// aged out (deep out-of-order append).
func (as *attrSketch) insertLocked(aligned int64) *sketchBucket {
	nb := &sketchBucket{start: aligned, end: aligned + as.bucketNanos,
		cm: sketch.NewCountMin(as.width, as.depth, as.seed)}
	i := sort.Search(len(as.buckets), func(i int) bool { return as.buckets[i].start >= aligned })
	as.buckets = append(as.buckets, nil)
	copy(as.buckets[i+1:], as.buckets[i:])
	as.buckets[i] = nb
	for len(as.buckets) > as.maxBuckets {
		old := as.buckets[0]
		as.buckets = append(as.buckets[:0], as.buckets[1:]...)
		if as.rest == nil {
			as.rest = old
			as.restLow.Store(old.start)
		} else {
			as.lowerRestLow(old.start)
			as.rest.cm.Merge(old.cm)
			as.rest.adds.Add(old.adds.Load())
			if old.start < as.rest.start {
				as.rest.start = old.start
			}
			if old.end > as.rest.end {
				as.rest.end = old.end
			}
		}
		as.evicted++
	}
	if as.rest != nil && aligned < as.rest.end {
		return as.rest
	}
	return nb
}

// add feeds one occurrence. The Count-Min increment happens under mu (read
// mode on the fast path), so a concurrent fold — which merges a bucket's
// counters under the write lock — can never lose it.
func (as *attrSketch) add(key string, t int64, drifted bool) {
	aligned := alignDown(t, as.bucketNanos)
	as.mu.RLock()
	if b := as.findLocked(aligned); b != nil {
		if b == as.rest {
			as.lowerRestLow(aligned)
		}
		b.cm.Add(key, drifted)
		b.adds.Add(1)
		as.mu.RUnlock()
	} else {
		as.mu.RUnlock()
		as.mu.Lock()
		b := as.findLocked(aligned)
		if b == nil {
			b = as.insertLocked(aligned)
		}
		if b == as.rest {
			as.lowerRestLow(aligned)
		}
		b.cm.Add(key, drifted)
		b.adds.Add(1)
		as.mu.Unlock()
	}
	as.hh.Offer(key, 1)
}

// estimate sums the one-sided Count-Min estimates of every bucket fully
// inside [from, to), returning the summed analytic bound alongside and the
// partially covered time slices (edges) the caller must resolve by exact
// scan. Buckets with no overlap contribute nothing; time ranges with no
// bucket hold no rows by construction.
func (as *attrSketch) estimate(key string, from, to int64) (total, drift, bound uint64, edges []span) {
	as.mu.RLock()
	defer as.mu.RUnlock()
	consider := func(b *sketchBucket) {
		if b == nil {
			return
		}
		start := b.start
		if b == as.rest {
			start = as.restLow.Load()
		}
		if b.end <= from || start >= to {
			return
		}
		n := b.adds.Load()
		if n == 0 {
			return
		}
		if start >= from && b.end <= to {
			e := b.cm.Estimate(key)
			total += uint64(e.Total)
			drift += uint64(e.Drift)
			bound += sketch.ErrBound(as.width, n)
			return
		}
		lo, hi := start, b.end
		if from > lo {
			lo = from
		}
		if to < hi {
			hi = to
		}
		edges = append(edges, span{lo, hi})
	}
	consider(as.rest)
	for _, b := range as.buckets {
		consider(b)
	}
	if drift > total {
		drift = total
	}
	return
}

// memory returns (buckets, bytes) of this ring, counting the rest bucket.
func (as *attrSketch) memory() (buckets int, bytes int64) {
	as.mu.RLock()
	defer as.mu.RUnlock()
	for _, b := range as.buckets {
		bytes += int64(b.cm.Bytes())
	}
	buckets = len(as.buckets)
	if as.rest != nil {
		buckets++
		bytes += int64(as.rest.cm.Bytes())
	}
	bytes += int64(as.hh.Bytes())
	return
}

// sketchIndex is the store-global tiered sketch state: one value ring per
// sketched attribute plus a single pair ring fed with every two-attribute
// combination where at least one side is sketched.
type sketchIndex struct {
	cfg    SketchConfig
	tierMu sync.Mutex // serializes tier-up and wholesale rebuilds

	mu    sync.RWMutex
	attrs map[string]*attrSketch
	pairs *attrSketch
}

func newSketchIndex(cfg SketchConfig) *sketchIndex {
	cfg = cfg.withDefaults()
	return &sketchIndex{
		cfg:   cfg,
		attrs: map[string]*attrSketch{},
		pairs: newAttrSketch(cfg, cfg.PairWidth, cfg.PairHeavyHitters),
	}
}

// attr returns (creating if needed) the value ring for a sketched attribute.
func (sk *sketchIndex) attr(name string) *attrSketch {
	sk.mu.RLock()
	as := sk.attrs[name]
	sk.mu.RUnlock()
	if as != nil {
		return as
	}
	sk.mu.Lock()
	defer sk.mu.Unlock()
	if as := sk.attrs[name]; as != nil {
		return as
	}
	as = newAttrSketch(sk.cfg, sk.cfg.Width, sk.cfg.HeavyHitters)
	sk.attrs[name] = as
	return as
}

// lookupAttr is attr without the create (query side).
func (sk *sketchIndex) lookupAttr(name string) *attrSketch {
	sk.mu.RLock()
	defer sk.mu.RUnlock()
	return sk.attrs[name]
}

// reset discards all sketch state (tier-up and Compact rebuild from a
// full replay). Callers hold tierMu plus every shard lock.
func (sk *sketchIndex) reset() {
	sk.mu.Lock()
	sk.attrs = map[string]*attrSketch{}
	sk.pairs = newAttrSketch(sk.cfg, sk.cfg.PairWidth, sk.cfg.PairHeavyHitters)
	sk.mu.Unlock()
}

// collectStats fills the sketch-tier fields of a Stats snapshot.
func (sk *sketchIndex) collectStats(st *Stats) {
	sk.mu.RLock()
	rings := make([]*attrSketch, 0, len(sk.attrs)+1)
	for _, as := range sk.attrs {
		rings = append(rings, as)
	}
	rings = append(rings, sk.pairs)
	sk.mu.RUnlock()
	for _, as := range rings {
		buckets, bytes := as.memory()
		st.SketchBuckets += buckets
		st.SketchBytes += bytes
		as.mu.RLock()
		st.SketchEvicted += as.evicted
		as.mu.RUnlock()
	}
}

// attrKV is one (attribute, value) of a row being fed; feed requires the
// slice sorted by name so Space-Saving offer order — the only
// order-sensitive operation — is deterministic per row.
type attrKV struct{ name, val string }

// pairSketchKey encodes a canonical (aName < bName) pair occurrence.
// Attribute names and values must not contain NUL (nothing in the system
// produces them; a colliding key would only merge two pair estimates,
// preserving one-sidedness).
func pairSketchKey(aName, aVal, bName, bVal string) string {
	return aName + "\x00" + aVal + "\x00" + bName + "\x00" + bVal
}

// parsePairKey is the inverse of pairSketchKey.
func parsePairKey(key string) (PairKey, bool) {
	parts := strings.SplitN(key, "\x00", 5)
	if len(parts) != 4 {
		return PairKey{}, false
	}
	return PairKey{AttrA: parts[0], ValA: parts[1], AttrB: parts[2], ValB: parts[3]}, true
}

// feed records one row into the sketch layer: each sketched attribute's
// value ring, plus the pair ring for every pair with at least one sketched
// side. kvs must be sorted by attribute name.
func (sk *sketchIndex) feed(sketched map[string]bool, t int64, drifted bool, kvs []attrKV) {
	any := false
	for _, kv := range kvs {
		if sketched[kv.name] {
			any = true
			break
		}
	}
	if !any {
		return
	}
	for _, kv := range kvs {
		if sketched[kv.name] {
			sk.attr(kv.name).add(kv.val, t, drifted)
		}
	}
	for i := 0; i < len(kvs); i++ {
		for j := i + 1; j < len(kvs); j++ {
			if sketched[kvs[i].name] || sketched[kvs[j].name] {
				sk.pairs.add(pairSketchKey(kvs[i].name, kvs[i].val, kvs[j].name, kvs[j].val), t, drifted)
			}
		}
	}
}

// sketchedSet returns the current immutable sketched-attribute snapshot
// (nil when nothing has tiered). Feed paths load it once under the shard
// lock; tier-up installs the successor while holding every shard lock, so
// a row appended under the old snapshot is always covered by the replay.
func (s *Store) sketchedSet() map[string]bool {
	p := s.sketchedPtr.Load()
	if p == nil {
		return nil
	}
	return *p
}

// SketchedAttrs returns the attributes currently answered by sketches, in
// sorted order.
func (s *Store) SketchedAttrs() []string {
	set := s.sketchedSet()
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// tierUp moves attr onto the sketch tier: under every shard lock it
// rebuilds all sketch state from a full replay (so rows appended before
// the threshold crossing are counted exactly once), frees the attribute's
// per-value bitmaps (ids and dictionaries are retained for the exact scan
// paths), and installs the successor sketched-set snapshot. Tiering is
// sticky: sketched attributes never return to the bitmap tier.
func (s *Store) tierUp(attr string) {
	s.sk.tierMu.Lock()
	defer s.sk.tierMu.Unlock()
	cur := s.sketchedSet()
	if cur[attr] {
		return
	}
	next := make(map[string]bool, len(cur)+1)
	for k := range cur {
		next[k] = true
	}
	next[attr] = true
	for i := range s.shards {
		s.shards[i].mu.Lock()
	}
	s.sk.reset()
	s.replaySketchesLocked(next)
	s.sketchedPtr.Store(&next)
	for i := numShards - 1; i >= 0; i-- {
		s.shards[i].mu.Unlock()
	}
	// The attribute's exact distinct-value tracking set is no longer
	// needed (tiering is sticky).
	s.attrMu.Lock()
	delete(s.card, attr)
	s.attrMu.Unlock()
}

// replaySketchesLocked feeds every current row into (freshly reset)
// sketches and frees the bitmaps of sketched columns. Caller holds tierMu
// and every shard lock. Replay order is canonical (shard-major, row
// order), which fixes Space-Saving offer order deterministically.
func (s *Store) replaySketchesLocked(sketched map[string]bool) {
	for si := range s.shards {
		sh := &s.shards[si]
		names := append([]string(nil), sh.order...)
		sort.Strings(names)
		cols := make([]*column, len(names))
		for i, n := range names {
			cols[i] = sh.cols[n]
			if sketched[n] && !cols[i].sketched {
				cols[i].sketched = true
				for id := range cols[i].bits {
					cols[i].bits[id] = nil
				}
			}
		}
		kvs := make([]attrKV, 0, len(names))
		for r := range sh.times {
			kvs = kvs[:0]
			for i, c := range cols {
				if id := c.ids[r]; id != 0 {
					kvs = append(kvs, attrKV{names[i], c.dict[id]})
				}
			}
			s.sk.feed(sketched, sh.times[r], sh.drift[r], kvs)
		}
	}
}

// feedRowLocked feeds one just-appended row. Caller holds the shard lock
// and has loaded sketched under it.
func (s *Store) feedRowLocked(sketched map[string]bool, t int64, drifted bool, attrs map[string]string) {
	if len(sketched) == 0 || len(attrs) == 0 {
		return
	}
	kvs := make([]attrKV, 0, len(attrs))
	for name, val := range attrs {
		kvs = append(kvs, attrKV{name, val})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].name < kvs[j].name })
	s.sk.feed(sketched, t, drifted, kvs)
}

// observeCardinality records value sightings for attributes still on the
// exact tier and tiers any attribute whose distinct-value count crossed
// the threshold. The read-locked fast path exits without mutation when
// every (attribute, value) is already known, which is the steady state.
func (s *Store) observeCardinality(attrs map[string]string) {
	sketched := s.sketchedSet()
	known := true
	s.attrMu.RLock()
	for name, val := range attrs {
		if sketched[name] {
			continue
		}
		if vals := s.card[name]; vals == nil || !vals[val] {
			known = false
			break
		}
	}
	s.attrMu.RUnlock()
	if known {
		return
	}
	var tier []string
	s.attrMu.Lock()
	// Reload under the lock: a concurrent tier-up may have sketched an
	// attribute (and dropped its tracking set) since the first load.
	sketched = s.sketchedSet()
	for name, val := range attrs {
		if sketched[name] {
			continue
		}
		vals := s.card[name]
		if vals == nil {
			vals = map[string]bool{}
			s.card[name] = vals
		}
		if !vals[val] {
			vals[val] = true
			if len(vals) > s.sk.cfg.Threshold {
				tier = append(tier, name)
			}
		}
	}
	s.attrMu.Unlock()
	sort.Strings(tier)
	for _, name := range tier {
		s.tierUp(name)
	}
}

// trackValues is observeCardinality's columnar twin: it records a batch
// column's used values in one pass and reports whether the attribute just
// crossed the sketch threshold.
func (s *Store) trackValues(name string, vals []string) (crossed bool) {
	s.attrMu.RLock()
	seen := s.card[name]
	known := seen != nil
	if known {
		for _, v := range vals {
			if !seen[v] {
				known = false
				break
			}
		}
	}
	s.attrMu.RUnlock()
	if known {
		return false
	}
	s.attrMu.Lock()
	defer s.attrMu.Unlock()
	if s.sketchedSet()[name] {
		return false
	}
	m := s.card[name]
	if m == nil {
		m = map[string]bool{}
		s.card[name] = m
	}
	for _, v := range vals {
		m[v] = true
	}
	return len(m) > s.sk.cfg.Threshold
}
