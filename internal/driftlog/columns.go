// Columnar batch form of drift-log entries: the shape the binary wire
// protocol (internal/wire) carries and the fast path the store can
// append without a per-row struct round-trip. A ColumnarBatch is the
// batch-local mirror of the store's own layout — dictionary-encoded
// attribute columns over parallel row arrays — so appending one is a
// dictionary remap plus slice appends, not len(entries) map walks.
package driftlog

import (
	"fmt"
	"sort"
	"time"
)

// ColumnData is one dictionary-encoded attribute column of a batch.
// Dict[0] is reserved as "" meaning "attribute missing on this row",
// exactly like the store's column encoding; IDs[i] == 0 marks a row
// without the attribute.
type ColumnData struct {
	Name string
	Dict []string
	IDs  []uint32
}

// ColumnarBatch is a batch of drift-log rows in columnar form. All row
// slices are parallel: Times[i], Drift[i] and SampleIDs[i] (plus
// Cols[*].IDs[i]) describe row i. Times are unix nanoseconds.
type ColumnarBatch struct {
	Times     []int64
	Drift     []bool
	SampleIDs []int64
	Cols      []ColumnData
}

// Rows returns the number of rows in the batch.
func (b *ColumnarBatch) Rows() int { return len(b.Times) }

// Validate checks the batch's structural invariants: parallel slice
// lengths, the reserved Dict[0] == "" slot, in-range dictionary IDs and
// unique column names. Append paths require a valid batch; feeding an
// invalid one anywhere is an error, never a panic.
func (b *ColumnarBatch) Validate() error {
	rows := len(b.Times)
	if len(b.Drift) != rows {
		return fmt.Errorf("driftlog: columnar batch: %d times but %d drift flags", rows, len(b.Drift))
	}
	if len(b.SampleIDs) != rows {
		return fmt.Errorf("driftlog: columnar batch: %d times but %d sample ids", rows, len(b.SampleIDs))
	}
	seen := make(map[string]bool, len(b.Cols))
	for ci := range b.Cols {
		col := &b.Cols[ci]
		if col.Name == "" {
			return fmt.Errorf("driftlog: columnar batch: column %d has empty name", ci)
		}
		if seen[col.Name] {
			return fmt.Errorf("driftlog: columnar batch: duplicate column %q", col.Name)
		}
		seen[col.Name] = true
		if len(col.Dict) == 0 || col.Dict[0] != "" {
			return fmt.Errorf("driftlog: columnar batch: column %q must reserve dict[0] as empty", col.Name)
		}
		if len(col.IDs) != rows {
			return fmt.Errorf("driftlog: columnar batch: column %q has %d ids for %d rows", col.Name, len(col.IDs), rows)
		}
		for r, id := range col.IDs {
			if int(id) >= len(col.Dict) {
				return fmt.Errorf("driftlog: columnar batch: column %q row %d: dict id %d out of range (dict size %d)",
					col.Name, r, id, len(col.Dict))
			}
		}
	}
	return nil
}

// RowAttrs materializes row i's attribute map (absent attributes
// omitted).
func (b *ColumnarBatch) RowAttrs(i int) map[string]string {
	attrs := map[string]string{}
	for ci := range b.Cols {
		if id := b.Cols[ci].IDs[i]; id != 0 {
			attrs[b.Cols[ci].Name] = b.Cols[ci].Dict[id]
		}
	}
	return attrs
}

// Entry reconstructs row i as an Entry.
func (b *ColumnarBatch) Entry(i int) Entry {
	return Entry{
		Time:     time.Unix(0, b.Times[i]).UTC(),
		Drift:    b.Drift[i],
		SampleID: b.SampleIDs[i],
		Attrs:    b.RowAttrs(i),
	}
}

// Entries reconstructs the whole batch in row form.
func (b *ColumnarBatch) Entries() []Entry {
	out := make([]Entry, b.Rows())
	for i := range out {
		out[i] = b.Entry(i)
	}
	return out
}

// ColumnsFromEntries converts a row-form batch to columnar form.
// Columns come out in sorted name order with per-batch dictionaries in
// first-seen order, so the conversion is deterministic for a given
// entry slice.
func ColumnsFromEntries(entries []Entry) *ColumnarBatch {
	b := &ColumnarBatch{
		Times:     make([]int64, len(entries)),
		Drift:     make([]bool, len(entries)),
		SampleIDs: make([]int64, len(entries)),
	}
	colIdx := map[string]int{}
	for i := range entries {
		e := &entries[i]
		b.Times[i] = e.Time.UnixNano()
		b.Drift[i] = e.Drift
		b.SampleIDs[i] = e.SampleID
		for name := range e.Attrs {
			if _, ok := colIdx[name]; !ok {
				colIdx[name] = -1 // placeholder; indexes assigned after sorting
			}
		}
	}
	names := make([]string, 0, len(colIdx))
	for name := range colIdx {
		names = append(names, name)
	}
	sort.Strings(names)
	b.Cols = make([]ColumnData, len(names))
	for ci, name := range names {
		colIdx[name] = ci
		b.Cols[ci] = ColumnData{Name: name, Dict: []string{""}, IDs: make([]uint32, len(entries))}
	}
	// Per-column value interning (first-seen order within the batch).
	interns := make([]map[string]uint32, len(names))
	for ci := range interns {
		interns[ci] = map[string]uint32{}
	}
	for i := range entries {
		for name, val := range entries[i].Attrs {
			ci := colIdx[name]
			col := &b.Cols[ci]
			id, ok := interns[ci][val]
			if !ok {
				id = uint32(len(col.Dict))
				col.Dict = append(col.Dict, val)
				interns[ci][val] = id
			}
			col.IDs[i] = id
		}
	}
	return b
}

// AppendColumns ingests a columnar batch, preserving batch row order in
// the store's canonical (sequence) order — the near-zero-copy twin of
// AppendBatch: per shard, appends are slice extensions plus a lazy
// dictionary remap (batch dict ID → shard dict ID, interned only for
// values that actually land in the shard), and the per-(attribute,
// value) bitmaps are maintained exactly as the row path does.
func (s *Store) AppendColumns(b *ColumnarBatch) error {
	if err := b.Validate(); err != nil {
		return err
	}
	rows := b.Rows()
	if rows == 0 {
		return nil
	}
	// Register attribute names in the order the row path would discover
	// them — first row carrying the attribute, ties within a row sorted —
	// so Attributes() is identical regardless of which ingest path ran.
	// Columns whose IDs are all zero never register, like an attribute
	// no entry carries.
	found := 0
	seenCol := make([]bool, len(b.Cols))
	var names, rowNames []string
	for r := 0; r < rows && found < len(b.Cols); r++ {
		rowNames = rowNames[:0]
		for ci := range b.Cols {
			if !seenCol[ci] && b.Cols[ci].IDs[r] != 0 {
				seenCol[ci] = true
				found++
				rowNames = append(rowNames, b.Cols[ci].Name)
			}
		}
		sort.Strings(rowNames)
		names = append(names, rowNames...)
	}
	if len(names) > 0 {
		s.registerAttrNames(names)
	}

	// Distinct-value tracking for the sketch tier: only values actually
	// used by rows count (a dictionary entry no row references is not a
	// sighting). Tier-ups run before the rows land; the appended rows
	// then feed the sketches directly.
	{
		sketched := s.sketchedSet()
		var tier []string
		for ci := range b.Cols {
			col := &b.Cols[ci]
			if sketched[col.Name] {
				continue
			}
			used := make([]bool, len(col.Dict))
			for _, id := range col.IDs {
				used[id] = true
			}
			vals := make([]string, 0, len(col.Dict))
			for id := 1; id < len(col.Dict); id++ {
				if used[id] {
					vals = append(vals, col.Dict[id])
				}
			}
			if len(vals) > 0 && s.trackValues(col.Name, vals) {
				tier = append(tier, col.Name)
			}
		}
		sort.Strings(tier)
		for _, name := range tier {
			s.tierUp(name)
		}
	}

	// Shard placement: by device-attribute hash when the row has one
	// (precomputed per dictionary value, not per row), round-robin by
	// sequence otherwise — identical to shardFor.
	base := s.seq.Add(int64(rows)) - int64(rows)
	devCol := -1
	for ci := range b.Cols {
		if b.Cols[ci].Name == AttrDevice {
			devCol = ci
			break
		}
	}
	var devShard []int
	if devCol >= 0 {
		devShard = make([]int, len(b.Cols[devCol].Dict))
		for id := 1; id < len(devShard); id++ {
			devShard[id] = int(hashString(b.Cols[devCol].Dict[id]) & shardMask)
		}
	}
	var rowsByShard [numShards][]int32
	for i := 0; i < rows; i++ {
		si := int((base + int64(i)) & shardMask)
		if devCol >= 0 {
			if id := b.Cols[devCol].IDs[i]; id != 0 {
				si = devShard[id]
			}
		}
		rowsByShard[si] = append(rowsByShard[si], int32(i))
	}

	// Sketch feeding iterates batch columns in sorted-name order (map
	// iteration in the row path is replaced by this fixed order) so
	// Space-Saving offer order is deterministic per row.
	colOrder := make([]int, len(b.Cols))
	for i := range colOrder {
		colOrder[i] = i
	}
	sort.Slice(colOrder, func(i, j int) bool { return b.Cols[colOrder[i]].Name < b.Cols[colOrder[j]].Name })

	for si := range rowsByShard {
		if len(rowsByShard[si]) == 0 {
			continue
		}
		sh := &s.shards[si]
		// Per-shard lazy state: the shard column and the batch→shard
		// dictionary remap for each batch column, resolved on first use.
		shCols := make([]*column, len(b.Cols))
		remaps := make([][]uint32, len(b.Cols))
		sh.mu.Lock()
		sketched := s.sketchedSet()
		var kvs []attrKV
		for _, bi := range rowsByShard[si] {
			row := len(sh.times)
			if row > 0 && b.Times[bi] < sh.times[row-1] {
				sh.timeSorted = false
			}
			sh.seqs = append(sh.seqs, base+int64(bi))
			sh.times = append(sh.times, b.Times[bi])
			sh.drift = append(sh.drift, b.Drift[bi])
			if b.Drift[bi] {
				sh.driftBits = setBit(sh.driftBits, row)
			}
			sh.samples = append(sh.samples, b.SampleIDs[bi])
			for ci := range b.Cols {
				id := b.Cols[ci].IDs[bi]
				if id == 0 {
					continue
				}
				col := shCols[ci]
				if col == nil {
					name := b.Cols[ci].Name
					var ok bool
					col, ok = sh.cols[name]
					if !ok {
						col = newColumn(row)
						col.sketched = sketched[name]
						sh.cols[name] = col
						sh.order = append(sh.order, name)
					}
					shCols[ci] = col
					remaps[ci] = make([]uint32, len(b.Cols[ci].Dict))
				}
				lid := remaps[ci][id]
				if lid == 0 {
					lid = col.intern(b.Cols[ci].Dict[id])
					remaps[ci][id] = lid
				}
				col.ids = append(col.ids, lid)
				if !col.sketched {
					col.bits[lid] = setBit(col.bits[lid], row)
				}
			}
			if len(sketched) > 0 {
				kvs = kvs[:0]
				for _, ci := range colOrder {
					if id := b.Cols[ci].IDs[bi]; id != 0 {
						kvs = append(kvs, attrKV{b.Cols[ci].Name, b.Cols[ci].Dict[id]})
					}
				}
				s.sk.feed(sketched, b.Times[bi], b.Drift[bi], kvs)
			}
			// Backfill columns the row did not carry (including shard
			// columns absent from this batch entirely).
			for _, name := range sh.order {
				col := sh.cols[name]
				if len(col.ids) == row {
					col.ids = append(col.ids, 0)
				}
			}
		}
		sh.mu.Unlock()
	}
	return nil
}

// registerAttrNames is registerAttrs for a pre-ordered name slice (the
// columnar path registers each attribute once per batch, not once per
// row). Fresh names are appended in the order given — the caller has
// already arranged discovery order.
func (s *Store) registerAttrNames(names []string) {
	missing := false
	s.attrMu.RLock()
	for _, name := range names {
		if !s.attrSeen[name] {
			missing = true
			break
		}
	}
	s.attrMu.RUnlock()
	if !missing {
		return
	}
	s.attrMu.Lock()
	for _, name := range names {
		if !s.attrSeen[name] {
			s.attrSeen[name] = true
			s.attrOrder = append(s.attrOrder, name)
		}
	}
	s.attrMu.Unlock()
}
