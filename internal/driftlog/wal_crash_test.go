package driftlog

// Deterministic crash-point framework for the WAL. A crashFS stands in
// for the filesystem and kills the "process" at the Nth mutating
// operation, modeling what a real crash leaves behind: everything
// fsynced survives, an unsynced tail survives only partially (a seeded
// random prefix — the torn record), and the op in flight lands
// partially or not at all. The matrix test sweeps EVERY operation index
// in a fixed workload, which subsumes the named kill points (mid-record
// write, pre-sync, post-sync pre-ack, mid-rotation, mid-compaction):
// each of those is some op index, and the sweep hits them all.
//
// Invariant checked after every crash + restart + replay:
//
//	recovered rows  =  a whole-batch prefix of the submitted rows
//	len(recovered) >=  len(acked rows)
//
// i.e. nothing acknowledged is ever lost, and nothing is invented or
// reordered. Over-recovery of the batch in flight is allowed — the
// pipeline is at-least-once end to end.

import (
	"errors"
	"fmt"
	"io"
	mrand "math/rand/v2"
	"sort"
	"strings"
	"sync"
	"testing"
)

var errCrashed = errors.New("crashfs: process killed")

type crashFile struct {
	content []byte
	durable int // bytes guaranteed to survive a crash
}

type crashFS struct {
	mu      sync.Mutex
	files   map[string]*crashFile
	ops     int // mutating operations performed
	killAt  int // crash when ops reaches this 1-based index; 0 = never
	crashed bool
	rng     *mrand.Rand
}

func newCrashFS(seed uint64) *crashFS {
	return &crashFS{
		files: map[string]*crashFile{},
		rng:   mrand.New(mrand.NewPCG(seed, seed^0x9E3779B97F4A7C15)),
	}
}

// step accounts one mutating op. It returns (killNow, err): killNow
// means this very op is the kill point — the caller applies its partial
// effect and then calls crash().
func (fs *crashFS) step() (bool, error) {
	if fs.crashed {
		return false, errCrashed
	}
	fs.ops++
	return fs.killAt > 0 && fs.ops == fs.killAt, nil
}

// crash drops every file's unsynced tail down to a random surviving
// prefix — the page cache's eviction order is not ours to choose.
func (fs *crashFS) crash() {
	fs.crashed = true
	for _, f := range fs.files {
		if len(f.content) > f.durable {
			keep := f.durable + fs.rng.IntN(len(f.content)-f.durable+1)
			f.content = f.content[:keep]
		}
	}
}

// restart clears the crash so the directory can be reopened, as a new
// process would after the old one died.
func (fs *crashFS) restart() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.crashed = false
	fs.killAt = 0
	// Whatever survived the crash is all there is: it is durable now.
	for _, f := range fs.files {
		f.durable = len(f.content)
	}
}

func (fs *crashFS) MkdirAll(dir string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return errCrashed
	}
	return nil
}

func (fs *crashFS) ReadDir(dir string) ([]string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return nil, errCrashed
	}
	prefix := dir + "/"
	var names []string
	for path := range fs.files {
		if strings.HasPrefix(path, prefix) && !strings.Contains(path[len(prefix):], "/") {
			names = append(names, path[len(prefix):])
		}
	}
	sort.Strings(names)
	return names, nil
}

func (fs *crashFS) Create(path string) (walFile, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	kill, err := fs.step()
	if err != nil {
		return nil, err
	}
	f := &crashFile{}
	fs.files[path] = f
	if kill {
		// The file may exist after the crash (empty, unsynced).
		fs.crash()
		return nil, errCrashed
	}
	return &crashHandle{fs: fs, f: f, writable: true}, nil
}

func (fs *crashFS) Open(path string) (walFile, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return nil, errCrashed
	}
	f, ok := fs.files[path]
	if !ok {
		return nil, fmt.Errorf("crashfs: open %s: no such file", path)
	}
	return &crashHandle{fs: fs, f: f}, nil
}

func (fs *crashFS) Rename(oldpath, newpath string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	kill, err := fs.step()
	if err != nil {
		return err
	}
	if kill {
		// Rename is atomic: the crash lands before it. (The state after
		// a completed rename is exactly the next op's kill point.)
		fs.crash()
		return errCrashed
	}
	f, ok := fs.files[oldpath]
	if !ok {
		return fmt.Errorf("crashfs: rename %s: no such file", oldpath)
	}
	delete(fs.files, oldpath)
	fs.files[newpath] = f
	// Model rename as immediately durable (journaled metadata); the
	// separate SyncDir op stays in the matrix for op-count coverage.
	f.durable = len(f.content)
	return nil
}

func (fs *crashFS) Remove(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	kill, err := fs.step()
	if err != nil {
		return err
	}
	if kill {
		fs.crash()
		return errCrashed
	}
	if _, ok := fs.files[path]; !ok {
		return fmt.Errorf("crashfs: remove %s: no such file", path)
	}
	delete(fs.files, path)
	return nil
}

func (fs *crashFS) Truncate(path string, size int64) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	kill, err := fs.step()
	if err != nil {
		return err
	}
	if kill {
		fs.crash()
		return errCrashed
	}
	f, ok := fs.files[path]
	if !ok {
		return fmt.Errorf("crashfs: truncate %s: no such file", path)
	}
	if int(size) < len(f.content) {
		f.content = f.content[:size]
	}
	if f.durable > len(f.content) {
		f.durable = len(f.content)
	}
	return nil
}

func (fs *crashFS) SyncDir(dir string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	kill, err := fs.step()
	if err != nil {
		return err
	}
	if kill {
		fs.crash()
		return errCrashed
	}
	return nil
}

type crashHandle struct {
	fs       *crashFS
	f        *crashFile
	pos      int
	writable bool
}

func (h *crashHandle) Read(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.crashed {
		return 0, errCrashed
	}
	if h.pos >= len(h.f.content) {
		return 0, io.EOF
	}
	n := copy(p, h.f.content[h.pos:])
	h.pos += n
	return n, nil
}

func (h *crashHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if !h.writable {
		return 0, errors.New("crashfs: write on read-only handle")
	}
	kill, err := h.fs.step()
	if err != nil {
		return 0, err
	}
	if kill {
		// The op in flight lands partially: a random prefix reaches the
		// page cache before the process dies.
		n := h.fs.rng.IntN(len(p) + 1)
		h.f.content = append(h.f.content, p[:n]...)
		h.fs.crash()
		return n, errCrashed
	}
	h.f.content = append(h.f.content, p...)
	return len(p), nil
}

func (h *crashHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if !h.writable {
		return nil
	}
	kill, err := h.fs.step()
	if err != nil {
		return err
	}
	if kill {
		// Pre-sync kill: nothing written since the last sync is promoted.
		h.fs.crash()
		return errCrashed
	}
	h.f.durable = len(h.f.content)
	return nil
}

func (h *crashHandle) Close() error { return nil }

// crashWorkload drives a fixed WAL write sequence against fs and
// reports the batches submitted and the batches acked (Append returned
// nil) before the crash, if any. Segment size is tuned so the workload
// rotates multiple times, and an explicit mid-workload compaction puts
// snapshot write/rename/delete ops in the sweep.
func crashWorkload(fs *crashFS) (submitted, acked [][]Entry) {
	s := NewStore()
	w, err := OpenWAL("wal", s, WALOptions{SegmentBytes: 256, fs: fs})
	if err != nil {
		return nil, nil
	}
	const batches = 8
	for i := 0; i < batches; i++ {
		b := walBatch(i*3, 3)
		submitted = append(submitted, b)
		if err := w.Append(b); err != nil {
			return submitted, acked
		}
		acked = append(acked, b)
		if i == 4 {
			// Mid-workload compaction (synchronous — keeps the op
			// sequence deterministic for the sweep).
			if err := w.Compact(); err != nil {
				return submitted, acked
			}
		}
	}
	_ = w.Close()
	return submitted, acked
}

func flattenBatches(bs [][]Entry) []Entry {
	var out []Entry
	for _, b := range bs {
		out = append(out, b...)
	}
	return out
}

// verifyCrashRecovery restarts fs, replays the WAL, and checks the
// crash-recovery invariant against the workload's submission record.
func verifyCrashRecovery(t *testing.T, fs *crashFS, submitted, acked [][]Entry, label string) {
	t.Helper()
	fs.restart()
	s := NewStore()
	w, err := OpenWAL("wal", s, WALOptions{fs: fs})
	if err != nil {
		t.Fatalf("%s: recovery refused to open: %v", label, err)
	}
	defer w.Close()

	flat := flattenBatches(submitted)
	ackedRows := len(flattenBatches(acked))
	n := s.Len()
	if n < ackedRows {
		t.Fatalf("%s: LOST ACKED DATA: acked %d rows, recovered %d (recovery: %+v)",
			label, ackedRows, n, w.Recovery())
	}
	if n > len(flat) {
		t.Fatalf("%s: recovered %d rows but only %d were ever submitted", label, n, len(flat))
	}
	// Whole-batch granularity: a record is a batch, and replay applies
	// only complete records.
	sum := 0
	onBoundary := n == 0
	for _, b := range submitted {
		sum += len(b)
		if n == sum {
			onBoundary = true
			break
		}
	}
	if !onBoundary {
		t.Fatalf("%s: recovered %d rows — not a batch boundary", label, n)
	}
	for i := 0; i < n; i++ {
		if got, want := s.Entry(i).Attrs["seq"], flat[i].Attrs["seq"]; got != want {
			t.Fatalf("%s: row %d: got seq %s want %s", label, i, got, want)
		}
	}
	// The recovered store's bitset index must agree with a scan (an
	// empty recovery has no attributes to probe).
	if n > 0 {
		v := s.All()
		idx, err1 := v.Count([]Cond{{AttrWeather, "snow"}}, nil)
		scan, err2 := v.CountScan([]Cond{{AttrWeather, "snow"}}, nil)
		if err1 != nil || err2 != nil || idx != scan {
			t.Fatalf("%s: recovered index disagrees with scan: %+v/%v vs %+v/%v", label, idx, err1, scan, err2)
		}
	}
}

// TestWALCrashMatrix kills the process at every mutating-filesystem
// operation the workload performs, one run per kill point, and proves
// recovery never loses an acked row.
func TestWALCrashMatrix(t *testing.T) {
	// Dry run: learn the op count and pin the workload's shape.
	dry := newCrashFS(1)
	submitted, acked := crashWorkload(dry)
	if len(acked) != len(submitted) || len(acked) != 8 {
		t.Fatalf("dry run must ack everything: %d/%d", len(acked), len(submitted))
	}
	total := dry.ops
	if total < 30 {
		t.Fatalf("workload too small to be interesting: %d ops", total)
	}
	if dry.killAt != 0 {
		t.Fatalf("dry run had a kill point")
	}

	for k := 1; k <= total; k++ {
		fs := newCrashFS(uint64(1000 + k))
		fs.killAt = k
		sub, ack := crashWorkload(fs)
		if !fs.crashed {
			t.Fatalf("killAt=%d: workload finished without crashing (ops=%d)", k, fs.ops)
		}
		verifyCrashRecovery(t, fs, sub, ack, fmt.Sprintf("killAt=%d", k))
	}
}

// TestWALCrashMatrixRandomized re-runs the sweep with different torn-
// tail randomness: the same kill point can leave different surviving
// prefixes of the unsynced tail, and recovery must hold for all of them.
func TestWALCrashMatrixRandomized(t *testing.T) {
	dry := newCrashFS(1)
	crashWorkload(dry)
	total := dry.ops
	rng := mrand.New(mrand.NewPCG(42, 43))
	const runs = 120
	for r := 0; r < runs; r++ {
		k := 1 + rng.IntN(total)
		seed := rng.Uint64()
		fs := newCrashFS(seed)
		fs.killAt = k
		sub, ack := crashWorkload(fs)
		if !fs.crashed {
			t.Fatalf("killAt=%d seed=%d: no crash", k, seed)
		}
		verifyCrashRecovery(t, fs, sub, ack, fmt.Sprintf("killAt=%d seed=%d", k, seed))
	}
}

// TestWALCrashDoubleFault crashes once, recovers, then crashes the
// recovered WAL too: recovery-of-a-recovery must still hold the
// invariant (the second process also wrote new state before dying).
func TestWALCrashDoubleFault(t *testing.T) {
	rng := mrand.New(mrand.NewPCG(7, 11))
	for r := 0; r < 20; r++ {
		fs := newCrashFS(rng.Uint64())
		fs.killAt = 10 + rng.IntN(25)
		sub1, ack1 := crashWorkload(fs)
		if !fs.crashed {
			t.Fatalf("run %d: first crash missed", r)
		}
		fs.restart()

		// Second incarnation: replay, then keep writing — and die again.
		s := NewStore()
		w, err := OpenWAL("wal", s, WALOptions{SegmentBytes: 256, fs: fs})
		if err != nil {
			t.Fatalf("run %d: recovery open: %v", r, err)
		}
		recovered := s.Len()
		fs.mu.Lock()
		fs.killAt = fs.ops + 3 + rng.IntN(8)
		fs.mu.Unlock()
		var ack2 [][]Entry
		sub2 := append([][]Entry(nil), sub1...)
		// The second process appends fresh batches numbered after the
		// first workload's rows.
		for i := 0; i < 6; i++ {
			b := walBatch(1000+i*3, 3)
			sub2 = append(sub2, b)
			if err := w.Append(b); err != nil {
				break
			}
			ack2 = append(ack2, b)
		}
		_ = w.Close()

		fs.restart()
		final := NewStore()
		w2, err := OpenWAL("wal", final, WALOptions{fs: fs})
		if err != nil {
			t.Fatalf("run %d: second recovery open: %v", r, err)
		}
		minRows := recovered + len(flattenBatches(ack2))
		if final.Len() < minRows {
			t.Fatalf("run %d: lost rows across double fault: recovered %d, want >= %d (first ack %d)",
				r, final.Len(), minRows, len(flattenBatches(ack1)))
		}
		w2.Close()
	}
}
