// View-side sketch query paths: the approximate twins of the bitset
// Count/AttrValueCounts/PairCounts paths for attributes on the sketch
// tier. Estimates are one-sided (never below the true count) with the
// analytic Count-Min bound surfaced via Approx; views the sketches cannot
// answer (delta views, mutated overlays, WindowScan views) fall back to
// the exact row scans over the retained column ids.
package driftlog

import (
	"math"
	"sort"
)

// condSketched reports whether any condition touches a sketched attribute
// (per the view's pinned snapshot).
func (v *View) condSketched(conds []Cond) bool {
	if len(v.sketched) == 0 {
		return false
	}
	for _, c := range conds {
		if v.sketched[c.Attr] {
			return true
		}
	}
	return false
}

// Sketched reports whether any attribute was on the approximate tier
// when this view was pinned. Callers that trade index probes for row
// scans (e.g. incremental mining's per-candidate delta counts) use it
// to detect that the scans lost their cheap bitset backing.
func (v *View) Sketched() bool { return len(v.sketched) > 0 }

// sketchEligible reports whether the sketch layer can answer for this
// view: indexed, not a Since delta, and the overlay (if any) still equals
// the stored drift flags. Counterfactual overlays (epoch > 0) re-route to
// the exact scans — sketches aggregate stored drift, not overlaid drift.
func (v *View) sketchEligible(ov *Overlay) bool {
	return v.sk != nil && len(v.sketched) > 0 && !v.noIndex && !v.delta &&
		(ov == nil || ov.Epoch() == 0)
}

// dedupeConds removes exact duplicate conditions. ok is false when two
// conditions demand different values for the same attribute — a row holds
// one value per attribute, so the conjunction is provably empty and needs
// no sketch at all.
func dedupeConds(conds []Cond) (uniq []Cond, ok bool) {
	uniq = make([]Cond, 0, len(conds))
	for _, c := range conds {
		dup := false
		for _, o := range uniq {
			if o.Attr == c.Attr {
				if o.Value != c.Value {
					return nil, false
				}
				dup = true
				break
			}
		}
		if !dup {
			uniq = append(uniq, c)
		}
	}
	return uniq, true
}

// Approx reports whether queries over conds on this view are answered
// approximately by the sketch tier, and if so the analytic one-sided
// error bound of the sketch that covers the conjunction: the
// single-condition sketch for one condition, the pair ring for two (the
// pair sketch estimates the two-way conjunction itself), each holding
// with probability >= 1 - e^-depth. Conjunctions of three or more
// conditions have no covering sketch; the reported bound is the tightest
// pair marginal's bound — the result is guaranteed within that bound of
// the smallest pair count, which upper-bounds (but may exceed) the true
// conjunction.
func (v *View) Approx(conds []Cond, ov *Overlay) (bool, int) {
	if !v.sketchEligible(ov) || !v.condSketched(conds) {
		return false, 0
	}
	uniq, ok := dedupeConds(conds)
	if !ok {
		return false, 0 // contradictory conditions: answered exactly (zero)
	}
	if len(uniq) == 1 {
		as := v.sk.lookupAttr(uniq[0].Attr)
		if as == nil {
			return true, 0
		}
		_, _, b, _ := as.estimate(uniq[0].Value, v.from, v.to)
		return true, int(b)
	}
	best := uint64(math.MaxUint64)
	for i := 0; i < len(uniq); i++ {
		for j := i + 1; j < len(uniq); j++ {
			if !v.sketched[uniq[i].Attr] && !v.sketched[uniq[j].Attr] {
				continue
			}
			a, b := orderPair(uniq[i], uniq[j])
			_, _, bd, _ := v.sk.pairs.estimate(pairSketchKey(a.Attr, a.Value, b.Attr, b.Value), v.from, v.to)
			if bd < best {
				best = bd
			}
		}
	}
	if best == math.MaxUint64 {
		best = 0
	}
	return true, int(best)
}

// orderPair canonicalizes a condition pair (AttrA < AttrB).
func orderPair(a, b Cond) (Cond, Cond) {
	if b.Attr < a.Attr {
		return b, a
	}
	return a, b
}

// edgeRows invokes f(row) for every pinned row of the shard whose time
// falls inside one of the (pairwise disjoint) spans. Sorted shards use
// binary search; unsorted shards scan with a time check.
func (vs *viewShard) edgeRows(edges []span, f func(i int)) {
	if len(edges) == 0 {
		return
	}
	if vs.sorted {
		for _, e := range edges {
			lo := sort.Search(vs.rows, func(i int) bool { return vs.times[i] >= e.from })
			hi := sort.Search(vs.rows, func(i int) bool { return vs.times[i] >= e.to })
			for i := lo; i < hi; i++ {
				f(i)
			}
		}
		return
	}
	for i := 0; i < vs.rows; i++ {
		t := vs.times[i]
		for _, e := range edges {
			if t >= e.from && t < e.to {
				f(i)
				break
			}
		}
	}
}

// sketchCondEstimate is the windowed one-sided estimate of a single
// sketched condition: Count-Min sums over fully covered buckets plus an
// exact scan of the partially covered bucket edges.
func (v *View) sketchCondEstimate(c Cond) (total, drift uint64) {
	as := v.sk.lookupAttr(c.Attr)
	if as == nil {
		return 0, 0
	}
	t, d, _, edges := as.estimate(c.Value, v.from, v.to)
	total, drift = t, d
	if len(edges) == 0 {
		return
	}
	for si := range v.shards {
		vs := &v.shards[si]
		col, ok := vs.cols[c.Attr]
		if !ok {
			continue
		}
		id := col.lookup(c.Value)
		if id == 0 {
			continue
		}
		vs.edgeRows(edges, func(i int) {
			if col.ids[i] == id {
				total++
				if vs.drift[i] {
					drift++
				}
			}
		})
	}
	return
}

// sketchPairEstimate is sketchCondEstimate for a canonical condition pair
// answered from the pair ring.
func (v *View) sketchPairEstimate(a, b Cond) (total, drift uint64) {
	t, d, _, edges := v.sk.pairs.estimate(pairSketchKey(a.Attr, a.Value, b.Attr, b.Value), v.from, v.to)
	total, drift = t, d
	if len(edges) == 0 {
		return
	}
	for si := range v.shards {
		vs := &v.shards[si]
		ca, okA := vs.cols[a.Attr]
		cb, okB := vs.cols[b.Attr]
		if !okA || !okB {
			continue
		}
		ida, idb := ca.lookup(a.Value), cb.lookup(b.Value)
		if ida == 0 || idb == 0 {
			continue
		}
		vs.edgeRows(edges, func(i int) {
			if ca.ids[i] == ida && cb.ids[i] == idb {
				total++
				if vs.drift[i] {
					drift++
				}
			}
		})
	}
	return
}

// countSketch answers Count when at least one condition is sketched: the
// elementwise minimum over every one-sided candidate — the exact bitset
// count of the exact-only condition subset, each sketched condition's
// windowed estimate, and each condition pair's windowed estimate — which
// preserves the one-sided overestimate while tightening multi-condition
// results.
func (v *View) countSketch(conds []Cond, ov *Overlay) (CountResult, error) {
	if err := v.checkConds(conds); err != nil {
		return CountResult{}, err
	}
	// Deduping leaves every attribute distinct, so the pair loop below
	// only probes pairs the ring was actually fed (one-sidedness would
	// break on a never-fed same-attribute pair, which estimates zero).
	conds, ok := dedupeConds(conds)
	if !ok {
		return CountResult{}, nil
	}
	exact := make([]Cond, 0, len(conds))
	for _, c := range conds {
		if !v.sketched[c.Attr] {
			exact = append(exact, c)
		}
	}
	total, drift := uint64(math.MaxUint64), uint64(math.MaxUint64)
	upd := func(t, d uint64) {
		if t < total {
			total = t
		}
		if d < drift {
			drift = d
		}
	}
	if len(exact) > 0 {
		cr, err := v.countBitset(exact, ov)
		if err != nil {
			return CountResult{}, err
		}
		upd(uint64(cr.Total), uint64(cr.Drift))
	}
	for _, c := range conds {
		if v.sketched[c.Attr] {
			upd(v.sketchCondEstimate(c))
		}
	}
	for i := 0; i < len(conds); i++ {
		for j := i + 1; j < len(conds); j++ {
			if !v.sketched[conds[i].Attr] && !v.sketched[conds[j].Attr] {
				continue
			}
			a, b := orderPair(conds[i], conds[j])
			upd(v.sketchPairEstimate(a, b))
		}
	}
	if total == math.MaxUint64 {
		return CountResult{}, nil
	}
	if drift > total {
		drift = total
	}
	return CountResult{Total: int(total), Drift: int(drift)}, nil
}

// attrValueCountsSketch fills the grouped aggregation for sketched
// attributes on an eligible view: Space-Saving heavy hitters enumerate
// the candidate values (every value above N/capacity frequency is
// guaranteed present — exactly the values mining's minimum-occurrence
// threshold can keep), each estimated over the window. Candidates are
// global across time; windowed estimates discard out-of-window mass.
func (v *View) attrValueCountsSketch(out map[string]map[string]CountResult) {
	for name := range v.sketched {
		if !v.attrs[name] {
			continue
		}
		as := v.sk.lookupAttr(name)
		if as == nil {
			continue
		}
		byVal := out[name]
		for _, hhi := range as.hh.Items() {
			t, d := v.sketchCondEstimate(Cond{Attr: name, Value: hhi.Key})
			if t == 0 {
				continue
			}
			if byVal == nil {
				byVal = map[string]CountResult{}
				out[name] = byVal
			}
			byVal[hhi.Key] = CountResult{Total: int(t), Drift: int(d)}
		}
	}
}

// attrValueCountsScanSketched is the exact fallback for ineligible views:
// one row scan accumulating only the sketched columns.
func (v *View) attrValueCountsScanSketched(out map[string]map[string]CountResult, ov *Overlay) {
	var partial [numShards]map[string]map[string]CountResult
	v.eachShard(func(si int) {
		vs := &v.shards[si]
		var cols []namedCol
		for name, c := range vs.cols {
			if c.sketched {
				cols = append(cols, namedCol{name, c})
			}
		}
		if len(cols) == 0 {
			return
		}
		p := map[string]map[string]CountResult{}
		for i := 0; i < vs.rows; i++ {
			if !vs.inWindow(v, i) {
				continue
			}
			d := ov.driftAt(vs, si, i)
			for _, nc := range cols {
				id := nc.c.ids[i]
				if id == 0 {
					continue
				}
				byVal := p[nc.name]
				if byVal == nil {
					byVal = map[string]CountResult{}
					p[nc.name] = byVal
				}
				cr := byVal[nc.c.dict[id]]
				cr.Total++
				if d {
					cr.Drift++
				}
				byVal[nc.c.dict[id]] = cr
			}
		}
		partial[si] = p
	})
	for _, p := range partial {
		for name, byVal := range p {
			dstVals := out[name]
			if dstVals == nil {
				dstVals = map[string]CountResult{}
				out[name] = dstVals
			}
			for val, cr := range byVal {
				acc := dstVals[val]
				acc.Total += cr.Total
				acc.Drift += cr.Drift
				dstVals[val] = acc
			}
		}
	}
}

// pairCountsSketchSection fills pairs touching sketched attributes:
// pair-ring heavy hitters with windowed estimates on eligible views, an
// exact row scan over just those attribute pairs otherwise.
func (v *View) pairCountsSketchSection(out map[PairKey]CountResult, ov *Overlay, exclude map[string]bool) {
	if v.sketchEligible(ov) {
		for _, hhi := range v.sk.pairs.hh.Items() {
			k, ok := parsePairKey(hhi.Key)
			if !ok || exclude[k.AttrA] || exclude[k.AttrB] {
				continue
			}
			if !v.attrs[k.AttrA] || !v.attrs[k.AttrB] {
				continue
			}
			t, d := v.sketchPairEstimate(Cond{k.AttrA, k.ValA}, Cond{k.AttrB, k.ValB})
			if t == 0 {
				continue
			}
			cr := out[k]
			cr.Total += int(t)
			cr.Drift += int(d)
			out[k] = cr
		}
		return
	}
	for si := range v.shards {
		vs := &v.shards[si]
		cols := vs.sortedCols(exclude)
		for a := 0; a < len(cols); a++ {
			for b := a + 1; b < len(cols); b++ {
				if !cols[a].c.sketched && !cols[b].c.sketched {
					continue
				}
				vs.pairScanInto(v, ov, si, cols[a].name, cols[a].c, cols[b].name, cols[b].c, out)
			}
		}
	}
}
