package driftlog

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"
)

// randomColumnarEntries fabricates entries with the awkward shapes the
// columnar path has to survive: attributes missing at random (odd shard
// fills and backfill), variable device cardinality, and scattered
// timestamps.
func randomColumnarEntries(r *rand.Rand, n int) []Entry {
	devs := r.Intn(20) + 1
	base := time.Unix(0, 0).UTC()
	entries := make([]Entry, n)
	for i := range entries {
		attrs := map[string]string{}
		if r.Float64() < 0.9 {
			attrs[AttrWeather] = fmt.Sprintf("w%d", r.Intn(5))
		}
		if r.Float64() < 0.85 {
			attrs[AttrLocation] = fmt.Sprintf("city_%d", r.Intn(7))
		}
		if r.Float64() < 0.75 {
			attrs[AttrDevice] = fmt.Sprintf("dev_%d", r.Intn(devs))
		}
		entries[i] = Entry{
			Time:     base.Add(time.Duration(r.Intn(1000)) * time.Second),
			Drift:    r.Float64() < 0.3,
			SampleID: int64(r.Intn(50)) - 1,
			Attrs:    attrs,
		}
	}
	return entries
}

func TestColumnsFromEntriesRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		r := rand.New(rand.NewSource(seed))
		entries := randomColumnarEntries(r, r.Intn(120))
		b := ColumnsFromEntries(entries)
		if err := b.Validate(); err != nil {
			t.Fatalf("seed %d: ColumnsFromEntries produced invalid batch: %v", seed, err)
		}
		got := b.Entries()
		if len(got) != len(entries) {
			t.Fatalf("seed %d: round trip %d rows, want %d", seed, len(got), len(entries))
		}
		for i := range entries {
			if !reflect.DeepEqual(got[i], entries[i]) {
				t.Fatalf("seed %d row %d: round trip\n got %+v\nwant %+v", seed, i, got[i], entries[i])
			}
		}
	}
}

// TestAppendColumnsDifferential pins the tentpole invariant: a store
// fed through the columnar fast path is row-for-row and query-for-query
// identical to one fed the same entries through AppendBatch.
func TestAppendColumnsDifferential(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		r := rand.New(rand.NewSource(100 + seed))
		entries := randomColumnarEntries(r, r.Intn(200))

		rowStore := NewStore()
		rowStore.AppendBatch(entries)
		colStore := NewStore()
		if err := colStore.AppendColumns(ColumnsFromEntries(entries)); err != nil {
			t.Fatalf("seed %d: AppendColumns: %v", seed, err)
		}

		if rowStore.Len() != colStore.Len() {
			t.Fatalf("seed %d: row store %d rows, columnar store %d", seed, rowStore.Len(), colStore.Len())
		}
		for i := 0; i < rowStore.Len(); i++ {
			re, ce := rowStore.Entry(i), colStore.Entry(i)
			if !reflect.DeepEqual(re, ce) {
				t.Fatalf("seed %d row %d:\n row path %+v\n col path %+v", seed, i, re, ce)
			}
		}

		// The bitset index must agree too, including on sub-windows that
		// cut through shard middles.
		base := time.Unix(0, 0).UTC()
		windows := [][2]time.Time{
			{{}, {}},
			{base.Add(200 * time.Second), base.Add(700 * time.Second)},
		}
		for _, w := range windows {
			rc := rowStore.Window(w[0], w[1]).AttrValueCounts(nil)
			cc := colStore.Window(w[0], w[1]).AttrValueCounts(nil)
			if !reflect.DeepEqual(rc, cc) {
				t.Fatalf("seed %d window %v: counts diverge\n row path %v\n col path %v", seed, w, rc, cc)
			}
		}
		if !reflect.DeepEqual(rowStore.Attributes(), colStore.Attributes()) {
			t.Fatalf("seed %d: attributes %v vs %v", seed, rowStore.Attributes(), colStore.Attributes())
		}
	}
}

func TestAppendColumnsEmptyBatch(t *testing.T) {
	s := NewStore()
	if err := s.AppendColumns(&ColumnarBatch{}); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if s.Len() != 0 {
		t.Fatalf("empty batch appended %d rows", s.Len())
	}
}

func TestAppendColumnsRejectsInvalid(t *testing.T) {
	cases := map[string]*ColumnarBatch{
		"length mismatch": {Times: []int64{1, 2}, Drift: []bool{true}, SampleIDs: []int64{-1, -1}},
		"missing reserved dict slot": {
			Times: []int64{1}, Drift: []bool{false}, SampleIDs: []int64{-1},
			Cols: []ColumnData{{Name: "weather", Dict: []string{"snow"}, IDs: []uint32{0}}},
		},
		"dict id out of range": {
			Times: []int64{1}, Drift: []bool{false}, SampleIDs: []int64{-1},
			Cols: []ColumnData{{Name: "weather", Dict: []string{"", "snow"}, IDs: []uint32{2}}},
		},
		"duplicate column": {
			Times: []int64{1}, Drift: []bool{false}, SampleIDs: []int64{-1},
			Cols: []ColumnData{
				{Name: "weather", Dict: []string{""}, IDs: []uint32{0}},
				{Name: "weather", Dict: []string{""}, IDs: []uint32{0}},
			},
		},
		"empty column name": {
			Times: []int64{1}, Drift: []bool{false}, SampleIDs: []int64{-1},
			Cols: []ColumnData{{Name: "", Dict: []string{""}, IDs: []uint32{0}}},
		},
	}
	for name, b := range cases {
		s := NewStore()
		if err := s.AppendColumns(b); err == nil {
			t.Errorf("%s: AppendColumns accepted an invalid batch", name)
		} else if s.Len() != 0 {
			t.Errorf("%s: invalid batch still appended %d rows", name, s.Len())
		}
	}
}

// TestWALFrameColumnsByteEqual pins the replay-obliviousness contract:
// the columnar WAL encoder must emit byte-identical records to the row
// encoder, so a WAL written through either ingest path replays the
// same.
func TestWALFrameColumnsByteEqual(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		r := rand.New(rand.NewSource(500 + seed))
		entries := randomColumnarEntries(r, r.Intn(80))
		rowFrame := appendWALFrame(nil, entries)
		colFrame := appendWALFrameColumns(nil, ColumnsFromEntries(entries))
		if !bytes.Equal(rowFrame, colFrame) {
			t.Fatalf("seed %d: WAL frames diverge (%d rows): row %d bytes, columnar %d bytes",
				seed, len(entries), len(rowFrame), len(colFrame))
		}
	}
}

// TestWALAppendColumnsReplay proves a columnar-written WAL replays into
// a store identical to the live one.
func TestWALAppendColumnsReplay(t *testing.T) {
	dir := t.TempDir()
	live := NewStore()
	w, err := OpenWAL(dir, live, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(9))
	var all []Entry
	for batch := 0; batch < 4; batch++ {
		entries := randomColumnarEntries(r, 20+r.Intn(30))
		all = append(all, entries...)
		cols := ColumnsFromEntries(entries)
		if err := w.AppendColumns(cols); err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		if err := live.AppendColumns(cols); err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	replayed := NewStore()
	w2, err := OpenWAL(dir, replayed, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if replayed.Len() != len(all) {
		t.Fatalf("replayed %d rows, want %d", replayed.Len(), len(all))
	}
	for i := 0; i < replayed.Len(); i++ {
		if !reflect.DeepEqual(replayed.Entry(i), live.Entry(i)) {
			t.Fatalf("row %d: replayed %+v, live %+v", i, replayed.Entry(i), live.Entry(i))
		}
	}
}

// TestAppendColumnsConcurrent interleaves columnar and row-form appends
// from many goroutines: the shard locks must keep every per-row
// invariant (parallel slices, backfill, bitmap bounds) intact.
func TestAppendColumnsConcurrent(t *testing.T) {
	s := NewStore()
	const goroutines = 8
	const batches = 6
	var wg sync.WaitGroup
	total := 0
	for g := 0; g < goroutines; g++ {
		r := rand.New(rand.NewSource(int64(g)))
		var payloads []*ColumnarBatch
		var rowPayloads [][]Entry
		for i := 0; i < batches; i++ {
			entries := randomColumnarEntries(r, 10+r.Intn(20))
			total += len(entries)
			if g%2 == 0 {
				payloads = append(payloads, ColumnsFromEntries(entries))
			} else {
				rowPayloads = append(rowPayloads, entries)
			}
		}
		wg.Add(1)
		go func(cols []*ColumnarBatch, rows [][]Entry) {
			defer wg.Done()
			for _, b := range cols {
				if err := s.AppendColumns(b); err != nil {
					t.Errorf("AppendColumns: %v", err)
				}
			}
			for _, entries := range rows {
				s.AppendBatch(entries)
			}
		}(payloads, rowPayloads)
	}
	wg.Wait()
	if s.Len() != total {
		t.Fatalf("store has %d rows, want %d", s.Len(), total)
	}
	// Full-view counts must still be internally consistent: the indexed
	// path and the scan oracle agree after mixed concurrent ingestion.
	v := s.All()
	indexed := v.AttrValueCounts(nil)
	scanned := v.AttrValueCountsScan(nil)
	if !reflect.DeepEqual(indexed, scanned) {
		t.Fatal("bitset index diverged from scan oracle after concurrent mixed appends")
	}
}
