package driftlog_test

// Randomized differential tests: a store rebuilt by WAL replay must be
// indistinguishable from the live store it mirrors — not just row for
// row, but through every aggregation path the analysis pipeline uses
// (Count, AttrValueCounts, PairCounts, and full FIM mining), at pool
// width 1 (fully sequential) and 8 (parallel reduction). Row counts are
// deliberately odd (67, 129, ...) so shard fills are unbalanced and the
// last bitset word of every shard is partial.

import (
	"fmt"
	mrand "math/rand/v2"
	"reflect"
	"testing"
	"time"

	"nazar/internal/driftlog"
	"nazar/internal/fim"
	"nazar/internal/tensor"
)

// diffBatches fabricates a randomized batch sequence: rows rows total,
// random batch sizes, attribute values drawn from small pools so FIM
// has support to find.
func diffBatches(seed uint64, rows int) [][]driftlog.Entry {
	rng := mrand.New(mrand.NewPCG(seed, seed^0xA5A5))
	devices := []string{"d0", "d1", "d2", "d3", "d4", "d5", "d6"}
	weathers := []string{"clear", "snow", "rain", "fog"}
	locations := []string{"north", "south", "east"}
	base := int64(1_700_000_000_000_000_000)
	var batches [][]driftlog.Entry
	k := 0
	for k < rows {
		n := 1 + rng.IntN(9)
		if k+n > rows {
			n = rows - k
		}
		batch := make([]driftlog.Entry, n)
		for i := range batch {
			w := weathers[rng.IntN(len(weathers))]
			batch[i] = driftlog.Entry{
				Time: time.Unix(0, base+int64(k)*1e9).UTC(),
				Attrs: map[string]string{
					driftlog.AttrDevice:   devices[rng.IntN(len(devices))],
					driftlog.AttrWeather:  w,
					driftlog.AttrLocation: locations[rng.IntN(len(locations))],
				},
				// Snow drifts often, everything else rarely: gives Mine
				// a real cause to rank.
				Drift:    (w == "snow" && rng.IntN(10) < 8) || rng.IntN(50) == 0,
				SampleID: int64(k),
			}
			k++
		}
		batches = append(batches, batch)
	}
	return batches
}

// requireSameAnalysis runs every aggregation the pipeline uses on both
// stores and requires identical results.
func requireSameAnalysis(t *testing.T, label string, live, replayed *driftlog.Store) {
	t.Helper()
	lv, rv := live.All(), replayed.All()
	lov, rov := lv.DriftOverlay(), rv.DriftOverlay()

	for _, conds := range [][]driftlog.Cond{
		{{Attr: driftlog.AttrWeather, Value: "snow"}},
		{{Attr: driftlog.AttrWeather, Value: "clear"}, {Attr: driftlog.AttrLocation, Value: "north"}},
		{{Attr: driftlog.AttrDevice, Value: "d3"}},
	} {
		lc, lerr := lv.Count(conds, lov)
		rc, rerr := rv.Count(conds, rov)
		if (lerr == nil) != (rerr == nil) {
			t.Fatalf("%s: Count(%v) errors diverge: %v vs %v", label, conds, lerr, rerr)
		}
		if lc != rc {
			t.Fatalf("%s: Count(%v): live %+v replayed %+v", label, conds, lc, rc)
		}
	}
	if !reflect.DeepEqual(lv.AttrValueCounts(lov), rv.AttrValueCounts(rov)) {
		t.Fatalf("%s: AttrValueCounts diverge", label)
	}
	if !reflect.DeepEqual(lv.PairCounts(lov, nil), rv.PairCounts(rov, nil)) {
		t.Fatalf("%s: PairCounts diverge", label)
	}

	th := fim.DefaultThresholds()
	lm, lerr := fim.Mine(lv, lov, th)
	rm, rerr := fim.Mine(rv, rov, th)
	if (lerr == nil) != (rerr == nil) {
		t.Fatalf("%s: Mine errors diverge: %v vs %v", label, lerr, rerr)
	}
	if !reflect.DeepEqual(lm, rm) {
		t.Fatalf("%s: Mine results diverge:\nlive:     %+v\nreplayed: %+v", label, lm, rm)
	}
}

func TestWALReplayDifferential(t *testing.T) {
	for _, rows := range []int{67, 129, 257} {
		for seed := uint64(1); seed <= 4; seed++ {
			t.Run(fmt.Sprintf("rows=%d/seed=%d", rows, seed), func(t *testing.T) {
				dir := t.TempDir()
				live := driftlog.NewStore()
				// Small segments + auto-compaction: replay crosses
				// snapshot-fold, sealed-segment and active-segment paths.
				w, err := driftlog.OpenWAL(dir, driftlog.NewStore(), driftlog.WALOptions{
					SegmentBytes:    1 << 10,
					CompactSegments: 3,
				})
				if err != nil {
					t.Fatalf("open: %v", err)
				}
				for _, batch := range diffBatches(seed, rows) {
					if err := w.Append(batch); err != nil {
						t.Fatalf("append: %v", err)
					}
					live.AppendBatch(batch)
				}
				if err := w.Close(); err != nil {
					t.Fatalf("close: %v", err)
				}
				if err := w.CompactionErr(); err != nil {
					t.Fatalf("background compaction: %v", err)
				}

				replayed := driftlog.NewStore()
				w2, err := driftlog.OpenWAL(dir, replayed, driftlog.WALOptions{ReadOnly: true})
				if err != nil {
					t.Fatalf("replay: %v", err)
				}
				_ = w2
				if replayed.Len() != rows {
					t.Fatalf("rows: want %d got %d", rows, replayed.Len())
				}

				// Pool width 1 (sequential) and 8 (parallel): the
				// analysis answers must not depend on either the worker
				// pool or which store produced them.
				for _, workers := range []int{1, 8} {
					tensor.SetMaxWorkers(workers)
					requireSameAnalysis(t, fmt.Sprintf("workers=%d", workers), live, replayed)
				}
				tensor.SetMaxWorkers(0)
			})
		}
	}
}
