// Package driftlog implements the cloud-side drift log: the append-only
// table every device reports into and the query surface that root-cause
// analysis mines.
//
// The paper runs this on Amazon Aurora and implements frequent-itemset
// mining as SQL COUNT aggregations. This store provides the identical
// surface — predicate counting over attribute columns within a time
// window, plus a drift-flag overlay for counterfactual analysis — as an
// embedded, dictionary-encoded columnar table with linear-time scans
// (which is what makes Fig. 9d's runtime-vs-rows relationship linear).
package driftlog

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Entry is one drift-log row: the detection verdict plus device metadata.
type Entry struct {
	Time time.Time `json:"time"`
	// Attrs carries all categorical metadata: device ID, location,
	// weather, model version, and anything else the deployment
	// records. Attribute names are free-form.
	Attrs map[string]string `json:"attrs"`
	// Drift is the on-device detector's verdict.
	Drift bool `json:"drift"`
	// SampleID links to an uploaded input sample (-1 when the device
	// did not sample this inference).
	SampleID int64 `json:"sample_id"`
}

// Standard attribute names used by the system components.
const (
	AttrDevice   = "device"
	AttrLocation = "location"
	AttrWeather  = "weather"
	AttrModel    = "model"
)

// column is a dictionary-encoded attribute column. ID 0 is reserved for
// "attribute missing on this row".
type column struct {
	ids   []uint32
	dict  []string          // dict[0] == ""
	index map[string]uint32 // value -> id
}

func newColumn(backfill int) *column {
	c := &column{dict: []string{""}, index: map[string]uint32{}}
	if backfill > 0 {
		c.ids = make([]uint32, backfill)
	}
	return c
}

func (c *column) idOf(v string) (uint32, bool) {
	id, ok := c.index[v]
	return id, ok
}

func (c *column) intern(v string) uint32 {
	if id, ok := c.index[v]; ok {
		return id
	}
	id := uint32(len(c.dict))
	c.dict = append(c.dict, v)
	c.index[v] = id
	return id
}

// Store is the drift log. It is safe for concurrent use.
type Store struct {
	mu      sync.RWMutex
	times   []int64 // unix nanos
	drift   []bool
	samples []int64
	cols    map[string]*column
	order   []string // column names in first-seen order
}

// NewStore returns an empty drift log.
func NewStore() *Store {
	return &Store{cols: map[string]*column{}}
}

// Append ingests one entry.
func (s *Store) Append(e Entry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.appendLocked(e)
}

// AppendBatch ingests entries under a single lock acquisition.
func (s *Store) AppendBatch(entries []Entry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range entries {
		s.appendLocked(e)
	}
}

func (s *Store) appendLocked(e Entry) {
	row := len(s.times)
	s.times = append(s.times, e.Time.UnixNano())
	s.drift = append(s.drift, e.Drift)
	s.samples = append(s.samples, e.SampleID)
	for name, val := range e.Attrs {
		col, ok := s.cols[name]
		if !ok {
			col = newColumn(row)
			s.cols[name] = col
			s.order = append(s.order, name)
		}
		col.ids = append(col.ids, col.intern(val))
	}
	// Backfill missing attributes for this row.
	for _, name := range s.order {
		col := s.cols[name]
		if len(col.ids) == row {
			col.ids = append(col.ids, 0)
		}
	}
}

// Len returns the number of rows.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.times)
}

// Attributes returns the attribute names in first-seen order.
func (s *Store) Attributes() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]string(nil), s.order...)
}

// Entry reconstructs row i (for display and debugging).
func (s *Store) Entry(i int) Entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e := Entry{
		Time:     time.Unix(0, s.times[i]).UTC(),
		Drift:    s.drift[i],
		SampleID: s.samples[i],
		Attrs:    map[string]string{},
	}
	for _, name := range s.order {
		col := s.cols[name]
		if id := col.ids[i]; id != 0 {
			e.Attrs[name] = col.dict[id]
		}
	}
	return e
}

// Cond is an equality predicate on one attribute.
type Cond struct {
	Attr  string
	Value string
}

// View is a read-only window over the store: the rows whose timestamps
// fall in [From, To). A zero From/To means unbounded on that side.
//
// A View pins the row count at creation time, so concurrent appends do
// not shift results mid-analysis.
type View struct {
	s        *Store
	from, to int64
	rows     int
}

// Window returns a view over [from, to). Zero times are unbounded.
func (s *Store) Window(from, to time.Time) *View {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v := &View{s: s, rows: len(s.times)}
	if !from.IsZero() {
		v.from = from.UnixNano()
	}
	if to.IsZero() {
		v.to = 1<<63 - 1
	} else {
		v.to = to.UnixNano()
	}
	return v
}

// All returns a view over every row currently in the store.
func (s *Store) All() *View { return s.Window(time.Time{}, time.Time{}) }

// inWindow reports whether row i falls inside the view.
func (v *View) inWindow(i int) bool {
	t := v.s.times[i]
	return t >= v.from && t < v.to
}

// Len returns the number of rows inside the view.
func (v *View) Len() int {
	v.s.mu.RLock()
	defer v.s.mu.RUnlock()
	n := 0
	for i := 0; i < v.rows; i++ {
		if v.inWindow(i) {
			n++
		}
	}
	return n
}

// CountResult is the aggregate FIM consumes.
type CountResult struct {
	Total int // rows matching the predicate
	Drift int // of those, rows flagged as drift
}

// Count aggregates rows matching every condition. overlay, if non-nil,
// replaces the stored drift flags (indexed by absolute row number) — the
// hook counterfactual analysis uses to "mark" entries as non-drift
// without mutating the log.
func (v *View) Count(conds []Cond, overlay []bool) (CountResult, error) {
	v.s.mu.RLock()
	defer v.s.mu.RUnlock()

	type colCond struct {
		ids []uint32
		id  uint32
	}
	ccs := make([]colCond, 0, len(conds))
	for _, c := range conds {
		col, ok := v.s.cols[c.Attr]
		if !ok {
			return CountResult{}, fmt.Errorf("driftlog: unknown attribute %q", c.Attr)
		}
		id, ok := col.idOf(c.Value)
		if !ok {
			// Value never seen: matches nothing.
			return CountResult{}, nil
		}
		ccs = append(ccs, colCond{ids: col.ids, id: id})
	}

	var res CountResult
rows:
	for i := 0; i < v.rows; i++ {
		if !v.inWindow(i) {
			continue
		}
		for _, cc := range ccs {
			if cc.ids[i] != cc.id {
				continue rows
			}
		}
		res.Total++
		d := v.s.drift[i]
		if overlay != nil {
			d = overlay[i]
		}
		if d {
			res.Drift++
		}
	}
	return res, nil
}

// DriftOverlay copies the stored drift flags for all rows (absolute
// indexing); counterfactual analysis mutates the copy.
func (v *View) DriftOverlay() []bool {
	v.s.mu.RLock()
	defer v.s.mu.RUnlock()
	return append([]bool(nil), v.s.drift[:v.rows]...)
}

// ClearDrift sets overlay[i] = false for every in-window row matching the
// conditions, returning how many flags were cleared.
func (v *View) ClearDrift(conds []Cond, overlay []bool) (int, error) {
	v.s.mu.RLock()
	defer v.s.mu.RUnlock()

	type colCond struct {
		ids []uint32
		id  uint32
	}
	ccs := make([]colCond, 0, len(conds))
	for _, c := range conds {
		col, ok := v.s.cols[c.Attr]
		if !ok {
			return 0, fmt.Errorf("driftlog: unknown attribute %q", c.Attr)
		}
		id, ok := col.idOf(c.Value)
		if !ok {
			return 0, nil
		}
		ccs = append(ccs, colCond{ids: col.ids, id: id})
	}
	cleared := 0
rows:
	for i := 0; i < v.rows; i++ {
		if !v.inWindow(i) {
			continue
		}
		for _, cc := range ccs {
			if cc.ids[i] != cc.id {
				continue rows
			}
		}
		if overlay[i] {
			overlay[i] = false
			cleared++
		}
	}
	return cleared, nil
}

// AttrValueCounts returns, for each attribute, the per-value totals and
// drift counts inside the view — the single-pass aggregation the first
// apriori level needs (one "SQL GROUP BY" per attribute).
func (v *View) AttrValueCounts(overlay []bool) map[string]map[string]CountResult {
	v.s.mu.RLock()
	defer v.s.mu.RUnlock()
	out := make(map[string]map[string]CountResult, len(v.s.order))
	for _, name := range v.s.order {
		out[name] = map[string]CountResult{}
	}
	for i := 0; i < v.rows; i++ {
		if !v.inWindow(i) {
			continue
		}
		d := v.s.drift[i]
		if overlay != nil {
			d = overlay[i]
		}
		for _, name := range v.s.order {
			col := v.s.cols[name]
			id := col.ids[i]
			if id == 0 {
				continue
			}
			val := col.dict[id]
			cr := out[name][val]
			cr.Total++
			if d {
				cr.Drift++
			}
			out[name][val] = cr
		}
	}
	return out
}

// PairKey identifies a two-attribute value combination (attributes in
// lexicographic order).
type PairKey struct {
	AttrA, ValA string
	AttrB, ValB string
}

// Conds returns the pair as query conditions.
func (k PairKey) Conds() []Cond {
	return []Cond{{Attr: k.AttrA, Value: k.ValA}, {Attr: k.AttrB, Value: k.ValB}}
}

// PairCounts aggregates, in a single scan, the totals and drift counts of
// every two-attribute value combination present in the view (excluding
// the listed attributes). This replaces the per-candidate scans of the
// apriori level-2 join: with k attributes per row it costs O(rows·k²)
// once instead of O(candidates·rows).
func (v *View) PairCounts(overlay []bool, exclude map[string]bool) map[PairKey]CountResult {
	v.s.mu.RLock()
	defer v.s.mu.RUnlock()

	// Collect the included columns once, in name order so pair keys are
	// canonical.
	type col struct {
		name string
		c    *column
	}
	var cols []col
	for _, name := range v.s.order {
		if exclude[name] {
			continue
		}
		cols = append(cols, col{name, v.s.cols[name]})
	}
	sort.Slice(cols, func(i, j int) bool { return cols[i].name < cols[j].name })

	out := map[PairKey]CountResult{}
	for i := 0; i < v.rows; i++ {
		if !v.inWindow(i) {
			continue
		}
		d := v.s.drift[i]
		if overlay != nil {
			d = overlay[i]
		}
		for a := 0; a < len(cols); a++ {
			ida := cols[a].c.ids[i]
			if ida == 0 {
				continue
			}
			for b := a + 1; b < len(cols); b++ {
				idb := cols[b].c.ids[i]
				if idb == 0 {
					continue
				}
				k := PairKey{
					AttrA: cols[a].name, ValA: cols[a].c.dict[ida],
					AttrB: cols[b].name, ValB: cols[b].c.dict[idb],
				}
				cr := out[k]
				cr.Total++
				if d {
					cr.Drift++
				}
				out[k] = cr
			}
		}
	}
	return out
}

// SampleIDs returns the sample IDs (≥ 0 only) of in-window rows matching
// the conditions — how adaptation gathers the uploaded images of a root
// cause.
func (v *View) SampleIDs(conds []Cond) ([]int64, error) {
	v.s.mu.RLock()
	defer v.s.mu.RUnlock()

	type colCond struct {
		ids []uint32
		id  uint32
	}
	ccs := make([]colCond, 0, len(conds))
	for _, c := range conds {
		col, ok := v.s.cols[c.Attr]
		if !ok {
			return nil, fmt.Errorf("driftlog: unknown attribute %q", c.Attr)
		}
		id, ok := col.idOf(c.Value)
		if !ok {
			return nil, nil
		}
		ccs = append(ccs, colCond{ids: col.ids, id: id})
	}
	var out []int64
rows:
	for i := 0; i < v.rows; i++ {
		if !v.inWindow(i) {
			continue
		}
		for _, cc := range ccs {
			if cc.ids[i] != cc.id {
				continue rows
			}
		}
		if v.s.samples[i] >= 0 {
			out = append(out, v.s.samples[i])
		}
	}
	return out, nil
}
