// Package driftlog implements the cloud-side drift log: the append-only
// table every device reports into and the query surface that root-cause
// analysis mines.
//
// The paper runs this on Amazon Aurora and implements frequent-itemset
// mining as SQL COUNT aggregations. This store provides the identical
// surface — predicate counting over attribute columns within a time
// window, plus a drift-flag overlay for counterfactual analysis — as an
// embedded, dictionary-encoded columnar table with linear-time scans
// (which is what makes Fig. 9d's runtime-vs-rows relationship linear).
//
// To serve fleet-scale ingestion the table is sharded by device: each
// shard is an independent columnar table behind its own lock, so
// concurrent devices append without contending on a global mutex, and
// window queries snapshot every shard once and then scan lock-free.
// Every row also carries a global sequence number, which defines the
// canonical row order (Entry, SampleIDs, WriteTo) so sharding never
// changes observable ordering or the on-disk format.
package driftlog

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nazar/internal/tensor"
)

// Entry is one drift-log row: the detection verdict plus device metadata.
type Entry struct {
	Time time.Time `json:"time"`
	// Attrs carries all categorical metadata: device ID, location,
	// weather, model version, and anything else the deployment
	// records. Attribute names are free-form.
	Attrs map[string]string `json:"attrs"`
	// Drift is the on-device detector's verdict.
	Drift bool `json:"drift"`
	// SampleID links to an uploaded input sample (-1 when the device
	// did not sample this inference).
	SampleID int64 `json:"sample_id"`
}

// Standard attribute names used by the system components.
const (
	AttrDevice   = "device"
	AttrLocation = "location"
	AttrWeather  = "weather"
	AttrModel    = "model"
)

// numShards is the shard count (power of two; shard = hash & shardMask).
const (
	numShards = 16
	shardMask = numShards - 1
)

// column is a dictionary-encoded attribute column. ID 0 is reserved for
// "attribute missing on this row". bits[id] is the value's row bitmap,
// maintained at append time (bits[0] stays nil; trailing zero words are
// omitted, so a bitmap only grows when its value appears).
type column struct {
	ids   []uint32
	dict  []string          // dict[0] == ""
	index map[string]uint32 // value -> id
	bits  [][]uint64        // parallel to dict
	// sketched marks a column whose attribute tiered onto the sketch
	// layer: per-value bitmaps are freed and no longer maintained (ids
	// and dict stay, so exact row scans still work).
	sketched bool
}

func newColumn(backfill int) *column {
	c := &column{dict: []string{""}, index: map[string]uint32{}, bits: [][]uint64{nil}}
	if backfill > 0 {
		c.ids = make([]uint32, backfill)
	}
	return c
}

func (c *column) idOf(v string) (uint32, bool) {
	id, ok := c.index[v]
	return id, ok
}

func (c *column) intern(v string) uint32 {
	if id, ok := c.index[v]; ok {
		return id
	}
	id := uint32(len(c.dict))
	c.dict = append(c.dict, v)
	c.bits = append(c.bits, nil)
	c.index[v] = id
	return id
}

// shard is one independently locked columnar sub-table.
type shard struct {
	mu        sync.RWMutex
	seqs      []int64 // global sequence numbers (not sorted under concurrency)
	times     []int64 // unix nanos
	drift     []bool
	driftBits []uint64 // bitmap mirror of drift (trailing zero words omitted)
	samples   []int64
	cols      map[string]*column
	order     []string // column names in shard-first-seen order
	// timeSorted tracks whether the shard's timestamps are monotonically
	// non-decreasing (true until an out-of-order append), enabling
	// binary-search window fast paths on views.
	timeSorted bool
}

// Store is the drift log. It is safe for concurrent use: appends from
// different devices land on different shards and proceed in parallel.
type Store struct {
	seq    atomic.Int64 // next global sequence number
	shards [numShards]shard

	// compacted counts rows removed by retention compaction (exposed via
	// Stats for the observability layer).
	compacted atomic.Int64

	// compactions counts Compact calls that removed rows. Compaction
	// renumbers rows and rebuilds dictionaries/bitmaps, so any cache keyed
	// on per-shard row counts must include this generation counter.
	compactions atomic.Int64

	// attrMu guards the store-wide attribute registry (first-seen order
	// across all shards) and the per-attribute distinct-value tracking
	// sets behind the sketch tiering decision.
	attrMu    sync.RWMutex
	attrSeen  map[string]bool
	attrOrder []string
	card      map[string]map[string]bool

	// Tiered sketch layer (see sketchindex.go). sketchedPtr holds the
	// immutable snapshot of sketched attribute names; feed paths load it
	// once under the shard lock.
	sk         *sketchIndex
	sketchedPtr atomic.Pointer[map[string]bool]
}

// NewStore returns an empty drift log with the default sketch tiering
// configuration (threshold 4096 — ordinary categorical attributes stay on
// the exact bitset tier).
func NewStore() *Store {
	return NewStoreWithSketch(SketchConfig{})
}

// NewStoreWithSketch returns an empty drift log with the given sketch
// tiering configuration (zero fields take defaults).
func NewStoreWithSketch(cfg SketchConfig) *Store {
	s := &Store{
		attrSeen: map[string]bool{},
		card:     map[string]map[string]bool{},
		sk:       newSketchIndex(cfg),
	}
	for i := range s.shards {
		s.shards[i].cols = map[string]*column{}
		s.shards[i].timeSorted = true
	}
	return s
}

// shardFor picks the shard for an entry: by device-attribute hash when
// present (so one device's rows stay together), round-robin by sequence
// otherwise.
func shardFor(e Entry, seq int64) int {
	if dev, ok := e.Attrs[AttrDevice]; ok {
		return int(hashString(dev) & shardMask)
	}
	return int(seq & shardMask)
}

// hashString is FNV-1a.
func hashString(s string) uint64 {
	h := uint64(1469598103934665603)
	for _, b := range []byte(s) {
		h = (h ^ uint64(b)) * 1099511628211
	}
	return h
}

// registerAttrs records attribute names in the store-wide registry.
func (s *Store) registerAttrs(attrs map[string]string) {
	missing := false
	s.attrMu.RLock()
	for name := range attrs {
		if !s.attrSeen[name] {
			missing = true
			break
		}
	}
	s.attrMu.RUnlock()
	if !missing {
		return
	}
	// Collect and sort the new names so concurrent first appearances
	// register in a deterministic relative order.
	var fresh []string
	s.attrMu.Lock()
	for name := range attrs {
		if !s.attrSeen[name] {
			fresh = append(fresh, name)
		}
	}
	sort.Strings(fresh)
	for _, name := range fresh {
		s.attrSeen[name] = true
		s.attrOrder = append(s.attrOrder, name)
	}
	s.attrMu.Unlock()
}

// Append ingests one entry.
func (s *Store) Append(e Entry) {
	s.registerAttrs(e.Attrs)
	s.observeCardinality(e.Attrs)
	seq := s.seq.Add(1) - 1
	sh := &s.shards[shardFor(e, seq)]
	sh.mu.Lock()
	sketched := s.sketchedSet()
	sh.appendLocked(seq, e, sketched)
	s.feedRowLocked(sketched, e.Time.UnixNano(), e.Drift, e.Attrs)
	sh.mu.Unlock()
}

// AppendBatch ingests entries with one lock acquisition per touched
// shard, preserving the slice order in the store's canonical (sequence)
// order.
func (s *Store) AppendBatch(entries []Entry) {
	if len(entries) == 0 {
		return
	}
	for _, e := range entries {
		s.registerAttrs(e.Attrs)
		s.observeCardinality(e.Attrs)
	}
	base := s.seq.Add(int64(len(entries))) - int64(len(entries))
	type job struct {
		seq int64
		e   Entry
	}
	var jobs [numShards][]job
	for i, e := range entries {
		seq := base + int64(i)
		si := shardFor(e, seq)
		jobs[si] = append(jobs[si], job{seq, e})
	}
	for si := range jobs {
		if len(jobs[si]) == 0 {
			continue
		}
		sh := &s.shards[si]
		sh.mu.Lock()
		sketched := s.sketchedSet()
		for _, j := range jobs[si] {
			sh.appendLocked(j.seq, j.e, sketched)
			s.feedRowLocked(sketched, j.e.Time.UnixNano(), j.e.Drift, j.e.Attrs)
		}
		sh.mu.Unlock()
	}
}

func (sh *shard) appendLocked(seq int64, e Entry, sketched map[string]bool) {
	row := len(sh.times)
	t := e.Time.UnixNano()
	if row > 0 && t < sh.times[row-1] {
		sh.timeSorted = false
	}
	sh.seqs = append(sh.seqs, seq)
	sh.times = append(sh.times, t)
	sh.drift = append(sh.drift, e.Drift)
	if e.Drift {
		sh.driftBits = setBit(sh.driftBits, row)
	}
	sh.samples = append(sh.samples, e.SampleID)
	for name, val := range e.Attrs {
		col, ok := sh.cols[name]
		if !ok {
			col = newColumn(row)
			col.sketched = sketched[name]
			sh.cols[name] = col
			sh.order = append(sh.order, name)
		}
		id := col.intern(val)
		col.ids = append(col.ids, id)
		if !col.sketched {
			col.bits[id] = setBit(col.bits[id], row)
		}
	}
	// Backfill missing attributes for this row.
	for _, name := range sh.order {
		col := sh.cols[name]
		if len(col.ids) == row {
			col.ids = append(col.ids, 0)
		}
	}
}

// Len returns the number of rows.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.times)
		sh.mu.RUnlock()
	}
	return n
}

// Stats is an operational snapshot of the store, consumed by the
// observability layer's gauge functions at scrape time.
type Stats struct {
	// Rows is the current row count; ShardRows is its per-shard
	// decomposition (shard balance is the health signal for the
	// device-hash placement).
	Rows      int
	ShardRows []int
	// Attributes is the number of distinct attribute names ever seen.
	Attributes int
	// CompactedRows counts rows removed by retention compaction since
	// the store was created.
	CompactedRows int64
	// OldestTime / NewestTime bound the retained rows' timestamps (zero
	// when the store is empty) — the "snapshot age" of the log.
	OldestTime, NewestTime time.Time
	// IndexBitmaps / IndexWords size the bitset index: live
	// per-(attribute, value) bitmaps (plus drift bitmaps) and the total
	// 64-bit words they hold.
	IndexBitmaps int
	IndexWords   int
	// Sketch tier: attributes answered by sketches, live sub-sketch
	// buckets (pair ring included), total sketch bytes, and buckets
	// folded into "rest" by eviction since the store was created.
	SketchAttrs   int
	SketchBuckets int
	SketchBytes   int64
	SketchEvicted int64
}

// Stats returns the current operational snapshot. It scans row
// timestamps, which is linear in the store size but cheap relative to a
// scrape interval (a few µs per 100k rows).
func (s *Store) Stats() Stats {
	st := Stats{ShardRows: make([]int, numShards), CompactedRows: s.compacted.Load()}
	var oldest, newest int64
	seen := false
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		st.ShardRows[i] = len(sh.times)
		st.Rows += len(sh.times)
		if len(sh.driftBits) > 0 {
			st.IndexBitmaps++
			st.IndexWords += len(sh.driftBits)
		}
		for _, col := range sh.cols {
			for _, bm := range col.bits {
				if bm != nil {
					st.IndexBitmaps++
					st.IndexWords += len(bm)
				}
			}
		}
		for _, t := range sh.times {
			if !seen || t < oldest {
				oldest = t
			}
			if !seen || t > newest {
				newest = t
			}
			seen = true
		}
		sh.mu.RUnlock()
	}
	s.attrMu.RLock()
	st.Attributes = len(s.attrOrder)
	s.attrMu.RUnlock()
	st.SketchAttrs = len(s.sketchedSet())
	s.sk.collectStats(&st)
	if st.Rows > 0 {
		st.OldestTime = time.Unix(0, oldest).UTC()
		st.NewestTime = time.Unix(0, newest).UTC()
	}
	return st
}

// Attributes returns the attribute names in first-seen order.
func (s *Store) Attributes() []string {
	s.attrMu.RLock()
	defer s.attrMu.RUnlock()
	return append([]string(nil), s.attrOrder...)
}

// rowRef locates one row for cross-shard ordering.
type rowRef struct {
	seq   int64
	shard int
	row   int
}

// orderedRows returns every current row sorted by global sequence.
func (s *Store) orderedRows() []rowRef {
	var refs []rowRef
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for r, seq := range sh.seqs {
			refs = append(refs, rowRef{seq: seq, shard: i, row: r})
		}
		sh.mu.RUnlock()
	}
	sort.Slice(refs, func(a, b int) bool { return refs[a].seq < refs[b].seq })
	return refs
}

// Each invokes f on every current row in canonical (ingest-sequence)
// order. The global ordering is computed once for the whole pass, so a
// full-store sweep is O(n log n) — repeated Entry(i) calls re-derive
// the ordering per call and degrade to O(n² log n) on large logs (the
// chaos harnesses audit six-figure row counts).
func (s *Store) Each(f func(i int, e Entry)) {
	refs := s.orderedRows()
	for i, ref := range refs {
		sh := &s.shards[ref.shard]
		sh.mu.RLock()
		e := sh.entryLocked(ref.row)
		sh.mu.RUnlock()
		f(i, e)
	}
}

// Entry reconstructs the i-th row in canonical (ingest-sequence) order —
// for display, debugging and persistence tests.
func (s *Store) Entry(i int) Entry {
	refs := s.orderedRows()
	ref := refs[i]
	sh := &s.shards[ref.shard]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.entryLocked(ref.row)
}

func (sh *shard) entryLocked(i int) Entry {
	e := Entry{
		Time:     time.Unix(0, sh.times[i]).UTC(),
		Drift:    sh.drift[i],
		SampleID: sh.samples[i],
		Attrs:    map[string]string{},
	}
	for _, name := range sh.order {
		col := sh.cols[name]
		if id := col.ids[i]; id != 0 {
			e.Attrs[name] = col.dict[id]
		}
	}
	return e
}

// Cond is an equality predicate on one attribute.
type Cond struct {
	Attr  string
	Value string
}

// viewCol pins one shard column at snapshot time. bits (indexed views
// only) pins the value bitmaps, parallel to dict. sketched columns carry
// no bitmaps — queries on them are answered by the sketch layer or by
// exact row scans over the retained ids.
type viewCol struct {
	ids      []uint32
	dict     []string
	bits     []bmSnap
	sketched bool
}

// lookup resolves a value to its dictionary ID (0 = not present).
func (c viewCol) lookup(v string) uint32 {
	for i := 1; i < len(c.dict); i++ {
		if c.dict[i] == v {
			return uint32(i)
		}
	}
	return 0
}

// viewShard is the immutable snapshot of one shard: slice headers pinned
// at creation, so scans touch no locks and concurrent appends (which only
// write beyond the pinned lengths) never shift results mid-analysis. The
// same argument pins the bitset index: appends only mutate the word
// covering the row being written, so the fully populated word prefix is
// shared by reference and the single partial word at the pinned row
// boundary is copied by value (bmSnap.tail) under the shard lock.
type viewShard struct {
	offset  int // base index of this shard's rows in the view's row numbering
	rows    int
	seqs    []int64
	times   []int64
	drift   []bool
	samples []int64
	cols    map[string]viewCol

	// Bitset index (indexed views only).
	indexed   bool
	fullWords int    // rows / 64
	window    bmSnap // rows passing the view's window predicate
	driftBM   bmSnap // stored drift flags

	// Delta-view predicate (Since): a row qualifies when it is new
	// (row index >= minRow) or was previously outside the window's upper
	// bound (time >= prevTo). Zero minRow accepts every in-window row.
	minRow int
	prevTo int64

	// sorted pins the shard's timestamp monotonicity at snapshot time,
	// enabling binary-search window materialization and edge scans.
	sorted bool
}

// View is a read-only window over the store: the rows whose timestamps
// fall in [From, To). A zero From/To means unbounded on that side.
//
// A View snapshots every shard at creation time; all subsequent reads are
// lock-free and unaffected by concurrent appends. Overlays returned by
// DriftOverlay are indexed by the view's own row numbering and must only
// be passed back to the view that produced them.
type View struct {
	from, to int64
	attrs    map[string]bool // attribute registry pinned at creation
	total    int
	noIndex  bool // WindowScan views: force the row-scan oracle paths
	shards   [numShards]viewShard

	// Sketch layer pinned at creation: the sketched-attribute snapshot
	// and the live sketch index. delta marks Since-derived views, which
	// the sketches cannot answer (they cover whole windows, not row
	// deltas) — those fall back to exact scans for sketched attributes.
	sk       *sketchIndex
	sketched map[string]bool
	delta    bool
}

// Window returns a view over [from, to). Zero times are unbounded. The
// view carries a pinned snapshot of the bitset index, so Count,
// ClearDrift and AttrValueCounts run as word-wise AND + popcount.
func (s *Store) Window(from, to time.Time) *View { return s.window(from, to, true) }

// WindowScan returns a view with no index snapshot: every query runs the
// retained row-scan loops. It exists for differential tests and
// benchmarks (the scan oracle baseline); results are identical to an
// indexed view's by contract.
func (s *Store) WindowScan(from, to time.Time) *View { return s.window(from, to, false) }

func (s *Store) window(from, to time.Time, indexed bool) *View {
	v := &View{attrs: map[string]bool{}, noIndex: !indexed, sk: s.sk, sketched: s.sketchedSet()}
	s.attrMu.RLock()
	for _, name := range s.attrOrder {
		v.attrs[name] = true
	}
	s.attrMu.RUnlock()
	if !from.IsZero() {
		v.from = from.UnixNano()
	}
	if to.IsZero() {
		v.to = 1<<63 - 1
	} else {
		v.to = to.UnixNano()
	}
	offset := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		rows := len(sh.times)
		vs := viewShard{
			offset:  offset,
			rows:    rows,
			seqs:    sh.seqs[:rows],
			times:   sh.times[:rows],
			drift:   sh.drift[:rows],
			samples: sh.samples[:rows],
			cols:    make(map[string]viewCol, len(sh.cols)),
			sorted:  sh.timeSorted,
		}
		if indexed {
			fw := rows >> 6
			rem := uint(rows & 63)
			vs.driftBM = snapBitmap(sh.driftBits, fw, rem)
			for name, col := range sh.cols {
				if col.sketched {
					vs.cols[name] = viewCol{ids: col.ids[:rows], dict: col.dict, sketched: true}
					continue
				}
				nvals := len(col.dict)
				bits := make([]bmSnap, nvals)
				for id := 1; id < nvals; id++ {
					bits[id] = snapBitmap(col.bits[id], fw, rem)
				}
				vs.cols[name] = viewCol{ids: col.ids[:rows], dict: col.dict[:nvals], bits: bits}
			}
		} else {
			for name, col := range sh.cols {
				vs.cols[name] = viewCol{ids: col.ids[:rows], dict: col.dict}
			}
		}
		sh.mu.RUnlock()
		v.shards[i] = vs
		if indexed {
			// Outside the lock: reads only the pinned times.
			v.shards[i].buildWindowBM(v)
		}
		offset += rows
	}
	v.total = offset
	return v
}

// buildWindowBM materializes the shard's window-predicate bitmap (one
// pass over the pinned timestamps; skipped entirely for unbounded
// views).
func (vs *viewShard) buildWindowBM(v *View) {
	fw := vs.rows >> 6
	rem := uint(vs.rows & 63)
	vs.fullWords = fw
	words := make([]uint64, fw)
	var tail uint64
	if v.from == 0 && v.to == 1<<63-1 && vs.minRow == 0 {
		for i := range words {
			words[i] = ^uint64(0)
		}
		if rem > 0 {
			tail = 1<<rem - 1
		}
	} else if vs.sorted {
		// Sorted shard: the window predicate selects one contiguous row
		// range — [from, to) becomes [lo, hi) by binary search, and the
		// delta predicate (i >= minRow || t >= prevTo) collapses to
		// i >= min(minRow, first row with t >= prevTo). Materialization
		// is O(rows/64) instead of O(rows), which is what keeps delta
		// views over a grown log proportional to the delta.
		lo := sort.Search(vs.rows, func(i int) bool { return vs.times[i] >= v.from })
		hi := vs.rows
		if v.to != 1<<63-1 {
			hi = sort.Search(vs.rows, func(i int) bool { return vs.times[i] >= v.to })
		}
		if vs.minRow > 0 {
			pTo := sort.Search(vs.rows, func(i int) bool { return vs.times[i] >= vs.prevTo })
			m := vs.minRow
			if pTo < m {
				m = pTo
			}
			if m > lo {
				lo = m
			}
		}
		tail = setBitRange(words, tail, fw, lo, hi)
	} else {
		for i := 0; i < vs.rows; i++ {
			if !vs.inWindow(v, i) {
				continue
			}
			if w := i >> 6; w < fw {
				words[w] |= 1 << (uint(i) & 63)
			} else {
				tail |= 1 << (uint(i) & 63)
			}
		}
	}
	vs.window = bmSnap{words: words, tail: tail}
	vs.indexed = true
}

// setBitRange sets bits [lo, hi) across the word array plus the logical
// tail word at index fw, filling covered words wholesale. Returns the
// updated tail.
func setBitRange(words []uint64, tail uint64, fw, lo, hi int) uint64 {
	set := func(w int, mask uint64) {
		if w < fw {
			words[w] |= mask
		} else {
			tail |= mask
		}
	}
	for lo < hi {
		w := lo >> 6
		end := (w + 1) << 6
		if end > hi {
			end = hi
		}
		mask := ^uint64(0)
		if b := uint(lo) & 63; b > 0 {
			mask &^= 1<<b - 1
		}
		if r := uint(end) & 63; r > 0 {
			mask &= 1<<r - 1
		}
		set(w, mask)
		lo = end
	}
	return tail
}

// All returns a view over every row currently in the store.
func (s *Store) All() *View { return s.Window(time.Time{}, time.Time{}) }

// Bounds returns the view's window as unix nanos (to is 1<<63-1 when
// unbounded) — the identity half of an analysis-cache key.
func (v *View) Bounds() (from, to int64) { return v.from, v.to }

// ShardRows returns the per-shard pinned row counts — the watermark half
// of an analysis-cache key. Shards are append-only between compactions,
// so a previous view's rows form a stable prefix of a later view's.
func (v *View) ShardRows() []int {
	out := make([]int, numShards)
	for i := range v.shards {
		out[i] = v.shards[i].rows
	}
	return out
}

// Since derives the delta view of a grown window from the same pinned
// snapshot: the rows of v that a previous view with per-shard row counts
// prevRows and upper bound prevTo (unix nanos) did not contain — either
// appended after it (row index >= prevRows[shard]) or previously beyond
// its upper bound (time >= prevTo, for cumulative windows whose `to`
// advances). Counts over the delta add to the previous view's counts to
// give v's, which is what incremental mining exploits. prevRows must
// come from ShardRows of a view of the same store with no intervening
// compaction.
func (v *View) Since(prevRows []int, prevTo int64) (*View, error) {
	if len(prevRows) != numShards {
		return nil, fmt.Errorf("driftlog: Since: got %d shard watermarks, want %d", len(prevRows), numShards)
	}
	d := &View{from: v.from, to: v.to, attrs: v.attrs, total: v.total, noIndex: v.noIndex,
		sk: v.sk, sketched: v.sketched, delta: true}
	d.shards = v.shards
	for si := range d.shards {
		vs := &d.shards[si]
		if prevRows[si] < 0 || prevRows[si] > vs.rows {
			return nil, fmt.Errorf("driftlog: Since: shard %d watermark %d out of range [0,%d]", si, prevRows[si], vs.rows)
		}
		vs.minRow = prevRows[si]
		vs.prevTo = prevTo
		if !d.noIndex {
			vs.buildWindowBM(d)
		}
	}
	return d, nil
}

// parallelScanRows is the pinned-row count above which per-shard scans
// fan out over the worker pool.
const parallelScanRows = 2048

// eachShard runs f(i) for every shard, in parallel when the view is large
// enough (and the pool is wider than one worker). f writes only to
// per-shard slots, so scheduling never affects results.
func (v *View) eachShard(f func(i int)) {
	if v.total < parallelScanRows || tensor.Workers() <= 1 {
		for i := range v.shards {
			f(i)
		}
		return
	}
	tensor.ParallelFor(numShards, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			f(i)
		}
	})
}

// inWindow reports whether row i of the shard falls inside the view
// (including the delta predicate of Since-derived views).
func (vs *viewShard) inWindow(v *View, i int) bool {
	t := vs.times[i]
	if t < v.from || t >= v.to {
		return false
	}
	return i >= vs.minRow || t >= vs.prevTo
}

// Len returns the number of rows inside the view.
func (v *View) Len() int {
	if !v.noIndex {
		n := 0
		for si := range v.shards {
			vs := &v.shards[si]
			for _, w := range vs.window.words {
				n += onesCount(w)
			}
			n += onesCount(vs.window.tail)
		}
		return n
	}
	var counts [numShards]int
	v.eachShard(func(si int) {
		vs := &v.shards[si]
		for i := 0; i < vs.rows; i++ {
			if vs.inWindow(v, i) {
				counts[si]++
			}
		}
	})
	n := 0
	for _, c := range counts {
		n += c
	}
	return n
}

// CountResult is the aggregate FIM consumes.
type CountResult struct {
	Total int // rows matching the predicate
	Drift int // of those, rows flagged as drift
}

// colCond is one resolved equality predicate on a shard snapshot.
type colCond struct {
	ids []uint32
	id  uint32
}

// resolveConds maps conditions onto one shard's columns. match=false
// means the predicate can never match in this shard (value or column
// absent there). An attribute unknown to the whole store is an error,
// preserving the unsharded store's contract.
func (v *View) resolveConds(vs *viewShard, conds []Cond) (ccs []colCond, match bool, err error) {
	// Validate every attribute name before any per-shard short-circuit,
	// so the error is independent of which shard a value landed in.
	if err := v.checkConds(conds); err != nil {
		return nil, false, err
	}
	ccs = make([]colCond, 0, len(conds))
	for _, c := range conds {
		col, ok := vs.cols[c.Attr]
		if !ok {
			return nil, false, nil // column never appeared in this shard
		}
		id := col.lookup(c.Value)
		if id == 0 {
			return nil, false, nil // value never seen in this shard
		}
		ccs = append(ccs, colCond{ids: col.ids, id: id})
	}
	return ccs, true, nil
}

// Count aggregates rows matching every condition. The overlay, if
// non-nil, replaces the stored drift flags — the hook counterfactual
// analysis uses to "mark" entries as non-drift without mutating the log.
// On indexed views this is a word-wise AND + popcount over the pinned
// bitmaps; WindowScan views fall back to the row-scan oracle.
func (v *View) Count(conds []Cond, ov *Overlay) (CountResult, error) {
	if v.noIndex {
		return v.CountScan(conds, ov)
	}
	if v.condSketched(conds) {
		// Sketched attributes carry no bitmaps: answer from the sketch
		// layer when the view is sketch-eligible, else exact row scan.
		if v.sketchEligible(ov) {
			return v.countSketch(conds, ov)
		}
		return v.CountScan(conds, ov)
	}
	return v.countBitset(conds, ov)
}

// CountScan is the retained row-scan oracle for Count: result-identical
// by contract, kept for differential tests and as the fallback for
// index-free views.
func (v *View) CountScan(conds []Cond, ov *Overlay) (CountResult, error) {
	var partial [numShards]CountResult
	var errs [numShards]error
	v.eachShard(func(si int) {
		vs := &v.shards[si]
		ccs, match, err := v.resolveConds(vs, conds)
		if err != nil {
			errs[si] = err
			return
		}
		if !match {
			return
		}
		var res CountResult
	rows:
		for i := 0; i < vs.rows; i++ {
			if !vs.inWindow(v, i) {
				continue
			}
			for _, cc := range ccs {
				if cc.ids[i] != cc.id {
					continue rows
				}
			}
			res.Total++
			if ov.driftAt(vs, si, i) {
				res.Drift++
			}
		}
		partial[si] = res
	})
	var out CountResult
	for si := range partial {
		if errs[si] != nil {
			return CountResult{}, errs[si]
		}
		out.Total += partial[si].Total
		out.Drift += partial[si].Drift
	}
	return out, nil
}

// ClearDrift clears the overlaid drift flag of every in-window row
// matching the conditions, returning how many flags were cleared. A
// mutating call stamps the overlay with a fresh epoch (see
// Overlay.Epoch). Indexed views clear word-wise; WindowScan views fall
// back to the row-scan oracle.
func (v *View) ClearDrift(conds []Cond, ov *Overlay) (int, error) {
	if v.noIndex || v.condSketched(conds) {
		// Sketched attributes clear via the exact row scan (their ids
		// are retained), so counterfactual clearing is never approximate.
		return v.ClearDriftScan(conds, ov)
	}
	return v.clearDriftBitset(conds, ov)
}

// ClearDriftScan is the retained row-scan oracle for ClearDrift.
func (v *View) ClearDriftScan(conds []Cond, ov *Overlay) (int, error) {
	var cleared [numShards]int
	var errs [numShards]error
	v.eachShard(func(si int) {
		vs := &v.shards[si]
		ccs, match, err := v.resolveConds(vs, conds)
		if err != nil {
			errs[si] = err
			return
		}
		if !match {
			return
		}
		var words []uint64
	rows:
		for i := 0; i < vs.rows; i++ {
			if !vs.inWindow(v, i) {
				continue
			}
			for _, cc := range ccs {
				if cc.ids[i] != cc.id {
					continue rows
				}
			}
			if words == nil {
				// Per-shard slots: safe under the parallel fan-out.
				words = ov.materialize(si)
			}
			w, bit := i>>6, uint64(1)<<(uint(i)&63)
			if words[w]&bit != 0 {
				words[w] &^= bit
				cleared[si]++
			}
		}
	})
	n := 0
	for si := range cleared {
		if errs[si] != nil {
			return 0, errs[si]
		}
		n += cleared[si]
	}
	if n > 0 {
		ov.bump()
	}
	return n, nil
}

// AttrValueCounts returns, for each attribute, the per-value totals and
// drift counts inside the view — the single-pass aggregation the first
// apriori level needs (one "SQL GROUP BY" per attribute). Indexed views
// answer with one AND + popcount per (attribute, value) bitmap;
// WindowScan views fall back to the row-scan oracle.
func (v *View) AttrValueCounts(ov *Overlay) map[string]map[string]CountResult {
	return v.AttrValueCountsInto(nil, ov)
}

// AttrValueCountsInto is AttrValueCounts writing into dst (reusing its
// maps when the attribute sets agree), so a caller aggregating every
// window can run allocation-free in steady state. dst may be nil.
func (v *View) AttrValueCountsInto(dst map[string]map[string]CountResult, ov *Overlay) map[string]map[string]CountResult {
	if v.noIndex {
		return v.attrValueCountsScanInto(dst, ov)
	}
	out := v.attrValueCountsBitset(dst, ov)
	if len(v.sketched) > 0 {
		// Sketched attributes contributed nothing to the bitset pass;
		// fill them from heavy-hitter candidates (eligible views) or an
		// exact row scan over just those columns.
		if v.sketchEligible(ov) {
			v.attrValueCountsSketch(out)
		} else {
			v.attrValueCountsScanSketched(out, ov)
		}
	}
	return out
}

// AttrValueCountsScan is the retained row-scan oracle for
// AttrValueCounts.
func (v *View) AttrValueCountsScan(ov *Overlay) map[string]map[string]CountResult {
	return v.attrValueCountsScanInto(nil, ov)
}

func (v *View) attrValueCountsScanInto(dst map[string]map[string]CountResult, ov *Overlay) map[string]map[string]CountResult {
	var partial [numShards]map[string]map[string]CountResult
	v.eachShard(func(si int) {
		vs := &v.shards[si]
		out := map[string]map[string]CountResult{}
		type namedCol struct {
			name string
			c    viewCol
		}
		cols := make([]namedCol, 0, len(vs.cols))
		for name, c := range vs.cols {
			cols = append(cols, namedCol{name, c})
		}
		for i := 0; i < vs.rows; i++ {
			if !vs.inWindow(v, i) {
				continue
			}
			d := ov.driftAt(vs, si, i)
			for _, nc := range cols {
				id := nc.c.ids[i]
				if id == 0 {
					continue
				}
				byVal := out[nc.name]
				if byVal == nil {
					byVal = map[string]CountResult{}
					out[nc.name] = byVal
				}
				val := nc.c.dict[id]
				cr := byVal[val]
				cr.Total++
				if d {
					cr.Drift++
				}
				byVal[val] = cr
			}
		}
		partial[si] = out
	})
	out := resetAttrValueCounts(dst, v)
	for _, p := range partial {
		for name, byVal := range p {
			dstVals := out[name]
			if dstVals == nil {
				dstVals = map[string]CountResult{}
				out[name] = dstVals
			}
			for val, cr := range byVal {
				acc := dstVals[val]
				acc.Total += cr.Total
				acc.Drift += cr.Drift
				dstVals[val] = acc
			}
		}
	}
	return out
}

// namedCol pairs a shard column with its attribute name.
type namedCol struct {
	name string
	c    viewCol
}

// sortedCols collects the shard's non-excluded columns in name order,
// so pair keys come out canonical (AttrA < AttrB).
func (vs *viewShard) sortedCols(exclude map[string]bool) []namedCol {
	cols := make([]namedCol, 0, len(vs.cols))
	for name, c := range vs.cols {
		if exclude[name] {
			continue
		}
		cols = append(cols, namedCol{name, c})
	}
	sort.Slice(cols, func(i, j int) bool { return cols[i].name < cols[j].name })
	return cols
}

// PairKey identifies a two-attribute value combination (attributes in
// lexicographic order).
type PairKey struct {
	AttrA, ValA string
	AttrB, ValB string
}

// Conds returns the pair as query conditions.
func (k PairKey) Conds() []Cond {
	return []Cond{{Attr: k.AttrA, Value: k.ValA}, {Attr: k.AttrB, Value: k.ValB}}
}

// PairCounts aggregates the totals and drift counts of every
// two-attribute value combination present in the view (excluding the
// listed attributes). This replaces the per-candidate scans of the
// apriori level-2 join. On indexed views each attribute pair is counted
// by popcounting the cross product of its value bitmaps (falling back
// to a row scan for pathologically high-cardinality pairs, see
// maxPairCross); WindowScan views run the retained grouped row scan.
func (v *View) PairCounts(ov *Overlay, exclude map[string]bool) map[PairKey]CountResult {
	if v.noIndex {
		return v.PairCountsScan(ov, exclude)
	}
	out := v.pairCountsBitset(ov, exclude)
	if len(v.sketched) > 0 {
		// Pairs touching sketched attributes were skipped by the bitset
		// pass; fill them from the pair ring (eligible views) or an
		// exact row scan over just those attribute pairs.
		v.pairCountsSketchSection(out, ov, exclude)
	}
	return out
}

// PairCountsScan is the retained grouped row-scan oracle for
// PairCounts: one pass over the rows, O(rows·k²) for k attributes per
// row, fanned out per shard on large views.
func (v *View) PairCountsScan(ov *Overlay, exclude map[string]bool) map[PairKey]CountResult {
	var partial [numShards]map[PairKey]CountResult
	v.eachShard(func(si int) {
		vs := &v.shards[si]
		cols := vs.sortedCols(exclude)
		out := map[PairKey]CountResult{}
		for i := 0; i < vs.rows; i++ {
			if !vs.inWindow(v, i) {
				continue
			}
			d := ov.driftAt(vs, si, i)
			for a := 0; a < len(cols); a++ {
				ida := cols[a].c.ids[i]
				if ida == 0 {
					continue
				}
				for b := a + 1; b < len(cols); b++ {
					idb := cols[b].c.ids[i]
					if idb == 0 {
						continue
					}
					k := PairKey{
						AttrA: cols[a].name, ValA: cols[a].c.dict[ida],
						AttrB: cols[b].name, ValB: cols[b].c.dict[idb],
					}
					cr := out[k]
					cr.Total++
					if d {
						cr.Drift++
					}
					out[k] = cr
				}
			}
		}
		partial[si] = out
	})
	out := map[PairKey]CountResult{}
	for _, p := range partial {
		for k, cr := range p {
			acc := out[k]
			acc.Total += cr.Total
			acc.Drift += cr.Drift
			out[k] = acc
		}
	}
	return out
}

// SampleIDs returns the sample IDs (≥ 0 only) of in-window rows matching
// the conditions, in canonical (ingest-sequence) row order — how
// adaptation gathers the uploaded images of a root cause.
func (v *View) SampleIDs(conds []Cond) ([]int64, error) {
	type hit struct {
		seq int64
		id  int64
	}
	var partial [numShards][]hit
	var errs [numShards]error
	v.eachShard(func(si int) {
		vs := &v.shards[si]
		ccs, match, err := v.resolveConds(vs, conds)
		if err != nil {
			errs[si] = err
			return
		}
		if !match {
			return
		}
	rows:
		for i := 0; i < vs.rows; i++ {
			if !vs.inWindow(v, i) {
				continue
			}
			for _, cc := range ccs {
				if cc.ids[i] != cc.id {
					continue rows
				}
			}
			if vs.samples[i] >= 0 {
				partial[si] = append(partial[si], hit{seq: vs.seqs[i], id: vs.samples[i]})
			}
		}
	})
	var hits []hit
	for si := range partial {
		if errs[si] != nil {
			return nil, errs[si]
		}
		hits = append(hits, partial[si]...)
	}
	sort.Slice(hits, func(a, b int) bool { return hits[a].seq < hits[b].seq })
	var out []int64
	for _, h := range hits {
		out = append(out, h.id)
	}
	return out, nil
}
