package driftlog

import (
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// fuzzSegment builds a well-formed segment file from batches.
func fuzzSegment(batches ...[]Entry) []byte {
	b := []byte(walMagic)
	for _, batch := range batches {
		b = appendWALFrame(b, batch)
	}
	return b
}

// FuzzWALReplay feeds arbitrary bytes to the WAL as the final (tail)
// segment of a log and requires that replay never panics: it either
// recovers a prefix (possibly empty, possibly after truncating a torn
// tail) or refuses with a typed *CorruptError. On success the recovered
// store must be fully queryable and the WAL appendable.
func FuzzWALReplay(f *testing.F) {
	valid := fuzzSegment(walBatch(0, 3), walBatch(3, 5))
	f.Add(valid)
	f.Add(valid[:len(valid)-3])           // torn mid-record
	f.Add(valid[:len(walMagic)+2])        // torn mid-frame-header
	f.Add([]byte(walMagic))               // header only
	f.Add([]byte("NZWAL9"))               // short header
	f.Add([]byte("BOGUSMAG"))             // wrong magic, right length
	f.Add([]byte{})                       // empty file
	f.Add(fuzzSegment())                  // valid empty segment
	f.Add(fuzzSegment(walBatch(0, 1)))    // single record
	flip := append([]byte(nil), valid...) // CRC mismatch
	flip[len(flip)-2] ^= 0x10
	f.Add(flip)
	huge := append([]byte(walMagic), 0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0) // 2 GiB claim
	f.Add(huge)
	zero := append([]byte(walMagic), 0, 0, 0, 0, 0, 0, 0, 0) // zero-length record
	f.Add(zero)
	badver := fuzzSegment(walBatch(0, 2))
	badver[len(walMagic)+8] = 99 // unsupported record version
	badver = fixCRC(badver)
	f.Add(badver)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, segName(1))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		s := NewStore()
		w, err := OpenWAL(dir, s, WALOptions{})
		if err != nil {
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("replay failed with an untyped error: %v", err)
			}
			return
		}
		defer w.Close()
		// Recovered: the store must answer queries and accept appends.
		if _, err := s.All().Count(nil, nil); err != nil {
			t.Fatalf("recovered store not queryable: %v", err)
		}
		if err := w.Append(walBatch(100, 2)); err != nil {
			t.Fatalf("recovered WAL not appendable: %v", err)
		}
		// Replay must be a prefix: whatever it recovered, a second
		// replay of the (now truncated/cleaned) directory agrees.
		if err := w.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		s2 := NewStore()
		w2, err := OpenWAL(dir, s2, WALOptions{ReadOnly: true})
		if err != nil {
			t.Fatalf("second replay diverged into an error: %v", err)
		}
		_ = w2
		if s2.Len() != s.Len()+2 {
			t.Fatalf("second replay rows: want %d got %d", s.Len()+2, s2.Len())
		}
	})
}

// fixCRC rewrites the first frame's CRC so a deliberately mutated
// payload still passes the checksum and reaches the decoder.
func fixCRC(seg []byte) []byte {
	p := seg[len(walMagic):]
	length := int(uint32(p[0]) | uint32(p[1])<<8 | uint32(p[2])<<16 | uint32(p[3])<<24)
	payload := p[8 : 8+length]
	crc := crc32.Checksum(payload, walCRC)
	p[4], p[5], p[6], p[7] = byte(crc), byte(crc>>8), byte(crc>>16), byte(crc>>24)
	return seg
}
