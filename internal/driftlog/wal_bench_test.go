package driftlog

import (
	"fmt"
	"testing"
)

// BenchmarkDriftlogAppend prices durability: the same batched append
// with and without a write-ahead log in front of the store. The wal
// variant pays one frame encode + write + fsync per batch — the
// nowal/wal pair in BENCH_wal.json is the durability overhead factor.
func BenchmarkDriftlogAppend(b *testing.B) {
	for _, per := range []int{16, 256} {
		batch := walBatch(0, per)
		b.Run(fmt.Sprintf("nowal/%d", per), func(b *testing.B) {
			s := NewStore()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.AppendBatch(batch)
			}
			reportRowRate(b, per)
		})
		b.Run(fmt.Sprintf("wal/%d", per), func(b *testing.B) {
			s := NewStore()
			w, err := OpenWAL(b.TempDir(), s, WALOptions{SegmentBytes: 64 << 20})
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.Append(batch); err != nil {
					b.Fatal(err)
				}
				s.AppendBatch(batch)
			}
			reportRowRate(b, per)
		})
	}
}

// BenchmarkWALReplay measures recovery speed: rows per second from a
// cold directory into a fresh store (read-only replay, so iterations
// do not mutate the log). Split across active-segment-only and
// mostly-snapshot layouts, which stress the frame decoder and the gob
// snapshot reader respectively.
func BenchmarkWALReplay(b *testing.B) {
	const per = 64
	for _, tc := range []struct {
		name    string
		batches int
		opts    WALOptions
	}{
		{"segments/2k", 32, WALOptions{SegmentBytes: 64 << 20}},
		{"segments/8k", 128, WALOptions{SegmentBytes: 64 << 20}},
		{"segments/32k", 512, WALOptions{SegmentBytes: 64 << 20}},
		{"snapshot/8k", 128, WALOptions{SegmentBytes: 32 << 10, CompactSegments: 4}},
		{"snapshot/32k", 512, WALOptions{SegmentBytes: 32 << 10, CompactSegments: 4}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			dir := b.TempDir()
			w, err := OpenWAL(dir, NewStore(), tc.opts)
			if err != nil {
				b.Fatal(err)
			}
			rows := 0
			for i := 0; i < tc.batches; i++ {
				if err := w.Append(walBatch(rows, per)); err != nil {
					b.Fatal(err)
				}
				rows += per
			}
			if err := w.Close(); err != nil {
				b.Fatal(err)
			}
			if err := w.CompactionErr(); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := NewStore()
				if _, err := OpenWAL(dir, s, WALOptions{ReadOnly: true}); err != nil {
					b.Fatal(err)
				}
				if s.Len() != rows {
					b.Fatalf("replayed %d rows, want %d", s.Len(), rows)
				}
			}
			reportRowRate(b, rows)
		})
	}
}

// reportRowRate attaches a rows/s metric so BENCH_wal.json carries
// absolute throughput next to the ns/op.
func reportRowRate(b *testing.B, rowsPerOp int) {
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(rowsPerOp)*float64(b.N)/sec, "rows/s")
	}
}
