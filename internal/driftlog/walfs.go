// WAL filesystem abstraction. The write-ahead log never touches the
// OS directly: every file operation flows through a walFS, so the crash
// harness can substitute an in-memory filesystem that counts operations,
// kills the "process" after the Nth write/sync, and models which bytes
// actually survived (only what was fsynced is guaranteed; an unsynced
// tail may survive partially — a torn record).
//
// The production implementation (osFS) follows the standard durable
// pattern: data fsynced before it is acknowledged, temp-file + rename
// for atomic replacement, and a directory fsync after metadata changes
// so segment creation and snapshot renames survive power loss.
package driftlog

import (
	"io"
	"os"
	"path/filepath"
)

// walFile is one open WAL file: append-only when created, read-only
// when opened.
type walFile interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync makes everything written so far durable.
	Sync() error
}

// walFS is the filesystem surface the WAL needs. Paths are plain
// slash-joined strings rooted at the WAL directory.
type walFS interface {
	// MkdirAll creates the WAL directory (and parents).
	MkdirAll(dir string) error
	// ReadDir lists the file names (not paths) in dir.
	ReadDir(dir string) ([]string, error)
	// Create opens path for appending, truncating any existing file.
	Create(path string) (walFile, error)
	// Open opens path read-only.
	Open(path string) (walFile, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes path.
	Remove(path string) error
	// Truncate cuts path to size bytes (dropping a torn tail).
	Truncate(path string, size int64) error
	// SyncDir fsyncs the directory so entry creations/renames are
	// durable.
	SyncDir(dir string) error
}

// osFS is the production walFS.
type osFS struct{}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names, nil
}

func (osFS) Create(path string) (walFile, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
}

func (osFS) Open(path string) (walFile, error) { return os.Open(path) }

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(path string) error { return os.Remove(path) }

func (osFS) Truncate(path string, size int64) error { return os.Truncate(path, size) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	// Directory fsync is advisory on some filesystems; a failure there
	// must not fail the write path that already fsynced its data.
	_ = d.Sync()
	return d.Close()
}

// syncDir is the package-level helper SaveFile shares with the WAL.
func syncDir(dir string) error { return osFS{}.SyncDir(dir) }

// dirOf mirrors filepath.Dir for walFS paths.
func dirOf(path string) string { return filepath.Dir(path) }
