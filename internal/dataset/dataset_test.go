package dataset

import (
	"math"
	"testing"

	"nazar/internal/imagesim"
	"nazar/internal/nn"
	"nazar/internal/tensor"
	"nazar/internal/weather"
)

func TestCityscapesSplitsMatchEkyaRatios(t *testing.T) {
	cfg := CityscapesConfig{Total: 2000, Devices: 2, Seed: 1}
	ds := NewCityscapes(cfg)
	if ds.Train.Len() != 280 { // 14%
		t.Fatalf("train = %d, want 280", ds.Train.Len())
	}
	if ds.Val.Len() != 120 { // 6%
		t.Fatalf("val = %d, want 120", ds.Val.Len())
	}
	if len(ds.Stream) != 1600 { // 80%
		t.Fatalf("stream = %d, want 1600", len(ds.Stream))
	}
	if ds.World.Classes() != len(CityscapesClasses) {
		t.Fatal("class count mismatch")
	}
}

func TestCityscapesStreamProperties(t *testing.T) {
	ds := NewCityscapes(CityscapesConfig{Total: 1000, Devices: 3, Seed: 2})
	last := ds.Stream[0].Time
	locs := map[string]bool{}
	devs := map[string]bool{}
	for _, it := range ds.Stream {
		if it.Time.Before(last) {
			t.Fatal("stream not time-sorted")
		}
		last = it.Time
		if it.Time.Before(weather.Start) || it.Time.After(weather.End.AddDate(0, 0, 1)) {
			t.Fatalf("timestamp %v outside window", it.Time)
		}
		locs[it.Location] = true
		devs[it.DeviceID] = true
		if it.Class < 0 || it.Class >= ds.World.Classes() {
			t.Fatalf("class %d out of range", it.Class)
		}
		if len(it.X) != ds.World.Dim() {
			t.Fatal("bad feature dim")
		}
	}
	if len(locs) != len(weather.CityscapesLocations) {
		t.Fatalf("saw %d locations", len(locs))
	}
	if len(devs) != len(weather.CityscapesLocations)*3 {
		t.Fatalf("saw %d devices, want %d", len(devs), len(weather.CityscapesLocations)*3)
	}
}

func TestAnimalsPerClassSplits(t *testing.T) {
	cfg := AnimalsConfig{Classes: 10, TrainPerClass: 5, ValPerClass: 2,
		DevicesPerLocation: 2, ArrivalMeanPerDay: 1, DayLimit: 10, Seed: 3}
	ds := NewAnimals(cfg)
	if ds.Train.Len() != 50 || ds.Val.Len() != 20 {
		t.Fatalf("splits %d/%d", ds.Train.Len(), ds.Val.Len())
	}
	counts := map[int]int{}
	for _, c := range ds.Train.Labels {
		counts[c]++
	}
	for c := 0; c < 10; c++ {
		if counts[c] != 5 {
			t.Fatalf("class %d has %d train examples", c, counts[c])
		}
	}
}

func TestAnimalsPoissonArrivalVolume(t *testing.T) {
	cfg := AnimalsConfig{Classes: 8, TrainPerClass: 2, ValPerClass: 1,
		DevicesPerLocation: 4, ArrivalMeanPerDay: 2, DayLimit: 20, Seed: 4}
	ds := NewAnimals(cfg)
	expected := float64(len(weather.AnimalsLocations) * 4 * 20 * 2)
	got := float64(len(ds.Stream))
	if got < expected*0.8 || got > expected*1.2 {
		t.Fatalf("stream size %v, expected around %v", got, expected)
	}
}

func TestAnimalsZipfSkew(t *testing.T) {
	uniform := locationClassDist(20, 0, 1, "New York")
	skewed := locationClassDist(20, 1.5, 1, "New York")
	for _, p := range uniform {
		if math.Abs(p-0.05) > 1e-12 {
			t.Fatalf("alpha=0 should be uniform, got %v", p)
		}
	}
	// Skewed distribution concentrates: top class probability far
	// above uniform.
	var maxP, sum float64
	for _, p := range skewed {
		sum += p
		if p > maxP {
			maxP = p
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probs sum to %v", sum)
	}
	if maxP < 0.15 {
		t.Fatalf("alpha=1.5 max prob %v, want > 0.15", maxP)
	}
}

func TestZipfPermutationVariesByLocation(t *testing.T) {
	a := locationClassDist(30, 1, 7, "Beijing")
	b := locationClassDist(30, 1, 7, "Quebec")
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different locations must rank classes differently")
	}
}

func TestDeterminism(t *testing.T) {
	a := NewAnimals(AnimalsConfig{Classes: 6, TrainPerClass: 3, ValPerClass: 1,
		DevicesPerLocation: 1, ArrivalMeanPerDay: 1, DayLimit: 5, Seed: 9})
	b := NewAnimals(AnimalsConfig{Classes: 6, TrainPerClass: 3, ValPerClass: 1,
		DevicesPerLocation: 1, ArrivalMeanPerDay: 1, DayLimit: 5, Seed: 9})
	if len(a.Stream) != len(b.Stream) {
		t.Fatal("stream sizes differ")
	}
	for i := range a.Stream {
		if a.Stream[i].Class != b.Stream[i].Class || !a.Stream[i].Time.Equal(b.Stream[i].Time) {
			t.Fatal("streams differ under same seed")
		}
	}
}

func TestWindowSlices(t *testing.T) {
	ds := NewCityscapes(CityscapesConfig{Total: 800, Devices: 1, Seed: 10})
	wins := ds.WindowSlices(8)
	total := 0
	for i, w := range wins {
		total += len(w)
		if len(w) == 0 {
			t.Fatalf("window %d empty", i)
		}
	}
	if total != len(ds.Stream) {
		t.Fatalf("windows cover %d of %d", total, len(ds.Stream))
	}
	// Windows must be in time order end-to-end.
	var prev = wins[0][0].Time
	for _, w := range wins {
		for _, it := range w {
			if it.Time.Before(prev) {
				t.Fatal("window items out of order")
			}
			prev = it.Time
		}
	}
}

func TestPoissonMean(t *testing.T) {
	rng := tensor.NewRand(11, 11)
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(poisson(2, rng))
	}
	mean := sum / n
	if math.Abs(mean-2) > 0.06 {
		t.Fatalf("poisson mean %v, want ~2", mean)
	}
}

// TestCalibrationCleanAccuracy is the key substrate-calibration check:
// models trained on the synthetic worlds must land in the paper's clean
// accuracy band, per-class accuracy must spread widely (Fig. 5b), and a
// severity-3 corruption must knock accuracy down hard.
func TestCalibrationCleanAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	ds := NewAnimals(AnimalsConfig{Classes: 30, TrainPerClass: 60, ValPerClass: 20,
		DevicesPerLocation: 1, ArrivalMeanPerDay: 1, DayLimit: 1, Seed: 42})
	rng := tensor.NewRand(42, 99)
	net := nn.NewClassifier(nn.ArchResNet50, ds.World.Dim(), ds.World.Classes(), rng)
	nn.Fit(net, ds.Train.X, ds.Train.Labels, nn.TrainConfig{Epochs: 30, BatchSize: 32, Rng: rng})

	clean := net.Accuracy(ds.Val.X, ds.Val.Labels)
	if clean < 0.60 || clean > 0.97 {
		t.Fatalf("clean val accuracy %v outside calibrated band [0.60, 0.97]", clean)
	}

	acc, present := nn.PerClassAccuracy(net, ds.Val.X, ds.Val.Labels, ds.World.Classes())
	lo, hi := 1.0, 0.0
	for c, ok := range present {
		if !ok {
			continue
		}
		lo = math.Min(lo, acc[c])
		hi = math.Max(hi, acc[c])
	}
	if hi-lo < 0.25 {
		t.Fatalf("per-class accuracy spread %v–%v too narrow for Fig 5b", lo, hi)
	}

	corrupted := ds.World.CorruptBatch(ds.Val.X, imagesim.Fog, imagesim.DefaultSeverity, rng)
	corrAcc := net.Accuracy(corrupted, ds.Val.Labels)
	if corrAcc > clean-0.10 {
		t.Fatalf("fog severity 3 should cost >= 10 points: clean %v corrupted %v", clean, corrAcc)
	}
}
