// Package dataset assembles the two evaluation workloads of the paper:
//
//   - Cityscapes-analogue: an 8-way traffic-object classification set
//     derived the way Ekya preprocesses cityscapes (14 % train / 6 % val /
//     80 % stream), with images tagged by European city and submitted for
//     inference at equal intervals over January 1 – April 21, 2020.
//   - Animals-analogue: an N-way species-classification app deployed at
//     seven continental locations, each with a configurable device count,
//     Poisson arrivals (mean two images per device per day), and a
//     per-location Zipf class skew.
//
// Images are clean here; weather-driven corruption is applied downstream
// (by the pipeline, from the weather generator) or directly by
// microbenchmarks.
package dataset

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"time"

	"nazar/internal/imagesim"
	"nazar/internal/tensor"
	"nazar/internal/weather"
)

// Split is a supervised data split.
type Split struct {
	X      *tensor.Matrix
	Labels []int
}

// Len returns the number of examples in the split.
func (s Split) Len() int { return len(s.Labels) }

// StreamItem is one image awaiting inference on a device.
type StreamItem struct {
	X        []float64 // clean features; corruptions applied downstream
	Class    int
	Time     time.Time
	Location string
	DeviceID string
}

// Dataset is a complete workload: a world, supervised splits, and a
// time-ordered inference stream.
type Dataset struct {
	Name      string
	World     *imagesim.World
	Train     Split
	Val       Split
	Stream    []StreamItem
	Locations []string
}

// CityscapesClasses are the traffic-object categories of the
// Ekya-preprocessed cityscapes classification task.
var CityscapesClasses = []string{
	"car", "person", "bicycle", "truck", "bus", "motorcycle", "rider", "traffic-sign",
}

// CityscapesConfig parameterizes the cityscapes-analogue build.
type CityscapesConfig struct {
	// Total is the overall image count across all splits (the paper's
	// full set is 27,604; defaults scale it down for speed).
	Total int
	// Devices is the number of vehicles per city.
	Devices int
	Seed    uint64
}

// DefaultCityscapes returns a laptop-scale configuration.
func DefaultCityscapes(seed uint64) CityscapesConfig {
	return CityscapesConfig{Total: 6000, Devices: 2, Seed: seed}
}

// NewCityscapes builds the cityscapes-analogue dataset.
func NewCityscapes(cfg CityscapesConfig) *Dataset {
	if cfg.Total <= 0 {
		cfg.Total = 6000
	}
	if cfg.Devices <= 0 {
		cfg.Devices = 2
	}
	classes := len(CityscapesClasses)
	world := imagesim.NewWorld(imagesim.DefaultConfig(classes, cfg.Seed))
	rng := tensor.NewRand(cfg.Seed, 0xC17E5)

	nTrain := cfg.Total * 14 / 100
	nVal := cfg.Total * 6 / 100
	nStream := cfg.Total - nTrain - nVal

	ds := &Dataset{
		Name:      "cityscapes",
		World:     world,
		Locations: weather.CityscapesLocations,
	}
	ds.Train = sampleSplit(world, nTrain, rng)
	ds.Val = sampleSplit(world, nVal, rng)

	// Streamed images arrive at equal intervals across the window,
	// spread round-robin over cities and vehicles.
	window := weather.End.Sub(weather.Start)
	ds.Stream = make([]StreamItem, 0, nStream)
	for i := 0; i < nStream; i++ {
		c := rng.IntN(classes)
		loc := ds.Locations[i%len(ds.Locations)]
		dev := fmt.Sprintf("vehicle_%s_%d", loc, (i/len(ds.Locations))%cfg.Devices)
		frac := float64(i) / float64(nStream)
		ts := weather.Start.Add(time.Duration(frac * float64(window)))
		ds.Stream = append(ds.Stream, StreamItem{
			X:        world.Sample(c, rng),
			Class:    c,
			Time:     ts,
			Location: loc,
			DeviceID: dev,
		})
	}
	sortStream(ds.Stream)
	return ds
}

// AnimalsConfig parameterizes the animals-analogue build.
type AnimalsConfig struct {
	// Classes is the species count (201 in the paper; defaults scale
	// down for speed).
	Classes       int
	TrainPerClass int
	ValPerClass   int
	// DevicesPerLocation defaults to the paper's 16.
	DevicesPerLocation int
	// ArrivalMeanPerDay is the Poisson mean of images per device per
	// day (paper default 2).
	ArrivalMeanPerDay float64
	// Alpha is the Zipf class-skew exponent (paper default 0 =
	// uniform; 1–2 for the skew experiments).
	Alpha float64
	// DayLimit, if positive, truncates the stream to the first N days.
	DayLimit int
	Seed     uint64
}

// DefaultAnimals returns a laptop-scale configuration.
func DefaultAnimals(seed uint64) AnimalsConfig {
	return AnimalsConfig{
		Classes:            40,
		TrainPerClass:      40,
		ValPerClass:        8,
		DevicesPerLocation: 16,
		ArrivalMeanPerDay:  2,
		Alpha:              0,
		Seed:               seed,
	}
}

// NewAnimals builds the animals-analogue dataset.
func NewAnimals(cfg AnimalsConfig) *Dataset {
	if cfg.Classes <= 1 {
		cfg.Classes = 40
	}
	if cfg.TrainPerClass <= 0 {
		cfg.TrainPerClass = 40
	}
	if cfg.ValPerClass <= 0 {
		cfg.ValPerClass = 8
	}
	if cfg.DevicesPerLocation <= 0 {
		cfg.DevicesPerLocation = 16
	}
	if cfg.ArrivalMeanPerDay <= 0 {
		cfg.ArrivalMeanPerDay = 2
	}
	world := imagesim.NewWorld(imagesim.DefaultConfig(cfg.Classes, cfg.Seed))
	rng := tensor.NewRand(cfg.Seed, 0xA111A)

	ds := &Dataset{
		Name:      "animals",
		World:     world,
		Locations: weather.AnimalsLocations,
	}
	ds.Train = samplePerClass(world, cfg.TrainPerClass, rng)
	ds.Val = samplePerClass(world, cfg.ValPerClass, rng)

	days := weather.Days()
	if cfg.DayLimit > 0 && cfg.DayLimit < days {
		days = cfg.DayLimit
	}
	for _, loc := range ds.Locations {
		dist := locationClassDist(cfg.Classes, cfg.Alpha, cfg.Seed, loc)
		for dev := 0; dev < cfg.DevicesPerLocation; dev++ {
			devID := fmt.Sprintf("android_%s_%d", loc, dev)
			for d := 0; d < days; d++ {
				n := poisson(cfg.ArrivalMeanPerDay, rng)
				for k := 0; k < n; k++ {
					c := sampleDist(dist, rng)
					ts := weather.Day(d).Add(time.Duration(rng.Int64N(int64(24 * time.Hour))))
					ds.Stream = append(ds.Stream, StreamItem{
						X:        world.Sample(c, rng),
						Class:    c,
						Time:     ts,
						Location: loc,
						DeviceID: devID,
					})
				}
			}
		}
	}
	sortStream(ds.Stream)
	return ds
}

// sampleSplit draws n examples with uniform class labels.
func sampleSplit(world *imagesim.World, n int, rng *rand.Rand) Split {
	x := tensor.New(n, world.Dim())
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		c := rng.IntN(world.Classes())
		labels[i] = c
		copy(x.Row(i), world.Sample(c, rng))
	}
	return Split{X: x, Labels: labels}
}

// samplePerClass draws perClass examples of every class.
func samplePerClass(world *imagesim.World, perClass int, rng *rand.Rand) Split {
	n := perClass * world.Classes()
	x := tensor.New(n, world.Dim())
	labels := make([]int, n)
	i := 0
	for c := 0; c < world.Classes(); c++ {
		for k := 0; k < perClass; k++ {
			labels[i] = c
			copy(x.Row(i), world.Sample(c, rng))
			i++
		}
	}
	return Split{X: x, Labels: labels}
}

// locationClassDist builds the per-location class distribution: a
// location-specific permutation of classes with Zipf(alpha) rank
// probabilities (alpha 0 = uniform).
func locationClassDist(classes int, alpha float64, seed uint64, location string) []float64 {
	perm := permFor(classes, seed, location)
	probs := make([]float64, classes)
	var z float64
	for r := 0; r < classes; r++ {
		w := 1.0
		if alpha > 0 {
			w = math.Pow(float64(r+1), -alpha)
		}
		probs[perm[r]] = w
		z += w
	}
	for i := range probs {
		probs[i] /= z
	}
	return probs
}

// permFor returns a deterministic location-specific class permutation.
func permFor(classes int, seed uint64, location string) []int {
	h := uint64(1469598103934665603)
	for _, b := range []byte(location) {
		h = (h ^ uint64(b)) * 1099511628211
	}
	rng := tensor.NewRand(seed^h, 0x9E37)
	perm := make([]int, classes)
	for i := range perm {
		perm[i] = i
	}
	rng.Shuffle(classes, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	return perm
}

// sampleDist draws an index from a discrete distribution.
func sampleDist(probs []float64, rng *rand.Rand) int {
	u := rng.Float64()
	var acc float64
	for i, p := range probs {
		acc += p
		if u < acc {
			return i
		}
	}
	return len(probs) - 1
}

// poisson draws from Poisson(mean) via Knuth's method (fine for small
// means like the paper's 2/day).
func poisson(mean float64, rng *rand.Rand) int {
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

func sortStream(s []StreamItem) {
	sort.SliceStable(s, func(i, j int) bool { return s[i].Time.Before(s[j].Time) })
}

// WindowSlices splits the stream into n contiguous equal-duration time
// windows over the evaluation calendar (the paper divides the workload
// into 8 by default). Items outside the calendar fall into the nearest
// window.
func (d *Dataset) WindowSlices(n int) [][]StreamItem {
	out := make([][]StreamItem, n)
	total := weather.End.AddDate(0, 0, 1).Sub(weather.Start)
	for _, item := range d.Stream {
		idx := int(float64(item.Time.Sub(weather.Start)) / float64(total) * float64(n))
		if idx < 0 {
			idx = 0
		}
		if idx >= n {
			idx = n - 1
		}
		out[idx] = append(out[idx], item)
	}
	return out
}
