// Package privacy implements the paper's second future-work direction
// (§6, "developing techniques for improved user privacy"): differential
// privacy for the sampled inputs devices upload for adaptation.
//
// Each uploaded sample is L2-clipped and perturbed with Gaussian noise
// calibrated to an (ε, δ) budget, so the cloud's by-cause adaptation
// never sees a raw input. A simple accountant tracks the budget spent by
// sequential composition across uploads.
package privacy

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sync"
)

// SigmaFor returns the Gaussian-mechanism noise multiplier for one
// release with L2 sensitivity 1 at budget (ε, δ):
// σ = sqrt(2 ln(1.25/δ)) / ε (Dwork & Roth, Thm 3.22; valid for ε ≤ 1,
// conservative above).
func SigmaFor(epsilon, delta float64) (float64, error) {
	if epsilon <= 0 || delta <= 0 || delta >= 1 {
		return 0, fmt.Errorf("privacy: invalid budget epsilon=%v delta=%v", epsilon, delta)
	}
	return math.Sqrt(2*math.Log(1.25/delta)) / epsilon, nil
}

// Clip returns x scaled (if necessary) to L2 norm at most clip.
func Clip(x []float64, clip float64) []float64 {
	out := append([]float64(nil), x...)
	if clip <= 0 {
		return out
	}
	var norm float64
	for _, v := range x {
		norm += v * v
	}
	norm = math.Sqrt(norm)
	if norm > clip {
		scale := clip / norm
		for i := range out {
			out[i] *= scale
		}
	}
	return out
}

// Sanitizer perturbs uploads under a fixed per-sample (ε, δ) budget.
type Sanitizer struct {
	// ClipNorm bounds each sample's L2 norm (the mechanism's
	// sensitivity).
	ClipNorm float64
	// Sigma is the noise multiplier (per unit of sensitivity).
	Sigma float64

	mu       sync.Mutex
	releases int
}

// NewSanitizer builds a sanitizer for a per-sample (ε, δ) budget.
func NewSanitizer(epsilon, delta, clipNorm float64) (*Sanitizer, error) {
	if clipNorm <= 0 {
		return nil, fmt.Errorf("privacy: clip norm must be positive")
	}
	sigma, err := SigmaFor(epsilon, delta)
	if err != nil {
		return nil, err
	}
	return &Sanitizer{ClipNorm: clipNorm, Sigma: sigma}, nil
}

// Sanitize clips x and adds calibrated Gaussian noise, returning the
// release and counting it toward the accountant.
func (s *Sanitizer) Sanitize(x []float64, rng *rand.Rand) []float64 {
	out := Clip(x, s.ClipNorm)
	noise := s.Sigma * s.ClipNorm
	for i := range out {
		out[i] += noise * rng.NormFloat64()
	}
	s.mu.Lock()
	s.releases++
	s.mu.Unlock()
	return out
}

// Releases returns how many samples have been sanitized.
func (s *Sanitizer) Releases() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.releases
}

// SpentEpsilon returns the total ε consumed so far under basic sequential
// composition, given the per-release ε. (Each user's budget depends on
// how many of the releases were theirs; this is the worst case of one
// user contributing all of them.)
func (s *Sanitizer) SpentEpsilon(perRelease float64) float64 {
	return perRelease * float64(s.Releases())
}
