package privacy

import (
	"math"
	"testing"
	"testing/quick"

	"nazar/internal/tensor"
)

func TestSigmaFor(t *testing.T) {
	s1, err := SigmaFor(1, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(2 * math.Log(1.25e5))
	if math.Abs(s1-want) > 1e-12 {
		t.Fatalf("sigma %v want %v", s1, want)
	}
	// Tighter budget -> more noise.
	s05, _ := SigmaFor(0.5, 1e-5)
	if s05 <= s1 {
		t.Fatal("smaller epsilon must mean more noise")
	}
	for _, bad := range [][2]float64{{0, 1e-5}, {-1, 1e-5}, {1, 0}, {1, 1}} {
		if _, err := SigmaFor(bad[0], bad[1]); err == nil {
			t.Fatalf("budget %v should be rejected", bad)
		}
	}
}

func TestClip(t *testing.T) {
	x := []float64{3, 4} // norm 5
	c := Clip(x, 2.5)
	if math.Abs(tensor.Norm2(c)-2.5) > 1e-12 {
		t.Fatalf("clipped norm %v", tensor.Norm2(c))
	}
	// Direction preserved.
	if math.Abs(c[0]/c[1]-0.75) > 1e-12 {
		t.Fatal("clip changed direction")
	}
	// Under the bound: unchanged (but copied).
	y := Clip(x, 100)
	if y[0] != 3 || y[1] != 4 {
		t.Fatal("under-norm input should be unchanged")
	}
	y[0] = -1
	if x[0] != 3 {
		t.Fatal("Clip must copy")
	}
}

func TestSanitizerNoiseScale(t *testing.T) {
	s, err := NewSanitizer(1, 1e-5, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRand(1, 1)
	// Sanitizing the zero vector isolates the noise; its std must match
	// sigma*clip.
	const n, dim = 400, 16
	var sq float64
	for i := 0; i < n; i++ {
		out := s.Sanitize(make([]float64, dim), rng)
		for _, v := range out {
			sq += v * v
		}
	}
	std := math.Sqrt(sq / float64(n*dim))
	if math.Abs(std-s.Sigma)/s.Sigma > 0.1 {
		t.Fatalf("noise std %v, want ~%v", std, s.Sigma)
	}
	if s.Releases() != n {
		t.Fatalf("releases %d", s.Releases())
	}
	if got := s.SpentEpsilon(1); got != float64(n) {
		t.Fatalf("spent epsilon %v", got)
	}
}

func TestSanitizerValidation(t *testing.T) {
	if _, err := NewSanitizer(1, 1e-5, 0); err == nil {
		t.Fatal("zero clip must be rejected")
	}
	if _, err := NewSanitizer(0, 1e-5, 1); err == nil {
		t.Fatal("zero epsilon must be rejected")
	}
}

// Property: sanitized output norm is bounded in expectation and the
// original is never mutated.
func TestQuickSanitizePure(t *testing.T) {
	s, err := NewSanitizer(2, 1e-5, 3)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64) bool {
		rng := tensor.NewRand(seed, 2)
		x := make([]float64, 8)
		for i := range x {
			x[i] = rng.NormFloat64() * 5
		}
		orig := append([]float64(nil), x...)
		out := s.Sanitize(x, rng)
		for i := range x {
			if x[i] != orig[i] {
				return false
			}
		}
		return len(out) == len(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
