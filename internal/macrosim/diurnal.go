package macrosim

import "math"

// Rate returns the fleet-wide per-device emission probability at the
// given global tick (window·ticksPerWindow + tick), before hardware
// scaling: a cosine day curve peaking at PeakTick with swing
// Amplitude·BaseRate around BaseRate. Zero amplitude is a flat line at
// BaseRate — the degenerate case the table tests pin.
func (d DiurnalSpec) Rate(globalTick int) float64 {
	r := d.BaseRate
	if d.Amplitude != 0 && d.Period > 0 {
		phase := 2 * math.Pi * float64(globalTick-d.PeakTick) / float64(d.Period)
		r *= 1 + d.Amplitude*math.Cos(phase)
	}
	return clamp01(r)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// offlineTicks returns how many leading ticks of window w the device
// spends offline: 0 when the churn draw keeps it online, the configured
// OfflineTicks when it goes dark mid-window, or the whole window when
// OfflineTicks is 0 (classic "device left; spool drains after it
// rejoins next window"). The draw is per (device, window), so churn is
// memoryless across windows — a rejoining device drains its spool at
// its first online tick.
func offlineTicks(sc *Scenario, dev uint64, w int) int {
	if sc.Churn.Rate <= 0 {
		return 0
	}
	if unitFloat(hash4(sc.Seed, dev, w, 0, streamChurn)) >= sc.Churn.Rate {
		return 0
	}
	if sc.Churn.OfflineTicks == 0 {
		return sc.TicksPerWindow
	}
	return sc.Churn.OfflineTicks
}

// joinWindow returns the window at which a device first appears when
// the scenario staggers fleet join; 0 means present from the start.
func joinWindow(sc *Scenario, dev uint64) int {
	if sc.Churn.JoinWindows <= 0 {
		return 0
	}
	u := unitFloat(hash2(sc.Seed, dev, streamJoin))
	return int(u * float64(sc.Churn.JoinWindows))
}
