package macrosim

// Counter-based randomness: every stochastic draw in the simulator is a
// pure hash of (scenario seed, device index, window, tick, stream).
// Nothing is sequential, so any worker can evaluate any device at any
// time and the draw is the same — the property that makes summaries
// byte-identical across pool widths and lets shards run in parallel
// without a shared RNG lock.

// Stream IDs keep independent decision kinds decorrelated: the same
// (device, window, tick) must not reuse one draw for "did it emit" and
// "was it correct".
const (
	streamEmit uint64 = iota + 1
	streamCorrect
	streamDrift
	streamChurn
	streamCohort
	streamJoin
	streamEventBase    uint64 = 0x100 // + event index
	streamHighCardBase uint64 = 0x200 // + high-cardinality spec index
)

const golden64 = 0x9e3779b97f4a7c15

// mix64 is the splitmix64 finalizer — a full-avalanche bijection.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// hash2 draws for per-device static decisions (cohort, join, event
// membership): no window/tick component.
func hash2(seed, dev, stream uint64) uint64 {
	return mix64(mix64(seed^dev*golden64) ^ stream*golden64)
}

// hash4 draws for per-tick decisions.
func hash4(seed, dev uint64, w, t int, stream uint64) uint64 {
	h := mix64(seed ^ dev*golden64)
	h = mix64(h ^ (uint64(w)<<32|uint64(uint32(t)))*golden64)
	return mix64(h ^ stream*golden64)
}

// unitFloat maps a hash to [0,1) with 53 bits of mantissa.
func unitFloat(h uint64) float64 {
	return float64(h>>11) / (1 << 53)
}
