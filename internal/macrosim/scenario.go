// Package macrosim is the macro-scale fleet simulator: a deterministic
// load generator driving 100k–1M lightweight simulated devices with
// heterogeneous hardware profiles, diurnal traffic curves and device
// churn (join/leave with offline spools that drain late), fed by
// declarative scenario-pack files and wired into the staged-rollout
// control plane (cloud.Rollout).
//
// The point is regressibility: every future performance or robustness
// PR can replay a checked-in scenario against the same seed and compare
// byte-identical fleet summaries, the way elastic-package replays
// checked-in sample corpora through its pipelines. Devices here are a
// few bytes of state each — no neural network runs per inference —
// because what the macro level exercises is the *system* around the
// models: ingest volume shaped by diurnal curves, delivery under churn,
// canary cohort statistics, and the rollout state machine's reaction to
// a regressing version.
//
// Determinism contract: a scenario's summary is a pure function of the
// scenario (including its seed). The fleet is partitioned into fixed
// shards whose per-device draws come from counter-based hashing, so the
// worker-pool width changes wall-clock time only — summaries are
// byte-identical at any width (pinned at widths 1 and 8 by test).
package macrosim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"nazar/internal/imagesim"
)

// Limits keep scenario files from describing runs that cannot finish
// (and keep the fuzzer from handing the engine absurd allocations).
const (
	MaxDevices        = 2_000_000
	MaxWindows        = 64
	MaxTicksPerWindow = 512
	maxCohorts        = 32
	maxDriftEvents    = 64
	maxRampSteps      = 32
	maxHighCard       = 4
	maxHighCardValues = 1 << 20
)

// ScenarioError is the typed parse/validation error for scenario packs.
// Field names the offending field (JSON path-ish) when known.
type ScenarioError struct {
	Path  string // source file, when loaded from disk
	Field string
	Msg   string
}

func (e *ScenarioError) Error() string {
	var b strings.Builder
	b.WriteString("macrosim: scenario")
	if e.Path != "" {
		b.WriteString(" " + e.Path)
	}
	if e.Field != "" {
		b.WriteString(": field " + e.Field)
	}
	b.WriteString(": " + e.Msg)
	return b.String()
}

func scErr(field, format string, args ...any) *ScenarioError {
	return &ScenarioError{Field: field, Msg: fmt.Sprintf(format, args...)}
}

// HardwareProfile is one device class: how much traffic it generates
// relative to the mid tier and how long its uploads take.
type HardwareProfile struct {
	// RateScale multiplies the diurnal emission rate.
	RateScale float64
	// UploadLatencyMS is the device's nominal upload latency (reported
	// on the engine's latency metrics; it does not reorder delivery).
	UploadLatencyMS float64
}

// Profiles are the built-in hardware tiers scenario cohorts reference.
var Profiles = map[string]HardwareProfile{
	"flagship": {RateScale: 1.4, UploadLatencyMS: 18},
	"mid":      {RateScale: 1.0, UploadLatencyMS: 45},
	"budget":   {RateScale: 0.6, UploadLatencyMS: 110},
	"iot":      {RateScale: 0.2, UploadLatencyMS: 260},
}

// CohortSpec is one slice of the fleet mix.
type CohortSpec struct {
	Name string `json:"name"`
	// Weight is the cohort's share of the fleet (normalized over all
	// cohorts).
	Weight float64 `json:"weight"`
	// Hardware names a built-in profile (see Profiles).
	Hardware string `json:"hardware"`
	// BaseAccuracy is the cohort's clean accuracy under the baseline
	// version.
	BaseAccuracy float64 `json:"base_accuracy"`
	// FalsePositiveRate is the on-device detector's drift-flag rate on
	// clean inputs.
	FalsePositiveRate float64 `json:"false_positive_rate"`
}

// DiurnalSpec shapes per-tick traffic as a cosine day curve.
type DiurnalSpec struct {
	// BaseRate is the mean per-device emission probability per tick
	// (before the hardware RateScale). Default 0.5.
	BaseRate float64 `json:"base_rate"`
	// Amplitude in [0,1] scales the swing around BaseRate; 0 is flat.
	Amplitude float64 `json:"amplitude"`
	// Period is the curve's cycle length in ticks (default: the
	// scenario's ticks_per_window — one day per window).
	Period int `json:"period,omitempty"`
	// PeakTick is the tick (mod Period) of maximum traffic.
	PeakTick int `json:"peak_tick"`
}

// ChurnSpec models join/leave churn and the offline spool.
type ChurnSpec struct {
	// Rate is the per-window probability that a device goes offline.
	Rate float64 `json:"rate"`
	// OfflineTicks is how many ticks of the window an offline device
	// stays unreachable before rejoining and draining its spool. 0 (the
	// default) means the whole window — the spool drains in a later
	// window.
	OfflineTicks int `json:"offline_ticks"`
	// SpoolCap bounds the per-device offline spool; overflow entries
	// are dropped (and counted). Default 64.
	SpoolCap int `json:"spool_cap,omitempty"`
	// JoinWindows staggers fleet join: device d joins at window
	// floor(frac(d)·JoinWindows). 0 means everyone is present from
	// window 0.
	JoinWindows int `json:"join_windows,omitempty"`
}

// DriftEvent applies a corruption to a slice of the fleet over a window
// range — the scenario-pack hook into the imagesim corruption
// generators.
type DriftEvent struct {
	// Corruption must name an imagesim corruption (e.g. "snow", "fog",
	// "gaussian_noise"); it becomes the affected entries' weather
	// attribute.
	Corruption string `json:"corruption"`
	// FromWindow..ToWindow (inclusive) is when the event is active.
	FromWindow int `json:"from_window"`
	ToWindow   int `json:"to_window"`
	// Fraction of the fleet affected (by sticky device hash).
	Fraction float64 `json:"fraction"`
	// AccuracyDrop is the accuracy lost on affected devices.
	AccuracyDrop float64 `json:"accuracy_drop"`
	// DetectRate is the on-device detector's true-positive rate on
	// affected inputs.
	DetectRate float64 `json:"detect_rate"`
}

// RolloutSpec stages a candidate version rollout inside the scenario.
type RolloutSpec struct {
	// Candidate is the version ID being rolled out.
	Candidate string `json:"candidate"`
	// AccuracyDelta is the candidate's true accuracy change versus the
	// baseline (negative = a regressed build the guards should catch).
	AccuracyDelta float64 `json:"accuracy_delta"`
	// Steps / Ceiling / Guard / DriftGuard / MinSamples mirror
	// cloud.RolloutPlan.
	Steps      []float64 `json:"steps"`
	Ceiling    float64   `json:"ceiling,omitempty"`
	Guard      float64   `json:"guard"`
	DriftGuard float64   `json:"drift_guard,omitempty"`
	MinSamples int       `json:"min_samples"`
	// StartWindow delays the rollout (assignment is 0% before it).
	StartWindow int `json:"start_window,omitempty"`
}

// HighCardSpec attaches one synthetic high-cardinality attribute (a
// fine-grained build ID, app version, firmware string, …) to every
// entry the sink materializes. Fleets carry such attributes in
// practice, and they are exactly what pushes the drift log's per-value
// bitset index past its memory budget — the spec exists to exercise
// the sketch tier end-to-end through `nazar-sim -scenario`.
type HighCardSpec struct {
	// Attr is the attribute name; it must not collide with the
	// built-in attributes (device, weather, model, location, cohort).
	Attr string `json:"attr"`
	// Cardinality is the number of distinct values the attribute can
	// take across the fleet.
	Cardinality int `json:"cardinality"`
	// HotFraction in [0,1] routes that share of draws to the HotValues
	// lowest-numbered values, mimicking the real skew where a handful
	// of releases dominate and a long tail of stragglers remains.
	HotFraction float64 `json:"hot_fraction,omitempty"`
	// HotValues is the size of the hot set (defaults to 16, clamped to
	// Cardinality).
	HotValues int `json:"hot_values,omitempty"`
}

// Value returns the deterministic attribute value for one delivered
// entry: a per-tick hash picks hot set vs long tail, an independent
// re-mix picks the value inside the chosen range.
func (hc *HighCardSpec) Value(seed, dev uint64, w, t int, idx int) string {
	h := hash4(seed, dev, w, t, streamHighCardBase+uint64(idx))
	hot := hc.HotValues
	if hot > hc.Cardinality {
		hot = hc.Cardinality
	}
	v := 0
	if hot > 0 && unitFloat(h) < hc.HotFraction {
		v = int(mix64(h^golden64) % uint64(hot))
	} else {
		v = int(mix64(h+golden64) % uint64(hc.Cardinality))
	}
	return hc.Attr + "-" + strconv.Itoa(v)
}

// Scenario is one declarative scenario pack.
type Scenario struct {
	Name           string       `json:"name"`
	Seed           uint64       `json:"seed"`
	Devices        int          `json:"devices"`
	Windows        int          `json:"windows"`
	TicksPerWindow int          `json:"ticks_per_window"`
	Cohorts        []CohortSpec `json:"cohorts"`
	Diurnal        DiurnalSpec  `json:"diurnal"`
	Churn          ChurnSpec    `json:"churn"`
	Drift          []DriftEvent `json:"drift,omitempty"`
	Rollout        *RolloutSpec `json:"rollout,omitempty"`
	// SinkEvery, when positive, materializes every Nth delivered entry
	// as a driftlog.Entry and reports it through the engine's Sink
	// (e.g. a transport.Client) — the bridge from macro-scale counting
	// to the real wire.
	SinkEvery int `json:"sink_every,omitempty"`
	// HighCard attaches synthetic high-cardinality attributes to the
	// entries SinkEvery materializes (no effect without a sink).
	HighCard []HighCardSpec `json:"high_cardinality,omitempty"`
}

// knownCorruption reports whether name is an imagesim corruption.
func knownCorruption(name string) bool {
	for _, c := range imagesim.AllCorruptions {
		if string(c) == name {
			return true
		}
	}
	return false
}

// ParseScenario decodes and validates a scenario pack. Unknown fields,
// trailing data and out-of-range values all fail with a *ScenarioError.
func ParseScenario(data []byte) (*Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sc Scenario
	if err := dec.Decode(&sc); err != nil {
		return nil, &ScenarioError{Msg: err.Error()}
	}
	if _, err := dec.Token(); err != io.EOF {
		return nil, &ScenarioError{Msg: "trailing data after scenario object"}
	}
	sc.applyDefaults()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &sc, nil
}

// LoadScenario reads and parses a scenario-pack file.
func LoadScenario(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("macrosim: %w", err)
	}
	sc, err := ParseScenario(data)
	if err != nil {
		var se *ScenarioError
		if ok := errorsAs(err, &se); ok {
			se.Path = path
			return nil, se
		}
		return nil, err
	}
	return sc, nil
}

// errorsAs avoids importing errors for one call site (and keeps the
// typed-path rewrite explicit).
func errorsAs(err error, target **ScenarioError) bool {
	se, ok := err.(*ScenarioError)
	if ok {
		*target = se
	}
	return ok
}

func (sc *Scenario) applyDefaults() {
	if sc.Diurnal.BaseRate == 0 {
		sc.Diurnal.BaseRate = 0.5
	}
	if sc.Diurnal.Period == 0 {
		sc.Diurnal.Period = sc.TicksPerWindow
	}
	if sc.Churn.SpoolCap == 0 {
		sc.Churn.SpoolCap = 64
	}
	for i := range sc.HighCard {
		if sc.HighCard[i].HotValues == 0 && sc.HighCard[i].HotFraction > 0 {
			sc.HighCard[i].HotValues = 16
		}
	}
}

// Validate checks every field range; the first violation is returned as
// a *ScenarioError naming the field.
func (sc *Scenario) Validate() error {
	if sc.Name == "" {
		return scErr("name", "empty")
	}
	if sc.Devices <= 0 || sc.Devices > MaxDevices {
		return scErr("devices", "%d out of range [1,%d]", sc.Devices, MaxDevices)
	}
	if sc.Windows <= 0 || sc.Windows > MaxWindows {
		return scErr("windows", "%d out of range [1,%d]", sc.Windows, MaxWindows)
	}
	if sc.TicksPerWindow <= 0 || sc.TicksPerWindow > MaxTicksPerWindow {
		return scErr("ticks_per_window", "%d out of range [1,%d]", sc.TicksPerWindow, MaxTicksPerWindow)
	}
	if len(sc.Cohorts) == 0 {
		return scErr("cohorts", "at least one cohort required")
	}
	if len(sc.Cohorts) > maxCohorts {
		return scErr("cohorts", "%d cohorts exceed the limit %d", len(sc.Cohorts), maxCohorts)
	}
	seen := map[string]bool{}
	for i, c := range sc.Cohorts {
		f := func(name string) string { return "cohorts[" + strconv.Itoa(i) + "]." + name }
		if c.Name == "" {
			return scErr(f("name"), "empty")
		}
		if seen[c.Name] {
			return scErr(f("name"), "duplicate cohort %q", c.Name)
		}
		seen[c.Name] = true
		if c.Weight <= 0 {
			return scErr(f("weight"), "%v must be positive", c.Weight)
		}
		if _, ok := Profiles[c.Hardware]; !ok {
			return scErr(f("hardware"), "unknown profile %q", c.Hardware)
		}
		if c.BaseAccuracy <= 0 || c.BaseAccuracy > 1 {
			return scErr(f("base_accuracy"), "%v out of (0,1]", c.BaseAccuracy)
		}
		if c.FalsePositiveRate < 0 || c.FalsePositiveRate > 1 {
			return scErr(f("false_positive_rate"), "%v out of [0,1]", c.FalsePositiveRate)
		}
	}
	d := sc.Diurnal
	if d.BaseRate < 0 || d.BaseRate > 1 {
		return scErr("diurnal.base_rate", "%v out of [0,1]", d.BaseRate)
	}
	if d.Amplitude < 0 || d.Amplitude > 1 {
		return scErr("diurnal.amplitude", "%v out of [0,1]", d.Amplitude)
	}
	if d.Period < 1 {
		return scErr("diurnal.period", "%d must be positive", d.Period)
	}
	if d.PeakTick < 0 {
		return scErr("diurnal.peak_tick", "%d must be non-negative", d.PeakTick)
	}
	ch := sc.Churn
	if ch.Rate < 0 || ch.Rate > 1 {
		return scErr("churn.rate", "%v out of [0,1]", ch.Rate)
	}
	if ch.OfflineTicks < 0 || ch.OfflineTicks > sc.TicksPerWindow {
		return scErr("churn.offline_ticks", "%d out of [0,%d]", ch.OfflineTicks, sc.TicksPerWindow)
	}
	if ch.SpoolCap < 0 {
		return scErr("churn.spool_cap", "%d must be non-negative", ch.SpoolCap)
	}
	if ch.JoinWindows < 0 || ch.JoinWindows > sc.Windows {
		return scErr("churn.join_windows", "%d out of [0,%d]", ch.JoinWindows, sc.Windows)
	}
	if len(sc.Drift) > maxDriftEvents {
		return scErr("drift", "%d events exceed the limit %d", len(sc.Drift), maxDriftEvents)
	}
	for i, ev := range sc.Drift {
		f := func(name string) string { return "drift[" + strconv.Itoa(i) + "]." + name }
		if !knownCorruption(ev.Corruption) {
			return scErr(f("corruption"), "unknown corruption %q", ev.Corruption)
		}
		if ev.FromWindow < 0 || ev.FromWindow >= sc.Windows {
			return scErr(f("from_window"), "%d out of [0,%d)", ev.FromWindow, sc.Windows)
		}
		if ev.ToWindow < ev.FromWindow || ev.ToWindow >= sc.Windows {
			return scErr(f("to_window"), "%d out of [%d,%d)", ev.ToWindow, ev.FromWindow, sc.Windows)
		}
		if ev.Fraction < 0 || ev.Fraction > 1 {
			return scErr(f("fraction"), "%v out of [0,1]", ev.Fraction)
		}
		if ev.AccuracyDrop < 0 || ev.AccuracyDrop > 1 {
			return scErr(f("accuracy_drop"), "%v out of [0,1]", ev.AccuracyDrop)
		}
		if ev.DetectRate < 0 || ev.DetectRate > 1 {
			return scErr(f("detect_rate"), "%v out of [0,1]", ev.DetectRate)
		}
	}
	if ro := sc.Rollout; ro != nil {
		if ro.Candidate == "" {
			return scErr("rollout.candidate", "empty")
		}
		if len(ro.Steps) == 0 || len(ro.Steps) > maxRampSteps {
			return scErr("rollout.steps", "%d steps out of [1,%d]", len(ro.Steps), maxRampSteps)
		}
		prev := 0.0
		for i, s := range ro.Steps {
			if s <= prev || s > 100 {
				return scErr("rollout.steps", "step %d (%v%%) not ascending in (0,100]", i, s)
			}
			prev = s
		}
		if ro.Ceiling < 0 || (ro.Ceiling > 0 && ro.Ceiling < ro.Steps[0]) {
			return scErr("rollout.ceiling", "%v%% below canary step %v%%", ro.Ceiling, ro.Steps[0])
		}
		if ro.Guard < 0 || ro.DriftGuard < 0 {
			return scErr("rollout.guard", "negative guard")
		}
		if ro.AccuracyDelta < -1 || ro.AccuracyDelta > 1 {
			return scErr("rollout.accuracy_delta", "%v out of [-1,1]", ro.AccuracyDelta)
		}
		if ro.MinSamples < 0 {
			return scErr("rollout.min_samples", "%d must be non-negative", ro.MinSamples)
		}
		if ro.StartWindow < 0 || ro.StartWindow >= sc.Windows {
			return scErr("rollout.start_window", "%d out of [0,%d)", ro.StartWindow, sc.Windows)
		}
	}
	if sc.SinkEvery < 0 {
		return scErr("sink_every", "%d must be non-negative", sc.SinkEvery)
	}
	if len(sc.HighCard) > maxHighCard {
		return scErr("high_cardinality", "%d specs exceed the limit %d", len(sc.HighCard), maxHighCard)
	}
	reserved := map[string]bool{"device": true, "location": true, "weather": true, "model": true, "cohort": true}
	for i := range sc.HighCard {
		hc := &sc.HighCard[i]
		f := func(name string) string { return fmt.Sprintf("high_cardinality[%d].%s", i, name) }
		if hc.Attr == "" {
			return scErr(f("attr"), "must be non-empty")
		}
		if reserved[hc.Attr] {
			return scErr(f("attr"), "%q collides with a built-in attribute", hc.Attr)
		}
		if hc.Cardinality < 2 || hc.Cardinality > maxHighCardValues {
			return scErr(f("cardinality"), "%d out of range [2,%d]", hc.Cardinality, maxHighCardValues)
		}
		if hc.HotFraction < 0 || hc.HotFraction > 1 {
			return scErr(f("hot_fraction"), "%v out of [0,1]", hc.HotFraction)
		}
		if hc.HotValues < 0 {
			return scErr(f("hot_values"), "%d must be non-negative", hc.HotValues)
		}
		reserved[hc.Attr] = true
	}
	return nil
}

// ParseRolloutSpec parses the compact -rollout flag syntax:
//
//	candidate=v2,delta=-0.1,steps=1:5:25:100,guard=0.03,min=200[,ceiling=50][,drift-guard=0.05][,start=1]
func ParseRolloutSpec(s string) (*RolloutSpec, error) {
	ro := &RolloutSpec{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return nil, scErr("rollout", "bad clause %q: want key=value", part)
		}
		var err error
		switch k {
		case "candidate":
			ro.Candidate = v
		case "delta":
			ro.AccuracyDelta, err = strconv.ParseFloat(v, 64)
		case "steps":
			for _, sv := range strings.Split(v, ":") {
				f, perr := strconv.ParseFloat(sv, 64)
				if perr != nil {
					return nil, scErr("rollout.steps", "bad step %q", sv)
				}
				ro.Steps = append(ro.Steps, f)
			}
		case "guard":
			ro.Guard, err = strconv.ParseFloat(v, 64)
		case "drift-guard":
			ro.DriftGuard, err = strconv.ParseFloat(v, 64)
		case "ceiling":
			ro.Ceiling, err = strconv.ParseFloat(v, 64)
		case "min":
			ro.MinSamples, err = strconv.Atoi(v)
		case "start":
			ro.StartWindow, err = strconv.Atoi(v)
		default:
			return nil, scErr("rollout", "unknown key %q", k)
		}
		if err != nil {
			return nil, scErr("rollout."+k, "bad value %q: %v", v, err)
		}
	}
	if ro.Candidate == "" {
		return nil, scErr("rollout.candidate", "empty")
	}
	if len(ro.Steps) == 0 {
		return nil, scErr("rollout.steps", "empty")
	}
	return ro, nil
}
