package macrosim

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"nazar/internal/cloud"
	"nazar/internal/driftlog"
	"nazar/internal/obs"
	"nazar/internal/registry"
)

// simEpoch anchors simulated time (one tick = one minute) so that
// materialized driftlog entries carry stable timestamps.
var simEpoch = time.Unix(1735689600, 0).UTC() // 2025-01-01T00:00:00Z

// shardCount is the fixed fleet decomposition. Shards — not workers —
// are the unit of determinism: each shard owns a contiguous device
// range and its own accumulator, and shard results merge in shard
// order, so worker-pool width changes only wall-clock time.
const shardCount = 64

// Sink receives the sampled trickle of materialized drift-log entries a
// scenario elects to push over the real wire (sink_every). A
// *transport.Client satisfies it directly.
type Sink interface {
	Report(e driftlog.Entry, sample []float64) error
}

// Engine runs one scenario.
type Engine struct {
	sc      *Scenario
	workers int
	sink    Sink
	reg     *obs.Registry
	rollout *cloud.Rollout

	// Per-device static state, derived once per Run from the seed.
	cohorts []uint8
	fracs   []float64 // sticky fraction ×1, nil without a rollout
	joins   []uint16  // first window, nil without join staggering

	// Per-cohort constants, indexed like sc.Cohorts.
	rateScale []float64
	latencyMS []float64

	m *engineMetrics
}

// Option customizes an Engine.
type Option func(*Engine)

// WithWorkers sets the worker-pool width (default: GOMAXPROCS, capped
// at shardCount). Width never changes results, only wall-clock time.
func WithWorkers(n int) Option {
	return func(e *Engine) {
		if n > 0 {
			e.workers = n
		}
	}
}

// WithSink routes sampled entries to a real reporting client.
func WithSink(s Sink) Option {
	return func(e *Engine) { e.sink = s }
}

// WithObserver registers nazar_macrosim_* instruments (and, when the
// scenario stages a rollout, the nazar_rollout_* family) on reg.
func WithObserver(reg *obs.Registry) Option {
	return func(e *Engine) { e.reg = reg }
}

// New validates the scenario and prepares an engine. The per-device
// state (a few bytes per device) is allocated lazily in Run.
func New(sc *Scenario, opts ...Option) (*Engine, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{sc: sc, workers: min(runtime.GOMAXPROCS(0), shardCount)}
	for _, opt := range opts {
		opt(e)
	}
	if ro := sc.Rollout; ro != nil {
		ropts := []cloud.RolloutOption{}
		if e.reg != nil {
			ropts = append(ropts, cloud.WithRolloutObserver(e.reg))
		}
		r, err := cloud.NewRollout(cloud.RolloutPlan{
			Candidate:  ro.Candidate,
			Steps:      ro.Steps,
			Ceiling:    ro.Ceiling,
			Guard:      ro.Guard,
			DriftGuard: ro.DriftGuard,
			MinSamples: ro.MinSamples,
		}, ropts...)
		if err != nil {
			return nil, fmt.Errorf("macrosim: rollout plan: %w", err)
		}
		e.rollout = r
	}
	if e.reg != nil {
		e.m = newEngineMetrics(e.reg, sc)
	}
	return e, nil
}

// Rollout exposes the scenario's staged-rollout controller (nil when
// the scenario doesn't stage one).
func (e *Engine) Rollout() *cloud.Rollout { return e.rollout }

// DeviceID materializes the stable ID of device i — the same string the
// control plane hashes for sticky assignment.
func (e *Engine) DeviceID(i int) string {
	return fmt.Sprintf("%s-%07d", e.sc.Name, i)
}

// spoolCounts is a device's offline spool, kept as aggregate counters
// (the macro level never materializes individual entries): entry counts
// with their correctness/drift classification, split by the version the
// device was assigned at emission time so late-drained entries land in
// the right rollout cohort.
type spoolCounts struct {
	total, correct, drift          uint32 // baseline-assigned entries
	canTotal, canCorrect, canDrift uint32 // candidate-assigned entries
}

func (s *spoolCounts) size() int { return int(s.total + s.canTotal) }

// shardAcc is one shard's per-window accumulator; all fields are exact
// integer counts so merging is order-insensitive arithmetic.
type shardAcc struct {
	emitted, delivered, deliveredLate  int64
	spoolDropped, offlineDevices       int64
	driftFlagged, correct              int64
	cohDelivered, cohCorrect, cohDrift []int64
	canTotal, canCorrect, canDrift     int64
	ctlTotal, ctlCorrect, ctlDrift     int64
	sinkReported, sinkDropped          int64
}

// Run executes the scenario and returns its summary. The summary is a
// pure function of the scenario: same pack + same seed ⇒ byte-identical
// MarshalStable output at any worker count.
func (e *Engine) Run(ctx context.Context) (*Summary, error) {
	sc := e.sc
	e.precompute()
	nCoh := len(sc.Cohorts)
	spools := make([]spoolCounts, sc.Devices)

	shards := shardCount
	if sc.Devices < shards {
		shards = sc.Devices
	}
	per := (sc.Devices + shards - 1) / shards

	sum := &Summary{
		Scenario: sc.Name,
		Seed:     sc.Seed,
		Devices:  sc.Devices,
		Windows:  make([]WindowSummary, 0, sc.Windows),
	}
	for _, c := range sc.Cohorts {
		sum.Cohorts = append(sum.Cohorts, c.Name)
	}
	var totals Totals
	var totCorrect, totDrift int64
	maxPercent := 0.0

	for w := 0; w < sc.Windows; w++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rolloutActive := e.rollout != nil && w >= sc.Rollout.StartWindow
		percent := 0.0
		if rolloutActive {
			percent = e.rollout.Percent()
			if percent > maxPercent {
				maxPercent = percent
			}
		}
		// The diurnal curve depends only on the tick, so compute each
		// tick's base rate once per window, not once per device.
		rates := make([]float64, sc.TicksPerWindow)
		for t := range rates {
			rates[t] = sc.Diurnal.Rate(w*sc.TicksPerWindow + t)
		}
		events := activeEvents(sc, w)

		accs := make([]*shardAcc, shards)
		jobs := make(chan int)
		var wg sync.WaitGroup
		for i := 0; i < e.workers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for s := range jobs {
					lo := s * per
					hi := min(lo+per, sc.Devices)
					accs[s] = e.runShard(w, lo, hi, percent, rates, events, spools, nCoh)
				}
			}()
		}
		for s := 0; s < shards; s++ {
			jobs <- s
		}
		close(jobs)
		wg.Wait()

		// Merge in shard order: pure integer addition, so the order
		// only matters for reproducibility of the code path, not the
		// values — but fixed order keeps even that invariant.
		win := shardAcc{
			cohDelivered: make([]int64, nCoh),
			cohCorrect:   make([]int64, nCoh),
			cohDrift:     make([]int64, nCoh),
		}
		for _, a := range accs {
			win.emitted += a.emitted
			win.delivered += a.delivered
			win.deliveredLate += a.deliveredLate
			win.spoolDropped += a.spoolDropped
			win.offlineDevices += a.offlineDevices
			win.driftFlagged += a.driftFlagged
			win.correct += a.correct
			win.canTotal += a.canTotal
			win.canCorrect += a.canCorrect
			win.canDrift += a.canDrift
			win.ctlTotal += a.ctlTotal
			win.ctlCorrect += a.ctlCorrect
			win.ctlDrift += a.ctlDrift
			win.sinkReported += a.sinkReported
			win.sinkDropped += a.sinkDropped
			for c := 0; c < nCoh; c++ {
				win.cohDelivered[c] += a.cohDelivered[c]
				win.cohCorrect[c] += a.cohCorrect[c]
				win.cohDrift[c] += a.cohDrift[c]
			}
		}

		ws := WindowSummary{
			Window:         w,
			Emitted:        win.emitted,
			Delivered:      win.delivered,
			DeliveredLate:  win.deliveredLate,
			SpoolDropped:   win.spoolDropped,
			OfflineDevices: win.offlineDevices,
			DriftFlagged:   win.driftFlagged,
			Accuracy:       ratio(win.correct, win.delivered),
			DriftRate:      ratio(win.driftFlagged, win.delivered),
		}
		var latNum float64
		for c := 0; c < nCoh; c++ {
			ws.Cohorts = append(ws.Cohorts, CohortWindow{
				Name:      sc.Cohorts[c].Name,
				Delivered: win.cohDelivered[c],
				Accuracy:  ratio(win.cohCorrect[c], win.cohDelivered[c]),
				DriftRate: ratio(win.cohDrift[c], win.cohDelivered[c]),
			})
			latNum += float64(win.cohDelivered[c]) * e.latencyMS[c]
		}
		if win.delivered > 0 {
			ws.AvgUploadLatencyMS = round6(latNum / float64(win.delivered))
		}

		if rolloutActive {
			canary := cloud.CohortStats{Total: win.canTotal, Correct: win.canCorrect, DriftFlagged: win.canDrift}
			control := cloud.CohortStats{Total: win.ctlTotal, Correct: win.ctlCorrect, DriftFlagged: win.ctlDrift}
			decision := e.rollout.Observe(canary, control)
			after := e.rollout.Percent()
			if after > maxPercent {
				maxPercent = after
			}
			ws.Rollout = &RolloutWindow{
				PercentBefore:   round6(percent),
				PercentAfter:    round6(after),
				CanaryDelivered: win.canTotal,
				CanaryAccuracy:  round6(canary.Accuracy()),
				ControlAccuracy: round6(control.Accuracy()),
				Decision:        string(decision),
				State:           string(e.rollout.State()),
			}
		}
		sum.Windows = append(sum.Windows, ws)

		totals.Emitted += win.emitted
		totals.Delivered += win.delivered
		totals.DeliveredLate += win.deliveredLate
		totals.SpoolDropped += win.spoolDropped
		totals.SinkReported += win.sinkReported
		totals.SinkDropped += win.sinkDropped
		totCorrect += win.correct
		totDrift += win.driftFlagged
		if e.m != nil {
			e.m.observe(&win)
		}
	}

	totals.Accuracy = ratio(totCorrect, totals.Delivered)
	totals.DriftRate = ratio(totDrift, totals.Delivered)
	sum.Totals = totals
	if e.rollout != nil {
		sum.Rollout = rolloutSummaryOf(e.rollout, maxPercent)
	}
	return sum, nil
}

// precompute derives the per-device static state: cohort membership,
// sticky rollout fraction, and join window.
func (e *Engine) precompute() {
	sc := e.sc
	if e.cohorts != nil {
		return
	}
	// Normalize cohort weights into cumulative thresholds.
	totalW := 0.0
	for _, c := range sc.Cohorts {
		totalW += c.Weight
	}
	thresholds := make([]float64, len(sc.Cohorts))
	cum := 0.0
	for i, c := range sc.Cohorts {
		cum += c.Weight / totalW
		thresholds[i] = cum
		p := Profiles[c.Hardware]
		e.rateScale = append(e.rateScale, p.RateScale)
		e.latencyMS = append(e.latencyMS, p.UploadLatencyMS)
	}
	e.cohorts = make([]uint8, sc.Devices)
	for i := range e.cohorts {
		u := unitFloat(hash2(sc.Seed, uint64(i), streamCohort))
		c := 0
		for c < len(thresholds)-1 && u >= thresholds[c] {
			c++
		}
		e.cohorts[i] = uint8(c)
	}
	if sc.Rollout != nil {
		salt := sc.Rollout.Candidate
		e.fracs = make([]float64, sc.Devices)
		for i := range e.fracs {
			e.fracs[i] = registry.StickyFraction(e.DeviceID(i), salt)
		}
	}
	if sc.Churn.JoinWindows > 0 {
		e.joins = make([]uint16, sc.Devices)
		for i := range e.joins {
			e.joins[i] = uint16(joinWindow(sc, uint64(i)))
		}
	}
}

// activeEvents returns the drift events covering window w, in file
// order (the first event that claims a device wins).
func activeEvents(sc *Scenario, w int) []int {
	var idx []int
	for i, ev := range sc.Drift {
		if w >= ev.FromWindow && w <= ev.ToWindow {
			idx = append(idx, i)
		}
	}
	return idx
}

// runShard simulates devices [lo,hi) through window w.
func (e *Engine) runShard(w, lo, hi int, percent float64, rates []float64, events []int, spools []spoolCounts, nCoh int) *shardAcc {
	sc := e.sc
	acc := &shardAcc{
		cohDelivered: make([]int64, nCoh),
		cohCorrect:   make([]int64, nCoh),
		cohDrift:     make([]int64, nCoh),
	}
	for i := lo; i < hi; i++ {
		dev := uint64(i)
		if e.joins != nil && w < int(e.joins[i]) {
			continue
		}
		coh := int(e.cohorts[i])
		spec := &sc.Cohorts[coh]
		off := offlineTicks(sc, dev, w)
		if off > 0 {
			acc.offlineDevices++
		}
		canary := false
		if percent > 0 && e.fracs != nil {
			canary = e.fracs[i]*100 < percent
		}
		// Resolve the drift event touching this device, if any.
		accuracy := spec.BaseAccuracy
		detect := spec.FalsePositiveRate
		weather := "clear"
		for _, j := range events {
			ev := &sc.Drift[j]
			if unitFloat(hash2(sc.Seed, dev, streamEventBase+uint64(j))) < ev.Fraction {
				accuracy -= ev.AccuracyDrop
				detect = ev.DetectRate
				weather = ev.Corruption
				break
			}
		}
		if canary {
			accuracy += sc.Rollout.AccuracyDelta
		}
		accuracy = clamp01(accuracy)

		sp := &spools[i]
		scale := e.rateScale[coh]
		for t := 0; t < sc.TicksPerWindow; t++ {
			online := t >= off
			if online && sp.size() > 0 {
				e.drain(acc, sp, coh)
			}
			p := rates[t] * scale
			if p > 1 {
				p = 1
			}
			if unitFloat(hash4(sc.Seed, dev, w, t, streamEmit)) >= p {
				continue
			}
			acc.emitted++
			correct := unitFloat(hash4(sc.Seed, dev, w, t, streamCorrect)) < accuracy
			drifted := unitFloat(hash4(sc.Seed, dev, w, t, streamDrift)) < detect
			if !online {
				if sp.size() >= sc.Churn.SpoolCap {
					acc.spoolDropped++
					continue
				}
				if canary {
					sp.canTotal++
					if correct {
						sp.canCorrect++
					}
					if drifted {
						sp.canDrift++
					}
				} else {
					sp.total++
					if correct {
						sp.correct++
					}
					if drifted {
						sp.drift++
					}
				}
				continue
			}
			acc.delivered++
			acc.cohDelivered[coh]++
			if correct {
				acc.correct++
				acc.cohCorrect[coh]++
			}
			if drifted {
				acc.driftFlagged++
				acc.cohDrift[coh]++
			}
			if e.rollout != nil {
				if canary {
					acc.canTotal++
					if correct {
						acc.canCorrect++
					}
					if drifted {
						acc.canDrift++
					}
				} else {
					acc.ctlTotal++
					if correct {
						acc.ctlCorrect++
					}
					if drifted {
						acc.ctlDrift++
					}
				}
			}
			if e.sink != nil && sc.SinkEvery > 0 && acc.delivered%int64(sc.SinkEvery) == 0 {
				e.report(acc, i, coh, w, t, canary, drifted, weather)
			}
		}
	}
	return acc
}

// drain empties a device's offline spool into the current window as
// late deliveries, preserving each entry's emission-time version
// assignment and detector verdict.
func (e *Engine) drain(acc *shardAcc, sp *spoolCounts, coh int) {
	n := int64(sp.total) + int64(sp.canTotal)
	c := int64(sp.correct) + int64(sp.canCorrect)
	d := int64(sp.drift) + int64(sp.canDrift)
	acc.delivered += n
	acc.deliveredLate += n
	acc.correct += c
	acc.driftFlagged += d
	acc.cohDelivered[coh] += n
	acc.cohCorrect[coh] += c
	acc.cohDrift[coh] += d
	if e.rollout != nil {
		acc.canTotal += int64(sp.canTotal)
		acc.canCorrect += int64(sp.canCorrect)
		acc.canDrift += int64(sp.canDrift)
		acc.ctlTotal += int64(sp.total)
		acc.ctlCorrect += int64(sp.correct)
		acc.ctlDrift += int64(sp.drift)
	}
	*sp = spoolCounts{}
}

// report materializes one sampled entry and pushes it through the sink.
func (e *Engine) report(acc *shardAcc, i, coh, w, t int, canary, drifted bool, weather string) {
	model := "base"
	if canary {
		model = e.sc.Rollout.Candidate
	}
	entry := driftlog.Entry{
		Time: simEpoch.Add(time.Duration(w*e.sc.TicksPerWindow+t) * time.Minute),
		Attrs: map[string]string{
			driftlog.AttrDevice:  e.DeviceID(i),
			driftlog.AttrWeather: weather,
			driftlog.AttrModel:   model,
			"cohort":             e.sc.Cohorts[coh].Name,
		},
		Drift:    drifted,
		SampleID: -1,
	}
	for hi := range e.sc.HighCard {
		hc := &e.sc.HighCard[hi]
		entry.Attrs[hc.Attr] = hc.Value(e.sc.Seed, uint64(i), w, t, hi)
	}
	if err := e.sink.Report(entry, nil); err != nil {
		acc.sinkDropped++
		return
	}
	acc.sinkReported++
}

// engineMetrics is the nazar_macrosim_* instrument set.
type engineMetrics struct {
	emitted, delivered, late, dropped, windows *obs.Counter
}

func newEngineMetrics(reg *obs.Registry, sc *Scenario) *engineMetrics {
	lbl := obs.L("scenario", sc.Name)
	reg.GaugeFunc("nazar_macrosim_devices", "Simulated fleet size.",
		func() float64 { return float64(sc.Devices) }, lbl)
	return &engineMetrics{
		emitted:   reg.Counter("nazar_macrosim_emitted_total", "Inferences the simulated fleet produced.", lbl),
		delivered: reg.Counter("nazar_macrosim_delivered_total", "Entries delivered to the cloud.", lbl),
		late:      reg.Counter("nazar_macrosim_delivered_late_total", "Entries drained from offline spools.", lbl),
		dropped:   reg.Counter("nazar_macrosim_spool_dropped_total", "Entries lost to spool overflow.", lbl),
		windows:   reg.Counter("nazar_macrosim_windows_total", "Monitoring windows simulated.", lbl),
	}
}

func (m *engineMetrics) observe(win *shardAcc) {
	m.emitted.Add(uint64(win.emitted))
	m.delivered.Add(uint64(win.delivered))
	m.late.Add(uint64(win.deliveredLate))
	m.dropped.Add(uint64(win.spoolDropped))
	m.windows.Add(1)
}
