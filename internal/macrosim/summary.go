package macrosim

import (
	"encoding/json"
	"math"

	"nazar/internal/cloud"
)

// Summary is the deterministic fleet-level result of a scenario run.
// Field order, integer counts and 6-decimal float rounding are all part
// of the golden-file contract: the same scenario and seed must marshal
// to byte-identical JSON at any worker-pool width.
type Summary struct {
	Scenario string          `json:"scenario"`
	Seed     uint64          `json:"seed"`
	Devices  int             `json:"devices"`
	Cohorts  []string        `json:"cohorts"`
	Windows  []WindowSummary `json:"windows"`
	Rollout  *RolloutSummary `json:"rollout,omitempty"`
	Totals   Totals          `json:"totals"`
}

// WindowSummary aggregates one monitoring window across the fleet.
type WindowSummary struct {
	Window int `json:"window"`
	// Emitted counts inferences the fleet produced; Delivered counts
	// entries that reached the cloud this window (DeliveredLate of
	// those were spooled offline in an earlier window and drained after
	// the device rejoined).
	Emitted        int64 `json:"emitted"`
	Delivered      int64 `json:"delivered"`
	DeliveredLate  int64 `json:"delivered_late"`
	SpoolDropped   int64 `json:"spool_dropped"`
	OfflineDevices int64 `json:"offline_devices"`
	DriftFlagged   int64 `json:"drift_flagged"`
	// Accuracy and DriftRate are over delivered entries only — the
	// cloud can't score what never arrived.
	Accuracy  float64 `json:"accuracy"`
	DriftRate float64 `json:"drift_rate"`
	// AvgUploadLatencyMS is the delivery-weighted mean of the hardware
	// profiles' upload latencies.
	AvgUploadLatencyMS float64        `json:"avg_upload_latency_ms"`
	Cohorts            []CohortWindow `json:"cohorts"`
	Rollout            *RolloutWindow `json:"rollout,omitempty"`
}

// CohortWindow is one cohort's slice of a window.
type CohortWindow struct {
	Name      string  `json:"name"`
	Delivered int64   `json:"delivered"`
	Accuracy  float64 `json:"accuracy"`
	DriftRate float64 `json:"drift_rate"`
}

// RolloutWindow records what the control plane saw and decided.
type RolloutWindow struct {
	PercentBefore   float64 `json:"percent_before"`
	PercentAfter    float64 `json:"percent_after"`
	CanaryDelivered int64   `json:"canary_delivered"`
	CanaryAccuracy  float64 `json:"canary_accuracy"`
	ControlAccuracy float64 `json:"control_accuracy"`
	Decision        string  `json:"decision"`
	State           string  `json:"state"`
}

// RolloutSummary is the rollout's terminal story.
type RolloutSummary struct {
	Candidate      string   `json:"candidate"`
	FinalState     string   `json:"final_state"`
	FinalPercent   float64  `json:"final_percent"`
	MaxPercent     float64  `json:"max_percent"`
	RollbackWindow int      `json:"rollback_window"`
	Decisions      []string `json:"decisions"`
}

// Totals aggregates the whole run.
type Totals struct {
	Emitted       int64   `json:"emitted"`
	Delivered     int64   `json:"delivered"`
	DeliveredLate int64   `json:"delivered_late"`
	SpoolDropped  int64   `json:"spool_dropped"`
	Accuracy      float64 `json:"accuracy"`
	DriftRate     float64 `json:"drift_rate"`
	SinkReported  int64   `json:"sink_reported,omitempty"`
	SinkDropped   int64   `json:"sink_dropped,omitempty"`
}

// MarshalStable renders the golden-file form: indented JSON plus a
// trailing newline.
func (s *Summary) MarshalStable() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// round6 quantizes derived floats so a summary never depends on
// accumulation order: every float in a Summary is a ratio of exact
// integer counts, rounded once here.
func round6(x float64) float64 {
	return math.Round(x*1e6) / 1e6
}

// ratio is round6(num/den), 0 when den is 0.
func ratio(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return round6(float64(num) / float64(den))
}

func rolloutSummaryOf(r *cloud.Rollout, maxPercent float64) *RolloutSummary {
	st := r.Status()
	decisions := make([]string, 0, len(st.Decisions))
	for _, d := range st.Decisions {
		decisions = append(decisions, string(d))
	}
	return &RolloutSummary{
		Candidate:      st.Candidate,
		FinalState:     string(st.State),
		FinalPercent:   round6(r.Percent()),
		MaxPercent:     round6(maxPercent),
		RollbackWindow: st.RollbackWindow,
		Decisions:      decisions,
	}
}
