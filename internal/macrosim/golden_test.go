package macrosim

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// -update regenerates the golden summaries. Run it whenever a
// deliberate engine change shifts the expected numbers:
//
//	go test ./internal/macrosim/ -run TestScenarioGoldens -update
var updateGoldens = flag.Bool("update", false, "rewrite golden scenario summaries")

// TestScenarioGoldens replays every checked-in scenario pack and
// requires a byte-identical summary: the regression net for everything
// downstream of the seed — hashing, sharding, churn, diurnal shaping,
// drift events and rollout decisions. A diff here means simulated fleet
// behaviour changed, deliberately or not.
func TestScenarioGoldens(t *testing.T) {
	packs, err := filepath.Glob(filepath.Join("testdata", "scenarios", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(packs) == 0 {
		t.Fatal("no scenario packs in testdata/scenarios")
	}
	for _, pack := range packs {
		name := strings.TrimSuffix(filepath.Base(pack), ".json")
		t.Run(name, func(t *testing.T) {
			sc, err := LoadScenario(pack)
			if err != nil {
				t.Fatal(err)
			}
			eng, err := New(sc, WithWorkers(4))
			if err != nil {
				t.Fatal(err)
			}
			sum, err := eng.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			got, err := sum.MarshalStable()
			if err != nil {
				t.Fatal(err)
			}
			goldenPath := filepath.Join("testdata", "golden", name+".golden.json")
			if *updateGoldens {
				if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("summary diverged from %s\ngot:\n%s", goldenPath, diffHint(got, want))
			}
		})
	}
}

// diffHint points at the first differing line so a golden failure is
// readable without an external diff tool.
func diffHint(got, want []byte) string {
	g := strings.Split(string(got), "\n")
	w := strings.Split(string(want), "\n")
	for i := 0; i < len(g) && i < len(w); i++ {
		if g[i] != w[i] {
			return "line " + strconv.Itoa(i+1) + ": got " + g[i] + " want " + w[i]
		}
	}
	return "lengths differ: got " + string(got)[:min(200, len(got))]
}
