package macrosim

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func validScenarioJSON() string {
	return `{
	  "name": "t",
	  "seed": 1,
	  "devices": 100,
	  "windows": 2,
	  "ticks_per_window": 4,
	  "cohorts": [
	    {"name": "mid", "weight": 1, "hardware": "mid", "base_accuracy": 0.9, "false_positive_rate": 0.03}
	  ],
	  "diurnal": {"base_rate": 0.5, "amplitude": 0.2},
	  "churn": {"rate": 0.1}
	}`
}

func TestParseScenarioValid(t *testing.T) {
	sc, err := ParseScenario([]byte(validScenarioJSON()))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Churn.SpoolCap != 64 {
		t.Errorf("spool cap default = %d, want 64", sc.Churn.SpoolCap)
	}
	if sc.Diurnal.Period != 4 {
		t.Errorf("diurnal period default = %d, want ticks_per_window", sc.Diurnal.Period)
	}
}

// TestParseScenarioRejects drives the typed-error contract: corrupt or
// out-of-range packs fail with a *ScenarioError, never a panic or a
// silently defaulted value.
func TestParseScenarioRejects(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"unknown field", `{"name":"t","bogus":1}`},
		{"trailing data", validScenarioJSON() + `{"again":true}`},
		{"not json", `windows: 3`},
		{"zero devices", `{"name":"t","devices":0,"windows":1,"ticks_per_window":1,"cohorts":[{"name":"m","weight":1,"hardware":"mid","base_accuracy":0.9,"false_positive_rate":0}]}`},
		{"too many devices", `{"name":"t","devices":99000000,"windows":1,"ticks_per_window":1,"cohorts":[{"name":"m","weight":1,"hardware":"mid","base_accuracy":0.9,"false_positive_rate":0}]}`},
		{"no cohorts", `{"name":"t","devices":10,"windows":1,"ticks_per_window":1}`},
		{"unknown hardware", `{"name":"t","devices":10,"windows":1,"ticks_per_window":1,"cohorts":[{"name":"m","weight":1,"hardware":"quantum","base_accuracy":0.9,"false_positive_rate":0}]}`},
		{"duplicate cohort", `{"name":"t","devices":10,"windows":1,"ticks_per_window":1,"cohorts":[{"name":"m","weight":1,"hardware":"mid","base_accuracy":0.9,"false_positive_rate":0},{"name":"m","weight":1,"hardware":"mid","base_accuracy":0.9,"false_positive_rate":0}]}`},
		{"unknown corruption", `{"name":"t","devices":10,"windows":2,"ticks_per_window":1,"cohorts":[{"name":"m","weight":1,"hardware":"mid","base_accuracy":0.9,"false_positive_rate":0}],"drift":[{"corruption":"locusts","from_window":0,"to_window":1,"fraction":0.5,"accuracy_drop":0.1,"detect_rate":0.5}]}`},
		{"event window out of range", `{"name":"t","devices":10,"windows":2,"ticks_per_window":1,"cohorts":[{"name":"m","weight":1,"hardware":"mid","base_accuracy":0.9,"false_positive_rate":0}],"drift":[{"corruption":"snow","from_window":0,"to_window":5,"fraction":0.5,"accuracy_drop":0.1,"detect_rate":0.5}]}`},
		{"rollout descending steps", `{"name":"t","devices":10,"windows":2,"ticks_per_window":1,"cohorts":[{"name":"m","weight":1,"hardware":"mid","base_accuracy":0.9,"false_positive_rate":0}],"rollout":{"candidate":"v2","steps":[5,1],"guard":0.01,"min_samples":1}}`},
		{"rollout ceiling below canary", `{"name":"t","devices":10,"windows":2,"ticks_per_window":1,"cohorts":[{"name":"m","weight":1,"hardware":"mid","base_accuracy":0.9,"false_positive_rate":0}],"rollout":{"candidate":"v2","steps":[5,25],"ceiling":1,"guard":0.01,"min_samples":1}}`},
		{"churn rate over 1", `{"name":"t","devices":10,"windows":1,"ticks_per_window":1,"cohorts":[{"name":"m","weight":1,"hardware":"mid","base_accuracy":0.9,"false_positive_rate":0}],"churn":{"rate":1.5}}`},
	}
	for _, tc := range cases {
		_, err := ParseScenario([]byte(tc.json))
		if err == nil {
			t.Errorf("%s: want error, got nil", tc.name)
			continue
		}
		var se *ScenarioError
		if !errors.As(err, &se) {
			t.Errorf("%s: error %T is not *ScenarioError: %v", tc.name, err, err)
		}
	}
}

func TestLoadScenarioAnnotatesPath(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(path, []byte(`{"name":"t","nope":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadScenario(path)
	var se *ScenarioError
	if !errors.As(err, &se) {
		t.Fatalf("error %T is not *ScenarioError: %v", err, err)
	}
	if se.Path != path {
		t.Errorf("error path %q, want %q", se.Path, path)
	}
	if _, err := LoadScenario(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file: want error")
	}
}

func TestParseRolloutSpec(t *testing.T) {
	ro, err := ParseRolloutSpec("candidate=v3,delta=-0.05,steps=1:5:25:100,guard=0.02,drift-guard=0.1,min=200,ceiling=50,start=1")
	if err != nil {
		t.Fatal(err)
	}
	if ro.Candidate != "v3" || ro.AccuracyDelta != -0.05 || len(ro.Steps) != 4 ||
		ro.Guard != 0.02 || ro.DriftGuard != 0.1 || ro.MinSamples != 200 ||
		ro.Ceiling != 50 || ro.StartWindow != 1 {
		t.Fatalf("parsed %+v", ro)
	}
	for _, bad := range []string{
		"",                      // no candidate
		"candidate=v2",          // no steps
		"steps=1:5",             // no candidate
		"candidate=v2,steps=x",  // bad step
		"candidate=v2,bogus=1",  // unknown key
		"candidate=v2,steps",    // not key=value
		"candidate=v2,min=nope", // bad int
	} {
		if _, err := ParseRolloutSpec(bad); err == nil {
			t.Errorf("ParseRolloutSpec(%q): want error", bad)
		}
	}
}

// FuzzParseScenario hammers the pack parser: any input must either
// return a valid scenario or a typed error — no panics, no scenario
// violating the documented caps.
func FuzzParseScenario(f *testing.F) {
	f.Add([]byte(validScenarioJSON()))
	f.Add([]byte(`{"name":"t","bogus":1}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(validScenarioJSON() + "garbage"))
	packs, err := filepath.Glob(filepath.Join("testdata", "scenarios", "*.json"))
	if err != nil {
		f.Fatal(err)
	}
	for _, p := range packs {
		data, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := ParseScenario(data)
		if err != nil {
			var se *ScenarioError
			if !errors.As(err, &se) {
				t.Fatalf("error %T is not *ScenarioError: %v", err, err)
			}
			if se.Error() == "" || !strings.Contains(se.Error(), "scenario") {
				t.Fatalf("unhelpful error string %q", se.Error())
			}
			return
		}
		// A scenario that parsed must be safe to simulate.
		if sc.Devices < 1 || sc.Devices > MaxDevices ||
			sc.Windows < 1 || sc.Windows > MaxWindows ||
			sc.TicksPerWindow < 1 || sc.TicksPerWindow > MaxTicksPerWindow {
			t.Fatalf("validated scenario out of caps: %+v", sc)
		}
		if err := sc.Validate(); err != nil {
			t.Fatalf("parsed scenario fails re-validation: %v", err)
		}
	})
}
