package macrosim

import (
	"context"
	"testing"
)

// benchScenario is a million-device-class window: the benchmark reports
// devices/s so BENCH_macrosim.json tracks simulator throughput across
// PRs.
func benchScenario(devices int) *Scenario {
	sc := &Scenario{
		Name:           "bench",
		Seed:           5,
		Devices:        devices,
		Windows:        1,
		TicksPerWindow: 8,
		Cohorts: []CohortSpec{
			{Name: "flagship", Weight: 0.2, Hardware: "flagship", BaseAccuracy: 0.94, FalsePositiveRate: 0.02},
			{Name: "mid", Weight: 0.5, Hardware: "mid", BaseAccuracy: 0.9, FalsePositiveRate: 0.03},
			{Name: "budget", Weight: 0.3, Hardware: "budget", BaseAccuracy: 0.85, FalsePositiveRate: 0.05},
		},
		Diurnal: DiurnalSpec{BaseRate: 0.5, Amplitude: 0.6, PeakTick: 4},
		Churn:   ChurnSpec{Rate: 0.1},
		Rollout: &RolloutSpec{
			Candidate: "v2", Steps: []float64{1, 5, 25, 100},
			Guard: 0.03, MinSamples: 100,
		},
	}
	sc.applyDefaults()
	return sc
}

func benchmarkFleet(b *testing.B, devices, workers int) {
	sc := benchScenario(devices)
	eng, err := New(sc, WithWorkers(workers))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(ctx); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	perOp := b.Elapsed().Seconds() / float64(b.N)
	if perOp > 0 {
		b.ReportMetric(float64(devices)/perOp, "devices/s")
	}
}

func BenchmarkMacrosim100k(b *testing.B)   { benchmarkFleet(b, 100_000, 0) }
func BenchmarkMacrosim1M(b *testing.B)     { benchmarkFleet(b, 1_000_000, 0) }
func BenchmarkMacrosimSerial(b *testing.B) { benchmarkFleet(b, 100_000, 1) }
