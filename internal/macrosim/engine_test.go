package macrosim

import (
	"bytes"
	"context"
	"io"
	"log/slog"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"nazar/internal/cloud"
	"nazar/internal/httpapi"
	"nazar/internal/nn"
	"nazar/internal/obs"
	"nazar/internal/tensor"
	"nazar/internal/transport"
)

func testScenario() *Scenario {
	sc := &Scenario{
		Name:           "unit",
		Seed:           11,
		Devices:        2000,
		Windows:        3,
		TicksPerWindow: 8,
		Cohorts: []CohortSpec{
			{Name: "mid", Weight: 0.7, Hardware: "mid", BaseAccuracy: 0.9, FalsePositiveRate: 0.03},
			{Name: "iot", Weight: 0.3, Hardware: "iot", BaseAccuracy: 0.8, FalsePositiveRate: 0.05},
		},
		Churn: ChurnSpec{Rate: 0.2},
	}
	sc.applyDefaults()
	return sc
}

func runScenario(t *testing.T, sc *Scenario, opts ...Option) *Summary {
	t.Helper()
	eng, err := New(sc, opts...)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return sum
}

// TestEngineDeterministicAcrossPoolWidths is the acceptance gate: a
// 100k-device scenario produces byte-identical summaries at worker-pool
// widths 1 and 8.
func TestEngineDeterministicAcrossPoolWidths(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-device run in -short mode")
	}
	sc, err := LoadScenario("testdata/scenarios/rollout-rollback.json")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Devices != 100000 {
		t.Fatalf("acceptance scenario is %d devices, want 100000", sc.Devices)
	}
	var outs [][]byte
	for _, workers := range []int{1, 8} {
		sum := runScenario(t, sc, WithWorkers(workers))
		b, err := sum.MarshalStable()
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, b)
	}
	if !bytes.Equal(outs[0], outs[1]) {
		t.Fatal("summaries differ between pool widths 1 and 8")
	}
}

// TestDiurnalRate pins the traffic curve's edge cases.
func TestDiurnalRate(t *testing.T) {
	cases := []struct {
		name string
		d    DiurnalSpec
		tick int
		want float64
	}{
		{"zero amplitude is flat", DiurnalSpec{BaseRate: 0.4, Amplitude: 0, Period: 24}, 7, 0.4},
		{"peak tick hits base*(1+amp)", DiurnalSpec{BaseRate: 0.5, Amplitude: 0.6, Period: 24, PeakTick: 14}, 14, 0.8},
		{"trough is base*(1-amp)", DiurnalSpec{BaseRate: 0.5, Amplitude: 0.6, Period: 24, PeakTick: 14}, 26, 0.2},
		{"full amplitude bottoms at zero", DiurnalSpec{BaseRate: 0.5, Amplitude: 1, Period: 10, PeakTick: 0}, 5, 0},
		{"clamped at one", DiurnalSpec{BaseRate: 0.9, Amplitude: 1, Period: 10, PeakTick: 0}, 0, 1},
	}
	for _, tc := range cases {
		if got := tc.d.Rate(tc.tick); !almost(got, tc.want) {
			t.Errorf("%s: Rate(%d) = %v, want %v", tc.name, tc.tick, got, tc.want)
		}
	}
	// Periodicity: the curve repeats exactly every Period ticks.
	d := DiurnalSpec{BaseRate: 0.5, Amplitude: 0.7, Period: 24, PeakTick: 3}
	for tick := 0; tick < 24; tick++ {
		if a, b := d.Rate(tick), d.Rate(tick+24); !almost(a, b) {
			t.Fatalf("curve not periodic at tick %d: %v vs %v", tick, a, b)
		}
	}
}

func almost(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

// TestChurnGenerator pins the churn edge cases on tiny fleets.
func TestChurnGenerator(t *testing.T) {
	t.Run("rate zero never offline", func(t *testing.T) {
		sc := testScenario()
		sc.Churn = ChurnSpec{Rate: 0, SpoolCap: 64}
		sum := runScenario(t, sc)
		for _, w := range sum.Windows {
			if w.OfflineDevices != 0 || w.DeliveredLate != 0 || w.SpoolDropped != 0 {
				t.Fatalf("window %d: offline=%d late=%d dropped=%d with churn 0",
					w.Window, w.OfflineDevices, w.DeliveredLate, w.SpoolDropped)
			}
		}
		if sum.Totals.Delivered != sum.Totals.Emitted {
			t.Fatalf("churnless fleet delivered %d of %d emitted", sum.Totals.Delivered, sum.Totals.Emitted)
		}
	})
	t.Run("rate one always offline", func(t *testing.T) {
		sc := testScenario()
		sc.Churn = ChurnSpec{Rate: 1, SpoolCap: 4}
		sum := runScenario(t, sc)
		for _, w := range sum.Windows {
			if w.OfflineDevices != int64(sc.Devices) {
				t.Fatalf("window %d: %d offline, want all %d", w.Window, w.OfflineDevices, sc.Devices)
			}
			if w.Delivered != 0 {
				t.Fatalf("window %d: %d delivered with the whole fleet offline", w.Window, w.Delivered)
			}
		}
		// Emission continues while offline: spools fill to cap, the rest drops.
		if sum.Totals.SpoolDropped == 0 {
			t.Fatal("tiny spools under full churn never overflowed")
		}
	})
	t.Run("spool drains after rejoin", func(t *testing.T) {
		sc := testScenario()
		sc.Devices = 1 // single-device fleet: the spool story in isolation
		sc.Windows = 8
		sc.Churn = ChurnSpec{Rate: 0.5, SpoolCap: 64}
		sc.Diurnal = DiurnalSpec{BaseRate: 1, Period: sc.TicksPerWindow}
		sum := runScenario(t, sc)
		var late, offline int64
		for _, w := range sum.Windows {
			late += w.DeliveredLate
			offline += w.OfflineDevices
		}
		if offline == 0 {
			t.Skip("seed kept the device online all run")
		}
		if late == 0 {
			t.Fatal("device went offline but nothing drained late")
		}
		// Nothing vanishes: emitted = delivered + dropped + still-spooled.
		if sum.Totals.Delivered+sum.Totals.SpoolDropped > sum.Totals.Emitted {
			t.Fatalf("accounting leak: delivered %d + dropped %d > emitted %d",
				sum.Totals.Delivered, sum.Totals.SpoolDropped, sum.Totals.Emitted)
		}
	})
	t.Run("partial-window offline drains same window", func(t *testing.T) {
		sc := testScenario()
		sc.Churn = ChurnSpec{Rate: 1, OfflineTicks: 4, SpoolCap: 64}
		sc.Diurnal = DiurnalSpec{BaseRate: 1, Period: sc.TicksPerWindow}
		sum := runScenario(t, sc)
		w0 := sum.Windows[0]
		if w0.DeliveredLate == 0 {
			t.Fatal("mid-window rejoin drained nothing late")
		}
		if w0.Delivered != w0.Emitted {
			t.Fatalf("window 0 delivered %d of %d emitted despite same-window rejoin",
				w0.Delivered, w0.Emitted)
		}
	})
}

// TestEngineDriftEvent checks the drift plumbing end to end: an event
// window shows depressed accuracy and elevated drift flags.
func TestEngineDriftEvent(t *testing.T) {
	sc := testScenario()
	sc.Churn.Rate = 0
	sc.Drift = []DriftEvent{{
		Corruption: "snow", FromWindow: 1, ToWindow: 1,
		Fraction: 0.5, AccuracyDrop: 0.3, DetectRate: 0.8,
	}}
	sum := runScenario(t, sc)
	clean, dirty := sum.Windows[0], sum.Windows[1]
	if dirty.Accuracy >= clean.Accuracy-0.05 {
		t.Errorf("event window accuracy %v not depressed vs clean %v", dirty.Accuracy, clean.Accuracy)
	}
	if dirty.DriftRate <= clean.DriftRate+0.1 {
		t.Errorf("event window drift rate %v not elevated vs clean %v", dirty.DriftRate, clean.DriftRate)
	}
	if post := sum.Windows[2]; post.Accuracy <= dirty.Accuracy {
		t.Errorf("post-event window accuracy %v did not recover above %v", post.Accuracy, dirty.Accuracy)
	}
}

// TestEngineRolloutRollback runs the regressed-candidate scenario and
// checks the control plane withdrew it without exceeding the ceiling.
func TestEngineRolloutRollback(t *testing.T) {
	sc, err := LoadScenario("testdata/scenarios/rollout-rollback.json")
	if err != nil {
		t.Fatal(err)
	}
	sc.Devices = 20000 // plenty of canary evidence, fraction of the runtime
	reg := obs.NewRegistry()
	sum := runScenario(t, sc, WithObserver(reg))
	if sum.Rollout == nil {
		t.Fatal("no rollout summary")
	}
	if sum.Rollout.FinalState != string(cloud.RolloutRolledBack) {
		t.Fatalf("final state %q, want rolled-back", sum.Rollout.FinalState)
	}
	if sum.Rollout.MaxPercent > 25 {
		t.Fatalf("ramp reached %v%%, ceiling is 25%%", sum.Rollout.MaxPercent)
	}
	if sum.Rollout.FinalPercent != 0 {
		t.Fatalf("final percent %v after rollback, want 0", sum.Rollout.FinalPercent)
	}
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"nazar_rollout_rollbacks_total", "nazar_macrosim_delivered_total"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("metrics exposition missing %s", want)
		}
	}
}

// TestEngineSinkBridge wires the simulator's sampled entry stream into
// a real transport.Client talking to a real cloud.Service over HTTP:
// the macro layer and the micro wire agree on the entry schema.
func TestEngineSinkBridge(t *testing.T) {
	base := nn.NewClassifier(nn.ArchResNet18, 8, 2, tensor.NewRand(1, 2))
	svc := cloud.NewService(base, cloud.DefaultConfig())
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	ts := httptest.NewServer(httpapi.NewServer(svc, httpapi.WithLogger(quiet)))
	defer ts.Close()
	client := transport.NewClient(ts.URL, transport.WithConfig(transport.Config{
		MaxBatch:      64,
		FlushInterval: time.Hour,
		SpoolCapacity: 1 << 16,
		Name:          "macrosim-sink",
		Logger:        quiet,
	}))

	sc := testScenario()
	sc.SinkEvery = 10
	sum := runScenario(t, sc, WithSink(client))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := client.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if sum.Totals.SinkReported == 0 {
		t.Fatal("sink saw no entries")
	}
	if got := int64(svc.Log().Len()); got < sum.Totals.SinkReported {
		t.Fatalf("cloud log has %d entries, sink reported %d", got, sum.Totals.SinkReported)
	}
	// The sampled entries carry the schema the analyzer keys on.
	e := svc.Log().Entry(0)
	for _, attr := range []string{"device", "model", "weather", "cohort"} {
		if e.Attrs[attr] == "" {
			t.Errorf("sampled entry missing attr %q: %v", attr, e.Attrs)
		}
	}
}

// TestEngineContextCancel checks a canceled run stops between windows.
func TestEngineContextCancel(t *testing.T) {
	eng, err := New(testScenario())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Run(ctx); err == nil {
		t.Fatal("canceled run returned nil error")
	}
}
