package macrosim

import (
	"slices"
	"strings"
	"testing"
	"time"

	"nazar/internal/cloud"
	"nazar/internal/driftlog"
	"nazar/internal/nn"
	"nazar/internal/tensor"
)

// TestHighCardScenarioValidate pins the HighCardSpec validation rules.
func TestHighCardScenarioValidate(t *testing.T) {
	base := func() *Scenario {
		sc := testScenario()
		sc.HighCard = []HighCardSpec{{Attr: "app_version", Cardinality: 1000, HotFraction: 0.5}}
		sc.applyDefaults()
		return sc
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("valid high-cardinality spec rejected: %v", err)
	}
	if got := base().HighCard[0].HotValues; got != 16 {
		t.Fatalf("HotValues default = %d, want 16", got)
	}
	cases := []struct {
		name  string
		mut   func(*Scenario)
		field string
	}{
		{"empty attr", func(sc *Scenario) { sc.HighCard[0].Attr = "" }, "attr"},
		{"builtin collision", func(sc *Scenario) { sc.HighCard[0].Attr = "weather" }, "attr"},
		{"duplicate attr", func(sc *Scenario) {
			sc.HighCard = append(sc.HighCard, HighCardSpec{Attr: "app_version", Cardinality: 10})
		}, "high_cardinality[1].attr"},
		{"cardinality too small", func(sc *Scenario) { sc.HighCard[0].Cardinality = 1 }, "cardinality"},
		{"cardinality too large", func(sc *Scenario) { sc.HighCard[0].Cardinality = maxHighCardValues + 1 }, "cardinality"},
		{"hot fraction", func(sc *Scenario) { sc.HighCard[0].HotFraction = 1.5 }, "hot_fraction"},
		{"hot values", func(sc *Scenario) { sc.HighCard[0].HotValues = -1 }, "hot_values"},
		{"too many specs", func(sc *Scenario) {
			for i := 0; i <= maxHighCard; i++ {
				sc.HighCard = append(sc.HighCard, HighCardSpec{Attr: "x", Cardinality: 10})
			}
		}, "high_cardinality"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := base()
			tc.mut(sc)
			err := sc.Validate()
			if err == nil {
				t.Fatal("invalid spec accepted")
			}
			se, ok := err.(*ScenarioError)
			if !ok {
				t.Fatalf("error type %T, want *ScenarioError", err)
			}
			if !strings.Contains(se.Field, tc.field) {
				t.Fatalf("error field %q, want substring %q", se.Field, tc.field)
			}
		})
	}
}

// TestHighCardValue pins the draw: deterministic, in-range, and with
// hot_fraction=1 confined to the hot set.
func TestHighCardValue(t *testing.T) {
	hc := HighCardSpec{Attr: "app_version", Cardinality: 5000, HotFraction: 1, HotValues: 8}
	seen := map[string]bool{}
	for dev := uint64(0); dev < 200; dev++ {
		v := hc.Value(7, dev, 1, 3, 0)
		if v != hc.Value(7, dev, 1, 3, 0) {
			t.Fatal("Value is not deterministic")
		}
		if !strings.HasPrefix(v, "app_version-") {
			t.Fatalf("value %q missing attr prefix", v)
		}
		seen[v] = true
	}
	if len(seen) > hc.HotValues {
		t.Fatalf("hot_fraction=1 produced %d distinct values, want <= %d", len(seen), hc.HotValues)
	}
	// With no hot set the long tail spreads: 200 draws over 5000 values
	// should rarely collide.
	hc.HotFraction, hc.HotValues = 0, 0
	seen = map[string]bool{}
	for dev := uint64(0); dev < 200; dev++ {
		seen[hc.Value(7, dev, 1, 3, 0)] = true
	}
	if len(seen) < 150 {
		t.Fatalf("uniform draw produced only %d distinct values over 200 draws", len(seen))
	}
}

// serviceSink bridges the engine's sampled entry stream straight into a
// cloud.Service, without the HTTP hop.
type serviceSink struct{ svc *cloud.Service }

func (s serviceSink) Report(e driftlog.Entry, sample []float64) error {
	s.svc.Ingest(e, sample)
	return nil
}

// TestHighCardSketchEndToEnd runs the checked-in high-cardinality
// scenario (shrunk fleet) into a cloud.Service whose drift log has a
// low sketch threshold, and checks the synthetic attributes actually
// cross onto the approximate tier while counts stay one-sided within
// the advertised bound — the full nazar-sim → ingest → sketch path.
func TestHighCardSketchEndToEnd(t *testing.T) {
	sc, err := LoadScenario("testdata/scenarios/high_cardinality.json")
	if err != nil {
		t.Fatal(err)
	}
	sc.Devices = 10000 // full 50k fleet is for nazar-sim; the path is identical

	run := func(workers int) (*cloud.Service, *Summary) {
		cfg := cloud.DefaultConfig()
		cfg.Sketch.Threshold = 512
		svc := cloud.NewService(nn.NewClassifier(nn.ArchResNet18, 8, 2, tensor.NewRand(1, 2)), cfg)
		sum := runScenario(t, sc, WithSink(serviceSink{svc}), WithWorkers(workers))
		return svc, sum
	}
	svc, sum := run(1)
	if sum.Totals.SinkReported == 0 {
		t.Fatal("sink saw no entries")
	}
	log := svc.Log()
	sketched := log.SketchedAttrs()
	for _, attr := range []string{"app_version", "firmware"} {
		if !slices.Contains(sketched, attr) {
			t.Fatalf("attr %q not on the sketch tier (sketched: %v)", attr, sketched)
		}
	}
	if st := log.Stats(); st.SketchBytes == 0 {
		t.Fatalf("sketch tier active but SketchBytes = 0: %+v", st)
	}

	// Estimates are one-sided within the advertised bound, both over
	// all time and over a bucket-aligned sub-window.
	v := log.Window(time.Time{}, time.Time{})
	sub := log.Window(simEpoch, simEpoch.Add(20*time.Minute))
	for _, view := range []*driftlog.View{v, sub} {
		for _, cond := range []driftlog.Cond{
			{Attr: "app_version", Value: "app_version-0"},
			{Attr: "firmware", Value: "firmware-3"},
		} {
			got, err := view.Count([]driftlog.Cond{cond}, nil)
			if err != nil {
				t.Fatal(err)
			}
			exact, err := view.CountScan([]driftlog.Cond{cond}, nil)
			if err != nil {
				t.Fatal(err)
			}
			approx, bound := view.Approx([]driftlog.Cond{cond}, nil)
			if !approx {
				t.Fatalf("cond %v on sketched attr not reported approximate", cond)
			}
			if got.Total < exact.Total || got.Total > exact.Total+bound {
				t.Fatalf("cond %v: sketch %d outside [%d,%d+%d]", cond, got.Total, exact.Total, exact.Total, bound)
			}
			if got.Drift < exact.Drift {
				t.Fatalf("cond %v: sketch drift %d < exact %d", cond, got.Drift, exact.Drift)
			}
		}
	}

	// Pool width changes wall-clock only: the delivered entry set, the
	// fleet summary, and the order-independent Count-Min totals all
	// agree between 1 and 8 workers.
	svc8, sum8 := run(8)
	b1, err := sum.MarshalStable()
	if err != nil {
		t.Fatal(err)
	}
	b8, err := sum8.MarshalStable()
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b8) {
		t.Fatal("summaries differ across pool widths")
	}
	v8 := svc8.Log().Window(time.Time{}, time.Time{})
	for _, cond := range []driftlog.Cond{
		{Attr: "app_version", Value: "app_version-0"},
		{Attr: "firmware", Value: "firmware-3"},
	} {
		a, err := v.Count([]driftlog.Cond{cond}, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := v8.Count([]driftlog.Cond{cond}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("cond %v: counts differ across widths: %+v vs %+v", cond, a, b)
		}
	}
}
