package rca

import (
	"testing"
	"time"

	"nazar/internal/driftlog"
	"nazar/internal/fim"
	"nazar/internal/metrics"
	"nazar/internal/tensor"
	"nazar/internal/weather"
)

// paperLog is the Table 2 example.
func paperLog() *driftlog.Store {
	s := driftlog.NewStore()
	base := time.Date(2020, 1, 15, 6, 0, 0, 0, time.UTC)
	rows := []struct {
		device, weather, location string
		drift                     bool
	}{
		{"android_42", "clear-day", "Helsinki", false},
		{"android_21", "clear-day", "New York", false},
		{"android_21", "clear-day", "New York", true},
		{"android_21", "snow", "New York", true},
		{"android_42", "snow", "Helsinki", true},
	}
	for i, r := range rows {
		s.Append(driftlog.Entry{
			Time: base.Add(time.Duration(i) * time.Hour), Drift: r.drift, SampleID: -1,
			Attrs: map[string]string{
				driftlog.AttrDevice:   r.device,
				driftlog.AttrWeather:  r.weather,
				driftlog.AttrLocation: r.location,
			},
		})
	}
	return s
}

func TestSetReductionMergesIntoHighestRank(t *testing.T) {
	v := paperLog().All()
	results, err := fim.Mine(v, nil, fim.DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	assocs := SetReduction(results)
	// {snow} must be the first coarse key, and {snow, New York} must be
	// merged under it, not under {New York}.
	if assocs[0].Coarse.Items.Key() != "weather=snow" {
		t.Fatalf("first coarse key %s", assocs[0].Coarse.Items)
	}
	foundSnowNY := false
	for _, sub := range assocs[0].Subsets {
		if sub.Items.Key() == "location=New York|weather=snow" {
			foundSnowNY = true
		}
	}
	if !foundSnowNY {
		t.Fatal("{snow, New York} not merged into {snow}")
	}
	for _, a := range assocs[1:] {
		for _, sub := range a.Subsets {
			if sub.Items.Key() == "location=New York|weather=snow" {
				t.Fatal("{snow, New York} merged into a lower-ranked key")
			}
		}
	}
	// Every mined result appears exactly once across coarse keys and
	// subsets.
	total := 0
	for _, a := range assocs {
		total += 1 + len(a.Subsets)
	}
	if total != len(results) {
		t.Fatalf("set reduction lost results: %d of %d", total, len(results))
	}
}

func TestFullAnalysisPaperExample(t *testing.T) {
	v := paperLog().All()
	causes, err := Analyze(v, DefaultConfig(), Full)
	if err != nil {
		t.Fatal(err)
	}
	if len(causes) == 0 {
		t.Fatal("no causes found")
	}
	// The paper's walkthrough: snow is the real cause; counterfactual
	// analysis should suppress {New York} (its drift is covered by snow
	// except a single false positive).
	if causes[0].Key() != "weather=snow" {
		t.Fatalf("top cause %s", causes[0])
	}
	for _, c := range causes {
		if c.Key() == "location=New York" {
			t.Fatal("{New York} should be eliminated by counterfactual analysis")
		}
	}
}

func TestModeOrdering(t *testing.T) {
	// FIM-only must produce at least as many causes as set reduction,
	// which must produce at least as many as the full analysis.
	v := paperLog().All()
	counts := map[Mode]int{}
	for _, m := range []Mode{FIMOnly, FIMSetReduction, Full} {
		causes, err := Analyze(v, DefaultConfig(), m)
		if err != nil {
			t.Fatal(err)
		}
		counts[m] = len(causes)
	}
	if counts[FIMOnly] < counts[FIMSetReduction] || counts[FIMSetReduction] < counts[Full] {
		t.Fatalf("pruning not monotone: %v", counts)
	}
	if counts[Full] == 0 {
		t.Fatal("full analysis found nothing")
	}
}

func TestCauseMatching(t *testing.T) {
	c := Cause{Items: fim.NewItemset(
		driftlog.Cond{Attr: "weather", Value: "snow"},
		driftlog.Cond{Attr: "location", Value: "NY"},
	)}
	if !c.Matches(map[string]string{"weather": "snow", "location": "NY", "device": "d1"}) {
		t.Fatal("should match")
	}
	if c.Matches(map[string]string{"weather": "snow"}) {
		t.Fatal("missing attribute should not match")
	}
	if got := c.MatchCount(map[string]string{"weather": "snow", "location": "LA"}); got != 1 {
		t.Fatalf("MatchCount = %d", got)
	}
}

func TestAssignCause(t *testing.T) {
	causes := []Cause{
		{Items: fim.NewItemset(driftlog.Cond{Attr: "weather", Value: "snow"})},
		{Items: fim.NewItemset(driftlog.Cond{Attr: "weather", Value: "rain"})},
	}
	if AssignCause(causes, map[string]string{"weather": "rain"}) != 1 {
		t.Fatal("rain should match cause 1")
	}
	if AssignCause(causes, map[string]string{"weather": "clear-day"}) != -1 {
		t.Fatal("clear day matches nothing")
	}
	if CauseLabel(causes, -1) != "clean" {
		t.Fatal("clean label")
	}
	if CauseLabel(causes, 0) != "weather=snow" {
		t.Fatal("cause label")
	}
}

// buildScenario synthesizes a drift log driven by weather over several
// locations, where the true causes are the given weather conditions, with
// detection noise. Returns the store plus per-row ground-truth labels.
func buildScenario(trueCauses []weather.Condition, seed uint64) (*driftlog.Store, []string, []map[string]string) {
	rng := tensor.NewRand(seed, 0x5CE)
	gen := weather.NewGenerator(seed)
	s := driftlog.NewStore()
	var truth []string
	var attrs []map[string]string
	isCause := map[weather.Condition]bool{}
	for _, c := range trueCauses {
		isCause[c] = true
	}
	locs := weather.AnimalsLocations
	for d := 0; d < 14; d++ {
		day := weather.Day(d)
		for _, loc := range locs {
			cond, _ := gen.ConditionAt(loc, day)
			for dev := 0; dev < 4; dev++ {
				for k := 0; k < 2; k++ {
					drifted := isCause[cond]
					label := "clean"
					if drifted {
						label = string(cond)
					}
					// Noisy detector: 85% recall, 10% false positives.
					detected := false
					if drifted {
						detected = rng.Float64() < 0.85
					} else {
						detected = rng.Float64() < 0.10
					}
					a := map[string]string{
						driftlog.AttrWeather:  string(cond),
						driftlog.AttrLocation: loc,
						driftlog.AttrDevice:   loc + "-dev",
					}
					s.Append(driftlog.Entry{
						Time: day.Add(time.Duration(dev) * time.Hour), Drift: detected,
						SampleID: -1, Attrs: a,
					})
					truth = append(truth, label)
					attrs = append(attrs, a)
				}
			}
		}
	}
	return s, truth, attrs
}

func TestScenarioFullBeatsOrMatchesFIM(t *testing.T) {
	// Table 5's qualitative claim: FIM + set reduction + counterfactual
	// analysis yields the best (or equal) Fowlkes–Mallows score.
	for _, scenario := range [][]weather.Condition{
		{weather.Snow},
		{weather.Rain, weather.Fog},
		{weather.Rain, weather.Snow, weather.Fog},
	} {
		s, truth, attrs := buildScenario(scenario, 2)
		v := s.All()
		score := func(mode Mode) float64 {
			causes, err := Analyze(v, DefaultConfig(), mode)
			if err != nil {
				t.Fatal(err)
			}
			pred := make([]string, len(truth))
			for i := range truth {
				pred[i] = CauseLabel(causes, AssignCause(causes, attrs[i]))
			}
			return metrics.FowlkesMallows(truth, pred)
		}
		fimScore := score(FIMOnly)
		fullScore := score(Full)
		if fullScore+1e-9 < fimScore {
			t.Fatalf("scenario %v: full %v < fim %v", scenario, fullScore, fimScore)
		}
		if fullScore < 0.7 {
			t.Fatalf("scenario %v: full FMS %v too low", scenario, fullScore)
		}
	}
}

func TestCounterfactualSuppressesCoveredCauses(t *testing.T) {
	s, _, _ := buildScenario([]weather.Condition{weather.Snow}, 2)
	causes, err := Analyze(s.All(), DefaultConfig(), Full)
	if err != nil {
		t.Fatal(err)
	}
	// The true cause is snow alone: the full analysis must find a snow
	// cause and should produce very few causes overall.
	foundSnow := false
	for _, c := range causes {
		for _, cond := range c.Items {
			if cond.Attr == driftlog.AttrWeather && cond.Value == "snow" {
				foundSnow = true
			}
		}
	}
	if !foundSnow {
		t.Fatalf("snow not identified; causes: %v", causes)
	}
	fimCauses, err := Analyze(s.All(), DefaultConfig(), FIMOnly)
	if err != nil {
		t.Fatal(err)
	}
	if len(causes) >= len(fimCauses) && len(fimCauses) > 1 {
		t.Fatalf("counterfactual analysis did not prune: full=%d fim=%d", len(causes), len(fimCauses))
	}
}

func TestModeString(t *testing.T) {
	if FIMOnly.String() != "fim" || Full.String() != "fim+set-reduction+cf" {
		t.Fatal("mode strings")
	}
	if Mode(42).String() != "Mode(42)" {
		t.Fatal("unknown mode string")
	}
}

func TestAnalyzeUnknownMode(t *testing.T) {
	if _, err := Analyze(paperLog().All(), DefaultConfig(), Mode(42)); err == nil {
		t.Fatal("expected error")
	}
}

func TestAnalyzeEmptyLog(t *testing.T) {
	causes, err := Analyze(driftlog.NewStore().All(), DefaultConfig(), Full)
	if err != nil {
		t.Fatal(err)
	}
	if len(causes) != 0 {
		t.Fatal("empty log should yield no causes")
	}
}
