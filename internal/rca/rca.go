// Package rca implements Nazar's root-cause analysis (§3.3, Algorithm 1):
// frequent-itemset mining followed by the paper's two novel pruning
// passes — *set reduction*, which merges fine-grained causes into their
// highest-ranked coarser cover, and *counterfactual analysis*, which
// re-tests lower-ranked causes after the drift explained by higher-ranked
// causes has been counterfactually marked as non-drift.
package rca

import (
	"context"
	"fmt"
	"runtime/pprof"

	"nazar/internal/driftlog"
	"nazar/internal/fim"
	"nazar/internal/tensor"
)

// Cause is one final root cause selected for adaptation.
type Cause struct {
	Items fim.Itemset
	// Metrics are the cause's original FIM metrics (risk ratio is used
	// downstream to break version-selection ties).
	Metrics fim.Metrics
	// Approx / ErrBound carry the sketch-tier annotation of the counts
	// behind Metrics: when some attribute of the cause is on the drift
	// log's approximate tier, the supporting counts are one-sided
	// estimates that may exceed the truth by at most ErrBound rows.
	Approx   bool
	ErrBound int
}

// Key returns the canonical identity of the cause.
func (c Cause) Key() string { return c.Items.Key() }

// String renders the cause like the paper: {snow, New York}.
func (c Cause) String() string { return c.Items.String() }

// Matches reports whether an entry's attributes satisfy every condition
// of the cause.
func (c Cause) Matches(attrs map[string]string) bool {
	for _, cond := range c.Items {
		if attrs[cond.Attr] != cond.Value {
			return false
		}
	}
	return true
}

// MatchCount returns how many of the cause's conditions appear in attrs
// with equal values (len(Items) when Matches).
func (c Cause) MatchCount(attrs map[string]string) int {
	n := 0
	for _, cond := range c.Items {
		if attrs[cond.Attr] == cond.Value {
			n++
		}
	}
	return n
}

// Association maps one coarse-grained cause to the finer-grained causes
// set reduction merged into it, in rank order.
type Association struct {
	Coarse  fim.Result
	Subsets []fim.Result
}

// SetReduction groups the ranked FIM results (Figure 3b): each result is
// merged into the highest-ranked earlier cause whose attribute set it
// refines (attribute-superset = data-subset); results with no coarser
// cover become coarse keys themselves. The returned associations preserve
// rank order of their coarse keys.
func SetReduction(results []fim.Result) []Association {
	var assocs []Association
next:
	for _, r := range results {
		for i := range assocs {
			if assocs[i].Coarse.Items.SubsetOf(r.Items) {
				assocs[i].Subsets = append(assocs[i].Subsets, r)
				continue next
			}
		}
		assocs = append(assocs, Association{Coarse: r})
	}
	return assocs
}

// Config parameterizes the analysis.
type Config struct {
	Thresholds fim.Thresholds
}

// DefaultConfig returns the paper's defaults.
func DefaultConfig() Config { return Config{Thresholds: fim.DefaultThresholds()} }

// Mode selects which stages of the analysis run (the Table 5 ablation).
type Mode int

const (
	// FIMOnly keeps every itemset passing the FIM thresholds.
	FIMOnly Mode = iota
	// FIMSetReduction keeps the coarse keys after set reduction.
	FIMSetReduction
	// Full runs Algorithm 1: set reduction plus counterfactual
	// analysis. This is Nazar's default.
	Full
)

func (m Mode) String() string {
	switch m {
	case FIMOnly:
		return "fim"
	case FIMSetReduction:
		return "fim+set-reduction"
	case Full:
		return "fim+set-reduction+cf"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Analyze runs root-cause analysis over the drift-log view in the given
// mode and returns the final causes in rank order.
func Analyze(v *driftlog.View, cfg Config, mode Mode) ([]Cause, error) {
	return AnalyzeContext(context.Background(), v, cfg, mode)
}

// AnalyzeContext is Analyze with cooperative cancellation: mining and
// counterfactual rescoring both check the context between stages and
// between worker-pool chunks, returning ctx.Err() when the analysis is
// abandoned mid-window.
func AnalyzeContext(ctx context.Context, v *driftlog.View, cfg Config, mode Mode) ([]Cause, error) {
	causes, _, err := AnalyzeIncrementalContext(ctx, v, nil, nil, cfg, mode)
	return causes, err
}

// AnalyzeIncrementalContext is AnalyzeContext with the cross-window
// mining cache threaded through: when delta is the Since-derived delta
// view of v relative to the window prevMine was produced over, the
// apriori passes count only the delta rows (see fim.MineCachedContext).
// It returns the causes plus the mining cache of this window for the
// next run; passing nil delta/prevMine degrades to a fresh analysis.
//
// All three stages share one support memo, so set reduction and
// counterfactual rescoring reuse mining's counts; each stage runs under
// a pprof label (nazar_stage = mine / set-reduction / counterfactual)
// so CPU profiles attribute time per stage.
func AnalyzeIncrementalContext(ctx context.Context, v *driftlog.View, delta *driftlog.View, prevMine *fim.MineCache, cfg Config, mode Mode) ([]Cause, *fim.MineCache, error) {
	sc := fim.NewSupportCache(v)
	var results []fim.Result
	var nextMine *fim.MineCache
	var err error
	pprof.Do(ctx, pprof.Labels("nazar_stage", "mine"), func(ctx context.Context) {
		results, nextMine, err = fim.MineCachedContext(ctx, sc, delta, prevMine, nil, cfg.Thresholds)
	})
	if err != nil {
		if ctx.Err() != nil {
			return nil, nil, err
		}
		return nil, nil, fmt.Errorf("rca: mining: %w", err)
	}
	switch mode {
	case FIMOnly:
		return toCauses(results), nextMine, nil
	case FIMSetReduction:
		var causes []Cause
		pprof.Do(ctx, pprof.Labels("nazar_stage", "set-reduction"), func(context.Context) {
			assocs := SetReduction(results)
			coarse := make([]fim.Result, len(assocs))
			for i, a := range assocs {
				coarse[i] = a.Coarse
			}
			causes = toCauses(coarse)
		})
		return causes, nextMine, nil
	case Full:
		var assocs []Association
		pprof.Do(ctx, pprof.Labels("nazar_stage", "set-reduction"), func(context.Context) {
			assocs = SetReduction(results)
		})
		var causes []Cause
		pprof.Do(ctx, pprof.Labels("nazar_stage", "counterfactual"), func(ctx context.Context) {
			causes, err = counterfactualCached(ctx, sc, assocs, cfg.Thresholds)
		})
		if err != nil {
			return nil, nil, err
		}
		return causes, nextMine, nil
	default:
		return nil, nil, fmt.Errorf("rca: unknown mode %v", mode)
	}
}

// Counterfactual implements the loop of Algorithm 1 (Figure 3c): walk the
// coarse associations in rank order; if the coarse cause is still
// statistically significant after earlier causes' drift has been
// counterfactually cleared, accept it and clear its drift; otherwise
// fall back to any of its subsets that remain significant.
func Counterfactual(v *driftlog.View, assocs []Association, th fim.Thresholds) ([]Cause, error) {
	return CounterfactualContext(context.Background(), v, assocs, th)
}

// CounterfactualContext is Counterfactual with cooperative cancellation
// (checked once per association and between rescoring chunks).
func CounterfactualContext(ctx context.Context, v *driftlog.View, assocs []Association, th fim.Thresholds) ([]Cause, error) {
	return counterfactualCached(ctx, fim.NewSupportCache(v), assocs, th)
}

// counterfactualCached runs the counterfactual loop on a bitset overlay
// (released back to its pool on return) with all rescoring going
// through the shared support memo: totals and repeated subset counts
// under one overlay epoch are counted once, and a mutating ClearDrift
// advances the epoch so stale entries can never be served.
func counterfactualCached(ctx context.Context, sc *fim.SupportCache, assocs []Association, th fim.Thresholds) ([]Cause, error) {
	v := sc.View()
	overlay := v.DriftOverlay()
	defer overlay.Release()
	var causes []Cause
	for _, a := range assocs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		re, err := fim.RescoreCached(sc, a.Coarse.Items, overlay)
		if err != nil {
			return nil, fmt.Errorf("rca: rescoring %s: %w", a.Coarse.Items, err)
		}
		if th.Passes(re.Metrics) {
			causes = append(causes, Cause{Items: a.Coarse.Items, Metrics: a.Coarse.Metrics,
				Approx: a.Coarse.Approx, ErrBound: a.Coarse.ErrBound})
			if _, err := v.ClearDrift(a.Coarse.Items, overlay); err != nil {
				return nil, fmt.Errorf("rca: clearing %s: %w", a.Coarse.Items, err)
			}
			continue
		}
		// The coarse cause lost significance: re-test its subsets. The
		// overlay is read-only here (ClearDrift only ran for accepted
		// coarse causes), so the rescores fan out over the worker pool;
		// acceptance is decided afterwards in rank order, keeping the
		// result deterministic at any pool width.
		reSubs := make([]fim.Result, len(a.Subsets))
		errs := make([]error, len(a.Subsets))
		if err := tensor.ParallelForCtx(ctx, len(a.Subsets), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				reSubs[i], errs[i] = fim.RescoreCached(sc, a.Subsets[i].Items, overlay)
			}
		}); err != nil {
			return nil, err
		}
		for i, sub := range a.Subsets {
			if errs[i] != nil {
				return nil, fmt.Errorf("rca: rescoring %s: %w", sub.Items, errs[i])
			}
			if th.Passes(reSubs[i].Metrics) {
				causes = append(causes, Cause{Items: sub.Items, Metrics: sub.Metrics,
					Approx: sub.Approx, ErrBound: sub.ErrBound})
			}
		}
	}
	return causes, nil
}

// AssignCause returns the index of the first cause (in rank order)
// matching the attributes, or -1 when none matches ("clean").
func AssignCause(causes []Cause, attrs map[string]string) int {
	for i, c := range causes {
		if c.Matches(attrs) {
			return i
		}
	}
	return -1
}

// CauseLabel returns the cause's key for clustering-metric purposes, or
// "clean" for -1.
func CauseLabel(causes []Cause, idx int) string {
	if idx < 0 {
		return "clean"
	}
	return causes[idx].Key()
}

func toCauses(results []fim.Result) []Cause {
	causes := make([]Cause, len(results))
	for i, r := range results {
		causes[i] = Cause{Items: r.Items, Metrics: r.Metrics, Approx: r.Approx, ErrBound: r.ErrBound}
	}
	return causes
}
