package rca_test

import (
	"fmt"
	"time"

	"nazar/internal/driftlog"
	"nazar/internal/rca"
)

// ExampleAnalyze runs the full Algorithm 1 — FIM, set reduction and
// counterfactual analysis — on the paper's example drift log. The
// overlapping causes ({New York}, {snow, New York}, ...) that frequent
// itemset mining produces are pruned down to the single real cause.
func ExampleAnalyze() {
	log := driftlog.NewStore()
	base := time.Date(2020, 1, 15, 6, 0, 0, 0, time.UTC)
	rows := []struct {
		device, weather, location string
		drift                     bool
	}{
		{"android_42", "clear-day", "Helsinki", false},
		{"android_21", "clear-day", "New York", false},
		{"android_21", "clear-day", "New York", true},
		{"android_21", "snow", "New York", true},
		{"android_42", "snow", "Helsinki", true},
	}
	for i, r := range rows {
		log.Append(driftlog.Entry{
			Time: base.Add(time.Duration(i) * time.Hour), Drift: r.drift, SampleID: -1,
			Attrs: map[string]string{
				driftlog.AttrDevice:   r.device,
				driftlog.AttrWeather:  r.weather,
				driftlog.AttrLocation: r.location,
			},
		})
	}

	causes, err := rca.Analyze(log.All(), rca.DefaultConfig(), rca.Full)
	if err != nil {
		panic(err)
	}
	for _, c := range causes {
		fmt.Println(c)
	}
	// Output:
	// {snow}
}
