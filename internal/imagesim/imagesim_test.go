package imagesim

import (
	"math"
	"testing"
	"testing/quick"

	"nazar/internal/tensor"
)

func TestWorldDeterminism(t *testing.T) {
	a := NewWorld(DefaultConfig(10, 42))
	b := NewWorld(DefaultConfig(10, 42))
	ra := tensor.NewRand(7, 7)
	rb := tensor.NewRand(7, 7)
	xa := a.Sample(3, ra)
	xb := b.Sample(3, rb)
	for i := range xa {
		if xa[i] != xb[i] {
			t.Fatal("same seed must reproduce identical samples")
		}
	}
	c := NewWorld(DefaultConfig(10, 43))
	xc := c.Sample(3, tensor.NewRand(7, 7))
	same := true
	for i := range xa {
		if xa[i] != xc[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestSampleCentersOnPrototype(t *testing.T) {
	w := NewWorld(DefaultConfig(5, 1))
	rng := tensor.NewRand(2, 2)
	dim := w.Dim()
	mean := make([]float64, dim)
	const n = 2000
	for i := 0; i < n; i++ {
		x := w.Sample(2, rng)
		for j := range mean {
			mean[j] += x[j] / n
		}
	}
	// The empirical mean should be near the prototype: distance per
	// coordinate shrinks as 1/sqrt(n).
	proto := w.protos[2]
	var dist float64
	for j := range mean {
		d := mean[j] - proto[j]
		dist += d * d
	}
	if math.Sqrt(dist) > 0.15 {
		t.Fatalf("sample mean too far from prototype: %v", math.Sqrt(dist))
	}
}

func TestClassSigmaSpread(t *testing.T) {
	cfg := DefaultConfig(40, 9)
	w := NewWorld(cfg)
	lo, hi := math.Inf(1), math.Inf(-1)
	for c := 0; c < w.Classes(); c++ {
		s := w.ClassSigma(c)
		if s < cfg.NoiseMin || s > cfg.NoiseMax {
			t.Fatalf("sigma %v out of [%v,%v]", s, cfg.NoiseMin, cfg.NoiseMax)
		}
		lo, hi = math.Min(lo, s), math.Max(hi, s)
	}
	if hi-lo < 0.2 {
		t.Fatalf("sigma spread too small: [%v,%v]", lo, hi)
	}
}

func TestSixteenCorruptions(t *testing.T) {
	if len(AllCorruptions) != 16 {
		t.Fatalf("paper uses 16 corruption types, have %d", len(AllCorruptions))
	}
	seen := map[Corruption]bool{}
	for _, c := range AllCorruptions {
		if seen[c] {
			t.Fatalf("duplicate corruption %q", c)
		}
		seen[c] = true
		if _, ok := profiles[c]; !ok {
			t.Fatalf("no profile for %q", c)
		}
	}
	for _, wc := range WeatherCorruptions {
		if !seen[wc] {
			t.Fatalf("weather corruption %q not in the 16", wc)
		}
	}
}

func TestCorruptSeverityZeroIsIdentity(t *testing.T) {
	w := NewWorld(DefaultConfig(5, 3))
	rng := tensor.NewRand(1, 1)
	x := w.Sample(0, rng)
	y := w.Corrupt(x, Fog, 0, rng)
	for i := range x {
		if x[i] != y[i] {
			t.Fatal("severity 0 must be identity")
		}
	}
	// And must not alias the input.
	y[0] += 1
	if x[0] == y[0] {
		t.Fatal("Corrupt must not alias its input")
	}
}

func TestCorruptionDistortionGrowsWithSeverity(t *testing.T) {
	w := NewWorld(DefaultConfig(5, 4))
	rng := tensor.NewRand(5, 5)
	for _, c := range AllCorruptions {
		var prev float64
		for s := 1; s <= MaxSeverity; s++ {
			// Average distortion over several draws to smooth noise.
			var dist float64
			const reps = 30
			for r := 0; r < reps; r++ {
				x := w.Sample(r%5, rng)
				y := w.Corrupt(x, c, s, rng)
				var d float64
				for i := range x {
					dd := y[i] - x[i]
					d += dd * dd
				}
				dist += math.Sqrt(d) / reps
			}
			if s > 1 && dist <= prev*0.9 {
				t.Fatalf("%s: distortion not growing: sev %d %v <= sev %d %v", c, s, dist, s-1, prev)
			}
			prev = dist
		}
	}
}

func TestCorruptBatchMatchesRowwise(t *testing.T) {
	w := NewWorld(DefaultConfig(4, 6))
	classes := []int{0, 1, 2, 3}
	x := w.SampleBatch(classes, tensor.NewRand(6, 6))
	// Noise makes the two paths differ draw-by-draw; use a noiseless
	// deterministic check via severity on a zero-noise family instead:
	// just verify shape and that severity-0 batch equals input.
	y := w.CorruptBatch(x, Contrast, 0, tensor.NewRand(1, 1))
	if !y.SameShape(x) {
		t.Fatal("shape mismatch")
	}
	for i := range x.Data {
		if x.Data[i] != y.Data[i] {
			t.Fatal("severity-0 batch should copy input")
		}
	}
}

func TestWeatherShiftDominatesNoiseShift(t *testing.T) {
	// Weather corruptions must be dominated by the recoverable affine
	// component; noise corruptions by the stochastic one. Compare the
	// deterministic displacement (same input, noise from fixed seed
	// averaged out) of fog vs gaussian noise.
	w := NewWorld(DefaultConfig(5, 8))
	x := w.Sample(1, tensor.NewRand(9, 9))
	mean := func(c Corruption) []float64 {
		acc := make([]float64, len(x))
		const reps = 200
		rng := tensor.NewRand(10, 10)
		for r := 0; r < reps; r++ {
			y := w.Corrupt(x, c, DefaultSeverity, rng)
			for i := range acc {
				acc[i] += (y[i] - x[i]) / reps
			}
		}
		return acc
	}
	fogShift := tensor.Norm2(mean(Fog))
	noiseShift := tensor.Norm2(mean(GaussianNoise))
	if fogShift < 2*noiseShift {
		t.Fatalf("fog deterministic shift %v should dominate gaussian noise %v", fogShift, noiseShift)
	}
}

func TestRealRainDiffersFromSyntheticRain(t *testing.T) {
	w := NewWorld(DefaultConfig(5, 11))
	x := w.Sample(0, tensor.NewRand(12, 12))
	rng := tensor.NewRand(13, 13)
	syn := w.Corrupt(x, Rain, 2, rng)
	real := w.RealRain(x, rng)
	var d float64
	for i := range syn {
		dd := real[i] - syn[i]
		d += dd * dd
	}
	if math.Sqrt(d) < 0.5 {
		t.Fatalf("real rain should diverge from synthetic rain, dist=%v", math.Sqrt(d))
	}
}

func TestAugmentIsSmall(t *testing.T) {
	w := NewWorld(DefaultConfig(5, 14))
	rng := tensor.NewRand(15, 15)
	x := w.Sample(0, rng)
	a := w.Augment(x, rng)
	var d float64
	for i := range x {
		dd := a[i] - x[i]
		d += dd * dd
	}
	dist := math.Sqrt(d)
	if dist == 0 {
		t.Fatal("augmentation should perturb")
	}
	if dist > tensor.Norm2(x) {
		t.Fatalf("augmentation too large: %v", dist)
	}
}

// Property: corruption never changes dimensionality and is finite.
func TestQuickCorruptWellFormed(t *testing.T) {
	w := NewWorld(DefaultConfig(6, 21))
	f := func(seed uint64, sevRaw uint8, classRaw uint8, corrRaw uint8) bool {
		rng := tensor.NewRand(seed, 1)
		class := int(classRaw) % w.Classes()
		sev := int(sevRaw) % (MaxSeverity + 1)
		c := AllCorruptions[int(corrRaw)%len(AllCorruptions)]
		x := w.Sample(class, rng)
		y := w.Corrupt(x, c, sev, rng)
		if len(y) != len(x) {
			return false
		}
		for _, v := range y {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptUnknownPanics(t *testing.T) {
	w := NewWorld(DefaultConfig(5, 30))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	w.Corrupt(make([]float64, w.Dim()), Corruption("bogus"), 3, tensor.NewRand(1, 1))
}

func TestDeviceFaultDeterministicPerDevice(t *testing.T) {
	w := NewWorld(DefaultConfig(5, 41))
	x := w.Sample(1, tensor.NewRand(42, 1))
	// Same device, noiseless comparison: average over draws to cancel
	// the stochastic component.
	mean := func(dev string) []float64 {
		acc := make([]float64, len(x))
		rng := tensor.NewRand(43, 1)
		const reps = 200
		for r := 0; r < reps; r++ {
			y := w.DeviceFault(x, dev, DefaultSeverity, rng)
			for i := range acc {
				acc[i] += y[i] / reps
			}
		}
		return acc
	}
	a1, a2 := mean("android_7"), mean("android_7")
	var dSame float64
	for i := range a1 {
		d := a1[i] - a2[i]
		dSame += d * d
	}
	b := mean("android_8")
	var dOther float64
	for i := range a1 {
		d := a1[i] - b[i]
		dOther += d * d
	}
	if math.Sqrt(dOther) < 10*math.Sqrt(dSame)+0.1 {
		t.Fatalf("device faults should differ across devices: same=%v other=%v",
			math.Sqrt(dSame), math.Sqrt(dOther))
	}
}

func TestDeviceFaultSeverityZeroIdentity(t *testing.T) {
	w := NewWorld(DefaultConfig(5, 44))
	rng := tensor.NewRand(45, 1)
	x := w.Sample(0, rng)
	y := w.DeviceFault(x, "dev", 0, rng)
	for i := range x {
		if x[i] != y[i] {
			t.Fatal("severity 0 must be identity")
		}
	}
}
