// Package imagesim synthesizes the "images" that the reproduction's
// models classify: class-conditional feature vectors with per-class
// difficulty, plus the 16 parameterized corruption operators that stand in
// for the ImageNet-C drifts used by the paper.
//
// Drift detection and test-time adaptation never look at pixels — they
// operate on logits, softmax scores and batch-norm statistics. What the
// substrate must preserve is therefore (a) a clean distribution a model
// can learn to ~80 % accuracy with a realistic per-class spread, and
// (b) corruption operators that shift feature statistics in a way that
// degrades a clean-trained model and is partially recoverable by BN-only
// adaptation. The operators below are built exactly for that: each is a
// severity-scaled mixture of feature shift, per-feature scaling, smoothing
// and additive noise, with the mixture weights differing per corruption
// family (weather drifts are dominated by the recoverable affine part,
// noise drifts by the irrecoverable stochastic part).
package imagesim

import (
	"fmt"
	"hash/fnv"
	"math/rand/v2"
	"sync"

	"nazar/internal/tensor"
)

// DefaultDim is the default feature dimensionality of an image.
const DefaultDim = 64

// Config parameterizes a World.
type Config struct {
	Classes int
	Dim     int
	Seed    uint64
	// ProtoScale is the norm of each class prototype.
	ProtoScale float64
	// NoiseMin/NoiseMax bound the per-class within-class noise sigma;
	// the spread is what produces the paper's 39–98 % per-class
	// accuracy variation (Fig. 5b).
	NoiseMin, NoiseMax float64
}

// DefaultConfig returns a calibrated configuration: a ResNet-analogue
// trained on it reaches the ~72–84 % clean validation accuracy the paper
// reports for its two datasets.
func DefaultConfig(classes int, seed uint64) Config {
	return Config{
		Classes:    classes,
		Dim:        DefaultDim,
		Seed:       seed,
		ProtoScale: 2.0,
		NoiseMin:   0.30,
		NoiseMax:   0.85,
	}
}

// World is a fixed synthetic data universe: class prototypes, per-class
// difficulty and per-corruption operator parameters, all derived
// deterministically from the seed.
type World struct {
	cfg    Config
	protos [][]float64 // Classes × Dim
	sigma  []float64   // per-class noise
	ops    map[Corruption]*operator

	// faults caches per-device sensor-defect operators (lazily built).
	faultMu sync.Mutex
	faults  map[string]*operator
}

// NewWorld constructs the world for cfg.
func NewWorld(cfg Config) *World {
	if cfg.Classes <= 1 {
		panic(fmt.Sprintf("imagesim: need >= 2 classes, got %d", cfg.Classes))
	}
	if cfg.Dim <= 0 {
		cfg.Dim = DefaultDim
	}
	rng := tensor.NewRand(cfg.Seed, 0xA11CE)
	w := &World{cfg: cfg}
	w.protos = make([][]float64, cfg.Classes)
	w.sigma = make([]float64, cfg.Classes)
	for c := range w.protos {
		p := tensor.RandUnitVector(rng, cfg.Dim)
		for i := range p {
			p[i] *= cfg.ProtoScale
		}
		w.protos[c] = p
		w.sigma[c] = cfg.NoiseMin + (cfg.NoiseMax-cfg.NoiseMin)*rng.Float64()
	}
	w.ops = make(map[Corruption]*operator, len(AllCorruptions))
	for _, c := range AllCorruptions {
		w.ops[c] = newOperator(c, cfg.Dim, cfg.Seed)
	}
	w.faults = map[string]*operator{}
	return w
}

// Config returns the world's configuration.
func (w *World) Config() Config { return w.cfg }

// Classes returns the number of classes.
func (w *World) Classes() int { return w.cfg.Classes }

// Dim returns the feature dimensionality.
func (w *World) Dim() int { return w.cfg.Dim }

// ClassSigma returns the within-class noise of class c (its difficulty).
func (w *World) ClassSigma(c int) float64 { return w.sigma[c] }

// Sample draws one clean image of class c.
func (w *World) Sample(c int, rng *rand.Rand) []float64 {
	x := make([]float64, w.cfg.Dim)
	p := w.protos[c]
	s := w.sigma[c]
	for i := range x {
		x[i] = p[i] + s*rng.NormFloat64()
	}
	return x
}

// SampleBatch draws n clean images of the given classes into a matrix.
func (w *World) SampleBatch(classes []int, rng *rand.Rand) *tensor.Matrix {
	m := tensor.New(len(classes), w.cfg.Dim)
	for i, c := range classes {
		copy(m.Row(i), w.Sample(c, rng))
	}
	return m
}

// Augment returns a lightly perturbed copy of x — the stand-in for
// MEMO's random augmentations (rotations/posterization in the paper).
func (w *World) Augment(x []float64, rng *rand.Rand) []float64 {
	out := make([]float64, len(x))
	scale := 1 + 0.08*(rng.Float64()*2-1)
	for i := range x {
		out[i] = scale*x[i] + 0.08*rng.NormFloat64()
	}
	return out
}

// hashSeed derives a stable sub-seed from the world seed and a label.
func hashSeed(seed uint64, label string) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s", seed, label)
	return h.Sum64()
}
