package imagesim

import (
	"fmt"
	"math/rand/v2"

	"nazar/internal/tensor"
)

// Corruption identifies one of the 16 drift operators (the ImageNet-C
// taxonomy used by the paper, plus rain for the weather set).
type Corruption string

// The 16 corruption types. Snow, Rain and Fog are the weather drifts the
// end-to-end workloads apply from historical weather.
const (
	GaussianNoise Corruption = "gaussian_noise"
	ShotNoise     Corruption = "shot_noise"
	ImpulseNoise  Corruption = "impulse_noise"
	DefocusBlur   Corruption = "defocus_blur"
	GlassBlur     Corruption = "glass_blur"
	MotionBlur    Corruption = "motion_blur"
	ZoomBlur      Corruption = "zoom_blur"
	Snow          Corruption = "snow"
	Frost         Corruption = "frost"
	Fog           Corruption = "fog"
	Rain          Corruption = "rain"
	Brightness    Corruption = "brightness"
	Contrast      Corruption = "contrast"
	Elastic       Corruption = "elastic_transform"
	Pixelate      Corruption = "pixelate"
	JPEG          Corruption = "jpeg_compression"
)

// AllCorruptions lists every drift operator in a stable order.
var AllCorruptions = []Corruption{
	GaussianNoise, ShotNoise, ImpulseNoise,
	DefocusBlur, GlassBlur, MotionBlur, ZoomBlur,
	Snow, Frost, Fog, Rain,
	Brightness, Contrast, Elastic, Pixelate, JPEG,
}

// WeatherCorruptions are the three drifts driven by historical weather in
// the end-to-end workloads.
var WeatherCorruptions = []Corruption{Rain, Snow, Fog}

// MaxSeverity is the largest severity level (the paper uses 0–5 with a
// default of 3; 0 means no corruption).
const MaxSeverity = 5

// DefaultSeverity is the paper's default corruption severity.
const DefaultSeverity = 3

// profile describes how strongly each distortion component applies for a
// corruption family, at severity 3 (components scale linearly with
// severity/3).
type profile struct {
	shift float64 // translation along a corruption-specific direction
	scale float64 // per-feature multiplicative distortion amplitude
	blur  float64 // mixing weight toward a locally smoothed copy
	noise float64 // additive white noise sigma
	atten float64 // uniform shrink of the signal (contrast/visibility loss)
}

// profiles encodes the character of each family: weather and photometric
// drifts are dominated by the affine (BN-recoverable) components; noise
// drifts by the stochastic (irrecoverable) component; blur drifts sit in
// between. This mirrors why TENT recovers some ImageNet-C corruptions far
// better than others.
var profiles = map[Corruption]profile{
	GaussianNoise: {shift: 0.10, scale: 0.05, blur: 0.00, noise: 0.55, atten: 0.27},
	ShotNoise:     {shift: 0.10, scale: 0.10, blur: 0.00, noise: 0.50, atten: 0.27},
	ImpulseNoise:  {shift: 0.15, scale: 0.05, blur: 0.00, noise: 0.60, atten: 0.24},
	DefocusBlur:   {shift: 0.15, scale: 0.15, blur: 0.55, noise: 0.10, atten: 0.37},
	GlassBlur:     {shift: 0.10, scale: 0.10, blur: 0.60, noise: 0.20, atten: 0.34},
	MotionBlur:    {shift: 0.20, scale: 0.10, blur: 0.50, noise: 0.10, atten: 0.37},
	ZoomBlur:      {shift: 0.15, scale: 0.20, blur: 0.45, noise: 0.10, atten: 0.34},
	Snow:          {shift: 0.95, scale: 0.30, blur: 0.15, noise: 0.18, atten: 0.46},
	Frost:         {shift: 0.75, scale: 0.25, blur: 0.10, noise: 0.15, atten: 0.40},
	Fog:           {shift: 0.95, scale: 0.35, blur: 0.25, noise: 0.08, atten: 0.50},
	Rain:          {shift: 0.85, scale: 0.25, blur: 0.20, noise: 0.20, atten: 0.46},
	Brightness:    {shift: 0.60, scale: 0.40, blur: 0.00, noise: 0.05, atten: 0.27},
	Contrast:      {shift: 0.30, scale: 0.70, blur: 0.00, noise: 0.05, atten: 0.57},
	Elastic:       {shift: 0.25, scale: 0.25, blur: 0.35, noise: 0.25, atten: 0.30},
	Pixelate:      {shift: 0.15, scale: 0.20, blur: 0.50, noise: 0.15, atten: 0.32},
	JPEG:          {shift: 0.25, scale: 0.30, blur: 0.30, noise: 0.20, atten: 0.30},
}

// operator is the realized distortion of one corruption in one world:
// fixed random directions scaled by severity at application time.
type operator struct {
	prof     profile
	shiftDir []float64 // unit vector
	scaleVec []float64 // in [-1, 1]
}

func newOperator(c Corruption, dim int, worldSeed uint64) *operator {
	prof, ok := profiles[c]
	if !ok {
		panic(fmt.Sprintf("imagesim: unknown corruption %q", c))
	}
	rng := tensor.NewRand(hashSeed(worldSeed, "corruption/"+string(c)), 0xC0FFEE)
	op := &operator{prof: prof}
	op.shiftDir = tensor.RandUnitVector(rng, dim)
	op.scaleVec = make([]float64, dim)
	for i := range op.scaleVec {
		op.scaleVec[i] = rng.Float64()*2 - 1
	}
	return op
}

// apply distorts x in place-free fashion at the given severity.
func (op *operator) apply(x []float64, severity int, rng *rand.Rand) []float64 {
	out := make([]float64, len(x))
	if severity <= 0 {
		copy(out, x)
		return out
	}
	if severity > MaxSeverity {
		severity = MaxSeverity
	}
	s := float64(severity) / float64(DefaultSeverity)
	p := op.prof

	// Uniform attenuation (visibility/contrast loss) followed by the
	// per-feature multiplicative distortion and shift.
	shrink := 1 - s*p.atten
	if shrink < 0.05 {
		shrink = 0.05
	}
	for i := range x {
		scale := shrink * (1 + s*p.scale*op.scaleVec[i])
		out[i] = scale*x[i] + s*p.shift*op.shiftDir[i]*3.0
	}
	// Local smoothing ("blur"): mix each feature toward the average of
	// its neighbourhood, emulating the loss of high-frequency content.
	if p.blur > 0 {
		mix := s * p.blur
		if mix > 0.95 {
			mix = 0.95
		}
		sm := make([]float64, len(out))
		n := len(out)
		for i := range out {
			lo, hi := i-2, i+2
			if lo < 0 {
				lo = 0
			}
			if hi >= n {
				hi = n - 1
			}
			var sum float64
			for j := lo; j <= hi; j++ {
				sum += out[j]
			}
			sm[i] = sum / float64(hi-lo+1)
		}
		for i := range out {
			out[i] = (1-mix)*out[i] + mix*sm[i]
		}
	}
	// Additive noise (the irrecoverable component).
	if p.noise > 0 {
		sigma := s * p.noise
		for i := range out {
			out[i] += sigma * rng.NormFloat64()
		}
	}
	return out
}

// Corrupt applies the named corruption to x at the given severity and
// returns a new vector. Severity 0 returns a copy of x.
func (w *World) Corrupt(x []float64, c Corruption, severity int, rng *rand.Rand) []float64 {
	op, ok := w.ops[c]
	if !ok {
		panic(fmt.Sprintf("imagesim: unknown corruption %q", c))
	}
	return op.apply(x, severity, rng)
}

// CorruptBatch applies the corruption row-wise to a batch.
func (w *World) CorruptBatch(x *tensor.Matrix, c Corruption, severity int, rng *rand.Rand) *tensor.Matrix {
	out := tensor.New(x.Rows, x.Cols)
	for i := 0; i < x.Rows; i++ {
		copy(out.Row(i), w.Corrupt(x.Row(i), c, severity, rng))
	}
	return out
}

// DeviceFault applies a persistent, device-specific sensor defect to x —
// the paper's second class of drift cause ("hardware issues in specific
// devices, e.g. low-quality cameras" / the §3.3 lens-manufacturer
// example). Each device ID gets its own fixed defect (derived from the
// world seed), shaped like a mild lens problem: smoothing, a color-cast
// shift and gain error, plus sensor noise. Severity follows the usual
// 0–5 scale.
func (w *World) DeviceFault(x []float64, deviceID string, severity int, rng *rand.Rand) []float64 {
	op := w.deviceFaultOp(deviceID)
	return op.apply(x, severity, rng)
}

// deviceFaultOp derives (and caches) the defect operator of one device.
func (w *World) deviceFaultOp(deviceID string) *operator {
	w.faultMu.Lock()
	defer w.faultMu.Unlock()
	if op, ok := w.faults[deviceID]; ok {
		return op
	}
	prof := profile{shift: 0.55, scale: 0.30, blur: 0.35, noise: 0.20, atten: 0.33}
	rng := tensor.NewRand(hashSeed(w.cfg.Seed, "fault/"+deviceID), 0xFA117)
	op := &operator{prof: prof}
	op.shiftDir = tensor.RandUnitVector(rng, w.cfg.Dim)
	op.scaleVec = make([]float64, w.cfg.Dim)
	for i := range op.scaleVec {
		op.scaleVec[i] = rng.Float64()*2 - 1
	}
	w.faults[deviceID] = op
	return op
}

// RealRain emulates drift from a *real* rainy-image dataset (the paper's
// RID sub-dataset): it shares character with the synthetic Rain operator
// but adds an unseen camera shift and extra noise, so detectors trained
// against synthetic drift see it as noisier (F1 drops, as in §5.3).
func (w *World) RealRain(x []float64, rng *rand.Rand) []float64 {
	out := w.Corrupt(x, Rain, 2, rng)
	camera := w.ops[Frost].shiftDir // reuse as an "unseen camera" direction
	for i := range out {
		out[i] += 0.9*camera[i] + 0.25*rng.NormFloat64()
	}
	return out
}
