package cloud

import (
	"fmt"
	"strings"
	"testing"

	"nazar/internal/obs"
)

func testPlan() RolloutPlan {
	return RolloutPlan{
		Candidate:  "v2",
		Steps:      []float64{1, 5, 25, 50, 100},
		Guard:      0.03,
		DriftGuard: 0.10,
		MinSamples: 100,
	}
}

// healthy returns cohort stats with the given accuracy over n samples.
func healthy(n int64, acc float64) CohortStats {
	return CohortStats{Total: n, Correct: int64(acc * float64(n))}
}

func TestRolloutPlanValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*RolloutPlan)
	}{
		{"empty candidate", func(p *RolloutPlan) { p.Candidate = "" }},
		{"no steps", func(p *RolloutPlan) { p.Steps = nil }},
		{"descending steps", func(p *RolloutPlan) { p.Steps = []float64{5, 1} }},
		{"step over 100", func(p *RolloutPlan) { p.Steps = []float64{1, 101} }},
		{"zero step", func(p *RolloutPlan) { p.Steps = []float64{0, 5} }},
		{"ceiling below canary", func(p *RolloutPlan) { p.Ceiling = 0.5 }},
		{"negative guard", func(p *RolloutPlan) { p.Guard = -1 }},
	}
	for _, tc := range cases {
		p := testPlan()
		tc.mut(&p)
		if _, err := NewRollout(p); err == nil {
			t.Errorf("%s: want error, got nil", tc.name)
		}
	}
	if _, err := NewRollout(testPlan()); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
}

// TestRolloutLifecycleHealthy walks a healthy candidate through the
// whole ramp: hold until evidence, advance per window, complete at 100%.
func TestRolloutLifecycleHealthy(t *testing.T) {
	r, err := NewRollout(testPlan())
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Percent(); got != 1 {
		t.Fatalf("initial percent = %v, want 1 (canary step)", got)
	}
	if got := r.Observe(healthy(10, 0.9), healthy(1000, 0.9)); got != DecisionHold {
		t.Fatalf("under-sampled canary: decision %q, want hold", got)
	}
	if r.State() != RolloutCanary || r.Percent() != 1 {
		t.Fatalf("hold moved the ramp: state=%v percent=%v", r.State(), r.Percent())
	}
	wantPercents := []float64{5, 25, 50, 100}
	for i, want := range wantPercents {
		if got := r.Observe(healthy(1000, 0.9), healthy(1000, 0.9)); got != DecisionAdvance {
			t.Fatalf("window %d: decision %q, want advance", i, got)
		}
		if got := r.Percent(); got != want {
			t.Fatalf("window %d: percent %v, want %v", i, got, want)
		}
	}
	if got := r.Observe(healthy(1000, 0.9), healthy(1000, 0.9)); got != DecisionComplete {
		t.Fatalf("final window: decision %q, want complete", got)
	}
	if r.State() != RolloutComplete || r.Percent() != 100 {
		t.Fatalf("after complete: state=%v percent=%v", r.State(), r.Percent())
	}
	if got := r.Observe(healthy(1000, 0.9), healthy(1000, 0.9)); got != DecisionNone {
		t.Fatalf("terminal observe: decision %q, want none", got)
	}
}

// TestRolloutAutoRollback trips each guard and checks the candidate is
// withdrawn fleet-wide.
func TestRolloutAutoRollback(t *testing.T) {
	t.Run("accuracy guard", func(t *testing.T) {
		r, _ := NewRollout(testPlan())
		// 85% canary vs 90% control: 5 points > 3-point guard.
		if got := r.Observe(healthy(1000, 0.85), healthy(1000, 0.90)); got != DecisionRollback {
			t.Fatalf("decision %q, want rollback", got)
		}
		if r.State() != RolloutRolledBack || r.Percent() != 0 {
			t.Fatalf("after rollback: state=%v percent=%v", r.State(), r.Percent())
		}
		if got := r.Assign("any-device"); got != "base" {
			t.Fatalf("rolled-back assign = %q, want baseline", got)
		}
		if st := r.Status(); st.RollbackWindow != 1 {
			t.Fatalf("rollback window = %d, want 1", st.RollbackWindow)
		}
	})
	t.Run("drift guard", func(t *testing.T) {
		r, _ := NewRollout(testPlan())
		canary := healthy(1000, 0.90)
		canary.DriftFlagged = 300 // 30% vs 5%: over the 10-point drift guard
		control := healthy(1000, 0.90)
		control.DriftFlagged = 50
		if got := r.Observe(canary, control); got != DecisionRollback {
			t.Fatalf("decision %q, want rollback", got)
		}
	})
	t.Run("within guard", func(t *testing.T) {
		r, _ := NewRollout(testPlan())
		// 2-point regression stays under the 3-point guard.
		if got := r.Observe(healthy(1000, 0.88), healthy(1000, 0.90)); got != DecisionAdvance {
			t.Fatalf("decision %q, want advance", got)
		}
	})
}

// TestRolloutCeiling pins the blast-radius bound: the ramp never
// exceeds the ceiling, and guards passing at the ceiling complete the
// rollout there.
func TestRolloutCeiling(t *testing.T) {
	p := testPlan()
	p.Ceiling = 30
	r, err := NewRollout(p)
	if err != nil {
		t.Fatal(err)
	}
	maxSeen := 0.0
	for i := 0; i < 10; i++ {
		r.Observe(healthy(1000, 0.9), healthy(1000, 0.9))
		if pct := r.Percent(); pct > maxSeen {
			maxSeen = pct
		}
	}
	if maxSeen > 30 {
		t.Fatalf("ramp reached %v%%, ceiling is 30%%", maxSeen)
	}
	if r.State() != RolloutComplete {
		t.Fatalf("state %v, want complete at ceiling", r.State())
	}
}

// TestRolloutStickyAcrossRestart is the restart half of the stickiness
// property: a controller restored from a persisted status assigns every
// device exactly as the original did, at every ramp rung.
func TestRolloutStickyAcrossRestart(t *testing.T) {
	r, _ := NewRollout(testPlan())
	ids := make([]string, 2000)
	for i := range ids {
		ids[i] = fmt.Sprintf("dev-%d", i)
	}
	for window := 0; window < 4; window++ {
		restored, err := RestoreRollout(testPlan(), r.Status())
		if err != nil {
			t.Fatal(err)
		}
		if restored.Percent() != r.Percent() {
			t.Fatalf("restored percent %v != %v", restored.Percent(), r.Percent())
		}
		for _, id := range ids {
			if a, b := r.Assign(id), restored.Assign(id); a != b {
				t.Fatalf("window %d device %q: %q before restart, %q after", window, id, a, b)
			}
		}
		r.Observe(healthy(1000, 0.9), healthy(1000, 0.9))
	}
	// Restore rejects mismatched or corrupt statuses.
	if _, err := RestoreRollout(testPlan(), RolloutStatus{Candidate: "other"}); err == nil {
		t.Fatal("restore accepted status for a different candidate")
	}
	if _, err := RestoreRollout(testPlan(), RolloutStatus{Candidate: "v2", Step: 99}); err == nil {
		t.Fatal("restore accepted out-of-range step")
	}
	if _, err := RestoreRollout(testPlan(), RolloutStatus{Candidate: "v2", State: "bogus"}); err == nil {
		t.Fatal("restore accepted unknown state")
	}
}

// TestRolloutMetrics checks the nazar_rollout_* exposition end to end.
func TestRolloutMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	r, err := NewRollout(testPlan(), WithRolloutObserver(reg))
	if err != nil {
		t.Fatal(err)
	}
	r.Observe(healthy(1000, 0.9), healthy(1000, 0.9))  // advance
	r.Observe(healthy(1000, 0.80), healthy(1000, 0.9)) // rollback
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`nazar_rollout_rollbacks_total{version="v2"} 1`,
		`nazar_rollout_decisions_total{decision="advance",version="v2"} 1`,
		`nazar_rollout_decisions_total{decision="rollback",version="v2"} 1`,
		`nazar_rollout_state{version="v2"} 3`,
		`nazar_rollout_percent{version="v2"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}
