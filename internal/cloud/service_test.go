package cloud

import (
	"testing"
	"time"

	"nazar/internal/adapt"
	"nazar/internal/driftlog"
	"nazar/internal/imagesim"
	"nazar/internal/nn"
	"nazar/internal/rca"
	"nazar/internal/tensor"
	"nazar/internal/weather"
)

func TestSampleStore(t *testing.T) {
	s := NewSampleStore()
	id1 := s.Add([]float64{1, 2})
	id2 := s.Add([]float64{3, 4})
	if id1 != 0 || id2 != 1 || s.Len() != 2 {
		t.Fatalf("ids %d %d len %d", id1, id2, s.Len())
	}
	m := s.Gather([]int64{id2, id1, 99, -1})
	if m.Rows != 2 || m.At(0, 0) != 3 || m.At(1, 0) != 1 {
		t.Fatalf("gather %v", m)
	}
	if s.Gather(nil) != nil {
		t.Fatal("empty gather should be nil")
	}
}

func TestIngestLinksSamples(t *testing.T) {
	base := nn.NewClassifier(nn.ArchResNet18, 8, 4, tensor.NewRand(1, 1))
	svc := NewService(base, DefaultConfig())
	e := driftlog.Entry{Time: time.Now(), Drift: true,
		Attrs: map[string]string{driftlog.AttrWeather: "fog"}}
	svc.Ingest(e, []float64{1, 2, 3})
	svc.Ingest(driftlog.Entry{Time: time.Now(), Drift: false, SampleID: 77,
		Attrs: map[string]string{driftlog.AttrWeather: "clear-day"}}, nil)

	if svc.Samples().Len() != 1 {
		t.Fatalf("samples %d", svc.Samples().Len())
	}
	if got := svc.Log().Entry(0).SampleID; got != 0 {
		t.Fatalf("entry 0 sample id %d", got)
	}
	if got := svc.Log().Entry(1).SampleID; got != -1 {
		t.Fatalf("entry 1 sample id %d (must be normalized to -1)", got)
	}
}

// buildWorkload streams fog-drifted and clean inputs into the service
// from two locations, as if devices had reported them.
func buildWorkload(t *testing.T, svc *Service, world *imagesim.World, net *nn.Network, n int) {
	t.Helper()
	rng := tensor.NewRand(500, 1)
	day := weather.Day(10)
	for i := 0; i < n; i++ {
		c := i % world.Classes()
		x := world.Sample(c, rng)
		cond := "clear-day"
		if i%2 == 0 {
			x = world.Corrupt(x, imagesim.Fog, imagesim.DefaultSeverity, rng)
			cond = "fog"
		}
		logits := net.LogitsOne(x)
		msp := tensor.Softmax(logits)
		_, maxp := tensor.ArgMax(msp)
		entry := driftlog.Entry{
			Time:  day.Add(time.Duration(i) * time.Minute),
			Drift: maxp < 0.9,
			Attrs: map[string]string{
				driftlog.AttrWeather:  cond,
				driftlog.AttrLocation: []string{"Hamburg", "Zurich", "Bremen"}[i%3],
				driftlog.AttrDevice:   "dev",
			},
		}
		svc.Ingest(entry, x)
	}
}

func trainBase(world *imagesim.World, seed uint64) *nn.Network {
	rng := tensor.NewRand(seed, 2)
	n := 400
	x := tensor.New(n, world.Dim())
	y := make([]int, n)
	for i := 0; i < n; i++ {
		y[i] = i % world.Classes()
		copy(x.Row(i), world.Sample(y[i], rng))
	}
	net := nn.NewClassifier(nn.ArchResNet34, world.Dim(), world.Classes(), rng)
	nn.Fit(net, x, y, nn.TrainConfig{Epochs: 15, BatchSize: 32, Rng: rng})
	return net
}

func TestRunWindowEndToEnd(t *testing.T) {
	world := imagesim.NewWorld(imagesim.DefaultConfig(10, 321))
	base := trainBase(world, 321)
	cfg := DefaultConfig()
	cfg.MinSamplesPerCause = 8
	cfg.AdaptCfg.Epochs = 1
	svc := NewService(base, cfg)
	buildWorkload(t, svc, world, base, 400)

	res, err := svc.RunWindow(weather.Day(10), weather.Day(11), weather.Day(11))
	if err != nil {
		t.Fatal(err)
	}
	if res.LogRows != 400 {
		t.Fatalf("log rows %d", res.LogRows)
	}
	// Fog must be identified as a cause.
	foundFog := false
	for _, c := range res.Causes {
		for _, cond := range c.Items {
			if cond.Attr == driftlog.AttrWeather && cond.Value == "fog" {
				foundFog = true
			}
		}
	}
	if !foundFog {
		t.Fatalf("fog not identified; causes %v", res.Causes)
	}
	// At least one fog version and the clean refresh version.
	var fogVersion, cleanVersion *adapt.BNVersion
	for i := range res.Versions {
		v := &res.Versions[i]
		if v.IsClean() {
			cleanVersion = v
		} else if v.Cause.Matches(map[string]string{driftlog.AttrWeather: "fog"}) {
			fogVersion = v
		}
	}
	if fogVersion == nil {
		t.Fatalf("no fog version; versions %v", len(res.Versions))
	}
	if cleanVersion == nil {
		t.Fatal("no clean refresh version")
	}
	if res.RCADuration <= 0 || res.AdaptDuration <= 0 {
		t.Fatal("durations not measured")
	}

	// The fog version must improve fog accuracy over the original base.
	rng := tensor.NewRand(999, 1)
	testN := 160
	fogX := tensor.New(testN, world.Dim())
	labels := make([]int, testN)
	for i := 0; i < testN; i++ {
		labels[i] = i % world.Classes()
		copy(fogX.Row(i), world.Corrupt(world.Sample(labels[i], rng), imagesim.Fog, imagesim.DefaultSeverity, rng))
	}
	fogNet, err := adapt.Materialize(base, *fogVersion)
	if err != nil {
		t.Fatal(err)
	}
	if before, after := base.Accuracy(fogX, labels), fogNet.Accuracy(fogX, labels); after <= before {
		t.Fatalf("fog version did not improve: %v -> %v", before, after)
	}
}

func TestRunWindowEmptyLog(t *testing.T) {
	world := imagesim.NewWorld(imagesim.DefaultConfig(4, 7))
	base := nn.NewClassifier(nn.ArchResNet18, world.Dim(), 4, tensor.NewRand(7, 1))
	svc := NewService(base, DefaultConfig())
	res, err := svc.RunWindow(time.Time{}, time.Time{}, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Causes) != 0 || len(res.Versions) != 0 {
		t.Fatal("empty log must produce nothing")
	}
}

func TestCleanAdaptationMovesBase(t *testing.T) {
	world := imagesim.NewWorld(imagesim.DefaultConfig(6, 31))
	base := trainBase(world, 31)
	cfg := DefaultConfig()
	cfg.MinSamplesPerCause = 4
	cfg.AdaptCfg.Epochs = 1
	svc := NewService(base, cfg)

	// Only clean traffic (no causes), sampled.
	rng := tensor.NewRand(32, 1)
	day := weather.Day(3)
	for i := 0; i < 64; i++ {
		x := world.Sample(i%6, rng)
		svc.Ingest(driftlog.Entry{
			Time: day.Add(time.Duration(i) * time.Minute), Drift: false,
			Attrs: map[string]string{driftlog.AttrWeather: "clear-day", driftlog.AttrLocation: "Hamburg"},
		}, x)
	}
	res, err := svc.RunWindow(day, day.AddDate(0, 0, 1), day.AddDate(0, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Causes) != 0 {
		t.Fatalf("no causes expected, got %v", res.Causes)
	}
	if len(res.Versions) != 1 || !res.Versions[0].IsClean() {
		t.Fatalf("expected exactly the clean refresh, got %d versions", len(res.Versions))
	}
	if svc.Base() == base {
		t.Fatal("clean adaptation should replace the service base")
	}
	_ = rca.Full // keep import used if assertions change
}

func TestRCAModeRespected(t *testing.T) {
	world := imagesim.NewWorld(imagesim.DefaultConfig(10, 321))
	base := trainBase(world, 321)
	counts := map[rca.Mode]int{}
	for _, mode := range []rca.Mode{rca.FIMOnly, rca.Full} {
		cfg := DefaultConfig()
		cfg.RCAMode = mode
		cfg.AdaptClean = false
		cfg.AdaptCfg.Epochs = 1
		svc := NewService(base, cfg)
		buildWorkload(t, svc, world, base, 300)
		res, err := svc.RunWindow(weather.Day(10), weather.Day(11), weather.Day(11))
		if err != nil {
			t.Fatal(err)
		}
		counts[mode] = len(res.Causes)
	}
	if counts[rca.FIMOnly] < counts[rca.Full] {
		t.Fatalf("FIM-only causes %d < full %d", counts[rca.FIMOnly], counts[rca.Full])
	}
}

func TestServiceLogPersistence(t *testing.T) {
	world := imagesim.NewWorld(imagesim.DefaultConfig(6, 31))
	base := nn.NewClassifier(nn.ArchResNet18, world.Dim(), 6, tensor.NewRand(31, 1))
	svc := NewService(base, DefaultConfig())
	rng := tensor.NewRand(32, 1)
	for i := 0; i < 20; i++ {
		svc.Ingest(driftlog.Entry{
			Time: weather.Day(1).Add(time.Duration(i) * time.Minute), Drift: i%2 == 0,
			Attrs: map[string]string{driftlog.AttrWeather: "rain"},
		}, world.Sample(i%6, rng))
	}
	path := t.TempDir() + "/drift.log"
	if err := svc.SaveLog(path); err != nil {
		t.Fatal(err)
	}
	fresh := NewService(base, DefaultConfig())
	if err := fresh.LoadLog(path); err != nil {
		t.Fatal(err)
	}
	if fresh.Log().Len() != 20 {
		t.Fatalf("restored %d rows", fresh.Log().Len())
	}
}

func TestBoundedSampleStore(t *testing.T) {
	s := NewBoundedSampleStore(3)
	var ids []int64
	for i := 0; i < 5; i++ {
		ids = append(ids, s.Add([]float64{float64(i)}))
	}
	// IDs are stable and monotonically increasing despite eviction.
	for i, id := range ids {
		if id != int64(i) {
			t.Fatalf("id %d = %d", i, id)
		}
	}
	if s.Len() != 3 {
		t.Fatalf("len %d", s.Len())
	}
	// Evicted IDs gather nothing; recent ones survive.
	if m := s.Gather(ids[:2]); m != nil {
		t.Fatal("evicted samples should be gone")
	}
	m := s.Gather(ids[2:])
	if m == nil || m.Rows != 3 || m.At(0, 0) != 2 || m.At(2, 0) != 4 {
		t.Fatalf("gather %+v", m)
	}
}

func TestLogRetentionCompacts(t *testing.T) {
	world := imagesim.NewWorld(imagesim.DefaultConfig(6, 31))
	base := nn.NewClassifier(nn.ArchResNet18, world.Dim(), 6, tensor.NewRand(31, 1))
	cfg := DefaultConfig()
	cfg.LogRetention = 48 * time.Hour
	svc := NewService(base, cfg)
	for d := 0; d < 10; d++ {
		svc.Ingest(driftlog.Entry{
			Time: weather.Day(d), Drift: false,
			Attrs: map[string]string{driftlog.AttrWeather: "clear-day"},
		}, nil)
	}
	if _, err := svc.RunWindow(time.Time{}, time.Time{}, weather.Day(10)); err != nil {
		t.Fatal(err)
	}
	// Only days 8 and 9 survive a 48h retention at now = day 10.
	if got := svc.Log().Len(); got != 2 {
		t.Fatalf("retained %d rows, want 2", got)
	}
}
