// Package cloud implements the cloud half of Nazar: drift-log ingestion,
// the sample store for uploaded inputs, the periodic root-cause-analysis
// job, by-cause adaptation and version deployment.
//
// The paper runs these on Aurora + Lambda + GPU EC2 + S3; here they are
// one in-process service (package httpapi adds the wire protocol for a
// real distributed deployment).
package cloud

import (
	"context"
	"errors"
	"fmt"
	"runtime/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nazar/internal/adapt"
	"nazar/internal/driftlog"
	"nazar/internal/fim"
	"nazar/internal/nn"
	"nazar/internal/obs"
	"nazar/internal/rca"
	"nazar/internal/tensor"
)

// sampleShards is the SampleStore shard count (power of two).
const (
	sampleShards    = 16
	sampleShardMask = sampleShards - 1
)

// sampleShard holds every sample whose ID ≡ shard index (mod
// sampleShards), densely packed: the vector for ID id lives at position
// id/sampleShards - basePos.
type sampleShard struct {
	mu      sync.RWMutex
	basePos int64 // position of vectors[0]
	vectors [][]float64
}

// SampleStore holds uploaded input samples keyed by ID. IDs are assigned
// from a global counter and strided across shards, so concurrent devices
// upload without contending on a single mutex. With a positive capacity
// it retains only the most recent samples — IDs below the eviction
// watermark (next-capacity) gather nothing — bounding cloud memory the
// way the paper's S3 lifecycle rules would.
type SampleStore struct {
	next     atomic.Int64
	capacity int64 // 0 = unbounded
	evicted  atomic.Int64
	shards   [sampleShards]sampleShard
}

// NewSampleStore returns an unbounded store.
func NewSampleStore() *SampleStore { return &SampleStore{} }

// NewBoundedSampleStore returns a store retaining at most capacity
// samples.
func NewBoundedSampleStore(capacity int) *SampleStore {
	return &SampleStore{capacity: int64(capacity)}
}

// watermark returns the smallest retained ID (0 when unbounded).
func (s *SampleStore) watermark() int64 {
	if s.capacity <= 0 {
		return 0
	}
	if w := s.next.Load() - s.capacity; w > 0 {
		return w
	}
	return 0
}

// Add stores a sample and returns its ID.
func (s *SampleStore) Add(x []float64) int64 {
	id := s.next.Add(1) - 1
	sh := &s.shards[id&sampleShardMask]
	pos := id / sampleShards
	v := append([]float64(nil), x...)
	sh.mu.Lock()
	// Concurrent adders may reach the shard out of ID order; grow with
	// gaps that the lagging adder fills.
	for int64(len(sh.vectors)) <= pos-sh.basePos {
		sh.vectors = append(sh.vectors, nil)
	}
	sh.vectors[pos-sh.basePos] = v
	// Lazily trim everything below the eviction watermark.
	if w := s.watermark(); w > 0 {
		shardIdx := id & sampleShardMask
		minPos := int64(0)
		if w > shardIdx {
			minPos = (w - shardIdx + sampleShards - 1) / sampleShards
		}
		if drop := minPos - sh.basePos; drop > 0 {
			if drop > int64(len(sh.vectors)) {
				drop = int64(len(sh.vectors))
			}
			sh.vectors = append([][]float64(nil), sh.vectors[drop:]...)
			sh.basePos += drop
			s.evicted.Add(drop)
		}
	}
	sh.mu.Unlock()
	return id
}

// Len returns the number of retained samples.
func (s *SampleStore) Len() int {
	n := s.next.Load()
	if s.capacity > 0 && n > s.capacity {
		return int(s.capacity)
	}
	return int(n)
}

// SampleStoreStats is an operational snapshot of the sample store,
// consumed by the observability layer at scrape time.
type SampleStoreStats struct {
	// Added counts every sample ever stored; Retained is the current
	// (post-eviction) count; Evicted counts samples trimmed by the
	// capacity bound.
	Added    int64
	Retained int
	Evicted  int64
	// ShardRows is the per-shard retained row count (occupancy balance).
	ShardRows []int
}

// Stats returns the current operational snapshot.
func (s *SampleStore) Stats() SampleStoreStats {
	st := SampleStoreStats{
		Added:     s.next.Load(),
		Retained:  s.Len(),
		Evicted:   s.evicted.Load(),
		ShardRows: make([]int, sampleShards),
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		st.ShardRows[i] = len(sh.vectors)
		sh.mu.RUnlock()
	}
	return st
}

// Gather materializes the samples with the given IDs as a batch matrix
// (nil when ids is empty), rows in the order of ids. Unknown or evicted
// IDs are skipped.
func (s *SampleStore) Gather(ids []int64) *tensor.Matrix {
	for i := range s.shards {
		s.shards[i].mu.RLock()
	}
	defer func() {
		for i := range s.shards {
			s.shards[i].mu.RUnlock()
		}
	}()
	next, w := s.next.Load(), s.watermark()
	var rows [][]float64
	for _, id := range ids {
		if id < w || id >= next {
			continue
		}
		sh := &s.shards[id&sampleShardMask]
		pos := id/sampleShards - sh.basePos
		if pos < 0 || pos >= int64(len(sh.vectors)) || sh.vectors[pos] == nil {
			continue
		}
		rows = append(rows, sh.vectors[pos])
	}
	if len(rows) == 0 {
		return nil
	}
	m := tensor.New(len(rows), len(rows[0]))
	for i, r := range rows {
		copy(m.Row(i), r)
	}
	return m
}

// Config parameterizes the cloud service.
type Config struct {
	// RCAMode selects the analysis variant (rca.Full is Nazar).
	RCAMode rca.Mode
	// Thresholds are the FIM thresholds.
	Thresholds fim.Thresholds
	// AdaptCfg is the adaptation configuration (TENT by default).
	AdaptCfg adapt.Config
	// MinSamplesPerCause skips adaptation for causes with too few
	// uploaded samples.
	MinSamplesPerCause int
	// AdaptClean also re-adapts the clean model on non-cause samples
	// each window (the "continuously adapted clean model" of §3.4).
	AdaptClean bool
	// LogRetention, when positive, compacts drift-log rows older than
	// this duration (relative to each analysis run's `now`) before the
	// analysis, bounding log growth. Note that retention interacts with
	// cumulative analysis: compacted history no longer supports causes.
	LogRetention time.Duration
	// Sketch tunes the drift log's tiered approximate-counting layer for
	// high-cardinality attributes (see driftlog.SketchConfig). The zero
	// value selects the defaults; ordinary categorical attributes never
	// cross the default threshold, so behavior is exact unless the fleet
	// actually logs a high-cardinality attribute.
	Sketch driftlog.SketchConfig
}

// DefaultConfig returns the paper-default cloud configuration.
func DefaultConfig() Config {
	th := fim.DefaultThresholds()
	// The model version is logged for observability, not as a candidate
	// cause attribute: mining it produces degenerate causes tied to
	// version IDs.
	th.ExcludeAttrs = []string{driftlog.AttrModel}
	ac := adapt.DefaultConfig()
	ac.MinSteps = 30
	return Config{
		RCAMode:            rca.Full,
		Thresholds:         th,
		AdaptCfg:           ac,
		MinSamplesPerCause: 16,
		AdaptClean:         true,
	}
}

// sampleMeta records the attributes a sample arrived with, so samples can
// be grouped by cause (or by "no cause" for clean adaptation).
type sampleMeta struct {
	id    int64
	attrs map[string]string
	t     time.Time
}

// metaShard buckets sample metadata by sample ID so concurrent ingests
// do not serialize on the service mutex.
type metaShard struct {
	mu    sync.Mutex
	metas []sampleMeta
}

// Service is the cloud side of Nazar.
type Service struct {
	cfg Config
	// clock supplies "now" for stage timing (WithClock substitutes a
	// fake in tests).
	clock func() time.Time
	// metrics, when non-nil, receives every operational event
	// (WithObserver). The nil default keeps the hot paths free of even
	// the atomic adds.
	metrics *Metrics

	mu      sync.Mutex
	log     *driftlog.Store
	samples *SampleStore
	meta    [sampleShards]metaShard
	base    *nn.Network
	// versionSeq disambiguates version IDs across windows.
	versionSeq int
	// deployed is the history of every version produced, in order.
	deployed []adapt.BNVersion
	// alerter, when set, receives one alert per diagnosed cause.
	alerter Alerter
	// refBN is the initial base's BN state, pinned as the delta
	// reference for compressed version transfer.
	refBN *nn.BNSnapshot

	// acMu guards acache, the incremental window-analysis cache (see
	// analyze).
	acMu   sync.Mutex
	acache analysisCache

	// walDir/walOpts are set by WithWAL; wal (or walErr) is resolved
	// once in NewService and read-only afterwards.
	walDir  string
	walOpts driftlog.WALOptions
	wal     *driftlog.WAL
	walErr  error
}

// ErrDurability marks ingest failures on the durability path: the WAL
// could not persist the batch (or never opened), so the write was NOT
// applied and the entries are NOT acknowledged. Transports must treat
// it as transient — retrying against a restarted service redelivers the
// batch — which is why the HTTP layer maps it to a 5xx, never a 4xx.
var ErrDurability = errors.New("cloud: durability failure")

// analysisCache carries the previous analysis run's identity and mining
// state. The identity is (window bounds, per-shard pinned row counts,
// compaction generation): shards are append-only between compactions,
// so equal identity means the exact same rows — the causes are reused
// wholesale — and a grown identity (same lower bound, same-or-later
// upper bound, pointwise ≥ row counts) means the previous rows are a
// stable prefix, so mining counts only the delta rows (fim.MineCache).
// Any compaction bumps the store's generation counter and voids the
// cache.
type analysisCache struct {
	valid       bool
	fromN, toN  int64
	shardRows   []int
	compactions int64
	mine        *fim.MineCache
	causes      []rca.Cause
}

// Option customizes service construction (the DefaultConfig/Config pair
// remains the compatibility shim for the paper-parameter knobs; options
// cover operational wiring).
type Option func(*Service)

// WithClock substitutes the time source used for stage timing and
// observability (defaults to time.Now).
func WithClock(clock func() time.Time) Option {
	return func(s *Service) {
		if clock != nil {
			s.clock = clock
		}
	}
}

// WithSampleCap bounds the sample store to the given capacity (the S3
// lifecycle rule of the paper's deployment). capacity <= 0 keeps the
// store unbounded.
func WithSampleCap(capacity int) Option {
	return func(s *Service) {
		if capacity > 0 {
			s.samples = NewBoundedSampleStore(capacity)
		}
	}
}

// WithObserver instruments the service on the given registry: ingest
// counters, shard-occupancy gauges, per-stage window histograms and
// adaptation accept/reject counters (see NewMetrics for the full list).
func WithObserver(reg *obs.Registry) Option {
	return func(s *Service) {
		if reg != nil {
			s.metrics = NewMetrics(reg)
		}
	}
}

// WithWAL makes the drift log durable: every ingest batch is appended
// and fsynced to a write-ahead log in dir before it is applied in
// memory, and NewService replays any existing log in dir so a restarted
// service resumes with the rows it had acknowledged before dying.
// Open/replay failures are deferred to WALErr() — NewService cannot
// return an error — and ingest refuses with ErrDurability until
// resolved.
func WithWAL(dir string, opts driftlog.WALOptions) Option {
	return func(s *Service) {
		s.walDir = dir
		s.walOpts = opts
	}
}

// NewService creates the service around the initial trained model.
func NewService(base *nn.Network, cfg Config, opts ...Option) *Service {
	if cfg.Thresholds.MaxItems == 0 {
		cfg.Thresholds = fim.DefaultThresholds()
	}
	if cfg.MinSamplesPerCause <= 0 {
		cfg.MinSamplesPerCause = 16
	}
	s := &Service{
		cfg:     cfg,
		clock:   time.Now,
		log:     driftlog.NewStoreWithSketch(cfg.Sketch),
		samples: NewSampleStore(),
		base:    base,
		refBN:   nn.CaptureBN(base),
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.walDir != "" {
		wal, err := driftlog.OpenWAL(s.walDir, s.log, s.walOpts)
		if err != nil {
			s.walErr = fmt.Errorf("cloud: wal open: %w", err)
		} else {
			s.wal = wal
		}
	}
	if s.metrics != nil {
		s.metrics.observeStores(s)
	}
	return s
}

// WAL returns the service's write-ahead log (nil unless WithWAL was
// used and the open succeeded).
func (s *Service) WAL() *driftlog.WAL { return s.wal }

// WALErr reports a WithWAL open/replay failure. A non-nil result means
// the service is NOT durable and refuses ingest; callers should treat
// it as fatal at startup.
func (s *Service) WALErr() error { return s.walErr }

// Close releases the service's durable resources: it flushes and closes
// the WAL (waiting out any background compaction). Idempotent; a
// service without a WAL closes trivially.
func (s *Service) Close() error {
	if s.wal != nil {
		return s.wal.Close()
	}
	return nil
}

// walAppend persists a batch to the WAL before it becomes visible in
// memory. With no WAL configured it is free; with one, a nil return
// means the batch is fsynced to disk.
func (s *Service) walAppend(entries []driftlog.Entry) error {
	if s.walErr != nil {
		return fmt.Errorf("%w: %w", ErrDurability, s.walErr)
	}
	if s.wal == nil {
		return nil
	}
	if err := s.wal.Append(entries); err != nil {
		return fmt.Errorf("%w: %w", ErrDurability, err)
	}
	return nil
}

// Observer returns the service's metrics hook (nil unless WithObserver
// was used).
func (s *Service) Observer() *Metrics { return s.metrics }

// ReferenceBN returns the pinned BN state of the *initial* base model —
// the stable reference both ends use for delta-compressed version
// transfer. (The live base evolves with clean adaptation; the reference
// does not.)
func (s *Service) ReferenceBN() *nn.BNSnapshot { return s.refBN }

// Log exposes the drift log (read-mostly; used by experiments and the
// HTTP API).
func (s *Service) Log() *driftlog.Store { return s.log }

// Samples exposes the sample store.
func (s *Service) Samples() *SampleStore { return s.samples }

// Base returns the current clean model.
func (s *Service) Base() *nn.Network {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.base
}

// recordMeta files a sample's metadata in its ID shard.
func (s *Service) recordMeta(m sampleMeta) {
	sh := &s.meta[m.id&sampleShardMask]
	sh.mu.Lock()
	sh.metas = append(sh.metas, m)
	sh.mu.Unlock()
}

// allMeta snapshots every shard's metadata, ordered by sample ID.
func (s *Service) allMeta() []sampleMeta {
	var out []sampleMeta
	for i := range s.meta {
		sh := &s.meta[i]
		sh.mu.Lock()
		out = append(out, sh.metas...)
		sh.mu.Unlock()
	}
	sort.Slice(out, func(a, b int) bool { return out[a].id < out[b].id })
	return out
}

// Ingest records a drift-log entry, storing the sample (if any) and
// linking it to the entry.
func (s *Service) Ingest(e driftlog.Entry, sample []float64) {
	_ = s.IngestContext(context.Background(), e, sample)
}

// IngestContext is the context-aware ingest. The write itself is
// non-blocking (sharded, lock-striped), so the context only gates entry:
// an already-cancelled request is rejected before touching the stores.
func (s *Service) IngestContext(ctx context.Context, e driftlog.Entry, sample []float64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if sample != nil {
		id := s.samples.Add(sample)
		e.SampleID = id
		s.recordMeta(sampleMeta{id: id, attrs: e.Attrs, t: e.Time})
	} else if e.SampleID != -1 {
		e.SampleID = -1
	}
	// WAL first: the entry must be durable before it is queryable, or a
	// crash between the two would acknowledge a row that replay cannot
	// restore.
	if err := s.walAppend([]driftlog.Entry{e}); err != nil {
		return err
	}
	s.log.Append(e)
	if m := s.metrics; m != nil {
		m.ingestEntries.Inc()
		if sample != nil {
			m.ingestSamples.Inc()
			m.ingestBytes.Add(uint64(8 * len(sample)))
		}
	}
	return nil
}

// IngestBatch records many drift-log entries in one call, taking each
// store lock once per batch rather than once per entry. samples, when
// non-nil, must be the same length as entries; samples[i] == nil means
// entry i carried no uploaded input. The entries slice is not retained
// but its rows are modified in place (SampleID is rewritten).
func (s *Service) IngestBatch(entries []driftlog.Entry, samples [][]float64) error {
	return s.IngestBatchContext(context.Background(), entries, samples)
}

// IngestBatchContext is the context-aware batched ingest. Like
// IngestContext, the context gates entry only: a batch is either rejected
// up front or recorded atomically in full, never half-applied.
func (s *Service) IngestBatchContext(ctx context.Context, entries []driftlog.Entry, samples [][]float64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if samples != nil && len(samples) != len(entries) {
		return fmt.Errorf("cloud: ingest batch: %d entries but %d samples", len(entries), len(samples))
	}
	var sampleCount, sampleBytes int
	for i := range entries {
		if samples != nil && samples[i] != nil {
			id := s.samples.Add(samples[i])
			entries[i].SampleID = id
			s.recordMeta(sampleMeta{id: id, attrs: entries[i].Attrs, t: entries[i].Time})
			sampleCount++
			sampleBytes += 8 * len(samples[i])
		} else if entries[i].SampleID != -1 {
			entries[i].SampleID = -1
		}
	}
	// WAL first (see IngestContext): durable before visible.
	if err := s.walAppend(entries); err != nil {
		return err
	}
	s.log.AppendBatch(entries)
	if m := s.metrics; m != nil {
		m.ingestEntries.Add(uint64(len(entries)))
		m.ingestBatches.Inc()
		m.ingestSamples.Add(uint64(sampleCount))
		m.ingestBytes.Add(uint64(sampleBytes))
	}
	return nil
}

// IngestColumns records a columnar batch (the binary wire protocol's
// decoded form) without a per-row struct round-trip.
func (s *Service) IngestColumns(b *driftlog.ColumnarBatch, samples [][]float64) error {
	return s.IngestColumnsContext(context.Background(), b, samples)
}

// IngestColumnsContext is the context-aware columnar ingest: the fast
// path behind application/x-nazar-batch. Semantics match
// IngestBatchContext exactly — the context gates entry only, sample IDs
// are rewritten in place (rows without a sample normalize to -1), and
// the batch is WAL-appended before it becomes visible in the store.
func (s *Service) IngestColumnsContext(ctx context.Context, b *driftlog.ColumnarBatch, samples [][]float64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := b.Validate(); err != nil {
		return fmt.Errorf("cloud: ingest columns: %w", err)
	}
	rows := b.Rows()
	if samples != nil && len(samples) != rows {
		return fmt.Errorf("cloud: ingest columns: %d rows but %d samples", rows, len(samples))
	}
	var sampleCount, sampleBytes int
	for i := 0; i < rows; i++ {
		if samples != nil && samples[i] != nil {
			id := s.samples.Add(samples[i])
			b.SampleIDs[i] = id
			s.recordMeta(sampleMeta{id: id, attrs: b.RowAttrs(i), t: time.Unix(0, b.Times[i]).UTC()})
			sampleCount++
			sampleBytes += 8 * len(samples[i])
		} else if b.SampleIDs[i] != -1 {
			b.SampleIDs[i] = -1
		}
	}
	// WAL first (see IngestContext): durable before visible.
	if err := s.walAppendColumns(b); err != nil {
		return err
	}
	if err := s.log.AppendColumns(b); err != nil {
		return fmt.Errorf("cloud: ingest columns: %w", err)
	}
	if m := s.metrics; m != nil {
		m.ingestEntries.Add(uint64(rows))
		m.ingestBatches.Inc()
		m.ingestSamples.Add(uint64(sampleCount))
		m.ingestBytes.Add(uint64(sampleBytes))
	}
	return nil
}

// walAppendColumns is walAppend for a columnar batch (same record
// format on disk; replay cannot tell the ingest paths apart).
func (s *Service) walAppendColumns(b *driftlog.ColumnarBatch) error {
	if s.walErr != nil {
		return fmt.Errorf("%w: %w", ErrDurability, s.walErr)
	}
	if s.wal == nil {
		return nil
	}
	if err := s.wal.AppendColumns(b); err != nil {
		return fmt.Errorf("%w: %w", ErrDurability, err)
	}
	return nil
}

// WindowResult is the outcome of one analysis/adaptation cycle.
type WindowResult struct {
	Causes   []rca.Cause
	Versions []adapt.BNVersion
	// LogRows is the number of drift-log rows scanned.
	LogRows int
	// RCADuration and AdaptDuration decompose the cycle's latency
	// (§5.8: analysis seconds vs adaptation minutes).
	RCADuration   time.Duration
	AdaptDuration time.Duration
}

// RunWindow executes one cycle of Nazar's cloud loop over drift-log rows
// in [from, to): root-cause analysis, per-cause adaptation (plus clean
// re-adaptation), returning the versions to deploy. now stamps the
// produced versions.
func (s *Service) RunWindow(from, to, now time.Time) (WindowResult, error) {
	return s.RunWindowContext(context.Background(), from, to, now)
}

// RunWindowContext is RunWindow with cooperative cancellation: the
// context threads through mining, counterfactual pruning and every
// adaptation run, so cancelling the request aborts the worker-pool
// fan-out mid-window and returns ctx.Err() promptly. A cancelled cycle
// deploys nothing and leaves the base model untouched.
func (s *Service) RunWindowContext(ctx context.Context, from, to, now time.Time) (WindowResult, error) {
	var res WindowResult
	m := s.metrics
	if m != nil {
		m.windowRuns.Inc()
	}
	windowStart := s.clock()
	fail := func(err error) (WindowResult, error) {
		if m != nil {
			m.windowErrors.Inc()
		}
		return res, err
	}
	if s.cfg.LogRetention > 0 {
		s.log.Compact(now.Add(-s.cfg.LogRetention))
	}
	v := s.log.Window(from, to)
	res.LogRows = v.Len()

	rcaStart := s.clock()
	causes, err := s.analyze(ctx, v)
	if err != nil {
		if ctx.Err() != nil {
			return fail(err)
		}
		return fail(fmt.Errorf("cloud: analysis: %w", err))
	}
	res.RCADuration = s.clock().Sub(rcaStart)
	res.Causes = causes
	s.alertCauses(causes, from, to, now)

	adaptStart := s.clock()
	base := s.Base()

	source := func(c rca.Cause) *tensor.Matrix {
		ids, err := v.SampleIDs(c.Items)
		if err != nil {
			return nil
		}
		return s.samples.Gather(ids)
	}
	var versions []adapt.BNVersion
	var adaptErr error
	pprof.Do(ctx, pprof.Labels("nazar_stage", "adapt"), func(ctx context.Context) {
		versions, adaptErr = adapt.ByCauseContext(ctx, base, causes, source, s.cfg.MinSamplesPerCause, s.cfg.AdaptCfg, now)
		if adaptErr != nil {
			adaptErr = wrapUnlessCancelled(ctx, adaptErr, "cloud: by-cause adaptation")
			return
		}
		if !s.cfg.AdaptClean {
			return
		}
		cleanX := s.cleanSamples(causes, from, to)
		if cleanX == nil || cleanX.Rows < s.cfg.MinSamplesPerCause {
			return
		}
		adapted, err := adapt.AdaptContext(ctx, base, cleanX, s.cfg.AdaptCfg)
		if err != nil {
			adaptErr = wrapUnlessCancelled(ctx, err, "cloud: clean adaptation")
			return
		}
		s.mu.Lock()
		s.base = adapted
		s.versionSeq++
		seq := s.versionSeq
		s.mu.Unlock()
		versions = append(versions, adapt.BNVersion{
			ID:        fmt.Sprintf("clean@%d#%d", now.Unix(), seq),
			Snapshot:  nn.CaptureBN(adapted),
			CreatedAt: now,
		})
	})
	if adaptErr != nil {
		return fail(adaptErr)
	}
	res.AdaptDuration = s.clock().Sub(adaptStart)
	res.Versions = versions
	s.mu.Lock()
	s.deployed = append(s.deployed, versions...)
	s.mu.Unlock()
	if m != nil {
		m.observeWindow(res, s.clock().Sub(windowStart))
	}
	return res, nil
}

// wrapUnlessCancelled preserves raw context errors (callers detect them
// via ctx.Err()) and wraps everything else with the stage name.
func wrapUnlessCancelled(ctx context.Context, err error, stage string) error {
	if ctx.Err() != nil {
		return err
	}
	return fmt.Errorf("%s: %w", stage, err)
}

// analyze runs root-cause analysis through the incremental
// window-analysis cache:
//
//   - unchanged window (same bounds, same pinned rows, no compaction):
//     the cached causes are returned without re-mining anything;
//   - grown window (same lower bound, row set a superset): mining
//     counts only the delta rows via rca.AnalyzeIncrementalContext;
//   - anything else (different window, compaction, first run): a full
//     analysis, which repopulates the cache.
//
// Results are identical to a fresh analysis in every case: the hit path
// replays a deterministic computation's output, and the delta path's
// counts are exact-integer sums over a disjoint row decomposition.
func (s *Service) analyze(ctx context.Context, v *driftlog.View) ([]rca.Cause, error) {
	fromN, toN := v.Bounds()
	rows := v.ShardRows()
	comp := s.log.Compactions()

	s.acMu.Lock()
	ac := s.acache
	s.acMu.Unlock()

	var delta *driftlog.View
	var prev *fim.MineCache
	outcome := "miss"
	if ac.valid && ac.fromN == fromN && ac.compactions == comp {
		if ac.toN == toN && rowsEqual(ac.shardRows, rows) {
			if m := s.metrics; m != nil {
				m.analysisCacheHits.Inc()
			}
			return append([]rca.Cause(nil), ac.causes...), nil
		}
		if toN >= ac.toN && rowsGrown(ac.shardRows, rows) {
			if d, err := v.Since(ac.shardRows, ac.toN); err == nil {
				delta, prev = d, ac.mine
				outcome = "delta"
			}
		}
	}
	causes, mine, err := rca.AnalyzeIncrementalContext(ctx, v, delta, prev,
		rca.Config{Thresholds: s.cfg.Thresholds}, s.cfg.RCAMode)
	if err != nil {
		return nil, err
	}
	if m := s.metrics; m != nil {
		if outcome == "delta" {
			m.analysisCacheDeltas.Inc()
		} else {
			m.analysisCacheMisses.Inc()
		}
	}
	s.acMu.Lock()
	s.acache = analysisCache{
		valid:       true,
		fromN:       fromN,
		toN:         toN,
		shardRows:   rows,
		compactions: comp,
		mine:        mine,
		causes:      append([]rca.Cause(nil), causes...),
	}
	s.acMu.Unlock()
	return causes, nil
}

// rowsEqual reports a == b elementwise.
func rowsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// rowsGrown reports b[i] >= a[i] elementwise (b strictly contains a's
// rows as a prefix, shard by shard).
func rowsGrown(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if b[i] < a[i] {
			return false
		}
	}
	return true
}

// VersionsSince returns every produced version with CreatedAt ≥ since
// (devices poll this to pull new deployments).
func (s *Service) VersionsSince(since time.Time) []adapt.BNVersion {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []adapt.BNVersion
	for _, v := range s.deployed {
		if !v.CreatedAt.Before(since) {
			out = append(out, v)
		}
	}
	return out
}

// SaveLog persists the drift log to path (atomic write).
func (s *Service) SaveLog(path string) error { return s.log.SaveFile(path) }

// LoadLog appends previously persisted drift-log rows from path. Sample
// links are preserved only if the sample store is restored separately;
// otherwise stale IDs simply gather nothing.
func (s *Service) LoadLog(path string) error { return s.log.LoadFile(path) }

// cleanSamples gathers in-window samples whose attributes match no
// discovered cause.
func (s *Service) cleanSamples(causes []rca.Cause, from, to time.Time) *tensor.Matrix {
	metas := s.allMeta()
	var ids []int64
	for _, m := range metas {
		if !from.IsZero() && m.t.Before(from) {
			continue
		}
		if !to.IsZero() && !m.t.Before(to) {
			continue
		}
		if rca.AssignCause(causes, m.attrs) == -1 {
			ids = append(ids, m.id)
		}
	}
	return s.samples.Gather(ids)
}
