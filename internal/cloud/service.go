// Package cloud implements the cloud half of Nazar: drift-log ingestion,
// the sample store for uploaded inputs, the periodic root-cause-analysis
// job, by-cause adaptation and version deployment.
//
// The paper runs these on Aurora + Lambda + GPU EC2 + S3; here they are
// one in-process service (package httpapi adds the wire protocol for a
// real distributed deployment).
package cloud

import (
	"fmt"
	"sync"
	"time"

	"nazar/internal/adapt"
	"nazar/internal/driftlog"
	"nazar/internal/fim"
	"nazar/internal/nn"
	"nazar/internal/rca"
	"nazar/internal/tensor"
)

// SampleStore holds uploaded input samples keyed by ID. With a positive
// capacity it retains only the most recent samples (older ones are
// dropped; stale IDs then gather nothing), bounding cloud memory the way
// the paper's S3 lifecycle rules would.
type SampleStore struct {
	mu       sync.RWMutex
	vectors  [][]float64
	capacity int
	dropped  int64 // IDs below this have been evicted
}

// NewSampleStore returns an unbounded store.
func NewSampleStore() *SampleStore { return &SampleStore{} }

// NewBoundedSampleStore returns a store retaining at most capacity
// samples.
func NewBoundedSampleStore(capacity int) *SampleStore {
	return &SampleStore{capacity: capacity}
}

// Add stores a sample and returns its ID.
func (s *SampleStore) Add(x []float64) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.vectors = append(s.vectors, append([]float64(nil), x...))
	if s.capacity > 0 && len(s.vectors) > s.capacity {
		evict := len(s.vectors) - s.capacity
		s.vectors = append([][]float64(nil), s.vectors[evict:]...)
		s.dropped += int64(evict)
	}
	return s.dropped + int64(len(s.vectors)-1)
}

// Len returns the number of stored samples.
func (s *SampleStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.vectors)
}

// Gather materializes the samples with the given IDs as a batch matrix
// (nil when ids is empty). Unknown or evicted IDs are skipped.
func (s *SampleStore) Gather(ids []int64) *tensor.Matrix {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var rows [][]float64
	for _, id := range ids {
		idx := id - s.dropped
		if id >= 0 && idx >= 0 && idx < int64(len(s.vectors)) {
			rows = append(rows, s.vectors[idx])
		}
	}
	if len(rows) == 0 {
		return nil
	}
	m := tensor.New(len(rows), len(rows[0]))
	for i, r := range rows {
		copy(m.Row(i), r)
	}
	return m
}

// Config parameterizes the cloud service.
type Config struct {
	// RCAMode selects the analysis variant (rca.Full is Nazar).
	RCAMode rca.Mode
	// Thresholds are the FIM thresholds.
	Thresholds fim.Thresholds
	// AdaptCfg is the adaptation configuration (TENT by default).
	AdaptCfg adapt.Config
	// MinSamplesPerCause skips adaptation for causes with too few
	// uploaded samples.
	MinSamplesPerCause int
	// AdaptClean also re-adapts the clean model on non-cause samples
	// each window (the "continuously adapted clean model" of §3.4).
	AdaptClean bool
	// LogRetention, when positive, compacts drift-log rows older than
	// this duration (relative to each analysis run's `now`) before the
	// analysis, bounding log growth. Note that retention interacts with
	// cumulative analysis: compacted history no longer supports causes.
	LogRetention time.Duration
}

// DefaultConfig returns the paper-default cloud configuration.
func DefaultConfig() Config {
	th := fim.DefaultThresholds()
	// The model version is logged for observability, not as a candidate
	// cause attribute: mining it produces degenerate causes tied to
	// version IDs.
	th.ExcludeAttrs = []string{driftlog.AttrModel}
	ac := adapt.DefaultConfig()
	ac.MinSteps = 30
	return Config{
		RCAMode:            rca.Full,
		Thresholds:         th,
		AdaptCfg:           ac,
		MinSamplesPerCause: 16,
		AdaptClean:         true,
	}
}

// sampleMeta records the attributes a sample arrived with, so samples can
// be grouped by cause (or by "no cause" for clean adaptation).
type sampleMeta struct {
	id    int64
	attrs map[string]string
	t     time.Time
}

// Service is the cloud side of Nazar.
type Service struct {
	cfg Config

	mu      sync.Mutex
	log     *driftlog.Store
	samples *SampleStore
	meta    []sampleMeta
	base    *nn.Network
	// versionSeq disambiguates version IDs across windows.
	versionSeq int
	// deployed is the history of every version produced, in order.
	deployed []adapt.BNVersion
	// alerter, when set, receives one alert per diagnosed cause.
	alerter Alerter
	// refBN is the initial base's BN state, pinned as the delta
	// reference for compressed version transfer.
	refBN *nn.BNSnapshot
}

// NewService creates the service around the initial trained model.
func NewService(base *nn.Network, cfg Config) *Service {
	if cfg.Thresholds.MaxItems == 0 {
		cfg.Thresholds = fim.DefaultThresholds()
	}
	if cfg.MinSamplesPerCause <= 0 {
		cfg.MinSamplesPerCause = 16
	}
	return &Service{
		cfg:     cfg,
		log:     driftlog.NewStore(),
		samples: NewSampleStore(),
		base:    base,
		refBN:   nn.CaptureBN(base),
	}
}

// ReferenceBN returns the pinned BN state of the *initial* base model —
// the stable reference both ends use for delta-compressed version
// transfer. (The live base evolves with clean adaptation; the reference
// does not.)
func (s *Service) ReferenceBN() *nn.BNSnapshot { return s.refBN }

// Log exposes the drift log (read-mostly; used by experiments and the
// HTTP API).
func (s *Service) Log() *driftlog.Store { return s.log }

// Samples exposes the sample store.
func (s *Service) Samples() *SampleStore { return s.samples }

// Base returns the current clean model.
func (s *Service) Base() *nn.Network {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.base
}

// Ingest records a drift-log entry, storing the sample (if any) and
// linking it to the entry.
func (s *Service) Ingest(e driftlog.Entry, sample []float64) {
	if sample != nil {
		id := s.samples.Add(sample)
		e.SampleID = id
		s.mu.Lock()
		s.meta = append(s.meta, sampleMeta{id: id, attrs: e.Attrs, t: e.Time})
		s.mu.Unlock()
	} else if e.SampleID != -1 {
		e.SampleID = -1
	}
	s.log.Append(e)
}

// WindowResult is the outcome of one analysis/adaptation cycle.
type WindowResult struct {
	Causes   []rca.Cause
	Versions []adapt.BNVersion
	// LogRows is the number of drift-log rows scanned.
	LogRows int
	// RCADuration and AdaptDuration decompose the cycle's latency
	// (§5.8: analysis seconds vs adaptation minutes).
	RCADuration   time.Duration
	AdaptDuration time.Duration
}

// RunWindow executes one cycle of Nazar's cloud loop over drift-log rows
// in [from, to): root-cause analysis, per-cause adaptation (plus clean
// re-adaptation), returning the versions to deploy. now stamps the
// produced versions.
func (s *Service) RunWindow(from, to, now time.Time) (WindowResult, error) {
	var res WindowResult
	if s.cfg.LogRetention > 0 {
		s.log.Compact(now.Add(-s.cfg.LogRetention))
	}
	v := s.log.Window(from, to)
	res.LogRows = v.Len()

	rcaStart := time.Now()
	causes, err := rca.Analyze(v, rca.Config{Thresholds: s.cfg.Thresholds}, s.cfg.RCAMode)
	if err != nil {
		return res, fmt.Errorf("cloud: analysis: %w", err)
	}
	res.RCADuration = time.Since(rcaStart)
	res.Causes = causes
	s.alertCauses(causes, from, to, now)

	adaptStart := time.Now()
	base := s.Base()

	source := func(c rca.Cause) *tensor.Matrix {
		ids, err := v.SampleIDs(c.Items)
		if err != nil {
			return nil
		}
		return s.samples.Gather(ids)
	}
	versions, err := adapt.ByCause(base, causes, source, s.cfg.MinSamplesPerCause, s.cfg.AdaptCfg, now)
	if err != nil {
		return res, fmt.Errorf("cloud: by-cause adaptation: %w", err)
	}

	if s.cfg.AdaptClean {
		if cleanX := s.cleanSamples(causes, from, to); cleanX != nil && cleanX.Rows >= s.cfg.MinSamplesPerCause {
			adapted, err := adapt.Adapt(base, cleanX, s.cfg.AdaptCfg)
			if err != nil {
				return res, fmt.Errorf("cloud: clean adaptation: %w", err)
			}
			s.mu.Lock()
			s.base = adapted
			s.versionSeq++
			seq := s.versionSeq
			s.mu.Unlock()
			versions = append(versions, adapt.BNVersion{
				ID:        fmt.Sprintf("clean@%d#%d", now.Unix(), seq),
				Snapshot:  nn.CaptureBN(adapted),
				CreatedAt: now,
			})
		}
	}
	res.AdaptDuration = time.Since(adaptStart)
	res.Versions = versions
	s.mu.Lock()
	s.deployed = append(s.deployed, versions...)
	s.mu.Unlock()
	return res, nil
}

// VersionsSince returns every produced version with CreatedAt ≥ since
// (devices poll this to pull new deployments).
func (s *Service) VersionsSince(since time.Time) []adapt.BNVersion {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []adapt.BNVersion
	for _, v := range s.deployed {
		if !v.CreatedAt.Before(since) {
			out = append(out, v)
		}
	}
	return out
}

// SaveLog persists the drift log to path (atomic write).
func (s *Service) SaveLog(path string) error { return s.log.SaveFile(path) }

// LoadLog appends previously persisted drift-log rows from path. Sample
// links are preserved only if the sample store is restored separately;
// otherwise stale IDs simply gather nothing.
func (s *Service) LoadLog(path string) error { return s.log.LoadFile(path) }

// cleanSamples gathers in-window samples whose attributes match no
// discovered cause.
func (s *Service) cleanSamples(causes []rca.Cause, from, to time.Time) *tensor.Matrix {
	s.mu.Lock()
	metas := append([]sampleMeta(nil), s.meta...)
	s.mu.Unlock()
	var ids []int64
	for _, m := range metas {
		if !from.IsZero() && m.t.Before(from) {
			continue
		}
		if !to.IsZero() && !m.t.Before(to) {
			continue
		}
		if rca.AssignCause(causes, m.attrs) == -1 {
			ids = append(ids, m.id)
		}
	}
	return s.samples.Gather(ids)
}
