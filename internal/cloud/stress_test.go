package cloud

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"nazar/internal/driftlog"
	"nazar/internal/nn"
	"nazar/internal/tensor"
)

// TestConcurrentIngestRacingRunWindow is the concurrency contract of the
// sharded service, meant to run under -race: 32 device goroutines ingest
// (mixing per-entry and batched paths) while analysis/adaptation windows
// run concurrently. Nothing may race, no entry may be lost, and the final
// window must see every row.
func TestConcurrentIngestRacingRunWindow(t *testing.T) {
	const (
		devices    = 32
		perDevice  = 40
		midWindows = 3
	)
	base := nn.NewClassifier(nn.ArchResNet18, 8, 2, tensor.NewRand(0xC0FFEE, 1))
	cfg := DefaultConfig()
	cfg.MinSamplesPerCause = 8
	cfg.AdaptCfg.Epochs = 1
	cfg.AdaptCfg.MinSteps = 2
	svc := NewService(base, cfg)

	day := time.Date(2020, 1, 15, 0, 0, 0, 0, time.UTC)
	entry := func(dev, i int) driftlog.Entry {
		weather := "clear-day"
		if i%2 == 0 {
			weather = "snow"
		}
		return driftlog.Entry{
			Time:  day.Add(time.Duration(i) * time.Minute),
			Drift: i%2 == 0,
			Attrs: map[string]string{
				driftlog.AttrDevice:   fmt.Sprintf("dev_%02d", dev),
				driftlog.AttrWeather:  weather,
				driftlog.AttrLocation: []string{"A", "B"}[dev%2],
			},
		}
	}
	sample := func(dev, i int) []float64 {
		rng := tensor.NewRand(uint64(dev), uint64(i)+1)
		x := make([]float64, 8)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		return x
	}

	var wg sync.WaitGroup
	errCh := make(chan error, devices+midWindows)

	// Half the devices use the per-entry path, half the batched path.
	for dev := 0; dev < devices; dev++ {
		wg.Add(1)
		go func(dev int) {
			defer wg.Done()
			if dev%2 == 0 {
				for i := 0; i < perDevice; i++ {
					svc.Ingest(entry(dev, i), sample(dev, i))
				}
				return
			}
			const chunk = 10
			for s := 0; s < perDevice; s += chunk {
				entries := make([]driftlog.Entry, chunk)
				samples := make([][]float64, chunk)
				for i := range entries {
					entries[i] = entry(dev, s+i)
					samples[i] = sample(dev, s+i)
				}
				if err := svc.IngestBatch(entries, samples); err != nil {
					errCh <- err
					return
				}
			}
		}(dev)
	}

	// Analysis windows race the ingest storm.
	for w := 0; w < midWindows; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := svc.RunWindow(time.Time{}, time.Time{}, day.AddDate(0, 0, 1)); err != nil {
				errCh <- err
			}
		}()
	}

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	total := devices * perDevice
	if got := svc.Log().Len(); got != total {
		t.Fatalf("log has %d rows, want %d", got, total)
	}
	if got := svc.Samples().Len(); got != total {
		t.Fatalf("store has %d samples, want %d", got, total)
	}

	// A quiet final window sees every row and still finds the snow cause.
	res, err := svc.RunWindow(time.Time{}, time.Time{}, day.AddDate(0, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.LogRows != total {
		t.Fatalf("final window scanned %d rows, want %d", res.LogRows, total)
	}
	foundSnow := false
	for _, c := range res.Causes {
		if c.Matches(map[string]string{driftlog.AttrWeather: "snow", driftlog.AttrLocation: "A"}) ||
			c.Matches(map[string]string{driftlog.AttrWeather: "snow", driftlog.AttrLocation: "B"}) {
			foundSnow = true
		}
	}
	if !foundSnow {
		t.Fatalf("snow cause not recovered from %v", res.Causes)
	}

	// Every sample ID linked from the log must be gatherable.
	ids, err := svc.Log().All().SampleIDs(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != total {
		t.Fatalf("%d sample links, want %d", len(ids), total)
	}
	if m := svc.Samples().Gather(ids); m == nil || m.Rows != total {
		t.Fatalf("gathered %v rows, want %d", m, total)
	}
}
