package cloud

// Staged rollout control plane: version deployment as a guarded state
// machine instead of an unconditional fleet-wide install. A candidate
// version starts on a canary cohort (the first ramp step), advances
// through a percentage ramp only while its cohort's observed accuracy
// and drift rate keep up with the control cohort, and is rolled back
// automatically the moment it regresses past the configured guards.
// Device→version assignment is sticky (registry.StickyFraction):
// a pure function of (device ID, salt, percent), so it survives
// restarts, replicas and any worker-pool partitioning of the fleet,
// and ramping p%→q% reassigns only ~(q−p)% of devices.

import (
	"fmt"
	"sort"
	"sync"

	"nazar/internal/obs"
	"nazar/internal/registry"
)

// RolloutState is the control plane's lifecycle state.
type RolloutState string

const (
	// RolloutCanary: the candidate serves only the first ramp step.
	RolloutCanary RolloutState = "canary"
	// RolloutRamping: at least one guard evaluation passed and the ramp
	// has advanced beyond the canary step.
	RolloutRamping RolloutState = "ramping"
	// RolloutComplete: the final step (or the ceiling) was reached with
	// guards passing; the rollout holds at its final percentage.
	RolloutComplete RolloutState = "complete"
	// RolloutRolledBack: a guard tripped; the candidate serves nobody.
	RolloutRolledBack RolloutState = "rolled-back"
)

// RolloutDecision is the outcome of one guard evaluation.
type RolloutDecision string

const (
	// DecisionHold: not enough evidence yet (cohorts under MinSamples).
	DecisionHold RolloutDecision = "hold"
	// DecisionAdvance: guards passed; the ramp moved to the next step.
	DecisionAdvance RolloutDecision = "advance"
	// DecisionComplete: guards passed on the final step (or at the
	// ceiling); the rollout is done.
	DecisionComplete RolloutDecision = "complete"
	// DecisionRollback: a guard tripped; the candidate was withdrawn.
	DecisionRollback RolloutDecision = "rollback"
	// DecisionNone: the rollout was already terminal when observed.
	DecisionNone RolloutDecision = "none"
)

// rolloutDecisions enumerates every decision for metric pre-registration.
var rolloutDecisions = []RolloutDecision{
	DecisionHold, DecisionAdvance, DecisionComplete, DecisionRollback, DecisionNone,
}

// RolloutPlan declares a staged rollout.
type RolloutPlan struct {
	// Candidate is the version being rolled out; Baseline is what every
	// unassigned (control) device serves.
	Candidate string
	Baseline  string
	// Steps is the ascending percentage ramp schedule, e.g. [1,5,25,100].
	// The first step is the canary cohort size.
	Steps []float64
	// Ceiling, when positive, hard-caps the ramp percentage regardless
	// of the schedule (the blast-radius bound the chaos test asserts a
	// regressed canary never escapes).
	Ceiling float64
	// Guard is the maximum tolerated accuracy regression of the canary
	// cohort versus the control cohort (absolute, e.g. 0.03 = 3 points).
	Guard float64
	// DriftGuard, when positive, additionally trips rollback when the
	// canary cohort's drift-flag rate exceeds the control cohort's by
	// more than this much (the MSP-side regression signal).
	DriftGuard float64
	// MinSamples is the evidence floor: both cohorts must contribute at
	// least this many observations before any advance/rollback verdict.
	MinSamples int
	// Salt keys the sticky assignment hash; it defaults to Candidate so
	// the fleet partition is reproducible from the plan alone.
	Salt string
}

func (p RolloutPlan) withDefaults() RolloutPlan {
	if p.Baseline == "" {
		p.Baseline = "base"
	}
	if p.Salt == "" {
		p.Salt = p.Candidate
	}
	if p.MinSamples <= 0 {
		p.MinSamples = 1
	}
	return p
}

func (p RolloutPlan) validate() error {
	if p.Candidate == "" {
		return fmt.Errorf("cloud: rollout plan: empty candidate")
	}
	if len(p.Steps) == 0 {
		return fmt.Errorf("cloud: rollout plan: no ramp steps")
	}
	prev := 0.0
	for i, s := range p.Steps {
		if s <= prev || s > 100 {
			return fmt.Errorf("cloud: rollout plan: step %d (%v%%) not ascending in (0,100]", i, s)
		}
		prev = s
	}
	if p.Ceiling < 0 || (p.Ceiling > 0 && p.Ceiling < p.Steps[0]) {
		return fmt.Errorf("cloud: rollout plan: ceiling %v%% below canary step %v%%", p.Ceiling, p.Steps[0])
	}
	if p.Guard < 0 || p.DriftGuard < 0 {
		return fmt.Errorf("cloud: rollout plan: negative guard")
	}
	return nil
}

// CohortStats is one cohort's observed evidence over an evaluation
// window: counts only, so partial aggregations merge exactly.
type CohortStats struct {
	Total, Correct, DriftFlagged int64
}

// Add merges two partial aggregations.
func (s CohortStats) Add(o CohortStats) CohortStats {
	return CohortStats{s.Total + o.Total, s.Correct + o.Correct, s.DriftFlagged + o.DriftFlagged}
}

// Accuracy is Correct/Total (0 when empty).
func (s CohortStats) Accuracy() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Correct) / float64(s.Total)
}

// DriftRate is DriftFlagged/Total (0 when empty).
func (s CohortStats) DriftRate() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.DriftFlagged) / float64(s.Total)
}

// RolloutStatus is the controller's persistable state: restoring it on
// a fresh controller (RestoreRollout) reproduces the exact assignment
// and ramp position, which is what makes assignment sticky across
// service restarts.
type RolloutStatus struct {
	Candidate      string            `json:"candidate"`
	State          RolloutState      `json:"state"`
	Step           int               `json:"step"`
	Percent        float64           `json:"percent"`
	Windows        int               `json:"windows"`
	RollbackWindow int               `json:"rollback_window"`
	Decisions      []RolloutDecision `json:"decisions"`
}

// Rollout is the staged-rollout controller. It is safe for concurrent
// use: Assign is called on the serving path while Observe advances the
// state machine once per evaluation window.
type Rollout struct {
	plan RolloutPlan

	mu             sync.Mutex
	step           int
	state          RolloutState
	windows        int
	rollbackWindow int // 1-based window of the rollback, 0 = none
	decisions      []RolloutDecision
	lastCanary     CohortStats
	lastControl    CohortStats

	m *rolloutMetrics
}

// RolloutOption customizes controller construction.
type RolloutOption func(*Rollout)

// WithRolloutObserver registers the nazar_rollout_* instruments on reg:
// ramp percentage, state code, per-decision counters, rollback counter
// and the last observed cohort accuracies. Serving reg over httpapi
// (WithRegistry) exposes them on GET /metrics.
func WithRolloutObserver(reg *obs.Registry) RolloutOption {
	return func(r *Rollout) {
		if reg != nil {
			r.m = newRolloutMetrics(reg, r)
		}
	}
}

// NewRollout validates the plan and returns a controller positioned at
// the canary step.
func NewRollout(plan RolloutPlan, opts ...RolloutOption) (*Rollout, error) {
	plan = plan.withDefaults()
	if err := plan.validate(); err != nil {
		return nil, err
	}
	r := &Rollout{plan: plan, state: RolloutCanary, rollbackWindow: 0}
	for _, opt := range opts {
		opt(r)
	}
	return r, nil
}

// RestoreRollout rebuilds a controller from a persisted status — the
// restart half of the stickiness contract. The plan must be the one the
// status was produced under (the candidate is cross-checked).
func RestoreRollout(plan RolloutPlan, st RolloutStatus, opts ...RolloutOption) (*Rollout, error) {
	r, err := NewRollout(plan, opts...)
	if err != nil {
		return nil, err
	}
	if st.Candidate != r.plan.Candidate {
		return nil, fmt.Errorf("cloud: rollout restore: status for %q, plan for %q", st.Candidate, r.plan.Candidate)
	}
	if st.Step < 0 || st.Step >= len(r.plan.Steps) {
		return nil, fmt.Errorf("cloud: rollout restore: step %d out of range", st.Step)
	}
	switch st.State {
	case RolloutCanary, RolloutRamping, RolloutComplete, RolloutRolledBack:
	default:
		return nil, fmt.Errorf("cloud: rollout restore: unknown state %q", st.State)
	}
	r.mu.Lock()
	r.step = st.Step
	r.state = st.State
	r.windows = st.Windows
	r.rollbackWindow = st.RollbackWindow
	r.decisions = append([]RolloutDecision(nil), st.Decisions...)
	r.mu.Unlock()
	return r, nil
}

// Plan returns the (defaulted) plan the controller runs.
func (r *Rollout) Plan() RolloutPlan { return r.plan }

// percentLocked is the current ramp percentage (0 after rollback,
// ceiling-clamped otherwise).
func (r *Rollout) percentLocked() float64 {
	if r.state == RolloutRolledBack {
		return 0
	}
	pct := r.plan.Steps[r.step]
	if r.plan.Ceiling > 0 && pct > r.plan.Ceiling {
		pct = r.plan.Ceiling
	}
	return pct
}

// Percent returns the current ramp percentage.
func (r *Rollout) Percent() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.percentLocked()
}

// State returns the lifecycle state.
func (r *Rollout) State() RolloutState {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state
}

// Assign returns the version the device should serve right now:
// Candidate iff the device's sticky fraction falls inside the current
// ramp. Pure in (device ID, salt, current percent) — two controllers at
// the same ramp position agree on every device.
func (r *Rollout) Assign(deviceID string) string {
	if registry.InRamp(deviceID, r.plan.Salt, r.Percent()) {
		return r.plan.Candidate
	}
	return r.plan.Baseline
}

// Observe feeds one evaluation window's cohort evidence to the state
// machine and returns its decision:
//
//   - terminal (complete / rolled back): DecisionNone;
//   - either cohort under MinSamples: DecisionHold;
//   - canary accuracy more than Guard below control, or canary drift
//     rate more than DriftGuard above control: DecisionRollback — the
//     candidate is withdrawn from the whole fleet;
//   - guards pass on the final step or at the ceiling: DecisionComplete;
//   - otherwise: DecisionAdvance to the next ramp step.
func (r *Rollout) Observe(canary, control CohortStats) RolloutDecision {
	r.mu.Lock()
	r.windows++
	r.lastCanary, r.lastControl = canary, control
	d := r.decideLocked(canary, control)
	r.decisions = append(r.decisions, d)
	m := r.m
	r.mu.Unlock()
	if m != nil {
		m.decisions[d].Inc()
		if d == DecisionRollback {
			m.rollbacks.Inc()
		}
	}
	return d
}

func (r *Rollout) decideLocked(canary, control CohortStats) RolloutDecision {
	if r.state == RolloutComplete || r.state == RolloutRolledBack {
		return DecisionNone
	}
	if canary.Total < int64(r.plan.MinSamples) || control.Total < int64(r.plan.MinSamples) {
		return DecisionHold
	}
	if control.Accuracy()-canary.Accuracy() > r.plan.Guard ||
		(r.plan.DriftGuard > 0 && canary.DriftRate()-control.DriftRate() > r.plan.DriftGuard) {
		r.state = RolloutRolledBack
		r.rollbackWindow = r.windows
		return DecisionRollback
	}
	atCeiling := r.plan.Ceiling > 0 && r.plan.Steps[r.step] >= r.plan.Ceiling
	if r.step == len(r.plan.Steps)-1 || atCeiling {
		r.state = RolloutComplete
		return DecisionComplete
	}
	r.step++
	r.state = RolloutRamping
	return DecisionAdvance
}

// Status snapshots the controller for persistence (see RestoreRollout).
func (r *Rollout) Status() RolloutStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	return RolloutStatus{
		Candidate:      r.plan.Candidate,
		State:          r.state,
		Step:           r.step,
		Percent:        r.percentLocked(),
		Windows:        r.windows,
		RollbackWindow: r.rollbackWindow,
		Decisions:      append([]RolloutDecision(nil), r.decisions...),
	}
}

// Decisions returns the evaluation history, one entry per Observe.
func (r *Rollout) Decisions() []RolloutDecision {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]RolloutDecision(nil), r.decisions...)
}

// stateCode maps states to the nazar_rollout_state gauge encoding.
func stateCode(s RolloutState) float64 {
	switch s {
	case RolloutCanary:
		return 0
	case RolloutRamping:
		return 1
	case RolloutComplete:
		return 2
	case RolloutRolledBack:
		return 3
	}
	return -1
}

// rolloutMetrics are the nazar_rollout_* instruments.
type rolloutMetrics struct {
	decisions map[RolloutDecision]*obs.Counter
	rollbacks *obs.Counter
}

func newRolloutMetrics(reg *obs.Registry, r *Rollout) *rolloutMetrics {
	version := obs.L("version", r.plan.Candidate)
	reg.GaugeFunc("nazar_rollout_percent",
		"Current ramp percentage of the staged rollout (0 after rollback).",
		r.Percent, version)
	reg.GaugeFunc("nazar_rollout_state",
		"Rollout state: 0=canary 1=ramping 2=complete 3=rolled-back.",
		func() float64 { return stateCode(r.State()) }, version)
	reg.GaugeFunc("nazar_rollout_canary_accuracy",
		"Canary cohort accuracy at the last guard evaluation.",
		func() float64 {
			r.mu.Lock()
			defer r.mu.Unlock()
			return r.lastCanary.Accuracy()
		}, version)
	reg.GaugeFunc("nazar_rollout_control_accuracy",
		"Control cohort accuracy at the last guard evaluation.",
		func() float64 {
			r.mu.Lock()
			defer r.mu.Unlock()
			return r.lastControl.Accuracy()
		}, version)
	m := &rolloutMetrics{
		decisions: map[RolloutDecision]*obs.Counter{},
		rollbacks: reg.Counter("nazar_rollout_rollbacks_total",
			"Automatic rollbacks triggered by a tripped guard.", version),
	}
	// Pre-register every decision label so the exposition is complete
	// (and stable) from the first scrape.
	sorted := append([]RolloutDecision(nil), rolloutDecisions...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, d := range sorted {
		m.decisions[d] = reg.Counter("nazar_rollout_decisions_total",
			"Guard evaluations by decision.", version, obs.L("decision", string(d)))
	}
	return m
}
