package cloud

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"nazar/internal/driftlog"
	"nazar/internal/nn"
	"nazar/internal/obs"
	"nazar/internal/tensor"
	"nazar/internal/weather"
)

// ingestDriftWorkload streams a fog-drifted workload without needing a
// trained model: fog rows drift, clear rows do not, and every row
// carries an uploaded sample so adaptation has material to work on.
func ingestDriftWorkload(svc *Service, n int) {
	day := weather.Day(10)
	for i := 0; i < n; i++ {
		cond, drift := "clear-day", false
		if i%2 == 0 {
			cond, drift = "fog", true
		}
		entry := driftlog.Entry{
			Time:  day.Add(time.Duration(i) * time.Minute),
			Drift: drift,
			Attrs: map[string]string{
				driftlog.AttrWeather:  cond,
				driftlog.AttrLocation: []string{"Hamburg", "Zurich"}[i%2],
				driftlog.AttrDevice:   "dev",
			},
		}
		svc.Ingest(entry, []float64{float64(i), float64(i % 7), 1, 0, 0, 0, 0, 0.5})
	}
}

// TestRunWindowCancellationMidWindow cancels the context between RCA and
// adaptation (via the alerter hook, which fires exactly there) and
// checks the window aborts with context.Canceled, deploys nothing, and
// leaks no goroutines.
func TestRunWindowCancellationMidWindow(t *testing.T) {
	base := nn.NewClassifier(nn.ArchResNet18, 8, 2, tensor.NewRand(11, 1))
	cfg := DefaultConfig()
	cfg.MinSamplesPerCause = 4
	reg := obs.NewRegistry()
	svc := NewService(base, cfg, WithObserver(reg))
	ingestDriftWorkload(svc, 200)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Alerts are emitted after RCA discovers causes and before the
	// adaptation fan-out launches — a deterministic mid-window hook.
	alerted := false
	svc.SetAlerter(AlertFunc(func(Alert) {
		alerted = true
		cancel()
	}))

	before := runtime.NumGoroutine()
	res, err := svc.RunWindowContext(ctx, weather.Day(10), weather.Day(11), weather.Day(11))
	if !alerted {
		t.Fatal("no cause was diagnosed; the workload should produce a fog cause")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v, want context.Canceled", err)
	}
	if len(res.Versions) != 0 {
		t.Fatalf("cancelled window produced %d versions", len(res.Versions))
	}
	if got := svc.VersionsSince(time.Time{}); len(got) != 0 {
		t.Fatalf("cancelled window deployed %d versions", len(got))
	}

	// Any worker-pool goroutines the aborted fan-out spawned must wind
	// down; settle-loop instead of a fixed sleep.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines %d after cancelled window, started with %d", after, before)
	}

	// The failed cycle must be visible operationally.
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"nazar_window_runs_total 1", "nazar_window_errors_total 1"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("exposition missing %q", want)
		}
	}
}

// TestRunWindowPreCancelled covers the entry gate: an already-cancelled
// context never touches the stores.
func TestRunWindowPreCancelled(t *testing.T) {
	base := nn.NewClassifier(nn.ArchResNet18, 8, 2, tensor.NewRand(12, 1))
	svc := NewService(base, DefaultConfig())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := svc.IngestContext(ctx, driftlog.Entry{Time: time.Now(), Attrs: map[string]string{}}, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("ingest err %v, want context.Canceled", err)
	}
	if svc.Log().Len() != 0 {
		t.Fatal("cancelled ingest must not append")
	}
	if err := svc.IngestBatchContext(ctx, []driftlog.Entry{{Time: time.Now()}}, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("batch err %v, want context.Canceled", err)
	}
}

// TestWithClock pins stage timing to a fake clock: each clock call
// advances one second, so both stage durations must come out exactly 1s.
func TestWithClock(t *testing.T) {
	base := nn.NewClassifier(nn.ArchResNet18, 8, 2, tensor.NewRand(13, 1))
	var ticks int
	clock := func() time.Time {
		ticks++
		return time.Unix(int64(ticks), 0)
	}
	svc := NewService(base, DefaultConfig(), WithClock(clock))
	res, err := svc.RunWindow(time.Time{}, time.Time{}, time.Unix(100, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.RCADuration != time.Second {
		t.Fatalf("RCA duration %v, want 1s from the fake clock", res.RCADuration)
	}
	if res.AdaptDuration != time.Second {
		t.Fatalf("adapt duration %v, want 1s from the fake clock", res.AdaptDuration)
	}
	if ticks == 0 {
		t.Fatal("fake clock was never consulted")
	}
}

// TestWithSampleCap swaps in a bounded store.
func TestWithSampleCap(t *testing.T) {
	base := nn.NewClassifier(nn.ArchResNet18, 8, 2, tensor.NewRand(14, 1))
	svc := NewService(base, DefaultConfig(), WithSampleCap(4))
	for i := 0; i < 100; i++ {
		svc.Ingest(driftlog.Entry{Time: time.Now(), Attrs: map[string]string{}}, []float64{float64(i)})
	}
	if got := svc.Samples().Len(); got != 4 {
		t.Fatalf("retained %d samples, want the cap of 4", got)
	}
	st := svc.Samples().Stats()
	if st.Added != 100 {
		t.Fatalf("added %d, want 100", st.Added)
	}
	if st.Evicted == 0 {
		t.Fatal("eviction counter never moved")
	}
}

// TestObserverCounters checks ingest counters and store gauges flow into
// the exposition.
func TestObserverCounters(t *testing.T) {
	base := nn.NewClassifier(nn.ArchResNet18, 8, 2, tensor.NewRand(15, 1))
	reg := obs.NewRegistry()
	svc := NewService(base, DefaultConfig(), WithObserver(reg))
	if svc.Observer() == nil {
		t.Fatal("Observer() nil after WithObserver")
	}
	svc.Ingest(driftlog.Entry{Time: time.Now(), Attrs: map[string]string{}}, []float64{1, 2, 3})
	if err := svc.IngestBatch([]driftlog.Entry{
		{Time: time.Now(), Attrs: map[string]string{}},
		{Time: time.Now(), Attrs: map[string]string{}},
	}, [][]float64{{4, 5}, nil}); err != nil {
		t.Fatal(err)
	}

	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	for _, want := range []string{
		"nazar_ingest_entries_total 3",
		"nazar_ingest_batches_total 1",
		"nazar_ingest_samples_total 2",
		"nazar_ingest_sample_bytes_total 40",
		"nazar_driftlog_rows 3",
		"nazar_samples_retained 2",
		"nazar_versions_deployed 0",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("exposition missing %q\n%s", want, got)
		}
	}
}
