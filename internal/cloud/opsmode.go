package cloud

import (
	"context"
	"fmt"
	"sync"
	"time"

	"nazar/internal/adapt"
	"nazar/internal/rca"
	"nazar/internal/tensor"
)

// Alert notifies the ML-ops team that drift was detected and diagnosed
// (§3.1: operators can run Nazar out of autopilot, receive alerts, and
// decide manually what to adapt).
type Alert struct {
	Time    time.Time
	Cause   rca.Cause
	Drift   int // drifted rows attributed to the cause in the window
	Total   int // rows matching the cause in the window
	Message string
}

// Alerter receives alerts; implementations might page, post to chat, or
// just record (AlertLog).
type Alerter interface {
	Alert(a Alert)
}

// AlertFunc adapts a function to the Alerter interface.
type AlertFunc func(Alert)

// Alert implements Alerter.
func (f AlertFunc) Alert(a Alert) { f(a) }

// AlertLog is an Alerter that records alerts in memory.
type AlertLog struct {
	mu     sync.Mutex
	alerts []Alert
}

// Alert implements Alerter.
func (l *AlertLog) Alert(a Alert) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.alerts = append(l.alerts, a)
}

// Alerts returns a copy of the recorded alerts.
func (l *AlertLog) Alerts() []Alert {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Alert(nil), l.alerts...)
}

// SetAlerter installs the alert sink (nil disables alerts).
func (s *Service) SetAlerter(a Alerter) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.alerter = a
}

// alertCauses emits one alert per discovered cause.
func (s *Service) alertCauses(causes []rca.Cause, from, to, now time.Time) {
	s.mu.Lock()
	alerter := s.alerter
	s.mu.Unlock()
	if alerter == nil {
		return
	}
	v := s.log.Window(from, to)
	for _, c := range causes {
		cr, err := v.Count(c.Items, nil)
		if err != nil {
			continue
		}
		alerter.Alert(Alert{
			Time:  now,
			Cause: c,
			Drift: cr.Drift,
			Total: cr.Total,
			Message: fmt.Sprintf("drift cause %s: %d/%d entries drifted (risk ratio %.2f)",
				c, cr.Drift, cr.Total, c.Metrics.RiskRatio),
		})
	}
}

// Diagnose runs root-cause analysis only — the manual-mode entry point:
// the ML-ops team inspects the causes (and receives alerts) without any
// adaptation being triggered.
func (s *Service) Diagnose(from, to, now time.Time) ([]rca.Cause, error) {
	return s.DiagnoseContext(context.Background(), from, to, now)
}

// DiagnoseContext is Diagnose with cooperative cancellation (the context
// threads through mining and counterfactual pruning).
func (s *Service) DiagnoseContext(ctx context.Context, from, to, now time.Time) ([]rca.Cause, error) {
	v := s.log.Window(from, to)
	causes, err := rca.AnalyzeContext(ctx, v, rca.Config{Thresholds: s.cfg.Thresholds}, s.cfg.RCAMode)
	if err != nil {
		if ctx.Err() != nil {
			return nil, err
		}
		return nil, fmt.Errorf("cloud: diagnose: %w", err)
	}
	s.alertCauses(causes, from, to, now)
	return causes, nil
}

// AdaptCauses adapts only the operator-selected causes (manual mode's
// second half). Returns the produced versions; the clean model is not
// touched.
func (s *Service) AdaptCauses(causes []rca.Cause, from, to, now time.Time) ([]adapt.BNVersion, error) {
	return s.AdaptCausesContext(context.Background(), causes, from, to, now)
}

// AdaptCausesContext is AdaptCauses with cooperative cancellation: a
// cancelled call aborts in-flight adaptation runs at their next
// optimizer step and deploys nothing.
func (s *Service) AdaptCausesContext(ctx context.Context, causes []rca.Cause, from, to, now time.Time) ([]adapt.BNVersion, error) {
	v := s.log.Window(from, to)
	source := func(c rca.Cause) *tensor.Matrix {
		ids, err := v.SampleIDs(c.Items)
		if err != nil {
			return nil
		}
		return s.samples.Gather(ids)
	}
	versions, err := adapt.ByCauseContext(ctx, s.Base(), causes, source, s.cfg.MinSamplesPerCause, s.cfg.AdaptCfg, now)
	if err != nil {
		if ctx.Err() != nil {
			return nil, err
		}
		return nil, fmt.Errorf("cloud: manual adaptation: %w", err)
	}
	s.mu.Lock()
	s.deployed = append(s.deployed, versions...)
	s.mu.Unlock()
	return versions, nil
}
