package cloud

import (
	"strings"
	"testing"
	"time"

	"nazar/internal/driftlog"
	"nazar/internal/imagesim"
	"nazar/internal/rca"
	"nazar/internal/weather"
)

func TestDiagnoseEmitsAlerts(t *testing.T) {
	world := imagesim.NewWorld(imagesim.DefaultConfig(10, 321))
	base := trainBase(world, 321)
	cfg := DefaultConfig()
	cfg.MinSamplesPerCause = 8
	svc := NewService(base, cfg)
	log := &AlertLog{}
	svc.SetAlerter(log)
	buildWorkload(t, svc, world, base, 300)

	causes, err := svc.Diagnose(weather.Day(10), weather.Day(11), weather.Day(11))
	if err != nil {
		t.Fatal(err)
	}
	if len(causes) == 0 {
		t.Fatal("no causes diagnosed")
	}
	alerts := log.Alerts()
	if len(alerts) != len(causes) {
		t.Fatalf("%d alerts for %d causes", len(alerts), len(causes))
	}
	foundFog := false
	for _, a := range alerts {
		if a.Total == 0 || a.Drift == 0 {
			t.Fatalf("alert without counts: %+v", a)
		}
		if !strings.Contains(a.Message, "drift cause") {
			t.Fatalf("message %q", a.Message)
		}
		if strings.Contains(a.Message, "fog") {
			foundFog = true
		}
	}
	if !foundFog {
		t.Fatal("no fog alert")
	}
	// Diagnose must not adapt anything.
	if got := len(svc.VersionsSince(time.Time{})); got != 0 {
		t.Fatalf("diagnose produced %d versions", got)
	}
}

func TestManualAdaptSelectedCauses(t *testing.T) {
	world := imagesim.NewWorld(imagesim.DefaultConfig(10, 321))
	base := trainBase(world, 321)
	cfg := DefaultConfig()
	cfg.MinSamplesPerCause = 8
	cfg.AdaptCfg.Epochs = 1
	svc := NewService(base, cfg)
	buildWorkload(t, svc, world, base, 300)

	causes, err := svc.Diagnose(weather.Day(10), weather.Day(11), weather.Day(11))
	if err != nil {
		t.Fatal(err)
	}
	// The operator selects only the fog cause.
	var selected []rca.Cause
	for _, c := range causes {
		if c.Matches(map[string]string{driftlog.AttrWeather: "fog"}) {
			selected = append(selected, c)
		}
	}
	if len(selected) == 0 {
		t.Fatalf("no fog cause among %v", causes)
	}
	versions, err := svc.AdaptCauses(selected, weather.Day(10), weather.Day(11), weather.Day(11))
	if err != nil {
		t.Fatal(err)
	}
	if len(versions) != len(selected) {
		t.Fatalf("%d versions for %d selected causes", len(versions), len(selected))
	}
	// The manual versions enter the deployment history.
	if got := len(svc.VersionsSince(time.Time{})); got != len(versions) {
		t.Fatalf("history has %d versions", got)
	}
}

func TestAlertFuncAdapter(t *testing.T) {
	var got []Alert
	f := AlertFunc(func(a Alert) { got = append(got, a) })
	f.Alert(Alert{Message: "x"})
	if len(got) != 1 || got[0].Message != "x" {
		t.Fatal("AlertFunc adapter broken")
	}
}

func TestAutopilotAlertsToo(t *testing.T) {
	world := imagesim.NewWorld(imagesim.DefaultConfig(10, 321))
	base := trainBase(world, 321)
	cfg := DefaultConfig()
	cfg.MinSamplesPerCause = 8
	cfg.AdaptCfg.Epochs = 1
	cfg.AdaptClean = false
	svc := NewService(base, cfg)
	log := &AlertLog{}
	svc.SetAlerter(log)
	buildWorkload(t, svc, world, base, 300)
	if _, err := svc.RunWindow(weather.Day(10), weather.Day(11), weather.Day(11)); err != nil {
		t.Fatal(err)
	}
	if len(log.Alerts()) == 0 {
		t.Fatal("autopilot mode should still alert")
	}
}
