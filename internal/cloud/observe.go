package cloud

import (
	"strconv"
	"time"

	"nazar/internal/fim"
	"nazar/internal/obs"
	"nazar/internal/tensor"
)

// Metrics is the cloud service's instrument set, registered on one
// obs.Registry (GET /metrics exposes it). All write paths are single
// atomic ops; gauge functions are pulled at scrape time so the stores
// never push.
//
// Families (all prefixed nazar_):
//
//	nazar_ingest_entries_total        drift-log entries ingested
//	nazar_ingest_batches_total        batched ingest calls
//	nazar_ingest_samples_total        uploaded input samples stored
//	nazar_ingest_sample_bytes_total   uploaded sample payload bytes
//	nazar_window_runs_total           RunWindow cycles started
//	nazar_window_errors_total         cycles that failed (incl. cancelled)
//	nazar_window_causes_total         root causes diagnosed
//	nazar_window_versions_total{verdict="accepted"|"rejected"}
//	nazar_window_stage_seconds{stage="rca"|"adapt"|"total"}  histograms
//	nazar_window_log_rows             rows scanned per window (histogram)
//	nazar_analysis_cache_total{result="hit"|"delta"|"miss"}
//	                                  window-analysis cache outcomes
//	nazar_driftlog_index_bitmaps      live (attribute,value)+drift bitmaps
//	nazar_driftlog_index_words        64-bit words held by the index
//	nazar_fim_cache_hits              memoized support-count hits
//	nazar_fim_cache_misses            memoized support-count misses
//	nazar_fim_cache_evictions         support-memo LRU evictions
//	nazar_fim_minecache_entries       retained cross-window count entries
//	nazar_sketch_attrs                attributes on the sketch tier
//	nazar_sketch_buckets              live sub-sketch buckets (incl. rest)
//	nazar_sketch_bytes                sketch-tier resident bytes
//	nazar_sketch_evicted              sub-sketch buckets folded into rest
//	nazar_driftlog_rows               current drift-log rows
//	nazar_driftlog_shard_rows{shard=} per-shard occupancy
//	nazar_driftlog_attributes         distinct attribute names
//	nazar_driftlog_compacted_rows     rows removed by retention
//	nazar_driftlog_age_seconds{bound="oldest"|"newest"}
//	nazar_samples_retained            samples currently held
//	nazar_samples_added               samples ever stored
//	nazar_samples_evicted             samples trimmed by the capacity cap
//	nazar_samples_shard_rows{shard=}  per-shard occupancy
//	nazar_versions_deployed           versions produced over the lifetime
//	nazar_pool_parallel_calls         ParallelFor fan-outs
//	nazar_pool_sequential_calls       inline (non-fanned) ParallelFor runs
//	nazar_pool_goroutines_total       worker goroutines ever spawned
//	nazar_pool_active_workers         worker goroutines running now
type Metrics struct {
	registry *obs.Registry

	ingestEntries *obs.Counter
	ingestBatches *obs.Counter
	ingestSamples *obs.Counter
	ingestBytes   *obs.Counter

	windowRuns       *obs.Counter
	windowErrors     *obs.Counter
	causesFound      *obs.Counter
	versionsAccepted *obs.Counter
	versionsRejected *obs.Counter

	analysisCacheHits   *obs.Counter
	analysisCacheDeltas *obs.Counter
	analysisCacheMisses *obs.Counter

	stageRCA   *obs.Histogram
	stageAdapt *obs.Histogram
	stageTotal *obs.Histogram
	logRows    *obs.Histogram
}

// logRowBuckets covers one entry to fleet-scale windows.
var logRowBuckets = []float64{64, 256, 1024, 4096, 16384, 65536, 262144, 1048576}

// NewMetrics registers the cloud instrument set on reg. Registering the
// same set twice on one registry panics (duplicate names) — one service
// per registry.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		registry: reg,

		ingestEntries: reg.Counter("nazar_ingest_entries_total", "Drift-log entries ingested."),
		ingestBatches: reg.Counter("nazar_ingest_batches_total", "Batched ingest calls."),
		ingestSamples: reg.Counter("nazar_ingest_samples_total", "Uploaded input samples stored."),
		ingestBytes:   reg.Counter("nazar_ingest_sample_bytes_total", "Uploaded sample payload bytes."),

		windowRuns:   reg.Counter("nazar_window_runs_total", "Analysis/adaptation cycles started."),
		windowErrors: reg.Counter("nazar_window_errors_total", "Cycles that failed or were cancelled."),
		causesFound:  reg.Counter("nazar_window_causes_total", "Root causes diagnosed."),
		versionsAccepted: reg.Counter("nazar_window_versions_total",
			"Adaptation outcomes per diagnosed cause (accepted = version produced).", obs.L("verdict", "accepted")),
		versionsRejected: reg.Counter("nazar_window_versions_total",
			"Adaptation outcomes per diagnosed cause (accepted = version produced).", obs.L("verdict", "rejected")),

		analysisCacheHits: reg.Counter("nazar_analysis_cache_total",
			"Window-analysis cache outcomes (hit = causes reused, delta = only new rows mined).", obs.L("result", "hit")),
		analysisCacheDeltas: reg.Counter("nazar_analysis_cache_total",
			"Window-analysis cache outcomes (hit = causes reused, delta = only new rows mined).", obs.L("result", "delta")),
		analysisCacheMisses: reg.Counter("nazar_analysis_cache_total",
			"Window-analysis cache outcomes (hit = causes reused, delta = only new rows mined).", obs.L("result", "miss")),

		stageRCA:   reg.Histogram("nazar_window_stage_seconds", "Per-stage window latency.", obs.DefBuckets, obs.L("stage", "rca")),
		stageAdapt: reg.Histogram("nazar_window_stage_seconds", "Per-stage window latency.", obs.DefBuckets, obs.L("stage", "adapt")),
		stageTotal: reg.Histogram("nazar_window_stage_seconds", "Per-stage window latency.", obs.DefBuckets, obs.L("stage", "total")),
		logRows:    reg.Histogram("nazar_window_log_rows", "Drift-log rows scanned per window.", logRowBuckets),
	}
}

// observeWindow records one completed cycle.
func (m *Metrics) observeWindow(res WindowResult, total time.Duration) {
	m.causesFound.Add(uint64(len(res.Causes)))
	accepted := 0
	for _, v := range res.Versions {
		if !v.IsClean() {
			accepted++
		}
	}
	m.versionsAccepted.Add(uint64(accepted))
	if rejected := len(res.Causes) - accepted; rejected > 0 {
		m.versionsRejected.Add(uint64(rejected))
	}
	m.stageRCA.ObserveDuration(res.RCADuration)
	m.stageAdapt.ObserveDuration(res.AdaptDuration)
	m.stageTotal.ObserveDuration(total)
	m.logRows.Observe(float64(res.LogRows))
}

// observeStores registers scrape-time gauges over the service's stores
// and the shared worker pool. Called once from NewService.
func (m *Metrics) observeStores(s *Service) {
	reg := m.registry
	log, samples := s.log, s.samples
	reg.GaugeFunc("nazar_driftlog_rows", "Current drift-log rows.",
		func() float64 { return float64(log.Len()) })
	reg.GaugeFunc("nazar_driftlog_attributes", "Distinct attribute names seen.",
		func() float64 { return float64(log.Stats().Attributes) })
	reg.GaugeFunc("nazar_driftlog_compacted_rows", "Rows removed by retention compaction.",
		func() float64 { return float64(log.Stats().CompactedRows) })
	reg.GaugeFunc("nazar_driftlog_age_seconds", "Age of the oldest retained row.",
		func() float64 { return rowAge(log.Stats().OldestTime, s.clock) }, obs.L("bound", "oldest"))
	reg.GaugeFunc("nazar_driftlog_age_seconds", "Age of the newest retained row.",
		func() float64 { return rowAge(log.Stats().NewestTime, s.clock) }, obs.L("bound", "newest"))
	reg.GaugeFunc("nazar_driftlog_index_bitmaps", "Live (attribute,value) and drift bitmaps in the bitset index.",
		func() float64 { return float64(log.Stats().IndexBitmaps) })
	reg.GaugeFunc("nazar_driftlog_index_words", "64-bit words held by the bitset index.",
		func() float64 { return float64(log.Stats().IndexWords) })

	reg.GaugeFunc("nazar_fim_cache_hits", "Memoized support-count hits (process-wide).",
		func() float64 { return float64(fim.ReadSupportCacheStats().Hits) })
	reg.GaugeFunc("nazar_fim_cache_misses", "Memoized support-count misses (process-wide).",
		func() float64 { return float64(fim.ReadSupportCacheStats().Misses) })
	reg.GaugeFunc("nazar_fim_cache_evictions", "Support-memo LRU evictions (process-wide).",
		func() float64 { return float64(fim.ReadSupportCacheStats().Evictions) })
	reg.GaugeFunc("nazar_fim_minecache_entries", "Count entries retained by the cross-window mining cache.",
		func() float64 {
			s.acMu.Lock()
			defer s.acMu.Unlock()
			return float64(s.acache.mine.Size())
		})

	reg.GaugeFunc("nazar_sketch_attrs", "Attributes answered by the approximate sketch tier.",
		func() float64 { return float64(log.Stats().SketchAttrs) })
	reg.GaugeFunc("nazar_sketch_buckets", "Live sub-sketch buckets across all sketch rings.",
		func() float64 { return float64(log.Stats().SketchBuckets) })
	reg.GaugeFunc("nazar_sketch_bytes", "Resident bytes held by the sketch tier.",
		func() float64 { return float64(log.Stats().SketchBytes) })
	reg.GaugeFunc("nazar_sketch_evicted", "Sub-sketch buckets folded into the rest bucket.",
		func() float64 { return float64(log.Stats().SketchEvicted) })

	reg.GaugeFunc("nazar_samples_retained", "Samples currently held.",
		func() float64 { return float64(samples.Stats().Retained) })
	reg.GaugeFunc("nazar_samples_added", "Samples ever stored.",
		func() float64 { return float64(samples.Stats().Added) })
	reg.GaugeFunc("nazar_samples_evicted", "Samples trimmed by the capacity cap.",
		func() float64 { return float64(samples.Stats().Evicted) })
	reg.GaugeFunc("nazar_versions_deployed", "BN versions produced over the service lifetime.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.deployed))
		})

	for shard := range log.Stats().ShardRows {
		shard := shard
		reg.GaugeFunc("nazar_driftlog_shard_rows", "Per-shard drift-log occupancy.",
			func() float64 { return float64(log.Stats().ShardRows[shard]) },
			obs.L("shard", strconv.Itoa(shard)))
	}
	for shard := range samples.Stats().ShardRows {
		shard := shard
		reg.GaugeFunc("nazar_samples_shard_rows", "Per-shard sample-store occupancy.",
			func() float64 { return float64(samples.Stats().ShardRows[shard]) },
			obs.L("shard", strconv.Itoa(shard)))
	}

	reg.GaugeFunc("nazar_pool_parallel_calls", "ParallelFor invocations that fanned out.",
		func() float64 { return float64(tensor.ReadPoolStats().ParallelCalls) })
	reg.GaugeFunc("nazar_pool_sequential_calls", "ParallelFor invocations run inline.",
		func() float64 { return float64(tensor.ReadPoolStats().SequentialCalls) })
	reg.GaugeFunc("nazar_pool_goroutines_total", "Worker goroutines ever spawned.",
		func() float64 { return float64(tensor.ReadPoolStats().Goroutines) })
	reg.GaugeFunc("nazar_pool_active_workers", "Worker goroutines running now.",
		func() float64 { return float64(tensor.ReadPoolStats().Active) })

	reg.GaugeFunc("nazar_workspace_gets", "Scratch matrices handed out by the workspace arena.",
		func() float64 { return float64(tensor.ReadWorkspaceStats().Gets) })
	reg.GaugeFunc("nazar_workspace_hits", "Workspace gets satisfied by a recycled matrix.",
		func() float64 { return float64(tensor.ReadWorkspaceStats().Hits) })
	reg.GaugeFunc("nazar_workspace_puts", "Scratch matrices returned to the workspace arena.",
		func() float64 { return float64(tensor.ReadWorkspaceStats().Puts) })
	reg.GaugeFunc("nazar_workspace_discards", "Returned matrices dropped for off-class capacity.",
		func() float64 { return float64(tensor.ReadWorkspaceStats().Discards) })
}

// rowAge converts a row timestamp into an age (0 when the store is
// empty).
func rowAge(t time.Time, clock func() time.Time) float64 {
	if t.IsZero() {
		return 0
	}
	return clock().UTC().Sub(t).Seconds()
}
