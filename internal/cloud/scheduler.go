package cloud

import (
	"context"
	"log"
	"sync"
	"time"
)

// Scheduler runs the analysis/adaptation cycle periodically, the way the
// paper triggers its Lambda function "automatically based on a
// configurable time window". Each tick analyzes the window since the
// previous successful run.
type Scheduler struct {
	svc      *Service
	interval time.Duration
	// OnResult, if set, receives every cycle's outcome (deploy fan-out,
	// logging).
	OnResult func(WindowResult)
	// OnError, if set, receives cycle failures; by default they are
	// logged.
	OnError func(error)
	// Clock allows tests to substitute time; defaults to time.Now.
	Clock func() time.Time

	mu      sync.Mutex
	lastRun time.Time
	runs    int
	cancel  context.CancelFunc
	done    chan struct{}

	// runMu serializes whole cycles: with ingestion now concurrent, a
	// manual RunOnce racing a scheduled tick must not interleave two
	// RunWindow calls over overlapping windows.
	runMu sync.Mutex
}

// NewScheduler builds a scheduler over the service. interval must be
// positive.
func NewScheduler(svc *Service, interval time.Duration) *Scheduler {
	if interval <= 0 {
		interval = time.Hour
	}
	return &Scheduler{svc: svc, interval: interval, Clock: time.Now}
}

// RunOnce executes one cycle covering (lastRun, now]; exported so tests
// and manual triggers share the scheduler's bookkeeping.
func (s *Scheduler) RunOnce() (WindowResult, error) {
	s.runMu.Lock()
	defer s.runMu.Unlock()
	s.mu.Lock()
	from := s.lastRun
	s.mu.Unlock()
	now := s.Clock().UTC()
	res, err := s.svc.RunWindow(from, now, now)
	if err != nil {
		return res, err
	}
	s.mu.Lock()
	s.lastRun = now
	s.runs++
	s.mu.Unlock()
	return res, nil
}

// Runs returns how many successful cycles have completed.
func (s *Scheduler) Runs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.runs
}

// Start launches the periodic loop; call Stop to end it. Start is a
// no-op if already running.
func (s *Scheduler) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cancel != nil {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.cancel = cancel
	s.done = make(chan struct{})
	go func() {
		defer close(s.done)
		ticker := time.NewTicker(s.interval)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				res, err := s.RunOnce()
				switch {
				case err != nil && s.OnError != nil:
					s.OnError(err)
				case err != nil:
					log.Printf("cloud: scheduled analysis: %v", err)
				case s.OnResult != nil:
					s.OnResult(res)
				}
			}
		}
	}()
}

// Stop ends the periodic loop and waits for it to exit. Safe to call
// multiple times.
func (s *Scheduler) Stop() {
	s.mu.Lock()
	cancel, done := s.cancel, s.done
	s.cancel, s.done = nil, nil
	s.mu.Unlock()
	if cancel != nil {
		cancel()
		<-done
	}
}
