package cloud

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"nazar/internal/driftlog"
	"nazar/internal/nn"
	"nazar/internal/obs"
	"nazar/internal/tensor"
	"nazar/internal/weather"
)

func walTestService(t *testing.T, dir string, opts ...Option) *Service {
	t.Helper()
	base := nn.NewClassifier(nn.ArchResNet18, 8, 4, tensor.NewRand(1, 1))
	opts = append([]Option{WithWAL(dir, driftlog.WALOptions{})}, opts...)
	svc := NewService(base, DefaultConfig(), opts...)
	if err := svc.WALErr(); err != nil {
		t.Fatalf("wal open: %v", err)
	}
	return svc
}

// TestServiceWALRestart proves the restart contract end to end: a
// service reopened on the same WAL directory resumes with every
// acknowledged row, its analysis caches start cold, and the reopened
// service's window results are identical to the original's.
func TestServiceWALRestart(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	day := weather.Day(10)
	to := day.Add(400 * time.Minute)

	reg1 := obs.NewRegistry()
	svc := walTestService(t, dir, WithObserver(reg1))
	cacheWorkload(svc, day, 0, 300)
	res1, err := svc.RunWindow(day, to, to)
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.Causes) == 0 {
		t.Fatal("workload produced no causes")
	}
	rows := svc.Log().Len()
	if err := svc.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// The service is discarded here; only the WAL directory survives.

	reg2 := obs.NewRegistry()
	svc2 := walTestService(t, dir, WithObserver(reg2))
	defer svc2.Close()
	if got := svc2.Log().Len(); got != rows {
		t.Fatalf("replayed rows: want %d got %d", rows, got)
	}
	if rec := svc2.WAL().Recovery(); rec.TornTail {
		t.Fatalf("clean shutdown replayed as torn: %+v", rec)
	}

	// Caches are cold: the first window on the reopened service is an
	// analysis-cache miss, not a hit — there is no carried-over state.
	res2, err := svc2.RunWindow(day, to, to)
	if err != nil {
		t.Fatal(err)
	}
	if misses := expositionValue(t, reg2, `nazar_analysis_cache_total{result="miss"}`); misses != 1 {
		t.Fatalf("reopened service first window: miss=%v, want 1 (cold cache)", misses)
	}
	if hits := expositionValue(t, reg2, `nazar_analysis_cache_total{result="hit"}`); hits != 0 {
		t.Fatalf("reopened service first window hit a cache that should not exist: hit=%v", hits)
	}
	// ... but cold caches must not change answers: byte-identical causes.
	if !reflect.DeepEqual(res1.Causes, res2.Causes) {
		t.Fatalf("window results diverge across restart:\n%v\n%v", res1.Causes, res2.Causes)
	}
	if res1.LogRows != res2.LogRows {
		t.Fatalf("window rows diverge across restart: %d vs %d", res1.LogRows, res2.LogRows)
	}

	// The cache works after replay: an unchanged window now hits.
	if _, err := svc2.RunWindow(day, to, to); err != nil {
		t.Fatal(err)
	}
	if hits := expositionValue(t, reg2, `nazar_analysis_cache_total{result="hit"}`); hits != 1 {
		t.Fatalf("post-replay cache never warmed: hit=%v", hits)
	}
	// ... and the delta path too: grow the window with post-restart rows.
	cacheWorkload(svc2, day, 400, 200)
	to2 := day.Add(700 * time.Minute)
	if _, err := svc2.RunWindow(day, to2, to2); err != nil {
		t.Fatal(err)
	}
	if deltas := expositionValue(t, reg2, `nazar_analysis_cache_total{result="delta"}`); deltas != 1 {
		t.Fatalf("post-replay grown window not a delta: %v", deltas)
	}
}

// TestServiceWALIngestRefusedAfterSever: once the WAL is severed (the
// chaos harness's kill), ingest must refuse with ErrDurability — an
// unacknowledged batch, not a silent in-memory-only write.
func TestServiceWALIngestRefusedAfterSever(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	svc := walTestService(t, dir)
	day := weather.Day(10)
	cacheWorkload(svc, day, 0, 10)
	before := svc.Log().Len()
	svc.WAL().Sever()
	err := svc.IngestBatch([]driftlog.Entry{{
		Time:  day,
		Attrs: map[string]string{driftlog.AttrWeather: "fog"},
	}}, nil)
	if !errors.Is(err, ErrDurability) {
		t.Fatalf("ingest after sever: want ErrDurability, got %v", err)
	}
	if svc.Log().Len() != before {
		t.Fatalf("refused batch still landed in memory: %d -> %d rows", before, svc.Log().Len())
	}
}

// TestServiceWALOpenFailure: an unopenable WAL defers to WALErr and the
// service refuses ingest rather than running volatile.
func TestServiceWALOpenFailure(t *testing.T) {
	dir := t.TempDir()
	// A corrupt segment: plausible length/CRC damage in a sealed file.
	seg := filepath.Join(dir, "wal-0000000000000001.seg")
	writeFileOrFatal(t, seg, []byte("NZWAL001garbage-that-is-not-a-frame"))
	seg2 := filepath.Join(dir, "wal-0000000000000002.seg")
	writeFileOrFatal(t, seg2, []byte("NZWAL001"))

	base := nn.NewClassifier(nn.ArchResNet18, 8, 4, tensor.NewRand(1, 1))
	svc := NewService(base, DefaultConfig(), WithWAL(dir, driftlog.WALOptions{}))
	if svc.WALErr() == nil {
		t.Fatal("corrupt WAL directory opened without error")
	}
	var ce *driftlog.CorruptError
	if !errors.As(svc.WALErr(), &ce) {
		t.Fatalf("WALErr not a *CorruptError: %v", svc.WALErr())
	}
	if err := svc.IngestBatch([]driftlog.Entry{{Time: weather.Day(0), Attrs: map[string]string{"a": "b"}}}, nil); !errors.Is(err, ErrDurability) {
		t.Fatalf("ingest with failed WAL: want ErrDurability, got %v", err)
	}
	if svc.Log().Len() != 0 {
		t.Fatalf("refused ingest landed in memory: %d rows", svc.Log().Len())
	}
}

func writeFileOrFatal(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}
