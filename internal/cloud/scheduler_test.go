package cloud

import (
	"sync"
	"testing"
	"time"

	"nazar/internal/driftlog"
	"nazar/internal/imagesim"
	"nazar/internal/nn"
	"nazar/internal/tensor"
	"nazar/internal/weather"
)

func newSchedulerService(t *testing.T) (*Service, *imagesim.World, *nn.Network) {
	t.Helper()
	world := imagesim.NewWorld(imagesim.DefaultConfig(10, 321))
	base := trainBase(world, 321)
	cfg := DefaultConfig()
	cfg.MinSamplesPerCause = 8
	cfg.AdaptCfg.Epochs = 1
	cfg.AdaptCfg.MinSteps = 5
	return NewService(base, cfg), world, base
}

func TestSchedulerRunOnceAdvancesWindow(t *testing.T) {
	svc, world, base := newSchedulerService(t)
	buildWorkload(t, svc, world, base, 300)
	s := NewScheduler(svc, time.Hour)
	// Clock after the workload's timestamps so the window covers it.
	s.Clock = func() time.Time { return weather.Day(11) }

	res, err := s.RunOnce()
	if err != nil {
		t.Fatal(err)
	}
	if res.LogRows != 300 {
		t.Fatalf("first cycle scanned %d rows", res.LogRows)
	}
	if s.Runs() != 1 {
		t.Fatalf("runs %d", s.Runs())
	}

	// Second cycle covers only the (empty) interval since the first.
	s.Clock = func() time.Time { return weather.Day(12) }
	res, err = s.RunOnce()
	if err != nil {
		t.Fatal(err)
	}
	if res.LogRows != 0 {
		t.Fatalf("second cycle re-scanned %d rows", res.LogRows)
	}
}

func TestSchedulerStartStop(t *testing.T) {
	svc, world, base := newSchedulerService(t)
	buildWorkload(t, svc, world, base, 200)
	s := NewScheduler(svc, 5*time.Millisecond)
	s.Clock = func() time.Time { return weather.Day(11) }

	var mu sync.Mutex
	results := 0
	s.OnResult = func(WindowResult) {
		mu.Lock()
		results++
		mu.Unlock()
	}
	s.Start()
	s.Start() // idempotent
	deadline := time.Now().Add(3 * time.Second)
	for {
		mu.Lock()
		n := results
		mu.Unlock()
		if n >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("scheduler never fired")
		}
		time.Sleep(5 * time.Millisecond)
	}
	s.Stop()
	s.Stop() // idempotent
	if s.Runs() < 2 {
		t.Fatalf("runs %d", s.Runs())
	}
}

func TestSchedulerReportsErrors(t *testing.T) {
	world := imagesim.NewWorld(imagesim.DefaultConfig(4, 7))
	base := nn.NewClassifier(nn.ArchResNet18, world.Dim(), 4, tensor.NewRand(7, 1))
	svc := NewService(base, DefaultConfig())
	// A sample ID pointing at a vector of the wrong width triggers an
	// adaptation error downstream; simpler: break via an entry with a
	// sample of mismatched dimension so Gather builds a ragged matrix.
	svc.Ingest(driftlog.Entry{
		Time: weather.Day(1), Drift: true,
		Attrs: map[string]string{driftlog.AttrWeather: "fog"},
	}, make([]float64, world.Dim()))
	s := NewScheduler(svc, time.Hour)
	s.Clock = func() time.Time { return weather.Day(2) }
	// With one drifted row out of one, FIM finds {fog} but adaptation is
	// skipped for lack of samples — no error expected; just assert the
	// cycle completes and callbacks wire up.
	errs := 0
	s.OnError = func(error) { errs++ }
	if _, err := s.RunOnce(); err != nil {
		t.Fatal(err)
	}
	if errs != 0 {
		t.Fatalf("unexpected errors: %d", errs)
	}
}
