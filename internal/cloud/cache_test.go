package cloud

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"nazar/internal/driftlog"
	"nazar/internal/nn"
	"nazar/internal/obs"
	"nazar/internal/tensor"
	"nazar/internal/weather"
)

// cacheWorkload ingests a fog-drifted stream (no sample payloads, so
// windows analyze without adapting).
func cacheWorkload(svc *Service, day time.Time, offset, n int) {
	for i := offset; i < offset+n; i++ {
		cond := "clear-day"
		drift := i%11 == 0
		if i%2 == 0 {
			cond = "fog"
			drift = i%3 != 0
		}
		svc.Ingest(driftlog.Entry{
			Time:  day.Add(time.Duration(i) * time.Minute),
			Drift: drift,
			Attrs: map[string]string{
				driftlog.AttrWeather:  cond,
				driftlog.AttrLocation: []string{"Hamburg", "Zurich", "Bremen"}[i%3],
			},
		}, nil)
	}
}

// expositionValue extracts one sample's value from the Prometheus text
// exposition.
func expositionValue(t *testing.T, reg *obs.Registry, needle string) float64 {
	t.Helper()
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, needle+" ") {
			var v float64
			if _, err := fmt.Sscanf(line[len(needle)+1:], "%g", &v); err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("sample %q not in exposition:\n%s", needle, buf.String())
	return 0
}

// TestAnalysisCache drives the window-analysis cache through its three
// outcomes — miss, hit, delta — and requires each result to be
// identical to an uncached fresh analysis of the same window.
func TestAnalysisCache(t *testing.T) {
	base := nn.NewClassifier(nn.ArchResNet18, 8, 4, tensor.NewRand(1, 1))
	reg := obs.NewRegistry()
	svc := NewService(base, DefaultConfig(), WithObserver(reg))
	day := weather.Day(10)
	cacheWorkload(svc, day, 0, 300)

	hits := func() float64 { return expositionValue(t, reg, `nazar_analysis_cache_total{result="hit"}`) }
	deltas := func() float64 { return expositionValue(t, reg, `nazar_analysis_cache_total{result="delta"}`) }
	misses := func() float64 { return expositionValue(t, reg, `nazar_analysis_cache_total{result="miss"}`) }

	// First run: a miss that populates the cache.
	res1, err := svc.RunWindow(day, day.Add(400*time.Minute), day.Add(400*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if misses() != 1 || hits() != 0 || deltas() != 0 {
		t.Fatalf("after first run: miss=%v hit=%v delta=%v", misses(), hits(), deltas())
	}
	if len(res1.Causes) == 0 {
		t.Fatal("workload produced no causes")
	}

	// Unchanged window: a hit that replays the causes without mining.
	res2, err := svc.RunWindow(day, day.Add(400*time.Minute), day.Add(400*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if hits() != 1 {
		t.Fatalf("after rerun: hit=%v", hits())
	}
	if !reflect.DeepEqual(res1.Causes, res2.Causes) {
		t.Fatalf("cache hit changed causes:\n%v\n%v", res1.Causes, res2.Causes)
	}

	// Grown window: new rows plus a later upper bound take the delta
	// path; the causes must equal a fresh uncached analysis.
	cacheWorkload(svc, day, 400, 200)
	to2 := day.Add(700 * time.Minute)
	res3, err := svc.RunWindow(day, to2, to2)
	if err != nil {
		t.Fatal(err)
	}
	if deltas() != 1 {
		t.Fatalf("after grown window: delta=%v (miss=%v hit=%v)", deltas(), misses(), hits())
	}
	fresh := NewService(nn.NewClassifier(nn.ArchResNet18, 8, 4, tensor.NewRand(1, 1)), DefaultConfig())
	cacheWorkload(fresh, day, 0, 300)
	cacheWorkload(fresh, day, 400, 200)
	resFresh, err := fresh.RunWindow(day, to2, to2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res3.Causes, resFresh.Causes) {
		t.Fatalf("delta analysis diverges from fresh:\n%v\n%v", res3.Causes, resFresh.Causes)
	}

	// A different lower bound cannot reuse the cache.
	if _, err := svc.RunWindow(day.Add(10*time.Minute), to2, to2); err != nil {
		t.Fatal(err)
	}
	if misses() != 2 {
		t.Fatalf("after shifted window: miss=%v", misses())
	}
}

// TestAnalysisCacheCompactionInvalidates: retention compaction renumbers
// rows, so a post-compaction window must re-analyze from scratch even
// with identical bounds.
func TestAnalysisCacheCompactionInvalidates(t *testing.T) {
	base := nn.NewClassifier(nn.ArchResNet18, 8, 4, tensor.NewRand(1, 1))
	reg := obs.NewRegistry()
	cfg := DefaultConfig()
	svc := NewService(base, cfg, WithObserver(reg))
	day := weather.Day(10)
	cacheWorkload(svc, day, 0, 300)

	to := day.Add(400 * time.Minute)
	if _, err := svc.RunWindow(day, to, to); err != nil {
		t.Fatal(err)
	}
	// Compact away the first half of the rows; the same window must now
	// miss (the cached watermarks are void) yet still analyze correctly.
	svc.Log().Compact(day.Add(150 * time.Minute))
	res2, err := svc.RunWindow(day, to, to)
	if err != nil {
		t.Fatal(err)
	}
	if got := expositionValue(t, reg, `nazar_analysis_cache_total{result="hit"}`); got != 0 {
		t.Fatalf("post-compaction run hit the cache (hit=%v)", got)
	}
	if got := expositionValue(t, reg, `nazar_analysis_cache_total{result="miss"}`); got != 2 {
		t.Fatalf("post-compaction run not a miss (miss=%v)", got)
	}
	if len(res2.Causes) == 0 {
		t.Fatal("post-compaction analysis found no causes")
	}
}
