package device

import "nazar/internal/obs"

// mspBuckets spans the MSP confidence range; the 0.9 edge matches the
// default drift threshold, so drifted inferences land in the lower
// cumulative buckets.
var mspBuckets = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99}

// Metrics is the device-fleet instrument set. One set serves any number
// of devices (fleet simulators share it): all writes are atomic.
//
//	nazar_device_inferences_total                 predictions served
//	nazar_device_drift_total{verdict="drift"|"clean"}  detector verdicts
//	nazar_device_sampled_total                    inputs uploaded
//	nazar_device_adapted_total                    inferences served by an adapted version
//	nazar_device_msp                              MSP confidence distribution (histogram)
//	nazar_quant_inferences_total                  predictions served on the int8 fast path
//	nazar_quant_saturations_total                 requantization clamps to ±127 (calibration-coverage alarm)
//	nazar_quant_shadow_total{verdict="agree"|"disagree"}  float-shadow drift-verdict comparisons
type Metrics struct {
	inferences *obs.Counter
	drifted    *obs.Counter
	clean      *obs.Counter
	sampled    *obs.Counter
	adapted    *obs.Counter
	msp        *obs.Histogram

	quantInferences *obs.Counter
	quantSat        *obs.Counter
	shadowAgree     *obs.Counter
	shadowDisagree  *obs.Counter
}

// NewMetrics registers the device instrument set on reg (panics when the
// family names are already taken — register one set per registry and
// share it across devices).
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		inferences: reg.Counter("nazar_device_inferences_total", "On-device predictions served."),
		drifted: reg.Counter("nazar_device_drift_total",
			"Drift-detector verdicts.", obs.L("verdict", "drift")),
		clean: reg.Counter("nazar_device_drift_total",
			"Drift-detector verdicts.", obs.L("verdict", "clean")),
		sampled: reg.Counter("nazar_device_sampled_total", "Inputs uploaded for adaptation."),
		adapted: reg.Counter("nazar_device_adapted_total",
			"Inferences served by an adapted (non-clean) version."),
		msp: reg.Histogram("nazar_device_msp",
			"Maximum-softmax-probability distribution.", mspBuckets),
		quantInferences: reg.Counter("nazar_quant_inferences_total",
			"Predictions served by the int8 fast path."),
		quantSat: reg.Counter("nazar_quant_saturations_total",
			"Requantization saturations (activation codes clamped to ±127)."),
		shadowAgree: reg.Counter("nazar_quant_shadow_total",
			"Float-shadow drift-verdict comparisons.", obs.L("verdict", "agree")),
		shadowDisagree: reg.Counter("nazar_quant_shadow_total",
			"Float-shadow drift-verdict comparisons.", obs.L("verdict", "disagree")),
	}
}

// observe records one inference (nil receiver = uninstrumented device).
func (m *Metrics) observe(inf Inference) {
	if m == nil {
		return
	}
	m.inferences.Inc()
	if inf.Drift {
		m.drifted.Inc()
	} else {
		m.clean.Inc()
	}
	if inf.Sampled {
		m.sampled.Inc()
	}
	if inf.VersionID != "" {
		m.adapted.Inc()
	}
	m.msp.Observe(inf.MSP)
	if inf.Quantized {
		m.quantInferences.Inc()
		m.quantSat.Add(uint64(inf.QuantSat))
	}
	if inf.ShadowChecked {
		if inf.ShadowDisagree {
			m.shadowDisagree.Inc()
		} else {
			m.shadowAgree.Inc()
		}
	}
}
