package device

import (
	"strings"
	"testing"
	"time"

	"nazar/internal/nn"
	"nazar/internal/obs"
	"nazar/internal/tensor"
)

// TestDeviceMetrics runs inferences through an instrumented device and
// checks the fleet counters and MSP histogram move.
func TestDeviceMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	base := nn.NewClassifier(nn.ArchResNet18, 8, 4, tensor.NewRand(60, 1))
	d := New(Config{
		ID: "dev0", Location: "Hamburg",
		SampleRate: 1.0,
		Metrics:    m,
		Rng:        tensor.NewRand(61, 1),
	}, base)

	for i := 0; i < 5; i++ {
		d.Infer(time.Now(), []float64{1, 0, 0, 1, 0, 0, 1, 0}, nil)
	}

	if got := m.inferences.Value(); got != 5 {
		t.Fatalf("inference counter %d, want 5", got)
	}
	if got := m.sampled.Value(); got != 5 {
		t.Fatalf("sampled counter %d, want 5 at rate 1.0", got)
	}
	if got := m.drifted.Value() + m.clean.Value(); got != 5 {
		t.Fatalf("verdict counters sum to %d, want 5", got)
	}
	if got := m.msp.Count(); got != 5 {
		t.Fatalf("MSP observations %d, want 5", got)
	}

	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"nazar_device_inferences_total 5",
		`nazar_device_drift_total{verdict="clean"}`,
		"nazar_device_msp_bucket",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("exposition missing %q", want)
		}
	}
}

// TestNilMetricsSafe proves the uninstrumented path is a no-op.
func TestNilMetricsSafe(t *testing.T) {
	var m *Metrics
	m.observe(Inference{Drift: true, Sampled: true, VersionID: "v"})
}
