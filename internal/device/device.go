// Package device simulates the on-device half of Nazar: per-input model
// version selection from the local pool, inference, lightweight MSP drift
// detection, drift-log entry emission with device metadata, and sampled
// input upload.
//
// A Device is what the paper's SDK embeds in a mobile app; the fleet
// simulator drives many of them against the streaming workloads.
package device

import (
	"math/rand/v2"
	"time"

	"nazar/internal/detect"
	"nazar/internal/driftlog"
	"nazar/internal/nn"
	"nazar/internal/registry"
	"nazar/internal/tensor"
)

// Config parameterizes one device.
type Config struct {
	ID       string
	Location string
	// PoolCapacity caps the number of adapted BN versions kept locally
	// (0 = unlimited).
	PoolCapacity int
	// SampleRate is the fraction of inputs uploaded to the cloud for
	// adaptation.
	SampleRate float64
	// Detector is the on-device drift detector (defaults to the MSP
	// threshold at 0.9).
	Detector detect.Detector
	// TraceCapacity sizes the inference trace ring buffer (default
	// 128).
	TraceCapacity int
	// Metrics, when non-nil, receives every inference (share one set
	// across a fleet; see NewMetrics).
	Metrics *Metrics
	Rng     *rand.Rand
}

// Device is one simulated mobile device.
type Device struct {
	ID       string
	Location string
	Pool     *registry.Pool
	// Trace records recent inferences for support debugging.
	Trace    *Trace
	detector detect.Detector
	rate     float64
	metrics  *Metrics
	rng      *rand.Rand
}

// New creates a device around a base model. The base network may be
// shared read-only across devices; installs clone it before mutating.
func New(cfg Config, base *nn.Network) *Device {
	if cfg.Detector == nil {
		cfg.Detector = detect.NewMSPThreshold()
	}
	if cfg.Rng == nil {
		cfg.Rng = tensor.NewRand(0xDEF1CE, 1)
	}
	return &Device{
		ID:       cfg.ID,
		Location: cfg.Location,
		Pool:     registry.NewPool(base, cfg.PoolCapacity),
		Trace:    NewTrace(cfg.TraceCapacity),
		detector: cfg.Detector,
		rate:     cfg.SampleRate,
		metrics:  cfg.Metrics,
		rng:      cfg.Rng,
	}
}

// Inference is the outcome of one on-device prediction.
type Inference struct {
	Predicted int
	MSP       float64
	Drift     bool
	// VersionID is the adapted version used ("" = clean model).
	VersionID string
	// Sampled reports whether the input was uploaded.
	Sampled bool
}

// Infer selects a model version for the input's metadata, runs inference
// and the drift detector, and returns both the inference and the
// drift-log entry to report (sample is nil when not uploaded).
func (d *Device) Infer(t time.Time, x []float64, attrs map[string]string) (Inference, driftlog.Entry, []float64) {
	merged := map[string]string{
		driftlog.AttrDevice:   d.ID,
		driftlog.AttrLocation: d.Location,
	}
	for k, v := range attrs {
		merged[k] = v
	}
	net, versionID := d.Pool.Select(merged)
	logits := net.LogitsOne(x)
	pred, _ := tensor.ArgMax(logits)
	msp := detect.MSP{}.Score(logits)
	drift := d.detector.Detect(logits)

	inf := Inference{Predicted: pred, MSP: msp, Drift: drift, VersionID: versionID}
	d.Trace.Record(TraceRecord{Time: t, Predicted: pred, MSP: msp, Drift: drift, VersionID: versionID})
	var sample []float64
	if d.rate > 0 && d.rng.Float64() < d.rate {
		inf.Sampled = true
		sample = append([]float64(nil), x...)
	}
	d.metrics.observe(inf)
	merged[driftlog.AttrModel] = modelAttr(versionID)
	entry := driftlog.Entry{
		Time:     t,
		Attrs:    merged,
		Drift:    drift,
		SampleID: -1, // assigned by the cloud on ingest when sample != nil
	}
	return inf, entry, sample
}

// modelAttr normalizes the version ID for the drift log's model column.
func modelAttr(versionID string) string {
	if versionID == "" {
		return "clean"
	}
	return versionID
}
