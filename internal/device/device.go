// Package device simulates the on-device half of Nazar: per-input model
// version selection from the local pool, inference, lightweight MSP drift
// detection, drift-log entry emission with device metadata, and sampled
// input upload.
//
// A Device is what the paper's SDK embeds in a mobile app; the fleet
// simulator drives many of them against the streaming workloads.
package device

import (
	"fmt"
	"math/rand/v2"
	"time"

	"nazar/internal/detect"
	"nazar/internal/driftlog"
	"nazar/internal/nn"
	"nazar/internal/registry"
	"nazar/internal/tensor"
)

// Config parameterizes one device.
type Config struct {
	ID       string
	Location string
	// PoolCapacity caps the number of adapted BN versions kept locally
	// (0 = unlimited).
	PoolCapacity int
	// SampleRate is the fraction of inputs uploaded to the cloud for
	// adaptation.
	SampleRate float64
	// Detector is the on-device drift detector (defaults to the MSP
	// threshold at 0.9).
	Detector detect.Detector
	// TraceCapacity sizes the inference trace ring buffer (default
	// 128).
	TraceCapacity int
	// Metrics, when non-nil, receives every inference (share one set
	// across a fleet; see NewMetrics).
	Metrics *Metrics
	// Quantized switches serving to the int8 fast path: every model
	// version the pool selects is quantized on first use (per-channel
	// int8 weights with fused requantization) and cached, and
	// prediction, MSP scoring, and drift detection all run on the
	// quantized logits — serving never leaves int8. Requires
	// Calibration.
	Quantized bool
	// Calibration is the activation-calibration batch for quantized
	// mode (recent in-distribution inputs; 64–128 rows is plenty).
	Calibration *tensor.Matrix
	// ShadowEvery > 0 runs the float model alongside every Nth
	// quantized inference and compares drift verdicts, feeding the
	// nazar_quant_shadow_* metrics. The comparison calls the detector
	// twice per shadowed input, so it requires a stateless detector
	// (the default MSP threshold is).
	ShadowEvery int
	Rng         *rand.Rand
}

// Device is one simulated mobile device.
type Device struct {
	ID       string
	Location string
	Pool     *registry.Pool
	// Trace records recent inferences for support debugging.
	Trace    *Trace
	detector detect.Detector
	rate     float64
	metrics  *Metrics
	rng      *rand.Rand

	// Quantized-mode state. qcache maps a pool entry's materialized
	// network to its int8 form; pool entries are stable pointers until
	// replaced, so first use quantizes and later inferences hit the
	// cache. Like the rest of a Device, it is single-goroutine.
	quantized   bool
	cal         *tensor.Matrix
	shadowEvery int
	inferCount  uint64
	qcache      map[*nn.Network]*nn.QuantizedNetwork
}

// quantCacheLimit bounds qcache: evicted pool versions leave stale keys
// behind, so past this size the cache is reset and rebuilt on demand.
const quantCacheLimit = 64

// New creates a device around a base model. The base network may be
// shared read-only across devices; installs clone it before mutating.
// In quantized mode the base is quantized eagerly, so a missing or
// mis-shaped calibration batch fails here (with a panic: it is a
// configuration error) rather than mid-inference.
func New(cfg Config, base *nn.Network) *Device {
	if cfg.Detector == nil {
		cfg.Detector = detect.NewMSPThreshold()
	}
	if cfg.Rng == nil {
		cfg.Rng = tensor.NewRand(0xDEF1CE, 1)
	}
	d := &Device{
		ID:          cfg.ID,
		Location:    cfg.Location,
		Pool:        registry.NewPool(base, cfg.PoolCapacity),
		Trace:       NewTrace(cfg.TraceCapacity),
		detector:    cfg.Detector,
		rate:        cfg.SampleRate,
		metrics:     cfg.Metrics,
		rng:         cfg.Rng,
		quantized:   cfg.Quantized,
		cal:         cfg.Calibration,
		shadowEvery: cfg.ShadowEvery,
	}
	if d.quantized {
		d.qcache = make(map[*nn.Network]*nn.QuantizedNetwork)
		d.quantFor(base)
	}
	return d
}

// quantFor returns the cached int8 form of net, quantizing on first
// use. Every pool entry shares the base topology (Materialize enforces
// it) and the calibration batch was validated against the base in New,
// so a quantization failure here is an invariant violation.
func (d *Device) quantFor(net *nn.Network) *nn.QuantizedNetwork {
	if qn, ok := d.qcache[net]; ok {
		return qn
	}
	if len(d.qcache) >= quantCacheLimit {
		clear(d.qcache)
	}
	qn, err := nn.QuantizeInt8(net, d.cal)
	if err != nil {
		panic(fmt.Sprintf("device %s: quantized mode: %v", d.ID, err))
	}
	d.qcache[net] = qn
	return qn
}

// Inference is the outcome of one on-device prediction.
type Inference struct {
	Predicted int
	MSP       float64
	Drift     bool
	// VersionID is the adapted version used ("" = clean model).
	VersionID string
	// Sampled reports whether the input was uploaded.
	Sampled bool
	// Quantized reports whether the int8 fast path served this
	// prediction.
	Quantized bool
	// QuantSat counts requantization saturations (activation codes
	// clamped to ±127) during this inference — a sustained rise means
	// the calibration range no longer covers the input distribution.
	QuantSat int
	// ShadowChecked marks inferences where the float model also ran;
	// ShadowDisagree is set when its drift verdict differed from the
	// quantized one.
	ShadowChecked  bool
	ShadowDisagree bool
}

// Infer selects a model version for the input's metadata, runs inference
// and the drift detector, and returns both the inference and the
// drift-log entry to report (sample is nil when not uploaded).
func (d *Device) Infer(t time.Time, x []float64, attrs map[string]string) (Inference, driftlog.Entry, []float64) {
	merged := map[string]string{
		driftlog.AttrDevice:   d.ID,
		driftlog.AttrLocation: d.Location,
	}
	for k, v := range attrs {
		merged[k] = v
	}
	net, versionID := d.Pool.Select(merged)
	inf := Inference{VersionID: versionID}
	var logits []float64
	if d.quantized {
		qn := d.quantFor(net)
		sat0 := qn.Saturations()
		logits = qn.LogitsOne(x)
		inf.Quantized = true
		inf.QuantSat = int(qn.Saturations() - sat0)
	} else {
		logits = net.LogitsOne(x)
	}
	pred, _ := tensor.ArgMax(logits)
	msp := detect.MSP{}.Score(logits)
	drift := d.detector.Detect(logits)
	inf.Predicted, inf.MSP, inf.Drift = pred, msp, drift

	d.inferCount++
	if inf.Quantized && d.shadowEvery > 0 && d.inferCount%uint64(d.shadowEvery) == 0 {
		inf.ShadowChecked = true
		inf.ShadowDisagree = d.detector.Detect(net.LogitsOne(x)) != drift
	}
	d.Trace.Record(TraceRecord{Time: t, Predicted: pred, MSP: msp, Drift: drift, VersionID: versionID})
	var sample []float64
	if d.rate > 0 && d.rng.Float64() < d.rate {
		inf.Sampled = true
		sample = append([]float64(nil), x...)
	}
	d.metrics.observe(inf)
	merged[driftlog.AttrModel] = modelAttr(versionID)
	entry := driftlog.Entry{
		Time:     t,
		Attrs:    merged,
		Drift:    drift,
		SampleID: -1, // assigned by the cloud on ingest when sample != nil
	}
	return inf, entry, sample
}

// modelAttr normalizes the version ID for the drift log's model column.
func modelAttr(versionID string) string {
	if versionID == "" {
		return "clean"
	}
	return versionID
}
