package device

import (
	"sync"
	"time"
)

// TraceRecord is one inference's observability record.
type TraceRecord struct {
	Time      time.Time
	Predicted int
	MSP       float64
	Drift     bool
	VersionID string // "" = clean model
}

// Trace is a fixed-capacity ring buffer of recent inference records plus
// running summary statistics — the on-device visibility layer (the paper
// contrasts Nazar with ML-EXray-style instrumentation; this is the small
// slice of it a production device SDK would keep for support debugging).
type Trace struct {
	mu   sync.Mutex
	ring []TraceRecord
	next int
	full bool

	total     int
	drifted   int
	perModel  map[string]int
	mspSum    float64
	mspSumLow float64 // sum of MSP over drift-flagged inferences
}

// NewTrace returns a trace keeping the most recent capacity records.
func NewTrace(capacity int) *Trace {
	if capacity < 1 {
		capacity = 128
	}
	return &Trace{ring: make([]TraceRecord, capacity), perModel: map[string]int{}}
}

// Record appends one inference.
func (t *Trace) Record(r TraceRecord) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ring[t.next] = r
	t.next = (t.next + 1) % len(t.ring)
	if t.next == 0 {
		t.full = true
	}
	t.total++
	t.mspSum += r.MSP
	if r.Drift {
		t.drifted++
		t.mspSumLow += r.MSP
	}
	key := r.VersionID
	if key == "" {
		key = "clean"
	}
	t.perModel[key]++
}

// Recent returns the buffered records, oldest first.
func (t *Trace) Recent() []TraceRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		return append([]TraceRecord(nil), t.ring[:t.next]...)
	}
	out := make([]TraceRecord, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Summary is the trace's aggregate view.
type Summary struct {
	Total         int
	DriftRate     float64
	MeanMSP       float64
	MeanMSPOnDrft float64
	PerModel      map[string]int
}

// Summarize returns aggregate statistics over the device's lifetime (not
// just the buffered window).
func (t *Trace) Summarize() Summary {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := Summary{Total: t.total, PerModel: map[string]int{}}
	for k, v := range t.perModel {
		s.PerModel[k] = v
	}
	if t.total > 0 {
		s.DriftRate = float64(t.drifted) / float64(t.total)
		s.MeanMSP = t.mspSum / float64(t.total)
	}
	if t.drifted > 0 {
		s.MeanMSPOnDrft = t.mspSumLow / float64(t.drifted)
	}
	return s
}
