package device

import (
	"testing"
	"time"

	"nazar/internal/adapt"
	"nazar/internal/detect"
	"nazar/internal/driftlog"
	"nazar/internal/fim"
	"nazar/internal/imagesim"
	"nazar/internal/nn"
	"nazar/internal/rca"
	"nazar/internal/tensor"
)

func newDevice(t *testing.T, sampleRate float64) (*Device, *imagesim.World, *nn.Network) {
	t.Helper()
	world := imagesim.NewWorld(imagesim.DefaultConfig(8, 55))
	rng := tensor.NewRand(55, 1)
	base := nn.NewClassifier(nn.ArchResNet18, world.Dim(), 8, rng)
	// Light training so predictions are meaningful.
	n := 240
	x := tensor.New(n, world.Dim())
	y := make([]int, n)
	for i := 0; i < n; i++ {
		y[i] = i % 8
		copy(x.Row(i), world.Sample(y[i], rng))
	}
	nn.Fit(base, x, y, nn.TrainConfig{Epochs: 10, BatchSize: 32, Rng: rng})
	d := New(Config{
		ID:         "android_test",
		Location:   "Hamburg",
		SampleRate: sampleRate,
		Rng:        tensor.NewRand(56, 1),
	}, base)
	return d, world, base
}

func TestInferEmitsEntry(t *testing.T) {
	d, world, _ := newDevice(t, 1.0)
	rng := tensor.NewRand(57, 1)
	x := world.Sample(3, rng)
	now := time.Date(2020, 1, 5, 12, 0, 0, 0, time.UTC)
	inf, entry, sample := d.Infer(now, x, map[string]string{driftlog.AttrWeather: "clear-day"})

	if inf.Predicted < 0 || inf.Predicted >= 8 {
		t.Fatalf("prediction %d out of range", inf.Predicted)
	}
	if inf.MSP <= 0 || inf.MSP > 1 {
		t.Fatalf("msp %v", inf.MSP)
	}
	if entry.Attrs[driftlog.AttrDevice] != "android_test" ||
		entry.Attrs[driftlog.AttrLocation] != "Hamburg" ||
		entry.Attrs[driftlog.AttrWeather] != "clear-day" {
		t.Fatalf("entry attrs %v", entry.Attrs)
	}
	if entry.Attrs[driftlog.AttrModel] != "clean" {
		t.Fatalf("model attr %q", entry.Attrs[driftlog.AttrModel])
	}
	if !entry.Time.Equal(now) {
		t.Fatal("entry time mismatch")
	}
	if !inf.Sampled || sample == nil {
		t.Fatal("sample rate 1.0 must sample")
	}
	// Sample must be a copy.
	sample[0] += 99
	if x[0] == sample[0] {
		t.Fatal("sample aliases input")
	}
}

func TestSampleRateZeroNeverSamples(t *testing.T) {
	d, world, _ := newDevice(t, 0)
	rng := tensor.NewRand(58, 1)
	for i := 0; i < 20; i++ {
		inf, _, sample := d.Infer(time.Now(), world.Sample(i%8, rng), nil)
		if inf.Sampled || sample != nil {
			t.Fatal("sampled despite rate 0")
		}
	}
}

func TestDriftDetectionOnCorrupted(t *testing.T) {
	d, world, _ := newDevice(t, 0)
	rng := tensor.NewRand(59, 1)
	driftCount, cleanCount := 0, 0
	const n = 120
	for i := 0; i < n; i++ {
		c := i % 8
		clean := world.Sample(c, rng)
		corrupted := world.Corrupt(clean, imagesim.Fog, 5, rng)
		if inf, _, _ := d.Infer(time.Now(), clean, nil); inf.Drift {
			cleanCount++
		}
		if inf, _, _ := d.Infer(time.Now(), corrupted, nil); inf.Drift {
			driftCount++
		}
	}
	if driftCount <= cleanCount {
		t.Fatalf("detector flagged clean %d >= corrupted %d", cleanCount, driftCount)
	}
}

func TestVersionSelectionUsedForInference(t *testing.T) {
	d, world, base := newDevice(t, 0)
	rng := tensor.NewRand(60, 1)

	// Build a fog-adapted version and install it.
	pool := tensor.New(128, world.Dim())
	for i := 0; i < pool.Rows; i++ {
		copy(pool.Row(i), world.Corrupt(world.Sample(i%8, rng), imagesim.Fog, 3, rng))
	}
	adapted, err := adapt.Adapt(base, pool, adapt.Config{Rng: rng, Epochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	v := adapt.BNVersion{
		ID: "fog-v1",
		Cause: rca.Cause{Items: fim.NewItemset(
			driftlog.Cond{Attr: driftlog.AttrWeather, Value: "fog"})},
		Snapshot:  nn.CaptureBN(adapted),
		CreatedAt: time.Now(),
	}
	if err := d.Pool.Install(v, time.Now()); err != nil {
		t.Fatal(err)
	}

	x := world.Corrupt(world.Sample(0, rng), imagesim.Fog, 3, rng)
	_, entryFog, _ := d.Infer(time.Now(), x, map[string]string{driftlog.AttrWeather: "fog"})
	if entryFog.Attrs[driftlog.AttrModel] != "fog-v1" {
		t.Fatalf("fog input should use fog-v1, got %q", entryFog.Attrs[driftlog.AttrModel])
	}
	_, entryClear, _ := d.Infer(time.Now(), x, map[string]string{driftlog.AttrWeather: "clear-day"})
	if entryClear.Attrs[driftlog.AttrModel] != "clean" {
		t.Fatalf("clear input should use clean model, got %q", entryClear.Attrs[driftlog.AttrModel])
	}
}

func TestCustomDetector(t *testing.T) {
	world := imagesim.NewWorld(imagesim.DefaultConfig(4, 1))
	base := nn.NewClassifier(nn.ArchResNet18, world.Dim(), 4, tensor.NewRand(1, 1))
	// A detector that always fires.
	d := New(Config{ID: "x", Location: "y",
		Detector: detect.Threshold{Scorer: detect.MSP{}, T: 2.0},
		Rng:      tensor.NewRand(2, 2)}, base)
	inf, entry, _ := d.Infer(time.Now(), world.Sample(0, tensor.NewRand(3, 3)), nil)
	if !inf.Drift || !entry.Drift {
		t.Fatal("always-fire detector did not fire")
	}
}

func TestBatchDetectorVerdictCadence(t *testing.T) {
	ks, err := detect.NewKSTest([]float64{0.90, 0.92, 0.94, 0.96, 0.98, 0.99, 0.995, 0.999}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatchDetector(ks, 4, time.Hour)
	base := time.Date(2020, 2, 1, 0, 0, 0, 0, time.UTC)
	// Three observations: no verdict yet (the latency cost of batching).
	for i := 0; i < 3; i++ {
		if _, decided := b.Observe(base.Add(time.Duration(i)*time.Minute), 0.3); decided {
			t.Fatal("verdict before batch filled")
		}
	}
	// Fourth closes the batch; all scores far below the reference ->
	// drift.
	drift, decided := b.Observe(base.Add(3*time.Minute), 0.3)
	if !decided || !drift {
		t.Fatalf("expected drift verdict, got drift=%v decided=%v", drift, decided)
	}
	// In-distribution batch -> no drift.
	for i := 0; i < 3; i++ {
		b.Observe(base.Add(time.Duration(10+i)*time.Minute), 0.95)
	}
	drift, decided = b.Observe(base.Add(13*time.Minute), 0.97)
	if !decided || drift {
		t.Fatalf("clean batch flagged: drift=%v decided=%v", drift, decided)
	}
	batches, expired, buffered := b.Stats()
	if batches != 2 || expired != 0 || buffered != 0 {
		t.Fatalf("stats %d %d %d", batches, expired, buffered)
	}
}

func TestBatchDetectorWindowExpiry(t *testing.T) {
	ks, err := detect.NewKSTest([]float64{0.9, 0.95, 0.99}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatchDetector(ks, 8, time.Hour)
	base := time.Date(2020, 2, 1, 0, 0, 0, 0, time.UTC)
	// A quiet device: 3 scores, then a long pause — they expire without
	// ever being judged (the paper's objection to batched detection).
	for i := 0; i < 3; i++ {
		b.Observe(base.Add(time.Duration(i)*time.Minute), 0.5)
	}
	b.Observe(base.Add(3*time.Hour), 0.5)
	_, expired, buffered := b.Stats()
	if expired != 3 {
		t.Fatalf("expected 3 expired scores, got %d", expired)
	}
	if buffered != 1 {
		t.Fatalf("buffered %d", buffered)
	}
}

func TestTraceRingAndSummary(t *testing.T) {
	tr := NewTrace(3)
	base := time.Date(2020, 3, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 5; i++ {
		tr.Record(TraceRecord{
			Time:      base.Add(time.Duration(i) * time.Minute),
			MSP:       0.5 + 0.1*float64(i),
			Drift:     i%2 == 0,
			VersionID: map[bool]string{true: "fog-v1", false: ""}[i >= 3],
		})
	}
	recent := tr.Recent()
	if len(recent) != 3 {
		t.Fatalf("recent %d", len(recent))
	}
	// Oldest-first: records 2, 3, 4.
	if !recent[0].Time.Equal(base.Add(2 * time.Minute)) {
		t.Fatalf("order wrong: %v", recent[0].Time)
	}
	s := tr.Summarize()
	if s.Total != 5 {
		t.Fatalf("total %d", s.Total)
	}
	if s.DriftRate != 0.6 {
		t.Fatalf("drift rate %v", s.DriftRate)
	}
	if s.PerModel["clean"] != 3 || s.PerModel["fog-v1"] != 2 {
		t.Fatalf("per-model %v", s.PerModel)
	}
	if s.MeanMSP <= 0 || s.MeanMSPOnDrft <= 0 {
		t.Fatal("MSP stats missing")
	}
}

func TestDeviceRecordsTrace(t *testing.T) {
	d, world, _ := newDevice(t, 0)
	rng := tensor.NewRand(61, 1)
	for i := 0; i < 10; i++ {
		d.Infer(time.Now(), world.Sample(i%8, rng), nil)
	}
	s := d.Trace.Summarize()
	if s.Total != 10 {
		t.Fatalf("trace recorded %d inferences", s.Total)
	}
	if len(d.Trace.Recent()) != 10 {
		t.Fatalf("recent %d", len(d.Trace.Recent()))
	}
}

func TestTracePartialBuffer(t *testing.T) {
	tr := NewTrace(10)
	tr.Record(TraceRecord{MSP: 0.9})
	if got := tr.Recent(); len(got) != 1 {
		t.Fatalf("recent %d", len(got))
	}
	if NewTrace(0) == nil {
		t.Fatal("zero capacity must default")
	}
}
