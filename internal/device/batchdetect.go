package device

import (
	"sync"
	"time"

	"nazar/internal/detect"
)

// BatchDetector is the on-device variant of the KS-test detection mode
// the paper evaluates (and ultimately rejects) in §3.2.2. It buffers the
// device's recent confidence scores and, once a full batch within the
// time window accumulates, assigns the batch's KS verdict to every
// inference in it.
//
// It exists to make the paper's "thorny questions" concrete and
// measurable: verdicts arrive with up to BatchSize inferences of delay
// (or never, on a quiet device whose batch never fills before Window
// expires), which is exactly why the shipped default is the per-inference
// threshold.
type BatchDetector struct {
	ks *detect.KSTest
	// BatchSize is the number of scores per verdict.
	BatchSize int
	// Window caps how long scores may wait for batch-mates; older
	// scores are dropped unjudged.
	Window time.Duration

	mu      sync.Mutex
	times   []time.Time
	scores  []float64
	pending int // inferences dropped without a verdict
	batches int
}

// NewBatchDetector wraps a calibrated KS test.
func NewBatchDetector(ks *detect.KSTest, batchSize int, window time.Duration) *BatchDetector {
	if batchSize < 2 {
		batchSize = 2
	}
	if window <= 0 {
		window = 24 * time.Hour
	}
	return &BatchDetector{ks: ks, BatchSize: batchSize, Window: window}
}

// Observe buffers one inference's confidence score. When the buffer
// reaches BatchSize, it returns the batch verdict and true; otherwise it
// returns false (no verdict yet). Scores older than Window are evicted
// (and counted as never judged).
func (b *BatchDetector) Observe(t time.Time, score float64) (drift, decided bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	// Evict expired scores.
	cutoff := t.Add(-b.Window)
	drop := 0
	for drop < len(b.times) && b.times[drop].Before(cutoff) {
		drop++
	}
	if drop > 0 {
		b.pending += drop
		b.times = b.times[drop:]
		b.scores = b.scores[drop:]
	}
	b.times = append(b.times, t)
	b.scores = append(b.scores, score)
	if len(b.scores) < b.BatchSize {
		return false, false
	}
	verdict := b.ks.DetectBatch(b.scores)
	b.times = b.times[:0]
	b.scores = b.scores[:0]
	b.batches++
	return verdict, true
}

// Stats reports how many batches were judged and how many scores expired
// unjudged — the detection-latency cost of batching.
func (b *BatchDetector) Stats() (batches, expiredUnjudged, buffered int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.batches, b.pending, len(b.scores)
}
