package device

import (
	"strings"
	"testing"
	"time"

	"nazar/internal/adapt"
	"nazar/internal/driftlog"
	"nazar/internal/fim"
	"nazar/internal/imagesim"
	"nazar/internal/nn"
	"nazar/internal/obs"
	"nazar/internal/rca"
	"nazar/internal/tensor"
)

// newQuantDevice mirrors newDevice but serves on the int8 fast path,
// calibrated on clean training samples.
func newQuantDevice(t *testing.T, cfg Config) (*Device, *imagesim.World, *nn.Network) {
	t.Helper()
	world := imagesim.NewWorld(imagesim.DefaultConfig(8, 55))
	rng := tensor.NewRand(55, 1)
	base := nn.NewClassifier(nn.ArchResNet18, world.Dim(), 8, rng)
	n := 240
	x := tensor.New(n, world.Dim())
	y := make([]int, n)
	for i := 0; i < n; i++ {
		y[i] = i % 8
		copy(x.Row(i), world.Sample(y[i], rng))
	}
	nn.Fit(base, x, y, nn.TrainConfig{Epochs: 10, BatchSize: 32, Rng: rng})

	cal := tensor.New(96, world.Dim())
	for i := 0; i < cal.Rows; i++ {
		copy(cal.Row(i), world.Sample(i%8, rng))
	}
	cfg.ID, cfg.Location = "android_q", "Hamburg"
	cfg.Quantized = true
	cfg.Calibration = cal
	if cfg.Rng == nil {
		cfg.Rng = tensor.NewRand(56, 1)
	}
	return New(cfg, base), world, base
}

// TestQuantizedInferServesInt8 checks the int8 path end to end: the
// inference is marked quantized, predictions overwhelmingly agree with
// the float model, drift verdicts come from the quantized logits, and
// the drift-log entry is emitted exactly as in float mode.
func TestQuantizedInferServesInt8(t *testing.T) {
	d, world, base := newQuantDevice(t, Config{})
	rng := tensor.NewRand(57, 1)
	agree, total := 0, 120
	for i := 0; i < total; i++ {
		x := world.Sample(i%8, rng)
		inf, entry, _ := d.Infer(time.Now(), x, map[string]string{driftlog.AttrWeather: "clear-day"})
		if !inf.Quantized {
			t.Fatal("quantized device served a float inference")
		}
		if inf.MSP <= 0 || inf.MSP > 1 {
			t.Fatalf("msp %v", inf.MSP)
		}
		if entry.Attrs[driftlog.AttrModel] != "clean" || entry.Attrs[driftlog.AttrWeather] != "clear-day" {
			t.Fatalf("entry attrs %v", entry.Attrs)
		}
		fl := base.LogitsOne(x)
		fpred, _ := tensor.ArgMax(fl)
		if inf.Predicted == fpred {
			agree++
		}
	}
	if agree < total*9/10 {
		t.Fatalf("int8 agrees with float on %d/%d predictions", agree, total)
	}
}

// TestQuantizedShadowCadence pins the shadow-compare schedule: with
// ShadowEvery=3, exactly every third inference runs the float model and
// compares drift verdicts.
func TestQuantizedShadowCadence(t *testing.T) {
	d, world, _ := newQuantDevice(t, Config{ShadowEvery: 3})
	rng := tensor.NewRand(58, 1)
	checked := 0
	for i := 0; i < 30; i++ {
		inf, _, _ := d.Infer(time.Now(), world.Sample(i%8, rng), nil)
		if inf.ShadowChecked {
			checked++
			if (i+1)%3 != 0 {
				t.Fatalf("shadow check on inference %d with ShadowEvery=3", i+1)
			}
		}
		if inf.ShadowDisagree && !inf.ShadowChecked {
			t.Fatal("disagreement without a shadow check")
		}
	}
	if checked != 10 {
		t.Fatalf("%d shadow checks over 30 inferences, want 10", checked)
	}
}

// TestQuantizedVersionSelection proves installed BN versions are served
// quantized too: the pool's materialized network is quantized on first
// selection and cached after that.
func TestQuantizedVersionSelection(t *testing.T) {
	d, world, base := newQuantDevice(t, Config{})
	rng := tensor.NewRand(60, 1)

	pool := tensor.New(128, world.Dim())
	for i := 0; i < pool.Rows; i++ {
		copy(pool.Row(i), world.Corrupt(world.Sample(i%8, rng), imagesim.Fog, 3, rng))
	}
	adapted, err := adapt.Adapt(base, pool, adapt.Config{Rng: rng, Epochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	v := adapt.BNVersion{
		ID: "fog-v1",
		Cause: rca.Cause{Items: fim.NewItemset(
			driftlog.Cond{Attr: driftlog.AttrWeather, Value: "fog"})},
		Snapshot:  nn.CaptureBN(adapted),
		CreatedAt: time.Now(),
	}
	if err := d.Pool.Install(v, time.Now()); err != nil {
		t.Fatal(err)
	}

	x := world.Corrupt(world.Sample(0, rng), imagesim.Fog, 3, rng)
	inf, entry, _ := d.Infer(time.Now(), x, map[string]string{driftlog.AttrWeather: "fog"})
	if !inf.Quantized || entry.Attrs[driftlog.AttrModel] != "fog-v1" {
		t.Fatalf("fog input: quantized=%v model=%q", inf.Quantized, entry.Attrs[driftlog.AttrModel])
	}
	if len(d.qcache) != 2 {
		t.Fatalf("qcache holds %d entries, want base + fog-v1", len(d.qcache))
	}
	// Second fog inference hits the cache, not a re-quantization.
	d.Infer(time.Now(), x, map[string]string{driftlog.AttrWeather: "fog"})
	if len(d.qcache) != 2 {
		t.Fatalf("qcache grew to %d on a repeat selection", len(d.qcache))
	}
}

// TestQuantizedRequiresCalibration: quantized mode without a
// calibration batch is a configuration error and must fail loudly at
// construction, not mid-inference.
func TestQuantizedRequiresCalibration(t *testing.T) {
	base := nn.NewClassifier(nn.ArchResNet18, 8, 4, tensor.NewRand(1, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on quantized mode without calibration")
		}
	}()
	New(Config{ID: "x", Quantized: true}, base)
}

// TestQuantizedMetricsExposition drives an instrumented quantized
// device and pins the nazar_quant_* families on /metrics, including the
// exact counter samples the cadence determines.
func TestQuantizedMetricsExposition(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	d, world, _ := newQuantDevice(t, Config{ShadowEvery: 2, Metrics: m})
	rng := tensor.NewRand(62, 1)
	for i := 0; i < 6; i++ {
		d.Infer(time.Now(), world.Sample(i%8, rng), nil)
	}

	if got := m.quantInferences.Value(); got != 6 {
		t.Fatalf("quant inference counter %d, want 6", got)
	}
	if got := m.shadowAgree.Value() + m.shadowDisagree.Value(); got != 3 {
		t.Fatalf("shadow comparisons %d, want 3 at ShadowEvery=2", got)
	}

	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, want := range []string{
		"# TYPE nazar_quant_inferences_total counter",
		"nazar_quant_inferences_total 6",
		"# TYPE nazar_quant_saturations_total counter",
		"# TYPE nazar_quant_shadow_total counter",
		`nazar_quant_shadow_total{verdict="agree"}`,
		`nazar_quant_shadow_total{verdict="disagree"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}
}
