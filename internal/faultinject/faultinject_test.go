package faultinject

import (
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestInjectorDeterminism: equal seeds and schedules yield identical
// fault traces; a different seed diverges. This is the contract that
// makes a failing chaos run reproducible.
func TestInjectorDeterminism(t *testing.T) {
	sched := Preset(0.3)
	mk := func(seed uint64) *Injector {
		return New(Config{Seed: seed, Schedule: sched, Sleep: func(time.Duration) {}})
	}
	a, b, other := mk(42), mk(42), mk(43)
	const n = 500
	for i := 0; i < n; i++ {
		a.decide()
		b.decide()
		other.decide()
	}
	ta, tb := a.Trace(), b.Trace()
	if !reflect.DeepEqual(ta, tb) {
		t.Fatal("same seed produced different fault traces")
	}
	if reflect.DeepEqual(ta, other.Trace()) {
		t.Fatal("different seeds produced identical fault traces")
	}
	if len(ta) != n || ta[n-1].Seq != n-1 {
		t.Fatalf("trace length/seq wrong: len=%d last=%+v", len(ta), ta[len(ta)-1])
	}
	if !reflect.DeepEqual(a.Counts(), b.Counts()) {
		t.Fatal("same seed produced different counts")
	}
	// At 30% fault rate over 500 requests every class should have fired.
	for _, f := range []Fault{Fault500, Fault429, FaultReset, FaultTruncate, FaultLatency, FaultNone} {
		if a.Counts()[f] == 0 {
			t.Fatalf("fault %s never fired in 500 requests at rate 0.3", f)
		}
	}
}

// okHandler writes a body comfortably larger than truncateBudget.
func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, `{"status":"ok","padding":"0123456789abcdef"}`)
	})
}

func certainly(t *testing.T, sched Schedule) (*Injector, *time.Duration) {
	t.Helper()
	var slept time.Duration
	in := New(Config{Schedule: sched, Sleep: func(d time.Duration) { slept += d }})
	return in, &slept
}

// TestMiddlewareFaults forces each fault with probability 1 and checks
// what a real HTTP client observes through the middleware.
func TestMiddlewareFaults(t *testing.T) {
	get := func(t *testing.T, in *Injector) (*http.Response, []byte, error) {
		t.Helper()
		ts := httptest.NewServer(in.Middleware()(okHandler()))
		defer ts.Close()
		c := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
		resp, err := c.Get(ts.URL)
		if err != nil {
			return nil, nil, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		return resp, body, err
	}

	t.Run("err500", func(t *testing.T) {
		in, _ := certainly(t, Schedule{Err500: 1})
		resp, _, err := get(t, in)
		if err != nil || resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("got %v/%v, want 500", resp, err)
		}
	})
	t.Run("err429 with retry-after", func(t *testing.T) {
		in, _ := certainly(t, Schedule{Err429: 1, RetryAfter: 2 * time.Second})
		resp, _, err := get(t, in)
		if err != nil || resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("got %v/%v, want 429", resp, err)
		}
		if got := resp.Header.Get("Retry-After"); got != "2" {
			t.Fatalf("Retry-After = %q, want 2", got)
		}
	})
	t.Run("retry-after rounds up to one second", func(t *testing.T) {
		in, _ := certainly(t, Schedule{Err429: 1, RetryAfter: time.Millisecond})
		resp, _, err := get(t, in)
		if err != nil || resp.Header.Get("Retry-After") != "1" {
			t.Fatalf("got %v/%v, want Retry-After 1", resp, err)
		}
	})
	t.Run("reset aborts the connection", func(t *testing.T) {
		in, _ := certainly(t, Schedule{Reset: 1})
		if _, _, err := get(t, in); err == nil {
			t.Fatal("reset fault: client saw a clean response, want connection error")
		}
	})
	t.Run("truncate cuts the body", func(t *testing.T) {
		in, _ := certainly(t, Schedule{Truncate: 1})
		_, body, err := get(t, in)
		if err == nil && len(body) > truncateBudget {
			t.Fatalf("truncate fault: client read %d clean bytes, want ≤%d or read error", len(body), truncateBudget)
		}
	})
	t.Run("latency sleeps then passes through", func(t *testing.T) {
		in, slept := certainly(t, Schedule{Latency: 1, LatencyDur: 7 * time.Millisecond})
		resp, body, err := get(t, in)
		if err != nil || resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
			t.Fatalf("latency-only request failed: %v/%v", resp, err)
		}
		if *slept != 7*time.Millisecond {
			t.Fatalf("slept %v, want 7ms", *slept)
		}
	})
	t.Run("no faults passes through", func(t *testing.T) {
		in, slept := certainly(t, Schedule{})
		resp, body, err := get(t, in)
		if err != nil || resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
			t.Fatalf("clean request failed: %v/%v", resp, err)
		}
		if *slept != 0 {
			t.Fatalf("clean request slept %v", *slept)
		}
	})
}

// TestRoundTripperFaults exercises the client-side mount: synthesized
// 500/429 responses never touch the network, reset surfaces as a
// transport error, truncate corrupts the body stream.
func TestRoundTripperFaults(t *testing.T) {
	backend := httptest.NewServer(okHandler())
	defer backend.Close()

	do := func(t *testing.T, in *Injector) (*http.Response, []byte, error) {
		t.Helper()
		c := &http.Client{Transport: in.RoundTripper(&http.Transport{DisableKeepAlives: true})}
		resp, err := c.Get(backend.URL)
		if err != nil {
			return nil, nil, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		return resp, body, err
	}

	t.Run("synthesized 500", func(t *testing.T) {
		in, _ := certainly(t, Schedule{Err500: 1})
		resp, _, err := do(t, in)
		if err != nil || resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("got %v/%v, want synthesized 500", resp, err)
		}
	})
	t.Run("synthesized 429 carries retry-after", func(t *testing.T) {
		in, _ := certainly(t, Schedule{Err429: 1, RetryAfter: 3 * time.Second})
		resp, _, err := do(t, in)
		if err != nil || resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get("Retry-After") != "3" {
			t.Fatalf("got %v/%v, want 429 with Retry-After 3", resp, err)
		}
	})
	t.Run("reset is a transport error", func(t *testing.T) {
		in, _ := certainly(t, Schedule{Reset: 1})
		if _, _, err := do(t, in); err == nil {
			t.Fatal("reset fault: got clean response, want error")
		}
	})
	t.Run("truncate corrupts the body", func(t *testing.T) {
		in, _ := certainly(t, Schedule{Truncate: 1})
		resp, body, err := do(t, in)
		if resp == nil {
			t.Fatalf("truncate should deliver headers, got transport error %v", err)
		}
		if err == nil && len(body) > truncateBudget {
			t.Fatalf("read %d clean bytes, want ≤%d or ErrUnexpectedEOF", len(body), truncateBudget)
		}
	})
	t.Run("pass-through reaches the backend", func(t *testing.T) {
		in, _ := certainly(t, Schedule{})
		resp, body, err := do(t, in)
		if err != nil || resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
			t.Fatalf("pass-through failed: %v/%v", resp, err)
		}
	})
}

// TestScheduleParse is the parser's example-based table; the fuzz
// target extends it to arbitrary inputs.
func TestScheduleParse(t *testing.T) {
	t.Run("full spec", func(t *testing.T) {
		s, err := ParseSchedule("latency=0.1:5ms,err500=0.05,err429=0.02:1s,reset=0.03,truncate=0.02")
		if err != nil {
			t.Fatal(err)
		}
		want := Schedule{
			Latency: 0.1, LatencyDur: 5 * time.Millisecond,
			Err500: 0.05,
			Err429: 0.02, RetryAfter: time.Second,
			Reset: 0.03, Truncate: 0.02,
		}
		if s != want {
			t.Fatalf("parsed %+v, want %+v", s, want)
		}
	})
	t.Run("empty is the no-fault schedule", func(t *testing.T) {
		s, err := ParseSchedule("  ")
		if err != nil || s != (Schedule{}) {
			t.Fatalf("got %+v/%v, want zero schedule", s, err)
		}
	})
	for _, bad := range []struct{ name, spec string }{
		{"duplicate fault", "err500=0.1,err500=0.2"},
		{"unknown fault", "jitter=0.1"},
		{"bad probability", "err500=lots"},
		{"probability above one", "err500=1.5"},
		{"negative probability", "err500=-0.1"},
		{"nan probability", "err500=NaN"},
		{"fault sum above one", "err500=0.6,reset=0.6"},
		{"duration on reset", "reset=0.1:5ms"},
		{"bad duration", "latency=0.1:fast"},
		{"non-positive duration", "latency=0.1:0s"},
		{"missing equals", "err500"},
		{"empty key", "=0.5"},
	} {
		t.Run(bad.name, func(t *testing.T) {
			if _, err := ParseSchedule(bad.spec); err == nil {
				t.Fatalf("ParseSchedule(%q) succeeded, want error", bad.spec)
			}
		})
	}
}

// TestPresetAndString: presets validate at every rate and the String
// rendering re-parses to the same schedule.
func TestPresetAndString(t *testing.T) {
	for _, rate := range []float64{0, 0.1, 0.3, 1, -0.5, 2} {
		s := Preset(rate)
		if err := s.Validate(); err != nil {
			t.Fatalf("Preset(%v) invalid: %v", rate, err)
		}
		back, err := ParseSchedule(s.String())
		if err != nil {
			t.Fatalf("Preset(%v).String() = %q does not re-parse: %v", rate, s.String(), err)
		}
		if normalizeSchedule(back) != normalizeSchedule(s) {
			t.Fatalf("Preset(%v) round-trip: got %+v, want %+v", rate, back, s)
		}
	}
}

// normalizeSchedule zeroes durations whose owning probability is zero —
// they are unobservable, and String() deliberately omits them.
func normalizeSchedule(s Schedule) Schedule {
	if s.Latency == 0 {
		s.LatencyDur = 0
	}
	if s.Err429 == 0 {
		s.RetryAfter = 0
	}
	return s
}
