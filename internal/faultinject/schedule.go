package faultinject

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Schedule is a probability schedule over injectable faults. Each
// request makes one fault roll — at most one of Err500/Err429/Reset/
// Truncate fires, chosen by cumulative probability — plus an
// independent latency roll, so a request can be both slowed and
// failed, exactly like a congested cell link.
type Schedule struct {
	// Latency is the probability of injecting LatencyDur of delay.
	Latency float64
	// LatencyDur is the injected delay (default 2ms).
	LatencyDur time.Duration
	// Err500 is the probability of answering 500 without reaching the
	// handler (or synthesizing it client-side).
	Err500 float64
	// Err429 is the probability of answering 429 with a Retry-After of
	// RetryAfter (default 1s).
	Err429 float64
	// RetryAfter is the Retry-After hint attached to injected 429s.
	RetryAfter time.Duration
	// Reset is the probability of a connection reset: the server
	// aborts the response stream mid-flight.
	Reset float64
	// Truncate is the probability of truncating the response body.
	Truncate float64
}

func (s Schedule) withDefaults() Schedule {
	if s.LatencyDur <= 0 {
		s.LatencyDur = 2 * time.Millisecond
	}
	if s.RetryAfter <= 0 {
		s.RetryAfter = time.Second
	}
	return s
}

// Validate checks every probability is in [0,1] and the fault
// probabilities (which share one roll) sum to at most 1.
func (s Schedule) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"latency", s.Latency}, {"err500", s.Err500}, {"err429", s.Err429},
		{"reset", s.Reset}, {"truncate", s.Truncate},
	} {
		if p.v < 0 || p.v > 1 || p.v != p.v {
			return fmt.Errorf("faultinject: %s probability %v outside [0,1]", p.name, p.v)
		}
	}
	if sum := s.Err500 + s.Err429 + s.Reset + s.Truncate; sum > 1 {
		return fmt.Errorf("faultinject: fault probabilities sum to %v > 1", sum)
	}
	if s.LatencyDur < 0 || s.RetryAfter < 0 {
		return fmt.Errorf("faultinject: negative duration")
	}
	return nil
}

// FaultRate returns the total per-request fault probability (latency
// excluded — a slow success is still a success).
func (s Schedule) FaultRate() float64 { return s.Err500 + s.Err429 + s.Reset + s.Truncate }

// Preset distributes a total fault rate over the fault classes in
// fixed proportions (half hard 500s, the rest split between throttles,
// resets and truncations) and adds latency at the same rate — the
// shape used by the chaos harness presets.
func Preset(rate float64) Schedule {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	return Schedule{
		Latency:    rate,
		LatencyDur: 2 * time.Millisecond,
		Err500:     0.5 * rate,
		Err429:     0.2 * rate,
		RetryAfter: time.Millisecond,
		Reset:      0.2 * rate,
		Truncate:   0.1 * rate,
	}
}

// String renders the schedule in the ParseSchedule syntax (keys in
// fixed order, zero-probability faults omitted, "" when empty).
func (s Schedule) String() string {
	var parts []string
	add := func(key string, p float64, d time.Duration, showDur bool) {
		if p == 0 {
			return
		}
		part := key + "=" + strconv.FormatFloat(p, 'g', -1, 64)
		if showDur {
			part += ":" + d.String()
		}
		parts = append(parts, part)
	}
	add("latency", s.Latency, s.LatencyDur, s.LatencyDur > 0)
	add("err500", s.Err500, 0, false)
	add("err429", s.Err429, s.RetryAfter, s.RetryAfter > 0)
	add("reset", s.Reset, 0, false)
	add("truncate", s.Truncate, 0, false)
	return strings.Join(parts, ",")
}

// ParseSchedule parses the compact schedule syntax used by flags and
// config files:
//
//	latency=0.1:5ms,err500=0.05,err429=0.02:1s,reset=0.03,truncate=0.02
//
// Each clause is fault=probability, optionally :duration (the injected
// delay for latency, the Retry-After hint for err429). Clauses may
// appear in any order; a repeated fault is an error, as is any
// probability outside [0,1]. The empty string is the no-fault schedule.
func ParseSchedule(spec string) (Schedule, error) {
	var s Schedule
	if strings.TrimSpace(spec) == "" {
		return s, nil
	}
	seen := map[string]bool{}
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		key, rest, ok := strings.Cut(clause, "=")
		if !ok || key == "" {
			return Schedule{}, fmt.Errorf("faultinject: clause %q is not fault=probability", clause)
		}
		if seen[key] {
			return Schedule{}, fmt.Errorf("faultinject: fault %q repeated", key)
		}
		seen[key] = true
		probStr, durStr, hasDur := strings.Cut(rest, ":")
		prob, err := strconv.ParseFloat(probStr, 64)
		if err != nil {
			return Schedule{}, fmt.Errorf("faultinject: fault %q: bad probability %q", key, probStr)
		}
		var dur time.Duration
		if hasDur {
			dur, err = time.ParseDuration(durStr)
			if err != nil {
				return Schedule{}, fmt.Errorf("faultinject: fault %q: bad duration %q", key, durStr)
			}
			if dur <= 0 {
				return Schedule{}, fmt.Errorf("faultinject: fault %q: non-positive duration %q", key, durStr)
			}
		}
		switch key {
		case "latency":
			s.Latency, s.LatencyDur = prob, dur
		case "err500":
			s.Err500 = prob
		case "err429":
			s.Err429, s.RetryAfter = prob, dur
		case "reset":
			s.Reset = prob
		case "truncate":
			s.Truncate = prob
		default:
			return Schedule{}, fmt.Errorf("faultinject: unknown fault %q (known: %s)",
				key, strings.Join(knownFaults(), ", "))
		}
		if hasDur && key != "latency" && key != "err429" {
			return Schedule{}, fmt.Errorf("faultinject: fault %q takes no duration", key)
		}
	}
	if err := s.Validate(); err != nil {
		return Schedule{}, err
	}
	return s, nil
}

func knownFaults() []string {
	fs := []string{"latency", "err500", "err429", "reset", "truncate"}
	sort.Strings(fs)
	return fs
}
