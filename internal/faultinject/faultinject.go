// Package faultinject is a deterministic network-fault layer for
// chaos-testing the device→cloud path. One Injector holds a seeded
// PRNG and a probability Schedule and can be mounted on either side
// of the wire:
//
//   - client side, as an http.RoundTripper wrapping the real one
//     (synthesized 5xx/429 responses, injected latency, connection
//     resets and truncated bodies without a cooperating server);
//   - server side, as middleware in front of an httpapi.Server
//     (real aborted connections and half-written responses, which is
//     what the chaos harness uses).
//
// Determinism is the point: all randomness flows from one seeded PRNG
// behind one mutex, and every decision is appended to a replayable
// fault trace, so a failing chaos run reproduces exactly from its
// seed (see the seeded-determinism test). The injected clock keeps
// latency faults off the wall clock in tests.
package faultinject

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Fault identifies one injectable fault class.
type Fault string

const (
	// FaultNone means the request passed through untouched.
	FaultNone Fault = "none"
	// FaultLatency delays the request by Schedule.LatencyDur.
	FaultLatency Fault = "latency"
	// Fault500 answers HTTP 500 without reaching the backend.
	Fault500 Fault = "err500"
	// Fault429 answers HTTP 429 with a Retry-After hint.
	Fault429 Fault = "err429"
	// FaultReset aborts the connection mid-response.
	FaultReset Fault = "reset"
	// FaultTruncate cuts the response body short.
	FaultTruncate Fault = "truncate"
)

// Event is one entry in the fault trace: the decision made for the
// n-th request through the injector.
type Event struct {
	// Seq is the 0-based request index.
	Seq int
	// Fault is the injected fault (FaultNone for pass-through).
	Fault Fault
	// Latency reports whether the independent latency roll also fired.
	Latency bool
}

// Config parameterizes an Injector.
type Config struct {
	// Seed seeds the fault PRNG; equal seeds yield equal fault traces.
	Seed uint64
	// Schedule is the probability schedule (Validate'd lazily; an
	// invalid schedule panics in New — misconfigured chaos is a test
	// bug, not a runtime condition).
	Schedule Schedule
	// Sleep injects the latency clock (time.Sleep if nil); tests pass
	// a recording fake so no wall time is spent.
	Sleep func(d time.Duration)
}

// Injector decides, per request, which fault (if any) to inject.
// Safe for concurrent use; with concurrent requests the assignment of
// decisions to requests follows arrival order at the injector's lock.
type Injector struct {
	cfg   Config
	sched Schedule

	mu     sync.Mutex
	rng    *rand.Rand
	trace  []Event
	counts map[Fault]uint64
}

// New builds an injector. It panics on an invalid schedule.
func New(cfg Config) *Injector {
	if err := cfg.Schedule.Validate(); err != nil {
		panic(err)
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	return &Injector{
		cfg:    cfg,
		sched:  cfg.Schedule.withDefaults(),
		rng:    rand.New(rand.NewSource(int64(cfg.Seed))),
		counts: map[Fault]uint64{},
	}
}

// decide makes the two rolls for one request and records the event.
func (in *Injector) decide() Event {
	in.mu.Lock()
	defer in.mu.Unlock()
	ev := Event{Seq: len(in.trace), Fault: FaultNone}
	// Latency roll first, fault roll second — the order is part of the
	// deterministic contract (changing it changes every trace).
	ev.Latency = in.rng.Float64() < in.sched.Latency
	u := in.rng.Float64()
	for _, f := range []struct {
		fault Fault
		p     float64
	}{
		{Fault500, in.sched.Err500},
		{Fault429, in.sched.Err429},
		{FaultReset, in.sched.Reset},
		{FaultTruncate, in.sched.Truncate},
	} {
		if u < f.p {
			ev.Fault = f.fault
			break
		}
		u -= f.p
	}
	in.trace = append(in.trace, ev)
	in.counts[ev.Fault]++
	if ev.Latency {
		in.counts[FaultLatency]++
	}
	return ev
}

// Trace returns a copy of the fault trace so far.
func (in *Injector) Trace() []Event {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Event(nil), in.trace...)
}

// Counts returns per-fault totals (FaultLatency counts the independent
// latency roll; FaultNone counts clean pass-throughs).
func (in *Injector) Counts() map[Fault]uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[Fault]uint64, len(in.counts))
	for k, v := range in.counts {
		out[k] = v
	}
	return out
}

// Requests returns how many requests have been decided.
func (in *Injector) Requests() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.trace)
}

// ---- server side ----------------------------------------------------

// Middleware wraps a server handler with fault injection. Mount it
// outside the API server's own middleware chain so injected aborts
// bypass the panic-recovery envelope and hit the client as real
// connection failures:
//
//	srv := httptest.NewServer(injector.Middleware()(api))
func (in *Injector) Middleware() func(http.Handler) http.Handler {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			ev := in.decide()
			if ev.Latency {
				in.cfg.Sleep(in.sched.LatencyDur)
			}
			switch ev.Fault {
			case Fault500:
				http.Error(w, "faultinject: injected server error", http.StatusInternalServerError)
			case Fault429:
				w.Header().Set("Retry-After", retryAfterValue(in.sched.RetryAfter))
				http.Error(w, "faultinject: injected throttle", http.StatusTooManyRequests)
			case FaultReset:
				// net/http aborts the connection without logging when a
				// handler panics with ErrAbortHandler: the client sees
				// a mid-flight connection reset.
				panic(http.ErrAbortHandler)
			case FaultTruncate:
				tw := &truncatingWriter{ResponseWriter: w, budget: truncateBudget}
				next.ServeHTTP(tw, r)
				if tw.truncated {
					panic(http.ErrAbortHandler) // cut the stream so the client sees EOF
				}
			default:
				next.ServeHTTP(w, r)
			}
		})
	}
}

// truncateBudget is how many response-body bytes a truncated response
// lets through — enough to start a JSON body, never enough to finish
// a realistic one.
const truncateBudget = 8

// truncatingWriter forwards only the first budget bytes of the body.
type truncatingWriter struct {
	http.ResponseWriter
	budget    int
	truncated bool
}

func (w *truncatingWriter) Write(b []byte) (int, error) {
	if w.budget <= 0 {
		w.truncated = true
		return len(b), nil // swallow, pretend success so handlers finish
	}
	n := len(b)
	if n > w.budget {
		n = w.budget
		w.truncated = true
	}
	if _, err := w.ResponseWriter.Write(b[:n]); err != nil {
		return 0, err
	}
	w.budget -= n
	return len(b), nil
}

// retryAfterValue renders a Retry-After header: whole seconds per RFC
// 9110 (minimum 1 — the header has no sub-second form).
func retryAfterValue(d time.Duration) string {
	secs := int(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// ---- client side ----------------------------------------------------

// resetError is the synthesized connection-reset failure returned by
// the client-side RoundTripper.
type resetError struct{}

func (resetError) Error() string   { return "faultinject: connection reset by peer" }
func (resetError) Timeout() bool   { return false }
func (resetError) Temporary() bool { return true }

// RoundTripper wraps next (http.DefaultTransport if nil) with fault
// injection on the client side of the wire — no cooperating server
// needed. Plug it into transport.Config.HTTPTransport.
func (in *Injector) RoundTripper(next http.RoundTripper) http.RoundTripper {
	if next == nil {
		next = http.DefaultTransport
	}
	return roundTripFunc(func(r *http.Request) (*http.Response, error) {
		ev := in.decide()
		if ev.Latency {
			in.cfg.Sleep(in.sched.LatencyDur)
		}
		switch ev.Fault {
		case Fault500:
			return synthesized(r, http.StatusInternalServerError, nil), nil
		case Fault429:
			return synthesized(r, http.StatusTooManyRequests, http.Header{
				"Retry-After": []string{retryAfterValue(in.sched.RetryAfter)},
			}), nil
		case FaultReset:
			return nil, resetError{}
		case FaultTruncate:
			resp, err := next.RoundTrip(r)
			if err != nil {
				return nil, err
			}
			resp.Body = &truncatingBody{rc: resp.Body, budget: truncateBudget}
			return resp, nil
		default:
			return next.RoundTrip(r)
		}
	})
}

type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

// synthesized builds a fake response without touching the network.
func synthesized(r *http.Request, status int, h http.Header) *http.Response {
	if h == nil {
		h = http.Header{}
	}
	return &http.Response{
		Status:     fmt.Sprintf("%d %s", status, http.StatusText(status)),
		StatusCode: status,
		Proto:      "HTTP/1.1",
		ProtoMajor: 1,
		ProtoMinor: 1,
		Header:     h,
		Body:       io.NopCloser(strings.NewReader("faultinject: injected fault")),
		Request:    r,
	}
}

// truncatingBody yields budget bytes then fails like a dropped link.
type truncatingBody struct {
	rc     io.ReadCloser
	budget int
}

func (b *truncatingBody) Read(p []byte) (int, error) {
	if b.budget <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if len(p) > b.budget {
		p = p[:b.budget]
	}
	n, err := b.rc.Read(p)
	b.budget -= n
	if err == io.EOF {
		return n, io.EOF
	}
	return n, err
}

func (b *truncatingBody) Close() error { return b.rc.Close() }
