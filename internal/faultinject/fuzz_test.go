package faultinject

import "testing"

// FuzzParseSchedule checks two properties over arbitrary specs:
//
//  1. any spec ParseSchedule accepts also passes Validate — the parser
//     never smuggles an invalid schedule past its own checks;
//  2. String() of an accepted schedule re-parses to an equivalent
//     schedule (modulo durations on zero-probability faults, which
//     String deliberately omits).
func FuzzParseSchedule(f *testing.F) {
	for _, seed := range []string{
		"",
		"latency=0.1:5ms",
		"err500=0.05",
		"err429=0.02:1s",
		"reset=0.03,truncate=0.02",
		"latency=0.1:5ms,err500=0.05,err429=0.02:1s,reset=0.03,truncate=0.02",
		"err500=1",
		"err500=0.6,reset=0.6",
		"err500=NaN",
		"latency=0.1:0s",
		"latency=1e-12:1ns",
		"=0.5",
		"err500",
		"err500=0.1,err500=0.2",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		s, err := ParseSchedule(spec)
		if err != nil {
			return // rejected input: nothing more to check
		}
		if verr := s.Validate(); verr != nil {
			t.Fatalf("ParseSchedule(%q) accepted an invalid schedule %+v: %v", spec, s, verr)
		}
		rendered := s.String()
		back, err := ParseSchedule(rendered)
		if err != nil {
			t.Fatalf("String() of accepted schedule does not re-parse: %q → %q: %v", spec, rendered, err)
		}
		if normalizeSchedule(back) != normalizeSchedule(s) {
			t.Fatalf("round-trip mismatch: %q → %+v → %q → %+v", spec, s, rendered, back)
		}
	})
}
