package adapt

import (
	"strings"
	"sync"
	"testing"
	"time"

	"nazar/internal/driftlog"
	"nazar/internal/fim"
	"nazar/internal/imagesim"
	"nazar/internal/nn"
	"nazar/internal/rca"
	"nazar/internal/tensor"
)

// rig trains one base model on a small world; shared across tests.
type rig struct {
	world  *imagesim.World
	base   *nn.Network
	trainX *tensor.Matrix
	trainY []int
	valX   *tensor.Matrix
	valY   []int
}

var (
	rigOnce sync.Once
	shared  *rig
)

func getRig(t *testing.T) *rig {
	t.Helper()
	rigOnce.Do(func() {
		const classes = 15
		world := imagesim.NewWorld(imagesim.DefaultConfig(classes, 123))
		rng := tensor.NewRand(123, 5)
		per := 50
		trainX := tensor.New(per*classes, world.Dim())
		trainY := make([]int, per*classes)
		i := 0
		for c := 0; c < classes; c++ {
			for k := 0; k < per; k++ {
				trainY[i] = c
				copy(trainX.Row(i), world.Sample(c, rng))
				i++
			}
		}
		valX := tensor.New(15*classes, world.Dim())
		valY := make([]int, 15*classes)
		for i := range valY {
			c := i % classes
			valY[i] = c
			copy(valX.Row(i), world.Sample(c, rng))
		}
		base := nn.NewClassifier(nn.ArchResNet50, world.Dim(), classes, rng)
		nn.Fit(base, trainX, trainY, nn.TrainConfig{Epochs: 25, BatchSize: 32, Rng: rng})
		shared = &rig{world: world, base: base, trainX: trainX, trainY: trainY, valX: valX, valY: valY}
	})
	return shared
}

func TestTENTRecoversAffineDrift(t *testing.T) {
	r := getRig(t)
	rng := tensor.NewRand(9, 9)
	foggyAdapt := r.world.CorruptBatch(r.trainX, imagesim.Fog, imagesim.DefaultSeverity, rng)
	foggyTest := r.world.CorruptBatch(r.valX, imagesim.Fog, imagesim.DefaultSeverity, rng)

	before := r.base.Accuracy(foggyTest, r.valY)
	adapted, err := Adapt(r.base, foggyAdapt, Config{Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	after := adapted.Accuracy(foggyTest, r.valY)
	if after < before+0.05 {
		t.Fatalf("TENT should recover >= 5 points on fog: %v -> %v", before, after)
	}
	// Base must be untouched.
	if got := r.base.Accuracy(foggyTest, r.valY); got != before {
		t.Fatal("Adapt mutated the base model")
	}
}

func TestAdaptedModelPoorOnOtherCauses(t *testing.T) {
	// §3.4: a model adapted to one cause performs poorly on other
	// causes and on clean data — the motivation for by-cause routing.
	r := getRig(t)
	rng := tensor.NewRand(10, 10)
	foggyAdapt := r.world.CorruptBatch(r.trainX, imagesim.Fog, imagesim.DefaultSeverity, rng)
	adapted, err := Adapt(r.base, foggyAdapt, Config{Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	foggyTest := r.world.CorruptBatch(r.valX, imagesim.Fog, imagesim.DefaultSeverity, rng)
	ownAcc := adapted.Accuracy(foggyTest, r.valY)
	cleanAcc := adapted.Accuracy(r.valX, r.valY)
	baseCleanAcc := r.base.Accuracy(r.valX, r.valY)
	if cleanAcc >= baseCleanAcc {
		t.Fatalf("fog-adapted model should lose clean accuracy: %v vs base %v", cleanAcc, baseCleanAcc)
	}
	if ownAcc <= cleanAcc {
		t.Fatalf("fog-adapted model should do better on fog (%v) than clean (%v)", ownAcc, cleanAcc)
	}
}

func TestMEMOAdapts(t *testing.T) {
	r := getRig(t)
	rng := tensor.NewRand(11, 11)
	contrAdapt := r.world.CorruptBatch(r.trainX, imagesim.Contrast, imagesim.DefaultSeverity, rng)
	contrTest := r.world.CorruptBatch(r.valX, imagesim.Contrast, imagesim.DefaultSeverity, rng)
	before := r.base.Accuracy(contrTest, r.valY)
	adapted, err := Adapt(r.base, contrAdapt, Config{
		Method:             MEMO,
		Augment:            r.world.Augment,
		Epochs:             1,
		MaxBatchesPerEpoch: 2,
		Rng:                rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	after := adapted.Accuracy(contrTest, r.valY)
	if after < before-0.05 {
		t.Fatalf("MEMO should not collapse: %v -> %v", before, after)
	}
}

func TestMEMORequiresAugment(t *testing.T) {
	r := getRig(t)
	if _, err := Adapt(r.base, r.valX, Config{Method: MEMO}); err == nil {
		t.Fatal("MEMO without augment must error")
	}
}

func TestAdaptRejectsEmpty(t *testing.T) {
	r := getRig(t)
	if _, err := Adapt(r.base, nil, Config{}); err == nil {
		t.Fatal("nil samples must error")
	}
	if _, err := Adapt(r.base, tensor.New(0, r.world.Dim()), Config{}); err == nil {
		t.Fatal("empty samples must error")
	}
}

func TestAdaptUnknownMethod(t *testing.T) {
	r := getRig(t)
	if _, err := Adapt(r.base, r.valX, Config{Method: "bogus"}); err == nil {
		t.Fatal("unknown method must error")
	}
}

func causeFor(corr imagesim.Corruption) rca.Cause {
	return rca.Cause{
		Items:   fim.NewItemset(driftlog.Cond{Attr: driftlog.AttrWeather, Value: string(corr)}),
		Metrics: fim.Metrics{RiskRatio: 2},
	}
}

func TestByCauseProducesVersions(t *testing.T) {
	r := getRig(t)
	rng := tensor.NewRand(12, 12)
	causes := []rca.Cause{causeFor(imagesim.Fog), causeFor(imagesim.Snow)}
	samples := func(c rca.Cause) *tensor.Matrix {
		corr := imagesim.Corruption(c.Items[0].Value)
		return r.world.CorruptBatch(r.trainX, corr, imagesim.DefaultSeverity, rng)
	}
	now := time.Date(2020, 2, 1, 0, 0, 0, 0, time.UTC)
	versions, err := ByCause(r.base, causes, samples, 2, Config{Rng: rng, Epochs: 1}, now)
	if err != nil {
		t.Fatal(err)
	}
	if len(versions) != 2 {
		t.Fatalf("got %d versions", len(versions))
	}
	for i, v := range versions {
		if v.Cause.Key() != causes[i].Key() {
			t.Fatal("cause mismatch")
		}
		if v.IsClean() {
			t.Fatal("cause versions are not clean")
		}
		if !v.CreatedAt.Equal(now) {
			t.Fatal("timestamp mismatch")
		}
		if v.SizeBytes() <= 0 {
			t.Fatal("empty snapshot")
		}
		if !strings.Contains(v.ID, "weather=") {
			t.Fatalf("version id %q should embed the cause", v.ID)
		}
	}
	// Versions must differ from each other (different causes adapt
	// differently).
	a, b := versions[0].Snapshot.Layers[0], versions[1].Snapshot.Layers[0]
	same := true
	for i := range a.Gamma {
		if a.Gamma[i] != b.Gamma[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("two causes produced identical BN versions")
	}
}

func TestByCauseSkipsSparseCauses(t *testing.T) {
	r := getRig(t)
	causes := []rca.Cause{causeFor(imagesim.Fog)}
	samples := func(rca.Cause) *tensor.Matrix { return tensor.New(1, r.world.Dim()) }
	versions, err := ByCause(r.base, causes, samples, 10, DefaultConfig(), time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if len(versions) != 0 {
		t.Fatal("sparse cause should be skipped")
	}
}

func TestMaterializeRoundTrip(t *testing.T) {
	r := getRig(t)
	rng := tensor.NewRand(13, 13)
	foggy := r.world.CorruptBatch(r.trainX, imagesim.Fog, imagesim.DefaultSeverity, rng)
	adapted, err := Adapt(r.base, foggy, Config{Rng: rng, Epochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	v := BNVersion{ID: "test", Snapshot: nn.CaptureBN(adapted), CreatedAt: time.Now()}
	mat, err := Materialize(r.base, v)
	if err != nil {
		t.Fatal(err)
	}
	x := r.valX
	a, b := adapted.Logits(x), mat.Logits(x)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("materialized model diverges from adapted model")
		}
	}
}

func TestMaterializeWrongTopology(t *testing.T) {
	r := getRig(t)
	other := nn.NewClassifier(nn.ArchResNet18, r.world.Dim(), 3, tensor.NewRand(1, 1))
	v := BNVersion{ID: "bad", Snapshot: nn.CaptureBN(other)}
	if _, err := Materialize(r.base, v); err == nil {
		t.Fatal("topology mismatch must error")
	}
}

func TestAdaptAllOnMixedWorseThanByCause(t *testing.T) {
	// The Table 4 mechanism: adapting one model on a mixture of
	// divergent drift sources underfits relative to per-cause models.
	r := getRig(t)
	rng := tensor.NewRand(14, 14)
	mix := []imagesim.Corruption{imagesim.Fog, imagesim.GaussianNoise, imagesim.Contrast, imagesim.Snow}

	// Pool: equal parts of each corruption.
	rows := r.trainX.Rows / len(mix) * len(mix)
	pool := tensor.New(rows, r.world.Dim())
	for i := 0; i < rows; i++ {
		corr := mix[i%len(mix)]
		copy(pool.Row(i), r.world.Corrupt(r.trainX.Row(i), corr, imagesim.DefaultSeverity, rng))
	}
	allModel, err := All(r.base, pool, Config{Rng: rng})
	if err != nil {
		t.Fatal(err)
	}

	var byCauseAcc, adaptAllAcc float64
	for _, corr := range mix {
		adaptX := r.world.CorruptBatch(r.trainX, corr, imagesim.DefaultSeverity, rng)
		testX := r.world.CorruptBatch(r.valX, corr, imagesim.DefaultSeverity, rng)
		m, err := Adapt(r.base, adaptX, Config{Rng: rng})
		if err != nil {
			t.Fatal(err)
		}
		byCauseAcc += m.Accuracy(testX, r.valY) / float64(len(mix))
		adaptAllAcc += allModel.Accuracy(testX, r.valY) / float64(len(mix))
	}
	if byCauseAcc <= adaptAllAcc {
		t.Fatalf("by-cause %v should beat adapt-all %v on mixed drift", byCauseAcc, adaptAllAcc)
	}
}

func TestEntropyFilterStillAdapts(t *testing.T) {
	// EATA-style filtering must not break recovery (it skips only the
	// noisiest gradient rows) and must change the result vs unfiltered.
	r := getRig(t)
	rng := tensor.NewRand(15, 15)
	adaptX := r.world.CorruptBatch(r.trainX, imagesim.Fog, imagesim.DefaultSeverity, rng)
	testX := r.world.CorruptBatch(r.valX, imagesim.Fog, imagesim.DefaultSeverity, rng)
	before := r.base.Accuracy(testX, r.valY)

	filtered, err := Adapt(r.base, adaptX, Config{Rng: tensor.NewRand(1, 1), EntropyFilter: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	after := filtered.Accuracy(testX, r.valY)
	if after < before+0.05 {
		t.Fatalf("filtered TENT should still recover: %v -> %v", before, after)
	}

	plain, err := Adapt(r.base, adaptX, Config{Rng: tensor.NewRand(1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	diff := false
	fg, pg := filtered.BatchNorms()[0].Gamma(), plain.BatchNorms()[0].Gamma()
	for i := range fg {
		if fg[i] != pg[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("filter had no effect on the adaptation trajectory")
	}
}

func TestByCauseDeterministicUnderParallelism(t *testing.T) {
	// Parallel by-cause adaptation must be reproducible: per-cause RNGs
	// are derived from the config seed and cause key, not from
	// scheduling order.
	r := getRig(t)
	causes := []rca.Cause{
		causeFor(imagesim.Fog), causeFor(imagesim.Snow),
		causeFor(imagesim.Rain), causeFor(imagesim.Contrast),
	}
	sampleRng := tensor.NewRand(77, 1)
	pools := map[string]*tensor.Matrix{}
	for _, c := range causes {
		corr := imagesim.Corruption(c.Items[0].Value)
		pools[c.Key()] = r.world.CorruptBatch(r.trainX, corr, imagesim.DefaultSeverity, sampleRng)
	}
	source := func(c rca.Cause) *tensor.Matrix { return pools[c.Key()] }
	now := time.Date(2020, 2, 1, 0, 0, 0, 0, time.UTC)

	run := func() []BNVersion {
		vs, err := ByCause(r.base, causes, source, 2,
			Config{Rng: tensor.NewRand(5, 5), Epochs: 1, MinSteps: 8}, now)
		if err != nil {
			t.Fatal(err)
		}
		return vs
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) != len(causes) {
		t.Fatalf("version counts %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatalf("order differs: %s vs %s", a[i].ID, b[i].ID)
		}
		ga, gb := a[i].Snapshot.Layers[0].Gamma, b[i].Snapshot.Layers[0].Gamma
		for j := range ga {
			if ga[j] != gb[j] {
				t.Fatalf("version %s not bit-identical across runs", a[i].ID)
			}
		}
	}
}
