package adapt

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math"

	"nazar/internal/nn"
)

// BNDelta is a compressed BN version for the wire: instead of full
// float64 BN state, it carries int16-quantized *differences* against a
// reference snapshot the device already holds (its base model's BN
// state). §3.4 adapts only BN layers because "each adaptation leads to a
// whole new version of the model weights"; deltas push the same idea one
// step further — an adaptation moves BN state only slightly, so the
// quantized diff is ~4× smaller again than the full snapshot.
//
// A SHA-256 checksum over the payload lets devices verify integrity
// before installing.
type BNDelta struct {
	Layers   []BNLayerDelta
	Checksum [sha256.Size]byte
}

// BNLayerDelta carries one layer's quantized differences with per-tensor
// scales (value ≈ ref + scale·q).
type BNLayerDelta struct {
	GammaQ, BetaQ []int16
	MeanQ, VarQ   []int16
	GammaScale    float64
	BetaScale     float64
	MeanScale     float64
	VarScale      float64
}

// quantizeDiff returns int16 codes and the scale for target-ref.
func quantizeDiff(ref, target []float64) ([]int16, float64) {
	q := make([]int16, len(ref))
	var maxAbs float64
	for i := range ref {
		if d := math.Abs(target[i] - ref[i]); d > maxAbs {
			maxAbs = d
		}
	}
	if maxAbs == 0 {
		return q, 0
	}
	scale := maxAbs / 32767
	for i := range ref {
		q[i] = int16(math.Round((target[i] - ref[i]) / scale))
	}
	return q, scale
}

func dequantize(ref []float64, q []int16, scale float64) []float64 {
	out := make([]float64, len(ref))
	for i := range ref {
		out[i] = ref[i] + scale*float64(q[i])
	}
	return out
}

// DiffBN computes the quantized delta that transforms ref into
// (approximately) target. The two snapshots must have identical shapes.
func DiffBN(ref, target *nn.BNSnapshot) (*BNDelta, error) {
	if len(ref.Layers) != len(target.Layers) {
		return nil, fmt.Errorf("adapt: delta layer count %d != %d", len(target.Layers), len(ref.Layers))
	}
	d := &BNDelta{Layers: make([]BNLayerDelta, len(ref.Layers))}
	for i := range ref.Layers {
		r, t := ref.Layers[i], target.Layers[i]
		if len(r.Gamma) != len(t.Gamma) {
			return nil, fmt.Errorf("adapt: delta layer %d dim %d != %d", i, len(t.Gamma), len(r.Gamma))
		}
		var ld BNLayerDelta
		ld.GammaQ, ld.GammaScale = quantizeDiff(r.Gamma, t.Gamma)
		ld.BetaQ, ld.BetaScale = quantizeDiff(r.Beta, t.Beta)
		ld.MeanQ, ld.MeanScale = quantizeDiff(r.RunMean, t.RunMean)
		ld.VarQ, ld.VarScale = quantizeDiff(r.RunVar, t.RunVar)
		d.Layers[i] = ld
	}
	d.Checksum = d.payloadChecksum()
	return d, nil
}

// Apply reconstructs the target snapshot from the reference, verifying
// the checksum first.
func (d *BNDelta) Apply(ref *nn.BNSnapshot) (*nn.BNSnapshot, error) {
	if d.payloadChecksum() != d.Checksum {
		return nil, fmt.Errorf("adapt: delta checksum mismatch (corrupted or tampered)")
	}
	if len(ref.Layers) != len(d.Layers) {
		return nil, fmt.Errorf("adapt: delta expects %d BN layers, reference has %d", len(d.Layers), len(ref.Layers))
	}
	out := &nn.BNSnapshot{Layers: make([]nn.BNLayerState, len(ref.Layers))}
	for i := range d.Layers {
		r, ld := ref.Layers[i], d.Layers[i]
		if len(r.Gamma) != len(ld.GammaQ) {
			return nil, fmt.Errorf("adapt: delta layer %d dim %d, reference %d", i, len(ld.GammaQ), len(r.Gamma))
		}
		out.Layers[i] = nn.BNLayerState{
			Gamma:   dequantize(r.Gamma, ld.GammaQ, ld.GammaScale),
			Beta:    dequantize(r.Beta, ld.BetaQ, ld.BetaScale),
			RunMean: dequantize(r.RunMean, ld.MeanQ, ld.MeanScale),
			RunVar:  dequantize(r.RunVar, ld.VarQ, ld.VarScale),
		}
		// Running variances must stay positive regardless of
		// quantization rounding.
		for j, v := range out.Layers[i].RunVar {
			if v < 1e-12 {
				out.Layers[i].RunVar[j] = 1e-12
			}
		}
	}
	return out, nil
}

// payloadChecksum hashes the quantized payload (codes and scales).
func (d *BNDelta) payloadChecksum() [sha256.Size]byte {
	h := sha256.New()
	var buf [8]byte
	writeI16 := func(q []int16) {
		for _, v := range q {
			binary.LittleEndian.PutUint16(buf[:2], uint16(v))
			h.Write(buf[:2])
		}
	}
	writeF := func(f float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
		h.Write(buf[:])
	}
	for _, l := range d.Layers {
		writeI16(l.GammaQ)
		writeI16(l.BetaQ)
		writeI16(l.MeanQ)
		writeI16(l.VarQ)
		writeF(l.GammaScale)
		writeF(l.BetaScale)
		writeF(l.MeanScale)
		writeF(l.VarScale)
	}
	var sum [sha256.Size]byte
	copy(sum[:], h.Sum(nil))
	return sum
}

// SizeBytes returns the wire payload size (2 bytes per code + scales).
func (d *BNDelta) SizeBytes() int {
	total := sha256.Size
	for _, l := range d.Layers {
		total += 2*(len(l.GammaQ)+len(l.BetaQ)+len(l.MeanQ)+len(l.VarQ)) + 4*8
	}
	return total
}

// Encode serializes the delta.
func (d *BNDelta) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(d); err != nil {
		return nil, fmt.Errorf("adapt: encode delta: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeBNDelta parses a delta produced by Encode.
func DecodeBNDelta(data []byte) (*BNDelta, error) {
	var d BNDelta
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&d); err != nil {
		return nil, fmt.Errorf("adapt: decode delta: %w", err)
	}
	return &d, nil
}
