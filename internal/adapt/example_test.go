package adapt_test

import (
	"fmt"

	"nazar/internal/adapt"
	"nazar/internal/imagesim"
	"nazar/internal/nn"
	"nazar/internal/tensor"
)

// ExampleAdapt shows the core self-supervised loop: TENT adapts only the
// batch-norm parameters of a trained model to a drifted, unlabeled
// sample pool, leaving the base model untouched.
func ExampleAdapt() {
	const classes = 8
	world := imagesim.NewWorld(imagesim.DefaultConfig(classes, 7))
	rng := tensor.NewRand(7, 1)

	// A trained base model (training elided to a few epochs).
	base := nn.NewClassifier(nn.ArchResNet18, world.Dim(), classes, rng)
	x := tensor.New(classes*40, world.Dim())
	y := make([]int, x.Rows)
	for i := range y {
		y[i] = i % classes
		copy(x.Row(i), world.Sample(y[i], rng))
	}
	nn.Fit(base, x, y, nn.TrainConfig{Epochs: 15, BatchSize: 32, Rng: rng})

	// Unlabeled foggy inputs arrive; adapt by cause.
	foggy := world.CorruptBatch(x, imagesim.Fog, imagesim.DefaultSeverity, rng)
	adapted, err := adapt.Adapt(base, foggy, adapt.Config{Rng: rng})
	if err != nil {
		panic(err)
	}

	// Only the BN state ships to devices.
	version := nn.CaptureBN(adapted)
	fmt.Printf("full model: %d bytes; BN version: %d bytes (%dx smaller)\n",
		base.SizeBytes(), version.SizeBytes(), base.SizeBytes()/version.SizeBytes())

	// Output:
	// full model: 49984 bytes; BN version: 3072 bytes (16x smaller)
}
