package adapt

import (
	"testing"

	"nazar/internal/nn"
	"nazar/internal/tensor"
)

// TestAdaptSteadyStateAllocs pins the TENT hot loop: once the runner's
// buffers and the optimizer state are warm, an adaptation step (gather,
// forward, entropy + reliability filter, backward, Adam) performs no
// matrix allocations at pool width 1.
func TestAdaptSteadyStateAllocs(t *testing.T) {
	tensor.SetMaxWorkers(1)
	defer tensor.SetMaxWorkers(0)

	rng := tensor.NewRand(21, 4)
	net := nn.NewClassifier(nn.ArchResNet34, 24, 6, rng)
	net.FreezeExceptBN()
	opt := nn.NewAdam(1e-3)

	samples := tensor.New(64, 24)
	for i := range samples.Data {
		samples.Data[i] = rng.NormFloat64()
	}
	idx := make([]int, samples.Rows)
	for i := range idx {
		idx[i] = i
	}

	var run runner
	step := func() {
		batch := run.gatherRows(samples, idx)
		net.ZeroGrads()
		logits := net.Forward(batch, nn.Adapt)
		_, dlogits := nn.EntropyInto(&run.dlogits, logits)
		run.zeroUnreliableRows(logits, dlogits, 0.9)
		net.Backward(dlogits)
		opt.Step(net.Params())
	}
	for i := 0; i < 3; i++ {
		step()
	}
	if n := testing.AllocsPerRun(10, step); n > 0.5 {
		t.Fatalf("steady-state TENT step allocates %v per run, want ~0", n)
	}
}
