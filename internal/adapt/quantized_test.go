package adapt

import (
	"context"
	"math"
	"testing"

	"nazar/internal/imagesim"
	"nazar/internal/nn"
	"nazar/internal/tensor"
)

// TestAdaptQuantizedRefoldCycle pins the tentpole adaptation contract:
// TENT trains BN γ/β on the float side while serving stays on int8 the
// whole time — after each epoch only the requantization epilogues
// (Mul/FBias) are re-folded, and the packed weight codes never change.
func TestAdaptQuantizedRefoldCycle(t *testing.T) {
	r := getRig(t)
	rng := tensor.NewRand(21, 21)
	foggyAdapt := r.world.CorruptBatch(r.trainX, imagesim.Fog, imagesim.DefaultSeverity, rng)
	foggyTest := r.world.CorruptBatch(r.valX, imagesim.Fog, imagesim.DefaultSeverity, rng)

	// The pre-adaptation int8 serving model, calibrated on the same
	// drifted pool the adaptation will use.
	qbase, err := nn.QuantizeInt8(r.base, foggyAdapt)
	if err != nil {
		t.Fatal(err)
	}
	before := qbase.Accuracy(foggyTest, r.valY)

	var epochs []int
	cfg := Config{Rng: rng, AfterEpoch: func(net *nn.Network, epoch int) {
		epochs = append(epochs, epoch)
	}}
	adapted, qn, err := AdaptQuantized(context.Background(), r.base, foggyAdapt, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// The caller's AfterEpoch hook still runs, once per epoch.
	if len(epochs) != 3 {
		t.Fatalf("user AfterEpoch hook ran %d times, want 3 (default epochs)", len(epochs))
	}
	for i, e := range epochs {
		if e != i {
			t.Fatalf("epoch sequence %v", epochs)
		}
	}

	// Int8 serving recovers with the adaptation and tracks the float
	// model it is folded from.
	floatAcc := adapted.Accuracy(foggyTest, r.valY)
	qAcc := qn.Accuracy(foggyTest, r.valY)
	if qAcc < before+0.05 {
		t.Fatalf("quantized serving should recover >= 5 points via refolds: %v -> %v", before, qAcc)
	}
	if math.Abs(floatAcc-qAcc) > 0.05 {
		t.Fatalf("int8 accuracy %v strays from float %v", qAcc, floatAcc)
	}

	// Adaptation froze everything except BN, so the packed codes and
	// per-column weight scales are bit-identical to a quantization of
	// the unadapted base: only the epilogues moved.
	for li, l := range qn.Layers {
		bl := qbase.Layers[li]
		for i, c := range l.W.Data {
			if c != bl.W.Data[i] {
				t.Fatalf("layer %d code %d changed during adaptation", li, i)
			}
		}
		for j, s := range l.W.Scales {
			if s != bl.W.Scales[j] {
				t.Fatalf("layer %d weight scale %d changed during adaptation", li, j)
			}
		}
	}

	// Refold after the run is a no-op: the final epoch already folded.
	mul0 := append([]float64(nil), qn.Layers[0].Mul...)
	fb0 := append([]float64(nil), qn.Layers[0].FBias...)
	qn.Refold()
	for j := range mul0 {
		if mul0[j] != qn.Layers[0].Mul[j] || fb0[j] != qn.Layers[0].FBias[j] {
			t.Fatal("Refold after the final epoch is not idempotent")
		}
	}

	// The pair stays bound after the run: pushing a different BN state
	// onto the float side propagates through the next Refold.
	if err := nn.CaptureBN(r.base).ApplyTo(adapted); err != nil {
		t.Fatal(err)
	}
	qn.Refold()
	changed := false
	for j := range mul0 {
		if qn.Layers[0].Mul[j] != mul0[j] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("Refold did not pick up BN state applied to the float side")
	}
}

// TestAdaptQuantizedPropagatesErrors checks that float-side adaptation
// failures surface instead of returning a half-built quantized model.
func TestAdaptQuantizedPropagatesErrors(t *testing.T) {
	r := getRig(t)
	if _, _, err := AdaptQuantized(context.Background(), r.base, nil, Config{}); err == nil {
		t.Fatal("nil samples must error")
	}
	if _, _, err := AdaptQuantized(context.Background(), r.base, r.valX, Config{Method: MEMO}); err == nil {
		t.Fatal("MEMO without augment must error")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := AdaptQuantized(ctx, r.base, r.valX, Config{}); err == nil {
		t.Fatal("cancelled context must error")
	}
}
