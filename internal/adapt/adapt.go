// Package adapt implements Nazar's self-supervised model adaptation
// (§3.4): TENT entropy minimization (Eq. 2) and MEMO marginal-entropy
// minimization (Eq. 3), both restricted to batch-norm parameters, plus
// the by-cause adaptation manager that produces one deployable "BN
// version" per root cause and the adapt-all baseline the paper compares
// against.
package adapt

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"
	"sync"
	"time"

	"nazar/internal/nn"
	"nazar/internal/rca"
	"nazar/internal/tensor"
)

// Method selects the self-supervised objective.
type Method string

const (
	// TENT minimizes prediction entropy over batches (the paper's
	// default — it "largely outperforms MEMO in both strategies").
	TENT Method = "tent"
	// MEMO minimizes the marginal entropy over augmented copies of
	// each input.
	MEMO Method = "memo"
)

// AugmentFunc produces a randomly augmented copy of an input (used by
// MEMO; imagesim.World.Augment satisfies it).
type AugmentFunc func(x []float64, rng *rand.Rand) []float64

// Config controls one adaptation run.
type Config struct {
	Method Method
	// LR is the Adam learning rate over the BN affine parameters.
	LR float64
	// Epochs is the number of passes over the sample pool.
	Epochs int
	// BatchSize is the adaptation batch size (TENT needs > 1 so the
	// entropy objective cannot collapse per-sample).
	BatchSize int
	// MaxBatchesPerEpoch caps work per epoch (0 = no cap).
	MaxBatchesPerEpoch int
	// MinSteps extends the number of epochs so at least this many
	// optimizer steps run even when the sample pool is small (a window
	// may only collect a few dozen uploads per cause).
	MinSteps int
	// Augmentations is the number of MEMO copies per input.
	Augmentations int
	// Augment is required for MEMO.
	Augment AugmentFunc
	// EntropyFilter, when positive, skips samples whose prediction
	// entropy exceeds EntropyFilter·ln(C) during TENT (an EATA-style
	// reliability filter: very-high-entropy samples carry noisy
	// gradients). 0 disables filtering.
	EntropyFilter float64
	// AfterEpoch, when set, runs at the end of every adaptation epoch
	// with the in-training clone — the hook the quantized execution
	// mode uses to re-fold updated BN state into the int8 serving form
	// after each round (see AdaptQuantized). The network passed in is
	// live training state: read it, don't keep it.
	AfterEpoch func(net *nn.Network, epoch int)
	Rng        *rand.Rand
}

// DefaultConfig returns calibrated TENT defaults.
func DefaultConfig() Config {
	return Config{Method: TENT, LR: 0.005, Epochs: 3, BatchSize: 64, Augmentations: 8}
}

func (c Config) withDefaults() Config {
	if c.Method == "" {
		c.Method = TENT
	}
	if c.LR <= 0 {
		c.LR = 0.005
	}
	if c.Epochs <= 0 {
		c.Epochs = 3
	}
	if c.BatchSize <= 1 {
		c.BatchSize = 64
	}
	if c.Augmentations <= 1 {
		c.Augmentations = 8
	}
	if c.Rng == nil {
		c.Rng = tensor.NewRand(0xADA, 1)
	}
	return c
}

// Adapt clones base, freezes everything except batch-norm γ/β, runs the
// configured self-supervised objective over the unlabeled samples, and
// returns the adapted clone. The base network is never mutated.
func Adapt(base *nn.Network, samples *tensor.Matrix, cfg Config) (*nn.Network, error) {
	return AdaptContext(context.Background(), base, samples, cfg)
}

// AdaptContext is Adapt with cooperative cancellation: the context is
// checked before every optimizer step, so a cancelled window abandons the
// (minutes-long, §5.8) adaptation stage after at most one batch.
func AdaptContext(ctx context.Context, base *nn.Network, samples *tensor.Matrix, cfg Config) (*nn.Network, error) {
	cfg = cfg.withDefaults()
	if samples == nil || samples.Rows == 0 {
		return nil, fmt.Errorf("adapt: no samples to adapt on")
	}
	if cfg.Method == MEMO && cfg.Augment == nil {
		return nil, fmt.Errorf("adapt: MEMO requires an augmentation function")
	}
	net := base.Clone()
	net.FreezeExceptBN()
	opt := nn.NewAdam(cfg.LR)
	// Step buffers (batch, MEMO copies, loss gradient, filter probs) are
	// reused for the whole run; shapes only change on the final partial
	// batch.
	var run runner

	n := samples.Rows
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	epochs := cfg.Epochs
	if cfg.MinSteps > 0 {
		stepsPerEpoch := (n + cfg.BatchSize - 1) / cfg.BatchSize
		if cfg.MaxBatchesPerEpoch > 0 && stepsPerEpoch > cfg.MaxBatchesPerEpoch {
			stepsPerEpoch = cfg.MaxBatchesPerEpoch
		}
		if need := (cfg.MinSteps + stepsPerEpoch - 1) / stepsPerEpoch; need > epochs {
			epochs = need
		}
	}
	for epoch := 0; epoch < epochs; epoch++ {
		cfg.Rng.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		batches := 0
		for s := 0; s < n; s += cfg.BatchSize {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if cfg.MaxBatchesPerEpoch > 0 && batches >= cfg.MaxBatchesPerEpoch {
				break
			}
			e := min(s+cfg.BatchSize, n)
			if e-s < 2 && cfg.Method == TENT {
				break // a singleton TENT batch has a degenerate objective
			}
			batch := run.gatherRows(samples, idx[s:e])
			switch cfg.Method {
			case TENT:
				net.ZeroGrads()
				logits := net.Forward(batch, nn.Adapt)
				_, dlogits := nn.EntropyInto(&run.dlogits, logits)
				if cfg.EntropyFilter > 0 {
					run.zeroUnreliableRows(logits, dlogits, cfg.EntropyFilter)
				}
				net.Backward(dlogits)
				opt.Step(net.Params())
			case MEMO:
				// TENT-style batching (§3.4): augment every input in
				// the batch so BN statistics come from the whole
				// augmented batch, then minimize the per-input
				// marginal entropy.
				copies := run.copies.Reshape(batch.Rows*cfg.Augmentations, batch.Cols)
				for r := 0; r < batch.Rows; r++ {
					for a := 0; a < cfg.Augmentations; a++ {
						copy(copies.Row(r*cfg.Augmentations+a), cfg.Augment(batch.Row(r), cfg.Rng))
					}
				}
				net.ZeroGrads()
				logits := net.Forward(copies, nn.Adapt)
				_, dlogits := nn.GroupedMarginalEntropyInto(&run.dlogits, logits, cfg.Augmentations)
				net.Backward(dlogits)
				opt.Step(net.Params())
			default:
				return nil, fmt.Errorf("adapt: unknown method %q", cfg.Method)
			}
			batches++
		}
		if cfg.AfterEpoch != nil {
			cfg.AfterEpoch(net, epoch)
		}
	}
	net.UnfreezeAll()
	return net, nil
}

// AdaptQuantized runs AdaptContext on the float side while keeping an
// int8 serving form current throughout: after the first epoch it builds
// a QuantizedNetwork from the in-training clone (calibrating activation
// scales on the adaptation samples — the drifted distribution the model
// is being adapted toward), and after every subsequent epoch it re-folds
// the updated BN γ/β into the quantized requantization epilogues. The
// packed int8 weight codes never change — TENT freezes everything except
// BN, so only the per-channel Mul/FBias epilogues move — and serving can
// stay on the returned quantized form for the whole run: it never leaves
// int8. The returned pair is bound: later BN edits to the float network
// (e.g. applying a newer BNSnapshot) propagate with qn.Refold().
func AdaptQuantized(ctx context.Context, base *nn.Network, samples *tensor.Matrix, cfg Config) (*nn.Network, *nn.QuantizedNetwork, error) {
	var qn *nn.QuantizedNetwork
	var qerr error
	inner := cfg.AfterEpoch
	cfg.AfterEpoch = func(net *nn.Network, epoch int) {
		if qerr == nil {
			if qn == nil {
				qn, qerr = nn.QuantizeInt8(net, samples)
			} else {
				qn.Refold()
			}
		}
		if inner != nil {
			inner(net, epoch)
		}
	}
	net, err := AdaptContext(ctx, base, samples, cfg)
	if err != nil {
		return nil, nil, err
	}
	if qerr != nil {
		return nil, nil, fmt.Errorf("adapt: quantize during adaptation: %w", qerr)
	}
	return net, qn, nil
}

// runner owns the per-step scratch of one adaptation run: the gathered
// batch, the MEMO augmented-copies matrix, the loss gradient, and the
// softmax scratch of the reliability filter. A zero runner is ready to
// use; buffers grow to the largest shape seen and are reused across
// every optimizer step, so steady-state adaptation does not allocate
// (pinned by TestAdaptSteadyStateAllocs).
type runner struct {
	batch, copies, dlogits tensor.Matrix
	probs                  []float64
}

// zeroUnreliableRows zeroes the gradient rows of samples whose prediction
// entropy exceeds frac·ln(C) — they still contribute to the BN batch
// statistics but not to the γ/β update.
func (run *runner) zeroUnreliableRows(logits, grad *tensor.Matrix, frac float64) {
	limit := frac * math.Log(float64(logits.Cols))
	if cap(run.probs) < logits.Cols {
		run.probs = make([]float64, logits.Cols)
	}
	probs := run.probs[:logits.Cols]
	for i := 0; i < logits.Rows; i++ {
		p := tensor.SoftmaxTo(probs, logits.Row(i))
		if nn.EntropyOf(p) > limit {
			g := grad.Row(i)
			for j := range g {
				g[j] = 0
			}
		}
	}
}

// gatherRows copies the selected rows of m into the runner's reused
// batch buffer.
func (run *runner) gatherRows(m *tensor.Matrix, sel []int) *tensor.Matrix {
	out := run.batch.Reshape(len(sel), m.Cols)
	for i, r := range sel {
		copy(out.Row(i), m.Row(r))
	}
	return out
}

// BNVersion is the deployable adaptation artifact: the batch-norm state
// of an adapted model tagged with the root cause it was adapted to. Only
// this (not the full model) is shipped to devices.
type BNVersion struct {
	ID        string
	Cause     rca.Cause // empty Items = the continuously-adapted clean model
	Snapshot  *nn.BNSnapshot
	CreatedAt time.Time
}

// SizeBytes returns the wire size of the version's BN payload.
func (v BNVersion) SizeBytes() int { return v.Snapshot.SizeBytes() }

// IsClean reports whether this is the clean (no-cause) model version.
func (v BNVersion) IsClean() bool { return len(v.Cause.Items) == 0 }

// SampleSource supplies the unlabeled uploaded samples associated with a
// root cause (nil/empty matrix when none were collected).
type SampleSource func(c rca.Cause) *tensor.Matrix

// ByCause produces one BN version per cause by adapting a clone of base
// on that cause's samples (Nazar's core adaptation strategy). Causes with
// fewer than minSamples uploads are skipped: adaptation on a handful of
// images underfits.
//
// Causes adapt concurrently over a bounded worker pool (at most
// tensor.Workers() runs in flight) — each run clones the base and they
// share no state (§5.8: "model adaptation can be easily parallelized").
// Each cause gets its own deterministic RNG derived from cfg.Rng's first
// draw and the cause key, and results land in index-addressed slots, so
// the output is identical at any pool width.
func ByCause(base *nn.Network, causes []rca.Cause, samples SampleSource, minSamples int, cfg Config, now time.Time) ([]BNVersion, error) {
	return ByCauseContext(context.Background(), base, causes, samples, minSamples, cfg, now)
}

// ByCauseContext is ByCause with cooperative cancellation: no new cause
// run is launched after the context is cancelled, and in-flight runs
// abort at their next optimizer step. A cancelled call returns ctx.Err()
// and no versions.
func ByCauseContext(ctx context.Context, base *nn.Network, causes []rca.Cause, samples SampleSource, minSamples int, cfg Config, now time.Time) ([]BNVersion, error) {
	if minSamples < 2 {
		minSamples = 2
	}
	cfg = cfg.withDefaults()
	baseSeed := cfg.Rng.Uint64()

	type slot struct {
		version BNVersion
		err     error
		ok      bool
	}
	slots := make([]slot, len(causes))
	sem := make(chan struct{}, tensor.Workers())
	var wg sync.WaitGroup
	for i, c := range causes {
		if ctx.Err() != nil {
			break
		}
		sx := samples(c)
		if sx == nil || sx.Rows < minSamples {
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, c rca.Cause, sx *tensor.Matrix) {
			defer wg.Done()
			defer func() { <-sem }()
			causeCfg := cfg
			causeCfg.Rng = tensor.NewRand(baseSeed^hashKey(c.Key()), uint64(i)+1)
			adapted, err := AdaptContext(ctx, base, sx, causeCfg)
			if err != nil {
				slots[i] = slot{err: fmt.Errorf("adapt: cause %s: %w", c, err)}
				return
			}
			slots[i] = slot{
				version: BNVersion{
					ID:        fmt.Sprintf("%s@%d#%d", c.Key(), now.Unix(), i),
					Cause:     c,
					Snapshot:  nn.CaptureBN(adapted),
					CreatedAt: now,
				},
				ok: true,
			}
		}(i, c, sx)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var versions []BNVersion
	for _, s := range slots {
		if s.err != nil {
			return nil, s.err
		}
		if s.ok {
			versions = append(versions, s.version)
		}
	}
	return versions, nil
}

// hashKey derives a stable seed from a cause key.
func hashKey(s string) uint64 {
	h := uint64(1469598103934665603)
	for _, b := range []byte(s) {
		h = (h ^ uint64(b)) * 1099511628211
	}
	return h
}

// All adapts a single model on the pooled samples of every cause — the
// adapt-all baseline (what Ekya-style systems and plain TENT deployments
// do). Returns the adapted network.
func All(base *nn.Network, samples *tensor.Matrix, cfg Config) (*nn.Network, error) {
	return Adapt(base, samples, cfg)
}

// Materialize instantiates a runnable model from a base network and a BN
// version.
func Materialize(base *nn.Network, v BNVersion) (*nn.Network, error) {
	net := base.Clone()
	if err := v.Snapshot.ApplyTo(net); err != nil {
		return nil, fmt.Errorf("adapt: materialize %s: %w", v.ID, err)
	}
	return net, nil
}
