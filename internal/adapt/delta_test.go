package adapt

import (
	"math"
	"testing"

	"nazar/internal/imagesim"
	"nazar/internal/nn"
	"nazar/internal/tensor"
)

func TestDeltaRoundTripAccuracy(t *testing.T) {
	r := getRig(t)
	rng := tensor.NewRand(40, 40)
	foggy := r.world.CorruptBatch(r.trainX, imagesim.Fog, imagesim.DefaultSeverity, rng)
	adapted, err := Adapt(r.base, foggy, Config{Rng: rng, Epochs: 1, MinSteps: 15})
	if err != nil {
		t.Fatal(err)
	}
	ref := nn.CaptureBN(r.base)
	target := nn.CaptureBN(adapted)

	delta, err := DiffBN(ref, target)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := delta.Apply(ref)
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruction error is bounded by half a quantization step.
	for li := range target.Layers {
		scale := delta.Layers[li].GammaScale
		for j := range target.Layers[li].Gamma {
			diff := math.Abs(rebuilt.Layers[li].Gamma[j] - target.Layers[li].Gamma[j])
			if diff > scale*0.51+1e-15 {
				t.Fatalf("layer %d gamma %d: error %v > half-step %v", li, j, diff, scale/2)
			}
		}
	}
	// The reconstructed model must match the adapted model's accuracy.
	foggyTest := r.world.CorruptBatch(r.valX, imagesim.Fog, imagesim.DefaultSeverity, rng)
	exact := adapted.Accuracy(foggyTest, r.valY)
	reModel := r.base.Clone()
	if err := rebuilt.ApplyTo(reModel); err != nil {
		t.Fatal(err)
	}
	approx := reModel.Accuracy(foggyTest, r.valY)
	if math.Abs(exact-approx) > 0.02 {
		t.Fatalf("delta reconstruction changed accuracy: %v vs %v", exact, approx)
	}
}

func TestDeltaSmallerThanSnapshot(t *testing.T) {
	r := getRig(t)
	rng := tensor.NewRand(41, 41)
	foggy := r.world.CorruptBatch(r.trainX, imagesim.Fog, imagesim.DefaultSeverity, rng)
	adapted, err := Adapt(r.base, foggy, Config{Rng: rng, Epochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	ref := nn.CaptureBN(r.base)
	target := nn.CaptureBN(adapted)
	delta, err := DiffBN(ref, target)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(target.SizeBytes()) / float64(delta.SizeBytes()); ratio < 3 {
		t.Fatalf("delta only %vx smaller than full snapshot", ratio)
	}
	// And it survives the wire.
	data, err := delta.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeBNDelta(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := back.Apply(ref); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaTamperDetection(t *testing.T) {
	r := getRig(t)
	ref := nn.CaptureBN(r.base)
	// Identity delta (target == ref).
	delta, err := DiffBN(ref, ref)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := delta.Apply(ref); err != nil {
		t.Fatal(err)
	}
	delta.Layers[0].GammaQ[0] += 7 // tamper
	if _, err := delta.Apply(ref); err == nil {
		t.Fatal("tampered delta must be rejected")
	}
}

func TestDeltaShapeValidation(t *testing.T) {
	r := getRig(t)
	ref := nn.CaptureBN(r.base)
	other := nn.CaptureBN(nn.NewClassifier(nn.ArchResNet18, r.world.Dim(), 3, tensor.NewRand(1, 1)))
	if _, err := DiffBN(ref, other); err == nil {
		t.Fatal("layer-count mismatch must error")
	}
	delta, err := DiffBN(other, other)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := delta.Apply(ref); err == nil {
		t.Fatal("applying to the wrong reference must error")
	}
}

func TestDeltaVariancePositivity(t *testing.T) {
	r := getRig(t)
	ref := nn.CaptureBN(r.base)
	target := nn.CaptureBN(r.base)
	// Force a near-zero variance in the target.
	target.Layers[0].RunVar[0] = 1e-15
	delta, err := DiffBN(ref, target)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := delta.Apply(ref)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rebuilt.Layers[0].RunVar {
		if v <= 0 {
			t.Fatalf("non-positive reconstructed variance %v", v)
		}
	}
}

func BenchmarkDeltaSizeChain(b *testing.B) {
	// The per-adaptation wire-size chain: full model -> BN snapshot ->
	// quantized delta.
	world := imagesim.NewWorld(imagesim.DefaultConfig(12, 321))
	rng := tensor.NewRand(321, 1)
	base := nn.NewClassifier(nn.ArchResNet50, world.Dim(), 12, rng)
	x := tensor.New(128, world.Dim())
	for i := 0; i < x.Rows; i++ {
		copy(x.Row(i), world.Corrupt(world.Sample(i%12, rng), imagesim.Fog, 3, rng))
	}
	adapted, err := Adapt(base, x, Config{Rng: rng, Epochs: 1})
	if err != nil {
		b.Fatal(err)
	}
	ref := nn.CaptureBN(base)
	target := nn.CaptureBN(adapted)
	b.ResetTimer()
	var delta *BNDelta
	for i := 0; i < b.N; i++ {
		delta, err = DiffBN(ref, target)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := delta.Apply(ref); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(base.SizeBytes()), "model-bytes")
	b.ReportMetric(float64(target.SizeBytes()), "snapshot-bytes")
	b.ReportMetric(float64(delta.SizeBytes()), "delta-bytes")
}
