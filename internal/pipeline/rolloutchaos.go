package pipeline

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"time"

	"nazar/internal/cloud"
	"nazar/internal/driftlog"
	"nazar/internal/faultinject"
	"nazar/internal/httpapi"
	"nazar/internal/nn"
	"nazar/internal/obs"
	"nazar/internal/tensor"
	"nazar/internal/transport"
	"nazar/internal/weather"
)

// RolloutChaosConfig parameterizes the staged-rollout chaos harness: a
// fleet streams scored inferences through a fault-injected wire while
// the cloud.Rollout control plane ramps a candidate version; the
// harness audits both the delivery invariant (lost_acked == 0) and the
// control-plane invariant (a regressed candidate is rolled back before
// the ramp exceeds its ceiling).
type RolloutChaosConfig struct {
	// FaultRate is the per-request fault probability on the wire.
	FaultRate float64
	// Devices is the fleet size (default 200 — large enough that even
	// the first ramp step holds a statistically useful canary cohort).
	Devices int
	// PerDevice is entries per device per window (default 10).
	PerDevice int
	// Windows bounds the run (default 8).
	Windows int
	// Seed drives the fault injector, transport jitter and accuracy draws.
	Seed uint64
	// Plan is the rollout under test.
	Plan cloud.RolloutPlan
	// CanaryDelta is the candidate's true accuracy delta versus
	// BaseAccuracy (negative = the regressed build the guards must catch).
	CanaryDelta float64
	// BaseAccuracy is the baseline version's accuracy (default 0.9).
	BaseAccuracy float64
	// Observe registers nazar_rollout_* metrics and scrapes GET /metrics
	// through the faulty wire at the end of the run.
	Observe bool
}

func (c RolloutChaosConfig) withDefaults() RolloutChaosConfig {
	if c.Devices <= 0 {
		c.Devices = 200
	}
	if c.PerDevice <= 0 {
		c.PerDevice = 10
	}
	if c.Windows <= 0 {
		c.Windows = 8
	}
	if c.BaseAccuracy == 0 {
		c.BaseAccuracy = 0.9
	}
	return c
}

// RolloutChaosResult is the harness verdict.
type RolloutChaosResult struct {
	FaultRate  float64 `json:"fault_rate"`
	Streamed   int     `json:"streamed"`
	Acked      int     `json:"acked"`
	Delivered  int     `json:"delivered"`
	Duplicates int     `json:"duplicates"`
	// LostAcked is the delivery invariant: always zero.
	LostAcked int `json:"lost_acked"`
	// MaxPercent is the widest the ramp ever got — the blast radius.
	MaxPercent float64 `json:"max_percent"`
	// FinalState and RollbackWindow are the control plane's verdict.
	FinalState     string   `json:"final_state"`
	FinalPercent   float64  `json:"final_percent"`
	RollbackWindow int      `json:"rollback_window"`
	Decisions      []string `json:"decisions"`
	// RolloutMetrics holds the nazar_rollout_* exposition lines scraped
	// over the faulty wire (Observe only).
	RolloutMetrics []string `json:"rollout_metrics,omitempty"`
}

// Per-entry attributes the harness stamps so the cloud-side audit can
// reconstruct cohort statistics from the drift log alone.
const (
	rolloutAttrWindow  = "rollout_window"
	rolloutAttrCorrect = "rollout_ok"
)

// RunRolloutChaos ramps cfg.Plan's candidate over a fleet streaming
// through fault-injected HTTP. Every window, each device asks the
// control plane which version it serves (sticky assignment), streams
// entries whose correctness reflects that version's true accuracy, and
// the harness then scores the canary against the control cohort *from
// the entries that reached the cloud log* — exactly the evidence a real
// control plane would have — and feeds the verdict to Rollout.Observe.
func RunRolloutChaos(cfg RolloutChaosConfig) (*RolloutChaosResult, error) {
	cfg = cfg.withDefaults()
	sched := faultinject.Preset(cfg.FaultRate)
	sched.LatencyDur = time.Millisecond

	base := nn.NewClassifier(nn.ArchResNet18, 8, 2, tensor.NewRand(cfg.Seed, 1))
	reg := obs.NewRegistry()
	svcOpts := []httpapi.ServerOption{}
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	svcOpts = append(svcOpts, httpapi.WithLogger(quiet))
	if cfg.Observe {
		svcOpts = append(svcOpts, httpapi.WithRegistry(reg))
	}
	svc := cloud.NewService(base, cloud.DefaultConfig())

	rOpts := []cloud.RolloutOption{}
	if cfg.Observe {
		rOpts = append(rOpts, cloud.WithRolloutObserver(reg))
	}
	rollout, err := cloud.NewRollout(cfg.Plan, rOpts...)
	if err != nil {
		return nil, fmt.Errorf("rollout chaos: %w", err)
	}
	candidate := rollout.Plan().Candidate

	injector := faultinject.New(faultinject.Config{Seed: cfg.Seed, Schedule: sched})
	ts := httptest.NewServer(injector.Middleware()(httpapi.NewServer(svc, svcOpts...)))
	defer ts.Close()

	ackedSeqs := map[string]int{}
	client := transport.NewClient(ts.URL, transport.WithConfig(transport.Config{
		MaxBatch:       8,
		FlushInterval:  time.Hour, // explicit Flush only
		RequestTimeout: 2 * time.Second,
		MaxAttempts:    10,
		SpoolCapacity:  cfg.Devices * cfg.PerDevice * cfg.Windows,
		Backoff:        transport.BackoffConfig{Base: time.Millisecond, Max: 4 * time.Millisecond},
		Breaker:        transport.BreakerConfig{Threshold: 5, Cooldown: 2 * time.Millisecond},
		Seed:           cfg.Seed,
		Name:           fmt.Sprintf("rollout_chaos_%d", cfg.Seed),
		Logger:         quiet,
		Sleep:          cappedSleep(5 * time.Millisecond),
		OnAck: func(entries []driftlog.Entry) {
			for _, e := range entries {
				ackedSeqs[e.Attrs[chaosAttrSeq]]++
			}
		},
	}))

	res := &RolloutChaosResult{FaultRate: sched.FaultRate()}
	rng := tensor.NewRand(cfg.Seed, 0x5011)
	start := weather.Day(0)
	ctx := context.Background()
	seq := 0
	res.MaxPercent = rollout.Percent()

	for w := 0; w < cfg.Windows; w++ {
		for i := 0; i < cfg.Devices; i++ {
			id := fmt.Sprintf("rc_dev_%d", i)
			version := rollout.Assign(id)
			acc := cfg.BaseAccuracy
			if version == candidate {
				acc += cfg.CanaryDelta
			}
			for j := 0; j < cfg.PerDevice; j++ {
				correct := rng.Float64() < acc
				entry := driftlog.Entry{
					Time: start.Add(time.Duration(w*cfg.PerDevice+j) * time.Minute),
					Attrs: map[string]string{
						driftlog.AttrDevice: id,
						driftlog.AttrModel:  version,
						chaosAttrSeq:        strconv.Itoa(seq),
						rolloutAttrWindow:   strconv.Itoa(w),
						rolloutAttrCorrect:  boolAttr(correct),
					},
					Drift:    !correct, // detector fires on the regression
					SampleID: -1,
				}
				seq++
				res.Streamed++
				if err := client.Report(entry, nil); err != nil {
					return nil, fmt.Errorf("rollout chaos: report: %w", err)
				}
			}
		}
		if err := client.Flush(ctx); err != nil {
			return nil, fmt.Errorf("rollout chaos: window %d flush: %w", w, err)
		}
		// Score the window from what actually reached the cloud log —
		// deduped, because the wire is at-least-once.
		canary, control := windowStats(svc, candidate, w)
		rollout.Observe(canary, control)
		if pct := rollout.Percent(); pct > res.MaxPercent {
			res.MaxPercent = pct
		}
	}

	cctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := client.Close(cctx); err != nil {
		return nil, fmt.Errorf("rollout chaos: close: %w", err)
	}

	// Delivery audit, identical in spirit to RunChaos: acked ⊆ logged.
	st := client.Stats()
	res.Acked = int(st.Acked)
	present := map[string]int{}
	svc.Log().Each(func(_ int, e driftlog.Entry) {
		if s, ok := e.Attrs[chaosAttrSeq]; ok {
			present[s]++
		}
	})
	res.Delivered = len(present)
	for _, n := range present {
		res.Duplicates += n - 1
	}
	for s := range ackedSeqs {
		if present[s] == 0 {
			res.LostAcked++
		}
	}

	status := rollout.Status()
	res.FinalState = string(status.State)
	res.FinalPercent = rollout.Percent()
	res.RollbackWindow = status.RollbackWindow
	for _, d := range status.Decisions {
		res.Decisions = append(res.Decisions, string(d))
	}

	if cfg.Observe {
		lines, err := scrapeRolloutMetrics(ts.URL)
		if err != nil {
			return nil, fmt.Errorf("rollout chaos: metrics scrape: %w", err)
		}
		res.RolloutMetrics = lines
	}
	return res, nil
}

// windowStats reconstructs the canary and control cohort statistics for
// window w from the cloud's drift log, deduplicating retried entries by
// their sequence attribute.
func windowStats(svc *cloud.Service, candidate string, w int) (canary, control cloud.CohortStats) {
	want := strconv.Itoa(w)
	seen := map[string]bool{}
	svc.Log().Each(func(_ int, e driftlog.Entry) {
		if e.Attrs[rolloutAttrWindow] != want {
			return
		}
		seq := e.Attrs[chaosAttrSeq]
		if seen[seq] {
			return
		}
		seen[seq] = true
		s := cloud.CohortStats{Total: 1}
		if e.Attrs[rolloutAttrCorrect] == "1" {
			s.Correct = 1
		}
		if e.Drift {
			s.DriftFlagged = 1
		}
		if e.Attrs[driftlog.AttrModel] == candidate {
			canary = canary.Add(s)
		} else {
			control = control.Add(s)
		}
	})
	return canary, control
}

// scrapeRolloutMetrics pulls GET /metrics (through the same faulty
// wire, retrying a few times) and returns the nazar_rollout_* lines.
func scrapeRolloutMetrics(url string) ([]string, error) {
	var lastErr error
	for attempt := 0; attempt < 10; attempt++ {
		resp, err := http.Get(url + "/metrics")
		if err != nil {
			lastErr = err
			continue
		}
		body, err := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			lastErr = fmt.Errorf("status %d err %v", resp.StatusCode, err)
			continue
		}
		var lines []string
		for _, line := range strings.Split(string(body), "\n") {
			if strings.HasPrefix(line, "nazar_rollout_") {
				lines = append(lines, line)
			}
		}
		return lines, nil
	}
	return nil, lastErr
}

func boolAttr(b bool) string {
	if b {
		return "1"
	}
	return "0"
}
