// Package pipeline runs the paper's end-to-end streaming workloads
// (§5.7): a fleet of simulated devices streams time-ordered inferences
// under historical-weather drift while the cloud periodically analyzes
// the drift log and deploys by-cause adaptations. Three strategies are
// supported — Nazar, adapt-all (the Ekya-style baseline) and no-adapt —
// and the per-window metrics behind Figures 8 and 9 are collected.
package pipeline

import (
	"fmt"
	"time"

	"nazar/internal/adapt"
	"nazar/internal/cloud"
	"nazar/internal/dataset"
	"nazar/internal/detect"
	"nazar/internal/device"
	"nazar/internal/driftlog"
	"nazar/internal/federated"
	"nazar/internal/imagesim"
	"nazar/internal/metrics"
	"nazar/internal/nn"
	"nazar/internal/obs"
	"nazar/internal/rca"
	"nazar/internal/tensor"
	"nazar/internal/weather"
)

// Strategy selects how (and whether) models adapt over the run.
type Strategy string

const (
	// Nazar is the full system: detection → RCA → by-cause adaptation.
	Nazar Strategy = "nazar"
	// AdaptAll continuously adapts one model on all sampled input each
	// window (the baseline used by Ekya-style systems).
	AdaptAll Strategy = "adapt-all"
	// NoAdapt never adapts the pretrained model.
	NoAdapt Strategy = "no-adapt"
	// AdaptDrifted continuously adapts one model on only the samples
	// whose on-device drift flag was true. The paper evaluated this
	// variant and found it always worse than adapt-all (§5.2,
	// "Baselines"), so it is not in the headline charts.
	AdaptDrifted Strategy = "adapt-drifted"
	// FederatedNazar is the §6 future-work variant: detection and
	// root-cause analysis run exactly as in Nazar, but no input ever
	// leaves a device — each device adapts its BN parameters locally on
	// its cause-matching buffer and the cloud aggregates the per-device
	// states into one version per cause.
	FederatedNazar Strategy = "nazar-federated"
)

// Strategies lists the three compared strategies.
var Strategies = []Strategy{NoAdapt, AdaptAll, Nazar}

// Config parameterizes one end-to-end run.
type Config struct {
	Strategy Strategy
	// Windows is the number of adaptation intervals the evaluation
	// calendar is split into (paper default 8).
	Windows int
	// Severity is the weather-drift corruption severity (paper default
	// 3).
	Severity int
	// SampleRate is the device upload fraction.
	SampleRate float64
	// DetectorThreshold is the on-device MSP threshold. The paper's
	// default is 0.9; our synthetic substrate's confidence distribution
	// is right-shifted (clean median MSP ≈ 0.995), so the equivalent
	// operating point is 0.95 — the same threshold the paper uses for
	// its real-rain detection experiment.
	DetectorThreshold float64
	// PoolCapacity caps per-device versions (0 = unlimited).
	PoolCapacity int
	// Cloud configures the Nazar cloud service (ignored by baselines).
	Cloud cloud.Config
	// CumulativeAnalysis analyzes the drift log from the start of the
	// deployment each cycle (samples accumulate per cause), rather
	// than only the most recent window.
	CumulativeAnalysis bool
	// FaultyDeviceFraction gives each device that probability of a
	// persistent sensor defect (the paper's hardware drift source: a
	// bad camera/lens on specific devices). Faulty devices' inputs are
	// additionally distorted by their device-specific defect at
	// FaultSeverity.
	FaultyDeviceFraction float64
	// FaultSeverity is the defect severity (default 3).
	FaultSeverity int
	// Weather, when non-nil, replaces the seeded synthetic generator —
	// e.g. weather.Records loaded from a historical CSV.
	Weather weather.Source
	// Observer, when non-nil, instruments the run: the cloud service's
	// counters/histograms and a fleet-wide device instrument set are
	// registered on it (expose it with obs.Registry.Handler or snapshot
	// it with WritePrometheus after the run).
	Observer *obs.Registry
	// Quantized serves every on-device inference through the int8 fast
	// path: each device quantizes the models its pool selects (weights
	// to per-channel int8, BN folded into the requantization scales)
	// and runs prediction, MSP scoring, and drift detection on the
	// quantized logits. Activation calibration uses a slice of the
	// clean training split.
	Quantized bool
	// QuantShadowEvery, in quantized mode, makes every device also run
	// the float model on every Nth inference and count drift-verdict
	// disagreements (surfaced as nazar_quant_shadow_total on the
	// Observer). 0 disables shadowing.
	QuantShadowEvery int
	// RetireAfter evicts a device's version when its cause has been
	// absent from the last N analyses (0 — the default — disables
	// retirement). Enable it when early windows can diagnose confounded
	// causes (e.g. a device-ID cause under a blanket weather event)
	// whose stale versions would keep capturing that device's traffic;
	// under stable cause sets it only churns versions (see the
	// retirement tests).
	RetireAfter int
	Seed        uint64
}

// DefaultConfig returns the paper-default end-to-end configuration.
func DefaultConfig(strategy Strategy, seed uint64) Config {
	c := cloud.DefaultConfig()
	c.MinSamplesPerCause = 12
	c.AdaptCfg.Epochs = 2
	return Config{
		Strategy:           strategy,
		Windows:            8,
		Severity:           imagesim.DefaultSeverity,
		SampleRate:         0.5,
		DetectorThreshold:  0.95,
		Cloud:              c,
		CumulativeAnalysis: true,
		Seed:               seed,
	}
}

// WindowStats are the per-window measurements.
type WindowStats struct {
	AccAll, AccDrift       float64
	NAll, NDrift           int
	DetectionRate          float64
	VersionCount           int
	Causes                 []string
	RCADuration            time.Duration
	AdaptDuration          time.Duration
	CumAccAll, CumAccDrift float64
}

// Result aggregates a full run.
type Result struct {
	Strategy Strategy
	Windows  []WindowStats
	// PerDrift aggregates accuracy by weather drift type across the
	// whole run.
	PerDrift map[imagesim.Corruption]*metrics.RunningAccuracy
	// FaultyDevices lists devices assigned a sensor defect.
	FaultyDevices []string
	// FaultyAcc / HealthyAcc aggregate accuracy on faulty vs healthy
	// devices across the run (only meaningful with faults enabled).
	FaultyAcc, HealthyAcc metrics.RunningAccuracy
}

// AvgAccLast returns the mean per-window accuracy (all data) over the
// last n windows — Fig. 8a averages the last 7.
func (r *Result) AvgAccLast(n int) (mean, std float64) {
	vals := lastVals(r.Windows, n, func(w WindowStats) float64 { return w.AccAll })
	return metrics.Mean(vals), metrics.Std(vals)
}

// AvgDriftAccLast is AvgAccLast over drifted data only.
func (r *Result) AvgDriftAccLast(n int) (mean, std float64) {
	var vals []float64
	for _, w := range lastWindows(r.Windows, n) {
		if w.NDrift > 0 {
			vals = append(vals, w.AccDrift)
		}
	}
	return metrics.Mean(vals), metrics.Std(vals)
}

func lastWindows(ws []WindowStats, n int) []WindowStats {
	if n >= len(ws) {
		return ws
	}
	return ws[len(ws)-n:]
}

func lastVals(ws []WindowStats, n int, f func(WindowStats) float64) []float64 {
	sel := lastWindows(ws, n)
	vals := make([]float64, len(sel))
	for i, w := range sel {
		vals[i] = f(w)
	}
	return vals
}

// conditionCorruption maps a weather condition to its drift operator.
func conditionCorruption(c weather.Condition) (imagesim.Corruption, bool) {
	switch c {
	case weather.Rain:
		return imagesim.Rain, true
	case weather.Snow:
		return imagesim.Snow, true
	case weather.Fog:
		return imagesim.Fog, true
	default:
		return "", false
	}
}

// Run executes the workload on the dataset with the given pretrained base
// model.
func Run(ds *dataset.Dataset, base *nn.Network, cfg Config) (*Result, error) {
	if cfg.Windows <= 0 {
		cfg.Windows = 8
	}
	if cfg.Severity <= 0 {
		cfg.Severity = imagesim.DefaultSeverity
	}
	if cfg.Strategy == "" {
		cfg.Strategy = Nazar
	}
	if cfg.DetectorThreshold <= 0 {
		cfg.DetectorThreshold = detect.DefaultMSPThreshold
	}
	rng := tensor.NewRand(cfg.Seed, 0xE2E)
	var gen weather.Source = cfg.Weather
	if gen == nil {
		gen = weather.NewGenerator(cfg.Seed)
	}
	windows := ds.WindowSlices(cfg.Windows)

	var svcOpts []cloud.Option
	var fleetMetrics *device.Metrics
	if cfg.Observer != nil {
		svcOpts = append(svcOpts, cloud.WithObserver(cfg.Observer))
		fleetMetrics = device.NewMetrics(cfg.Observer)
	}
	svc := cloud.NewService(base, cfg.Cloud, svcOpts...)

	// Quantized mode calibrates activation scales on a slice of the
	// clean training split — the same data every device's base model was
	// trained on, so the fleet shares one calibration batch.
	var calX *tensor.Matrix
	if cfg.Quantized {
		rows := min(128, ds.Train.X.Rows)
		calX = tensor.New(rows, ds.Train.X.Cols)
		copy(calX.Data, ds.Train.X.Data[:rows*ds.Train.X.Cols])
	}

	devices := map[string]*device.Device{}
	getDevice := func(id, location string) *device.Device {
		if d, ok := devices[id]; ok {
			return d
		}
		d := device.New(device.Config{
			ID:           id,
			Location:     location,
			PoolCapacity: cfg.PoolCapacity,
			SampleRate:   cfg.SampleRate,
			Detector:     detect.Threshold{Scorer: detect.MSP{}, T: cfg.DetectorThreshold},
			Metrics:      fleetMetrics,
			Quantized:    cfg.Quantized,
			Calibration:  calX,
			ShadowEvery:  cfg.QuantShadowEvery,
			Rng:          tensor.NewRand(cfg.Seed^hashString(id), 0xD),
		}, base)
		devices[id] = d
		return d
	}

	// Assign persistent sensor defects deterministically per device.
	if cfg.FaultSeverity <= 0 {
		cfg.FaultSeverity = imagesim.DefaultSeverity
	}
	isFaulty := func(deviceID string) bool {
		if cfg.FaultyDeviceFraction <= 0 {
			return false
		}
		h := hashString(deviceID) ^ cfg.Seed
		return float64(h%10000)/10000 < cfg.FaultyDeviceFraction
	}

	// adapt-all state: one continuously adapted model shared by all.
	currentAll := base
	res := &Result{
		Strategy: cfg.Strategy,
		PerDrift: map[imagesim.Corruption]*metrics.RunningAccuracy{},
	}
	faultySeen := map[string]bool{}
	causeLastSeen := map[string]int{}
	retireStale := func(w int, causes []rca.Cause) {
		for _, c := range causes {
			causeLastSeen[c.Key()] = w
		}
		if cfg.RetireAfter <= 0 {
			return
		}
		for _, d := range devices {
			for _, key := range d.Pool.CauseKeys() {
				if last, ok := causeLastSeen[key]; !ok || w-last >= cfg.RetireAfter {
					d.Pool.RemoveByCause(key)
				}
			}
		}
	}

	// Federated state: per-device retained sample buffers (devices keep
	// their recent inputs — nothing is uploaded) and the aggregation
	// coordinator. Buffers accumulate across windows up to a cap, like
	// the cloud's cumulative sample pools in centralized Nazar.
	type buffered struct {
		attrs map[string]string
		x     []float64
		drift bool
	}
	const fedBufferCap = 512
	var fedBuffers map[string][]buffered
	coord := federated.NewCoordinator()
	if cfg.Strategy == FederatedNazar {
		fedBuffers = map[string][]buffered{}
	}
	var cumAll, cumDrift metrics.RunningAccuracy
	windowSpan := weather.End.AddDate(0, 0, 1).Sub(weather.Start) / time.Duration(cfg.Windows)

	for w, items := range windows {
		var stats WindowStats
		var winAll, winDrift metrics.RunningAccuracy
		detected := 0
		var allSamples [][]float64

		for _, item := range items {
			cond, err := gen.ConditionAt(item.Location, item.Time.Truncate(24*time.Hour))
			if err != nil {
				return nil, fmt.Errorf("pipeline: weather: %w", err)
			}
			x := item.X
			corr, drifted := conditionCorruption(cond)
			if drifted {
				x = ds.World.Corrupt(x, corr, cfg.Severity, rng)
			}
			faulty := isFaulty(item.DeviceID)
			if faulty {
				if !faultySeen[item.DeviceID] {
					faultySeen[item.DeviceID] = true
					res.FaultyDevices = append(res.FaultyDevices, item.DeviceID)
				}
				x = ds.World.DeviceFault(x, item.DeviceID, cfg.FaultSeverity, rng)
			}
			dev := getDevice(item.DeviceID, item.Location)
			inf, entry, sample := dev.Infer(item.Time, x, map[string]string{
				driftlog.AttrWeather: string(cond),
			})
			correct := inf.Predicted == item.Class
			winAll.Observe(correct)
			cumAll.Observe(correct)
			if cfg.FaultyDeviceFraction > 0 {
				if faulty {
					res.FaultyAcc.Observe(correct)
				} else {
					res.HealthyAcc.Observe(correct)
				}
			}
			if drifted {
				winDrift.Observe(correct)
				cumDrift.Observe(correct)
				ra := res.PerDrift[corr]
				if ra == nil {
					ra = &metrics.RunningAccuracy{}
					res.PerDrift[corr] = ra
				}
				ra.Observe(correct)
			}
			if inf.Drift {
				detected++
			}
			switch cfg.Strategy {
			case Nazar:
				svc.Ingest(entry, sample)
			case FederatedNazar:
				// Metadata goes to the cloud; the sampled input stays
				// in the device's local buffer.
				svc.Ingest(entry, nil)
				if sample != nil {
					buf := append(fedBuffers[item.DeviceID],
						buffered{attrs: entry.Attrs, x: sample, drift: entry.Drift})
					if len(buf) > fedBufferCap {
						buf = buf[len(buf)-fedBufferCap:]
					}
					fedBuffers[item.DeviceID] = buf
				}
			case AdaptAll:
				if sample != nil {
					allSamples = append(allSamples, sample)
				}
			case AdaptDrifted:
				if sample != nil && entry.Drift {
					allSamples = append(allSamples, sample)
				}
			}
		}

		stats.AccAll = winAll.Value()
		stats.NAll = winAll.Total
		stats.AccDrift = winDrift.Value()
		stats.NDrift = winDrift.Total
		if winAll.Total > 0 {
			stats.DetectionRate = float64(detected) / float64(winAll.Total)
		}
		stats.CumAccAll = cumAll.Value()
		stats.CumAccDrift = cumDrift.Value()

		// End-of-window adaptation.
		switch cfg.Strategy {
		case Nazar:
			from := weather.Start.Add(time.Duration(w) * windowSpan)
			to := from.Add(windowSpan)
			if cfg.CumulativeAnalysis {
				from = weather.Start
			}
			wres, err := svc.RunWindow(from, to, to)
			if err != nil {
				return nil, fmt.Errorf("pipeline: window %d: %w", w, err)
			}
			stats.RCADuration = wres.RCADuration
			stats.AdaptDuration = wres.AdaptDuration
			for _, c := range wres.Causes {
				stats.Causes = append(stats.Causes, c.String())
			}
			for _, d := range devices {
				for _, version := range wres.Versions {
					if err := d.Pool.Install(version, to); err != nil {
						return nil, fmt.Errorf("pipeline: deploy: %w", err)
					}
				}
			}
			retireStale(w, wres.Causes)
		case FederatedNazar:
			from := weather.Start.Add(time.Duration(w) * windowSpan)
			to := from.Add(windowSpan)
			if cfg.CumulativeAnalysis {
				from = weather.Start
			}
			rcaStart := time.Now()
			causes, err := svc.Diagnose(from, to, to)
			if err != nil {
				return nil, fmt.Errorf("pipeline: federated diagnose window %d: %w", w, err)
			}
			stats.RCADuration = time.Since(rcaStart)
			for _, c := range causes {
				stats.Causes = append(stats.Causes, c.String())
			}
			adaptStart := time.Now()
			// Each discovered cause is adapted locally on each device's
			// matching buffer. The clean model is intentionally NOT
			// federated: local clean buffers are small and polluted by
			// undetected drift, and aggregating them degrades the base
			// (centralized Nazar can afford clean refresh because it
			// pools a much larger clean sample).
			cleanCause := rca.Cause{}
			localCfg := cfg.Cloud.AdaptCfg
			// Local buffers are small; cap steps to limit per-device
			// overfitting before aggregation smooths it out.
			localCfg.MinSteps = 10
			for devID, buf := range fedBuffers {
				byCause := map[string][]buffered{}
				for _, b := range buf {
					idx := rca.AssignCause(causes, b.attrs)
					if idx >= 0 {
						byCause[causes[idx].Key()] = append(byCause[causes[idx].Key()], b)
						continue
					}
					// Clean inputs are not federated (see Round below).
				}
				for key, items := range byCause {
					if len(items) < 4 {
						continue
					}
					local := tensor.New(len(items), ds.World.Dim())
					for i, b := range items {
						copy(local.Row(i), b.x)
					}
					dev := devices[devID]
					update, err := federated.LocalAdapt(dev.Pool.Base(), local, key, devID, localCfg)
					if err != nil {
						return nil, fmt.Errorf("pipeline: local adapt %s: %w", devID, err)
					}
					coord.Submit(update)
				}
			}
			versions, err := coord.Round(append(causes, cleanCause), 2, to)
			// (cleanCause is advertised for forward compatibility; no
			// clean updates are submitted in this mode, see above.)
			if err != nil {
				return nil, fmt.Errorf("pipeline: federated round: %w", err)
			}
			stats.AdaptDuration = time.Since(adaptStart)
			for _, d := range devices {
				for _, version := range versions {
					if err := d.Pool.Install(version, to); err != nil {
						return nil, fmt.Errorf("pipeline: federated deploy: %w", err)
					}
				}
			}
			retireStale(w, causes)
		case AdaptAll, AdaptDrifted:
			if len(allSamples) >= 8 {
				pool := tensor.New(len(allSamples), ds.World.Dim())
				for i, s := range allSamples {
					copy(pool.Row(i), s)
				}
				start := time.Now()
				adapted, err := adapt.All(currentAll, pool, cfg.Cloud.AdaptCfg)
				if err != nil {
					return nil, fmt.Errorf("pipeline: adapt-all: %w", err)
				}
				stats.AdaptDuration = time.Since(start)
				currentAll = adapted
				for _, d := range devices {
					d.Pool.SetBase(adapted)
				}
			}
		}
		// Record pool occupancy (identical across devices: deployments
		// fan out to the whole fleet).
		for _, d := range devices {
			if n := d.Pool.Len(); n > stats.VersionCount {
				stats.VersionCount = n
			}
		}
		res.Windows = append(res.Windows, stats)
	}
	return res, nil
}

// TrainBase trains a fresh classifier for the dataset (the pre-deployment
// model the paper ships at time zero).
func TrainBase(ds *dataset.Dataset, arch nn.Arch, epochs int, seed uint64) *nn.Network {
	rng := tensor.NewRand(seed, 0xBA5E)
	net := nn.NewClassifier(arch, ds.World.Dim(), ds.World.Classes(), rng)
	nn.Fit(net, ds.Train.X, ds.Train.Labels, nn.TrainConfig{Epochs: epochs, BatchSize: 32, Rng: rng})
	return net
}

// CleanValAccuracy reports the base model's accuracy on the clean
// validation split.
func CleanValAccuracy(ds *dataset.Dataset, net *nn.Network) float64 {
	return net.Accuracy(ds.Val.X, ds.Val.Labels)
}

func hashString(s string) uint64 {
	h := uint64(1469598103934665603)
	for _, b := range []byte(s) {
		h = (h ^ uint64(b)) * 1099511628211
	}
	return h
}
