package pipeline

import (
	"sync"
	"testing"

	"nazar/internal/dataset"
	"nazar/internal/nn"
	"nazar/internal/rca"
	"nazar/internal/weather"
)

// e2eRig shares one dataset + base model + the three strategy runs across
// tests (each run trains/adapts real models, so build once).
type e2eRig struct {
	ds      *dataset.Dataset
	base    *nn.Network
	results map[Strategy]*Result
}

var (
	rigOnce sync.Once
	rig     *e2eRig
	rigErr  error
)

func getRig(t *testing.T) *e2eRig {
	t.Helper()
	rigOnce.Do(func() {
		ds := dataset.NewCityscapes(dataset.CityscapesConfig{Total: 2400, Devices: 2, Seed: 11})
		base := TrainBase(ds, nn.ArchResNet34, 18, 11)
		rig = &e2eRig{ds: ds, base: base, results: map[Strategy]*Result{}}
		for _, s := range Strategies {
			cfg := DefaultConfig(s, 11)
			cfg.Windows = 4
			res, err := Run(ds, base, cfg)
			if err != nil {
				rigErr = err
				return
			}
			rig.results[s] = res
		}
	})
	if rigErr != nil {
		t.Fatal(rigErr)
	}
	return rig
}

func TestBaseModelCalibrated(t *testing.T) {
	r := getRig(t)
	acc := CleanValAccuracy(r.ds, r.base)
	if acc < 0.70 || acc > 0.97 {
		t.Fatalf("clean val accuracy %v outside band (paper: ~0.84)", acc)
	}
}

func TestRunProducesWindows(t *testing.T) {
	r := getRig(t)
	for s, res := range r.results {
		if len(res.Windows) != 4 {
			t.Fatalf("%s: %d windows", s, len(res.Windows))
		}
		for i, w := range res.Windows {
			if w.NAll == 0 {
				t.Fatalf("%s window %d empty", s, i)
			}
			if w.AccAll < 0 || w.AccAll > 1 {
				t.Fatalf("%s window %d accuracy %v", s, i, w.AccAll)
			}
		}
	}
}

func TestNazarBeatsBaselinesOnDriftedData(t *testing.T) {
	// The headline result (Fig. 8b): Nazar's drifted-data accuracy beats
	// adapt-all and no-adapt.
	r := getRig(t)
	nzr, _ := r.results[Nazar].AvgDriftAccLast(3)
	all, _ := r.results[AdaptAll].AvgDriftAccLast(3)
	non, _ := r.results[NoAdapt].AvgDriftAccLast(3)
	t.Logf("drifted acc: nazar=%.3f adapt-all=%.3f no-adapt=%.3f", nzr, all, non)
	if nzr <= all {
		t.Fatalf("Nazar drifted accuracy %.3f should beat adapt-all %.3f", nzr, all)
	}
	if nzr <= non {
		t.Fatalf("Nazar drifted accuracy %.3f should beat no-adapt %.3f", nzr, non)
	}
}

func TestNazarCompetitiveOnAllData(t *testing.T) {
	// Fig. 8a: Nazar also leads on all-data accuracy.
	r := getRig(t)
	nzr, _ := r.results[Nazar].AvgAccLast(3)
	all, _ := r.results[AdaptAll].AvgAccLast(3)
	non, _ := r.results[NoAdapt].AvgAccLast(3)
	t.Logf("all acc: nazar=%.3f adapt-all=%.3f no-adapt=%.3f", nzr, all, non)
	if nzr+0.02 < all || nzr+0.02 < non {
		t.Fatalf("Nazar all-data accuracy %.3f should not trail baselines (%v, %v)", nzr, all, non)
	}
}

func TestNazarDiscoversWeatherCauses(t *testing.T) {
	r := getRig(t)
	found := false
	for _, w := range r.results[Nazar].Windows {
		for _, c := range w.Causes {
			if c == "{rain}" || c == "{snow}" || c == "{fog}" {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no weather cause ever discovered")
	}
}

func TestVersionCountsBounded(t *testing.T) {
	// Fig. 8c: with full RCA the per-device version count stays small
	// (the paper reports a steady 3).
	r := getRig(t)
	for _, w := range r.results[Nazar].Windows {
		if w.VersionCount > 6 {
			t.Fatalf("version count %d exploded", w.VersionCount)
		}
	}
	last := r.results[Nazar].Windows[len(r.results[Nazar].Windows)-1]
	if last.VersionCount == 0 {
		t.Fatal("no versions deployed by final window")
	}
	for _, s := range []Strategy{AdaptAll, NoAdapt} {
		for _, w := range r.results[s].Windows {
			if w.VersionCount != 0 {
				t.Fatalf("%s should not hold versions", s)
			}
		}
	}
}

func TestRuntimeDecomposition(t *testing.T) {
	// §5.8: analysis is much cheaper than adaptation.
	r := getRig(t)
	var rcaTotal, adaptTotal float64
	for _, w := range r.results[Nazar].Windows {
		rcaTotal += w.RCADuration.Seconds()
		adaptTotal += w.AdaptDuration.Seconds()
	}
	if adaptTotal == 0 {
		t.Fatal("no adaptation happened")
	}
	if rcaTotal > adaptTotal {
		t.Fatalf("RCA (%vs) should be cheaper than adaptation (%vs)", rcaTotal, adaptTotal)
	}
}

func TestCumulativeTraceConsistency(t *testing.T) {
	r := getRig(t)
	for s, res := range r.results {
		var seenAll int
		var correctApprox float64
		for i, w := range res.Windows {
			seenAll += w.NAll
			correctApprox += w.AccAll * float64(w.NAll)
			wantCum := correctApprox / float64(seenAll)
			if diff := wantCum - w.CumAccAll; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("%s window %d: cumulative %v, recomputed %v", s, i, w.CumAccAll, wantCum)
			}
		}
	}
}

func TestFIMOnlyInflatesVersionCount(t *testing.T) {
	// Fig. 8c's ablation: without set reduction + counterfactual
	// analysis, devices accumulate more BN versions.
	r := getRig(t)
	cfg := DefaultConfig(Nazar, 11)
	cfg.Windows = 4
	cfg.Cloud.RCAMode = rca.FIMOnly
	fimRes, err := Run(r.ds, r.base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fullMax, fimMax := 0, 0
	for i := range fimRes.Windows {
		if fimRes.Windows[i].VersionCount > fimMax {
			fimMax = fimRes.Windows[i].VersionCount
		}
		if r.results[Nazar].Windows[i].VersionCount > fullMax {
			fullMax = r.results[Nazar].Windows[i].VersionCount
		}
	}
	t.Logf("max versions: full=%d fim-only=%d", fullMax, fimMax)
	if fimMax < fullMax {
		t.Fatalf("FIM-only (%d) should hold at least as many versions as full RCA (%d)", fimMax, fullMax)
	}
}

func TestAvgAccHelpers(t *testing.T) {
	res := &Result{Windows: []WindowStats{
		{AccAll: 0.5, AccDrift: 0.4, NDrift: 10},
		{AccAll: 0.7, AccDrift: 0.6, NDrift: 10},
		{AccAll: 0.9, AccDrift: 0, NDrift: 0},
	}}
	mean, _ := res.AvgAccLast(2)
	if mean != 0.8 {
		t.Fatalf("AvgAccLast %v", mean)
	}
	dmean, _ := res.AvgDriftAccLast(3)
	if dmean != 0.5 {
		t.Fatalf("AvgDriftAccLast %v (empty windows must be skipped)", dmean)
	}
	mean, _ = res.AvgAccLast(10)
	if mean < 0.69 || mean > 0.71 {
		t.Fatalf("AvgAccLast over-length %v", mean)
	}
}

func TestAdaptDriftedWorseThanAdaptAll(t *testing.T) {
	// §5.2 "Baselines": adapting only on flagged-drifted samples always
	// performed worse than adapt-all in the paper's experiments (the
	// flagged pool is smaller and polluted by false positives), so it
	// must at least not beat adapt-all decisively.
	r := getRig(t)
	cfg := DefaultConfig(AdaptDrifted, 11)
	cfg.Windows = 4
	res, err := Run(r.ds, r.base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	drifted, _ := res.AvgAccLast(3)
	all, _ := r.results[AdaptAll].AvgAccLast(3)
	if drifted > all+0.05 {
		t.Fatalf("adapt-drifted %v should not decisively beat adapt-all %v", drifted, all)
	}
	nazar, _ := r.results[Nazar].AvgAccLast(3)
	if drifted > nazar {
		t.Fatalf("adapt-drifted %v should not beat Nazar %v", drifted, nazar)
	}
}

func TestFederatedNazarEndToEnd(t *testing.T) {
	// §6 future work end to end: federated Nazar must recover drifted
	// accuracy over no-adapt while uploading zero samples.
	r := getRig(t)
	cfg := DefaultConfig(FederatedNazar, 11)
	cfg.Windows = 4
	res, err := Run(r.ds, r.base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fed, _ := res.AvgDriftAccLast(3)
	non, _ := r.results[NoAdapt].AvgDriftAccLast(3)
	nzr, _ := r.results[Nazar].AvgDriftAccLast(3)
	t.Logf("drifted acc: federated=%.3f nazar=%.3f no-adapt=%.3f", fed, nzr, non)
	if fed <= non {
		t.Fatalf("federated Nazar %v should beat no-adapt %v on drifted data", fed, non)
	}
	if fed < nzr-0.20 {
		t.Fatalf("federated %v too far below centralized Nazar %v", fed, nzr)
	}
	// Versions must carry the federated prefix and causes must exist.
	foundVersions := false
	for _, w := range res.Windows {
		if w.VersionCount > 0 {
			foundVersions = true
		}
	}
	if !foundVersions {
		t.Fatal("no federated versions deployed")
	}
}

func TestCustomWeatherSource(t *testing.T) {
	// A pipeline driven by explicit historical records: every day is
	// foggy everywhere, so every inference is drifted.
	r := getRig(t)
	recs := weather.NewRecords()
	for _, loc := range weather.CityscapesLocations {
		for d := 0; d < weather.Days(); d++ {
			if err := recs.Set(loc, weather.Day(d), weather.Fog); err != nil {
				t.Fatal(err)
			}
		}
	}
	cfg := DefaultConfig(NoAdapt, 11)
	cfg.Windows = 2
	cfg.Weather = recs
	res, err := Run(r.ds, r.base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range res.Windows {
		if w.NDrift != w.NAll {
			t.Fatalf("window %d: %d drifted of %d (all-fog records should drift everything)", i, w.NDrift, w.NAll)
		}
	}
}

func TestCauseRetirementEvictsStaleVersions(t *testing.T) {
	// Drive a snow-only first half then clear skies: the snow version
	// must eventually be retired from device pools.
	r := getRig(t)
	recs := weather.NewRecords()
	for _, loc := range weather.CityscapesLocations {
		for d := 0; d < weather.Days(); d++ {
			cond := weather.ClearDay
			if d < weather.Days()/4 {
				cond = weather.Snow
			}
			if err := recs.Set(loc, weather.Day(d), cond); err != nil {
				t.Fatal(err)
			}
		}
	}
	cfg := DefaultConfig(Nazar, 11)
	cfg.Windows = 8
	cfg.Weather = recs
	cfg.RetireAfter = 2
	// Windowed (non-cumulative) analysis: once the snow stops, later
	// windows no longer list {snow} and retirement can fire. (Under
	// cumulative analysis historical rows keep causes alive forever,
	// which intentionally blocks retirement.)
	cfg.CumulativeAnalysis = false
	res, err := Run(r.ds, r.base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	grew := false
	for _, w := range res.Windows[:4] {
		if w.VersionCount > 0 {
			grew = true
		}
	}
	if !grew {
		t.Skip("no versions deployed in the snowy half; nothing to retire")
	}
	last := res.Windows[len(res.Windows)-1]
	if last.VersionCount != 0 {
		t.Fatalf("stale versions not retired by final window: %d", last.VersionCount)
	}
}

func TestLongRunStability(t *testing.T) {
	// A 16-window soak: version counts stay bounded and cumulative
	// accuracy does not decay as adaptations stack up.
	if testing.Short() {
		t.Skip("soak test in -short mode")
	}
	r := getRig(t)
	cfg := DefaultConfig(Nazar, 11)
	cfg.Windows = 16
	res, err := Run(r.ds, r.base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Windows) != 16 {
		t.Fatalf("%d windows", len(res.Windows))
	}
	for i, w := range res.Windows {
		if w.VersionCount > 8 {
			t.Fatalf("window %d: version count %d exploded", i, w.VersionCount)
		}
	}
	first4 := res.Windows[3].CumAccAll
	last := res.Windows[15].CumAccAll
	if last < first4-0.03 {
		t.Fatalf("cumulative accuracy decayed over the soak: %v -> %v", first4, last)
	}
}
