package pipeline

import (
	"math"
	"reflect"
	"testing"
	"time"

	"nazar/internal/dataset"
	"nazar/internal/driftlog"
	"nazar/internal/nn"
	"nazar/internal/rca"
	"nazar/internal/tensor"
)

// TestRunDeterministicAcrossPoolWidths is the reproducibility contract of
// the parallelized analysis path: the same seeded workload must produce
// identical WindowStats whether the worker pool is forced to one worker
// or running at full width. Wall-clock durations are the only allowed
// difference.
func TestRunDeterministicAcrossPoolWidths(t *testing.T) {
	ds := dataset.NewCityscapes(dataset.CityscapesConfig{Total: 1200, Devices: 2, Seed: 42})
	base := TrainBase(ds, nn.ArchResNet18, 8, 42)

	runAt := func(workers int) *Result {
		t.Helper()
		tensor.SetMaxWorkers(workers)
		defer tensor.SetMaxWorkers(0)
		cfg := DefaultConfig(Nazar, 42)
		cfg.Windows = 3
		res, err := Run(ds, base, cfg)
		if err != nil {
			t.Fatalf("run at %d workers: %v", workers, err)
		}
		return res
	}

	seq := runAt(1)
	par := runAt(8)

	if len(seq.Windows) != len(par.Windows) {
		t.Fatalf("window counts diverge: %d vs %d", len(seq.Windows), len(par.Windows))
	}
	for i := range seq.Windows {
		a, b := seq.Windows[i], par.Windows[i]
		// Durations are wall-clock measurements, not results.
		a.RCADuration, b.RCADuration = 0, 0
		a.AdaptDuration, b.AdaptDuration = 0, 0
		if !reflect.DeepEqual(a, b) {
			t.Errorf("window %d diverges across pool widths:\n  1 worker: %+v\n  8 workers: %+v", i, a, b)
		}
	}
}

// TestModelPassDeterministicAcrossPoolWidths extends the pool-width
// contract down to the compute substrate introduced with the blocked
// kernels: a full train step (fused forward, loss, backward) over
// shapes large enough to cross the parallel threshold must produce
// bit-identical logits and gradients at width 1 and width 8.
func TestModelPassDeterministicAcrossPoolWidths(t *testing.T) {
	// 128×96 inputs through an ArchResNet50 (width 96) put every matmul
	// orientation above the parallel threshold.
	build := func() (*nn.Network, *tensor.Matrix, []int) {
		rng := tensor.NewRand(77, 5)
		net := nn.NewClassifier(nn.ArchResNet50, 96, 12, rng)
		x := tensor.New(128, 96)
		for i := range x.Data {
			x.Data[i] = rng.NormFloat64()
		}
		labels := make([]int, x.Rows)
		for i := range labels {
			labels[i] = i % 12
		}
		return net, x, labels
	}

	type pass struct {
		logits *tensor.Matrix
		grads  []*tensor.Matrix
	}
	runAt := func(workers int) pass {
		tensor.SetMaxWorkers(workers)
		defer tensor.SetMaxWorkers(0)
		net, x, labels := build()
		logits := net.Forward(x, nn.Train)
		_, dlogits := nn.CrossEntropy(logits, labels)
		net.Backward(dlogits)
		var grads []*tensor.Matrix
		for _, p := range net.Params() {
			grads = append(grads, p.Grad.Clone())
		}
		return pass{logits: logits.Clone(), grads: grads}
	}

	seq := runAt(1)
	par := runAt(8)
	for i := range seq.logits.Data {
		if math.Float64bits(seq.logits.Data[i]) != math.Float64bits(par.logits.Data[i]) {
			t.Fatalf("logits diverge across pool widths at %d: %v vs %v",
				i, seq.logits.Data[i], par.logits.Data[i])
		}
	}
	for k := range seq.grads {
		for i := range seq.grads[k].Data {
			if math.Float64bits(seq.grads[k].Data[i]) != math.Float64bits(par.grads[k].Data[i]) {
				t.Fatalf("gradient %d diverges across pool widths at %d", k, i)
			}
		}
	}
}

// TestAnalysisDeterministicAcrossIndexAndPoolWidths extends the
// pool-width contract to the bitset-indexed analytics: root-cause
// analysis over the same synthetic drift log must produce identical
// causes at pool widths 1 and 8, on the popcount path and on the
// retained row-scan path.
func TestAnalysisDeterministicAcrossIndexAndPoolWidths(t *testing.T) {
	s := driftlog.NewStore()
	base := time.Unix(0, 0).UTC()
	var batch []driftlog.Entry
	for i := 0; i < 5000; i++ {
		weather := []string{"clear-day", "rain", "snow", "fog"}[i%4]
		drift := i%17 == 0
		if weather == "fog" {
			drift = i%3 != 0
		}
		batch = append(batch, driftlog.Entry{
			Time:     base.Add(time.Duration(i) * time.Second),
			Drift:    drift,
			SampleID: -1,
			Attrs: map[string]string{
				driftlog.AttrWeather:  weather,
				driftlog.AttrLocation: []string{"Hamburg", "Zurich", "Bremen"}[i%3],
				driftlog.AttrDevice:   []string{"dev_a", "dev_b"}[i%2],
			},
		})
	}
	s.AppendBatch(batch)

	type variant struct {
		name    string
		workers int
		scan    bool
	}
	var got [][]rca.Cause
	var names []string
	for _, va := range []variant{
		{"bitset/1", 1, false}, {"bitset/8", 8, false},
		{"scan/1", 1, true}, {"scan/8", 8, true},
	} {
		tensor.SetMaxWorkers(va.workers)
		var v *driftlog.View
		if va.scan {
			v = s.WindowScan(time.Time{}, time.Time{})
		} else {
			v = s.All()
		}
		causes, err := rca.Analyze(v, rca.DefaultConfig(), rca.Full)
		tensor.SetMaxWorkers(0)
		if err != nil {
			t.Fatalf("%s: %v", va.name, err)
		}
		got = append(got, causes)
		names = append(names, va.name)
	}
	for i := 1; i < len(got); i++ {
		if !reflect.DeepEqual(got[0], got[i]) {
			t.Fatalf("analysis diverges: %s vs %s\n%v\n%v", names[0], names[i], got[0], got[i])
		}
	}
	if len(got[0]) == 0 {
		t.Fatal("synthetic log produced no causes")
	}
}
