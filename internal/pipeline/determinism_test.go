package pipeline

import (
	"reflect"
	"testing"

	"nazar/internal/dataset"
	"nazar/internal/nn"
	"nazar/internal/tensor"
)

// TestRunDeterministicAcrossPoolWidths is the reproducibility contract of
// the parallelized analysis path: the same seeded workload must produce
// identical WindowStats whether the worker pool is forced to one worker
// or running at full width. Wall-clock durations are the only allowed
// difference.
func TestRunDeterministicAcrossPoolWidths(t *testing.T) {
	ds := dataset.NewCityscapes(dataset.CityscapesConfig{Total: 1200, Devices: 2, Seed: 42})
	base := TrainBase(ds, nn.ArchResNet18, 8, 42)

	runAt := func(workers int) *Result {
		t.Helper()
		tensor.SetMaxWorkers(workers)
		defer tensor.SetMaxWorkers(0)
		cfg := DefaultConfig(Nazar, 42)
		cfg.Windows = 3
		res, err := Run(ds, base, cfg)
		if err != nil {
			t.Fatalf("run at %d workers: %v", workers, err)
		}
		return res
	}

	seq := runAt(1)
	par := runAt(8)

	if len(seq.Windows) != len(par.Windows) {
		t.Fatalf("window counts diverge: %d vs %d", len(seq.Windows), len(par.Windows))
	}
	for i := range seq.Windows {
		a, b := seq.Windows[i], par.Windows[i]
		// Durations are wall-clock measurements, not results.
		a.RCADuration, b.RCADuration = 0, 0
		a.AdaptDuration, b.AdaptDuration = 0, 0
		if !reflect.DeepEqual(a, b) {
			t.Errorf("window %d diverges across pool widths:\n  1 worker: %+v\n  8 workers: %+v", i, a, b)
		}
	}
}
