package pipeline

import (
	"strings"
	"testing"

	"nazar/internal/cloud"
)

func rolloutChaosPlan() cloud.RolloutPlan {
	return cloud.RolloutPlan{
		Candidate:  "v2",
		Steps:      []float64{10, 25, 50, 100},
		Ceiling:    50,
		Guard:      0.05,
		DriftGuard: 0.15,
		MinSamples: 50,
	}
}

// TestChaosAutoRollback is the end-to-end control-plane invariant: a
// deliberately regressed candidate injected into a canary cohort, under
// a 10% wire fault rate, is rolled back before the ramp exceeds its
// ceiling — and the chaos does not cost a single acked entry.
func TestChaosAutoRollback(t *testing.T) {
	res, err := RunRolloutChaos(RolloutChaosConfig{
		FaultRate:   0.1,
		Seed:        7,
		Plan:        rolloutChaosPlan(),
		CanaryDelta: -0.2, // 0.70 canary vs 0.90 control: far past the 5-point guard
		Observe:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalState != string(cloud.RolloutRolledBack) {
		t.Fatalf("final state %q, want rolled-back (decisions: %v)", res.FinalState, res.Decisions)
	}
	if res.MaxPercent > 50 {
		t.Fatalf("ramp reached %v%% before rollback, ceiling is 50%%", res.MaxPercent)
	}
	if res.FinalPercent != 0 {
		t.Fatalf("final percent %v after rollback, want 0", res.FinalPercent)
	}
	if res.RollbackWindow == 0 {
		t.Fatal("no rollback window recorded")
	}
	if res.LostAcked != 0 {
		t.Fatalf("delivery invariant broken: %d entries acked but lost", res.LostAcked)
	}
	if res.Delivered == 0 || res.Streamed == 0 {
		t.Fatalf("degenerate run: streamed=%d delivered=%d", res.Streamed, res.Delivered)
	}
	// The rollback is visible on /metrics, scraped through the same
	// faulty wire the fleet used.
	joined := strings.Join(res.RolloutMetrics, "\n")
	for _, want := range []string{
		`nazar_rollout_rollbacks_total{version="v2"} 1`,
		`nazar_rollout_state{version="v2"} 3`,
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("scraped metrics missing %q:\n%s", want, joined)
		}
	}
}

// TestChaosRolloutHealthy is the control: the same harness with a
// healthy candidate completes the ramp (to its ceiling) instead of
// rolling back — the guards aren't just always firing.
func TestChaosRolloutHealthy(t *testing.T) {
	res, err := RunRolloutChaos(RolloutChaosConfig{
		FaultRate:   0.1,
		Seed:        7,
		Plan:        rolloutChaosPlan(),
		CanaryDelta: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalState != string(cloud.RolloutComplete) {
		t.Fatalf("final state %q, want complete (decisions: %v)", res.FinalState, res.Decisions)
	}
	if res.MaxPercent != 50 {
		t.Fatalf("healthy ramp peaked at %v%%, want the 50%% ceiling", res.MaxPercent)
	}
	if res.LostAcked != 0 {
		t.Fatalf("delivery invariant broken: %d entries acked but lost", res.LostAcked)
	}
}
