package pipeline

import (
	"bufio"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"nazar/internal/dataset"
	"nazar/internal/nn"
	"nazar/internal/obs"
	"nazar/internal/tensor"
)

// TestQuantizedRunDeterministicAcrossPoolWidths extends the pool-width
// reproducibility contract to int8 serving: a fully quantized fleet run
// must produce identical WindowStats at one worker and at full width —
// the int8 kernels keep the same bit-determinism the float kernels have.
func TestQuantizedRunDeterministicAcrossPoolWidths(t *testing.T) {
	ds := dataset.NewCityscapes(dataset.CityscapesConfig{Total: 1200, Devices: 2, Seed: 42})
	base := TrainBase(ds, nn.ArchResNet18, 8, 42)

	runAt := func(workers int) *Result {
		t.Helper()
		tensor.SetMaxWorkers(workers)
		defer tensor.SetMaxWorkers(0)
		cfg := DefaultConfig(Nazar, 42)
		cfg.Windows = 3
		cfg.Quantized = true
		res, err := Run(ds, base, cfg)
		if err != nil {
			t.Fatalf("quantized run at %d workers: %v", workers, err)
		}
		return res
	}

	seq := runAt(1)
	par := runAt(8)

	if len(seq.Windows) != len(par.Windows) {
		t.Fatalf("window counts diverge: %d vs %d", len(seq.Windows), len(par.Windows))
	}
	for i := range seq.Windows {
		a, b := seq.Windows[i], par.Windows[i]
		a.RCADuration, b.RCADuration = 0, 0
		a.AdaptDuration, b.AdaptDuration = 0, 0
		if !reflect.DeepEqual(a, b) {
			t.Errorf("window %d diverges across pool widths:\n  1 worker: %+v\n  8 workers: %+v", i, a, b)
		}
	}
}

// quantShadowCounts reads the float-shadow comparison counters from the
// run's exposition.
func quantShadowCounts(t *testing.T, reg *obs.Registry) (agree, disagree float64) {
	t.Helper()
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(buf.String()))
	for sc.Scan() {
		line := sc.Text()
		for prefix, dst := range map[string]*float64{
			`nazar_quant_shadow_total{verdict="agree"} `:    &agree,
			`nazar_quant_shadow_total{verdict="disagree"} `: &disagree,
		} {
			if v, ok := strings.CutPrefix(line, prefix); ok {
				f, err := strconv.ParseFloat(v, 64)
				if err != nil {
					t.Fatalf("bad sample %q: %v", line, err)
				}
				*dst = f
			}
		}
	}
	return agree, disagree
}

// TestQuantizedDriftVerdictDisagreementBounded is the randomized
// differential check of the tentpole: with every inference shadowed by
// the float model, the quantized and float drift verdicts must agree on
// all but a small fraction of a drifting workload (disagreements come
// only from inputs whose MSP sits within 8-bit rounding of the
// threshold), and the disagreement count must be identical at pool
// widths 1 and 8.
func TestQuantizedDriftVerdictDisagreementBounded(t *testing.T) {
	ds := dataset.NewCityscapes(dataset.CityscapesConfig{Total: 1200, Devices: 2, Seed: 99})
	base := TrainBase(ds, nn.ArchResNet18, 8, 99)

	runAt := func(workers int) (agree, disagree float64) {
		t.Helper()
		tensor.SetMaxWorkers(workers)
		defer tensor.SetMaxWorkers(0)
		reg := obs.NewRegistry()
		cfg := DefaultConfig(Nazar, 99)
		cfg.Windows = 3
		cfg.Quantized = true
		cfg.QuantShadowEvery = 1
		cfg.Observer = reg
		if _, err := Run(ds, base, cfg); err != nil {
			t.Fatalf("shadowed run at %d workers: %v", workers, err)
		}
		return quantShadowCounts(t, reg)
	}

	agree1, disagree1 := runAt(1)
	agree8, disagree8 := runAt(8)

	total := agree1 + disagree1
	if total == 0 {
		t.Fatal("no shadow comparisons recorded")
	}
	if rate := disagree1 / total; rate > 0.02 {
		t.Fatalf("quantized-vs-float drift verdicts disagree on %.2f%% of %v inferences, want <= 2%%",
			100*rate, total)
	}
	if agree1 != agree8 || disagree1 != disagree8 {
		t.Fatalf("disagreement counts vary with pool width: width 1 (%v, %v) vs width 8 (%v, %v)",
			agree1, disagree1, agree8, disagree8)
	}
}
