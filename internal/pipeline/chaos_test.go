package pipeline

import (
	"encoding/json"
	"testing"
)

// TestChaosDeliveryInvariant runs the chaos harness at the three
// `make chaos` presets. The hard invariant at every fault rate:
// zero acked-but-lost entries — at-least-once delivery holds no matter
// what the injector does to the wire. At rate 0 the run must also look
// like a clean pipeline: everything streamed is acked and delivered
// exactly once with no retries, and analysis installs versions.
func TestChaosDeliveryInvariant(t *testing.T) {
	for _, tc := range []struct {
		name string
		rate float64
	}{
		{"clean", 0},
		{"faults_10pct", 0.1},
		{"faults_30pct", 0.3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := RunChaos(ChaosConfig{FaultRate: tc.rate, Seed: 11})
			if err != nil {
				t.Fatalf("RunChaos(%v): %v", tc.rate, err)
			}
			if out, err := json.Marshal(res); err == nil {
				t.Logf("chaos result: %s", out)
			}

			// The invariant: nothing acked to the caller went missing.
			if res.LostAcked != 0 {
				t.Fatalf("LOST %d acknowledged entries at fault rate %v", res.LostAcked, tc.rate)
			}
			// Acked entries are a subset of delivered ones, and with the
			// spool sized to the run nothing is dropped client-side.
			if res.SpoolDropped != 0 {
				t.Fatalf("spool dropped %d entries; the harness sizes the spool to the run", res.SpoolDropped)
			}
			if res.Acked > res.Delivered {
				t.Fatalf("acked %d > delivered %d", res.Acked, res.Delivered)
			}
			if res.AnalyzeOK != 2 {
				t.Fatalf("completed %d analysis cycles, want 2", res.AnalyzeOK)
			}

			if tc.rate == 0 {
				if res.Acked != res.Streamed || res.Delivered != res.Streamed {
					t.Fatalf("clean run: streamed=%d acked=%d delivered=%d, want all equal",
						res.Streamed, res.Acked, res.Delivered)
				}
				if res.Retries != 0 || res.Duplicates != 0 || res.BreakerOpens != 0 {
					t.Fatalf("clean run saw retries=%d duplicates=%d breakerOpens=%d, want none",
						res.Retries, res.Duplicates, res.BreakerOpens)
				}
				if res.Versions == 0 {
					t.Fatal("clean run installed no adapted versions")
				}
			} else {
				// With faults on the wire, delivery still completes: the
				// transport retried every entry to acknowledgment.
				if res.Acked != res.Streamed {
					t.Fatalf("faulty run: acked %d of %d streamed — transport gave up on entries",
						res.Acked, res.Streamed)
				}
				injured := res.InjectedFaults["err500"] + res.InjectedFaults["err429"] +
					res.InjectedFaults["reset"] + res.InjectedFaults["truncate"]
				if injured > 0 && res.Retries == 0 {
					t.Fatalf("%d requests were failed by the injector but the transport never retried", injured)
				}
			}
		})
	}
}

// TestChaosDeterminism: the same seed reproduces the same run — fault
// trace, delivery counts, retries — which is what makes a failing
// chaos run debuggable.
func TestChaosDeterminism(t *testing.T) {
	run := func() *ChaosResult {
		res, err := RunChaos(ChaosConfig{FaultRate: 0.3, Seed: 7, Devices: 2, PerDevice: 24})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("same seed produced different chaos results:\n  %s\n  %s", ja, jb)
	}
}

// TestChaosKillCloud kill-9s the cloud mid-window and audits the
// durability contract: with a WAL under the drift log, a process death
// with no flush or goodbye loses nothing that was acknowledged —
// lost_acked stays 0 after the replacement service replays the log.
func TestChaosKillCloud(t *testing.T) {
	for _, tc := range []struct {
		name string
		rate float64
	}{
		{"clean_wire", 0},
		{"faulty_wire", 0.15},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := RunChaos(ChaosConfig{
				FaultRate:         tc.rate,
				Seed:              23,
				Windows:           3,
				WALDir:            t.TempDir(),
				KillCloudAtWindow: 2,
			})
			if err != nil {
				t.Fatalf("RunChaos: %v", err)
			}
			if out, err := json.Marshal(res); err == nil {
				t.Logf("chaos result: %s", out)
			}
			if res.CloudKills != 1 {
				t.Fatalf("cloud kills: want 1 got %d", res.CloudKills)
			}
			// THE invariant: a kill-9 plus WAL replay loses nothing acked.
			if res.LostAcked != 0 {
				t.Fatalf("LOST %d acknowledged entries across a cloud kill-9", res.LostAcked)
			}
			// The replacement started from the dead service's acked rows,
			// not from zero.
			if res.ReplayedRows == 0 {
				t.Fatal("replacement service replayed 0 rows — the WAL did its job too late or not at all")
			}
			if res.SpoolDropped != 0 {
				t.Fatalf("spool dropped %d entries", res.SpoolDropped)
			}
			// Delivery completes across the restart: everything streamed is
			// eventually acked (the transport retried through the outage).
			if res.Acked != res.Streamed {
				t.Fatalf("acked %d of %d streamed across the kill", res.Acked, res.Streamed)
			}
			if res.AnalyzeOK != 3 {
				t.Fatalf("completed %d analysis cycles, want 3", res.AnalyzeOK)
			}
		})
	}
}

// TestChaosKillCloudRequiresWAL pins the config validation: a kill
// schedule without a WAL directory cannot run (there would be nothing
// to recover from).
func TestChaosKillCloudRequiresWAL(t *testing.T) {
	if _, err := RunChaos(ChaosConfig{KillCloudAtWindow: 1}); err == nil {
		t.Fatal("kill without WALDir must be rejected")
	}
}

// TestChaosBinaryCodec reruns the delivery audit with the fleet
// shipping columnar binary frames: injected truncation, resets, and
// error statuses must surface as typed failures the transport retries
// — never a lost acknowledged entry, never a panic — and the drift-log
// state the cloud ends with still matches what was streamed.
func TestChaosBinaryCodec(t *testing.T) {
	for _, tc := range []struct {
		name string
		rate float64
	}{
		{"clean", 0},
		{"faults_30pct", 0.3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := RunChaos(ChaosConfig{FaultRate: tc.rate, Seed: 19, Binary: true})
			if err != nil {
				t.Fatalf("RunChaos(%v): %v", tc.rate, err)
			}
			if out, err := json.Marshal(res); err == nil {
				t.Logf("chaos result: %s", out)
			}
			if res.Codec != "application/x-nazar-batch" {
				t.Fatalf("run used codec %q, want the binary framing", res.Codec)
			}
			if res.LostAcked != 0 {
				t.Fatalf("LOST %d acknowledged entries at fault rate %v with binary framing", res.LostAcked, tc.rate)
			}
			if res.SpoolDropped != 0 {
				t.Fatalf("spool dropped %d entries", res.SpoolDropped)
			}
			if res.Acked != res.Streamed {
				t.Fatalf("acked %d of %d streamed", res.Acked, res.Streamed)
			}
			if res.AnalyzeOK != 2 {
				t.Fatalf("completed %d analysis cycles, want 2", res.AnalyzeOK)
			}
			if tc.rate == 0 {
				if res.Delivered != res.Streamed || res.Retries != 0 || res.Duplicates != 0 {
					t.Fatalf("clean binary run: delivered=%d/%d retries=%d duplicates=%d",
						res.Delivered, res.Streamed, res.Retries, res.Duplicates)
				}
				if res.Versions == 0 {
					t.Fatal("clean binary run installed no adapted versions")
				}
			}
		})
	}
}
