package pipeline

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"time"

	"nazar/internal/cloud"
	"nazar/internal/device"
	"nazar/internal/driftlog"
	"nazar/internal/faultinject"
	"nazar/internal/httpapi"
	"nazar/internal/imagesim"
	"nazar/internal/nn"
	"nazar/internal/tensor"
	"nazar/internal/transport"
	"nazar/internal/weather"
)

// ChaosConfig parameterizes one chaos-harness run: a small fleet
// streams inferences to a real httpapi server through the resilient
// transport while a seeded fault injector corrupts the wire.
type ChaosConfig struct {
	// FaultRate is the total per-request fault probability; the
	// schedule is faultinject.Preset(FaultRate) unless Schedule is set.
	FaultRate float64
	// Schedule overrides the preset-derived fault schedule.
	Schedule *faultinject.Schedule
	// Devices is the fleet size (default 3).
	Devices int
	// PerDevice is the number of inferences each device streams
	// (default 40).
	PerDevice int
	// Windows is the number of analysis/adaptation cycles the stream is
	// split into (default 2).
	Windows int
	// Seed drives every PRNG in the run: the world, the fleet, the
	// fault injector and the transport's backoff jitter.
	Seed uint64
	// WALDir, when set, runs the cloud service with a durable drift log
	// (cloud.WithWAL) rooted there. Required for KillCloudAtWindow.
	WALDir string
	// KillCloudAtWindow, when positive, kill-9s the cloud service
	// mid-way through that window (1-based): the WAL is severed with no
	// flush or goodbye, the service is discarded, and a fresh service
	// replays the WAL directory and takes over the same endpoint. The
	// delivery invariant must survive: lost_acked stays 0 because every
	// acked batch was fsynced before its ack.
	KillCloudAtWindow int
	// Binary ships ingest batches with the columnar binary codec
	// (application/x-nazar-batch) instead of JSON, so injected faults
	// exercise the wire framing's CRC and truncation handling too.
	Binary bool
}

func (c ChaosConfig) withDefaults() ChaosConfig {
	if c.Devices <= 0 {
		c.Devices = 3
	}
	if c.PerDevice <= 0 {
		c.PerDevice = 40
	}
	if c.Windows <= 0 {
		c.Windows = 2
	}
	return c
}

// ChaosResult is the harness's verdict, JSON-ready for `make chaos`.
type ChaosResult struct {
	FaultRate float64 `json:"fault_rate"`
	// Codec is the ingest media type the fleet's transport used.
	Codec string `json:"codec"`
	// Streamed counts entries handed to transport.Client.Report.
	Streamed int `json:"streamed"`
	// Acked counts entries the transport confirmed delivered to the
	// caller (OnAck).
	Acked int `json:"acked"`
	// SpoolDropped counts entries evicted from a full spool (never
	// acked — allowed to be lost).
	SpoolDropped int `json:"spool_dropped"`
	// Delivered counts distinct streamed entries present in the cloud
	// drift log after the run.
	Delivered int `json:"delivered"`
	// Duplicates counts redundant log rows from at-least-once retries.
	Duplicates int `json:"duplicates"`
	// LostAcked counts entries acked to the caller but absent from the
	// cloud log. The delivery invariant: always zero.
	LostAcked int `json:"lost_acked"`
	// DeliveryRate is Delivered / Streamed.
	DeliveryRate float64 `json:"delivery_rate"`
	// Retries and BreakerOpens are the transport's recovery effort.
	Retries      uint64 `json:"retries"`
	BreakerOpens uint64 `json:"breaker_opens"`
	// Requests counts HTTP requests that reached the fault injector;
	// InjectedFaults breaks down what it did to them.
	Requests       int               `json:"requests"`
	InjectedFaults map[string]uint64 `json:"injected_faults"`
	// AnalyzeOK counts analysis cycles that completed through the
	// faulty wire; Versions is the adapted-version count installed on
	// the fleet afterwards (adaptation invariant: at fault rate 0 the
	// run must analyze and install versions like a clean pipeline run).
	AnalyzeOK int `json:"analyze_ok"`
	Versions  int `json:"versions"`
	// CloudKills counts KillCloudAtWindow restarts performed;
	// ReplayedRows is the row count the replacement service recovered
	// from the WAL at takeover.
	CloudKills   int `json:"cloud_kills"`
	ReplayedRows int `json:"replayed_rows"`
}

// chaosAttrSeq is the per-entry identity attribute the harness stamps
// on every streamed entry so delivery can be audited row by row.
const chaosAttrSeq = "chaos_seq"

// RunChaos streams a fleet through fault-injected HTTP and audits the
// at-least-once contract: every entry acked by the transport must be
// present in the cloud's drift log, no matter what the wire did.
//
// The run is time-compressed: backoff delays are capped in the low
// milliseconds and injected Retry-After hints are honored through a
// capped sleeper, so even a 30% fault rate finishes in well under a
// second while still exercising retries, breaker trips and the spool.
func RunChaos(cfg ChaosConfig) (*ChaosResult, error) {
	cfg = cfg.withDefaults()
	sched := faultinject.Preset(cfg.FaultRate)
	if cfg.Schedule != nil {
		sched = *cfg.Schedule
	}
	sched.LatencyDur = time.Millisecond

	if cfg.KillCloudAtWindow > 0 && cfg.WALDir == "" {
		return nil, fmt.Errorf("chaos: KillCloudAtWindow requires WALDir")
	}

	world := imagesim.NewWorld(imagesim.DefaultConfig(4, cfg.Seed))
	base := nn.NewClassifier(nn.ArchResNet18, world.Dim(), 4, tensor.NewRand(cfg.Seed, 1))
	svcCfg := cloud.DefaultConfig()
	svcCfg.MinSamplesPerCause = 8
	svcCfg.AdaptCfg.Epochs = 1
	newSvc := func() (*cloud.Service, error) {
		var opts []cloud.Option
		if cfg.WALDir != "" {
			opts = append(opts, cloud.WithWAL(cfg.WALDir, driftlog.WALOptions{}))
		}
		s := cloud.NewService(base, svcCfg, opts...)
		if err := s.WALErr(); err != nil {
			return nil, fmt.Errorf("chaos: %w", err)
		}
		return s, nil
	}
	svc, err := newSvc()
	if err != nil {
		return nil, err
	}
	defer func() { _ = svc.Close() }()

	injector := faultinject.New(faultinject.Config{Seed: cfg.Seed, Schedule: sched})
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	// The endpoint serves whatever handler is currently stored, so a
	// killed cloud can be replaced mid-run without the fleet's transport
	// noticing anything beyond failed requests.
	var handler atomic.Value
	handler.Store(http.Handler(httpapi.NewServer(svc, httpapi.WithLogger(quiet))))
	swapable := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handler.Load().(http.Handler).ServeHTTP(w, r)
	})
	// The injector mounts OUTSIDE the API server's middleware chain so
	// injected aborts bypass its panic recovery and reach the client as
	// genuine connection failures.
	ts := httptest.NewServer(injector.Middleware()(swapable))
	defer ts.Close()

	ackedSeqs := map[string]int{}
	tOpts := []transport.Option{transport.WithConfig(transport.Config{
		MaxBatch:       8,
		FlushInterval:  time.Hour, // explicit Flush only: keeps the run deterministic
		RequestTimeout: 2 * time.Second,
		MaxAttempts:    10,
		SpoolCapacity:  cfg.Devices * cfg.PerDevice, // losses come from the wire, not the spool
		Backoff:        transport.BackoffConfig{Base: time.Millisecond, Max: 4 * time.Millisecond},
		Breaker:        transport.BreakerConfig{Threshold: 5, Cooldown: 2 * time.Millisecond},
		Seed:           cfg.Seed,
		Name:           fmt.Sprintf("chaos_%d", cfg.Seed),
		Logger:         quiet,
		Sleep:          cappedSleep(5 * time.Millisecond),
		OnAck: func(entries []driftlog.Entry) {
			for _, e := range entries {
				ackedSeqs[e.Attrs[chaosAttrSeq]]++
			}
		},
	})}
	codecName := httpapi.ContentTypeJSON
	if cfg.Binary {
		tOpts = append(tOpts, transport.WithCodec(httpapi.BinaryCodec{}))
		codecName = httpapi.ContentTypeBinary
	}
	client := transport.NewClient(ts.URL, tOpts...)

	rng := tensor.NewRand(cfg.Seed, 0xC4A05)
	fleet := make([]*device.Device, cfg.Devices)
	for i := range fleet {
		fleet[i] = device.New(device.Config{
			ID:         fmt.Sprintf("chaos_dev_%d", i),
			Location:   "chaos",
			SampleRate: 1,
			Rng:        tensor.NewRand(cfg.Seed^uint64(i), 0xD),
		}, base)
	}

	res := &ChaosResult{FaultRate: sched.FaultRate(), Codec: codecName}
	start := weather.Day(0)
	step := time.Minute
	perWindow := (cfg.PerDevice + cfg.Windows - 1) / cfg.Windows
	seq := 0
	ctx := context.Background()
	var lastVersions time.Time

	for w := 0; w < cfg.Windows; w++ {
		from := start.Add(time.Duration(w*perWindow) * step)
		var to time.Time
		for i := 0; i < perWindow && w*perWindow+i < cfg.PerDevice; i++ {
			tick := w*perWindow + i
			to = start.Add(time.Duration(tick+1) * step)
			for _, dev := range fleet {
				class := rng.IntN(4)
				x := world.Sample(class, rng)
				cond := "clear"
				if tick%2 == 1 {
					x = world.Corrupt(x, imagesim.Snow, imagesim.DefaultSeverity, rng)
					cond = "snow"
				}
				_, entry, sample := dev.Infer(start.Add(time.Duration(tick)*step), x, map[string]string{
					driftlog.AttrWeather: cond,
					chaosAttrSeq:         strconv.Itoa(seq),
				})
				// The harness audits the transport, not the detector: stamp
				// ground-truth drift so analysis finds the snow cause even
				// though the tiny base model is untrained.
				entry.Drift = cond == "snow"
				seq++
				res.Streamed++
				if err := client.Report(entry, sample); err != nil {
					return nil, fmt.Errorf("chaos: report: %w", err)
				}
			}
		}
		if cfg.KillCloudAtWindow == w+1 {
			// kill -9 the cloud mid-window: sever the WAL first (in-flight
			// requests on the dying service fail un-acked rather than
			// acking into a store about to vanish), discard the service,
			// and bring up a replacement that replays the WAL directory.
			svc.WAL().Sever()
			svc, err = newSvc()
			if err != nil {
				return nil, fmt.Errorf("chaos: window %d restart: %w", w, err)
			}
			res.CloudKills++
			res.ReplayedRows = svc.Log().Len()
			handler.Store(http.Handler(httpapi.NewServer(svc, httpapi.WithLogger(quiet))))
		}
		if err := client.Flush(ctx); err != nil {
			return nil, fmt.Errorf("chaos: window %d flush: %w", w, err)
		}
		// Control plane through the same faulty wire: analyze the window
		// and install whatever versions the cloud adapted.
		if _, err := client.Analyze(ctx, httpapi.AnalyzeRequest{From: from, To: to, Now: to}); err != nil {
			return nil, fmt.Errorf("chaos: window %d analyze: %w", w, err)
		}
		res.AnalyzeOK++
		versions, err := client.Versions(ctx, lastVersions)
		if err != nil {
			return nil, fmt.Errorf("chaos: window %d versions: %w", w, err)
		}
		lastVersions = to
		for _, v := range versions {
			for _, dev := range fleet {
				if err := dev.Pool.Install(v, to); err != nil {
					return nil, fmt.Errorf("chaos: install: %w", err)
				}
			}
		}
	}
	cctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := client.Close(cctx); err != nil {
		return nil, fmt.Errorf("chaos: close: %w", err)
	}

	// Audit: every acked entry must be present in the cloud log.
	st := client.Stats()
	res.Acked = int(st.Acked)
	res.SpoolDropped = int(st.SpoolDropped)
	res.Retries = st.Retries
	res.BreakerOpens = st.BreakerOpens
	present := map[string]int{}
	svc.Log().Each(func(_ int, e driftlog.Entry) {
		if s, ok := e.Attrs[chaosAttrSeq]; ok {
			present[s]++
		}
	})
	res.Delivered = len(present)
	for _, n := range present {
		res.Duplicates += n - 1
	}
	for s := range ackedSeqs {
		if present[s] == 0 {
			res.LostAcked++
		}
	}
	if res.Streamed > 0 {
		res.DeliveryRate = float64(res.Delivered) / float64(res.Streamed)
	}
	res.Requests = injector.Requests()
	res.InjectedFaults = map[string]uint64{}
	for f, n := range injector.Counts() {
		res.InjectedFaults[string(f)] = n
	}
	for _, dev := range fleet {
		if n := dev.Pool.Len(); n > res.Versions {
			res.Versions = n
		}
	}
	return res, nil
}

// cappedSleep is a context-aware sleeper that compresses long delays
// (e.g. injected whole-second Retry-After hints) into test time.
func cappedSleep(limit time.Duration) func(context.Context, time.Duration) error {
	return func(ctx context.Context, d time.Duration) error {
		if d > limit {
			d = limit
		}
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
			return nil
		}
	}
}
