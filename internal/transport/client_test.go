package transport

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"nazar/internal/driftlog"
)

// fakeSleeper records every requested sleep and advances a fake clock
// instead of spending wall time — the retry loop runs at full speed
// while the test asserts the exact schedule it would have waited.
type fakeSleeper struct {
	mu    sync.Mutex
	clock *fakeClock
	slept []time.Duration
}

func (f *fakeSleeper) Sleep(ctx context.Context, d time.Duration) error {
	f.mu.Lock()
	f.slept = append(f.slept, d)
	f.clock.Advance(d)
	f.mu.Unlock()
	return ctx.Err()
}

func (f *fakeSleeper) Slept() []time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]time.Duration(nil), f.slept...)
}

// ingestServer is a scriptable ingest endpoint: it answers each batch
// request with the next scripted status (0 = accept) and records every
// accepted entry.
type ingestServer struct {
	t  *testing.T
	mu sync.Mutex
	// script holds upcoming responses; empty means accept.
	script []int
	// retryAfter, when set, is attached to scripted 429s.
	retryAfter string
	accepted   []driftlog.Entry
	requests   int
}

func (s *ingestServer) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.requests++
		if len(s.script) > 0 {
			code := s.script[0]
			s.script = s.script[1:]
			if code != 0 {
				if code == http.StatusTooManyRequests && s.retryAfter != "" {
					w.Header().Set("Retry-After", s.retryAfter)
				}
				http.Error(w, "scripted failure", code)
				return
			}
		}
		var req struct {
			Entries []driftlog.Entry `json:"entries"`
			Samples [][]float64      `json:"samples"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			s.t.Errorf("ingestServer: bad body: %v", err)
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		s.accepted = append(s.accepted, req.Entries...)
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"accepted":` + strconv.Itoa(len(req.Entries)) + `}`))
	})
}

func (s *ingestServer) acceptedCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.accepted)
}

func (s *ingestServer) requestCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.requests
}

// newTestClient wires a client to the scripted server on a fake clock
// with zero-jitter backoff, so every delay is exact and no wall time
// is slept.
func newTestClient(t *testing.T, srv *httptest.Server, mutate func(*Config)) (*Client, *fakeSleeper) {
	t.Helper()
	clock := newFakeClock()
	sleeper := &fakeSleeper{clock: clock}
	cfg := Config{
		MaxBatch:       4,
		FlushInterval:  time.Hour, // tests flush explicitly
		RequestTimeout: 5 * time.Second,
		MaxAttempts:    4,
		SpoolCapacity:  64,
		Backoff:        BackoffConfig{Base: 100 * time.Millisecond, Max: 10 * time.Second, Factor: 2, Jitter: -1},
		Breaker:        BreakerConfig{Threshold: 100, Cooldown: time.Minute},
		Logger:         slog.New(slog.NewTextHandler(io.Discard, nil)),
		Now:            clock.Now,
		Sleep:          sleeper.Sleep,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	c := New(srv.URL, cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = c.Close(ctx)
	})
	return c, sleeper
}

// TestClientRetriesThenDelivers: transient 500s are retried on the
// exact exponential schedule and the batch is delivered once.
func TestClientRetriesThenDelivers(t *testing.T) {
	srv := &ingestServer{t: t, script: []int{500, 500, 0}}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	c, sleeper := newTestClient(t, ts, nil)
	if err := c.Report(entryN(1), nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(context.Background()); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if got := srv.acceptedCount(); got != 1 {
		t.Fatalf("server accepted %d entries, want 1", got)
	}
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond}
	got := sleeper.Slept()
	if len(got) != len(want) {
		t.Fatalf("slept %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sleep %d = %v, want %v (full: %v)", i, got[i], want[i], got)
		}
	}
	st := c.Stats()
	if st.Acked != 1 || st.Retries != 2 || st.SpoolDepth != 0 {
		t.Fatalf("stats = %+v, want 1 acked, 2 retries, empty spool", st)
	}
}

// TestClientHonorsRetryAfter: a 429 with Retry-After: 3 overrides the
// 100ms computed backoff with exactly 3s.
func TestClientHonorsRetryAfter(t *testing.T) {
	srv := &ingestServer{t: t, script: []int{429, 0}, retryAfter: "3"}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	c, sleeper := newTestClient(t, ts, nil)
	if err := c.Report(entryN(1), nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(context.Background()); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	got := sleeper.Slept()
	if len(got) != 1 || got[0] != 3*time.Second {
		t.Fatalf("slept %v, want exactly [3s]", got)
	}
}

// TestClientBreakerOpensAndRecovers: consecutive failures trip the
// breaker (fail-fast, no request reaches the wire), the cooldown wait
// is served from the breaker clock, and the half-open probe closes it
// again once the server recovers.
func TestClientBreakerOpensAndRecovers(t *testing.T) {
	srv := &ingestServer{t: t, script: []int{500, 500, 500}}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	var c *Client
	c, _ = newTestClient(t, ts, func(cfg *Config) {
		cfg.Breaker = BreakerConfig{Threshold: 3, Cooldown: time.Minute}
		cfg.MaxAttempts = 6
	})
	if err := c.Report(entryN(1), nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(context.Background()); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	st := c.Stats()
	if st.BreakerOpens != 1 {
		t.Fatalf("breaker opened %d times, want 1", st.BreakerOpens)
	}
	if st.Acked != 1 {
		t.Fatalf("acked %d, want 1 (delivered by half-open probe)", st.Acked)
	}
	// 3 wire failures + 1 success: the breaker opened once, so exactly
	// one cooldown-length wait must appear among the sleeps.
	if got := srv.requestCount(); got != 4 {
		t.Fatalf("server saw %d requests, want 4 (fail-fast while open)", got)
	}
}

// TestClientDropsPoisonBatch: a permanent 4xx rejection drops the
// batch (counted, reported via OnDrop) instead of wedging the spool.
func TestClientDropsPoisonBatch(t *testing.T) {
	srv := &ingestServer{t: t, script: []int{400}}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	var droppedMu sync.Mutex
	var droppedReasons []string
	c, sleeper := newTestClient(t, ts, func(cfg *Config) {
		cfg.OnDrop = func(e driftlog.Entry, reason string) {
			droppedMu.Lock()
			droppedReasons = append(droppedReasons, reason)
			droppedMu.Unlock()
		}
	})
	if err := c.Report(entryN(1), nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(context.Background()); err != nil {
		t.Fatalf("Flush after permanent rejection should not error, got %v", err)
	}
	st := c.Stats()
	if st.Rejected != 1 || st.Acked != 0 || st.SpoolDepth != 0 {
		t.Fatalf("stats = %+v, want 1 rejected, 0 acked, empty spool", st)
	}
	if len(sleeper.Slept()) != 0 {
		t.Fatalf("permanent errors must not back off, slept %v", sleeper.Slept())
	}
	droppedMu.Lock()
	defer droppedMu.Unlock()
	if len(droppedReasons) != 1 || droppedReasons[0] != "rejected" {
		t.Fatalf("OnDrop reasons = %v, want [rejected]", droppedReasons)
	}
}

// TestClientSpoolOverflowAcksOnlySurvivors: overflowing the spool
// before connectivity returns drops the oldest entries; after a flush,
// acked + dropped == reported and OnAck saw exactly the survivors.
func TestClientSpoolOverflowAcksOnlySurvivors(t *testing.T) {
	srv := &ingestServer{t: t}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	var ackMu sync.Mutex
	acked := map[string]bool{}
	c, _ := newTestClient(t, ts, func(cfg *Config) {
		cfg.SpoolCapacity = 8
		// MaxBatch above the push count keeps the background worker
		// asleep (nothing reaches the wake threshold), so the overflow
		// sequence is fully deterministic.
		cfg.MaxBatch = 32
		cfg.OnAck = func(entries []driftlog.Entry) {
			ackMu.Lock()
			for _, e := range entries {
				acked[e.Attrs["n"]] = true
			}
			ackMu.Unlock()
		}
	})
	for i := 0; i < 20; i++ {
		if err := c.Report(entryN(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(context.Background()); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	st := c.Stats()
	if st.Acked != 8 || st.SpoolDropped != 12 {
		t.Fatalf("acked %d dropped %d, want 8 acked (capacity) and 12 dropped", st.Acked, st.SpoolDropped)
	}
	if st.SpoolDepth != 0 {
		t.Fatalf("spool depth %d after flush, want 0", st.SpoolDepth)
	}
	ackMu.Lock()
	defer ackMu.Unlock()
	if len(acked) != 8 {
		t.Fatalf("OnAck saw %d unique entries, want 8", len(acked))
	}
	for i := 12; i < 20; i++ {
		if !acked[strconv.Itoa(i)] {
			t.Fatalf("newest entry %d was not acked; acked set: %v", i, acked)
		}
	}
}

// TestClientCloseLeaksNoGoroutines: Close stops the background worker;
// repeated create/close cycles leave the goroutine count where it
// started.
func TestClientCloseLeaksNoGoroutines(t *testing.T) {
	srv := &ingestServer{t: t}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		clock := newFakeClock()
		sleeper := &fakeSleeper{clock: clock}
		c := New(ts.URL, Config{
			FlushInterval: time.Millisecond,
			// Keep-alives would park connection goroutines in the shared
			// pool and fail the leak accounting below.
			HTTPTransport: &http.Transport{DisableKeepAlives: true},
			Logger:        slog.New(slog.NewTextHandler(io.Discard, nil)),
			Now:           clock.Now,
			Sleep:         sleeper.Sleep,
		})
		if err := c.Report(entryN(i), nil); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := c.Close(ctx); err != nil {
			t.Fatalf("Close: %v", err)
		}
		cancel()
		if err := c.Report(entryN(0), nil); err != ErrClosed {
			t.Fatalf("Report after Close = %v, want ErrClosed", err)
		}
		// Close must have drained the spool before returning.
		if st := c.Stats(); st.SpoolDepth != 0 {
			t.Fatalf("cycle %d: spool depth %d after Close", i, st.SpoolDepth)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, after)
	}
	if got := srv.acceptedCount(); got != 10 {
		t.Fatalf("server accepted %d entries, want 10 (one per cycle)", got)
	}
}

// TestClientCancelledFlush: a cancelled context aborts the retry loop
// promptly and leaves undelivered entries spooled (no loss, no ack).
func TestClientCancelledFlush(t *testing.T) {
	srv := &ingestServer{t: t, script: []int{500}}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	c, _ := newTestClient(t, ts, nil)
	if err := c.Report(entryN(1), nil); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.Flush(ctx); err == nil {
		t.Fatal("Flush with cancelled context succeeded, want error")
	}
	if st := c.Stats(); st.Acked != 0 || st.SpoolDepth != 1 {
		t.Fatalf("stats = %+v, want entry still spooled and unacked", st)
	}
	// The aborted flush lost nothing: a later flush (here riding through
	// one scripted 500) delivers the spooled entry. Draining now also
	// keeps the Cleanup Close from retrying against a torn-down server.
	if err := c.Flush(context.Background()); err != nil {
		t.Fatalf("recovery Flush: %v", err)
	}
	if st := c.Stats(); st.Acked != 1 || st.SpoolDepth != 0 {
		t.Fatalf("stats after recovery = %+v, want delivered", st)
	}
}
