package transport

import "nazar/internal/obs"

// clientMetrics are the transport instruments. Every client registers
// under a `client` label so multiple clients (e.g. a per-tenant fleet
// uploader and a control-plane poller) can share one registry without
// colliding.
type clientMetrics struct {
	retries      *obs.Counter
	acked        *obs.Counter
	droppedSpool *obs.Counter
	rejected     *obs.Counter
	breakerOpens *obs.Counter
	flushSecs    *obs.Histogram
}

func newClientMetrics(reg *obs.Registry, name string, c *Client) *clientMetrics {
	l := obs.L("client", name)
	m := &clientMetrics{
		retries: reg.Counter("nazar_transport_retries_total",
			"Request attempts beyond the first (per-batch and per-call retries).", l),
		acked: reg.Counter("nazar_transport_entries_acked_total",
			"Entries the server acknowledged (at-least-once delivered).", l),
		droppedSpool: reg.Counter("nazar_transport_entries_dropped_total",
			"Entries lost before acknowledgment.", l, obs.L("reason", "spool_full")),
		rejected: reg.Counter("nazar_transport_entries_dropped_total",
			"Entries lost before acknowledgment.", l, obs.L("reason", "rejected")),
		breakerOpens: reg.Counter("nazar_transport_breaker_opens_total",
			"Circuit-breaker open transitions.", l),
		flushSecs: reg.Histogram("nazar_transport_flush_seconds",
			"Latency of one accepted ingest batch (includes retries).", nil, l),
	}
	reg.GaugeFunc("nazar_transport_spool_depth", "Entries waiting in the offline spool.",
		func() float64 { return float64(c.spool.Len()) }, l)
	reg.GaugeFunc("nazar_transport_breaker_state",
		"Circuit-breaker state (0 closed, 1 half-open, 2 open).",
		func() float64 { return float64(c.breaker.State()) }, l)
	return m
}
