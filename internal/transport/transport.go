// Package transport is the production device→cloud client: the
// resilient half of the wire protocol that internal/httpapi speaks.
//
// The paper's deployment model is millions of intermittently-connected
// mobile devices reporting drift-log entries and pulling adapted
// versions over flaky cellular links. httpapi.Client is a thin wire
// binding — one request, one error — which is fine for tests and fatal
// for a fleet. Client layers the reliability machinery on top:
//
//   - a bounded offline spool that buffers Report calls while the
//     network is down, coalesces them into IngestBatch round-trips,
//     and degrades by dropping its oldest entries when full;
//   - jittered exponential backoff that honors Retry-After;
//   - per-request timeouts and end-to-end context cancellation;
//   - a consecutive-failure circuit breaker with half-open probes, so
//     a dead backend costs one probe per cooldown instead of a retry
//     storm from every device;
//   - at-least-once acknowledgment: entries leave the spool only after
//     the server confirmed the batch, and the OnAck hook reports
//     exactly which entries were delivered.
//
// Everything is instrumented through internal/obs (retries, breaker
// state, spool depth, dropped entries) and every time source is
// injectable, so the whole state machine is testable with a fake clock
// and a seeded PRNG — see the package tests and the chaos harness in
// internal/pipeline.
package transport

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"nazar/internal/adapt"
	"nazar/internal/driftlog"
	"nazar/internal/httpapi"
	"nazar/internal/nn"
	"nazar/internal/obs"
)

// ErrClosed is returned by Report after Close.
var ErrClosed = errors.New("transport: client closed")

// Config tunes the client. The zero value is production-ready; tests
// and the chaos harness shrink the time constants.
type Config struct {
	// MaxBatch caps entries per IngestBatch round-trip (default 256).
	MaxBatch int
	// FlushInterval is how often the background worker ships a partial
	// batch (default 500ms).
	FlushInterval time.Duration
	// RequestTimeout bounds each individual attempt (default 10s).
	RequestTimeout time.Duration
	// MaxAttempts bounds attempts per batch within one flush cycle and
	// per retried call (default 8). Exhausting it is not data loss for
	// ingest: the batch stays spooled for the next cycle.
	MaxAttempts int
	// SpoolCapacity bounds the offline spool (default 4096 entries).
	SpoolCapacity int
	// Backoff is the retry schedule; Breaker the failure gate.
	Backoff BackoffConfig
	Breaker BreakerConfig
	// Seed seeds the jitter PRNG (deterministic backoff in tests).
	Seed uint64
	// Name labels this client's metrics (default "device").
	Name string
	// Registry receives the transport instruments (private one if nil).
	Registry *obs.Registry
	// Logger receives terminal failures — exhausted retries, rejected
	// batches, spool evictions (slog.Default if nil).
	Logger *slog.Logger
	// OnAck, if set, is called with each server-acknowledged batch.
	OnAck func(entries []driftlog.Entry)
	// OnDrop, if set, is called per entry lost before acknowledgment
	// (reason "spool_full" or "rejected").
	OnDrop func(entry driftlog.Entry, reason string)
	// HTTPTransport overrides the underlying RoundTripper — the seam
	// where faultinject.Injector.RoundTripper plugs in.
	HTTPTransport http.RoundTripper
	// Now and Sleep inject the clock (tests run the retry/breaker
	// machinery on a fake clock with zero wall-time sleeps).
	Now   func() time.Time
	Sleep func(ctx context.Context, d time.Duration) error
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 500 * time.Millisecond
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 8
	}
	if c.SpoolCapacity <= 0 {
		c.SpoolCapacity = 4096
	}
	if c.Name == "" {
		c.Name = "device"
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Sleep == nil {
		c.Sleep = sleepContext
	}
	return c
}

// sleepContext is the real-clock Sleep: a timer racing the context.
func sleepContext(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Stats is a point-in-time snapshot of the client's delivery counters.
type Stats struct {
	// Acked counts entries the server acknowledged.
	Acked uint64
	// SpoolDropped counts entries evicted by drop-oldest before they
	// were acknowledged.
	SpoolDropped uint64
	// Rejected counts entries the server permanently refused (4xx).
	Rejected uint64
	// Retries counts attempts beyond the first, across all calls.
	Retries uint64
	// BreakerOpens counts circuit-breaker open transitions.
	BreakerOpens uint64
	// SpoolDepth is the current number of waiting entries.
	SpoolDepth int
	// BreakerState is the current breaker state.
	BreakerState BreakerState
}

// Client is the resilient device-side client. Report never blocks on
// the network: entries enter the spool and a background worker ships
// them in batches. Control-plane calls (Versions, Base, Analyze,
// Status) retry through the same backoff and breaker.
type Client struct {
	api *httpapi.Client
	cfg Config

	spool   *spool
	breaker *breaker
	backoff *backoff
	m       *clientMetrics

	acked   atomic.Uint64
	rejects atomic.Uint64
	retries atomic.Uint64

	drainMu sync.Mutex // serializes drain (worker vs Flush vs Close)

	wake       chan struct{}
	stop       chan struct{}
	workerDone chan struct{}
	bgCtx      context.Context
	bgCancel   context.CancelFunc
	closed     atomic.Bool
	closeOnce  sync.Once
}

// Option customizes NewClient (functional options, consistent with
// cloud.WithClock / httpapi.WithRegistry).
type Option func(*clientOptions)

type clientOptions struct {
	cfg      Config
	codec    httpapi.Codec
	compress bool
}

// WithConfig replaces the whole Config (zero fields still default).
func WithConfig(cfg Config) Option {
	return func(o *clientOptions) { o.cfg = cfg }
}

// WithCodec selects the ingest wire codec — e.g.
// httpapi.BinaryCodec{} for the columnar binary framing. If the server
// refuses the codec (415 / codec_unsupported) the client logs it and
// downgrades to JSON for the rest of its life, so a fleet can roll a
// new codec before its cloud does.
func WithCodec(c httpapi.Codec) Option {
	return func(o *clientOptions) { o.codec = c }
}

// WithCompression gzips spooled ingest frames on the wire.
func WithCompression(on bool) Option {
	return func(o *clientOptions) { o.compress = on }
}

// WithBatcher tunes the spool's shipping cadence: entries per
// IngestBatch round-trip and the partial-batch flush interval.
func WithBatcher(maxBatch int, flushInterval time.Duration) Option {
	return func(o *clientOptions) {
		o.cfg.MaxBatch = maxBatch
		o.cfg.FlushInterval = flushInterval
	}
}

// NewClient returns a started client for the given server URL.
func NewClient(baseURL string, opts ...Option) *Client {
	var o clientOptions
	for _, opt := range opts {
		opt(&o)
	}
	cfg := o.cfg.withDefaults()
	api := httpapi.NewClient(baseURL)
	// Attempt deadlines come from per-request contexts, not a global
	// client timeout (which would also cap slow-but-progressing pulls).
	api.HTTP = &http.Client{Transport: cfg.HTTPTransport}
	api.Codec = o.codec
	api.Compress = o.compress
	c := &Client{
		api:        api,
		cfg:        cfg,
		spool:      newSpool(cfg.SpoolCapacity),
		backoff:    newBackoff(cfg.Backoff, cfg.Seed),
		wake:       make(chan struct{}, 1),
		stop:       make(chan struct{}),
		workerDone: make(chan struct{}),
	}
	c.breaker = newBreaker(cfg.Breaker, cfg.Now)
	c.m = newClientMetrics(cfg.Registry, cfg.Name, c)
	c.bgCtx, c.bgCancel = context.WithCancel(context.Background())
	go c.worker()
	return c
}

// New returns a started client for the given server URL.
//
// Deprecated: use NewClient with WithConfig (plus WithCodec /
// WithCompression / WithBatcher as needed). Kept as a thin wrapper so
// existing call sites migrate mechanically.
func New(baseURL string, cfg Config) *Client {
	return NewClient(baseURL, WithConfig(cfg))
}

// Report queues one drift-log entry (+ optional sample) for delivery.
// It never blocks on the network; when the spool is full the oldest
// unacknowledged entry is dropped to make room. The entry is only
// "delivered" once the server acknowledges its batch (OnAck / Stats).
func (c *Client) Report(entry driftlog.Entry, sample []float64) error {
	if c.closed.Load() {
		return ErrClosed
	}
	evicted, dropped := c.spool.Push(entry, sample)
	if dropped {
		c.m.droppedSpool.Inc()
		if c.cfg.OnDrop != nil {
			c.cfg.OnDrop(evicted, "spool_full")
		}
	}
	if c.spool.Len() >= c.cfg.MaxBatch {
		select {
		case c.wake <- struct{}{}:
		default:
		}
	}
	return nil
}

// Flush synchronously drains the spool: it returns once every spooled
// entry has been acknowledged or rejected, or with the first terminal
// error (entries then remain spooled for the next flush).
func (c *Client) Flush(ctx context.Context) error { return c.drain(ctx) }

// Close stops the background worker and makes a final drain attempt,
// retrying until the spool is empty or ctx is done. After Close,
// Report returns ErrClosed. Close is idempotent.
func (c *Client) Close(ctx context.Context) error {
	var err error
	c.closeOnce.Do(func() {
		c.closed.Store(true)
		close(c.stop)
		c.bgCancel() // abort any in-flight worker sleep/request
		<-c.workerDone
		for {
			err = c.drain(ctx)
			if err == nil || ctx.Err() != nil {
				break
			}
		}
		if err != nil {
			c.cfg.Logger.Error("transport: close abandoned spooled entries",
				"remaining", c.spool.Len(), "err", err)
		}
	})
	return err
}

// Stats snapshots the delivery counters.
func (c *Client) Stats() Stats {
	return Stats{
		Acked:        c.acked.Load(),
		SpoolDropped: c.spool.Dropped(),
		Rejected:     c.rejects.Load(),
		Retries:      c.retries.Load(),
		BreakerOpens: c.breaker.Opens(),
		SpoolDepth:   c.spool.Len(),
		BreakerState: c.breaker.State(),
	}
}

// API exposes the underlying thin wire client (no retries) for calls
// that should fail fast.
func (c *Client) API() *httpapi.Client { return c.api }

// worker is the background flush loop: it ships full batches as soon
// as Report signals one, and partial batches every FlushInterval.
func (c *Client) worker() {
	defer close(c.workerDone)
	timer := time.NewTimer(c.cfg.FlushInterval)
	defer timer.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-c.wake:
		case <-timer.C:
		}
		// Errors are already counted and logged; entries stay spooled
		// and the next tick retries them.
		_ = c.drain(c.bgCtx)
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(c.cfg.FlushInterval)
	}
}

// drain ships spooled entries batch by batch until the spool is empty.
func (c *Client) drain(ctx context.Context) error {
	c.drainMu.Lock()
	defer c.drainMu.Unlock()
	for {
		entries, samples, lastSeq, anySample := c.spool.Peek(c.cfg.MaxBatch)
		if len(entries) == 0 {
			return nil
		}
		if !anySample {
			samples = nil
		}
		if err := c.sendBatch(ctx, entries, samples, lastSeq); err != nil {
			return err
		}
	}
}

// sendBatch delivers one batch with retries. On success or permanent
// rejection the batch is removed from the spool; on exhausted retries
// it stays for the next drain cycle.
func (c *Client) sendBatch(ctx context.Context, entries []driftlog.Entry, samples [][]float64, lastSeq uint64) error {
	span := c.m.flushSecs.Start()
	err := c.retry(ctx, func(rctx context.Context) error {
		_, err := c.api.IngestBatchContext(rctx, entries, samples)
		return err
	})
	switch {
	case err == nil:
		span.End()
		c.spool.AckThrough(lastSeq)
		c.acked.Add(uint64(len(entries)))
		c.m.acked.Add(uint64(len(entries)))
		if c.cfg.OnAck != nil {
			c.cfg.OnAck(entries)
		}
		return nil
	case isPermanent(err):
		if c.downgradeCodec(err) {
			// The server refused the codec, not the data. Re-send the
			// same batch as JSON instead of poison-dropping it; the
			// codec field is already cleared (we hold drainMu), so the
			// recursion cannot downgrade twice.
			return c.sendBatch(ctx, entries, samples, lastSeq)
		}
		// The server understood the request and refused it; retrying
		// the same bytes cannot succeed. Drop the batch rather than
		// wedging the spool behind a poison batch.
		c.spool.AckThrough(lastSeq)
		c.rejects.Add(uint64(len(entries)))
		c.m.rejected.Add(uint64(len(entries)))
		c.cfg.Logger.Error("transport: batch rejected",
			"entries", len(entries),
			"content_type", c.ingestContentType(),
			"body_snippet", bodySnippet(err),
			"err", err)
		if c.cfg.OnDrop != nil {
			for _, e := range entries {
				c.cfg.OnDrop(e, "rejected")
			}
		}
		return nil
	default:
		c.cfg.Logger.Warn("transport: batch undelivered, will retry",
			"entries", len(entries), "err", err)
		return err
	}
}

// retry runs op with per-attempt timeouts, consulting the breaker
// before each attempt and backing off (honoring Retry-After) between
// failures. Permanent errors return immediately.
func (c *Client) retry(ctx context.Context, op func(ctx context.Context) error) error {
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; {
		if err := ctx.Err(); err != nil {
			return err
		}
		if !c.breaker.Allow() {
			// Fail-fast window: wait out the cooldown, then loop to
			// take (or contend for) the half-open probe slot.
			wait := c.breaker.NextAllowed().Sub(c.cfg.Now())
			if wait <= 0 {
				wait = time.Millisecond
			}
			if err := c.cfg.Sleep(ctx, wait); err != nil {
				return err
			}
			continue
		}
		rctx, cancel := context.WithTimeout(ctx, c.cfg.RequestTimeout)
		err := op(rctx)
		cancel()
		if err == nil {
			c.breaker.Success()
			return nil
		}
		if isPermanent(err) {
			// The request was delivered and refused — the link works.
			c.breaker.Success()
			return err
		}
		if c.breaker.Failure() {
			c.m.breakerOpens.Inc()
		}
		lastErr = err
		attempt++
		if attempt >= c.cfg.MaxAttempts {
			break
		}
		c.retries.Add(1)
		c.m.retries.Inc()
		if err := c.cfg.Sleep(ctx, c.backoff.Delay(attempt-1, retryAfter(err))); err != nil {
			return err
		}
	}
	return fmt.Errorf("transport: %d attempts exhausted: %w", c.cfg.MaxAttempts, lastErr)
}

// isPermanent reports whether err is a server verdict that retrying
// identical bytes cannot change: a non-429 4xx. Network failures,
// timeouts, 429 and 5xx are transient.
func isPermanent(err error) bool {
	var apiErr *httpapi.APIError
	if errors.As(err, &apiErr) {
		return apiErr.Status >= 400 && apiErr.Status < 500 && apiErr.Status != http.StatusTooManyRequests
	}
	return false
}

// downgradeCodec checks whether a permanent rejection is really a
// codec-negotiation failure (415 or codec_unsupported) while a
// non-JSON codec is configured. If so it stickily clears the codec —
// the caller holds drainMu, which serializes every sendBatch — and
// reports that the batch deserves one more attempt as JSON.
func (c *Client) downgradeCodec(err error) bool {
	if c.api.Codec == nil || c.api.Codec.ContentType() == httpapi.ContentTypeJSON {
		return false
	}
	var apiErr *httpapi.APIError
	if !errors.As(err, &apiErr) {
		return false
	}
	if apiErr.Code != httpapi.CodeCodecUnsupported && apiErr.Status != http.StatusUnsupportedMediaType {
		return false
	}
	c.cfg.Logger.Warn("transport: server refused codec, downgrading to json",
		"content_type", c.api.Codec.ContentType(), "err", err)
	c.api.Codec = nil
	return true
}

// ingestContentType names the media type batches are currently encoded
// with — the negotiated codec's, or the JSON default.
func (c *Client) ingestContentType() string {
	if c.api.Codec != nil {
		return c.api.Codec.ContentType()
	}
	return httpapi.ContentTypeJSON
}

// bodySnippet extracts a bounded slice of the server's response body
// from a rejection error, so the poison-drop log line shows what the
// server actually said.
func bodySnippet(err error) string {
	var apiErr *httpapi.APIError
	if !errors.As(err, &apiErr) {
		return ""
	}
	const maxSnippet = 200
	msg := apiErr.Message
	if len(msg) > maxSnippet {
		msg = msg[:maxSnippet] + "..."
	}
	return msg
}

// retryAfter extracts the server's Retry-After hint, if any.
func retryAfter(err error) time.Duration {
	var apiErr *httpapi.APIError
	if errors.As(err, &apiErr) {
		return apiErr.RetryAfter
	}
	return 0
}

// Versions pulls versions created at or after since, with retries.
func (c *Client) Versions(ctx context.Context, since time.Time) ([]adapt.BNVersion, error) {
	var out []adapt.BNVersion
	err := c.retry(ctx, func(rctx context.Context) error {
		var err error
		out, err = c.api.VersionsContext(rctx, since)
		return err
	})
	return out, err
}

// Base pulls the current base model snapshot, with retries.
func (c *Client) Base(ctx context.Context) (*nn.NetSnapshot, error) {
	var out *nn.NetSnapshot
	err := c.retry(ctx, func(rctx context.Context) error {
		var err error
		out, err = c.api.BaseContext(rctx)
		return err
	})
	return out, err
}

// Analyze triggers an analysis/adaptation cycle, with retries. The
// cycle is idempotent-enough for at-least-once delivery: re-running a
// window re-derives the same causes from the same log.
func (c *Client) Analyze(ctx context.Context, req httpapi.AnalyzeRequest) (httpapi.AnalyzeResponse, error) {
	var out httpapi.AnalyzeResponse
	err := c.retry(ctx, func(rctx context.Context) error {
		var err error
		out, err = c.api.AnalyzeContext(rctx, req)
		return err
	})
	return out, err
}

// Status fetches service counters, with retries.
func (c *Client) Status(ctx context.Context) (httpapi.StatusResponse, error) {
	var out httpapi.StatusResponse
	err := c.retry(ctx, func(rctx context.Context) error {
		var err error
		out, err = c.api.StatusContext(rctx)
		return err
	})
	return out, err
}
