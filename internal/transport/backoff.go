package transport

import (
	"math"
	"math/rand"
	"sync"
	"time"
)

// BackoffConfig parameterizes the jittered exponential retry schedule.
type BackoffConfig struct {
	// Base is the delay before the first retry (default 100ms).
	Base time.Duration
	// Max caps the computed delay (default 10s). A server-supplied
	// Retry-After longer than Max is still honored: the server knows
	// better than the client when it will be ready again.
	Max time.Duration
	// Factor is the per-attempt multiplier (default 2).
	Factor float64
	// Jitter spreads each delay uniformly over ±Jitter fraction of its
	// value (default 0.2), decorrelating a fleet of devices that all
	// lost connectivity at the same moment. Negative disables jitter
	// (tests use that for exact schedules); values above 1 are capped.
	Jitter float64
}

func (c BackoffConfig) withDefaults() BackoffConfig {
	if c.Base <= 0 {
		c.Base = 100 * time.Millisecond
	}
	if c.Max <= 0 {
		c.Max = 10 * time.Second
	}
	if c.Factor < 1 {
		c.Factor = 2
	}
	if c.Jitter == 0 {
		c.Jitter = 0.2
	}
	if c.Jitter < 0 {
		c.Jitter = 0
	}
	if c.Jitter > 1 {
		c.Jitter = 1
	}
	return c
}

// backoff computes retry delays. Safe for concurrent use; the jitter
// stream is a private seeded PRNG so tests are deterministic.
type backoff struct {
	cfg BackoffConfig

	mu  sync.Mutex
	rng *rand.Rand
}

func newBackoff(cfg BackoffConfig, seed uint64) *backoff {
	return &backoff{cfg: cfg.withDefaults(), rng: rand.New(rand.NewSource(int64(seed)))}
}

// Delay returns how long to wait before retry number attempt (0-based:
// attempt 0 is the delay after the first failure). A positive
// retryAfter (the server's Retry-After header) overrides the computed
// schedule whenever it is longer — it is used exactly, without jitter,
// because the server named a specific time.
func (b *backoff) Delay(attempt int, retryAfter time.Duration) time.Duration {
	d := float64(b.cfg.Base) * math.Pow(b.cfg.Factor, float64(attempt))
	if d > float64(b.cfg.Max) {
		d = float64(b.cfg.Max)
	}
	if b.cfg.Jitter > 0 {
		b.mu.Lock()
		u := b.rng.Float64()
		b.mu.Unlock()
		d *= 1 - b.cfg.Jitter + 2*b.cfg.Jitter*u
	}
	if retryAfter > time.Duration(d) {
		return retryAfter
	}
	return time.Duration(d)
}
