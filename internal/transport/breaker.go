package transport

import (
	"sync"
	"time"
)

// BreakerState is the circuit-breaker state.
type BreakerState int32

const (
	// BreakerClosed passes requests through (the healthy state).
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen admits exactly one probe request; its outcome
	// decides between closing and re-opening.
	BreakerHalfOpen
	// BreakerOpen fails fast until the cooldown elapses.
	BreakerOpen
)

// String renders the state for logs and metrics.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	}
	return "unknown"
}

// BreakerConfig parameterizes the consecutive-failure circuit breaker.
type BreakerConfig struct {
	// Threshold opens the breaker after this many consecutive failures
	// (default 5).
	Threshold int
	// Cooldown is how long the breaker stays open before admitting a
	// half-open probe (default 5s).
	Cooldown time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	return c
}

// breaker is a consecutive-failure circuit breaker with half-open
// probes. State machine:
//
//	closed    --[Threshold consecutive failures]--> open
//	open      --[Cooldown elapsed, next Allow]----> half-open (1 probe)
//	half-open --[probe success]-------------------> closed
//	half-open --[probe failure]-------------------> open (cooldown restarts)
//
// Any success in closed resets the failure count. Safe for concurrent
// use; now is injected so the transition table is testable without
// sleeping.
type breaker struct {
	cfg BreakerConfig
	now func() time.Time

	mu       sync.Mutex
	state    BreakerState
	fails    int
	openedAt time.Time
	opens    uint64 // cumulative closed/half-open -> open transitions
}

func newBreaker(cfg BreakerConfig, now func() time.Time) *breaker {
	return &breaker{cfg: cfg.withDefaults(), now: now}
}

// Allow reports whether a request may proceed, transitioning
// open→half-open when the cooldown has elapsed. In half-open only the
// call that performed the transition is admitted; concurrent callers
// are rejected until the probe resolves via Success or Failure.
func (b *breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) >= b.cfg.Cooldown {
			b.state = BreakerHalfOpen
			return true
		}
		return false
	default: // half-open: a probe is already in flight
		return false
	}
}

// Success records a successful request.
func (b *breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.fails = 0
}

// Failure records a failed request, opening the breaker at the
// threshold or on a failed half-open probe. It reports whether this
// failure transitioned the breaker to open.
func (b *breaker) Failure() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.open()
		return true
	}
	b.fails++
	if b.state == BreakerClosed && b.fails >= b.cfg.Threshold {
		b.open()
		return true
	}
	return false
}

// open transitions to BreakerOpen (caller holds b.mu).
func (b *breaker) open() {
	b.state = BreakerOpen
	b.fails = 0
	b.openedAt = b.now()
	b.opens++
}

// State returns the current state without transitioning it.
func (b *breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Opens returns the cumulative number of times the breaker opened.
func (b *breaker) Opens() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}

// NextAllowed returns the earliest time a request could be admitted:
// now when closed (or a half-open probe is pending resolution), or the
// end of the cooldown when open.
func (b *breaker) NextAllowed() time.Time {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen {
		return b.openedAt.Add(b.cfg.Cooldown)
	}
	return b.now()
}
