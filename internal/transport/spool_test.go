package transport

import (
	"fmt"
	"math/rand"
	"strconv"
	"testing"

	"nazar/internal/driftlog"
)

func entryN(n int) driftlog.Entry {
	return driftlog.Entry{Attrs: map[string]string{"n": strconv.Itoa(n)}}
}

func entryNum(t *testing.T, e driftlog.Entry) int {
	t.Helper()
	n, err := strconv.Atoi(e.Attrs["n"])
	if err != nil {
		t.Fatalf("bad test entry: %v", err)
	}
	return n
}

// TestSpoolOverflowDropsOldest: pushing past capacity evicts exactly
// the oldest entries, keeps the newest, and counts the drops.
func TestSpoolOverflowDropsOldest(t *testing.T) {
	s := newSpool(4)
	for i := 0; i < 10; i++ {
		evicted, dropped := s.Push(entryN(i), nil)
		if wantDrop := i >= 4; dropped != wantDrop {
			t.Fatalf("push %d: dropped = %v, want %v", i, dropped, wantDrop)
		}
		if dropped {
			if got, want := entryNum(t, evicted), i-4; got != want {
				t.Fatalf("push %d evicted entry %d, want %d (oldest)", i, got, want)
			}
		}
	}
	if s.Len() != 4 || s.Dropped() != 6 {
		t.Fatalf("Len=%d Dropped=%d, want 4 and 6", s.Len(), s.Dropped())
	}
	entries, _, _, _ := s.Peek(10)
	for i, e := range entries {
		if got, want := entryNum(t, e), 6+i; got != want {
			t.Fatalf("survivor %d is entry %d, want %d", i, got, want)
		}
	}
}

// TestSpoolAckBySequenceSurvivesConcurrentDrops: acking by sequence
// after drop-oldest evicted part of the in-flight batch removes only
// what is still present, and never touches entries pushed after the
// peek.
func TestSpoolAckBySequenceSurvivesConcurrentDrops(t *testing.T) {
	s := newSpool(4)
	for i := 0; i < 4; i++ {
		s.Push(entryN(i), nil)
	}
	_, _, lastSeq, _ := s.Peek(3) // batch = entries 0,1,2 (seqs 0,1,2)

	// While "in flight", two more pushes evict entries 0 and 1.
	s.Push(entryN(4), nil)
	s.Push(entryN(5), nil)

	if removed := s.AckThrough(lastSeq); removed != 1 {
		t.Fatalf("AckThrough removed %d, want 1 (only entry 2 remained)", removed)
	}
	entries, _, _, _ := s.Peek(10)
	if len(entries) != 3 {
		t.Fatalf("got %d survivors, want 3", len(entries))
	}
	for i, want := range []int{3, 4, 5} {
		if got := entryNum(t, entries[i]); got != want {
			t.Fatalf("survivor %d is entry %d, want %d", i, got, want)
		}
	}
}

// TestSpoolProperty is a randomized property test over mixed
// push/peek/ack traffic: (1) order is always FIFO by push order, (2)
// pushes − drops − acks == occupancy, (3) occupancy never exceeds
// capacity, and (4) a drop-oldest victim is always the entry with the
// smallest surviving push number.
func TestSpoolProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 50; round++ {
		capacity := 1 + rng.Intn(16)
		s := newSpool(capacity)
		pushed, dropped, acked := 0, 0, 0
		oldestAlive := 0 // smallest push number still spooled
		for op := 0; op < 200; op++ {
			switch rng.Intn(3) {
			case 0: // push
				evicted, didDrop := s.Push(entryN(pushed), nil)
				pushed++
				if didDrop {
					if got := entryNum(t, evicted); got != oldestAlive {
						t.Fatalf("round %d: evicted %d, want oldest %d", round, got, oldestAlive)
					}
					oldestAlive++
					dropped++
				}
			case 1: // peek: FIFO contiguous from oldestAlive
				n := 1 + rng.Intn(capacity)
				entries, _, _, _ := s.Peek(n)
				for i, e := range entries {
					if got, want := entryNum(t, e), oldestAlive+i; got != want {
						t.Fatalf("round %d: peek[%d] = entry %d, want %d", round, i, got, want)
					}
				}
			case 2: // ack a prefix
				n := rng.Intn(capacity + 1)
				entries, _, lastSeq, _ := s.Peek(n)
				if len(entries) == 0 {
					continue
				}
				removed := s.AckThrough(lastSeq)
				if removed != len(entries) {
					t.Fatalf("round %d: acked %d, want %d", round, removed, len(entries))
				}
				oldestAlive += removed
				acked += removed
			}
			if got, want := s.Len(), pushed-dropped-acked; got != want {
				t.Fatalf("round %d: Len = %d, want pushes-drops-acks = %d", round, got, want)
			}
			if s.Len() > capacity {
				t.Fatalf("round %d: occupancy %d exceeds capacity %d", round, s.Len(), capacity)
			}
		}
		if s.Dropped() != uint64(dropped) {
			t.Fatalf("round %d: Dropped() = %d, want %d", round, s.Dropped(), dropped)
		}
	}
}

// TestSpoolPeekSamples: sample rows ride along and anySample reflects
// the peeked batch, not the whole spool.
func TestSpoolPeekSamples(t *testing.T) {
	s := newSpool(8)
	s.Push(entryN(0), nil)
	s.Push(entryN(1), []float64{1, 2})
	entries, samples, _, anySample := s.Peek(1)
	if len(entries) != 1 || anySample {
		t.Fatalf("first peek: %d entries anySample=%v, want 1 entry, no samples", len(entries), anySample)
	}
	entries, samples, _, anySample = s.Peek(2)
	if len(entries) != 2 || !anySample {
		t.Fatalf("second peek: %d entries anySample=%v, want 2 entries with samples", len(entries), anySample)
	}
	if samples[0] != nil || fmt.Sprint(samples[1]) != "[1 2]" {
		t.Fatalf("samples misaligned: %v", samples)
	}
}
