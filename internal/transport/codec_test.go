package transport

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"nazar/internal/driftlog"
	"nazar/internal/httpapi"
)

// legacyServer mimics a cloud that predates the binary codec: any
// non-JSON Content-Type gets the 415 + codec_unsupported envelope a
// real httpapi server would emit, JSON is accepted normally.
type legacyServer struct {
	mu       sync.Mutex
	accepted int
	refused  int
}

func (s *legacyServer) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ct := r.Header.Get("Content-Type")
		if ct != "" && ct != "application/json" {
			s.mu.Lock()
			s.refused++
			s.mu.Unlock()
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusUnsupportedMediaType)
			_, _ = w.Write([]byte(`{"error":{"code":"codec_unsupported","message":"httpapi: unsupported content type"}}`))
			return
		}
		var req struct {
			Entries []driftlog.Entry `json:"entries"`
			Samples [][]float64      `json:"samples"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		s.mu.Lock()
		s.accepted += len(req.Entries)
		s.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"accepted":` + strconv.Itoa(len(req.Entries)) + `}`))
	})
}

// TestCodecDowngradeOnUnsupported: a binary-configured client talking
// to a JSON-only server must not poison-drop the batch — it downgrades
// to JSON stickily and re-delivers the same entries.
func TestCodecDowngradeOnUnsupported(t *testing.T) {
	srv := &legacyServer{}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	var logBuf bytes.Buffer
	var logMu sync.Mutex
	clock := newFakeClock()
	sleeper := &fakeSleeper{clock: clock}
	c := NewClient(ts.URL,
		WithConfig(Config{
			MaxBatch:       4,
			FlushInterval:  time.Hour,
			RequestTimeout: 5 * time.Second,
			MaxAttempts:    4,
			SpoolCapacity:  64,
			Backoff:        BackoffConfig{Base: time.Millisecond, Max: 10 * time.Millisecond, Factor: 2, Jitter: -1},
			Breaker:        BreakerConfig{Threshold: 100, Cooldown: time.Minute},
			Logger:         slog.New(slog.NewTextHandler(lockedWriter{&logMu, &logBuf}, nil)),
			Now:            clock.Now,
			Sleep:          sleeper.Sleep,
		}),
		WithCodec(httpapi.BinaryCodec{}),
	)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = c.Close(ctx)
	}()

	for i := 0; i < 3; i++ {
		if err := c.Report(entryN(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(context.Background()); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	srv.mu.Lock()
	accepted, refused := srv.accepted, srv.refused
	srv.mu.Unlock()
	if refused == 0 {
		t.Fatal("server never saw the binary codec; test is vacuous")
	}
	if accepted != 3 {
		t.Fatalf("server accepted %d entries after downgrade, want 3", accepted)
	}
	st := c.Stats()
	if st.Rejected != 0 {
		t.Fatalf("downgrade counted %d rejected entries, want 0", st.Rejected)
	}
	if c.API().Codec != nil {
		t.Fatal("codec not cleared after downgrade; next batch would 415 again")
	}
	logMu.Lock()
	logs := logBuf.String()
	logMu.Unlock()
	if !strings.Contains(logs, "downgrading to json") || !strings.Contains(logs, "application/x-nazar-batch") {
		t.Fatalf("downgrade not logged with the refused content type:\n%s", logs)
	}

	// Subsequent batches go straight to JSON: refused count stays put.
	if err := c.Report(entryN(9), nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	srv.mu.Lock()
	refused2 := srv.refused
	srv.mu.Unlock()
	if refused2 != refused {
		t.Fatalf("client retried the refused codec (%d -> %d refusals)", refused, refused2)
	}
}

// TestRejectionLogDetail: a poison-drop's error log must name the
// negotiated content type and quote a snippet of the server's response
// body.
func TestRejectionLogDetail(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		_, _ = w.Write([]byte(`{"error":{"code":"invalid_request","message":"httpapi: entry 0 requires attrs"}}`))
	}))
	defer ts.Close()

	var logBuf bytes.Buffer
	var logMu sync.Mutex
	c, _ := newTestClient(t, ts, func(cfg *Config) {
		cfg.Logger = slog.New(slog.NewTextHandler(lockedWriter{&logMu, &logBuf}, nil))
	})

	if err := c.Report(entryN(1), nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(context.Background()); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if st := c.Stats(); st.Rejected != 1 {
		t.Fatalf("stats = %+v, want 1 rejected", st)
	}
	logMu.Lock()
	logs := logBuf.String()
	logMu.Unlock()
	for _, want := range []string{"batch rejected", "content_type=application/json", "entry 0 requires attrs"} {
		if !strings.Contains(logs, want) {
			t.Fatalf("rejection log missing %q:\n%s", want, logs)
		}
	}
}

// lockedWriter serializes concurrent slog writes from the worker and
// the drain path.
type lockedWriter struct {
	mu  *sync.Mutex
	buf *bytes.Buffer
}

func (w lockedWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}
