package transport

import (
	"sync"

	"nazar/internal/driftlog"
)

// spoolItem is one queued report with its monotonic sequence number.
// Sequence numbers, not positions, tie an in-flight batch back to the
// buffer: drop-oldest may evict entries while a send is in flight, and
// acking by sequence never removes an entry that was not sent.
type spoolItem struct {
	seq    uint64
	entry  driftlog.Entry
	sample []float64
}

// spool is the bounded offline buffer between Report and the wire: a
// fixed-capacity ring that degrades by dropping its oldest entries when
// full (fresh telemetry is worth more than stale telemetry, and the
// drift log is best-effort — matching the paper's lossy upload model).
// Safe for concurrent use.
type spool struct {
	mu      sync.Mutex
	buf     []spoolItem // ring; len(buf) == capacity
	head    int         // index of oldest item
	count   int
	nextSeq uint64
	dropped uint64
}

func newSpool(capacity int) *spool {
	if capacity <= 0 {
		capacity = 4096
	}
	return &spool{buf: make([]spoolItem, capacity)}
}

// Push appends a report, evicting the oldest entry when full. It
// returns the evicted entry (ok=false when nothing was dropped).
func (s *spool) Push(entry driftlog.Entry, sample []float64) (evicted driftlog.Entry, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count == len(s.buf) {
		evicted, ok = s.buf[s.head].entry, true
		s.buf[s.head] = spoolItem{}
		s.head = (s.head + 1) % len(s.buf)
		s.count--
		s.dropped++
	}
	tail := (s.head + s.count) % len(s.buf)
	s.buf[tail] = spoolItem{seq: s.nextSeq, entry: entry, sample: sample}
	s.nextSeq++
	s.count++
	return evicted, ok
}

// Peek copies up to n of the oldest entries without removing them,
// returning the batch plus the highest sequence number it contains and
// whether any row carries a sample. The batch stays spooled until
// AckThrough confirms delivery, which is what makes delivery
// at-least-once: a send that dies mid-flight leaves the entries queued
// for the next attempt.
func (s *spool) Peek(n int) (entries []driftlog.Entry, samples [][]float64, lastSeq uint64, anySample bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n > s.count {
		n = s.count
	}
	if n == 0 {
		return nil, nil, 0, false
	}
	entries = make([]driftlog.Entry, n)
	samples = make([][]float64, n)
	for i := 0; i < n; i++ {
		it := s.buf[(s.head+i)%len(s.buf)]
		entries[i] = it.entry
		samples[i] = it.sample
		if it.sample != nil {
			anySample = true
		}
		lastSeq = it.seq
	}
	return entries, samples, lastSeq, anySample
}

// AckThrough removes every spooled entry with sequence ≤ seq and
// returns how many were removed. Entries evicted by drop-oldest while
// the batch was in flight are simply no longer present — they were
// still delivered, so the caller's acknowledgment covers them.
func (s *spool) AckThrough(seq uint64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	removed := 0
	for s.count > 0 && s.buf[s.head].seq <= seq {
		s.buf[s.head] = spoolItem{}
		s.head = (s.head + 1) % len(s.buf)
		s.count--
		removed++
	}
	return removed
}

// Len returns the number of spooled entries.
func (s *spool) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Dropped returns the cumulative number of entries evicted by
// drop-oldest.
func (s *spool) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}
