package transport

import (
	"testing"
	"time"
)

// TestBackoffSchedule is the table-driven schedule test: with jitter
// disabled the delays are an exact exponential ramp capped at Max, and
// a Retry-After hint overrides the computed delay whenever longer.
func TestBackoffSchedule(t *testing.T) {
	tests := []struct {
		name       string
		cfg        BackoffConfig
		attempt    int
		retryAfter time.Duration
		want       time.Duration
	}{
		{"first retry", BackoffConfig{Base: 100 * time.Millisecond, Max: 10 * time.Second, Factor: 2}, 0, 0, 100 * time.Millisecond},
		{"second retry doubles", BackoffConfig{Base: 100 * time.Millisecond, Max: 10 * time.Second, Factor: 2}, 1, 0, 200 * time.Millisecond},
		{"fifth retry", BackoffConfig{Base: 100 * time.Millisecond, Max: 10 * time.Second, Factor: 2}, 4, 0, 1600 * time.Millisecond},
		{"capped at max", BackoffConfig{Base: 100 * time.Millisecond, Max: time.Second, Factor: 2}, 10, 0, time.Second},
		{"factor 3", BackoffConfig{Base: 10 * time.Millisecond, Max: 10 * time.Second, Factor: 3}, 2, 0, 90 * time.Millisecond},
		{"retry-after longer wins exactly", BackoffConfig{Base: 100 * time.Millisecond, Max: 10 * time.Second, Factor: 2}, 0, 3 * time.Second, 3 * time.Second},
		{"retry-after beats the max cap", BackoffConfig{Base: 100 * time.Millisecond, Max: time.Second, Factor: 2}, 10, 30 * time.Second, 30 * time.Second},
		{"retry-after shorter ignored", BackoffConfig{Base: 400 * time.Millisecond, Max: 10 * time.Second, Factor: 2}, 1, 100 * time.Millisecond, 800 * time.Millisecond},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := tt.cfg
			cfg.Jitter = -1 // exact schedule: jitter off
			b := newBackoff(cfg, 1)
			if got := b.Delay(tt.attempt, tt.retryAfter); got != tt.want {
				t.Fatalf("Delay(%d, %v) = %v, want %v", tt.attempt, tt.retryAfter, got, tt.want)
			}
		})
	}
}

// TestBackoffJitterBoundsAndDeterminism: jittered delays stay within
// ±Jitter of the nominal value, and equal seeds produce equal streams.
func TestBackoffJitterBoundsAndDeterminism(t *testing.T) {
	cfg := BackoffConfig{Base: 100 * time.Millisecond, Max: 10 * time.Second, Factor: 2, Jitter: 0.2}
	a, b := newBackoff(cfg, 42), newBackoff(cfg, 42)
	other := newBackoff(cfg, 43)
	sawDifferent := false
	for attempt := 0; attempt < 50; attempt++ {
		da, db := a.Delay(attempt%6, 0), b.Delay(attempt%6, 0)
		if da != db {
			t.Fatalf("attempt %d: same seed diverged: %v vs %v", attempt, da, db)
		}
		if other.Delay(attempt%6, 0) != da {
			sawDifferent = true
		}
		nominal := float64(100*time.Millisecond) * pow2(attempt%6)
		if nominal > float64(10*time.Second) {
			nominal = float64(10 * time.Second)
		}
		lo, hi := time.Duration(0.8*nominal), time.Duration(1.2*nominal)
		if da < lo || da > hi {
			t.Fatalf("attempt %d: delay %v outside jitter bounds [%v, %v]", attempt, da, lo, hi)
		}
	}
	if !sawDifferent {
		t.Fatal("different seeds never diverged — jitter PRNG not seeded")
	}
}

func pow2(n int) float64 {
	out := 1.0
	for i := 0; i < n; i++ {
		out *= 2
	}
	return out
}

// TestBackoffDefaults: the zero config resolves to sane production
// values rather than zero delays.
func TestBackoffDefaults(t *testing.T) {
	b := newBackoff(BackoffConfig{}, 1)
	if d := b.Delay(0, 0); d < 80*time.Millisecond || d > 120*time.Millisecond {
		t.Fatalf("default first delay %v, want ~100ms", d)
	}
	if d := b.Delay(20, 0); d > 12*time.Second {
		t.Fatalf("default capped delay %v, want ≤ ~10s", d)
	}
}
