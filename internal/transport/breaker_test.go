package transport

import (
	"testing"
	"time"
)

// fakeClock is a manually advanced time source.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1700000000, 0)} }

func (c *fakeClock) Now() time.Time          { return c.t }
func (c *fakeClock) Advance(d time.Duration) { c.t = c.t.Add(d) }

// TestBreakerTransitionTable drives the state machine through every
// documented transition on a fake clock.
func TestBreakerTransitionTable(t *testing.T) {
	const threshold = 3
	cooldown := 10 * time.Second

	// noCheck marks steps that only set up state.
	const noCheck = BreakerState(-1)
	type step struct {
		op        string        // "fail", "ok", "allow", "deny", "advance"
		d         time.Duration // for advance
		wantState BreakerState  // checked after the op unless noCheck
	}
	tests := []struct {
		name  string
		steps []step
	}{
		{"stays closed below threshold", []step{
			{op: "fail", wantState: BreakerClosed},
			{op: "fail", wantState: BreakerClosed},
			{op: "allow", wantState: BreakerClosed},
		}},
		{"success resets the failure count", []step{
			{op: "fail", wantState: BreakerClosed},
			{op: "fail", wantState: BreakerClosed},
			{op: "ok", wantState: BreakerClosed},
			{op: "fail", wantState: BreakerClosed},
			{op: "fail", wantState: BreakerClosed},
			{op: "allow", wantState: BreakerClosed},
		}},
		{"threshold consecutive failures open", []step{
			{op: "fail", wantState: BreakerClosed},
			{op: "fail", wantState: BreakerClosed},
			{op: "fail", wantState: BreakerOpen},
			{op: "deny", wantState: BreakerOpen},
		}},
		{"open admits a probe after cooldown", []step{
			{op: "fail"}, {op: "fail"}, {op: "fail", wantState: BreakerOpen},
			{op: "advance", d: 9 * time.Second, wantState: BreakerOpen},
			{op: "deny", wantState: BreakerOpen},
			{op: "advance", d: time.Second, wantState: BreakerOpen},
			{op: "allow", wantState: BreakerHalfOpen},
		}},
		{"half-open admits exactly one probe", []step{
			{op: "fail"}, {op: "fail"}, {op: "fail", wantState: BreakerOpen},
			{op: "advance", d: 10 * time.Second, wantState: BreakerOpen},
			{op: "allow", wantState: BreakerHalfOpen},
			{op: "deny", wantState: BreakerHalfOpen},
		}},
		{"probe success closes", []step{
			{op: "fail"}, {op: "fail"}, {op: "fail", wantState: BreakerOpen},
			{op: "advance", d: 10 * time.Second, wantState: BreakerOpen},
			{op: "allow", wantState: BreakerHalfOpen},
			{op: "ok", wantState: BreakerClosed},
			{op: "allow", wantState: BreakerClosed},
		}},
		{"probe failure reopens and restarts cooldown", []step{
			{op: "fail"}, {op: "fail"}, {op: "fail", wantState: BreakerOpen},
			{op: "advance", d: 10 * time.Second, wantState: BreakerOpen},
			{op: "allow", wantState: BreakerHalfOpen},
			{op: "fail", wantState: BreakerOpen},
			{op: "advance", d: 9 * time.Second, wantState: BreakerOpen},
			{op: "deny", wantState: BreakerOpen},
			{op: "advance", d: time.Second, wantState: BreakerOpen},
			{op: "allow", wantState: BreakerHalfOpen},
		}},
		{"closed-after-recovery needs full threshold again", []step{
			{op: "fail"}, {op: "fail"}, {op: "fail", wantState: BreakerOpen},
			{op: "advance", d: 10 * time.Second, wantState: BreakerOpen},
			{op: "allow", wantState: BreakerHalfOpen}, {op: "ok", wantState: BreakerClosed},
			{op: "fail", wantState: BreakerClosed},
			{op: "fail", wantState: BreakerClosed},
			{op: "fail", wantState: BreakerOpen},
		}},
	}

	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			clock := newFakeClock()
			b := newBreaker(BreakerConfig{Threshold: threshold, Cooldown: cooldown}, clock.Now)
			for i, s := range tt.steps {
				switch s.op {
				case "fail":
					b.Failure()
				case "ok":
					b.Success()
				case "allow":
					if !b.Allow() {
						t.Fatalf("step %d: Allow() = false, want true", i)
					}
				case "deny":
					if b.Allow() {
						t.Fatalf("step %d: Allow() = true, want false", i)
					}
				case "advance":
					clock.Advance(s.d)
				}
				if s.wantState == noCheck {
					continue
				}
				if got := b.State(); got != s.wantState {
					t.Fatalf("step %d (%s): state = %v, want %v", i, s.op, got, s.wantState)
				}
			}
		})
	}
}

// TestBreakerOpensCounterAndNextAllowed covers the observability
// surface the transport metrics read.
func TestBreakerOpensCounterAndNextAllowed(t *testing.T) {
	clock := newFakeClock()
	b := newBreaker(BreakerConfig{Threshold: 2, Cooldown: 5 * time.Second}, clock.Now)

	if got := b.NextAllowed(); !got.Equal(clock.Now()) {
		t.Fatalf("closed NextAllowed = %v, want now", got)
	}
	b.Failure()
	if b.Failure() != true {
		t.Fatal("threshold failure should report the open transition")
	}
	if got, want := b.NextAllowed(), clock.Now().Add(5*time.Second); !got.Equal(want) {
		t.Fatalf("open NextAllowed = %v, want %v", got, want)
	}
	if b.Opens() != 1 {
		t.Fatalf("Opens = %d, want 1", b.Opens())
	}
	clock.Advance(5 * time.Second)
	if !b.Allow() {
		t.Fatal("probe not admitted after cooldown")
	}
	if b.Failure() != true {
		t.Fatal("failed probe should report the reopen transition")
	}
	if b.Opens() != 2 {
		t.Fatalf("Opens = %d, want 2", b.Opens())
	}
}
