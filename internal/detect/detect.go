// Package detect implements the data-drift detectors the paper evaluates
// (Table 1): the confidence-threshold family Nazar ships on devices (MSP,
// entropy, energy, max-logit), the KS-test batch detector, and the
// heavier-weight alternatives it rules out — Odin, Generalized Odin,
// Mahalanobis distance, Outlier Exposure and SSL/CSI-style auxiliary
// models — together with the capability matrix that explains why the
// simple threshold wins for on-device use.
package detect

import (
	"fmt"

	"nazar/internal/nn"
	"nazar/internal/tensor"
)

// DefaultMSPThreshold is the paper's default detection threshold (§3.2.2).
const DefaultMSPThreshold = 0.9

// Scorer maps a logit vector to a confidence score. Low scores indicate
// likely drift; each scorer documents its range.
type Scorer interface {
	Name() string
	Score(logits []float64) float64
}

// MSP scores by maximum softmax probability, in (0, 1]. This is Nazar's
// default: normalized, and free given the inference output.
type MSP struct{}

func (MSP) Name() string { return "msp" }

func (MSP) Score(logits []float64) float64 {
	return tensor.Max(tensor.Softmax(logits))
}

// NegEntropy scores by the negated Shannon entropy of the softmax, in
// [-log C, 0].
type NegEntropy struct{}

func (NegEntropy) Name() string { return "neg-entropy" }

func (NegEntropy) Score(logits []float64) float64 {
	return -nn.EntropyOf(tensor.Softmax(logits))
}

// Energy scores by the (negated) free energy −(−logΣe^z) = logsumexp, as
// in energy-based OOD detection; higher = more confident.
type Energy struct{}

func (Energy) Name() string { return "energy" }

func (Energy) Score(logits []float64) float64 { return tensor.LogSumExp(logits) }

// MaxLogit scores by the raw maximum logit.
type MaxLogit struct{}

func (MaxLogit) Name() string { return "max-logit" }

func (MaxLogit) Score(logits []float64) float64 { return tensor.Max(logits) }

// Detector decides whether a single inference output indicates drift.
type Detector interface {
	Name() string
	Detect(logits []float64) bool
}

// Threshold flags drift when the scorer's confidence falls below T.
// With Scorer = MSP and T = 0.9 this is exactly Nazar's on-device
// detector.
type Threshold struct {
	Scorer Scorer
	T      float64
}

// NewMSPThreshold returns the paper-default detector: MSP < 0.9.
func NewMSPThreshold() Threshold { return Threshold{Scorer: MSP{}, T: DefaultMSPThreshold} }

func (t Threshold) Name() string { return fmt.Sprintf("threshold(%s<%.3g)", t.Scorer.Name(), t.T) }

func (t Threshold) Detect(logits []float64) bool { return t.Scorer.Score(logits) < t.T }

// Capabilities encodes the four requirements rows of Table 1. True means
// the method has the listed cost.
type Capabilities struct {
	NeedsSecondaryDataset bool
	NeedsSecondaryModel   bool
	NeedsBackprop         bool
	NeedsBatching         bool
}

// Suitable reports whether the method fits Nazar's on-device constraints
// (no cost on any axis).
func (c Capabilities) Suitable() bool {
	return !c.NeedsSecondaryDataset && !c.NeedsSecondaryModel && !c.NeedsBackprop && !c.NeedsBatching
}

// MethodInfo is one column of Table 1.
type MethodInfo struct {
	Name string
	Caps Capabilities
}

// Table1 reproduces the paper's detector comparison matrix.
func Table1() []MethodInfo {
	return []MethodInfo{
		{"Threshold", Capabilities{}},
		{"KS-test", Capabilities{NeedsBatching: true}},
		{"OE", Capabilities{NeedsSecondaryDataset: true}},
		{"Odin", Capabilities{NeedsSecondaryDataset: true, NeedsBackprop: true}},
		{"MD", Capabilities{NeedsSecondaryDataset: true}},
		{"SSL", Capabilities{NeedsSecondaryModel: true}},
		{"CSI", Capabilities{NeedsSecondaryModel: true}},
		{"GOdin", Capabilities{NeedsBackprop: true}},
	}
}

// ScoreBatch applies the scorer to every row of a logit matrix.
func ScoreBatch(s Scorer, logits *tensor.Matrix) []float64 {
	out := make([]float64, logits.Rows)
	for i := range out {
		out[i] = s.Score(logits.Row(i))
	}
	return out
}

// softmaxWithTemperature returns softmax(logits/T).
func softmaxWithTemperature(logits []float64, temp float64) []float64 {
	scaled := make([]float64, len(logits))
	copy(scaled, logits)
	return softmaxWithTemperatureInPlace(scaled, temp)
}

// softmaxWithTemperatureInPlace overwrites v with softmax(v/T) — the
// allocation-free variant for reused scratch.
func softmaxWithTemperatureInPlace(v []float64, temp float64) []float64 {
	for i, x := range v {
		v[i] = x / temp
	}
	tensor.SoftmaxInPlace(v)
	return v
}

// sign returns -1, 0 or 1.
func sign(x float64) float64 {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	default:
		return 0
	}
}
